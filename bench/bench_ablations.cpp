// A1-A3: ablations of the design choices DESIGN.md calls out.
//
//  A1 - phase-overflow handling (Algorithm 3, lines 19/21/24): on hub-heavy
//       digraphs the restricted BFS concentrates on a few vertices; with
//       handling on, they trip Z early and the h-hop BFS from Z covers their
//       cycles; with handling off, the hubs keep forwarding and the
//       restricted phase pays the congestion.
//  A2 - random-delay scheduling [24, 36]: shrinking the delay range rho
//       makes all n restricted BFSs start simultaneously, spiking per-window
//       load and overflow counts.
//  A3 - scaling-ladder depth (Section 5.1): truncating the ladder loses the
//       weight classes of short cycles; the answer stays sound but degrades
//       toward the long-cycle-only value.
#include "bench_util.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/directed_mwc.h"
#include "mwc/girth_approx.h"
#include "mwc/weighted_mwc.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using congest::Network;
using graph::Graph;
using graph::Weight;
using graph::WeightRange;

void run_overflow_ablation() {
  bench::section("A1: Algorithm 3 phase-overflow handling on bottleneck digraphs");
  support::Table table({"n", "hubs", "handling", "rounds", "|Z|", "value",
                        "exact", "2-approx ok?"});
  for (int n : {128, 256}) {
    support::Rng rng(static_cast<std::uint64_t>(n));
    Graph g = graph::bottleneck_digraph(n, std::max(3, n / 32), rng);
    Weight exact = graph::seq::mwc(g);
    for (bool handling : {true, false}) {
      Network net(g, 3);
      cycle::DirectedMwcParams params;
      params.enable_overflow_handling = handling;
      cycle::MwcResult result = cycle::directed_mwc_2approx(net, params);
      table.add_row(
          {support::Table::fmt(static_cast<std::int64_t>(n)),
           support::Table::fmt(static_cast<std::int64_t>(std::max(3, n / 32))),
           handling ? "on" : "off",
           support::Table::fmt(static_cast<std::int64_t>(result.stats.rounds)),
           support::Table::fmt(static_cast<std::int64_t>(result.overflow_count)),
           support::Table::fmt(result.value), support::Table::fmt(exact),
           (result.value >= exact && result.value <= 2 * exact) ? "yes" : "NO"});
    }
  }
  bench::emit(table);
}

void run_delay_ablation() {
  bench::section("A2: random-delay scheduling of the restricted BFS");
  support::Table table(
      {"n", "rho exponent", "rounds", "peak queue", "|Z|", "value", "ok?"});
  for (int n : {256}) {
    support::Rng rng(static_cast<std::uint64_t>(n) + 5);
    Graph g = graph::random_strongly_connected(n, 3 * n, WeightRange{1, 1}, rng);
    Weight exact = graph::seq::mwc(g);
    for (double rho_exp : {0.8, 0.4, 0.01}) {
      Network net(g, 7);
      cycle::DirectedMwcParams params;
      params.rho_exponent = rho_exp;
      cycle::MwcResult result = cycle::directed_mwc_2approx(net, params);
      table.add_row(
          {support::Table::fmt(static_cast<std::int64_t>(n)),
           support::Table::fmt(rho_exp, 2),
           support::Table::fmt(static_cast<std::int64_t>(result.stats.rounds)),
           support::Table::fmt(static_cast<std::int64_t>(result.restricted_peak_queue)),
           support::Table::fmt(static_cast<std::int64_t>(result.overflow_count)),
           support::Table::fmt(result.value),
           (result.value >= exact && result.value <= 2 * exact) ? "yes" : "NO"});
    }
  }
  bench::emit(table);
  bench::note("rho ~ 1 starts every source at once: link backlogs and "
              "per-window loads spike, so more vertices trip the overflow "
              "threshold (larger |Z|, larger peak queue).");
}

void run_ladder_ablation() {
  bench::section("A3: scaling-ladder depth (Section 5.1), n = 200, eps = 0.5");
  support::Rng rng(11);
  Graph g = graph::random_connected(200, 400, WeightRange{1, 12}, rng);
  Weight exact = graph::seq::mwc(g);
  support::Table table({"max levels", "rounds", "value", "long-only value",
                        "exact", "sound?"});
  for (int levels : {1, 2, 4, 0 /* full */}) {
    Network net(g, 13);
    cycle::WeightedMwcParams params;
    params.max_levels = levels;
    cycle::MwcResult result = cycle::undirected_weighted_mwc(net, params);
    table.add_row(
        {levels == 0 ? "full" : support::Table::fmt(static_cast<std::int64_t>(levels)),
         support::Table::fmt(static_cast<std::int64_t>(result.stats.rounds)),
         result.value == graph::kInfWeight ? "inf" : support::Table::fmt(result.value),
         result.long_cycle_value == graph::kInfWeight
             ? "inf"
             : support::Table::fmt(result.long_cycle_value),
         support::Table::fmt(exact),
         (result.value == graph::kInfWeight || result.value >= exact) ? "yes"
                                                                      : "NO"});
  }
  bench::emit(table);
  bench::note("each missing level drops one weight class of short cycles; "
              "the full ladder restores the (2+eps) guarantee.");
}

void run_bandwidth_ablation() {
  bench::section("A4b: bandwidth scaling (CONGEST(B))");
  support::Rng rng(17);
  Graph g = graph::random_connected(256, 512, WeightRange{1, 1}, rng);
  support::Table table({"B (words/round)", "girth-approx rounds", "value"});
  for (int bw : {1, 2, 4, 8}) {
    congest::NetworkConfig cfg;
    cfg.bandwidth_words = bw;
    Network net(g, 19, cfg);
    cycle::MwcResult result = cycle::girth_approx(net);
    table.add_row(
        {support::Table::fmt(static_cast<std::int64_t>(bw)),
         support::Table::fmt(static_cast<std::int64_t>(result.stats.rounds)),
         support::Table::fmt(result.value)});
  }
  bench::emit(table);
  bench::note("bandwidth-bound phases shrink ~1/B; the D-bound tail does not "
              "- the classic CONGEST(B) picture.");
}

void run_h_exponent_ablation() {
  bench::section("A5: Algorithm 2's long/short split h = n^x, n = 256");
  support::Rng rng(23);
  Graph g = graph::random_strongly_connected(256, 768, WeightRange{1, 1}, rng);
  Weight exact = graph::seq::mwc(g);
  support::Table table({"h exponent", "|S|", "rounds", "value", "ok?"});
  for (double hx : {0.4, 0.6, 0.8}) {
    Network net(g, 29);
    cycle::DirectedMwcParams params;
    params.h_exponent = hx;
    cycle::MwcResult result = cycle::directed_mwc_2approx(net, params);
    table.add_row(
        {support::Table::fmt(hx, 2),
         support::Table::fmt(static_cast<std::int64_t>(result.sample_count)),
         support::Table::fmt(static_cast<std::int64_t>(result.stats.rounds)),
         support::Table::fmt(result.value),
         (result.value >= exact && result.value <= 2 * exact) ? "yes" : "NO"});
  }
  bench::emit(table);
  bench::note("smaller h -> more samples (costlier k-source BFS + |S|^2 "
              "broadcast) but a shorter restricted phase; n^(3/5) is the "
              "paper's balance point.");
}

}  // namespace

int main() {
  bench::JsonLog json_log("ablations");
  run_overflow_ablation();
  run_delay_ablation();
  run_ladder_ablation();
  run_bandwidth_ablation();
  run_h_exponent_ablation();
  return 0;
}
