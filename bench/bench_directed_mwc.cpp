// E3 / E4 (Table 1, directed rows): exact directed MWC (O~(n) via APSP)
// vs 2-approximation in O~(n^(4/5) + D) (Theorem 1.2.C) and the weighted
// (2+eps) variant (Theorem 1.2.D).
#include <cmath>

#include "bench_util.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/directed_mwc.h"
#include "mwc/exact.h"
#include "mwc/weighted_mwc.h"
#include "support/flags.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using congest::Network;
using graph::Graph;
using graph::Weight;
using graph::WeightRange;

void run_unweighted(bool quick) {
  bench::section("E3: directed unweighted MWC - exact O~(n) vs 2-approx O~(n^0.8+D)");
  support::Table table({"n", "D", "mwc", "exact rounds", "approx rounds",
                        "approx val", "|S|", "|Z|", "ratio"});
  bench::ExponentTracker exact_fit, approx_fit;
  for (int n : quick ? std::vector<int>{128, 256} : std::vector<int>{128, 256, 512, 1024}) {
    support::Rng rng(static_cast<std::uint64_t>(n));
    Graph g = graph::random_strongly_connected(n, 3 * n, WeightRange{1, 1}, rng);
    const int diam = graph::seq::communication_diameter(g);

    Network net_exact(g, 3);
    cycle::MwcResult exact = cycle::exact_mwc(net_exact);

    Network net_approx(g, 3);
    cycle::MwcResult approx = cycle::directed_mwc_2approx(net_approx);

    exact_fit.add(n, static_cast<double>(exact.stats.rounds));
    approx_fit.add(n, static_cast<double>(approx.stats.rounds));
    table.add_row(
        {support::Table::fmt(static_cast<std::int64_t>(n)),
         support::Table::fmt(static_cast<std::int64_t>(diam)),
         support::Table::fmt(exact.value),
         support::Table::fmt(static_cast<std::int64_t>(exact.stats.rounds)),
         support::Table::fmt(static_cast<std::int64_t>(approx.stats.rounds)),
         support::Table::fmt(approx.value),
         support::Table::fmt(static_cast<std::int64_t>(approx.sample_count)),
         support::Table::fmt(static_cast<std::int64_t>(approx.overflow_count)),
         support::Table::fmt(static_cast<double>(approx.value) /
                                 static_cast<double>(exact.value),
                             2)});
  }
  bench::emit(table);
  bench::note(exact_fit.summary("exact rounds vs n", 1.0));
  bench::note(approx_fit.summary("2-approx rounds vs n", 0.8));
  {
    const double x = bench::crossover_x(approx_fit.fit(), exact_fit.fit());
    char buf[120];
    std::snprintf(buf, sizeof(buf),
                  "extrapolated crossover (approx cheaper than exact): n ~ %.2g",
                  x);
    bench::note(x > 0 ? buf : "fits do not cross for growing n");
  }
  bench::note("guarantee: ratio column must stay in [1, 2]. The approximation's "
              "|S|^2 broadcast carries a log^2 n factor, so at these n the "
              "absolute rounds exceed the exact baseline; the fitted exponent "
              "(vs the baseline's ~1.0) is the reproducible shape.");
}

void run_weighted(bool quick) {
  bench::section("E4: directed weighted MWC - (2+eps)-approx O~(n^0.8+D) (Thm 1.2.D)");
  support::Table table({"n", "W", "mwc", "exact rounds", "approx rounds",
                        "approx val", "ratio", "<= 2+eps?"});
  const double eps = 0.5;
  for (int n : quick ? std::vector<int>{96} : std::vector<int>{96, 160, 256}) {
    support::Rng rng(static_cast<std::uint64_t>(n) + 31);
    Graph g = graph::random_strongly_connected(n, 3 * n, WeightRange{1, 12}, rng);
    Weight exact_val = graph::seq::mwc(g);

    Network net_exact(g, 5);
    cycle::MwcResult exact = cycle::exact_mwc(net_exact);

    Network net_approx(g, 5);
    cycle::WeightedMwcParams params;
    params.epsilon = eps;
    cycle::MwcResult approx = cycle::directed_weighted_mwc(net_approx, params);

    const double ratio =
        static_cast<double>(approx.value) / static_cast<double>(exact_val);
    table.add_row(
        {support::Table::fmt(static_cast<std::int64_t>(n)),
         support::Table::fmt(g.max_weight()), support::Table::fmt(exact_val),
         support::Table::fmt(static_cast<std::int64_t>(exact.stats.rounds)),
         support::Table::fmt(static_cast<std::int64_t>(approx.stats.rounds)),
         support::Table::fmt(approx.value), support::Table::fmt(ratio, 2),
         ratio <= 2.0 + eps + 1e-9 ? "yes" : "NO"});
  }
  bench::emit(table);
  bench::note("the weighted ladder multiplies the n^0.8 subroutine by "
              "O(log(hW)) levels (Section 5.2); rounds reflect that.");
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonLog json_log("directed_mwc");
  support::Flags flags(argc, argv, {"quick"});
  const bool quick = flags.has("quick");
  run_unweighted(quick);
  run_weighted(quick);
  return 0;
}
