// A5: wall-clock scaling of the parallel deterministic engine.
//
// Unlike E1-E9 (which measure *simulated rounds*, a model quantity that is
// independent of how fast the simulator itself runs), this bench measures
// the simulator: wall-clock seconds and simulated words moved per second
// for exact MWC as NetworkConfig::threads grows, plus the WordPool arena's
// allocation-recycling rate. The engine guarantees bit-identical results at
// every thread count, so the answer/rounds/messages columns must not move
// across a row group - the "identical?" column asserts exactly that.
//
// Interpretation needs the hardware_threads metric in the JSON log: thread
// counts beyond the machine's cores only add scheduling overhead, so a
// 1-core CI container will (correctly) show speedup <= 1 while an 8-core
// workstation shows the intended scaling on n >= 512 instances.
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "congest/arena.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "mwc/directed_mwc.h"
#include "mwc/exact.h"
#include "support/flags.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using congest::Network;
using congest::NetworkConfig;
using graph::Graph;
using graph::WeightRange;

struct Sample {
  double seconds = 0;
  graph::Weight value = 0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  congest::WordPool::Stats arena;
};

Sample run_once(const Graph& g, int threads) {
  NetworkConfig cfg;
  cfg.threads = threads;
  Network net(g, 5, cfg);
  congest::WordPool::reset_global_stats();
  const auto start = std::chrono::steady_clock::now();
  cycle::MwcResult r = cycle::exact_mwc(net);
  const auto stop = std::chrono::steady_clock::now();
  Sample s;
  s.seconds = std::chrono::duration<double>(stop - start).count();
  s.value = r.value;
  s.rounds = net.stats().rounds;
  s.messages = net.stats().messages;
  s.words = net.stats().words;
  s.arena = congest::WordPool::global_stats();
  return s;
}

void run_thread_sweep(bool quick) {
  bench::section("A5a: exact MWC wall clock vs worker threads");
  bench::note("engine contract: every thread count computes bit-identical "
              "results; only wall clock may differ");
  support::Table table({"n", "threads", "seconds", "Mwords/s", "speedup",
                        "sim rounds", "sim words", "identical?"});
  const std::vector<int> sizes = quick ? std::vector<int>{256}
                                       : std::vector<int>{512, 768};
  const std::vector<int> threads = {1, 2, 4, 8};
  for (int n : sizes) {
    support::Rng rng(static_cast<std::uint64_t>(n));
    Graph g = graph::random_connected(n, 3 * n, WeightRange{1, 9}, rng);
    Sample base;
    for (int t : threads) {
      Sample s = run_once(g, t);
      if (t == 1) base = s;
      const bool identical = s.value == base.value && s.rounds == base.rounds &&
                             s.messages == base.messages && s.words == base.words;
      table.add_row(
          {support::Table::fmt(static_cast<std::int64_t>(n)),
           support::Table::fmt(static_cast<std::int64_t>(t)),
           support::Table::fmt(s.seconds, 3),
           support::Table::fmt(static_cast<double>(s.words) / s.seconds / 1e6, 2),
           support::Table::fmt(base.seconds / s.seconds, 2),
           support::Table::fmt(static_cast<std::int64_t>(s.rounds)),
           support::Table::fmt(static_cast<std::int64_t>(s.words)),
           identical ? "yes" : "NO"});
      bench::metric("seconds_n" + std::to_string(n) + "_t" + std::to_string(t),
                    s.seconds);
    }
  }
  bench::emit(table);
  const unsigned hw = std::thread::hardware_concurrency();
  bench::metric("hardware_threads", static_cast<double>(hw));
  bench::note("hardware threads on this machine: " + std::to_string(hw) +
              " (speedup saturates there; oversubscribed counts only add "
              "scheduling overhead)");
}

void run_arena_report(bool quick) {
  bench::section("A5b: WordPool arena recycling (steady-state allocations)");
  bench::note("spill blocks come from thread-local freelists; 'reused' should "
              "dwarf 'fresh' on message-heavy runs");
  support::Table table({"n", "threads", "fresh blocks", "reused blocks",
                        "reuse %"});
  // The directed 2-approx sends the restricted-BFS Q(v) lists of Algorithm 3
  // - the long multi-word messages that overflow Message's inline buffer and
  // exercise the spill path; single-word protocols never touch the arena.
  const int n = quick ? 96 : 192;
  support::Rng rng(static_cast<std::uint64_t>(n) + 3);
  Graph g = graph::random_strongly_connected(n, 3 * n, WeightRange{1, 12}, rng);
  for (int t : {1, 4}) {
    NetworkConfig cfg;
    cfg.threads = t;
    Network net(g, 7, cfg);
    congest::WordPool::reset_global_stats();
    (void)cycle::directed_mwc_2approx(net);
    congest::WordPool::Stats a = congest::WordPool::global_stats();
    const double total = static_cast<double>(a.fresh + a.reused);
    table.add_row(
        {support::Table::fmt(static_cast<std::int64_t>(n)),
         support::Table::fmt(static_cast<std::int64_t>(t)),
         support::Table::fmt(static_cast<std::int64_t>(a.fresh)),
         support::Table::fmt(static_cast<std::int64_t>(a.reused)),
         support::Table::fmt(total == 0 ? 0.0
                                        : 100.0 * static_cast<double>(a.reused) / total,
                             1)});
    bench::metric("arena_fresh_t" + std::to_string(t),
                  static_cast<double>(a.fresh));
    bench::metric("arena_reused_t" + std::to_string(t),
                  static_cast<double>(a.reused));
  }
  bench::emit(table);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonLog json_log("engine");
  support::Flags flags(argc, argv, {"quick"});
  const bool quick = flags.has("quick");
  run_thread_sweep(quick);
  run_arena_report(quick);
  return 0;
}
