// A5: wall-clock scaling of the parallel deterministic engine.
//
// Unlike E1-E9 (which measure *simulated rounds*, a model quantity that is
// independent of how fast the simulator itself runs), this bench measures
// the simulator: wall-clock seconds and simulated words moved per second
// for exact MWC as NetworkConfig::threads grows, plus the WordPool arena's
// allocation-recycling rate. The engine guarantees bit-identical results at
// every thread count, so the answer/rounds/messages columns must not move
// across a row group - the "identical?" column asserts exactly that.
//
// Interpretation needs the hardware_threads metric in the JSON log: thread
// counts beyond the machine's cores only add scheduling overhead, so a
// 1-core CI container will (correctly) show speedup <= 1 while an 8-core
// workstation shows the intended scaling on n >= 512 instances.
#include <algorithm>
#include <chrono>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "congest/arena.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "mwc/api.h"
#include "mwc/directed_mwc.h"
#include "mwc/exact.h"
#include "support/flags.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using congest::Network;
using congest::NetworkConfig;
using graph::Graph;
using graph::WeightRange;

struct Sample {
  double seconds = 0;      // wall clock
  double cpu_seconds = 0;  // process CPU time (all threads)
  graph::Weight value = 0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  congest::WordPool::Stats arena;
};

// Process CPU time: unlike wall clock, it does not advance while the
// hypervisor steals the vCPU or the scheduler preempts us, so on a shared
// box it is the unbiased estimator of dedicated-hardware wall time for
// single-threaded rows (and equals wall clock on an idle dedicated box).
double cpu_now() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

Sample run_once(const Graph& g, int threads, congest::SettlePath path) {
  NetworkConfig cfg;
  cfg.threads = threads;
  // The sweep measures oversubscription on purpose; report min(t, hw) in
  // the "eff" column instead of silently clamping.
  cfg.clamp_threads = false;
  cfg.settle_path = path;
  Network net(g, 5, cfg);
  congest::WordPool::reset_global_stats();
  const double cpu_start = cpu_now();
  const auto start = std::chrono::steady_clock::now();
  cycle::MwcResult r = cycle::exact_mwc(net);
  const auto stop = std::chrono::steady_clock::now();
  Sample s;
  s.cpu_seconds = cpu_now() - cpu_start;
  s.seconds = std::chrono::duration<double>(stop - start).count();
  s.value = r.value;
  s.rounds = net.stats().rounds;
  s.messages = net.stats().messages;
  s.words = net.stats().words;
  s.arena = congest::WordPool::global_stats();
  return s;
}

// Folds a repetition into `best`: keep the minimum times (shared-box noise
// only ever adds time), demand unchanged simulated counters.
void fold_rep(Sample& best, const Sample& rep) {
  if (rep.value != best.value || rep.rounds != best.rounds ||
      rep.words != best.words) {
    std::fprintf(stderr, "bench_engine: repetition changed counters\n");
    std::abort();
  }
  best.seconds = std::min(best.seconds, rep.seconds);
  best.cpu_seconds = std::min(best.cpu_seconds, rep.cpu_seconds);
}

void run_thread_sweep(bool quick) {
  bench::section("A5a: exact MWC wall clock, legacy vs frontier settle path");
  bench::note("engine contract: both settle paths at every thread count "
              "compute bit-identical results; only wall clock may differ");
  bench::note("'wall s' is elapsed time; 'cpu s' is process CPU time, which "
              "a shared box cannot inflate with hypervisor steal or "
              "preemption, so Mwords/s and speedup are computed from it "
              "(identical on dedicated hardware; for thread-scaling wall "
              "clock, read the 'wall s' column directly)");
  const unsigned hw = std::thread::hardware_concurrency();
  support::Table table({"n", "path", "threads", "eff", "wall s", "cpu s",
                        "Mwords/s", "speedup", "sim rounds", "sim words",
                        "identical?"});
  const std::vector<int> sizes = quick ? std::vector<int>{256}
                                       : std::vector<int>{512, 768};
  const std::vector<int> threads = {1, 2, 4, 8};
  for (int n : sizes) {
    support::Rng rng(static_cast<std::uint64_t>(n));
    Graph g = graph::random_connected(n, 3 * n, WeightRange{1, 9}, rng);
    // The legacy per-direction message queues are the baseline every
    // frontier row is normalized against (speedup = legacy t=1 / row).
    // Host-CPU availability on a shared box drifts over the sweep's
    // minutes, so the A/B pair is measured in interleaved repetitions
    // (legacy, frontier, legacy, frontier) and each takes its best rep -
    // adjacent-in-time pairs keep the ratio honest under drift.
    Sample base = run_once(g, 1, congest::SettlePath::kLegacy);
    Sample front1 = run_once(g, 1, congest::SettlePath::kFrontier);
    fold_rep(base, run_once(g, 1, congest::SettlePath::kLegacy));
    fold_rep(front1, run_once(g, 1, congest::SettlePath::kFrontier));
    auto add_row = [&](const char* path_name, int t, const Sample& s) {
      const bool identical = s.value == base.value && s.rounds == base.rounds &&
                             s.messages == base.messages && s.words == base.words;
      const int eff = static_cast<int>(
          hw == 0 ? static_cast<unsigned>(t)
                  : std::min(static_cast<unsigned>(t), hw));
      table.add_row(
          {support::Table::fmt(static_cast<std::int64_t>(n)), path_name,
           support::Table::fmt(static_cast<std::int64_t>(t)),
           support::Table::fmt(static_cast<std::int64_t>(eff)),
           support::Table::fmt(s.seconds, 3),
           support::Table::fmt(s.cpu_seconds, 3),
           support::Table::fmt(
               static_cast<double>(s.words) / s.cpu_seconds / 1e6, 2),
           support::Table::fmt(base.cpu_seconds / s.cpu_seconds, 2),
           support::Table::fmt(static_cast<std::int64_t>(s.rounds)),
           support::Table::fmt(static_cast<std::int64_t>(s.words)),
           identical ? "yes" : "NO"});
    };
    add_row("legacy", 1, base);
    bench::metric("legacy_seconds_n" + std::to_string(n), base.seconds);
    bench::metric("legacy_cpu_seconds_n" + std::to_string(n),
                  base.cpu_seconds);
    for (int t : threads) {
      Sample s = t == 1 ? front1 : run_once(g, t, congest::SettlePath::kFrontier);
      add_row("frontier", t, s);
      bench::metric("seconds_n" + std::to_string(n) + "_t" + std::to_string(t),
                    s.seconds);
      bench::metric("cpu_seconds_n" + std::to_string(n) + "_t" +
                        std::to_string(t),
                    s.cpu_seconds);
      bench::metric("frontier_speedup_n" + std::to_string(n) + "_t" +
                        std::to_string(t),
                    base.cpu_seconds / s.cpu_seconds);
    }
  }
  bench::emit(table);
  bench::note("hardware threads on this machine: " + std::to_string(hw) +
              " (speedup saturates there; oversubscribed counts only add "
              "scheduling overhead)");
}

void run_frontier_report(bool quick) {
  bench::section("A5c: frontier engine telemetry (direction-optimizing sweep)");
  bench::note("side-channel counters from the frontier settle path: per "
              "phase, how many invocation rounds were built by the dense "
              "bitmap scan vs the sparse sort, how often the builder "
              "switched, and the words moved by the packed fast path vs "
              "spill-pool multi-word messages");
  const int n = quick ? 256 : 512;
  support::Rng rng(static_cast<std::uint64_t>(n));
  Graph g = graph::random_connected(n, 3 * n, WeightRange{1, 9}, rng);
  NetworkConfig cfg;
  cfg.clamp_threads = false;
  cfg.settle_path = congest::SettlePath::kFrontier;
  Network net(g, 5, cfg);
  congest::Metrics metrics;  // phases label the telemetry rows
  net.attach_metrics(&metrics);
  (void)cycle::exact_mwc(net);
  net.attach_metrics(nullptr);
  support::Table table({"phase", "sched rounds", "dense", "sparse", "switches",
                        "frontier/round", "dirs/round", "fast words",
                        "multi words"});
  auto add = [&](const std::string& phase, const congest::FrontierStats& f) {
    const double rounds =
        f.scheduled_rounds == 0 ? 1.0 : static_cast<double>(f.scheduled_rounds);
    table.add_row(
        {phase.empty() ? "(unphased)" : phase,
         support::Table::fmt(static_cast<std::int64_t>(f.scheduled_rounds)),
         support::Table::fmt(static_cast<std::int64_t>(f.dense_rounds)),
         support::Table::fmt(static_cast<std::int64_t>(f.sparse_rounds)),
         support::Table::fmt(static_cast<std::int64_t>(f.direction_switches)),
         support::Table::fmt(static_cast<double>(f.frontier_nodes) / rounds, 1),
         support::Table::fmt(static_cast<double>(f.active_dirs) / rounds, 1),
         support::Table::fmt(static_cast<std::int64_t>(f.fast_words)),
         support::Table::fmt(static_cast<std::int64_t>(f.multi_words))});
  };
  for (const auto& [phase, f] : net.frontier_phases()) add(phase, f);
  add("total", net.frontier_total());
  bench::emit(table);
  const congest::FrontierStats& tot = net.frontier_total();
  bench::metric("frontier_dense_rounds", static_cast<double>(tot.dense_rounds));
  bench::metric("frontier_sparse_rounds",
                static_cast<double>(tot.sparse_rounds));
  bench::metric("frontier_direction_switches",
                static_cast<double>(tot.direction_switches));
  bench::metric("frontier_fast_words", static_cast<double>(tot.fast_words));
  bench::metric("frontier_multi_words", static_cast<double>(tot.multi_words));
}

void run_arena_report(bool quick) {
  bench::section("A5b: WordPool arena recycling (steady-state allocations)");
  bench::note("spill blocks come from thread-local freelists; 'reused' should "
              "dwarf 'fresh' on message-heavy runs");
  support::Table table({"n", "threads", "fresh blocks", "reused blocks",
                        "reuse %"});
  // The directed 2-approx sends the restricted-BFS Q(v) lists of Algorithm 3
  // - the long multi-word messages that overflow Message's inline buffer and
  // exercise the spill path; single-word protocols never touch the arena.
  const int n = quick ? 96 : 192;
  support::Rng rng(static_cast<std::uint64_t>(n) + 3);
  Graph g = graph::random_strongly_connected(n, 3 * n, WeightRange{1, 12}, rng);
  for (int t : {1, 4}) {
    NetworkConfig cfg;
    cfg.threads = t;
    Network net(g, 7, cfg);
    congest::WordPool::reset_global_stats();
    (void)cycle::directed_mwc_2approx(net);
    congest::WordPool::Stats a = congest::WordPool::global_stats();
    const double total = static_cast<double>(a.fresh + a.reused);
    table.add_row(
        {support::Table::fmt(static_cast<std::int64_t>(n)),
         support::Table::fmt(static_cast<std::int64_t>(t)),
         support::Table::fmt(static_cast<std::int64_t>(a.fresh)),
         support::Table::fmt(static_cast<std::int64_t>(a.reused)),
         support::Table::fmt(total == 0 ? 0.0
                                        : 100.0 * static_cast<double>(a.reused) / total,
                             1)});
    bench::metric("arena_fresh_t" + std::to_string(t),
                  static_cast<double>(a.fresh));
    bench::metric("arena_reused_t" + std::to_string(t),
                  static_cast<double>(a.reused));
  }
  bench::emit(table);
}

// A5d: what the observability layers cost. Three variants of the same
// exact solve - bare, with the per-phase metrics profiler, and with metrics
// plus the congestion observatory (per-link ledger, round timeline, engine
// high-water marks) - measured in interleaved repetitions like A5a, each
// variant keeping its best CPU rep. The simulated counters must not move:
// instrumentation observes the protocol, it never steers it. CI gates
// observatory_overhead_pct (ledger cost on top of plain metrics) below 5%.
void run_observatory_report(bool quick) {
  bench::section("A5d: observatory overhead (metrics + congestion ledger)");
  bench::note("overhead of --metrics and --metrics --congestion over a bare "
              "solve; interleaved reps, best cpu rep per variant; detached "
              "instrumentation must cost nothing measurable");
  const int n = quick ? 256 : 512;
  support::Rng rng(static_cast<std::uint64_t>(n) + 11);
  Graph g = graph::random_connected(n, 3 * n, WeightRange{1, 9}, rng);
  struct Variant {
    const char* name;
    bool metrics;
    bool congestion;
    double cpu = 0;
    std::uint64_t words = 0;
  };
  Variant variants[] = {{"plain", false, false},
                        {"metrics", true, false},
                        {"observatory", true, true}};
  const int reps = 3;
  for (int rep = 0; rep < reps; ++rep) {
    for (Variant& v : variants) {
      NetworkConfig cfg;
      cfg.clamp_threads = false;
      Network net(g, 5, cfg);
      cycle::SolveOptions opts;
      opts.mode = cycle::SolveMode::kExact;
      opts.collect_metrics = v.metrics;
      opts.congestion.enabled = v.congestion;
      const double cpu_start = cpu_now();
      (void)cycle::solve(net, opts);
      const double cpu = cpu_now() - cpu_start;
      if (rep == 0) {
        v.cpu = cpu;
        v.words = net.stats().words;
      } else {
        if (net.stats().words != v.words) {
          std::fprintf(stderr, "bench_engine: instrumentation moved words\n");
          std::abort();
        }
        v.cpu = std::min(v.cpu, cpu);
      }
    }
  }
  const Variant& plain = variants[0];
  const Variant& metrics = variants[1];
  const Variant& observatory = variants[2];
  support::Table table({"variant", "cpu s", "Mwords/s", "vs plain"});
  for (const Variant& v : variants) {
    table.add_row(
        {v.name, support::Table::fmt(v.cpu, 3),
         support::Table::fmt(static_cast<double>(v.words) / v.cpu / 1e6, 2),
         support::Table::fmt((v.cpu - plain.cpu) / plain.cpu * 100.0, 1)});
  }
  bench::emit(table);
  bench::metric("plain_cpu_seconds", plain.cpu);
  bench::metric("metrics_cpu_seconds", metrics.cpu);
  bench::metric("observatory_cpu_seconds", observatory.cpu);
  bench::metric("metrics_overhead_pct",
                (metrics.cpu - plain.cpu) / plain.cpu * 100.0);
  bench::metric("observatory_overhead_pct",
                (observatory.cpu - metrics.cpu) / metrics.cpu * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonLog json_log("engine");
  support::Flags flags(argc, argv, {"quick"});
  const bool quick = flags.has("quick");
  run_thread_sweep(quick);
  run_arena_report(quick);
  run_frontier_report(quick);
  run_observatory_report(quick);
  return 0;
}
