// F1: cost of reliability under lossy links.
// F2: cost of masking word corruption (checksum + retransmit).
// F3: cost of crash recovery (epoch resync + degraded best-so-far).
// F4: cost of masking message duplication (ARQ sequence-number dedup).
//
// F1 sweeps the per-message drop probability and reruns the textbook
// primitives (BFS tree, pipelined broadcast) and the full exact-MWC
// pipeline over the reliable (ARQ) transport. Each run is checked against
// the fault-free answer - the point of the transport is that answers never
// change, only the round/word bill does. The tables report that bill:
// retransmitted words, dropped messages, and the word overhead relative to
// the raw (no-ARQ, no-loss) baseline. The drop=0 row isolates the fixed
// framing cost of the transport itself (sequence headers + checksums +
// acks).
//
// F2 sweeps the per-word corruption rate instead: the checksum must reject
// every corrupted frame and retransmission must fully mask it, so solve()
// stays `certified` with the fault-free value at every rate; the bill is
// the checksum-reject/retransmission traffic. F3 crashes one node at a
// fixed round and sweeps the recovery delay: answers come back labeled
// `degraded`, and the table verifies they are still sound (genuine cycle
// weights, never below the sequential optimum).
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "congest/bfs_tree.h"
#include "congest/broadcast.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/api.h"
#include "mwc/exact.h"
#include "support/flags.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using congest::Network;
using congest::NetworkConfig;
using congest::RunStats;
using graph::Graph;
using graph::NodeId;
using graph::Weight;

NetworkConfig reliable_lossy(double drop) {
  NetworkConfig cfg;
  cfg.faults.drop_prob = drop;
  cfg.reliable_transport = true;
  return cfg;
}

std::vector<double> drop_rates(bool quick) {
  return quick ? std::vector<double>{0.0, 0.2}
               : std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.3};
}

void add_sweep_row(support::Table& table, double drop, const RunStats& stats,
                   const RunStats& baseline, bool ok) {
  table.add_row(
      {support::Table::fmt(drop, 2),
       support::Table::fmt(static_cast<std::int64_t>(stats.rounds)),
       support::Table::fmt(static_cast<std::int64_t>(stats.words)),
       support::Table::fmt(static_cast<std::int64_t>(stats.dropped_messages)),
       support::Table::fmt(static_cast<std::int64_t>(stats.retransmitted_words)),
       support::Table::fmt(static_cast<double>(stats.words) /
                               static_cast<double>(baseline.words),
                           2),
       ok ? "yes" : "NO"});
}

void run_bfs(const Graph& g, bool quick) {
  bench::section("F1a: BFS tree under drops (reliable transport)");
  const auto ref = graph::seq::bfs_hops(g.communication_topology(), 0);
  Network raw_net(g, 11);
  RunStats baseline;
  (void)congest::build_bfs_tree(raw_net, 0, &baseline);
  bench::note("raw baseline (no ARQ): " +
              support::Table::fmt(static_cast<std::int64_t>(baseline.rounds)) +
              " rounds, " +
              support::Table::fmt(static_cast<std::int64_t>(baseline.words)) +
              " words");
  support::Table table({"drop", "rounds", "words", "dropped", "retx words",
                        "word overhead", "depths ok?"});
  for (double drop : drop_rates(quick)) {
    Network net(g, 11, reliable_lossy(drop));
    RunStats stats;
    congest::BfsTreeResult tree = congest::build_bfs_tree(net, 0, &stats);
    bool ok = true;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      ok &= tree.depth[static_cast<std::size_t>(v)] ==
            ref[static_cast<std::size_t>(v)];
    }
    add_sweep_row(table, drop, stats, baseline, ok);
  }
  bench::emit(table);
}

void run_broadcast(const Graph& g, bool quick) {
  bench::section("F1b: pipelined broadcast under drops (reliable transport)");
  std::vector<std::vector<congest::BroadcastItem>> items(
      static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    items[static_cast<std::size_t>(v)].push_back(
        {static_cast<congest::Word>(v), static_cast<congest::Word>(3 * v)});
  }
  Network raw_net(g, 13);
  congest::BfsTreeResult raw_tree = congest::build_bfs_tree(raw_net, 0);
  RunStats baseline;
  congest::BroadcastResult ref =
      congest::broadcast(raw_net, raw_tree, items, &baseline);
  support::Table table({"drop", "rounds", "words", "dropped", "retx words",
                        "word overhead", "items ok?"});
  for (double drop : drop_rates(quick)) {
    Network net(g, 13, reliable_lossy(drop));
    congest::BfsTreeResult tree = congest::build_bfs_tree(net, 0);
    RunStats stats;
    congest::BroadcastResult got = congest::broadcast(net, tree, items, &stats);
    bool ok = got.items().size() == ref.items().size();
    for (NodeId v = 0; ok && v < g.node_count(); ++v) {
      ok = got.received_count(v) == got.items().size();
    }
    add_sweep_row(table, drop, stats, baseline, ok);
  }
  bench::emit(table);
}

void run_mwc(const Graph& g, bool quick) {
  bench::section("F1c: exact MWC pipeline under drops (reliable transport)");
  const Weight ref = graph::seq::mwc(g);
  Network raw_net(g, 17);
  cycle::MwcResult baseline = cycle::exact_mwc(raw_net);
  support::Table table({"drop", "rounds", "words", "dropped", "retx words",
                        "word overhead", "value ok?"});
  for (double drop : drop_rates(quick)) {
    Network net(g, 17, reliable_lossy(drop));
    cycle::MwcResult got = cycle::exact_mwc(net);
    add_sweep_row(table, drop, got.stats, baseline.stats,
                  got.value == ref && got.value == baseline.value);
  }
  bench::emit(table);
  bench::note("every row must answer exactly what the fault-free run answers; "
              "drops only ever show up in the words/rounds columns");
}

void run_corruption(const Graph& g, bool quick) {
  bench::section("F2: exact MWC under word corruption (checksumming transport)");
  const Weight ref = graph::seq::mwc(g);
  Network raw_net(g, 19);
  cycle::MwcResult baseline = cycle::exact_mwc(raw_net);
  const std::vector<double> rates =
      quick ? std::vector<double>{0.0, 0.05}
            : std::vector<double>{0.0, 0.01, 0.02, 0.05};
  support::Table table({"corrupt", "rounds", "words", "corrupted words",
                        "checksum rejects", "retx words", "word overhead",
                        "status", "value ok?"});
  for (double rate : rates) {
    NetworkConfig cfg;
    cfg.faults.corrupt_prob = rate;
    cfg.reliable_transport = true;
    Network net(g, 19, cfg);
    cycle::SolveOptions opts;
    opts.mode = cycle::SolveMode::kExact;
    cycle::MwcReport report = cycle::solve(net, opts);
    const RunStats& stats = report.fault_ledger();
    table.add_row(
        {support::Table::fmt(rate, 2),
         support::Table::fmt(static_cast<std::int64_t>(stats.rounds)),
         support::Table::fmt(static_cast<std::int64_t>(stats.words)),
         support::Table::fmt(static_cast<std::int64_t>(stats.corrupted_words)),
         support::Table::fmt(static_cast<std::int64_t>(stats.checksum_rejects)),
         support::Table::fmt(
             static_cast<std::int64_t>(stats.retransmitted_words)),
         support::Table::fmt(static_cast<double>(stats.words) /
                                 static_cast<double>(baseline.stats.words),
                             2),
         std::string(cycle::to_string(report.status)),
         report.result.value == ref ? "yes" : "NO"});
  }
  bench::emit(table);
  bench::note("corruption is fully masked: every row must read `certified` "
              "with the fault-free value; the rate only moves the "
              "reject/retransmission columns");
}

void run_recovery(const Graph& g, bool quick) {
  bench::section("F3: exact MWC with one crash, sweeping the recovery delay");
  const Weight ref = graph::seq::mwc(g);
  const std::uint64_t crash_round = 10;
  const std::vector<std::uint64_t> delays =
      quick ? std::vector<std::uint64_t>{40} : std::vector<std::uint64_t>{10, 40, 160, 640};
  support::Table table({"recover delay", "rounds", "words", "crashes",
                        "recoveries", "status", "value", "sound?"});
  for (std::uint64_t delay : delays) {
    NetworkConfig cfg;
    cfg.reliable_transport = true;
    cfg.max_rounds_per_run = 500'000;
    cfg.faults.crashes.push_back(congest::CrashFault{3, crash_round});
    cfg.faults.recovers.push_back(
        congest::RecoverFault{3, crash_round + delay});
    Network net(g, 23, cfg);
    cycle::SolveOptions opts;
    opts.mode = cycle::SolveMode::kExact;
    cycle::MwcReport report = cycle::solve(net, opts);
    const RunStats& stats = report.fault_ledger();
    // Sound = inf (nothing salvaged) or a genuine cycle weight >= optimum.
    const bool sound = report.result.value == graph::kInfWeight ||
                       report.result.value >= ref;
    table.add_row(
        {support::Table::fmt(static_cast<std::int64_t>(delay)),
         support::Table::fmt(static_cast<std::int64_t>(stats.rounds)),
         support::Table::fmt(static_cast<std::int64_t>(stats.words)),
         support::Table::fmt(static_cast<std::int64_t>(stats.crashes)),
         support::Table::fmt(static_cast<std::int64_t>(stats.recoveries)),
         std::string(cycle::to_string(report.status)),
         report.result.value == graph::kInfWeight
             ? "inf"
             : support::Table::fmt(
                   static_cast<std::int64_t>(report.result.value)),
         sound ? "yes" : "NO"});
  }
  bench::emit(table);
  bench::note("a crash-recovered run loses volatile state, so every row is "
              "labeled degraded - but the salvaged value is still a genuine "
              "cycle weight (never an underestimate), and the ledger shows "
              "the crash/recovery pair once per protocol run");
}

void run_duplication(const Graph& g, bool quick) {
  bench::section("F4: exact MWC under message duplication (dedup transport)");
  const Weight ref = graph::seq::mwc(g);
  Network raw_net(g, 31);
  cycle::MwcResult baseline = cycle::exact_mwc(raw_net);
  const std::vector<double> rates =
      quick ? std::vector<double>{0.0, 0.2}
            : std::vector<double>{0.0, 0.1, 0.2, 0.4};
  support::Table table({"dup", "rounds", "words", "dup msgs", "dup words",
                        "word overhead", "status", "value ok?"});
  for (double rate : rates) {
    NetworkConfig cfg;
    cfg.faults.dup_prob = rate;
    cfg.reliable_transport = true;
    Network net(g, 31, cfg);
    cycle::SolveOptions opts;
    opts.mode = cycle::SolveMode::kExact;
    cycle::MwcReport report = cycle::solve(net, opts);
    const RunStats& stats = report.fault_ledger();
    table.add_row(
        {support::Table::fmt(rate, 2),
         support::Table::fmt(static_cast<std::int64_t>(stats.rounds)),
         support::Table::fmt(static_cast<std::int64_t>(stats.words)),
         support::Table::fmt(static_cast<std::int64_t>(stats.dup_messages)),
         support::Table::fmt(static_cast<std::int64_t>(stats.dup_words)),
         support::Table::fmt(static_cast<double>(stats.words) /
                                 static_cast<double>(baseline.stats.words),
                             2),
         std::string(cycle::to_string(report.status)),
         report.result.value == ref ? "yes" : "NO"});
  }
  bench::emit(table);
  bench::note("the ARQ layer's per-link sequence numbers absorb re-delivery: "
              "every row must read `certified` with the fault-free value and "
              "the fault-free round/word bill - duplicate traffic shows up "
              "only on the dup msgs/words ledger, never re-processed");
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonLog json_log("faults");
  support::Flags flags(argc, argv, {"quick"});
  const bool quick = flags.has("quick");
  support::Rng rng(29);
  const int n = quick ? 48 : 96;
  Graph g = graph::random_connected(n, 5 * n / 2, graph::WeightRange{1, 9}, rng);
  run_bfs(g, quick);
  run_broadcast(g, quick);
  run_mwc(g, quick);
  run_corruption(g, quick);
  run_recovery(g, quick);
  run_duplication(g, quick);
  return 0;
}
