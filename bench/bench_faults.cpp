// F1: cost of reliability under lossy links.
//
// Sweeps the per-message drop probability and reruns the textbook
// primitives (BFS tree, pipelined broadcast) and the full exact-MWC
// pipeline over the reliable (ARQ) transport. Each run is checked against
// the fault-free answer - the point of the transport is that answers never
// change, only the round/word bill does. The tables report that bill:
// retransmitted words, dropped messages, and the word overhead relative to
// the raw (no-ARQ, no-loss) baseline. The drop=0 row isolates the fixed
// framing cost of the transport itself (sequence headers + acks).
#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "congest/bfs_tree.h"
#include "congest/broadcast.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/exact.h"
#include "support/flags.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using congest::Network;
using congest::NetworkConfig;
using congest::RunStats;
using graph::Graph;
using graph::NodeId;
using graph::Weight;

NetworkConfig reliable_lossy(double drop) {
  NetworkConfig cfg;
  cfg.faults.drop_prob = drop;
  cfg.reliable_transport = true;
  return cfg;
}

std::vector<double> drop_rates(bool quick) {
  return quick ? std::vector<double>{0.0, 0.2}
               : std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.3};
}

void add_sweep_row(support::Table& table, double drop, const RunStats& stats,
                   const RunStats& baseline, bool ok) {
  table.add_row(
      {support::Table::fmt(drop, 2),
       support::Table::fmt(static_cast<std::int64_t>(stats.rounds)),
       support::Table::fmt(static_cast<std::int64_t>(stats.words)),
       support::Table::fmt(static_cast<std::int64_t>(stats.dropped_messages)),
       support::Table::fmt(static_cast<std::int64_t>(stats.retransmitted_words)),
       support::Table::fmt(static_cast<double>(stats.words) /
                               static_cast<double>(baseline.words),
                           2),
       ok ? "yes" : "NO"});
}

void run_bfs(const Graph& g, bool quick) {
  bench::section("F1a: BFS tree under drops (reliable transport)");
  const auto ref = graph::seq::bfs_hops(g.communication_topology(), 0);
  Network raw_net(g, 11);
  RunStats baseline;
  (void)congest::build_bfs_tree(raw_net, 0, &baseline);
  bench::note("raw baseline (no ARQ): " +
              support::Table::fmt(static_cast<std::int64_t>(baseline.rounds)) +
              " rounds, " +
              support::Table::fmt(static_cast<std::int64_t>(baseline.words)) +
              " words");
  support::Table table({"drop", "rounds", "words", "dropped", "retx words",
                        "word overhead", "depths ok?"});
  for (double drop : drop_rates(quick)) {
    Network net(g, 11, reliable_lossy(drop));
    RunStats stats;
    congest::BfsTreeResult tree = congest::build_bfs_tree(net, 0, &stats);
    bool ok = true;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      ok &= tree.depth[static_cast<std::size_t>(v)] ==
            ref[static_cast<std::size_t>(v)];
    }
    add_sweep_row(table, drop, stats, baseline, ok);
  }
  bench::emit(table);
}

void run_broadcast(const Graph& g, bool quick) {
  bench::section("F1b: pipelined broadcast under drops (reliable transport)");
  std::vector<std::vector<congest::BroadcastItem>> items(
      static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    items[static_cast<std::size_t>(v)].push_back(
        {static_cast<congest::Word>(v), static_cast<congest::Word>(3 * v)});
  }
  Network raw_net(g, 13);
  congest::BfsTreeResult raw_tree = congest::build_bfs_tree(raw_net, 0);
  RunStats baseline;
  congest::BroadcastResult ref =
      congest::broadcast(raw_net, raw_tree, items, &baseline);
  support::Table table({"drop", "rounds", "words", "dropped", "retx words",
                        "word overhead", "items ok?"});
  for (double drop : drop_rates(quick)) {
    Network net(g, 13, reliable_lossy(drop));
    congest::BfsTreeResult tree = congest::build_bfs_tree(net, 0);
    RunStats stats;
    congest::BroadcastResult got = congest::broadcast(net, tree, items, &stats);
    bool ok = got.items().size() == ref.items().size();
    for (NodeId v = 0; ok && v < g.node_count(); ++v) {
      ok = got.received_count(v) == got.items().size();
    }
    add_sweep_row(table, drop, stats, baseline, ok);
  }
  bench::emit(table);
}

void run_mwc(const Graph& g, bool quick) {
  bench::section("F1c: exact MWC pipeline under drops (reliable transport)");
  const Weight ref = graph::seq::mwc(g);
  Network raw_net(g, 17);
  cycle::MwcResult baseline = cycle::exact_mwc(raw_net);
  support::Table table({"drop", "rounds", "words", "dropped", "retx words",
                        "word overhead", "value ok?"});
  for (double drop : drop_rates(quick)) {
    Network net(g, 17, reliable_lossy(drop));
    cycle::MwcResult got = cycle::exact_mwc(net);
    add_sweep_row(table, drop, got.stats, baseline.stats,
                  got.value == ref && got.value == baseline.value);
  }
  bench::emit(table);
  bench::note("every row must answer exactly what the fault-free run answers; "
              "drops only ever show up in the words/rounds columns");
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonLog json_log("faults");
  support::Flags flags(argc, argv, {"quick"});
  const bool quick = flags.has("quick");
  support::Rng rng(29);
  const int n = quick ? 48 : 96;
  Graph g = graph::random_connected(n, 5 * n / 2, graph::WeightRange{1, 9}, rng);
  run_bfs(g, quick);
  run_broadcast(g, quick);
  run_mwc(g, quick);
  return 0;
}
