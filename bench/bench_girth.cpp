// E5 (Table 1, girth row; Theorem 1.3.B): exact girth O(n) [28] vs the
// prior-best (2-1/g)-approximation O~(sqrt(ng)+D) [44] vs this paper's
// O~(sqrt(n)+D).
//
// Two workload series:
//  * small-girth random graphs (g = 3..5): all three should be cheap; ours
//    and PRT comparable (g is constant), exact pays O(n);
//  * pure n-cycles (g = n): PRT's sqrt(ng) = n degrades to linear while ours
//    stays ~ sqrt(n) - the separation Theorem 1.3.B adds over [44].
#include <cmath>

#include "bench_util.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/exact.h"
#include "mwc/girth_approx.h"
#include "mwc/girth_prt.h"
#include "support/flags.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using congest::Network;
using graph::Graph;
using graph::Weight;
using graph::WeightRange;

void run_small_girth(bool quick) {
  bench::section("E5a: girth on sparse random graphs (small g)");
  bench::note("paper: exact O(n) [28] | PRT (2-1/g) O~(sqrt(ng)+D) [44] | "
              "ours (2-1/g) O~(sqrt(n)+D) [Thm 1.3.B]");
  support::Table table({"n", "D", "g", "exact rounds", "prt rounds", "prt val",
                        "ours rounds", "ours val", "ratio ok?"});
  bench::ExponentTracker exact_fit, ours_fit, prt_fit;
  for (int n : quick ? std::vector<int>{128, 256} : std::vector<int>{128, 256, 512, 1024}) {
    support::Rng rng(static_cast<std::uint64_t>(n));
    Graph g = graph::random_connected(n, 3 * n, WeightRange{1, 1}, rng);
    const int diam = graph::seq::communication_diameter(g);
    Weight girth = graph::seq::girth(g);

    Network net_exact(g, 5);
    cycle::MwcResult exact = cycle::exact_mwc(net_exact);

    Network net_prt(g, 5);
    cycle::MwcResult prt = cycle::girth_prt(net_prt);

    Network net_ours(g, 5);
    cycle::GirthApproxParams params;
    params.sample_constant = 1.5;
    cycle::MwcResult ours = cycle::girth_approx(net_ours, params);

    const bool ok = exact.value == girth && ours.value >= girth &&
                    ours.value <= 2 * girth - 1 && prt.value >= girth &&
                    prt.value <= 2 * girth - 1;
    exact_fit.add(n, static_cast<double>(exact.stats.rounds));
    ours_fit.add(n, static_cast<double>(ours.stats.rounds));
    prt_fit.add(n, static_cast<double>(prt.stats.rounds));
    table.add_row({support::Table::fmt(static_cast<std::int64_t>(n)),
                   support::Table::fmt(static_cast<std::int64_t>(diam)),
                   support::Table::fmt(girth),
                   support::Table::fmt(static_cast<std::int64_t>(exact.stats.rounds)),
                   support::Table::fmt(static_cast<std::int64_t>(prt.stats.rounds)),
                   support::Table::fmt(prt.value),
                   support::Table::fmt(static_cast<std::int64_t>(ours.stats.rounds)),
                   support::Table::fmt(ours.value), ok ? "yes" : "NO"});
  }
  bench::emit(table);
  bench::note(exact_fit.summary("exact rounds vs n", 1.0));
  bench::note(prt_fit.summary("PRT rounds vs n (g const)", 0.5));
  bench::note(ours_fit.summary("ours rounds vs n", 0.5));
}

void run_large_girth(bool quick) {
  bench::section("E5b: girth on pure n-cycles (g = n): the sqrt(ng) vs sqrt(n) split");
  support::Table table({"n (= g)", "exact rounds", "prt rounds", "ours rounds",
                        "prt/ours", "values ok?"});
  bench::ExponentTracker ours_fit, prt_fit;
  for (int n : quick ? std::vector<int>{128, 256} : std::vector<int>{128, 256, 512, 1024}) {
    support::Rng rng(static_cast<std::uint64_t>(n) + 7);
    Graph g = graph::cycle_with_chords(n, 0, WeightRange{1, 1}, rng);

    Network net_exact(g, 9);
    cycle::MwcResult exact = cycle::exact_mwc(net_exact);

    Network net_prt(g, 9);
    cycle::MwcResult prt = cycle::girth_prt(net_prt);

    Network net_ours(g, 9);
    cycle::GirthApproxParams params;
    params.sample_constant = 1.5;
    cycle::MwcResult ours = cycle::girth_approx(net_ours, params);

    const bool ok = exact.value == n && prt.value == n && ours.value == n;
    ours_fit.add(n, static_cast<double>(ours.stats.rounds));
    prt_fit.add(n, static_cast<double>(prt.stats.rounds));
    table.add_row(
        {support::Table::fmt(static_cast<std::int64_t>(n)),
         support::Table::fmt(static_cast<std::int64_t>(exact.stats.rounds)),
         support::Table::fmt(static_cast<std::int64_t>(prt.stats.rounds)),
         support::Table::fmt(static_cast<std::int64_t>(ours.stats.rounds)),
         support::Table::fmt(static_cast<double>(prt.stats.rounds) /
                                 static_cast<double>(ours.stats.rounds),
                             2),
         ok ? "yes" : "NO"});
  }
  bench::emit(table);
  bench::note(prt_fit.summary("PRT rounds vs n (g = n)", 1.0));
  bench::note(ours_fit.summary("ours rounds vs n (g = n)", 1.0));
  bench::note("(on a bare cycle D = n/2, so both pay D; PRT additionally pays "
              "its doubling phases - the prt/ours column shows the separation)");
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonLog json_log("girth");
  support::Flags flags(argc, argv, {"quick"});
  const bool quick = flags.has("quick");
  run_small_girth(quick);
  run_large_girth(quick);
  return 0;
}
