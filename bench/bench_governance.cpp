// G1: the anytime deadline-vs-quality tradeoff of governed solves.
//
// A full ungoverned exact solve fixes the instance's total round bill
// R_total; the sweep then reruns the same solve under round budgets of
// {5, 10, 20, 40, 60, 80, 100}% of R_total and records what each budget
// buys: the solve status (certified / degraded / failed), the anytime
// bounds [lower, upper] the report carries, and the rounds actually spent.
// Every row is checked for soundness against the sequential oracle - the
// bounds must bracket the true MWC at every budget, a certified label must
// mean the exact answer, and a salvaged value is a genuine cycle weight
// (an upper bound), never an underestimate. A second section sweeps word
// budgets the same way: words are the CONGEST cost measure the paper
// bounds, so this is the "bandwidth bill vs quality" curve.
//
// The JSON mirror (BENCH_GOVERNANCE.json) carries the same rows for plots
// and regression checks.
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "congest/governor.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/api.h"
#include "support/flags.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using congest::Budget;
using congest::Governor;
using congest::Network;
using graph::Graph;
using graph::Weight;

std::string weight_str(Weight w) {
  return w == graph::kInfWeight
             ? "inf"
             : support::Table::fmt(static_cast<std::int64_t>(w));
}

struct SweepTotals {
  int rows = 0;
  int sound = 0;
  int certified = 0;
};

// One governed solve under `budget`; appends a row and updates the totals.
void run_budgeted(const Graph& g, std::uint64_t seed, int percent,
                  const Budget& budget, Weight oracle, support::Table& table,
                  SweepTotals& totals) {
  Network net(g, seed);
  Governor governor(budget);
  cycle::SolveOptions opts;
  opts.mode = cycle::SolveMode::kExact;
  opts.governor = &governor;
  cycle::MwcReport report = cycle::solve(net, opts);

  const bool bracketed =
      report.lower_bound <= oracle && oracle <= report.upper_bound;
  const bool value_sound = report.result.value == graph::kInfWeight ||
                           report.result.value >= oracle;
  const bool certified_right =
      !report.certified() || report.result.value == oracle;
  const bool sound = bracketed && value_sound && certified_right;

  ++totals.rows;
  if (sound) ++totals.sound;
  if (report.certified()) ++totals.certified;
  table.add_row(
      {support::Table::fmt(static_cast<std::int64_t>(percent)),
       support::Table::fmt(static_cast<std::int64_t>(report.run.stats.rounds)),
       support::Table::fmt(static_cast<std::int64_t>(report.run.stats.words)),
       std::string(cycle::to_string(report.status)),
       std::string(congest::to_string(report.stop.reason)),
       weight_str(report.result.value), weight_str(report.lower_bound),
       weight_str(report.upper_bound), sound ? "yes" : "NO"});
}

const std::vector<int>& budget_percents() {
  static const std::vector<int> percents = {5, 10, 20, 40, 60, 80, 100};
  return percents;
}

void run_round_budget_sweep(const Graph& g, std::uint64_t seed,
                            std::uint64_t total_rounds, Weight oracle) {
  bench::section("G1a: round budget vs answer quality (anytime sweep)");
  bench::note("full solve spends " + std::to_string(total_rounds) +
              " rounds; each row caps the solve at a fraction of that and "
              "reports the anytime answer it still gets");
  support::Table table({"budget%", "rounds", "words", "status", "stop",
                        "value", "lower", "upper", "sound"});
  SweepTotals totals;
  for (int percent : budget_percents()) {
    Budget budget;
    budget.max_rounds = std::max<std::uint64_t>(
        1, total_rounds * static_cast<std::uint64_t>(percent) / 100);
    run_budgeted(g, seed, percent, budget, oracle, table, totals);
  }
  bench::emit(table);
  bench::metric("round_sweep_sound_rows", totals.sound);
  bench::metric("round_sweep_rows", totals.rows);
  bench::metric("round_sweep_certified_rows", totals.certified);
}

void run_word_budget_sweep(const Graph& g, std::uint64_t seed,
                           std::uint64_t total_words, Weight oracle) {
  bench::section("G1b: word budget vs answer quality (anytime sweep)");
  bench::note("words are the CONGEST cost measure; the full solve settles " +
              std::to_string(total_words) + " words");
  support::Table table({"budget%", "rounds", "words", "status", "stop",
                        "value", "lower", "upper", "sound"});
  SweepTotals totals;
  for (int percent : budget_percents()) {
    Budget budget;
    budget.max_words = std::max<std::uint64_t>(
        1, total_words * static_cast<std::uint64_t>(percent) / 100);
    run_budgeted(g, seed, percent, budget, oracle, table, totals);
  }
  bench::emit(table);
  bench::metric("word_sweep_sound_rows", totals.sound);
  bench::metric("word_sweep_rows", totals.rows);
  bench::metric("word_sweep_certified_rows", totals.certified);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonLog json_log("governance");
  support::Flags flags(argc, argv, {"quick"});
  const bool quick = flags.has("quick");
  support::Rng rng(31);
  const int n = quick ? 48 : 96;
  Graph g = graph::random_connected(n, 5 * n / 2, graph::WeightRange{1, 9}, rng);
  const Weight oracle = graph::seq::mwc(g);

  // The ungoverned reference fixes the instance's full price.
  Network ref_net(g, 17);
  cycle::SolveOptions ref_opts;
  ref_opts.mode = cycle::SolveMode::kExact;
  cycle::MwcReport ref = cycle::solve(ref_net, ref_opts);
  bench::section("reference (ungoverned exact solve)");
  bench::note("n=" + std::to_string(n) + ", oracle mwc=" +
              std::to_string(static_cast<long long>(oracle)) + ", status=" +
              cycle::to_string(ref.status));
  bench::metric("ref_rounds", static_cast<double>(ref.run.stats.rounds));
  bench::metric("ref_words", static_cast<double>(ref.run.stats.words));

  run_round_budget_sweep(g, 17, ref.run.stats.rounds, oracle);
  run_word_budget_sweep(g, 17, ref.run.stats.words, oracle);
  return 0;
}
