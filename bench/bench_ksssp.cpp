// E1 / E2 (Theorem 1.6): k-source BFS and (1+eps)-approximate k-source SSSP.
//
// Regenerates the Theorem 1.6 comparison: for k >= n^(1/3) sources the
// skeleton algorithm runs in O~(sqrt(nk) + D) rounds; baselines are the
// naive O(n + k) pipelined flood (unweighted) and k sequential SSSPs
// (weighted). Correctness is cross-checked against sequential references on
// every instance; the weighted table also reports the worst observed
// (1+eps) ratio.
#include <algorithm>
#include <cmath>
#include <string>

#include "bench_util.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "ksssp/naive.h"
#include "ksssp/skeleton_bfs.h"
#include "ksssp/skeleton_sssp.h"
#include "support/flags.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using congest::Network;
using graph::Graph;
using graph::NodeId;
using graph::WeightRange;

std::vector<NodeId> pick_sources(int n, int k, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<NodeId> all(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
  rng.shuffle(all);
  all.resize(static_cast<std::size_t>(std::min(k, n)));
  std::sort(all.begin(), all.end());
  return all;
}

void run_unweighted(bool quick) {
  bench::section("E1: exact k-source directed BFS (Theorem 1.6.A)");
  bench::note("paper: skeleton O~(sqrt(nk)+D) vs naive pipelined flood O(n+k)");
  support::Table table({"n", "k", "D", "skel rounds", "|S|", "h", "naive rounds",
                        "exact?"});
  bench::ExponentTracker skel_fit, naive_fit;
  for (int n : quick ? std::vector<int>{256, 512} : std::vector<int>{256, 512, 1024, 2048}) {
    support::Rng rng(static_cast<std::uint64_t>(n));
    Graph g = graph::random_strongly_connected(n, 3 * n, WeightRange{1, 1}, rng);
    const int k = static_cast<int>(std::lround(std::cbrt(static_cast<double>(n))));
    std::vector<NodeId> sources = pick_sources(n, k, 7);
    const int diam = graph::seq::communication_diameter(g);

    Network net_skel(g, 11);
    ksssp::SkeletonBfsParams params;
    params.sources = sources;
    ksssp::KSsspResult skel = skeleton_k_source_bfs(net_skel, params);

    Network net_naive(g, 11);
    ksssp::KSsspResult naive = ksssp::naive_k_source_bfs(net_naive, sources);

    bool exact = true;
    for (std::size_t i = 0; i < sources.size() && exact; ++i) {
      auto ref = graph::seq::bfs_hops(g, sources[i]);
      for (NodeId v = 0; v < n; ++v) {
        if (skel.dist.at(v, static_cast<int>(i)) != ref[static_cast<std::size_t>(v)]) {
          exact = false;
          break;
        }
      }
    }
    skel_fit.add(n, static_cast<double>(skel.stats.rounds));
    naive_fit.add(n, static_cast<double>(naive.stats.rounds));
    table.add_row({support::Table::fmt(static_cast<std::int64_t>(n)),
                   support::Table::fmt(static_cast<std::int64_t>(sources.size())),
                   support::Table::fmt(static_cast<std::int64_t>(diam)),
                   support::Table::fmt(static_cast<std::int64_t>(skel.stats.rounds)),
                   support::Table::fmt(static_cast<std::int64_t>(skel.skeleton_size)),
                   support::Table::fmt(static_cast<std::int64_t>(skel.h)),
                   support::Table::fmt(static_cast<std::int64_t>(naive.stats.rounds)),
                   exact ? "yes" : "NO"});
  }
  bench::emit(table);
  // sqrt(n * n^(1/3)) = n^(2/3).
  bench::note(skel_fit.summary("skeleton rounds vs n", 2.0 / 3.0));
  bench::note(naive_fit.summary("naive rounds vs n", 1.0));
  bench::note("(skeleton carries log^2 n broadcast constants; the asymptotic "
              "crossover vs the O(n+k) flood lies beyond simulable sizes - "
              "compare the fitted exponents)");
}

void run_weighted(bool quick) {
  bench::section("E2: (1+eps) k-source SSSP, weighted digraphs (Theorem 1.6.B)");
  bench::note("paper: skeleton ladder O~(sqrt(nk)+D) vs k sequential SSSPs");
  support::Table table({"n", "k", "eps", "skel rounds", "k x SSSP rounds",
                        "max ratio"});
  bench::ExponentTracker skel_fit;
  for (int n : quick ? std::vector<int>{256, 512} : std::vector<int>{256, 512, 1024}) {
    support::Rng rng(static_cast<std::uint64_t>(n) + 99);
    Graph g = graph::random_strongly_connected(n, 3 * n, WeightRange{1, 16}, rng);
    const int k = static_cast<int>(std::lround(std::cbrt(static_cast<double>(n))));
    std::vector<NodeId> sources = pick_sources(n, k, 13);
    const double eps = 0.25;

    Network net_skel(g, 17);
    ksssp::SkeletonSsspParams params;
    params.sources = sources;
    params.epsilon = eps;
    ksssp::KSsspResult skel = skeleton_k_source_sssp(net_skel, params);

    Network net_seq(g, 17);
    ksssp::KSsspResult seq = ksssp::sequential_k_source_sssp(net_seq, sources);

    double max_ratio = 1.0;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      auto ref = graph::seq::dijkstra(g, sources[i]);
      for (NodeId v = 0; v < n; ++v) {
        graph::Weight exact = ref[static_cast<std::size_t>(v)];
        graph::Weight est = skel.dist.at(v, static_cast<int>(i));
        if (exact == graph::kInfWeight || exact == 0) continue;
        max_ratio = std::max(
            max_ratio, static_cast<double>(est) / static_cast<double>(exact));
      }
    }
    skel_fit.add(n, static_cast<double>(skel.stats.rounds));
    table.add_row({support::Table::fmt(static_cast<std::int64_t>(n)),
                   support::Table::fmt(static_cast<std::int64_t>(sources.size())),
                   support::Table::fmt(eps, 2),
                   support::Table::fmt(static_cast<std::int64_t>(skel.stats.rounds)),
                   support::Table::fmt(static_cast<std::int64_t>(seq.stats.rounds)),
                   support::Table::fmt(max_ratio, 4)});
  }
  bench::emit(table);
  bench::note(skel_fit.summary("skeleton-SSSP rounds vs n", 2.0 / 3.0));
  bench::note("guarantee: max ratio must stay <= 1 + eps = 1.25");
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonLog json_log("ksssp");
  support::Flags flags(argc, argv, {"quick"});
  const bool quick = flags.has("quick");
  run_unweighted(quick);
  run_weighted(quick);
  return 0;
}
