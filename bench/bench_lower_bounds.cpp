// E7 / E8 / E9: the lower-bound constructions (Theorems 1.2.A/B, 1.3.A,
// 1.4.A/B).
//
// The information-theoretic Omega(k) bound for set disjointness cannot be
// "run"; what the bench does instead (DESIGN.md substitution 3):
//   1. verify the *reduction*: the gadget's MWC decides disjointness with
//      the promised gap, on both forced-intersecting and forced-disjoint
//      instances;
//   2. run a real algorithm on the gadget with the construction's cut
//      metered, and report the words that crossed it - the quantity the
//      communication argument lower-bounds - next to the implied round
//      floor words / (cut links * bandwidth) for this execution.
#include <cmath>

#include "bench_util.h"
#include "congest/metrics.h"
#include "congest/network.h"
#include "graph/sequential.h"
#include "lowerbounds/alpha_gadget.h"
#include "lowerbounds/disjointness_gadget.h"
#include "mwc/exact.h"
#include "mwc/girth_approx.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using congest::Network;
using graph::Weight;

void run_disjointness() {
  bench::section("E7: (2-eps)-inapprox gadget (Thms 1.2.A / 1.4.A) - directed");
  bench::note("k = p^2 disjointness bits, Theta(p) cut; exact MWC decides");
  support::Table table({"p", "n", "bits k", "cut links", "case", "mwc",
                        "decision ok?", "cut words", "implied round floor"});
  congest::Metrics metrics;  // per-phase profile across every E7 execution
  for (int p : {8, 16, 24, 32}) {
    for (int force = 1; force >= 0; --force) {
      support::Rng rng(static_cast<std::uint64_t>(p) * 2 + static_cast<std::uint64_t>(force));
      auto inst = lb::random_disjointness(p, 0.3, force, rng);
      lb::GadgetGraph gadget = lb::directed_disjointness_gadget(inst);
      Network net(gadget.graph, 3);
      net.set_cut(gadget.bob_side);
      net.attach_metrics(&metrics);
      cycle::MwcResult result = cycle::exact_mwc(net);
      const bool decided =
          (result.value <= gadget.yes_threshold) == inst.intersects;
      const int cut = net.cut_link_count();
      table.add_row(
          {support::Table::fmt(static_cast<std::int64_t>(p)),
           support::Table::fmt(static_cast<std::int64_t>(gadget.graph.node_count())),
           support::Table::fmt(static_cast<std::int64_t>(p) * p),
           support::Table::fmt(static_cast<std::int64_t>(cut)),
           force == 1 ? "intersect" : "disjoint",
           result.value == graph::kInfWeight ? "inf" : support::Table::fmt(result.value),
           decided ? "yes" : "NO",
           support::Table::fmt(static_cast<std::int64_t>(net.stats().cut_words)),
           support::Table::fmt(static_cast<std::int64_t>(
               net.stats().cut_words / static_cast<std::uint64_t>(cut)))});
    }
  }
  bench::emit(table);
  bench::note("cut words grow ~ k = p^2 (the disjointness information must "
              "cross); the last column is a per-execution round floor.");
  bench::note("per-phase engine profile (all E7 executions; cut words from "
              "the metered cut):");
  bench::emit_metrics(metrics.snapshot());
}

void run_undirected_disjointness() {
  bench::section("E7b: undirected weighted variant (Thm 1.4.A)");
  support::Table table({"p", "eps", "case", "mwc", "yes thr", "decision ok?"});
  for (int p : {8, 16}) {
    for (int force = 1; force >= 0; --force) {
      support::Rng rng(static_cast<std::uint64_t>(p) * 5 + static_cast<std::uint64_t>(force));
      auto inst = lb::random_disjointness(p, 0.3, force, rng);
      lb::GadgetGraph gadget = lb::undirected_disjointness_gadget(inst, 0.5);
      Weight mwc = graph::seq::mwc(gadget.graph);
      const bool decided = (mwc <= gadget.yes_threshold) == inst.intersects;
      table.add_row({support::Table::fmt(static_cast<std::int64_t>(p)),
                     support::Table::fmt(0.5, 2),
                     force == 1 ? "intersect" : "disjoint",
                     mwc == graph::kInfWeight ? "inf" : support::Table::fmt(mwc),
                     support::Table::fmt(gadget.yes_threshold),
                     decided ? "yes" : "NO"});
    }
  }
  bench::emit(table);
}

void run_alpha() {
  bench::section("E8: alpha-approx gadgets (Thms 1.2.B / 1.4.B), alpha = 4");
  support::Table table({"variant", "p", "ell", "n", "D", "case", "mwc",
                        "decision ok?"});
  lb::AlphaGadgetParams params;
  params.alpha = 4.0;
  for (int p : {8, 16, 32}) {
    params.path_length = p;  // square-ish: p paths of length p
    for (int force = 1; force >= 0; --force) {
      support::Rng rng(static_cast<std::uint64_t>(p) * 7 + static_cast<std::uint64_t>(force));
      auto inst = lb::random_path_instance(p, 0.3, force, rng);
      for (int variant = 0; variant < 2; ++variant) {
        lb::GadgetGraph gadget = variant == 0
                                     ? lb::directed_alpha_gadget(inst, params)
                                     : lb::undirected_alpha_gadget(inst, params);
        Weight mwc = graph::seq::mwc(gadget.graph);
        const bool decided = (mwc <= gadget.yes_threshold) == inst.intersects;
        table.add_row(
            {variant == 0 ? "directed" : "undirected-wtd",
             support::Table::fmt(static_cast<std::int64_t>(p)),
             support::Table::fmt(static_cast<std::int64_t>(params.path_length)),
             support::Table::fmt(static_cast<std::int64_t>(gadget.graph.node_count())),
             support::Table::fmt(static_cast<std::int64_t>(
                 graph::seq::communication_diameter(gadget.graph))),
             force == 1 ? "intersect" : "disjoint",
             mwc == graph::kInfWeight ? "inf" : support::Table::fmt(mwc),
             decided ? "yes" : "NO"});
      }
    }
  }
  bench::emit(table);
  bench::note("the shortcut tree keeps D = O(log n) while p = Theta(sqrt n) "
              "bits must cross: the Omega~(sqrt n) regime of [49].");
}

void run_girth_gadget() {
  bench::section("E9: girth alpha-approx gadget (Thm 1.3.A), alpha = 2.5");
  support::Table table({"p", "n", "case", "girth", "approx (Thm 1.3.B)",
                        "decision ok?", "cut words"});
  lb::AlphaGadgetParams params;
  params.alpha = 2.5;
  params.path_length = 6;
  congest::Metrics metrics;  // per-phase profile across every E9 execution
  for (int p : {6, 12, 18}) {
    for (int force = 1; force >= 0; --force) {
      support::Rng rng(static_cast<std::uint64_t>(p) * 9 + static_cast<std::uint64_t>(force));
      auto inst = lb::random_path_instance(p, 0.3, force, rng);
      lb::GadgetGraph gadget = lb::girth_alpha_gadget(inst, params);
      Weight girth = graph::seq::girth(gadget.graph);
      // Our own approximation also decides (it is a (2-1/g) < alpha approx).
      Network net(gadget.graph, 5);
      net.set_cut(gadget.bob_side);
      net.attach_metrics(&metrics);
      cycle::MwcResult approx = cycle::girth_approx(net);
      const bool decided =
          (approx.value <= gadget.yes_threshold) == inst.intersects;
      table.add_row(
          {support::Table::fmt(static_cast<std::int64_t>(p)),
           support::Table::fmt(static_cast<std::int64_t>(gadget.graph.node_count())),
           force == 1 ? "intersect" : "disjoint",
           girth == graph::kInfWeight ? "inf" : support::Table::fmt(girth),
           approx.value == graph::kInfWeight ? "inf"
                                             : support::Table::fmt(approx.value),
           decided ? "yes" : "NO",
           support::Table::fmt(static_cast<std::int64_t>(net.stats().cut_words))});
    }
  }
  bench::emit(table);
  bench::note("per-phase engine profile (all E9 executions):");
  bench::emit_metrics(metrics.snapshot());
}

}  // namespace

int main() {
  bench::JsonLog json_log("lower_bounds");
  run_disjointness();
  run_undirected_disjointness();
  run_alpha();
  run_girth_gadget();
  return 0;
}
