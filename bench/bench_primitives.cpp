// A4: microbenchmarks of the CONGEST substrate (google-benchmark).
//
// These validate the primitive round bounds the algorithms' analyses charge:
// broadcast O(M + D), convergecast O(D), k-source BFS O(h + k), source
// detection O(sigma + h). Counters report simulated rounds per op alongside
// wall time.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "congest/bfs_tree.h"
#include "congest/broadcast.h"
#include "congest/convergecast.h"
#include "congest/multi_bfs.h"
#include "congest/network.h"
#include "congest/source_detection.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using congest::Network;
using graph::Graph;
using graph::WeightRange;

Graph make_graph(int n, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::random_connected(n, 3 * n, WeightRange{1, 1}, rng);
}

void BM_EngineFlood(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = make_graph(n, 1);
  std::uint64_t rounds = 0, messages = 0;
  for (auto _ : state) {
    Network net(g, 2);
    congest::MultiBfsParams params;
    params.sources = {0};
    congest::RunStats s;
    run_multi_bfs(net, std::move(params), &s);
    rounds += s.rounds;
    messages += s.messages;
  }
  state.counters["sim_rounds"] =
      benchmark::Counter(static_cast<double>(rounds), benchmark::Counter::kAvgIterations);
  state.counters["sim_msgs"] =
      benchmark::Counter(static_cast<double>(messages), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_EngineFlood)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BfsTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = make_graph(n, 3);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Network net(g, 4);
    congest::RunStats s;
    congest::build_bfs_tree(net, 0, &s);
    rounds += s.rounds;
  }
  state.counters["sim_rounds"] =
      benchmark::Counter(static_cast<double>(rounds), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BfsTree)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Broadcast(benchmark::State& state) {
  const int n = 512;
  const int items = static_cast<int>(state.range(0));
  Graph g = make_graph(n, 5);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Network net(g, 6);
    congest::BfsTreeResult tree = congest::build_bfs_tree(net);
    std::vector<std::vector<congest::BroadcastItem>> payload(n);
    support::Rng where(7);
    for (int i = 0; i < items; ++i) {
      payload[where.next_below(static_cast<std::uint64_t>(n))].push_back(
          {static_cast<congest::Word>(i)});
    }
    congest::RunStats s;
    congest::broadcast(net, tree, payload, &s);
    rounds += s.rounds;
  }
  state.counters["sim_rounds"] =
      benchmark::Counter(static_cast<double>(rounds), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Broadcast)->Arg(100)->Arg(400)->Arg(1600);

void BM_Convergecast(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Graph g = make_graph(n, 8);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Network net(g, 9);
    congest::BfsTreeResult tree = congest::build_bfs_tree(net);
    std::vector<graph::Weight> values(static_cast<std::size_t>(n), 7);
    congest::RunStats s;
    congest::convergecast(net, tree, values, congest::AggregateOp::kMin, &s);
    rounds += s.rounds;
  }
  state.counters["sim_rounds"] =
      benchmark::Counter(static_cast<double>(rounds), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Convergecast)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MultiSourceBfs(benchmark::State& state) {
  const int n = 1024;
  const int k = static_cast<int>(state.range(0));
  Graph g = make_graph(n, 10);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Network net(g, 11);
    congest::MultiBfsParams params;
    for (int i = 0; i < k; ++i) params.sources.push_back((i * 37) % n);
    std::sort(params.sources.begin(), params.sources.end());
    params.sources.erase(
        std::unique(params.sources.begin(), params.sources.end()),
        params.sources.end());
    congest::RunStats s;
    run_multi_bfs(net, std::move(params), &s);
    rounds += s.rounds;
  }
  state.counters["sim_rounds"] =
      benchmark::Counter(static_cast<double>(rounds), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MultiSourceBfs)->Arg(8)->Arg(64)->Arg(512);

void BM_SourceDetection(benchmark::State& state) {
  const int n = 1024;
  const int sigma = static_cast<int>(state.range(0));
  Graph g = make_graph(n, 12);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Network net(g, 13);
    std::vector<graph::NodeId> sources(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
    congest::RunStats s;
    congest::source_detection(net, sources, sigma, /*hop_limit=*/32, &s);
    rounds += s.rounds;
  }
  state.counters["sim_rounds"] =
      benchmark::Counter(static_cast<double>(rounds), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SourceDetection)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults to mirroring results into
// BENCH_PRIMITIVES.json (google-benchmark's native JSON schema) so this
// bench produces a machine-readable log like the table benches do. An
// explicit --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_PRIMITIVES.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (const char* dir = std::getenv("MWC_BENCH_JSON_DIR")) {
    out_flag = std::string("--benchmark_out=") + dir + "/BENCH_PRIMITIVES.json";
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
