// S1-S4: the solve-service core (mwc/service.h) under load.
//
// S1 sweeps the worker-pool width over a mixed batch (clean, lossy, and
// budget-killed requests, all-unique solve identities) and reports batch
// wall time and throughput; the outcome counters (certified/degraded) must
// not move with the worker count - workers are wall-clock only. S2 drives
// the degradation ladder with persistently hostile fault plans and bills
// the retries and exact->approx fallbacks. S3 replays one batch against a
// warm artifact cache and reports the hit rate (every hit re-serializes
// byte-identically to the cold solve - asserted in tests, billed here).
// S4 measures admission control: a burst twice the queue capacity must
// shed exactly the overflow, each with an explicit rejected_overload
// response.
//
// Deterministic counters (requests, shed, retries, fallbacks, cache hits,
// outcome splits) gate in CI via bench_compare; the wall-clock metrics
// ("*_seconds", "throughput_*") gate only at the loose timing threshold.
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "graph/generators.h"
#include "mwc/service.h"
#include "support/flags.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using graph::Graph;
using service::ServiceConfig;
using service::ServiceRequest;
using service::ServiceResponse;
using service::SolveService;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<Graph> base_graphs(bool quick) {
  std::vector<Graph> out;
  const int families = quick ? 3 : 6;
  for (int i = 0; i < families; ++i) {
    support::Rng rng(static_cast<std::uint64_t>(i) * 511 + 9);
    const int n = 16 + 4 * i;
    out.push_back(graph::random_connected(n, 2 * n, graph::WeightRange{1, 9},
                                          rng));
  }
  return out;
}

// All-unique solve identities (distinct seeds), so cache hits within one
// pass are impossible and the counters stay worker-count invariant.
std::vector<ServiceRequest> mixed_batch(const std::vector<Graph>& graphs,
                                        int copies) {
  std::vector<ServiceRequest> batch;
  int serial = 0;
  for (int copy = 0; copy < copies; ++copy) {
    for (const Graph& g : graphs) {
      for (int kind = 0; kind < 4; ++kind) {
        ServiceRequest rq;
        rq.id = "s" + std::to_string(serial);
        rq.graph = g;
        rq.seed = static_cast<std::uint64_t>(++serial) * 977;
        rq.mode = kind % 2 == 0 ? cycle::SolveMode::kExact
                                : cycle::SolveMode::kAuto;
        if (kind == 1) rq.faults.drop_prob = 0.15;
        if (kind == 2) rq.faults.dup_prob = 0.2;
        if (kind == 3) rq.budget.max_rounds = 12;  // anytime bracket path
        batch.push_back(std::move(rq));
      }
    }
  }
  return batch;
}

void run_throughput(const std::vector<Graph>& graphs, bool quick) {
  bench::section("S1: batch throughput vs worker-pool width");
  const std::vector<ServiceRequest> batch = mixed_batch(graphs, quick ? 2 : 4);
  const std::vector<int> widths =
      quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  support::Table table({"workers", "requests", "certified", "degraded",
                        "bounded", "wall s", "req/s"});
  double t1 = 0.0;
  for (int w : widths) {
    ServiceConfig cfg;
    cfg.workers = w;
    SolveService svc(cfg);
    const auto start = std::chrono::steady_clock::now();
    std::vector<ServiceResponse> rs = svc.run_batch(batch);
    const double secs = seconds_since(start);
    if (w == 1) t1 = secs;
    std::uint64_t certified = 0, degraded = 0, bounded = 0;
    for (const ServiceResponse& r : rs) {
      if (r.certified()) {
        ++certified;
      } else if (r.stop != congest::StopReason::kNone) {
        ++bounded;
      } else {
        ++degraded;
      }
    }
    table.add_row({support::Table::fmt(static_cast<std::int64_t>(w)),
                   support::Table::fmt(static_cast<std::int64_t>(rs.size())),
                   support::Table::fmt(static_cast<std::int64_t>(certified)),
                   support::Table::fmt(static_cast<std::int64_t>(degraded)),
                   support::Table::fmt(static_cast<std::int64_t>(bounded)),
                   support::Table::fmt(secs, 3),
                   support::Table::fmt(static_cast<double>(rs.size()) / secs,
                                       1)});
    if (w == widths.back()) {
      bench::metric("service_requests", static_cast<double>(rs.size()));
      bench::metric("service_certified", static_cast<double>(certified));
      bench::metric("service_bounded", static_cast<double>(bounded));
      bench::metric("batch_wall_seconds_w1", t1);
      bench::metric("batch_wall_seconds_wmax", secs);
      bench::metric("throughput_rps_wmax",
                    static_cast<double>(rs.size()) / secs);
    }
  }
  bench::emit(table);
  bench::note("outcome splits must be identical on every row - the worker "
              "pool only moves the wall clock, never a response");
}

void run_ladder(const std::vector<Graph>& graphs, bool quick) {
  bench::section("S2: degradation ladder under persistent crash faults");
  std::vector<ServiceRequest> batch;
  const int copies = quick ? 1 : 2;
  int serial = 0;
  for (int copy = 0; copy < copies; ++copy) {
    for (const Graph& g : graphs) {
      ServiceRequest rq;
      rq.id = "lad" + std::to_string(serial);
      rq.graph = g;
      rq.seed = static_cast<std::uint64_t>(++serial) * 131;
      rq.mode = cycle::SolveMode::kExact;
      rq.faults.crashes.push_back(congest::CrashFault{1, 4});
      batch.push_back(std::move(rq));
    }
  }
  ServiceConfig cfg;
  cfg.workers = quick ? 2 : 4;
  SolveService svc(cfg);
  const auto start = std::chrono::steady_clock::now();
  std::vector<ServiceResponse> rs = svc.run_batch(batch);
  const double secs = seconds_since(start);
  const SolveService::Stats stats = svc.stats();
  support::Table table({"requests", "retries", "fallbacks", "degraded",
                        "failed", "wall s"});
  table.add_row({support::Table::fmt(static_cast<std::int64_t>(rs.size())),
                 support::Table::fmt(static_cast<std::int64_t>(stats.retries)),
                 support::Table::fmt(
                     static_cast<std::int64_t>(stats.fallbacks)),
                 support::Table::fmt(static_cast<std::int64_t>(stats.degraded)),
                 support::Table::fmt(static_cast<std::int64_t>(stats.failed)),
                 support::Table::fmt(secs, 3)});
  bench::emit(table);
  bench::metric("ladder_retries", static_cast<double>(stats.retries));
  bench::metric("ladder_fallbacks", static_cast<double>(stats.fallbacks));
  bench::note("a crash schedule is part of the plan, not the seed: every "
              "request climbs the full ladder (retries with rotated seeds, "
              "then the exact->approx fallback) and still terminates with a "
              "typed bounded response");
}

void run_cache(const std::vector<Graph>& graphs, bool quick) {
  bench::section("S3: artifact cache, cold pass vs warm replay");
  const std::vector<ServiceRequest> batch = mixed_batch(graphs, quick ? 1 : 2);
  ServiceConfig cfg;
  cfg.workers = 1;  // deterministic hit accounting
  cfg.cache.max_entries = 4096;
  SolveService svc(cfg);
  const auto cold_start = std::chrono::steady_clock::now();
  (void)svc.run_batch(batch);
  const double cold = seconds_since(cold_start);
  const auto warm_start = std::chrono::steady_clock::now();
  (void)svc.run_batch(batch);
  const double warm = seconds_since(warm_start);
  const std::uint64_t hits = svc.cache().hits();
  const std::uint64_t misses = svc.cache().misses();
  // Only wall/RSS-budget requests bypass the cache; this corpus has none,
  // so the replay must hit on every request.
  const double hit_rate =
      static_cast<double>(hits) / static_cast<double>(batch.size());
  support::Table table(
      {"pass", "requests", "cache hits", "cache misses", "wall s"});
  table.add_row({"cold",
                 support::Table::fmt(static_cast<std::int64_t>(batch.size())),
                 "0", support::Table::fmt(static_cast<std::int64_t>(misses)),
                 support::Table::fmt(cold, 3)});
  table.add_row({"warm",
                 support::Table::fmt(static_cast<std::int64_t>(batch.size())),
                 support::Table::fmt(static_cast<std::int64_t>(hits)), "0",
                 support::Table::fmt(warm, 3)});
  bench::emit(table);
  bench::metric("cache_hits", static_cast<double>(hits));
  bench::metric("cache_hit_rate_pct", hit_rate * 100.0);
  bench::metric("cache_warm_seconds", warm);
  bench::metric("cache_cold_seconds", cold);
  bench::note("every warm response re-serializes byte-identically to its "
              "cold twin (asserted in tests/service_chaos_test.cpp); the "
              "speedup is the whole point of keying on the solve identity");
}

void run_admission(const std::vector<Graph>& graphs, bool quick) {
  bench::section("S4: admission control under a 2x-capacity burst");
  std::vector<ServiceRequest> burst = mixed_batch(graphs, quick ? 2 : 4);
  ServiceConfig cfg;
  cfg.workers = quick ? 2 : 4;
  cfg.queue_capacity = burst.size() / 2;
  cfg.shed_on_overload = true;
  SolveService svc(cfg);
  const auto start = std::chrono::steady_clock::now();
  std::vector<ServiceResponse> rs = svc.run_batch(burst);
  const double secs = seconds_since(start);
  const SolveService::Stats stats = svc.stats();
  support::Table table({"burst", "capacity", "admitted", "shed", "wall s"});
  table.add_row(
      {support::Table::fmt(static_cast<std::int64_t>(burst.size())),
       support::Table::fmt(static_cast<std::int64_t>(cfg.queue_capacity)),
       support::Table::fmt(static_cast<std::int64_t>(stats.admitted)),
       support::Table::fmt(static_cast<std::int64_t>(stats.shed)),
       support::Table::fmt(secs, 3)});
  bench::emit(table);
  bench::metric("shed_requests", static_cast<double>(stats.shed));
  bench::metric("shed_rate_pct",
                100.0 * static_cast<double>(stats.shed) /
                    static_cast<double>(burst.size()));
  bench::note("every shed request still got a response (rejected_overload) - "
              "load shedding is an answer, not an abort");
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonLog json_log("service");
  support::Flags flags(argc, argv, {"quick"});
  const bool quick = flags.has("quick");
  const std::vector<Graph> graphs = base_graphs(quick);
  run_throughput(graphs, quick);
  run_ladder(graphs, quick);
  run_cache(graphs, quick);
  run_admission(graphs, quick);
  return 0;
}
