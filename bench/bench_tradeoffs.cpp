// E10: round-complexity vs approximation-quality tradeoffs - the open
// question Section 6 of the paper poses ("whether we can ... provide
// tradeoffs between round complexity and approximation quality is a topic
// for further research"). This bench explores the knobs the implementation
// exposes empirically:
//
//  * girth: detection radius sigma = n^x below the paper's sqrt(n). Smaller
//    sigma means cheaper detection/exchange but larger sigma-ball radii
//    r(v), and the case-B bound degrades as g + 2 r(v) - measured here as
//    the worst observed ratio across seeds.
//  * weighted MWC: epsilon trades ladder budget h* = (1 + 2/eps) h against
//    the (2+eps) guarantee.
#include <cmath>

#include "bench_util.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/girth_approx.h"
#include "mwc/weighted_mwc.h"
#include "support/flags.h"
#include "support/math_util.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using congest::Network;
using graph::Graph;
using graph::Weight;
using graph::WeightRange;

void run_sigma_tradeoff() {
  bench::section("E10a: girth detection radius sigma = n^x (n = 400, 8 seeds)");
  support::Table table({"sigma exp", "sigma", "avg rounds", "worst ratio",
                        "still 2-approx?"});
  const int n = 400;
  for (double sx : {0.25, 0.375, 0.5, 0.625}) {
    const int sigma = std::max(2, support::int_pow(n, sx));
    double rounds_sum = 0;
    double worst_ratio = 1.0;
    bool ok = true;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      support::Rng rng(seed * 71 + 3);
      Graph g = graph::random_connected(n, 2 * n, WeightRange{1, 1}, rng);
      Weight girth = graph::seq::girth(g);
      Network net(g, seed + 100);
      cycle::GirthApproxParams params;
      params.sigma_override = sigma;
      cycle::MwcResult result = cycle::girth_approx(net, params);
      rounds_sum += static_cast<double>(result.stats.rounds);
      worst_ratio = std::max(worst_ratio, static_cast<double>(result.value) /
                                              static_cast<double>(girth));
      ok = ok && result.value >= girth && result.value <= 2 * girth;
    }
    table.add_row({support::Table::fmt(sx, 3),
                   support::Table::fmt(static_cast<std::int64_t>(sigma)),
                   support::Table::fmt(rounds_sum / 8.0, 0),
                   support::Table::fmt(worst_ratio, 3), ok ? "yes" : "NO"});
  }
  bench::emit(table);
  bench::note("the ratio never degrades (case B's sampled BFS carries the "
              "guarantee regardless of sigma), but rounds do: shrinking sigma "
              "inflates the sample count ~ n log(n)/sigma, growing the "
              "sampled-BFS and exchange phases - the sigma ~ sqrt(n) balance "
              "the paper picks is the round-optimal point of this knob, and "
              "no accuracy can be traded back for rounds here.");
}

void run_eps_tradeoff() {
  bench::section("E10b: directed weighted epsilon sweep (n = 128, 4 seeds)");
  support::Table table({"eps", "avg rounds", "worst ratio", "guarantee"});
  const int n = 128;
  for (double eps : {2.0, 1.0, 0.5, 0.25}) {
    double rounds_sum = 0;
    double worst_ratio = 1.0;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      support::Rng rng(seed * 31 + 7);
      Graph g = graph::random_strongly_connected(n, 3 * n, WeightRange{1, 10}, rng);
      Weight exact = graph::seq::mwc(g);
      Network net(g, seed + 50);
      cycle::WeightedMwcParams params;
      params.epsilon = eps;
      cycle::MwcResult result = cycle::directed_weighted_mwc(net, params);
      rounds_sum += static_cast<double>(result.stats.rounds);
      worst_ratio = std::max(worst_ratio, static_cast<double>(result.value) /
                                              static_cast<double>(exact));
    }
    table.add_row({support::Table::fmt(eps, 2),
                   support::Table::fmt(rounds_sum / 4.0, 0),
                   support::Table::fmt(worst_ratio, 3),
                   support::Table::fmt(2.0 + eps, 2)});
  }
  bench::emit(table);
  bench::note("rounds scale ~ (1 + 2/eps) through the ladder budget; the "
              "observed ratio sits far below the worst-case guarantee on "
              "random inputs.");
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonLog json_log("tradeoffs");
  support::Flags flags(argc, argv, {"quick"});
  (void)flags;
  run_sigma_tradeoff();
  run_eps_tradeoff();
  return 0;
}
