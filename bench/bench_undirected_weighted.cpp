// E6 (Table 1, undirected weighted row): exact MWC (O~(n), via APSP
// reduction; our substrate measures the async Bellman-Ford substitute) vs
// the (2+eps)-approximation in O~(n^(2/3) + D) (Theorem 1.4.C).
#include <cmath>

#include "bench_util.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/exact.h"
#include "mwc/weighted_mwc.h"
#include "support/flags.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT
using congest::Network;
using graph::Graph;
using graph::Weight;
using graph::WeightRange;

void run_sweep(bool quick) {
  bench::section(
      "E6: undirected weighted MWC - exact vs (2+eps)-approx O~(n^(2/3)+D)");
  support::Table table({"n", "W", "mwc", "exact rounds", "approx rounds",
                        "approx val", "long", "short", "ratio", "<=2+eps?"});
  bench::ExponentTracker exact_fit, approx_fit;
  const double eps = 0.5;
  for (int n : quick ? std::vector<int>{96, 160} : std::vector<int>{96, 160, 256, 400}) {
    support::Rng rng(static_cast<std::uint64_t>(n) + 11);
    Graph g = graph::random_connected(n, 2 * n, WeightRange{1, 12}, rng);
    Weight exact_val = graph::seq::mwc(g);

    Network net_exact(g, 7);
    cycle::MwcResult exact = cycle::exact_mwc(net_exact);

    Network net_approx(g, 7);
    cycle::WeightedMwcParams params;
    params.epsilon = eps;
    cycle::MwcResult approx = cycle::undirected_weighted_mwc(net_approx, params);

    const double ratio =
        static_cast<double>(approx.value) / static_cast<double>(exact_val);
    exact_fit.add(n, static_cast<double>(exact.stats.rounds));
    approx_fit.add(n, static_cast<double>(approx.stats.rounds));
    table.add_row(
        {support::Table::fmt(static_cast<std::int64_t>(n)),
         support::Table::fmt(g.max_weight()), support::Table::fmt(exact_val),
         support::Table::fmt(static_cast<std::int64_t>(exact.stats.rounds)),
         support::Table::fmt(static_cast<std::int64_t>(approx.stats.rounds)),
         support::Table::fmt(approx.value),
         support::Table::fmt(approx.long_cycle_value),
         support::Table::fmt(approx.short_cycle_value),
         support::Table::fmt(ratio, 2),
         ratio <= 2.0 + eps + 1e-9 ? "yes" : "NO"});
  }
  bench::emit(table);
  bench::note(exact_fit.summary("exact rounds vs n", 1.0));
  bench::note(approx_fit.summary("(2+eps) rounds vs n", 2.0 / 3.0));
  bench::note("'long'/'short' = the two branches of Section 5.1 (sampled "
              "SSSP for >= h-hop cycles; scaling ladder + Corollary 4.1 for "
              "short ones); the reported value is their minimum.");
}

void run_eps_sweep() {
  bench::section("E6b: epsilon sensitivity at fixed n = 200");
  support::Table table({"eps", "approx rounds", "approx val", "exact", "ratio"});
  support::Rng rng(77);
  Graph g = graph::random_connected(200, 400, WeightRange{1, 12}, rng);
  Weight exact_val = graph::seq::mwc(g);
  for (double eps : {1.0, 0.5, 0.25}) {
    Network net(g, 13);
    cycle::WeightedMwcParams params;
    params.epsilon = eps;
    cycle::MwcResult approx = cycle::undirected_weighted_mwc(net, params);
    table.add_row(
        {support::Table::fmt(eps, 2),
         support::Table::fmt(static_cast<std::int64_t>(approx.stats.rounds)),
         support::Table::fmt(approx.value), support::Table::fmt(exact_val),
         support::Table::fmt(static_cast<double>(approx.value) /
                                 static_cast<double>(exact_val),
                             2)});
  }
  bench::emit(table);
  bench::note("smaller eps widens the scaling ladder's tick budget "
              "h* = (1 + 2/eps) h: rounds grow, the ratio tightens.");
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonLog json_log("undirected_weighted");
  support::Flags flags(argc, argv, {"quick"});
  run_sweep(flags.has("quick"));
  run_eps_sweep();
  return 0;
}
