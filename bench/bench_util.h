// Shared helpers for the experiment benches (E1-E9, A1-A4 of DESIGN.md).
//
// Each bench regenerates one group of Table-1 rows: it sweeps instance
// sizes, runs the paper's algorithm and its baseline in the CONGEST
// simulator, prints measured rounds next to the theoretical bound, fits the
// growth exponent over the sweep, and verifies the approximation guarantee
// against the sequential exact reference.
//
// Besides the human-readable tables, every bench mirrors its output into a
// machine-readable BENCH_<NAME>.json via JsonLog: construct one in main(),
// and section()/note()/emit() below record into it automatically, so plots
// and regression checks never have to scrape aligned-column text.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "congest/metrics.h"
#include "support/fit.h"
#include "support/table.h"

namespace mwc::bench {

// Renders `s` as a JSON string literal (quotes included). Every control
// character < 0x20 is escaped - the common ones by name, the rest as
// \u00XX - so a note or title containing arbitrary bytes (terminal escape
// sequences, stray carriage returns from scraped output) can never corrupt
// a BENCH_*.json. Unit-tested in tests/bench_util_test.cpp.
inline std::string json_quote(const std::string& s) {
  std::string o = "\"";
  for (char c : s) {
    switch (c) {
      case '"': o += "\\\""; break;
      case '\\': o += "\\\\"; break;
      case '\n': o += "\\n"; break;
      case '\t': o += "\\t"; break;
      case '\r': o += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          o += buf;
        } else {
          o += c;
        }
    }
  }
  return o + "\"";
}

// Mirrors bench output (sections, notes, tables, scalar metrics) into
// BENCH_<NAME>.json in the current directory - or under $MWC_BENCH_JSON_DIR
// when set, so CI can collect the logs from a read-only source tree.
//
// The JSON shape is deliberately flat and stable:
//   { "bench": "...", "sections": [ { "title": "...",
//       "notes": ["..."], "tables": [{"columns": [...], "rows": [[...]]}],
//       "metrics": {"key": 1.5} } ] }
//
// At most one JsonLog is live at a time; it installs itself as the sink for
// the free functions below and writes the file when destroyed (or on an
// explicit write()).
class JsonLog {
 public:
  explicit JsonLog(std::string name) : name_(std::move(name)) {
    current() = this;
    begin_section("preamble");
    // Every bench JSON carries the machine's core count: wall-clock numbers
    // (and any threads sweep) are meaningless without it.
    add_metric("hardware_threads",
               static_cast<double>(std::thread::hardware_concurrency()));
  }
  JsonLog(const JsonLog&) = delete;
  JsonLog& operator=(const JsonLog&) = delete;
  ~JsonLog() {
    if (!written_) write();
    if (current() == this) current() = nullptr;
  }

  static JsonLog*& current() {
    static JsonLog* live = nullptr;
    return live;
  }

  void begin_section(const std::string& title) {
    sections_.emplace_back();
    sections_.back().title = title;
  }
  void add_note(const std::string& text) {
    sections_.back().notes.push_back(text);
  }
  void add_table(const support::Table& t) {
    sections_.back().tables.push_back({t.header(), t.rows()});
  }
  void add_metric(const std::string& key, double value) {
    sections_.back().metrics.emplace_back(key, value);
  }

  // BENCH_GIRTH.json for name "girth". Returns the path written, "" on error.
  std::string write() {
    written_ = true;
    std::string file = "BENCH_";
    for (char c : name_) {
      file += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    file += ".json";
    if (const char* dir = std::getenv("MWC_BENCH_JSON_DIR")) {
      file = std::string(dir) + "/" + file;
    }
    std::FILE* f = std::fopen(file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonLog: cannot write %s\n", file.c_str());
      return "";
    }
    std::string out = render();
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("\n[json log: %s]\n", file.c_str());
    return file;
  }

  // Marks the log as handled without writing a file - for tests that only
  // want render()'s bytes.
  void discard() { written_ = true; }

  std::string render() const {
    std::string o = "{\n  \"bench\": " + quote(name_) + ",\n  \"sections\": [";
    bool first_sec = true;
    for (const Section& s : sections_) {
      // The implicit preamble section is only kept if something landed in it.
      if (s.title == "preamble" && s.notes.empty() && s.tables.empty() &&
          s.metrics.empty()) {
        continue;
      }
      o += first_sec ? "\n" : ",\n";
      first_sec = false;
      o += "    {\"title\": " + quote(s.title) + ",\n     \"notes\": [";
      for (std::size_t i = 0; i < s.notes.size(); ++i) {
        o += (i != 0 ? ", " : "") + quote(s.notes[i]);
      }
      o += "],\n     \"tables\": [";
      for (std::size_t t = 0; t < s.tables.size(); ++t) {
        if (t != 0) o += ", ";
        o += "{\"columns\": " + row_json(s.tables[t].columns) +
             ", \"rows\": [";
        for (std::size_t r = 0; r < s.tables[t].rows.size(); ++r) {
          if (r != 0) o += ", ";
          o += row_json(s.tables[t].rows[r]);
        }
        o += "]}";
      }
      o += "],\n     \"metrics\": {";
      for (std::size_t i = 0; i < s.metrics.size(); ++i) {
        if (i != 0) o += ", ";
        o += quote(s.metrics[i].first) + ": " + num_json(s.metrics[i].second);
      }
      o += "}}";
    }
    o += "\n  ]\n}\n";
    return o;
  }

 private:
  struct TableDump {
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };
  struct Section {
    std::string title;
    std::vector<std::string> notes;
    std::vector<TableDump> tables;
    std::vector<std::pair<std::string, double>> metrics;
  };

  static std::string quote(const std::string& s) { return json_quote(s); }

  // Cells hold pre-formatted numbers; keep bare numerics unquoted so
  // consumers get real JSON numbers, and quote everything else.
  static std::string row_json(const std::vector<std::string>& cells) {
    std::string o = "[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) o += ", ";
      o += looks_numeric(cells[i]) ? cells[i] : quote(cells[i]);
    }
    return o + "]";
  }

  static bool looks_numeric(const std::string& s) {
    if (s.empty()) return false;
    std::size_t i = s[0] == '-' ? 1 : 0;
    if (i == s.size()) return false;
    bool dot = false;
    for (; i < s.size(); ++i) {
      if (s[i] == '.' && !dot) {
        dot = true;
      } else if (std::isdigit(static_cast<unsigned char>(s[i])) == 0) {
        return false;
      }
    }
    return true;
  }

  static std::string num_json(double v) {
    if (std::isnan(v) || std::isinf(v)) return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::string name_;
  std::vector<Section> sections_;
  bool written_ = false;
};

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (JsonLog* log = JsonLog::current()) log->begin_section(title);
}

inline void note(const std::string& text) {
  std::printf("%s\n", text.c_str());
  if (JsonLog* log = JsonLog::current()) log->add_note(text);
}

// Prints the table AND records it into the live JsonLog. Benches call this
// instead of table.print() so the JSON mirror never goes stale.
inline void emit(const support::Table& table) {
  table.print();
  if (JsonLog* log = JsonLog::current()) log->add_table(table);
}

inline void metric(const std::string& key, double value) {
  if (JsonLog* log = JsonLog::current()) log->add_metric(key, value);
}

// Emits a per-phase engine profile (congest/metrics.h) as a bench table -
// one row per phase path plus the total - so every BENCH_*.json carries the
// breakdown of where the rounds and words (and, on metered gadgets, the cut
// words) went.
inline void emit_metrics(const congest::MetricsSnapshot& snap) {
  support::Table table({"phase", "runs", "rounds", "messages", "words",
                        "max queue", "max link", "cut words"});
  auto add = [&](const congest::PhaseMetrics& m) {
    table.add_row({m.path,
                   support::Table::fmt(static_cast<std::int64_t>(m.runs)),
                   support::Table::fmt(static_cast<std::int64_t>(m.rounds)),
                   support::Table::fmt(static_cast<std::int64_t>(m.messages)),
                   support::Table::fmt(static_cast<std::int64_t>(m.words)),
                   support::Table::fmt(static_cast<std::int64_t>(m.max_queue_words)),
                   support::Table::fmt(static_cast<std::int64_t>(m.max_link_words)),
                   support::Table::fmt(static_cast<std::int64_t>(m.cut_words))});
  };
  for (const congest::PhaseMetrics& m : snap.phases) add(m);
  add(snap.total);
  emit(table);
  if (!snap.error.empty()) note("metrics error: " + snap.error);
}

// Collects (x, y) samples and reports the log-log slope.
class ExponentTracker {
 public:
  void add(double x, double y) {
    xs_.push_back(x);
    ys_.push_back(y);
  }
  bool ready() const { return xs_.size() >= 2; }
  support::PowerFit fit() const { return support::fit_power_law(xs_, ys_); }
  std::string summary(const std::string& name, double theory) const {
    if (!ready()) return name + ": not enough samples";
    auto f = fit();
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s: measured exponent %.2f (theory %.2f, R^2 %.3f)",
                  name.c_str(), f.exponent, theory, f.r_squared);
    return buf;
  }

 private:
  std::vector<double> xs_, ys_;
};

// Extrapolated size where fitted power law `a` overtakes `b` (i.e. becomes
// cheaper); returns 0 if the fits never cross for growing x.
inline double crossover_x(const support::PowerFit& a, const support::PowerFit& b) {
  if (a.exponent >= b.exponent) return 0.0;
  // exp(ca) x^ea = exp(cb) x^eb  =>  x = exp((ca-cb)/(eb-ea))
  return std::exp((a.log_const - b.log_const) / (b.exponent - a.exponent));
}

}  // namespace mwc::bench
