// Shared helpers for the experiment benches (E1-E9, A1-A4 of DESIGN.md).
//
// Each bench regenerates one group of Table-1 rows: it sweeps instance
// sizes, runs the paper's algorithm and its baseline in the CONGEST
// simulator, prints measured rounds next to the theoretical bound, fits the
// growth exponent over the sweep, and verifies the approximation guarantee
// against the sequential exact reference.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "support/fit.h"
#include "support/table.h"

namespace mwc::bench {

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

// Collects (x, y) samples and reports the log-log slope.
class ExponentTracker {
 public:
  void add(double x, double y) {
    xs_.push_back(x);
    ys_.push_back(y);
  }
  bool ready() const { return xs_.size() >= 2; }
  support::PowerFit fit() const { return support::fit_power_law(xs_, ys_); }
  std::string summary(const std::string& name, double theory) const {
    if (!ready()) return name + ": not enough samples";
    auto f = fit();
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s: measured exponent %.2f (theory %.2f, R^2 %.3f)",
                  name.c_str(), f.exponent, theory, f.r_squared);
    return buf;
  }

 private:
  std::vector<double> xs_, ys_;
};

// Extrapolated size where fitted power law `a` overtakes `b` (i.e. becomes
// cheaper); returns 0 if the fits never cross for growing x.
inline double crossover_x(const support::PowerFit& a, const support::PowerFit& b) {
  if (a.exponent >= b.exponent) return 0.0;
  // exp(ca) x^ea = exp(cb) x^eb  =>  x = exp((ca-cb)/(eb-ea))
  return std::exp((a.log_const - b.log_const) / (b.exponent - a.exponent));
}

}  // namespace mwc::bench
