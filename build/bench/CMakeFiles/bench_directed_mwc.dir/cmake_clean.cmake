file(REMOVE_RECURSE
  "CMakeFiles/bench_directed_mwc.dir/bench_directed_mwc.cpp.o"
  "CMakeFiles/bench_directed_mwc.dir/bench_directed_mwc.cpp.o.d"
  "bench_directed_mwc"
  "bench_directed_mwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_directed_mwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
