# Empty dependencies file for bench_directed_mwc.
# This may be replaced when dependencies are built.
