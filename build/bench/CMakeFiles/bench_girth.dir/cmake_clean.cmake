file(REMOVE_RECURSE
  "CMakeFiles/bench_girth.dir/bench_girth.cpp.o"
  "CMakeFiles/bench_girth.dir/bench_girth.cpp.o.d"
  "bench_girth"
  "bench_girth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_girth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
