file(REMOVE_RECURSE
  "CMakeFiles/bench_ksssp.dir/bench_ksssp.cpp.o"
  "CMakeFiles/bench_ksssp.dir/bench_ksssp.cpp.o.d"
  "bench_ksssp"
  "bench_ksssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ksssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
