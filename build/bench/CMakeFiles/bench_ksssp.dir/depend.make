# Empty dependencies file for bench_ksssp.
# This may be replaced when dependencies are built.
