file(REMOVE_RECURSE
  "CMakeFiles/bench_tradeoffs.dir/bench_tradeoffs.cpp.o"
  "CMakeFiles/bench_tradeoffs.dir/bench_tradeoffs.cpp.o.d"
  "bench_tradeoffs"
  "bench_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
