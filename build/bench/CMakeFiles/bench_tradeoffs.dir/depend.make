# Empty dependencies file for bench_tradeoffs.
# This may be replaced when dependencies are built.
