file(REMOVE_RECURSE
  "CMakeFiles/bench_undirected_weighted.dir/bench_undirected_weighted.cpp.o"
  "CMakeFiles/bench_undirected_weighted.dir/bench_undirected_weighted.cpp.o.d"
  "bench_undirected_weighted"
  "bench_undirected_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_undirected_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
