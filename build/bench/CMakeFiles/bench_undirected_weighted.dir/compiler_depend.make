# Empty compiler generated dependencies file for bench_undirected_weighted.
# This may be replaced when dependencies are built.
