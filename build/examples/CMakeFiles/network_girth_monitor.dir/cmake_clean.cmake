file(REMOVE_RECURSE
  "CMakeFiles/network_girth_monitor.dir/network_girth_monitor.cpp.o"
  "CMakeFiles/network_girth_monitor.dir/network_girth_monitor.cpp.o.d"
  "network_girth_monitor"
  "network_girth_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_girth_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
