# Empty compiler generated dependencies file for network_girth_monitor.
# This may be replaced when dependencies are built.
