file(REMOVE_RECURSE
  "CMakeFiles/trace_activity.dir/trace_activity.cpp.o"
  "CMakeFiles/trace_activity.dir/trace_activity.cpp.o.d"
  "trace_activity"
  "trace_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
