# Empty dependencies file for trace_activity.
# This may be replaced when dependencies are built.
