file(REMOVE_RECURSE
  "CMakeFiles/weighted_routing_rings.dir/weighted_routing_rings.cpp.o"
  "CMakeFiles/weighted_routing_rings.dir/weighted_routing_rings.cpp.o.d"
  "weighted_routing_rings"
  "weighted_routing_rings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_routing_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
