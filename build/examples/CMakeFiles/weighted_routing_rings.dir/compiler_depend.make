# Empty compiler generated dependencies file for weighted_routing_rings.
# This may be replaced when dependencies are built.
