
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/congest/bellman_ford.cpp" "src/congest/CMakeFiles/mwc_congest.dir/bellman_ford.cpp.o" "gcc" "src/congest/CMakeFiles/mwc_congest.dir/bellman_ford.cpp.o.d"
  "/root/repo/src/congest/bfs_tree.cpp" "src/congest/CMakeFiles/mwc_congest.dir/bfs_tree.cpp.o" "gcc" "src/congest/CMakeFiles/mwc_congest.dir/bfs_tree.cpp.o.d"
  "/root/repo/src/congest/broadcast.cpp" "src/congest/CMakeFiles/mwc_congest.dir/broadcast.cpp.o" "gcc" "src/congest/CMakeFiles/mwc_congest.dir/broadcast.cpp.o.d"
  "/root/repo/src/congest/convergecast.cpp" "src/congest/CMakeFiles/mwc_congest.dir/convergecast.cpp.o" "gcc" "src/congest/CMakeFiles/mwc_congest.dir/convergecast.cpp.o.d"
  "/root/repo/src/congest/multi_bfs.cpp" "src/congest/CMakeFiles/mwc_congest.dir/multi_bfs.cpp.o" "gcc" "src/congest/CMakeFiles/mwc_congest.dir/multi_bfs.cpp.o.d"
  "/root/repo/src/congest/neighbor_exchange.cpp" "src/congest/CMakeFiles/mwc_congest.dir/neighbor_exchange.cpp.o" "gcc" "src/congest/CMakeFiles/mwc_congest.dir/neighbor_exchange.cpp.o.d"
  "/root/repo/src/congest/network.cpp" "src/congest/CMakeFiles/mwc_congest.dir/network.cpp.o" "gcc" "src/congest/CMakeFiles/mwc_congest.dir/network.cpp.o.d"
  "/root/repo/src/congest/runner.cpp" "src/congest/CMakeFiles/mwc_congest.dir/runner.cpp.o" "gcc" "src/congest/CMakeFiles/mwc_congest.dir/runner.cpp.o.d"
  "/root/repo/src/congest/source_detection.cpp" "src/congest/CMakeFiles/mwc_congest.dir/source_detection.cpp.o" "gcc" "src/congest/CMakeFiles/mwc_congest.dir/source_detection.cpp.o.d"
  "/root/repo/src/congest/trace.cpp" "src/congest/CMakeFiles/mwc_congest.dir/trace.cpp.o" "gcc" "src/congest/CMakeFiles/mwc_congest.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mwc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mwc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
