file(REMOVE_RECURSE
  "CMakeFiles/mwc_congest.dir/bellman_ford.cpp.o"
  "CMakeFiles/mwc_congest.dir/bellman_ford.cpp.o.d"
  "CMakeFiles/mwc_congest.dir/bfs_tree.cpp.o"
  "CMakeFiles/mwc_congest.dir/bfs_tree.cpp.o.d"
  "CMakeFiles/mwc_congest.dir/broadcast.cpp.o"
  "CMakeFiles/mwc_congest.dir/broadcast.cpp.o.d"
  "CMakeFiles/mwc_congest.dir/convergecast.cpp.o"
  "CMakeFiles/mwc_congest.dir/convergecast.cpp.o.d"
  "CMakeFiles/mwc_congest.dir/multi_bfs.cpp.o"
  "CMakeFiles/mwc_congest.dir/multi_bfs.cpp.o.d"
  "CMakeFiles/mwc_congest.dir/neighbor_exchange.cpp.o"
  "CMakeFiles/mwc_congest.dir/neighbor_exchange.cpp.o.d"
  "CMakeFiles/mwc_congest.dir/network.cpp.o"
  "CMakeFiles/mwc_congest.dir/network.cpp.o.d"
  "CMakeFiles/mwc_congest.dir/runner.cpp.o"
  "CMakeFiles/mwc_congest.dir/runner.cpp.o.d"
  "CMakeFiles/mwc_congest.dir/source_detection.cpp.o"
  "CMakeFiles/mwc_congest.dir/source_detection.cpp.o.d"
  "CMakeFiles/mwc_congest.dir/trace.cpp.o"
  "CMakeFiles/mwc_congest.dir/trace.cpp.o.d"
  "libmwc_congest.a"
  "libmwc_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwc_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
