file(REMOVE_RECURSE
  "libmwc_congest.a"
)
