# Empty dependencies file for mwc_congest.
# This may be replaced when dependencies are built.
