file(REMOVE_RECURSE
  "CMakeFiles/mwc_graph.dir/generators.cpp.o"
  "CMakeFiles/mwc_graph.dir/generators.cpp.o.d"
  "CMakeFiles/mwc_graph.dir/graph.cpp.o"
  "CMakeFiles/mwc_graph.dir/graph.cpp.o.d"
  "CMakeFiles/mwc_graph.dir/io.cpp.o"
  "CMakeFiles/mwc_graph.dir/io.cpp.o.d"
  "CMakeFiles/mwc_graph.dir/sequential.cpp.o"
  "CMakeFiles/mwc_graph.dir/sequential.cpp.o.d"
  "CMakeFiles/mwc_graph.dir/transforms.cpp.o"
  "CMakeFiles/mwc_graph.dir/transforms.cpp.o.d"
  "libmwc_graph.a"
  "libmwc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
