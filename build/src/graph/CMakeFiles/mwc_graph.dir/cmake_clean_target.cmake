file(REMOVE_RECURSE
  "libmwc_graph.a"
)
