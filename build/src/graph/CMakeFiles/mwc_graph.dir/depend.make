# Empty dependencies file for mwc_graph.
# This may be replaced when dependencies are built.
