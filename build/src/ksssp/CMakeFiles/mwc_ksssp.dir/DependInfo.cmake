
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ksssp/auto_select.cpp" "src/ksssp/CMakeFiles/mwc_ksssp.dir/auto_select.cpp.o" "gcc" "src/ksssp/CMakeFiles/mwc_ksssp.dir/auto_select.cpp.o.d"
  "/root/repo/src/ksssp/naive.cpp" "src/ksssp/CMakeFiles/mwc_ksssp.dir/naive.cpp.o" "gcc" "src/ksssp/CMakeFiles/mwc_ksssp.dir/naive.cpp.o.d"
  "/root/repo/src/ksssp/skeleton_bfs.cpp" "src/ksssp/CMakeFiles/mwc_ksssp.dir/skeleton_bfs.cpp.o" "gcc" "src/ksssp/CMakeFiles/mwc_ksssp.dir/skeleton_bfs.cpp.o.d"
  "/root/repo/src/ksssp/skeleton_common.cpp" "src/ksssp/CMakeFiles/mwc_ksssp.dir/skeleton_common.cpp.o" "gcc" "src/ksssp/CMakeFiles/mwc_ksssp.dir/skeleton_common.cpp.o.d"
  "/root/repo/src/ksssp/skeleton_sssp.cpp" "src/ksssp/CMakeFiles/mwc_ksssp.dir/skeleton_sssp.cpp.o" "gcc" "src/ksssp/CMakeFiles/mwc_ksssp.dir/skeleton_sssp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/congest/CMakeFiles/mwc_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mwc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mwc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
