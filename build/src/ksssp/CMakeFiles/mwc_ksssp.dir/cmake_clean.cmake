file(REMOVE_RECURSE
  "CMakeFiles/mwc_ksssp.dir/auto_select.cpp.o"
  "CMakeFiles/mwc_ksssp.dir/auto_select.cpp.o.d"
  "CMakeFiles/mwc_ksssp.dir/naive.cpp.o"
  "CMakeFiles/mwc_ksssp.dir/naive.cpp.o.d"
  "CMakeFiles/mwc_ksssp.dir/skeleton_bfs.cpp.o"
  "CMakeFiles/mwc_ksssp.dir/skeleton_bfs.cpp.o.d"
  "CMakeFiles/mwc_ksssp.dir/skeleton_common.cpp.o"
  "CMakeFiles/mwc_ksssp.dir/skeleton_common.cpp.o.d"
  "CMakeFiles/mwc_ksssp.dir/skeleton_sssp.cpp.o"
  "CMakeFiles/mwc_ksssp.dir/skeleton_sssp.cpp.o.d"
  "libmwc_ksssp.a"
  "libmwc_ksssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwc_ksssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
