file(REMOVE_RECURSE
  "libmwc_ksssp.a"
)
