# Empty dependencies file for mwc_ksssp.
# This may be replaced when dependencies are built.
