# CMake generated Testfile for 
# Source directory: /root/repo/src/ksssp
# Build directory: /root/repo/build/src/ksssp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
