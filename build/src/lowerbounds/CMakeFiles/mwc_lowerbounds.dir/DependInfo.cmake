
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lowerbounds/alpha_gadget.cpp" "src/lowerbounds/CMakeFiles/mwc_lowerbounds.dir/alpha_gadget.cpp.o" "gcc" "src/lowerbounds/CMakeFiles/mwc_lowerbounds.dir/alpha_gadget.cpp.o.d"
  "/root/repo/src/lowerbounds/disjointness_gadget.cpp" "src/lowerbounds/CMakeFiles/mwc_lowerbounds.dir/disjointness_gadget.cpp.o" "gcc" "src/lowerbounds/CMakeFiles/mwc_lowerbounds.dir/disjointness_gadget.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mwc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mwc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
