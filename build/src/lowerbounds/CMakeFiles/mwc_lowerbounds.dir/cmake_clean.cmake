file(REMOVE_RECURSE
  "CMakeFiles/mwc_lowerbounds.dir/alpha_gadget.cpp.o"
  "CMakeFiles/mwc_lowerbounds.dir/alpha_gadget.cpp.o.d"
  "CMakeFiles/mwc_lowerbounds.dir/disjointness_gadget.cpp.o"
  "CMakeFiles/mwc_lowerbounds.dir/disjointness_gadget.cpp.o.d"
  "libmwc_lowerbounds.a"
  "libmwc_lowerbounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwc_lowerbounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
