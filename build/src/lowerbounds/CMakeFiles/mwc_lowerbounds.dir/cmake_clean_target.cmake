file(REMOVE_RECURSE
  "libmwc_lowerbounds.a"
)
