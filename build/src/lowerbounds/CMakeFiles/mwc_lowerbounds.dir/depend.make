# Empty dependencies file for mwc_lowerbounds.
# This may be replaced when dependencies are built.
