
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mwc/api.cpp" "src/mwc/CMakeFiles/mwc_mwc.dir/api.cpp.o" "gcc" "src/mwc/CMakeFiles/mwc_mwc.dir/api.cpp.o.d"
  "/root/repo/src/mwc/directed_mwc.cpp" "src/mwc/CMakeFiles/mwc_mwc.dir/directed_mwc.cpp.o" "gcc" "src/mwc/CMakeFiles/mwc_mwc.dir/directed_mwc.cpp.o.d"
  "/root/repo/src/mwc/exact.cpp" "src/mwc/CMakeFiles/mwc_mwc.dir/exact.cpp.o" "gcc" "src/mwc/CMakeFiles/mwc_mwc.dir/exact.cpp.o.d"
  "/root/repo/src/mwc/girth_approx.cpp" "src/mwc/CMakeFiles/mwc_mwc.dir/girth_approx.cpp.o" "gcc" "src/mwc/CMakeFiles/mwc_mwc.dir/girth_approx.cpp.o.d"
  "/root/repo/src/mwc/girth_core.cpp" "src/mwc/CMakeFiles/mwc_mwc.dir/girth_core.cpp.o" "gcc" "src/mwc/CMakeFiles/mwc_mwc.dir/girth_core.cpp.o.d"
  "/root/repo/src/mwc/girth_prt.cpp" "src/mwc/CMakeFiles/mwc_mwc.dir/girth_prt.cpp.o" "gcc" "src/mwc/CMakeFiles/mwc_mwc.dir/girth_prt.cpp.o.d"
  "/root/repo/src/mwc/restricted_bfs.cpp" "src/mwc/CMakeFiles/mwc_mwc.dir/restricted_bfs.cpp.o" "gcc" "src/mwc/CMakeFiles/mwc_mwc.dir/restricted_bfs.cpp.o.d"
  "/root/repo/src/mwc/weighted_mwc.cpp" "src/mwc/CMakeFiles/mwc_mwc.dir/weighted_mwc.cpp.o" "gcc" "src/mwc/CMakeFiles/mwc_mwc.dir/weighted_mwc.cpp.o.d"
  "/root/repo/src/mwc/witness.cpp" "src/mwc/CMakeFiles/mwc_mwc.dir/witness.cpp.o" "gcc" "src/mwc/CMakeFiles/mwc_mwc.dir/witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/congest/CMakeFiles/mwc_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mwc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ksssp/CMakeFiles/mwc_ksssp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mwc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
