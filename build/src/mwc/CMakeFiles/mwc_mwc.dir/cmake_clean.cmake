file(REMOVE_RECURSE
  "CMakeFiles/mwc_mwc.dir/api.cpp.o"
  "CMakeFiles/mwc_mwc.dir/api.cpp.o.d"
  "CMakeFiles/mwc_mwc.dir/directed_mwc.cpp.o"
  "CMakeFiles/mwc_mwc.dir/directed_mwc.cpp.o.d"
  "CMakeFiles/mwc_mwc.dir/exact.cpp.o"
  "CMakeFiles/mwc_mwc.dir/exact.cpp.o.d"
  "CMakeFiles/mwc_mwc.dir/girth_approx.cpp.o"
  "CMakeFiles/mwc_mwc.dir/girth_approx.cpp.o.d"
  "CMakeFiles/mwc_mwc.dir/girth_core.cpp.o"
  "CMakeFiles/mwc_mwc.dir/girth_core.cpp.o.d"
  "CMakeFiles/mwc_mwc.dir/girth_prt.cpp.o"
  "CMakeFiles/mwc_mwc.dir/girth_prt.cpp.o.d"
  "CMakeFiles/mwc_mwc.dir/restricted_bfs.cpp.o"
  "CMakeFiles/mwc_mwc.dir/restricted_bfs.cpp.o.d"
  "CMakeFiles/mwc_mwc.dir/weighted_mwc.cpp.o"
  "CMakeFiles/mwc_mwc.dir/weighted_mwc.cpp.o.d"
  "CMakeFiles/mwc_mwc.dir/witness.cpp.o"
  "CMakeFiles/mwc_mwc.dir/witness.cpp.o.d"
  "libmwc_mwc.a"
  "libmwc_mwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwc_mwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
