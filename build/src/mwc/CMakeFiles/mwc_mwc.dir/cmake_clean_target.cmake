file(REMOVE_RECURSE
  "libmwc_mwc.a"
)
