# Empty dependencies file for mwc_mwc.
# This may be replaced when dependencies are built.
