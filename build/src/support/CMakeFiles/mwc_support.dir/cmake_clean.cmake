file(REMOVE_RECURSE
  "CMakeFiles/mwc_support.dir/fit.cpp.o"
  "CMakeFiles/mwc_support.dir/fit.cpp.o.d"
  "CMakeFiles/mwc_support.dir/flags.cpp.o"
  "CMakeFiles/mwc_support.dir/flags.cpp.o.d"
  "CMakeFiles/mwc_support.dir/math_util.cpp.o"
  "CMakeFiles/mwc_support.dir/math_util.cpp.o.d"
  "CMakeFiles/mwc_support.dir/rng.cpp.o"
  "CMakeFiles/mwc_support.dir/rng.cpp.o.d"
  "CMakeFiles/mwc_support.dir/table.cpp.o"
  "CMakeFiles/mwc_support.dir/table.cpp.o.d"
  "libmwc_support.a"
  "libmwc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
