file(REMOVE_RECURSE
  "libmwc_support.a"
)
