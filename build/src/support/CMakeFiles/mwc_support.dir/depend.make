# Empty dependencies file for mwc_support.
# This may be replaced when dependencies are built.
