file(REMOVE_RECURSE
  "CMakeFiles/congest_engine_test.dir/congest_engine_test.cpp.o"
  "CMakeFiles/congest_engine_test.dir/congest_engine_test.cpp.o.d"
  "congest_engine_test"
  "congest_engine_test.pdb"
  "congest_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congest_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
