# Empty dependencies file for congest_engine_test.
# This may be replaced when dependencies are built.
