file(REMOVE_RECURSE
  "CMakeFiles/congest_primitives_test.dir/congest_primitives_test.cpp.o"
  "CMakeFiles/congest_primitives_test.dir/congest_primitives_test.cpp.o.d"
  "congest_primitives_test"
  "congest_primitives_test.pdb"
  "congest_primitives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congest_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
