# Empty dependencies file for congest_primitives_test.
# This may be replaced when dependencies are built.
