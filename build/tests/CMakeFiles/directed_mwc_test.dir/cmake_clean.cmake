file(REMOVE_RECURSE
  "CMakeFiles/directed_mwc_test.dir/directed_mwc_test.cpp.o"
  "CMakeFiles/directed_mwc_test.dir/directed_mwc_test.cpp.o.d"
  "directed_mwc_test"
  "directed_mwc_test.pdb"
  "directed_mwc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directed_mwc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
