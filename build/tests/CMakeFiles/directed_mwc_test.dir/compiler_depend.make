# Empty compiler generated dependencies file for directed_mwc_test.
# This may be replaced when dependencies are built.
