file(REMOVE_RECURSE
  "CMakeFiles/exact_mwc_test.dir/exact_mwc_test.cpp.o"
  "CMakeFiles/exact_mwc_test.dir/exact_mwc_test.cpp.o.d"
  "exact_mwc_test"
  "exact_mwc_test.pdb"
  "exact_mwc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_mwc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
