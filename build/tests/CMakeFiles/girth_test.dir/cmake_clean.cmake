file(REMOVE_RECURSE
  "CMakeFiles/girth_test.dir/girth_test.cpp.o"
  "CMakeFiles/girth_test.dir/girth_test.cpp.o.d"
  "girth_test"
  "girth_test.pdb"
  "girth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/girth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
