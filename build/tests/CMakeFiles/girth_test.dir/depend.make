# Empty dependencies file for girth_test.
# This may be replaced when dependencies are built.
