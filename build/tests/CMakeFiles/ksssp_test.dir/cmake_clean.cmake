file(REMOVE_RECURSE
  "CMakeFiles/ksssp_test.dir/ksssp_test.cpp.o"
  "CMakeFiles/ksssp_test.dir/ksssp_test.cpp.o.d"
  "ksssp_test"
  "ksssp_test.pdb"
  "ksssp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksssp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
