# Empty compiler generated dependencies file for ksssp_test.
# This may be replaced when dependencies are built.
