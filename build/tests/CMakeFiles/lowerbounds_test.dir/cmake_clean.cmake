file(REMOVE_RECURSE
  "CMakeFiles/lowerbounds_test.dir/lowerbounds_test.cpp.o"
  "CMakeFiles/lowerbounds_test.dir/lowerbounds_test.cpp.o.d"
  "lowerbounds_test"
  "lowerbounds_test.pdb"
  "lowerbounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowerbounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
