# Empty dependencies file for lowerbounds_test.
# This may be replaced when dependencies are built.
