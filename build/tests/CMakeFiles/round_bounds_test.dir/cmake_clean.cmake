file(REMOVE_RECURSE
  "CMakeFiles/round_bounds_test.dir/round_bounds_test.cpp.o"
  "CMakeFiles/round_bounds_test.dir/round_bounds_test.cpp.o.d"
  "round_bounds_test"
  "round_bounds_test.pdb"
  "round_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/round_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
