# Empty compiler generated dependencies file for round_bounds_test.
# This may be replaced when dependencies are built.
