file(REMOVE_RECURSE
  "CMakeFiles/weighted_mwc_test.dir/weighted_mwc_test.cpp.o"
  "CMakeFiles/weighted_mwc_test.dir/weighted_mwc_test.cpp.o.d"
  "weighted_mwc_test"
  "weighted_mwc_test.pdb"
  "weighted_mwc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_mwc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
