file(REMOVE_RECURSE
  "CMakeFiles/whp_claims_test.dir/whp_claims_test.cpp.o"
  "CMakeFiles/whp_claims_test.dir/whp_claims_test.cpp.o.d"
  "whp_claims_test"
  "whp_claims_test.pdb"
  "whp_claims_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whp_claims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
