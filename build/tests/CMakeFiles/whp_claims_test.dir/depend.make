# Empty dependencies file for whp_claims_test.
# This may be replaced when dependencies are built.
