# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/sequential_test[1]_include.cmake")
include("/root/repo/build/tests/congest_engine_test[1]_include.cmake")
include("/root/repo/build/tests/congest_primitives_test[1]_include.cmake")
include("/root/repo/build/tests/ksssp_test[1]_include.cmake")
include("/root/repo/build/tests/exact_mwc_test[1]_include.cmake")
include("/root/repo/build/tests/girth_test[1]_include.cmake")
include("/root/repo/build/tests/directed_mwc_test[1]_include.cmake")
include("/root/repo/build/tests/weighted_mwc_test[1]_include.cmake")
include("/root/repo/build/tests/lowerbounds_test[1]_include.cmake")
include("/root/repo/build/tests/graph_io_test[1]_include.cmake")
include("/root/repo/build/tests/paper_lemmas_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/stress_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/whp_claims_test[1]_include.cmake")
include("/root/repo/build/tests/round_bounds_test[1]_include.cmake")
add_test([=[cli_gen_info_run]=] "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/mwc_cli" "-DWORK=/root/repo/build/tests/cli_smoke" "-P" "/root/repo/tests/cli_smoke.cmake")
set_tests_properties([=[cli_gen_info_run]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cli_usage_error]=] "/root/repo/build/tools/mwc_cli" "frobnicate")
set_tests_properties([=[cli_usage_error]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cli_missing_file]=] "/root/repo/build/tools/mwc_cli" "info" "/nonexistent.graph")
set_tests_properties([=[cli_missing_file]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;35;add_test;/root/repo/tests/CMakeLists.txt;0;")
