file(REMOVE_RECURSE
  "CMakeFiles/mwc_cli.dir/mwc_cli.cpp.o"
  "CMakeFiles/mwc_cli.dir/mwc_cli.cpp.o.d"
  "mwc_cli"
  "mwc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
