# Empty compiler generated dependencies file for mwc_cli.
# This may be replaced when dependencies are built.
