// Deadlock likelihood in a distributed lock manager.
//
// The paper's introduction motivates MWC with deadlock analysis: in a
// wait-for digraph (who waits on whom), a directed cycle is a deadlock and
// the *shortest* cycle models the likeliest one [38]. A lock manager that
// monitors an approximate MWC of its wait-for graph can raise an alarm
// without collecting the whole graph at a coordinator.
//
// The synthetic workload: shards acquire locks in a global order (the
// classic deadlock-avoidance discipline), so ordinary waits only point
// "forward" with bounded jumps and any cycle they form must wrap the whole
// order - length >= shards/max_jump. One rogue chain of out-of-order waits
// closes a short cycle: the deadlock to detect. We compare the exact
// distributed MWC (O~(n) rounds) against the 2-approximation of Theorem
// 1.2.C (O~(n^(4/5) + D) rounds) the way a monitoring loop would: "is there
// a deadlock cycle shorter than the alarm threshold?" - a question a
// 2-approximation answers correctly given a factor-2 margin.
#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "congest/network.h"
#include "graph/graph.h"
#include "graph/sequential.h"
#include "mwc/api.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT

graph::Graph build_wait_for_graph(int shards, int rogue_len, int max_jump,
                                  std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<graph::Edge> arcs;
  // The rogue chain: shards 0..rogue_len-1 wait on each other in a ring.
  for (int i = 0; i + 1 < rogue_len; ++i) arcs.push_back({i, i + 1, 1});
  arcs.push_back({rogue_len - 1, 0, 1});
  // Ordered waits: shard i waits on i+1 (its lock-order successor) ...
  for (int i = rogue_len - 1; i + 1 < shards; ++i) arcs.push_back({i, i + 1, 1});
  arcs.push_back({shards - 1, 0, 1});  // the wrap that keeps things strongly
                                       // connected (a cycle of length ~n)
  // ... plus random forward jumps of bounded length, skipping pairs inside
  // the rogue block (they would shortcut the planted cycle).
  for (int extra = 0; extra < 2 * shards; ++extra) {
    int i = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(shards - 2)));
    int jump = 2 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(max_jump - 1)));
    int j = std::min(shards - 1, i + jump);
    if (j < rogue_len) continue;
    arcs.push_back({i, j, 1});
  }
  // Dedupe (the jump loop may repeat a pair).
  std::sort(arcs.begin(), arcs.end(), [](const graph::Edge& a, const graph::Edge& b) {
    return std::pair(a.from, a.to) < std::pair(b.from, b.to);
  });
  arcs.erase(std::unique(arcs.begin(), arcs.end(),
                         [](const graph::Edge& a, const graph::Edge& b) {
                           return a.from == b.from && a.to == b.to;
                         }),
             arcs.end());
  return graph::Graph::directed(shards, arcs);
}

}  // namespace

int main() {
  const int shards = 400;
  const int rogue_len = 5;
  graph::Graph wait_for = build_wait_for_graph(shards, rogue_len, 8, 7);

  std::printf("wait-for graph: %d shards, %d wait edges\n",
              wait_for.node_count(), wait_for.edge_count());
  std::printf("ground truth shortest deadlock cycle: %lld transactions\n\n",
              static_cast<long long>(graph::seq::mwc(wait_for)));

  congest::Network net_exact(wait_for, /*seed=*/42);
  cycle::SolveOptions exact_opts;
  exact_opts.mode = cycle::SolveMode::kExact;
  cycle::MwcResult exact = cycle::solve(net_exact, exact_opts).result;
  std::printf("exact monitor    : cycle length %lld, %llu rounds\n",
              static_cast<long long>(exact.value),
              static_cast<unsigned long long>(exact.stats.rounds));

  // mode kApprox dispatches Theorem 1.2.C's 2-approximation for this
  // directed unweighted graph class.
  congest::Network net_approx(wait_for, /*seed=*/42);
  cycle::SolveOptions approx_opts;
  approx_opts.mode = cycle::SolveMode::kApprox;
  cycle::MwcReport report = cycle::solve(net_approx, approx_opts);
  const cycle::MwcResult& approx = report.result;
  std::printf("%gx monitor      : cycle length <= %lld, %llu rounds "
              "(%s; %d sampled anchors, %d overflow vertices)\n",
              report.guarantee, static_cast<long long>(approx.value),
              static_cast<unsigned long long>(approx.stats.rounds),
              report.algorithm.c_str(), approx.sample_count,
              approx.overflow_count);

  const long long alarm_threshold = 2 * rogue_len;  // factor-2 margin
  std::printf("\nalarm (threshold %lld waits): exact=%s approx=%s\n",
              alarm_threshold, exact.value <= alarm_threshold ? "RAISED" : "quiet",
              approx.value <= alarm_threshold ? "RAISED" : "quiet");
  std::printf("the 2-approximation never misses a deadlock of length <= "
              "threshold/2 and never alarms unless one of length <= threshold "
              "exists.\n");
  return 0;
}
