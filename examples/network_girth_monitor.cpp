// Girth monitoring of an overlay topology.
//
// Cycles are a structural feature of overlay networks (cycle bases,
// redundancy, routing loops [22, 42, 44]): the girth says how small the
// smallest redundancy loop is. This example watches a peer-to-peer overlay
// (a random 4-regular-ish graph that slowly gains shortcut links) and keeps
// a girth estimate using the three available tools, showing where each
// pays rounds:
//   * exact girth [28]                - O(n) rounds, every epoch;
//   * Peleg-Roditty-Tal (2-1/g) [44]  - O~(sqrt(n g) + D), cheap when the
//     overlay has short loops, expensive while it is still tree-like;
//   * Theorem 1.3.B (2-1/g)           - O~(sqrt(n) + D), girth-independent.
#include <cstdio>
#include <vector>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/sequential.h"
#include "mwc/api.h"
#include "mwc/girth_prt.h"
#include "support/rng.h"

namespace {

using namespace mwc;  // NOLINT

// Epoch t: ring backbone (sparse overlay) plus t extra shortcut links.
graph::Graph overlay_at_epoch(int peers, int shortcuts, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::cycle_with_chords(peers, shortcuts, graph::WeightRange{1, 1}, rng);
}

}  // namespace

int main() {
  const int peers = 512;
  std::printf("overlay girth monitor, %d peers\n", peers);
  std::printf("%-8s %-6s | %-12s | %-18s | %-18s\n", "epoch", "girth",
              "exact rounds", "PRT rounds (val)", "Thm1.3.B rounds (val)");

  const int epochs[] = {0, 2, 8, 32, 128};
  for (int shortcuts : epochs) {
    graph::Graph g = overlay_at_epoch(peers, shortcuts, 99);
    graph::Weight girth = graph::seq::girth(g);

    congest::Network net_exact(g, 5);
    cycle::SolveOptions exact_opts;
    exact_opts.mode = cycle::SolveMode::kExact;
    cycle::MwcResult exact = cycle::solve(net_exact, exact_opts).result;

    congest::Network net_prt(g, 5);
    cycle::MwcResult prt = cycle::girth_prt(net_prt);

    // mode kApprox dispatches girth_approx (Theorem 1.3.B) for this
    // undirected unweighted class.
    congest::Network net_ours(g, 5);
    cycle::SolveOptions approx_opts;
    approx_opts.mode = cycle::SolveMode::kApprox;
    cycle::MwcResult ours = cycle::solve(net_ours, approx_opts).result;

    std::printf("%-8d %-6lld | %-12llu | %8llu (%5lld) | %8llu (%5lld)\n",
                shortcuts, static_cast<long long>(girth),
                static_cast<unsigned long long>(exact.stats.rounds),
                static_cast<unsigned long long>(prt.stats.rounds),
                static_cast<long long>(prt.value),
                static_cast<unsigned long long>(ours.stats.rounds),
                static_cast<long long>(ours.value));
  }

  std::printf(
      "\nreading: while the overlay is loop-free-ish (few shortcuts, girth ~ n)\n"
      "PRT's doubling costs ~ sqrt(n*g) = n rounds; the Theorem 1.3.B monitor\n"
      "stays near sqrt(n) + D regardless of the girth, and both report a value\n"
      "within (2 - 1/g) of the true girth.\n");
  return 0;
}
