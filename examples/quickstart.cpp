// Quickstart: build a graph, wrap it in a CONGEST network, and compute an
// (approximate) minimum weight cycle.
//
//   $ ./examples/quickstart
//
// Walks through the three public entry points most users need:
//   * cycle::exact_mwc            - exact, O~(n) rounds;
//   * cycle::girth_approx         - (2-1/g)-approx girth, O~(sqrt n + D);
//   * cycle::undirected_weighted_mwc - (2+eps)-approx, O~(n^(2/3) + D).
#include <cstdio>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/exact.h"
#include "mwc/girth_approx.h"
#include "mwc/weighted_mwc.h"
#include "support/rng.h"

int main() {
  using namespace mwc;  // NOLINT

  // 1. A weighted undirected network: 300 routers, 600 links with integer
  //    latencies in [1, 9]. Generators guarantee a connected topology.
  support::Rng rng(/*seed=*/2024);
  graph::Graph g = graph::random_connected(300, 600, graph::WeightRange{1, 9}, rng);
  std::printf("graph: n=%d, m=%d, D=%d\n", g.node_count(), g.edge_count(),
              graph::seq::communication_diameter(g));

  // 2. Wrap it in a CONGEST network. The seed drives the shared randomness
  //    every algorithm uses; identical seeds reproduce identical runs.
  //    Each Network accumulates simulated rounds across the algorithms run
  //    on it, so use a fresh Network per measurement.
  {
    congest::Network net(g, /*seed=*/1);
    cycle::MwcResult exact = cycle::exact_mwc(net);
    std::printf("exact MWC       : weight=%lld  (%llu rounds), cycle:",
                static_cast<long long>(exact.value),
                static_cast<unsigned long long>(exact.stats.rounds));
    for (graph::NodeId v : exact.witness) std::printf(" %d", v);
    std::printf("\n");
  }

  // 3. The girth (cycle length, ignoring weights) in O~(sqrt(n) + D) rounds,
  //    within a factor (2 - 1/g) - Theorem 1.3.B of the paper.
  {
    congest::Network net(g, /*seed=*/1);
    cycle::MwcResult approx = cycle::girth_approx(net);
    std::printf("girth approx    : length<=%lld (%llu rounds, %d samples)\n",
                static_cast<long long>(approx.value),
                static_cast<unsigned long long>(approx.stats.rounds),
                approx.sample_count);
  }

  // 4. The weighted MWC within (2 + eps) in O~(n^(2/3) + D) rounds -
  //    Theorem 1.4.C.
  {
    congest::Network net(g, /*seed=*/1);
    cycle::WeightedMwcParams params;
    params.epsilon = 0.5;
    cycle::MwcResult approx = cycle::undirected_weighted_mwc(net, params);
    std::printf("(2+eps) MWC     : weight<=%lld (%llu rounds)\n",
                static_cast<long long>(approx.value),
                static_cast<unsigned long long>(approx.stats.rounds));
  }

  // Every reported value is the weight of a real cycle in g (the library's
  // soundness invariant), so "weight<=" readings are safe upper bounds that
  // are also >= the true minimum.
  return 0;
}
