// Quickstart: build a graph, wrap it in a CONGEST network, and compute an
// (approximate) minimum weight cycle through the one-call API.
//
//   $ ./examples/quickstart
//
// Walks through the entry points most users need:
//   * cycle::solve                - one call; picks the paper's algorithm
//     for the graph class (mode auto/approx/exact) and reports the value,
//     the promised ratio, and - on request - a per-phase metrics profile;
//   * cycle::girth_approx         - (2-1/g)-approx girth, O~(sqrt n + D),
//     for callers that want a specific algorithm directly.
#include <cstdio>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/api.h"
#include "mwc/girth_approx.h"
#include "support/rng.h"

int main() {
  using namespace mwc;  // NOLINT

  // 1. A weighted undirected network: 300 routers, 600 links with integer
  //    latencies in [1, 9]. Generators guarantee a connected topology.
  support::Rng rng(/*seed=*/2024);
  graph::Graph g = graph::random_connected(300, 600, graph::WeightRange{1, 9}, rng);
  std::printf("graph: n=%d, m=%d, D=%d\n", g.node_count(), g.edge_count(),
              graph::seq::communication_diameter(g));

  // 2. Wrap it in a CONGEST network and solve. The seed drives the shared
  //    randomness every algorithm uses; identical seeds reproduce identical
  //    runs. Each Network accumulates simulated rounds across the
  //    algorithms run on it, so use a fresh Network per measurement.
  //    mode kExact forces the O~(n) baseline; the default kAuto picks it
  //    only on small networks.
  {
    congest::Network net(g, /*seed=*/1);
    cycle::SolveOptions opts;
    opts.mode = cycle::SolveMode::kExact;
    cycle::MwcReport report = cycle::solve(net, opts);
    std::printf("exact MWC       : weight=%lld  (%llu rounds, algorithm %s), cycle:",
                static_cast<long long>(report.result.value),
                static_cast<unsigned long long>(report.result.stats.rounds),
                report.algorithm.c_str());
    for (graph::NodeId v : report.result.witness) std::printf(" %d", v);
    std::printf("\n");
  }

  // 3. The sublinear approximation for this graph class - here Theorem
  //    1.4.C's (2 + eps) in O~(n^(2/3) + D) rounds - with the per-phase
  //    metrics profile turned on. The JSON is stable and byte-identical
  //    across NetworkConfig::threads settings; feed it to dashboards or
  //    diff it in CI.
  {
    congest::Network net(g, /*seed=*/1);
    cycle::SolveOptions opts;
    opts.mode = cycle::SolveMode::kApprox;
    opts.epsilon = 0.5;
    opts.collect_metrics = true;
    cycle::MwcReport report = cycle::solve(net, opts);
    std::printf("(2+eps) MWC     : weight<=%lld (%llu rounds, guarantee %.1fx)\n",
                static_cast<long long>(report.result.value),
                static_cast<unsigned long long>(report.result.stats.rounds),
                report.guarantee);
    std::printf("per-phase metrics JSON:\n%s\n", report.metrics.to_json().c_str());
  }

  // 4. A specific algorithm directly: the girth (cycle length, ignoring
  //    weights) within (2 - 1/g) in O~(sqrt(n) + D) rounds - Theorem 1.3.B.
  {
    congest::Network net(g, /*seed=*/1);
    cycle::MwcResult approx = cycle::girth_approx(net);
    std::printf("girth approx    : length<=%lld (%llu rounds, %d samples)\n",
                static_cast<long long>(approx.value),
                static_cast<unsigned long long>(approx.stats.rounds),
                approx.sample_count);
  }

  // Every reported value is the weight of a real cycle in g (the library's
  // soundness invariant), so "weight<=" readings are safe upper bounds that
  // are also >= the true minimum.
  return 0;
}
