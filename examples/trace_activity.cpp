// Observing an algorithm's communication shape with the event trace.
//
// Attaching a congest::Trace to a network records every message delivery
// (run, round, from, to, words). This example runs the Theorem 1.3.B girth
// approximation on a small overlay and prints the per-phase activity
// profile - the source-detection burst, the bulk neighbor exchanges, the
// sampled BFS, and the convergecast tail are each visible as distinct
// bands of traffic.
//
//   $ ./examples/trace_activity [--n=200]
#include <algorithm>
#include <cstdio>
#include <string>

#include "congest/network.h"
#include "congest/trace.h"
#include "graph/generators.h"
#include "mwc/girth_approx.h"
#include "support/flags.h"
#include "support/rng.h"

int main(int argc, char** argv) {
  using namespace mwc;  // NOLINT
  support::Flags flags(argc, argv, {"n"});
  const int n = static_cast<int>(flags.get_int("n", 200));

  support::Rng rng(7);
  graph::Graph g = graph::random_connected(n, 3 * n, graph::WeightRange{1, 1}, rng);

  congest::Network net(g, /*seed=*/11);
  congest::Trace trace(/*capacity=*/1 << 20);
  net.attach_trace(&trace);
  cycle::MwcResult result = cycle::girth_approx(net);

  std::printf("girth approx on n=%d: value=%lld, %llu rounds, %zu deliveries "
              "traced\n\n",
              n, static_cast<long long>(result.value),
              static_cast<unsigned long long>(result.stats.rounds),
              trace.total_recorded());

  // One protocol run per line: rounds used and a bar of total words moved.
  std::printf("%-6s %-10s %-12s activity\n", "run", "rounds", "words");
  for (std::uint64_t run = 0;; ++run) {
    auto profile = trace.round_profile(run);
    if (profile.empty()) {
      if (run > 16) break;  // runs are consecutive; allow a few gaps
      continue;
    }
    std::uint64_t words = 0, last_round = 0;
    for (auto [round, w] : profile) {
      words += w;
      last_round = std::max(last_round, round);
    }
    const int bar = static_cast<int>(std::min<std::uint64_t>(60, words / 250 + 1));
    std::printf("%-6llu %-10llu %-12llu %s\n",
                static_cast<unsigned long long>(run),
                static_cast<unsigned long long>(last_round + 1),
                static_cast<unsigned long long>(words),
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  std::printf(
      "\nreading: the first two bands are the sigma-source detection and its\n"
      "neighbor exchange; the widest bands are the sampled BFS and its\n"
      "exchange; the tiny tails are the BFS-tree build and the final\n"
      "convergecast. (Run ids can skip: shared-randomness draws - e.g. the\n"
      "sampling step - consume a run id without sending anything.)\n");
  return 0;
}
