// Finding the lightest redundancy ring in a weighted WAN.
//
// Wide-area backbones provision protection rings: traffic on a failed link
// is rerouted around a cycle containing it, and the *lightest* cycle bounds
// the best-case protection latency. This example models a WAN as a weighted
// undirected graph (latencies 1..20 ms) and asks for the lightest ring:
//   * exactly, via the O~(n)-round APSP reduction;
//   * within (2+eps), via Theorem 1.4.C's O~(n^(2/3)+D) algorithm,
// then re-checks the k-source SSSP workhorse (Theorem 1.6.B) that powers
// the approximation's long-cycle branch.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "ksssp/skeleton_sssp.h"
#include "mwc/api.h"
#include "support/rng.h"

int main() {
  using namespace mwc;  // NOLINT

  // WAN: 350 POPs, average degree ~4, latencies 1..20.
  support::Rng rng(4242);
  graph::Graph wan = graph::random_connected(350, 700, graph::WeightRange{1, 20}, rng);
  std::printf("WAN: %d POPs, %d links, latencies 1..%lld, D=%d hops\n",
              wan.node_count(), wan.edge_count(),
              static_cast<long long>(wan.max_weight()),
              graph::seq::communication_diameter(wan));

  congest::Network net_exact(wan, 1);
  cycle::SolveOptions exact_opts;
  exact_opts.mode = cycle::SolveMode::kExact;
  cycle::MwcResult exact = cycle::solve(net_exact, exact_opts).result;
  std::printf("lightest ring (exact)  : %lld ms round-trip, %llu rounds\n",
              static_cast<long long>(exact.value),
              static_cast<unsigned long long>(exact.stats.rounds));

  // mode kApprox dispatches Theorem 1.4.C's (2 + eps) algorithm for this
  // weighted undirected class.
  congest::Network net_approx(wan, 1);
  cycle::SolveOptions approx_opts;
  approx_opts.mode = cycle::SolveMode::kApprox;
  approx_opts.epsilon = 0.5;
  cycle::MwcResult approx = cycle::solve(net_approx, approx_opts).result;
  std::printf("lightest ring (2.5x)   : <= %lld ms, %llu rounds "
              "(long-branch %lld, short-branch %lld)\n",
              static_cast<long long>(approx.value),
              static_cast<unsigned long long>(approx.stats.rounds),
              static_cast<long long>(approx.long_cycle_value),
              static_cast<long long>(approx.short_cycle_value));

  // The k-source SSSP subroutine on its own: latency maps from 8 probes.
  std::vector<graph::NodeId> probes;
  for (int i = 0; i < 8; ++i) probes.push_back((i * 43) % wan.node_count());
  std::sort(probes.begin(), probes.end());
  probes.erase(std::unique(probes.begin(), probes.end()), probes.end());
  congest::Network net_probe(wan, 1);
  ksssp::SkeletonSsspParams sp;
  sp.sources = probes;
  sp.epsilon = 0.25;
  ksssp::KSsspResult latency_map = skeleton_k_source_sssp(net_probe, sp);
  double worst = 1.0;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    auto ref = graph::seq::dijkstra(wan, probes[i]);
    for (graph::NodeId v = 0; v < wan.node_count(); ++v) {
      if (ref[static_cast<std::size_t>(v)] == 0) continue;
      worst = std::max(worst,
                       static_cast<double>(latency_map.dist.at(v, static_cast<int>(i))) /
                           static_cast<double>(ref[static_cast<std::size_t>(v)]));
    }
  }
  std::printf("latency map from %zu probes: %llu rounds, worst estimate "
              "%.3fx true latency (guarantee 1.25x)\n",
              probes.size(),
              static_cast<unsigned long long>(latency_map.stats.rounds), worst);
  return 0;
}
