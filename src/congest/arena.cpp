#include "congest/arena.h"

#include <atomic>
#include <bit>
#include <mutex>

#include "support/check.h"

namespace mwc::congest {

namespace {

// Shared overflow reservoir: blocks flushed by over-full thread pools,
// refill source for pools that run dry. One mutex for all classes - it is
// touched once per kLocalCap/kRefillBatch operations, not per message.
struct Reservoir {
  std::mutex mu;
  std::vector<Word*> free_[WordPool::kClasses];
  // Static teardown owns whatever the thread pools flushed here; without
  // this, any run that ever overflowed a local freelist leaks those blocks
  // at exit (LSan flags them once the vectors release their buffers).
  ~Reservoir() {
    for (auto& list : free_) {
      for (Word* block : list) delete[] block;
    }
  }
};

Reservoir& reservoir() {
  static Reservoir r;
  return r;
}

std::atomic<std::uint64_t> g_fresh{0};
std::atomic<std::uint64_t> g_reused{0};

}  // namespace

WordPool& WordPool::local() {
  thread_local WordPool pool;
  return pool;
}

std::uint32_t WordPool::round_cap(std::uint32_t need) {
  const std::uint32_t floor = std::uint32_t{1} << kMinCapLog2;
  return std::bit_ceil(need < floor ? floor : need);
}

int WordPool::class_of(std::uint32_t cap) {
  MWC_DCHECK(std::has_single_bit(cap) && cap >= (1u << kMinCapLog2));
  const int idx = std::bit_width(cap) - 1 - static_cast<int>(kMinCapLog2);
  return idx < kClasses ? idx : -1;
}

Word* WordPool::alloc(std::uint32_t cap) {
  const int cls = class_of(cap);
  if (cls < 0) {  // absurdly large message: straight to the heap
    g_fresh.fetch_add(1, std::memory_order_relaxed);
    return new Word[cap];
  }
  std::vector<Word*>& list = free_[cls];
  if (list.empty()) {
    Reservoir& shared = reservoir();
    std::lock_guard<std::mutex> lock(shared.mu);
    std::vector<Word*>& pool = shared.free_[cls];
    const std::size_t take = pool.size() < kRefillBatch ? pool.size() : kRefillBatch;
    list.insert(list.end(), pool.end() - static_cast<std::ptrdiff_t>(take),
                pool.end());
    pool.resize(pool.size() - take);
  }
  if (!list.empty()) {
    Word* block = list.back();
    list.pop_back();
    g_reused.fetch_add(1, std::memory_order_relaxed);
    return block;
  }
  g_fresh.fetch_add(1, std::memory_order_relaxed);
  return new Word[cap];
}

void WordPool::free_block(Word* block, std::uint32_t cap) {
  const int cls = class_of(cap);
  if (cls < 0) {
    delete[] block;
    return;
  }
  std::vector<Word*>& list = free_[cls];
  list.push_back(block);
  if (list.size() >= kLocalCap) {
    // Flush the older half to the reservoir so blocks freed here can feed
    // allocating threads (the parallel engine frees on the merge thread).
    Reservoir& shared = reservoir();
    std::lock_guard<std::mutex> lock(shared.mu);
    const std::size_t keep = kLocalCap / 2;
    shared.free_[cls].insert(shared.free_[cls].end(), list.begin(),
                             list.begin() + static_cast<std::ptrdiff_t>(keep));
    list.erase(list.begin(), list.begin() + static_cast<std::ptrdiff_t>(keep));
  }
}

void WordPool::trim() {
  for (auto& list : free_) {
    for (Word* block : list) delete[] block;
    list.clear();
  }
}

WordPool::~WordPool() { trim(); }

WordPool::Stats WordPool::global_stats() {
  return Stats{g_fresh.load(std::memory_order_relaxed),
               g_reused.load(std::memory_order_relaxed)};
}

void WordPool::reset_global_stats() {
  g_fresh.store(0, std::memory_order_relaxed);
  g_reused.store(0, std::memory_order_relaxed);
}

}  // namespace mwc::congest
