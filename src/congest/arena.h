// Word-block pooling for CONGEST messages.
//
// A simulation moving tens of millions of messages per run spends a
// surprising share of its wall-clock inside the allocator: every Message
// that spills past its inline words used to own a std::vector, so each
// spill was a malloc at send time and a free at delivery - pure churn,
// since the same sizes recycle every round. WordPool replaces that with
// per-thread freelists of power-of-two Word blocks: a block freed by one
// round is handed back, still warm, to the next.
//
// Design:
//   * Blocks are plain heap arrays (new Word[cap]) in power-of-two size
//     classes starting at 8 words. A block's lifetime is independent of
//     the pool it came from - pools only cache pointers.
//   * Each thread caches blocks in a thread-local pool, so the hot path
//     (alloc/free on one thread) is lock-free. The parallel engine
//     allocates messages on worker threads and frees them on the merge
//     thread; to keep blocks flowing back to the allocating side, a pool
//     that grows past a per-class cap flushes half its blocks to a shared
//     mutex-guarded reservoir, and a pool that runs dry refills from it in
//     batches.
//   * Counters (fresh heap allocations vs. pool reuses) are global atomics
//     so benches can report allocation churn; see bench_engine.
//
// Thread-safety: distinct Messages may be created/destroyed on distinct
// threads concurrently (each touches only its thread's pool plus the
// locked reservoir). A single Message is not internally synchronized.
#pragma once

#include <cstdint>
#include <vector>

namespace mwc::congest {

using Word = std::uint64_t;

class WordPool {
 public:
  WordPool() = default;
  ~WordPool();
  WordPool(const WordPool&) = delete;
  WordPool& operator=(const WordPool&) = delete;

  // The calling thread's pool.
  static WordPool& local();

  // Smallest poolable capacity (power of two >= need); the capacity that
  // must later be passed to free_block.
  static std::uint32_t round_cap(std::uint32_t need);

  // A block of exactly `cap` Words (cap must come from round_cap).
  Word* alloc(std::uint32_t cap);
  void free_block(Word* block, std::uint32_t cap);

  // Releases every block cached by this pool back to the heap.
  void trim();

  struct Stats {
    std::uint64_t fresh = 0;   // blocks obtained with new[]
    std::uint64_t reused = 0;  // blocks served from a freelist
  };
  // Aggregated over all threads since process start (or the last reset).
  static Stats global_stats();
  static void reset_global_stats();

  static constexpr std::uint32_t kMinCapLog2 = 3;  // 8 words
  static constexpr int kClasses = 22;              // up to 8 << 21 words

 private:
  // Local freelist size that triggers a flush to the shared reservoir.
  static constexpr std::size_t kLocalCap = 256;
  static constexpr std::size_t kRefillBatch = 32;

  static int class_of(std::uint32_t cap);  // -1 when cap is too large to pool

  std::vector<Word*> free_[kClasses];
};

}  // namespace mwc::congest
