#include "congest/bellman_ford.h"

#include <algorithm>
#include <cmath>

#include "congest/metrics.h"
#include "graph/transforms.h"
#include "support/check.h"
#include "support/math_util.h"

namespace mwc::congest {

SsspResult exact_sssp(Network& net, const std::vector<graph::NodeId>& sources,
                      bool reverse, RunStats* stats) {
  PhaseSpan span(net, "exact_sssp");
  MultiBfsParams params;
  params.sources = sources;
  params.mode = DelayMode::kImmediate;
  params.reverse = reverse;
  MultiBfs bfs = run_multi_bfs(net, std::move(params), stats);
  SsspResult result;
  result.k = static_cast<int>(sources.size());
  result.dist.resize(static_cast<std::size_t>(net.n()) *
                     static_cast<std::size_t>(result.k));
  for (graph::NodeId v = 0; v < net.n(); ++v) {
    for (int i = 0; i < result.k; ++i) {
      result.dist[static_cast<std::size_t>(v) * static_cast<std::size_t>(result.k) +
                  static_cast<std::size_t>(i)] = bfs.dist(v, i);
    }
  }
  return result;
}

SsspResult approx_hop_sssp(Network& net, const ApproxHopSsspParams& params,
                           RunStats* stats) {
  MWC_CHECK(params.hop_limit >= 1 && params.epsilon > 0);
  PhaseSpan span(net, "approx_hop_sssp");
  const graph::Graph& g = net.problem_graph();
  const int h = params.hop_limit;
  const double eps = params.epsilon;
  const int k = static_cast<int>(params.sources.size());
  // Tick budget per level: h* = (1 + 2/eps) * h (Section 5.1).
  const auto h_star = static_cast<Weight>(
      std::ceil((1.0 + 2.0 / eps) * static_cast<double>(h)));

  SsspResult result;
  result.k = k;
  result.dist.assign(static_cast<std::size_t>(net.n()) * static_cast<std::size_t>(k),
                     kInfWeight);
  if (stats != nullptr) *stats = RunStats{};

  // Level i handles true path weights in (2^(i-1), 2^i]; the smallest
  // possible h-hop path weight is 1 and the largest is h * W.
  const auto max_path_weight =
      static_cast<std::uint64_t>(h) * static_cast<std::uint64_t>(g.max_weight());
  const int max_level = support::ceil_log2(std::max<std::uint64_t>(2, max_path_weight));
  for (int level = 0; level <= max_level; ++level) {
    graph::Graph scaled = graph::reweighted(g, [&](graph::Weight w) {
      return graph::scaled_weight(w, h, eps, level);
    });
    MultiBfsParams bfs_params;
    bfs_params.sources = params.sources;
    bfs_params.mode = DelayMode::kWeightDelay;
    bfs_params.tick_limit = h_star;
    bfs_params.reverse = params.reverse;
    bfs_params.graph_override = &scaled;
    RunStats level_stats;
    MultiBfs bfs = run_multi_bfs(net, std::move(bfs_params), &level_stats);
    if (stats != nullptr) {
      stats->rounds += level_stats.rounds;
      stats->messages += level_stats.messages;
      stats->words += level_stats.words;
      stats->max_queue_words =
          std::max(stats->max_queue_words, level_stats.max_queue_words);
    }
    // Unscale: a scaled distance dh at level i certifies a real path of
    // weight <= floor(dh * eps * 2^i / (2h)) (weights are integral).
    const double unscale = eps * std::ldexp(1.0, level) / (2.0 * static_cast<double>(h));
    for (graph::NodeId v = 0; v < net.n(); ++v) {
      for (int i = 0; i < k; ++i) {
        const Weight dh = bfs.dist(v, i);
        if (dh == kInfWeight) continue;
        const auto est = static_cast<Weight>(
            std::floor(static_cast<double>(dh) * unscale + 1e-9));
        auto& slot =
            result.dist[static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
                        static_cast<std::size_t>(i)];
        slot = std::min(slot, std::max<Weight>(est, 0));
      }
    }
  }
  return result;
}

}  // namespace mwc::congest
