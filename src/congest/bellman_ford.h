// Weighted shortest paths wrappers over MultiBfs.
//
//  * exact_sssp        - asynchronous Bellman-Ford with min-combining:
//    exact distances from k sources. This is the engine behind the exact
//    weighted APSP baseline (DESIGN.md substitution 2: the role of [8]'s
//    O~(n)-round exact APSP). Round cost is whatever the execution takes.
//
//  * approx_hop_sssp   - (1+eps)-approximate h-hop-limited distances from k
//    sources via the scaling ladder of [41]: for each level i the weights
//    are scaled to ceil(2hw / (eps 2^i)) and a stretched-graph BFS with tick
//    budget h* = (1 + 2/eps) h is run; unscaling and min-combining over the
//    ladder yields, for every pair at h-hop-distance d, an estimate in
//    [d, (1+eps) d]. Each level costs O(h* + k) rounds; there are
//    O(log(hW)) levels.
#pragma once

#include <vector>

#include "congest/multi_bfs.h"

namespace mwc::congest {

struct SsspResult {
  int k = 0;
  // dist[v * k + i]: distance from source i to node v (or v to source i in
  // reverse mode); kInfWeight if unreachable (or beyond the hop budget).
  std::vector<Weight> dist;

  Weight at(graph::NodeId v, int source_idx) const {
    return dist[static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
                static_cast<std::size_t>(source_idx)];
  }
};

// Exact SSSP from every source (directed: follows arcs; reverse computes
// distances *to* the sources).
SsspResult exact_sssp(Network& net, const std::vector<graph::NodeId>& sources,
                      bool reverse = false, RunStats* stats = nullptr);

struct ApproxHopSsspParams {
  std::vector<graph::NodeId> sources;
  int hop_limit = 0;     // h: paths of more hops need not be approximated
  double epsilon = 0.5;  // approximation slack
  bool reverse = false;
};

// (1+eps)-approximation d' with d_h(s,v) <= d' for every v whose h-hop
// distance is finite; estimates are always weights of real paths.
SsspResult approx_hop_sssp(Network& net, const ApproxHopSsspParams& params,
                           RunStats* stats = nullptr);

}  // namespace mwc::congest
