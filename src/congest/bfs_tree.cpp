#include "congest/bfs_tree.h"

#include <algorithm>
#include <map>

#include "congest/metrics.h"
#include "congest/runner.h"
#include "support/check.h"

namespace mwc::congest {

namespace {

// Message words: {kToken, depth} announces the wave; {kAdopt} tells the
// receiver it became the sender's parent, {kUnadopt} that it no longer is.
//
// Adoption relaxes like a distance label: a node adopts any strictly smaller
// depth it hears, even after joining. On reliable synchronous links the first
// wave is already optimal and no re-adoption ever fires (identical messages
// and rounds to a join-once flood); over the reliable transport of
// reliable_link.h, where a retransmitted token can arrive arbitrarily late,
// relaxation is what keeps the finished tree a true BFS tree. Parent links
// are reconciled by adopt/unadopt counting, which within-round inbox
// shuffling cannot unbalance.
constexpr Word kToken = 0;
constexpr Word kAdopt = 1;
constexpr Word kUnadopt = 2;

class BfsTreeProtocol : public Protocol {
 public:
  BfsTreeProtocol(int n, graph::NodeId root) : root_(root) {
    result_.root = root;
    result_.parent.assign(static_cast<std::size_t>(n), graph::kNoNode);
    result_.depth.assign(static_cast<std::size_t>(n), -1);
    result_.children.resize(static_cast<std::size_t>(n));
    child_count_.resize(static_cast<std::size_t>(n));
  }

  void begin(NodeCtx& node) override {
    if (node.id() != root_) return;
    result_.depth[static_cast<std::size_t>(node.id())] = 0;
    // Token waves go to every comm neighbor: the cached per-link direction
    // indices make each a one-word fast-path send (see protocol.h).
    for (std::int32_t dir : node.comm_link_dirs()) {
      node.send_on(dir, pack_tag(kToken, 1));
    }
  }

  void round(NodeCtx& node) override {
    const auto me = static_cast<std::size_t>(node.id());
    auto& my_depth = result_.depth[me];
    auto& my_parent = result_.parent[me];
    for (const Delivery& m : node.inbox()) {
      const Word tag = tag_of(m.msg[0]);
      if (tag == kAdopt) {
        ++child_count_[me][m.from];
        continue;
      }
      if (tag == kUnadopt) {
        --child_count_[me][m.from];
        continue;
      }
      const auto d = static_cast<std::int32_t>(value_of(m.msg[0]));
      if (my_depth != -1 && d >= my_depth) continue;
      my_depth = d;
      if (my_parent != m.from) {
        if (my_parent != graph::kNoNode) {
          node.send_word(my_parent, pack_tag(kUnadopt, 0));
        }
        my_parent = m.from;
        node.send_word(my_parent, pack_tag(kAdopt, 0));
      }
      const std::span<const graph::NodeId> nbrs = node.comm_neighbors();
      const std::span<const std::int32_t> dirs = node.comm_link_dirs();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] != my_parent) {
          node.send_on(dirs[i], pack_tag(kToken, static_cast<Word>(d + 1)));
        }
      }
    }
  }

  BfsTreeResult take_result() {
    for (std::size_t v = 0; v < child_count_.size(); ++v) {
      for (const auto& [child, count] : child_count_[v]) {
        MWC_CHECK_MSG(count == 0 || count == 1, "adopt/unadopt out of balance");
        if (count == 1) result_.children[v].push_back(child);
      }
    }
    for (std::int32_t d : result_.depth) {
      MWC_CHECK_MSG(d >= 0, "communication topology must be connected");
      result_.height = std::max(result_.height, d);
    }
    return std::move(result_);
  }

 private:
  graph::NodeId root_;
  BfsTreeResult result_;
  // Net adopt (+1) / unadopt (-1) balance per potential child; the final
  // children lists are the neighbors left at +1, in increasing id order.
  std::vector<std::map<graph::NodeId, int>> child_count_;
};

}  // namespace

BfsTreeResult build_bfs_tree(Network& net, graph::NodeId root, RunStats* stats) {
  MWC_CHECK(root >= 0 && root < net.n());
  PhaseSpan span(net, "bfs_tree");
  BfsTreeProtocol proto(net.n(), root);
  RunStats s = run_protocol(net, proto);
  if (stats != nullptr) *stats = s;
  return proto.take_result();
}

}  // namespace mwc::congest
