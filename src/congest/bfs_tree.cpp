#include "congest/bfs_tree.h"

#include "congest/runner.h"
#include "support/check.h"

namespace mwc::congest {

namespace {

// Message words: {kToken, depth} announces the wave; {kAdopt} tells the
// receiver it became the sender's parent.
constexpr Word kToken = 0;
constexpr Word kAdopt = 1;

class BfsTreeProtocol : public Protocol {
 public:
  BfsTreeProtocol(int n, graph::NodeId root) : root_(root) {
    result_.root = root;
    result_.parent.assign(static_cast<std::size_t>(n), graph::kNoNode);
    result_.depth.assign(static_cast<std::size_t>(n), -1);
    result_.children.resize(static_cast<std::size_t>(n));
  }

  void begin(NodeCtx& node) override {
    if (node.id() != root_) return;
    result_.depth[static_cast<std::size_t>(node.id())] = 0;
    for (graph::NodeId u : node.comm_neighbors()) {
      node.send(u, Message{pack_tag(kToken, 1)});
    }
  }

  void round(NodeCtx& node) override {
    auto& my_depth = result_.depth[static_cast<std::size_t>(node.id())];
    for (const Delivery& m : node.inbox()) {
      if (tag_of(m.msg[0]) == kAdopt) {
        result_.children[static_cast<std::size_t>(node.id())].push_back(m.from);
        continue;
      }
      const auto d = static_cast<std::int32_t>(value_of(m.msg[0]));
      if (my_depth != -1) continue;  // already joined the tree
      my_depth = d;
      result_.parent[static_cast<std::size_t>(node.id())] = m.from;
      node.send(m.from, Message{pack_tag(kAdopt, 0)});
      for (graph::NodeId u : node.comm_neighbors()) {
        if (u != m.from) node.send(u, Message{pack_tag(kToken, static_cast<Word>(d + 1))});
      }
    }
  }

  BfsTreeResult take_result() {
    for (std::int32_t d : result_.depth) {
      MWC_CHECK_MSG(d >= 0, "communication topology must be connected");
      result_.height = std::max(result_.height, d);
    }
    return std::move(result_);
  }

 private:
  graph::NodeId root_;
  BfsTreeResult result_;
};

}  // namespace

BfsTreeResult build_bfs_tree(Network& net, graph::NodeId root, RunStats* stats) {
  MWC_CHECK(root >= 0 && root < net.n());
  BfsTreeProtocol proto(net.n(), root);
  RunStats s = run_protocol(net, proto);
  if (stats != nullptr) *stats = s;
  return proto.take_result();
}

}  // namespace mwc::congest
