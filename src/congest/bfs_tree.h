// BFS spanning tree of the communication topology.
//
// The backbone for the broadcast and convergecast operations of [43]
// (Peleg's textbook primitives the paper uses throughout). Rooted at a fixed
// node (ids are globally known in CONGEST, so "node 0" is a valid leader
// without an election). Depth of the tree is at most the network diameter D.
#pragma once

#include <vector>

#include "congest/protocol.h"
#include "graph/graph.h"

namespace mwc::congest {

struct BfsTreeResult {
  graph::NodeId root = 0;
  std::vector<graph::NodeId> parent;               // kNoNode for root
  std::vector<std::int32_t> depth;                 // hops from root
  std::vector<std::vector<graph::NodeId>> children;
  int height = 0;                                  // max depth; <= D
};

// Builds the tree by flooding from `root`; O(D) rounds, O(m) messages.
// The communication topology must be connected.
BfsTreeResult build_bfs_tree(Network& net, graph::NodeId root = 0,
                             RunStats* stats = nullptr);

}  // namespace mwc::congest
