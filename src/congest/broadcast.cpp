#include "congest/broadcast.h"

#include "congest/metrics.h"
#include "congest/runner.h"
#include "support/check.h"

namespace mwc::congest {

namespace {
constexpr Word kItemUp = 0;
constexpr Word kItemDown = 1;
constexpr Word kDoneUp = 2;
constexpr Word kDoneDown = 3;
}  // namespace

class BroadcastProtocol : public Protocol {
 public:
  BroadcastProtocol(const BfsTreeResult& tree,
                    const std::vector<std::vector<BroadcastItem>>& items_per_node)
      : tree_(tree), items_per_node_(items_per_node) {
    const std::size_t n = tree.parent.size();
    result_.received_.assign(n, 0);
    pending_done_children_.resize(n);
    sent_done_up_.assign(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      pending_done_children_[v] = static_cast<int>(tree_.children[v].size());
    }
  }

  void begin(NodeCtx& node) override {
    const auto v = static_cast<std::size_t>(node.id());
    if (node.id() == tree_.root) {
      for (const BroadcastItem& item : items_per_node_[v]) collect_at_root(node, item);
    } else {
      for (const BroadcastItem& item : items_per_node_[v]) {
        node.send(tree_.parent[v], frame(kItemUp, item));
      }
    }
    maybe_done_up(node);
  }

  void round(NodeCtx& node) override {
    const auto v = static_cast<std::size_t>(node.id());
    for (const Delivery& m : node.inbox()) {
      switch (m.msg[0]) {
        case kItemUp: {
          BroadcastItem item = unframe(m.msg);
          if (node.id() == tree_.root) {
            collect_at_root(node, item);
          } else {
            node.send(tree_.parent[v], frame(kItemUp, item));
          }
          break;
        }
        case kItemDown: {
          BroadcastItem item = unframe(m.msg);
          ++result_.received_[v];
          for (graph::NodeId c : tree_.children[v]) {
            node.send(c, frame(kItemDown, item));
          }
          break;
        }
        case kDoneUp:
          --pending_done_children_[v];
          maybe_done_up(node);
          break;
        case kDoneDown:
          for (graph::NodeId c : tree_.children[v]) node.send(c, Message{kDoneDown});
          break;
        default:
          MWC_CHECK(false);
      }
    }
  }

  BroadcastResult take_result() { return std::move(result_); }

 private:
  static Message frame(Word type, const BroadcastItem& item) {
    MWC_CHECK(!item.empty());
    Message msg{type};
    for (Word w : item) msg.push(w);
    return msg;
  }
  static BroadcastItem unframe(const Message& msg) {
    BroadcastItem item;
    item.reserve(msg.size() - 1);
    for (std::uint32_t i = 1; i < msg.size(); ++i) item.push_back(msg[i]);
    return item;
  }

  // Root: record the item and immediately pipeline it down to all children.
  void collect_at_root(NodeCtx& node, const BroadcastItem& item) {
    result_.items_.push_back(item);
    ++result_.received_[static_cast<std::size_t>(tree_.root)];
    for (graph::NodeId c : tree_.children[static_cast<std::size_t>(tree_.root)]) {
      node.send(c, frame(kItemDown, item));
    }
  }

  // Upcast termination: once my subtree is fully flushed, tell the parent
  // (FIFO links guarantee the DONE trails every forwarded item). At the
  // root, all-children-done means the collection is complete; flood the
  // final DONE downward.
  void maybe_done_up(NodeCtx& node) {
    const auto v = static_cast<std::size_t>(node.id());
    if (pending_done_children_[v] != 0 || sent_done_up_[v] != 0) return;
    sent_done_up_[v] = 1;
    if (node.id() == tree_.root) {
      for (graph::NodeId c : tree_.children[v]) node.send(c, Message{kDoneDown});
    } else {
      node.send(tree_.parent[v], Message{kDoneUp});
    }
  }

  const BfsTreeResult& tree_;
  const std::vector<std::vector<BroadcastItem>>& items_per_node_;
  BroadcastResult result_;
  std::vector<int> pending_done_children_;
  // uint8_t, not vector<bool>: concurrently stepped nodes write their own
  // index, which must not share storage with a neighbor's bit.
  std::vector<std::uint8_t> sent_done_up_;
};

BroadcastResult broadcast(Network& net, const BfsTreeResult& tree,
                          const std::vector<std::vector<BroadcastItem>>& items_per_node,
                          RunStats* stats) {
  MWC_CHECK(static_cast<int>(items_per_node.size()) == net.n());
  PhaseSpan span(net, "broadcast");
  BroadcastProtocol proto(tree, items_per_node);
  RunStats s = run_protocol(net, proto);
  if (stats != nullptr) *stats = s;
  BroadcastResult result = proto.take_result();
  // Every node must have physically received every item.
  for (graph::NodeId v = 0; v < net.n(); ++v) {
    MWC_CHECK_MSG(result.received_count(v) == result.items().size(),
                  "broadcast under-delivered");
  }
  return result;
}

}  // namespace mwc::congest
