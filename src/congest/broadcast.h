// Global broadcast of M messages in O(M + D) rounds [43].
//
// Items originate at arbitrary nodes, are upcast (pipelined) along the BFS
// tree to the root, and flooded back down, so every node ends up knowing all
// M items. Nodes pace themselves (one item per tree link per round) so link
// queues stay bounded; the engine's bandwidth enforcement turns the pacing
// into the familiar O(M + D) round bound.
//
// The collected item list is canonical (root arrival order). Per-node copies
// would be identical, so the simulation stores one list plus a per-node
// received counter; the counters prove every node physically received every
// item (tests assert this).
#pragma once

#include <vector>

#include "congest/bfs_tree.h"
#include "congest/protocol.h"

namespace mwc::congest {

using BroadcastItem = std::vector<Word>;

class BroadcastResult {
 public:
  // All items, in the canonical (root) order.
  const std::vector<BroadcastItem>& items() const { return items_; }
  // Number of items node v physically received (== items().size() for all v
  // on success; the root "receives" its collected list by construction).
  std::size_t received_count(graph::NodeId v) const {
    return received_[static_cast<std::size_t>(v)];
  }

 private:
  friend class BroadcastProtocol;
  std::vector<BroadcastItem> items_;
  std::vector<std::size_t> received_;
};

// Broadcasts items_per_node[v] (owned by node v) to every node.
BroadcastResult broadcast(Network& net, const BfsTreeResult& tree,
                          const std::vector<std::vector<BroadcastItem>>& items_per_node,
                          RunStats* stats = nullptr);

}  // namespace mwc::congest
