#include "congest/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "support/check.h"

namespace mwc::congest {

namespace {

constexpr char kMagic[4] = {'M', 'W', 'C', 'K'};

void put_le(std::string& buf, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// RunStats has no natural serialization elsewhere; field order here is part
// of the checkpoint format (bump kCheckpointVersion if it changes).
void put_run_stats(CheckpointWriter& w, const RunStats& s) {
  w.u64(s.rounds);
  w.u64(s.messages);
  w.u64(s.words);
  w.u64(s.max_queue_words);
  w.u64(s.dropped_messages);
  w.u64(s.dropped_words);
  w.u64(s.retransmitted_words);
  w.u64(s.stalled_rounds);
  w.u64(s.corrupted_words);
  w.u64(s.checksum_rejects);
  w.u64(s.dup_messages);
  w.u64(s.dup_words);
  w.u64(s.crashes);
  w.u64(s.recoveries);
  w.u64(s.dead_links);
}

bool get_run_stats(CheckpointReader& r, RunStats& s) {
  return r.u64(s.rounds) && r.u64(s.messages) && r.u64(s.words) &&
         r.u64(s.max_queue_words) && r.u64(s.dropped_messages) &&
         r.u64(s.dropped_words) && r.u64(s.retransmitted_words) &&
         r.u64(s.stalled_rounds) && r.u64(s.corrupted_words) &&
         r.u64(s.checksum_rejects) && r.u64(s.dup_messages) &&
         r.u64(s.dup_words) && r.u64(s.crashes) &&
         r.u64(s.recoveries) && r.u64(s.dead_links);
}

void put_phase(CheckpointWriter& w, const PhaseMetrics& p) {
  w.str(p.path);
  w.u64(p.runs);
  w.u64(p.aborted_runs);
  w.u64(p.rounds);
  w.u64(p.messages);
  w.u64(p.words);
  w.u64(p.max_queue_words);
  w.u64(p.max_link_words);
  w.i32(p.busiest_from);
  w.i32(p.busiest_to);
  w.u64(p.cut_words);
  w.u64(p.dropped_messages);
  w.u64(p.dropped_words);
  w.u64(p.retransmitted_words);
  w.u64(p.stalled_rounds);
  w.u64(p.crashes);
  w.u64(p.recoveries);
  w.u64(p.corrupted_words);
  w.u64(p.checksum_rejects);
  w.u64(p.dead_links);
}

bool get_phase(CheckpointReader& r, PhaseMetrics& p) {
  return r.str(p.path) && r.u64(p.runs) && r.u64(p.aborted_runs) &&
         r.u64(p.rounds) && r.u64(p.messages) && r.u64(p.words) &&
         r.u64(p.max_queue_words) && r.u64(p.max_link_words) &&
         r.i32(p.busiest_from) && r.i32(p.busiest_to) && r.u64(p.cut_words) &&
         r.u64(p.dropped_messages) && r.u64(p.dropped_words) &&
         r.u64(p.retransmitted_words) && r.u64(p.stalled_rounds) &&
         r.u64(p.crashes) && r.u64(p.recoveries) && r.u64(p.corrupted_words) &&
         r.u64(p.checksum_rejects) && r.u64(p.dead_links);
}

void put_metrics(CheckpointWriter& w, const MetricsSnapshot& m) {
  put_phase(w, m.total);
  w.u32(static_cast<std::uint32_t>(m.phases.size()));
  for (const PhaseMetrics& p : m.phases) put_phase(w, p);
  w.u32(static_cast<std::uint32_t>(m.open_phases.size()));
  for (const std::string& s : m.open_phases) w.str(s);
  w.str(m.error);
}

bool get_metrics(CheckpointReader& r, MetricsSnapshot& m) {
  if (!get_phase(r, m.total)) return false;
  std::uint32_t count = 0;
  if (!r.u32(count) || count > (1u << 20)) return false;
  m.phases.resize(count);
  for (PhaseMetrics& p : m.phases) {
    if (!get_phase(r, p)) return false;
  }
  if (!r.u32(count) || count > (1u << 20)) return false;
  m.open_phases.resize(count);
  for (std::string& s : m.open_phases) {
    if (!r.str(s)) return false;
  }
  return r.str(m.error);
}

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

// ---- primitives ------------------------------------------------------------

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t h) {
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void CheckpointWriter::u8(std::uint8_t v) { put_le(buf_, v, 1); }
void CheckpointWriter::u32(std::uint32_t v) { put_le(buf_, v, 4); }
void CheckpointWriter::u64(std::uint64_t v) { put_le(buf_, v, 8); }
void CheckpointWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}
void CheckpointWriter::raw(std::string_view bytes) {
  buf_.append(bytes.data(), bytes.size());
}

bool CheckpointReader::u8(std::uint8_t& v) {
  if (!ok_ || pos_ + 1 > s_.size()) return ok_ = false;
  v = static_cast<std::uint8_t>(s_[pos_++]);
  return true;
}
bool CheckpointReader::u32(std::uint32_t& v) {
  if (!ok_ || pos_ + 4 > s_.size()) return ok_ = false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(s_[pos_++]))
         << (8 * i);
  }
  return true;
}
bool CheckpointReader::u64(std::uint64_t& v) {
  if (!ok_ || pos_ + 8 > s_.size()) return ok_ = false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(s_[pos_++]))
         << (8 * i);
  }
  return true;
}
bool CheckpointReader::i32(std::int32_t& v) {
  std::uint32_t u = 0;
  if (!u32(u)) return false;
  v = static_cast<std::int32_t>(u);
  return true;
}
bool CheckpointReader::i64(std::int64_t& v) {
  std::uint64_t u = 0;
  if (!u64(u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}
bool CheckpointReader::str(std::string& s) {
  std::uint32_t len = 0;
  if (!u32(len)) return false;
  if (pos_ + len > s_.size()) return ok_ = false;
  s.assign(s_.data() + pos_, len);
  pos_ += len;
  return true;
}

// ---- fingerprints ----------------------------------------------------------

std::uint64_t graph_fingerprint(const graph::Graph& g) {
  CheckpointWriter w;
  w.u32(static_cast<std::uint32_t>(g.node_count()));
  w.u32(static_cast<std::uint32_t>(g.edge_count()));
  w.u8(g.is_directed() ? 1 : 0);
  for (const graph::Edge& e : g.edges()) {
    w.i32(e.from);
    w.i32(e.to);
    w.i64(e.w);
  }
  return fnv1a(w.bytes());
}

std::uint64_t network_config_fingerprint(const NetworkConfig& cfg) {
  CheckpointWriter w;
  // threads is intentionally absent: execution is bit-identical across
  // thread counts, so a checkpoint cut at --threads=1 resumes at any.
  w.u32(static_cast<std::uint32_t>(cfg.bandwidth_words));
  w.u64(cfg.max_rounds_per_run);
  w.u8(cfg.shuffle_deliveries ? 1 : 0);
  w.u8(cfg.reliable_transport ? 1 : 0);
  w.u64(cfg.reliable.base_timeout_rounds);
  w.u64(cfg.reliable.max_timeout_rounds);
  w.u32(static_cast<std::uint32_t>(cfg.reliable.max_retries));
  auto put_double = [&w](double d) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    w.u64(bits);
  };
  const FaultPlan& f = cfg.faults;
  put_double(f.drop_prob);
  w.u32(static_cast<std::uint32_t>(f.drop_overrides.size()));
  for (const LinkDropOverride& o : f.drop_overrides) {
    w.i32(o.a);
    w.i32(o.b);
    put_double(o.prob);
  }
  put_double(f.corrupt_prob);
  w.u32(static_cast<std::uint32_t>(f.corrupt_overrides.size()));
  for (const LinkCorruptOverride& o : f.corrupt_overrides) {
    w.i32(o.a);
    w.i32(o.b);
    put_double(o.prob);
  }
  w.u32(static_cast<std::uint32_t>(f.corrupt_windows.size()));
  for (const CorruptFault& c : f.corrupt_windows) {
    w.i32(c.from);
    w.i32(c.to);
    w.u64(c.first_round);
    w.u64(c.last_round);
  }
  w.u32(static_cast<std::uint32_t>(f.stalls.size()));
  for (const StallFault& s : f.stalls) {
    w.i32(s.from);
    w.i32(s.to);
    w.u64(s.first_round);
    w.u64(s.last_round);
  }
  w.u32(static_cast<std::uint32_t>(f.crashes.size()));
  for (const CrashFault& c : f.crashes) {
    w.i32(c.node);
    w.u64(c.round);
  }
  w.u32(static_cast<std::uint32_t>(f.recovers.size()));
  for (const RecoverFault& r : f.recovers) {
    w.i32(r.node);
    w.u64(r.round);
  }
  return fnv1a(w.bytes());
}

// ---- CheckpointSession -----------------------------------------------------

void CheckpointSession::bind(Network& net, std::uint64_t options_digest) {
  net_ = &net;
  options_digest_ = options_digest;
}

void CheckpointSession::set_trace_probe(std::function<TracePosition()> probe) {
  probe_ = std::move(probe);
}

void CheckpointSession::cut(std::uint8_t stage, std::string payload,
                            const RunStats& stats, RunOutcome worst_outcome) {
  MWC_CHECK_MSG(net_ != nullptr, "CheckpointSession::cut before bind");
  const NetworkStats counters = net_->stats();
  const TracePosition pos = probe_ ? probe_() : TracePosition{};

  CheckpointWriter w;
  w.raw(std::string_view(kMagic, sizeof(kMagic)));
  w.u32(kCheckpointVersion);
  w.u64(kCheckpointEndianProbe);
  w.u64(graph_fingerprint(net_->problem_graph()));
  w.u64(net_->seed());
  w.u64(network_config_fingerprint(net_->config()));
  w.u64(options_digest_);
  w.u8(stage);
  w.u8(static_cast<std::uint8_t>(worst_outcome));
  w.u64(counters.runs);
  w.u64(counters.rounds);
  w.u64(counters.messages);
  w.u64(counters.words);
  w.u64(counters.cut_words);
  put_run_stats(w, stats);
  w.u64(pos.bytes);
  w.u64(pos.events);
  const Metrics* metrics = net_->metrics();
  w.u8(metrics != nullptr ? 1 : 0);
  if (metrics != nullptr) put_metrics(w, metrics->snapshot());
  w.str(payload);
  w.u64(fnv1a(w.bytes()));

  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("checkpoint: cannot write " + tmp);
  }
  const std::string& bytes = w.bytes();
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed || std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: failed to commit " + path_);
  }
}

bool CheckpointSession::load(std::string* error) {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return fail(error, "cannot read " + path_);
  std::string bytes;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, got);
  }
  std::fclose(f);
  if (bytes.size() < sizeof(kMagic) + 4 + 8 + 8 ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail(error, path_ + " is not a checkpoint file");
  }
  const std::uint64_t want =
      fnv1a(std::string_view(bytes).substr(0, bytes.size() - 8));
  CheckpointReader tail(std::string_view(bytes).substr(bytes.size() - 8));
  std::uint64_t recorded = 0;
  tail.u64(recorded);
  if (recorded != want) {
    return fail(error, path_ + " checksum mismatch (torn or corrupt file)");
  }

  CheckpointReader r(std::string_view(bytes).substr(
      sizeof(kMagic), bytes.size() - sizeof(kMagic) - 8));
  std::uint32_t version = 0;
  std::uint64_t probe = 0;
  std::uint8_t stage = 0, outcome = 0, metrics_flag = 0;
  if (!r.u32(version)) return fail(error, path_ + ": truncated header");
  if (version != kCheckpointVersion) {
    return fail(error, path_ + ": format version " + std::to_string(version) +
                           " unsupported (expected " +
                           std::to_string(kCheckpointVersion) + ")");
  }
  if (!r.u64(probe) || probe != kCheckpointEndianProbe) {
    return fail(error, path_ + ": endianness mismatch");
  }
  const bool header_ok =
      r.u64(graph_hash_) && r.u64(seed_) && r.u64(config_hash_) &&
      r.u64(loaded_options_digest_) && r.u8(stage) && r.u8(outcome) &&
      r.u64(counters_.runs) && r.u64(counters_.rounds) &&
      r.u64(counters_.messages) && r.u64(counters_.words) &&
      r.u64(counters_.cut_words) && get_run_stats(r, stats_) &&
      r.u64(trace_pos_.bytes) && r.u64(trace_pos_.events) &&
      r.u8(metrics_flag);
  if (!header_ok) return fail(error, path_ + ": truncated header");
  has_metrics_ = metrics_flag != 0;
  metrics_ = MetricsSnapshot{};
  if (has_metrics_ && !get_metrics(r, metrics_)) {
    return fail(error, path_ + ": truncated metrics block");
  }
  if (!r.str(payload_) || !r.done()) {
    return fail(error, path_ + ": truncated payload");
  }
  stage_ = stage;
  worst_outcome_ = static_cast<RunOutcome>(outcome);
  resuming_ = true;
  return true;
}

bool CheckpointSession::validate(const Network& net,
                                 std::uint64_t options_digest,
                                 std::string* error) const {
  MWC_CHECK_MSG(resuming_, "CheckpointSession::validate before load");
  if (graph_hash_ != graph_fingerprint(net.problem_graph())) {
    return fail(error, path_ + " was cut for a different graph");
  }
  if (seed_ != net.seed()) {
    return fail(error, path_ + " was cut for a different seed");
  }
  if (config_hash_ != network_config_fingerprint(net.config())) {
    return fail(error, path_ + " was cut under a different network config");
  }
  if (loaded_options_digest_ != options_digest) {
    return fail(error, path_ + " was cut under different solve options");
  }
  return true;
}

void CheckpointSession::restore(Network& net) const {
  MWC_CHECK_MSG(resuming_, "CheckpointSession::restore before load");
  net.restore_stats(counters_);
}

bool read_checkpoint_trace_position(const std::string& path,
                                    TracePosition* out, std::string* error) {
  CheckpointSession session(path);
  if (!session.load(error)) return false;
  if (out != nullptr) *out = session.trace_position();
  return true;
}

}  // namespace mwc::congest
