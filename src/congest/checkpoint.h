// Versioned on-disk snapshots of a solve in progress (checkpoint/resume).
//
// The engine's determinism makes resumable solves cheap: execution from any
// run boundary is a pure function of (graph, seed, config, run counter),
// because every run's RNG stream is forked as master.fork(run_counter) and
// fault schedules derive from it. A checkpoint therefore never serializes
// protocol state - it records the *identity* of the execution (graph,
// seed, config and option fingerprints), the network's accumulated
// counters, the caller's algorithm-stage payload (e.g. the APSP matrices of
// mwc/exact.cpp), the accumulated RunStats/outcome, the byte offset of an
// attached trace log, and a metrics snapshot. Resuming validates the
// identity, restores the counters, truncates the trace log to the recorded
// offset, and re-enters the algorithm at the saved stage; deterministic
// replay regenerates everything after the cut bit-for-bit, so the final
// report, metrics, and trace are byte-identical to an uninterrupted run -
// at any thread count (threads are excluded from the config fingerprint
// precisely because they cannot change results).
//
// File format (docs/governance.md documents the compatibility policy): a
// fixed header {magic "MWCK", format version, endianness probe}, identity
// and progress fields, an optional metrics block, the opaque stage payload,
// and a trailing FNV-1a checksum over everything before it. All scalars are
// little-endian; a big-endian reader detects the probe mismatch and
// refuses. Writes go to `path.tmp` then rename() - a kill mid-write leaves
// the previous checkpoint intact, never a torn file.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "congest/metrics.h"
#include "congest/network.h"
#include "congest/protocol.h"
#include "graph/graph.h"

namespace mwc::congest {

inline constexpr std::uint32_t kCheckpointVersion = 2;  // v2: RunStats dup counters
inline constexpr std::uint64_t kCheckpointEndianProbe = 0x0102030405060708ULL;

// FNV-1a over `bytes`, seeded by `h` for incremental hashing.
std::uint64_t fnv1a(std::string_view bytes,
                    std::uint64_t h = 0xcbf29ce484222325ULL);

// Identity fingerprints: a checkpoint resumes only against the same graph
// and an equivalent configuration. Thread count is deliberately excluded
// (bit-identical execution across thread counts is an engine invariant).
std::uint64_t graph_fingerprint(const graph::Graph& g);
std::uint64_t network_config_fingerprint(const NetworkConfig& cfg);

// Little-endian scalar serialization for checkpoint blocks. Algorithms use
// these to encode their stage payloads (mwc/exact.cpp).
class CheckpointWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(std::string_view s);  // u32 length + bytes
  void raw(std::string_view bytes);

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// The matching reader. Every getter returns false (and poisons the reader)
// on truncation; check ok() or the last getter before trusting values.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::string_view bytes) : s_(bytes) {}

  bool u8(std::uint8_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool i32(std::int32_t& v);
  bool i64(std::int64_t& v);
  bool str(std::string& s);

  bool ok() const { return ok_; }
  bool done() const { return ok_ && pos_ == s_.size(); }
  std::size_t remaining() const { return s_.size() - pos_; }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Byte offset + event count of an attached trace log at cut time; resume
// truncates the log file to `bytes` so deterministic replay re-appends the
// discarded suffix identically.
struct TracePosition {
  std::uint64_t bytes = 0;
  std::uint64_t events = 0;
};

// One solve's checkpoint file: the writing side cuts snapshots at algorithm
// stage boundaries; the loading side restores identity-checked progress.
class CheckpointSession {
 public:
  explicit CheckpointSession(std::string path) : path_(std::move(path)) {}

  // --- writing side ----------------------------------------------------
  // Binds the network whose counters each cut() records, plus the solve
  // options digest the checkpoint is only valid for.
  void bind(Network& net, std::uint64_t options_digest);
  // Reports the attached trace log's current (offset, events); unset means
  // "no trace" (zeros are recorded).
  void set_trace_probe(std::function<TracePosition()> probe);
  // Writes a snapshot: algorithm stage + opaque payload, the accumulated
  // stats/worst-outcome so far, the bound network's counters, the trace
  // position, and a snapshot of the network's attached Metrics (if any).
  // Atomic (tmp + rename); throws std::runtime_error on I/O failure.
  void cut(std::uint8_t stage, std::string payload, const RunStats& stats,
           RunOutcome worst_outcome);

  // --- loading side ----------------------------------------------------
  // Reads and verifies path; on success the session is resuming() and the
  // accessors below expose the recorded state. False + *error on a missing,
  // torn, corrupt, or version-incompatible file.
  bool load(std::string* error);
  // Identity check against the network/options about to resume.
  bool validate(const Network& net, std::uint64_t options_digest,
                std::string* error) const;
  // Overwrites the network's accumulated counters (including the run
  // counter that seeds every run's RNG stream) with the recorded ones.
  void restore(Network& net) const;

  bool resuming() const { return resuming_; }
  std::uint8_t stage() const { return stage_; }
  const std::string& payload() const { return payload_; }
  const RunStats& stats() const { return stats_; }
  RunOutcome worst_outcome() const { return worst_outcome_; }
  TracePosition trace_position() const { return trace_pos_; }
  bool has_metrics() const { return has_metrics_; }
  const MetricsSnapshot& metrics() const { return metrics_; }
  const std::string& path() const { return path_; }

  // Stage numbering shared with mwc/exact.cpp. kStageArmed (identity +
  // zero progress) is cut by cycle::solve() before dispatch, so even a kill
  // during the first phase resumes with a validated file.
  static constexpr std::uint8_t kStageArmed = 0;
  static constexpr std::uint8_t kStageApsp = 1;
  static constexpr std::uint8_t kStageExchange = 2;

 private:
  std::string path_;
  Network* net_ = nullptr;
  std::uint64_t options_digest_ = 0;
  std::function<TracePosition()> probe_;

  bool resuming_ = false;
  std::uint64_t graph_hash_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t config_hash_ = 0;
  std::uint64_t loaded_options_digest_ = 0;
  std::uint8_t stage_ = kStageArmed;
  RunOutcome worst_outcome_ = RunOutcome::kCompleted;
  NetworkStats counters_;
  RunStats stats_;
  TracePosition trace_pos_;
  bool has_metrics_ = false;
  MetricsSnapshot metrics_;
  std::string payload_;
};

// Reads only the trace position from a checkpoint (for log truncation
// before the full resume machinery spins up). False + *error when the file
// does not verify.
bool read_checkpoint_trace_position(const std::string& path,
                                    TracePosition* out, std::string* error);

}  // namespace mwc::congest
