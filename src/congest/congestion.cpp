#include "congest/congestion.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace mwc::congest {

namespace {

void append_u64(std::string& out, const char* key, std::uint64_t v,
                bool trailing_comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64 "%s", key, v,
                trailing_comma ? ", " : "");
  out += buf;
}

// Doubles are formatted with %.6g: short, locale-independent, and the same
// bytes for the same bits on every run - the determinism suite compares the
// serialized form across thread counts.
void append_f64(std::string& out, const char* key, double v,
                bool trailing_comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6g%s", key, v,
                trailing_comma ? ", " : "");
  out += buf;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

// ---- CongestionSnapshot ----------------------------------------------------

void CongestionSnapshot::append_json(std::string& out,
                                     const char* indent) const {
  const std::string in1 = indent;
  const std::string in2 = in1 + "  ";
  const std::string in3 = in2 + "  ";
  out += "{\n" + in2;
  append_u64(out, "rounds_observed", rounds_observed);
  append_u64(out, "total_words", total_words);
  append_u64(out, "spill_peak_slots", spill_peak_slots);
  append_u64(out, "overflow_peak_entries", overflow_peak_entries,
             /*trailing_comma=*/false);
  out += ",\n" + in2 + "\"top_links\": [";
  for (std::size_t i = 0; i < top_links.size(); ++i) {
    out += i == 0 ? "\n" + in3 : ",\n" + in3;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"from\": %d, \"to\": %d, \"words\": %" PRIu64 "}",
                  top_links[i].from, top_links[i].to, top_links[i].words);
    out += buf;
  }
  out += top_links.empty() ? "]" : "\n" + in2 + "]";
  out += ",\n" + in2;
  append_u64(out, "timeline_dropped", timeline_dropped,
             /*trailing_comma=*/false);
  out += ",\n" + in2 + "\"timeline\": [";
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    out += i == 0 ? "\n" + in3 : ",\n" + in3;
    const RoundSample& s = timeline[i];
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"run\": %" PRIu64 ", \"round\": %" PRIu64
                  ", \"frontier_nodes\": %" PRIu64 ", \"words\": %" PRIu64
                  ", \"backlog\": %" PRIu64 "}",
                  s.run, s.round, s.frontier_nodes, s.words, s.backlog);
    out += buf;
  }
  out += timeline.empty() ? "]" : "\n" + in2 + "]";
  out += "\n" + in1 + "}";
}

std::string CongestionSnapshot::to_json() const {
  std::string out;
  append_json(out, "");
  out += "\n";
  return out;
}

// ---- CongestionLedger ------------------------------------------------------

CongestionLedger::CongestionLedger(CongestionOptions options)
    : options_(options) {
  if (options_.top_k < 0) options_.top_k = 0;
  if (options_.timeline_capacity < 0) options_.timeline_capacity = 0;
}

void CongestionLedger::bind(
    std::vector<std::pair<graph::NodeId, graph::NodeId>> endpoints) {
  if (endpoints == endpoints_) return;  // re-attach to the same network
  endpoints_ = std::move(endpoints);
  dir_words_.assign(endpoints_.size(), 0);
  // A different direction table means a different network: everything
  // observed so far belonged to the old one.
  reset();
}

void CongestionLedger::add_dir_words(int dir_idx, std::uint64_t words) {
  dir_words_[static_cast<std::size_t>(dir_idx)] += words;
  total_words_ += words;
}

void CongestionLedger::on_round(std::uint64_t run, std::uint64_t round,
                                std::uint64_t frontier_nodes,
                                std::uint64_t words, std::uint64_t backlog) {
  RoundSample s{run, round, frontier_nodes, words, backlog};
  const std::size_t cap = static_cast<std::size_t>(options_.timeline_capacity);
  if (cap == 0) {
    ++ring_total_;
    return;
  }
  if (ring_.size() < cap) {
    ring_.push_back(s);
  } else {
    ring_[ring_head_] = s;  // overwrite the oldest
    ring_head_ = (ring_head_ + 1) % cap;
  }
  ++ring_total_;
}

void CongestionLedger::note_engine_marks(std::uint64_t spill_peak_slots,
                                         std::uint64_t overflow_peak_entries) {
  spill_peak_slots_ = std::max(spill_peak_slots_, spill_peak_slots);
  overflow_peak_entries_ =
      std::max(overflow_peak_entries_, overflow_peak_entries);
}

CongestionSnapshot CongestionLedger::snapshot() const {
  CongestionSnapshot snap;
  snap.observed = true;
  snap.rounds_observed = ring_total_;
  snap.total_words = total_words_;
  snap.spill_peak_slots = spill_peak_slots_;
  snap.overflow_peak_entries = overflow_peak_entries_;

  // Top-K hottest links. Directions with zero traffic never make the list;
  // ties break toward the smaller (from, to) pair so the selection is a
  // pure function of the accumulated loads.
  std::vector<LinkLoad> loads;
  loads.reserve(dir_words_.size());
  for (std::size_t d = 0; d < dir_words_.size(); ++d) {
    if (dir_words_[d] == 0) continue;
    loads.push_back({endpoints_[d].first, endpoints_[d].second, dir_words_[d]});
  }
  auto hotter = [](const LinkLoad& a, const LinkLoad& b) {
    if (a.words != b.words) return a.words > b.words;
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  };
  const std::size_t k =
      std::min(loads.size(), static_cast<std::size_t>(options_.top_k));
  std::partial_sort(loads.begin(), loads.begin() + k, loads.end(), hotter);
  loads.resize(k);
  snap.top_links = std::move(loads);

  // Timeline: oldest retained sample first.
  snap.timeline.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    snap.timeline.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  snap.timeline_dropped = ring_total_ - ring_.size();
  return snap;
}

void CongestionLedger::reset() {
  std::fill(dir_words_.begin(), dir_words_.end(), 0);
  ring_.clear();
  ring_head_ = 0;
  ring_total_ = 0;
  total_words_ = 0;
  spill_peak_slots_ = 0;
  overflow_peak_entries_ = 0;
}

// ---- AdherenceReport -------------------------------------------------------

void AdherenceReport::append_json(std::string& out, const char* indent) const {
  const std::string in1 = indent;
  const std::string in2 = in1 + "  ";
  const std::string in3 = in2 + "  ";
  out += "{\n" + in2 + "\"algorithm\": ";
  append_quoted(out, algorithm);
  out += ",\n" + in2;
  append_u64(out, "n", n);
  append_u64(out, "m", m);
  append_u64(out, "diameter", static_cast<std::uint64_t>(diameter),
             /*trailing_comma=*/false);
  out += ",\n" + in2 + "\"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out += i == 0 ? "\n" + in3 : ",\n" + in3;
    const AdherenceEntry& e = entries[i];
    out += "{\"scope\": ";
    append_quoted(out, e.scope);
    out += ", \"counter\": ";
    append_quoted(out, e.counter);
    out += ", \"form\": ";
    append_quoted(out, e.form);
    out += ", ";
    append_f64(out, "predicted", e.predicted);
    append_u64(out, "observed", e.observed);
    append_f64(out, "constant", e.constant);
    append_f64(out, "threshold", e.threshold);
    out += "\"verdict\": ";
    append_quoted(out, e.verdict);
    out += "}";
  }
  out += entries.empty() ? "]" : "\n" + in2 + "]";
  out += ",\n" + in2 + "\"verdict\": ";
  append_quoted(out, verdict);
  out += "\n" + in1 + "}";
}

std::string AdherenceReport::to_json() const {
  std::string out;
  append_json(out, "");
  out += "\n";
  return out;
}

}  // namespace mwc::congest
