// The congestion observatory: per-link/per-round attribution and
// bound-adherence data types.
//
// The paper's results are stated entirely in rounds and congestion - Table 1
// upper bounds against the Omega(n/log n) and Omega(sqrt(n)/log n) cut
// arguments - yet the aggregate counters of metrics.h only say *how much*
// traffic a solve moved, never *where* or *when*. A CongestionLedger
// attached to a Network (like Trace and Metrics: not owned, zero-cost when
// detached) records the missing attribution:
//
//   * per link direction, the total words it carried across every observed
//     run - the snapshot keeps the top-K hottest links;
//   * per engine round, a fixed-size ring of (frontier width, words moved,
//     end-of-round backlog) samples - the timeline a dashboard plots;
//   * the engine-internal high-water marks: spill-pool slots in use and the
//     deepest per-direction overflow heap (see FrontierStats in frontier.h).
//
// Determinism: every feeding hook runs on the Runner's host thread
// (settle_dir, the end-of-round sample, the run-end marks), so a ledger's
// snapshot - and its JSON - is bit-identical across NetworkConfig::threads,
// exactly like metrics snapshots and traces. The determinism suite asserts
// the bytes at threads 1/2/4.
//
// Settle-path caveat: the per-link totals and the round timeline are
// invariant across SettlePath kLegacy/kFrontier (both paths settle the same
// words in the same rounds). The two engine-internal marks are NOT: the
// frontier path parks multi-word payloads in the spill pool at enqueue time
// while the legacy path only spills delivered messages, and the overflow
// heap exists only on the frontier path (0 under kLegacy). The JSON keys
// are stable across both paths; only these two values may differ.
//
// Checkpoint caveat: ledger state is not checkpointed. A resumed solve's
// congestion section covers only the rounds executed after the restore, so
// the byte-identical-resume guarantee of docs/governance.md applies to
// metrics/trace/report, not to an attached ledger.
//
// AdherenceReport lives here too: the pure-data result of fitting a solve's
// observed round/word counters against the dispatched algorithm's predicted
// closed-form complexity (the registry and the fit itself are in
// mwc/bounds.h - the congest layer knows counters, not algorithms).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace mwc::congest {

struct CongestionOptions {
  // Opt-in master switch for SolveOptions embedding: solve() attaches a
  // ledger only when set. A ledger attached directly to a Network observes
  // runs regardless of this flag.
  bool enabled = false;
  // Hottest links kept in the snapshot (ties broken toward smaller
  // (from, to), so the selection is deterministic).
  int top_k = 8;
  // Per-round timeline ring capacity; the most recent samples are kept and
  // the snapshot counts how many older ones were evicted.
  int timeline_capacity = 256;
};

// One link direction's accumulated load.
struct LinkLoad {
  graph::NodeId from = graph::kNoNode;
  graph::NodeId to = graph::kNoNode;
  std::uint64_t words = 0;

  friend bool operator==(const LinkLoad&, const LinkLoad&) = default;
};

// One engine round's sample.
struct RoundSample {
  std::uint64_t run = 0;
  std::uint64_t round = 0;
  std::uint64_t frontier_nodes = 0;  // nodes invoked this round
  std::uint64_t words = 0;           // words settled this round
  std::uint64_t backlog = 0;         // queued words left across active dirs

  friend bool operator==(const RoundSample&, const RoundSample&) = default;
};

// A point-in-time copy of everything a ledger observed. Default-constructed
// (observed == false) it is the "no ledger was attached" value and
// serializes to nothing (MetricsSnapshot::to_json omits the section).
struct CongestionSnapshot {
  bool observed = false;
  std::uint64_t rounds_observed = 0;
  std::uint64_t total_words = 0;
  std::vector<LinkLoad> top_links;    // descending by words
  std::vector<RoundSample> timeline;  // oldest retained sample first
  std::uint64_t timeline_dropped = 0;
  // Engine-internal, settle-path-dependent (see header comment).
  std::uint64_t spill_peak_slots = 0;
  std::uint64_t overflow_peak_entries = 0;

  // Stable, byte-deterministic JSON object (fixed key order, integer
  // counters) appended to `out`; `indent` is the prefix of nested lines.
  void append_json(std::string& out, const char* indent) const;
  std::string to_json() const;

  friend bool operator==(const CongestionSnapshot&,
                         const CongestionSnapshot&) = default;
};

// The sink. Attach with Network::attach_congestion; not owned, must outlive
// the runs it observes. All methods are host-thread only.
class CongestionLedger {
 public:
  explicit CongestionLedger(CongestionOptions options = {});

  const CongestionOptions& options() const { return options_; }

  // Called by Network::attach_congestion: sizes the per-direction
  // accumulators and records the endpoints so snapshots stand alone.
  // Idempotent for a matching direction table (re-attaching the same ledger
  // to the same network keeps its accumulated data); a different table
  // resets everything observed - it belonged to another network.
  void bind(std::vector<std::pair<graph::NodeId, graph::NodeId>> endpoints);

  // --- engine hooks (Runner, host thread only) --------------------------
  void add_dir_words(int dir_idx, std::uint64_t words);
  void on_round(std::uint64_t run, std::uint64_t round,
                std::uint64_t frontier_nodes, std::uint64_t words,
                std::uint64_t backlog);
  // Run-end high-water marks (max-folded across runs; see frontier.h).
  void note_engine_marks(std::uint64_t spill_peak_slots,
                         std::uint64_t overflow_peak_entries);

  // --- consumption ------------------------------------------------------
  CongestionSnapshot snapshot() const;
  // Clears everything observed; keeps the binding.
  void reset();

 private:
  CongestionOptions options_;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> endpoints_;
  std::vector<std::uint64_t> dir_words_;
  // Timeline ring: ring_[(head_ + i) % capacity] is the i-th oldest sample
  // once saturated.
  std::vector<RoundSample> ring_;
  std::size_t ring_head_ = 0;
  std::uint64_t ring_total_ = 0;
  std::uint64_t total_words_ = 0;
  std::uint64_t spill_peak_slots_ = 0;
  std::uint64_t overflow_peak_entries_ = 0;
};

// ---- bound adherence (pure data; the fit lives in mwc/bounds.h) ----------

// One fitted counter against one declared closed form.
struct AdherenceEntry {
  std::string scope;    // "total" or the phase suffix the bound matched
  std::string counter;  // "rounds" | "words"
  std::string form;     // human-readable closed form in n, m, D
  double predicted = 0;        // the form evaluated at (n, m, D)
  std::uint64_t observed = 0;  // the counter the solve recorded
  double constant = 0;         // fitted constant: observed / predicted
  double threshold = 0;        // verdict boundary for the constant
  std::string verdict;         // "pass" (constant <= threshold) | "warn"

  friend bool operator==(const AdherenceEntry&,
                         const AdherenceEntry&) = default;
};

struct AdherenceReport {
  bool evaluated = false;
  std::string algorithm;  // MwcReport::algorithm the bounds were looked up by
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  int diameter = 0;
  std::vector<AdherenceEntry> entries;
  std::string verdict;  // "pass" iff every entry passes, else "warn"

  void append_json(std::string& out, const char* indent) const;
  std::string to_json() const;

  friend bool operator==(const AdherenceReport&,
                         const AdherenceReport&) = default;
};

}  // namespace mwc::congest
