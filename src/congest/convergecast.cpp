#include "congest/convergecast.h"

#include <algorithm>

#include "congest/metrics.h"
#include "congest/runner.h"
#include "support/check.h"

namespace mwc::congest {

namespace {

constexpr Word kUp = 0;
constexpr Word kDown = 1;

graph::Weight combine(AggregateOp op, graph::Weight a, graph::Weight b) {
  switch (op) {
    case AggregateOp::kMin:
      return std::min(a, b);
    case AggregateOp::kMax:
      return std::max(a, b);
    case AggregateOp::kSum:
      return a + b;
  }
  MWC_CHECK(false);
  return 0;
}

class ConvergecastProtocol : public Protocol {
 public:
  ConvergecastProtocol(const BfsTreeResult& tree,
                       const std::vector<graph::Weight>& values, AggregateOp op)
      : tree_(tree), op_(op), acc_(values) {
    const std::size_t n = values.size();
    pending_children_.resize(n);
    result_at_.assign(n, graph::kInfWeight);
    for (std::size_t v = 0; v < n; ++v) {
      pending_children_[v] = static_cast<int>(tree_.children[v].size());
    }
  }

  void begin(NodeCtx& node) override {
    maybe_send_up(node);
  }

  void round(NodeCtx& node) override {
    const auto v = static_cast<std::size_t>(node.id());
    for (const Delivery& m : node.inbox()) {
      const auto value = static_cast<graph::Weight>(value_of(m.msg[0]));
      if (tag_of(m.msg[0]) == kUp) {
        acc_[v] = combine(op_, acc_[v], value);
        --pending_children_[v];
        maybe_send_up(node);
      } else {
        deliver_down(node, value);
      }
    }
  }

  graph::Weight result_at(graph::NodeId v) const {
    return result_at_[static_cast<std::size_t>(v)];
  }

 private:
  void maybe_send_up(NodeCtx& node) {
    const auto v = static_cast<std::size_t>(node.id());
    if (pending_children_[v] != 0 || sent_up_[v] != 0) return;
    sent_up_[v] = 1;
    if (node.id() == tree_.root) {
      deliver_down(node, acc_[v]);
    } else {
      node.send_word(tree_.parent[v], pack_tag(kUp, static_cast<Word>(acc_[v])));
    }
  }

  void deliver_down(NodeCtx& node, graph::Weight value) {
    const auto v = static_cast<std::size_t>(node.id());
    result_at_[v] = value;
    for (graph::NodeId c : tree_.children[v]) {
      node.send_word(c, pack_tag(kDown, static_cast<Word>(value)));
    }
  }

  const BfsTreeResult& tree_;
  AggregateOp op_;
  std::vector<graph::Weight> acc_;
  std::vector<int> pending_children_;
  // uint8_t, not vector<bool>: concurrently stepped nodes write their own
  // index, which must not share storage with a neighbor's bit.
  std::vector<std::uint8_t> sent_up_ = std::vector<std::uint8_t>(acc_.size(), 0);
  std::vector<graph::Weight> result_at_;
};

}  // namespace

graph::Weight convergecast(Network& net, const BfsTreeResult& tree,
                           const std::vector<graph::Weight>& values,
                           AggregateOp op, RunStats* stats) {
  MWC_CHECK(static_cast<int>(values.size()) == net.n());
  PhaseSpan span(net, "convergecast");
  ConvergecastProtocol proto(tree, values, op);
  RunStats s = run_protocol(net, proto);
  if (stats != nullptr) *stats = s;
  graph::Weight result = proto.result_at(tree.root);
  // Every node must have learned the same aggregate - an invariant of the
  // protocol only on runs without un-masked interference: a crash-recovered
  // node (or a peer behind an abandoned link, or raw loss/corruption
  // without the ARQ layer) can legitimately miss the downcast. Callers see
  // such runs in their fault ledger and degrade accordingly.
  const bool interfered =
      s.crashes > 0 || s.dead_links > 0 ||
      (!net.config().reliable_transport &&
       (s.dropped_messages > 0 || s.corrupted_words > 0));
  if (!interfered) {
    for (graph::NodeId v = 0; v < net.n(); ++v) {
      MWC_CHECK(proto.result_at(v) == result);
    }
  }
  return result;
}

}  // namespace mwc::congest
