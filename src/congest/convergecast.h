// Convergecast: associative aggregation over all nodes, O(D) rounds [43].
//
// Each node holds one Weight; the tree aggregates bottom-up at the root and
// the result is flooded back down, so *every* node knows the aggregate (the
// paper's MWC algorithms end with exactly this: "mu <- min_v mu_v, computed
// by a convergecast operation").
#pragma once

#include <vector>

#include "congest/bfs_tree.h"
#include "congest/protocol.h"
#include "graph/graph.h"

namespace mwc::congest {

enum class AggregateOp { kMin, kMax, kSum };

// Returns the aggregate (also known at every node after the run).
graph::Weight convergecast(Network& net, const BfsTreeResult& tree,
                           const std::vector<graph::Weight>& values,
                           AggregateOp op, RunStats* stats = nullptr);

}  // namespace mwc::congest
