// Per-link-direction outbound queue: a flat binary min-heap over
// (priority, enqueue-sequence).
//
// Replaces std::priority_queue<QueuedMsg>, which this engine outgrew twice
// over: its const top() forced a const_cast to move the transmitted payload
// out (UB-adjacent - the heap invariant is restored by the immediate pop,
// but the cast is a trap for every future reader), and it offers no way to
// inspect entries when a crash fault vaporizes a queue's contents for the
// dropped-words tally. The flat heap owns its vector, so capacity persists
// across rounds (zero steady-state allocation) and take_top() is an honest
// mutable move.
//
// Ordering: strict (priority, seq) lexicographic min-order. Sequence
// numbers are globally unique per run, so the comparison is a total order
// and the pop sequence is deterministic - the property every bit-identical
// replay in this engine leans on.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "congest/message.h"

namespace mwc::congest {

struct QueuedMsg {
  std::int64_t priority = 0;
  std::uint64_t seq = 0;
  Message msg;
};

class DirQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  void push(std::int64_t priority, std::uint64_t seq, Message msg) {
    heap_.push_back(QueuedMsg{priority, seq, std::move(msg)});
    sift_up(heap_.size() - 1);
  }

  const QueuedMsg& top() const { return heap_.front(); }

  // Moves the head's payload out and removes the entry - the transmit hot
  // path (one call per message that starts transmitting).
  Message take_top() {
    Message msg = std::move(heap_.front().msg);
    pop();
    return msg;
  }

  void pop() {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  // Every queued entry, in heap (not pop) order - for bulk accounting such
  // as tallying the words a crash-stop destroys.
  std::span<const QueuedMsg> entries() const { return heap_; }

  void clear() { heap_.clear(); }

 private:
  static bool before(const QueuedMsg& a, const QueuedMsg& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && before(heap_[l], heap_[smallest])) smallest = l;
      if (r < n && before(heap_[r], heap_[smallest])) smallest = r;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<QueuedMsg> heap_;
};

}  // namespace mwc::congest
