#include "congest/faults.h"

#include <algorithm>

#include "support/check.h"

namespace mwc::congest {

FaultInjector::FaultInjector(const FaultPlan& plan, support::Rng rng, int n,
                             std::span<const std::pair<NodeId, NodeId>> dir_endpoints)
    : rng_(rng) {
  MWC_CHECK_MSG(plan.drop_prob >= 0.0 && plan.drop_prob < 1.0,
                "drop_prob must be in [0, 1)");
  drop_prob_.assign(dir_endpoints.size(), plan.drop_prob);
  stalls_.resize(dir_endpoints.size());
  for (std::size_t i = 0; i < dir_endpoints.size(); ++i) {
    const auto [from, to] = dir_endpoints[i];
    for (const LinkDropOverride& o : plan.drop_overrides) {
      MWC_CHECK_MSG(o.prob >= 0.0 && o.prob < 1.0,
                    "drop override prob must be in [0, 1)");
      if ((o.a == from && o.b == to) || (o.a == to && o.b == from)) {
        drop_prob_[i] = o.prob;
      }
    }
    for (const StallFault& s : plan.stalls) {
      MWC_CHECK_MSG(s.first_round <= s.last_round, "empty stall interval");
      if (s.from == from && s.to == to) {
        stalls_[i].emplace_back(s.first_round, s.last_round);
      }
    }
  }
  // One crash per node (earliest round wins), ordered by round.
  std::vector<CrashFault> crashes = plan.crashes;
  std::sort(crashes.begin(), crashes.end(), [](const CrashFault& a, const CrashFault& b) {
    return a.round != b.round ? a.round < b.round : a.node < b.node;
  });
  for (const CrashFault& c : crashes) {
    MWC_CHECK_MSG(c.node >= 0 && c.node < n, "crash fault names an unknown node");
    const bool seen = std::any_of(
        crashes_.begin(), crashes_.end(),
        [&](const CrashFault& prev) { return prev.node == c.node; });
    if (!seen) crashes_.push_back(c);
  }
}

bool FaultInjector::drop_message(int dir_idx) {
  const double p = drop_prob_[static_cast<std::size_t>(dir_idx)];
  if (p <= 0.0) return false;
  return rng_.next_bool(p);
}

bool FaultInjector::stalled(int dir_idx, std::uint64_t round) const {
  for (const auto& [first, last] : stalls_[static_cast<std::size_t>(dir_idx)]) {
    if (round >= first && round <= last) return true;
  }
  return false;
}

}  // namespace mwc::congest
