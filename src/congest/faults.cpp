#include "congest/faults.h"

#include <algorithm>

#include "support/check.h"

namespace mwc::congest {

FaultInjector::FaultInjector(const FaultPlan& plan, support::Rng rng, int n,
                             std::span<const std::pair<NodeId, NodeId>> dir_endpoints)
    : rng_(rng) {
  MWC_CHECK_MSG(plan.drop_prob >= 0.0 && plan.drop_prob < 1.0,
                "drop_prob must be in [0, 1)");
  MWC_CHECK_MSG(plan.corrupt_prob >= 0.0 && plan.corrupt_prob < 1.0,
                "corrupt_prob must be in [0, 1)");
  MWC_CHECK_MSG(plan.dup_prob >= 0.0 && plan.dup_prob < 1.0,
                "dup_prob must be in [0, 1)");
  drop_prob_.assign(dir_endpoints.size(), plan.drop_prob);
  corrupt_prob_.assign(dir_endpoints.size(), plan.corrupt_prob);
  dup_prob_.assign(dir_endpoints.size(), plan.dup_prob);
  stalls_.resize(dir_endpoints.size());
  windows_.resize(dir_endpoints.size());
  for (std::size_t i = 0; i < dir_endpoints.size(); ++i) {
    const auto [from, to] = dir_endpoints[i];
    for (const LinkDropOverride& o : plan.drop_overrides) {
      MWC_CHECK_MSG(o.prob >= 0.0 && o.prob < 1.0,
                    "drop override prob must be in [0, 1)");
      if ((o.a == from && o.b == to) || (o.a == to && o.b == from)) {
        drop_prob_[i] = o.prob;
      }
    }
    for (const LinkCorruptOverride& o : plan.corrupt_overrides) {
      MWC_CHECK_MSG(o.prob >= 0.0 && o.prob < 1.0,
                    "corrupt override prob must be in [0, 1)");
      if ((o.a == from && o.b == to) || (o.a == to && o.b == from)) {
        corrupt_prob_[i] = o.prob;
      }
    }
    for (const LinkDupOverride& o : plan.dup_overrides) {
      MWC_CHECK_MSG(o.prob >= 0.0 && o.prob < 1.0,
                    "dup override prob must be in [0, 1)");
      if ((o.a == from && o.b == to) || (o.a == to && o.b == from)) {
        dup_prob_[i] = o.prob;
      }
    }
    for (const StallFault& s : plan.stalls) {
      MWC_CHECK_MSG(s.first_round <= s.last_round, "empty stall interval");
      if (s.from == from && s.to == to) {
        stalls_[i].emplace_back(s.first_round, s.last_round);
      }
    }
    for (const CorruptFault& c : plan.corrupt_windows) {
      MWC_CHECK_MSG(c.first_round <= c.last_round,
                    "empty corruption window");
      if (c.from == from && c.to == to) {
        windows_[i].emplace_back(c.first_round, c.last_round);
      }
    }
    any_corruption_ =
        any_corruption_ || corrupt_prob_[i] > 0.0 || !windows_[i].empty();
  }
  // One crash per node (earliest round wins), ordered by round.
  std::vector<CrashFault> crashes = plan.crashes;
  std::sort(crashes.begin(), crashes.end(), [](const CrashFault& a, const CrashFault& b) {
    return a.round != b.round ? a.round < b.round : a.node < b.node;
  });
  for (const CrashFault& c : crashes) {
    MWC_CHECK_MSG(c.node >= 0 && c.node < n, "crash fault names an unknown node");
    const bool seen = std::any_of(
        crashes_.begin(), crashes_.end(),
        [&](const CrashFault& prev) { return prev.node == c.node; });
    if (!seen) crashes_.push_back(c);
  }
  // One recovery per node, ordered by round; each must revive a node that
  // actually crashed at a strictly earlier round.
  std::vector<RecoverFault> recovers = plan.recovers;
  std::sort(recovers.begin(), recovers.end(),
            [](const RecoverFault& a, const RecoverFault& b) {
              return a.round != b.round ? a.round < b.round : a.node < b.node;
            });
  for (const RecoverFault& r : recovers) {
    MWC_CHECK_MSG(r.node >= 0 && r.node < n,
                  "recovery fault names an unknown node");
    const auto crash = std::find_if(
        crashes_.begin(), crashes_.end(),
        [&](const CrashFault& c) { return c.node == r.node; });
    MWC_CHECK_MSG(crash != crashes_.end(),
                  "recovery fault names a node with no crash fault");
    MWC_CHECK_MSG(r.round > crash->round,
                  "recovery must happen strictly after the crash");
    const bool seen = std::any_of(
        recoveries_.begin(), recoveries_.end(),
        [&](const RecoverFault& prev) { return prev.node == r.node; });
    MWC_CHECK_MSG(!seen, "at most one recovery per node");
    recoveries_.push_back(r);
  }
}

bool FaultInjector::drop_message(int dir_idx) {
  const double p = drop_prob_[static_cast<std::size_t>(dir_idx)];
  if (p <= 0.0) return false;
  return rng_.next_bool(p);
}

bool FaultInjector::duplicate_message(int dir_idx) {
  const double p = dup_prob_[static_cast<std::size_t>(dir_idx)];
  if (p <= 0.0) return false;
  return rng_.next_bool(p);
}

std::uint32_t FaultInjector::corrupt_message(int dir_idx, std::uint64_t round,
                                             Message& msg) {
  if (!any_corruption_) return 0;
  const auto di = static_cast<std::size_t>(dir_idx);
  std::uint32_t flipped = 0;
  const double p = corrupt_prob_[di];
  if (p > 0.0) {
    for (std::uint32_t i = 0; i < msg.size(); ++i) {
      if (!rng_.next_bool(p)) continue;
      // A zero mask would be a no-op "corruption"; force at least one bit.
      Word mask = rng_.next_u64();
      if (mask == 0) mask = 1;
      msg.set(i, msg[i] ^ mask);
      ++flipped;
    }
  }
  for (const auto& [first, last] : windows_[di]) {
    if (round < first || round > last) continue;
    const std::uint32_t i = static_cast<std::uint32_t>(round % msg.size());
    Word mask = rng_.next_u64();
    if (mask == 0) mask = 1;
    msg.set(i, msg[i] ^ mask);
    ++flipped;
    break;  // one targeted flip per delivery, however many windows overlap
  }
  return flipped;
}

bool FaultInjector::stalled(int dir_idx, std::uint64_t round) const {
  for (const auto& [first, last] : stalls_[static_cast<std::size_t>(dir_idx)]) {
    if (round >= first && round <= last) return true;
  }
  return false;
}

}  // namespace mwc::congest
