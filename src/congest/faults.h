// Deterministic fault injection for the CONGEST engine.
//
// The paper's model (Section 1.1) assumes perfectly reliable synchronous
// links. To study the algorithms' behaviour off that happy path - and to
// exercise the reliable transport of reliable_link.h - a FaultPlan attached
// to NetworkConfig describes an adversary:
//
//   * message drops:  every fully transmitted message is lost with a
//     per-link probability (a global rate plus per-link overrides);
//   * duplication:    every delivered message is delivered twice with a
//     per-link probability (a global rate plus per-link overrides) - the
//     copy carries the identical payload, corruption included, and costs
//     no extra bandwidth (the adversary clones at the receiving end);
//   * corruption:     every delivered word is XOR-flipped with a per-link
//     probability (a global rate plus per-link overrides), and targeted
//     CorruptFault windows mangle every message a direction delivers during
//     a round interval;
//   * link stalls:    a link direction moves zero words during a round
//     interval (the queue keeps its contents, time keeps passing);
//   * crash-stops:    a node falls permanently silent at a given round -
//     it is never stepped again, its queued and in-flight outbound
//     messages vanish, and inbound deliveries to it are discarded;
//   * recoveries:     a crash-stopped node comes back at a later round with
//     its volatile state wiped - the engine calls Protocol::on_restart and
//     resumes stepping it (see runner.h).
//
// Every run materializes its fault schedule from a FaultInjector seeded by
// the run's RNG stream, which the Network forks from (master_seed,
// run_counter). The same seed therefore reproduces the identical schedule -
// fuzz failures replay exactly.
//
// Faults never abort the run: the engine reports what happened through
// RunResult / RunStats (see protocol.h) and the Trace layer.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "congest/message.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace mwc::congest {

using graph::NodeId;

// Drop-probability override for both directions of the a-b link.
struct LinkDropOverride {
  NodeId a = graph::kNoNode;
  NodeId b = graph::kNoNode;
  double prob = 0.0;
};

// Per-word corruption-probability override for both directions of the a-b
// link.
struct LinkCorruptOverride {
  NodeId a = graph::kNoNode;
  NodeId b = graph::kNoNode;
  double prob = 0.0;
};

// Duplication-probability override for both directions of the a-b link.
struct LinkDupOverride {
  NodeId a = graph::kNoNode;
  NodeId b = graph::kNoNode;
  double prob = 0.0;
};

// Targeted corruption: every message delivered on the from->to direction
// during rounds [first_round, last_round] (inclusive) has one word
// XOR-flipped, regardless of the probabilistic rate.
struct CorruptFault {
  NodeId from = graph::kNoNode;
  NodeId to = graph::kNoNode;
  std::uint64_t first_round = 0;
  std::uint64_t last_round = 0;
};

// Stalls the from->to direction: zero words move in rounds
// [first_round, last_round] (inclusive).
struct StallFault {
  NodeId from = graph::kNoNode;
  NodeId to = graph::kNoNode;
  std::uint64_t first_round = 0;
  std::uint64_t last_round = 0;
};

// Crash-stop: `node` stops sending, receiving, and stepping at `round`
// (round 0 = the node never participates at all).
struct CrashFault {
  NodeId node = graph::kNoNode;
  std::uint64_t round = 0;
};

// Crash-recovery: a node crash-stopped at an earlier round rejoins at
// `round` with wiped volatile state (the engine re-initializes it through
// Protocol::on_restart). Must name a node with a CrashFault at a strictly
// earlier round; at most one recovery per node.
struct RecoverFault {
  NodeId node = graph::kNoNode;
  std::uint64_t round = 0;
};

struct FaultPlan {
  // Per-message loss probability applied to every link direction.
  double drop_prob = 0.0;
  std::vector<LinkDropOverride> drop_overrides;
  // Per-word corruption probability applied to every delivered message.
  double corrupt_prob = 0.0;
  std::vector<LinkCorruptOverride> corrupt_overrides;
  std::vector<CorruptFault> corrupt_windows;
  // Per-message duplication probability applied to every delivery.
  double dup_prob = 0.0;
  std::vector<LinkDupOverride> dup_overrides;
  std::vector<StallFault> stalls;
  std::vector<CrashFault> crashes;
  std::vector<RecoverFault> recovers;

  bool has_drops() const { return drop_prob > 0.0 || !drop_overrides.empty(); }
  bool has_corruption() const {
    return corrupt_prob > 0.0 || !corrupt_overrides.empty() ||
           !corrupt_windows.empty();
  }
  bool has_dups() const { return dup_prob > 0.0 || !dup_overrides.empty(); }
  bool any() const {
    return has_drops() || has_corruption() || has_dups() || !stalls.empty() ||
           !crashes.empty() || !recovers.empty();
  }
};

// Tuning for the ack/retransmit transport (reliable_link.h). Lives here so
// NetworkConfig can embed it without a header cycle.
struct ReliableConfig {
  // Rounds to wait for a cumulative ack before the first retransmission.
  std::uint64_t base_timeout_rounds = 8;
  // Exponential backoff cap for the retransmission timeout.
  std::uint64_t max_timeout_rounds = 512;
  // Consecutive timeouts before a link is declared dead and its outstanding
  // traffic abandoned (keeps runs with crash-stopped peers finite).
  int max_retries = 24;
};

// One run's materialized fault schedule. The Runner constructs an injector
// per run (when the plan is non-empty), binds it to the network's link
// directions, and consults it from transmit_step(). Drop and corruption
// decisions consume the injector's private RNG stream in deterministic
// engine order, so the whole schedule is a pure function of (master_seed,
// run_counter, plan).
class FaultInjector {
 public:
  // `dir_endpoints[i]` is the (from, to) pair of link direction i.
  FaultInjector(const FaultPlan& plan, support::Rng rng, int n,
                std::span<const std::pair<NodeId, NodeId>> dir_endpoints);

  // Decides the fate of one fully transmitted message (consumes randomness
  // only on links with a positive drop probability).
  bool drop_message(int dir_idx);

  // Whether the message about to be delivered on `dir_idx` is delivered a
  // second time (consumes randomness only on links with a positive
  // duplication probability).
  bool duplicate_message(int dir_idx);

  // Flips words of a message about to be delivered on `dir_idx` during
  // `round` (probabilistic rate plus any active CorruptFault window);
  // returns the number of corrupted words. Consumes randomness only on
  // directions with a positive corruption probability or a window.
  std::uint32_t corrupt_message(int dir_idx, std::uint64_t round, Message& msg);

  // Whether direction `dir_idx` is stalled during `round`.
  bool stalled(int dir_idx, std::uint64_t round) const;

  // Crash faults, ordered by round (one per node; earliest round wins).
  std::span<const CrashFault> crashes() const { return crashes_; }

  // Recovery faults, ordered by round (validated: each names a node with an
  // earlier crash; at most one per node).
  std::span<const RecoverFault> recoveries() const { return recoveries_; }

 private:
  support::Rng rng_;
  std::vector<double> drop_prob_;     // per direction
  std::vector<double> corrupt_prob_;  // per direction
  std::vector<double> dup_prob_;      // per direction
  // Per direction: stall / corruption-window intervals (few per plan;
  // linear scan).
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> stalls_;
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> windows_;
  bool any_corruption_ = false;
  std::vector<CrashFault> crashes_;
  std::vector<RecoverFault> recoveries_;
};

}  // namespace mwc::congest
