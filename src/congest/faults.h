// Deterministic fault injection for the CONGEST engine.
//
// The paper's model (Section 1.1) assumes perfectly reliable synchronous
// links. To study the algorithms' behaviour off that happy path - and to
// exercise the reliable transport of reliable_link.h - a FaultPlan attached
// to NetworkConfig describes an adversary:
//
//   * message drops:  every fully transmitted message is lost with a
//     per-link probability (a global rate plus per-link overrides);
//   * link stalls:    a link direction moves zero words during a round
//     interval (the queue keeps its contents, time keeps passing);
//   * crash-stops:    a node falls permanently silent at a given round -
//     it is never stepped again, its queued and in-flight outbound
//     messages vanish, and inbound deliveries to it are discarded.
//
// Every run materializes its fault schedule from a FaultInjector seeded by
// the run's RNG stream, which the Network forks from (master_seed,
// run_counter). The same seed therefore reproduces the identical schedule -
// fuzz failures replay exactly.
//
// Faults never abort the run: the engine reports what happened through
// RunResult / RunStats (see protocol.h) and the Trace layer.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace mwc::congest {

using graph::NodeId;

// Drop-probability override for both directions of the a-b link.
struct LinkDropOverride {
  NodeId a = graph::kNoNode;
  NodeId b = graph::kNoNode;
  double prob = 0.0;
};

// Stalls the from->to direction: zero words move in rounds
// [first_round, last_round] (inclusive).
struct StallFault {
  NodeId from = graph::kNoNode;
  NodeId to = graph::kNoNode;
  std::uint64_t first_round = 0;
  std::uint64_t last_round = 0;
};

// Crash-stop: `node` stops sending, receiving, and stepping at `round`
// (round 0 = the node never participates at all).
struct CrashFault {
  NodeId node = graph::kNoNode;
  std::uint64_t round = 0;
};

struct FaultPlan {
  // Per-message loss probability applied to every link direction.
  double drop_prob = 0.0;
  std::vector<LinkDropOverride> drop_overrides;
  std::vector<StallFault> stalls;
  std::vector<CrashFault> crashes;

  bool has_drops() const { return drop_prob > 0.0 || !drop_overrides.empty(); }
  bool any() const {
    return has_drops() || !stalls.empty() || !crashes.empty();
  }
};

// Tuning for the ack/retransmit transport (reliable_link.h). Lives here so
// NetworkConfig can embed it without a header cycle.
struct ReliableConfig {
  // Rounds to wait for a cumulative ack before the first retransmission.
  std::uint64_t base_timeout_rounds = 8;
  // Exponential backoff cap for the retransmission timeout.
  std::uint64_t max_timeout_rounds = 512;
  // Consecutive timeouts before a link is declared dead and its outstanding
  // traffic abandoned (keeps runs with crash-stopped peers finite).
  int max_retries = 24;
};

// One run's materialized fault schedule. The Runner constructs an injector
// per run (when the plan is non-empty), binds it to the network's link
// directions, and consults it from transmit_step(). Drop decisions consume
// the injector's private RNG stream in deterministic engine order, so the
// whole schedule is a pure function of (master_seed, run_counter, plan).
class FaultInjector {
 public:
  // `dir_endpoints[i]` is the (from, to) pair of link direction i.
  FaultInjector(const FaultPlan& plan, support::Rng rng, int n,
                std::span<const std::pair<NodeId, NodeId>> dir_endpoints);

  // Decides the fate of one fully transmitted message (consumes randomness
  // only on links with a positive drop probability).
  bool drop_message(int dir_idx);

  // Whether direction `dir_idx` is stalled during `round`.
  bool stalled(int dir_idx, std::uint64_t round) const;

  // Crash faults, ordered by round (one per node; earliest round wins).
  std::span<const CrashFault> crashes() const { return crashes_; }

 private:
  support::Rng rng_;
  std::vector<double> drop_prob_;  // per direction
  // Per direction: stall intervals (few per plan; linear scan).
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> stalls_;
  std::vector<CrashFault> crashes_;
};

}  // namespace mwc::congest
