// The frontier settle path's compact per-direction queue.
//
// Profiling the multi-BFS hot loop (bench_engine A5a) puts ~85% of wall
// clock in the transmit/queue machinery, and nearly all of that traffic is
// single-word messages: a QueuedMsg is ~104 bytes (a Message is an 88-byte
// inline-buffer object), so every heap sift hauls a cache line and a half
// per element. FrontierQueue stores a 32-byte POD per queued message
// instead: single-word payloads (the overwhelmingly common case) ride in
// the entry itself; longer messages park their Message in a side pool owned
// by the Runner and the entry carries the slot index.
//
// Determinism: ordering is the same strict (priority, enqueue-sequence)
// lexicographic min-order as DirQueue (dir_queue.h). Sequence numbers are
// globally unique per run, so the comparison is a total order and the pop
// sequence is identical to the legacy queue's no matter how the heap is
// laid out - the property the A/B byte-identity suite
// (tests/frontier_engine_test.cpp) pins down.
//
// Sifts move the hole, not the elements: each step is one 32-byte copy
// instead of a three-copy swap. On top of the heap sits a one-entry inline
// slot: the steady-state queue depth on the BFS sweeps is ~1 (one word per
// active direction per round), so the common push/pop cycle runs entirely
// inside the DirectionState's own cache lines and never chases the heap
// vector's (cold, per-direction) buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/message.h"

namespace mwc::congest {

// Entry slot value meaning "payload is in `head`, no spilled Message".
inline constexpr std::uint32_t kNoSpill = ~std::uint32_t{0};

struct FqEntry {
  std::int64_t priority = 0;
  std::uint64_t seq = 0;
  Word head = 0;                  // the payload when size == 1
  std::uint32_t size = 0;         // message length in words
  std::uint32_t spill = kNoSpill; // Runner spill-pool slot when size > 1
};
static_assert(sizeof(FqEntry) == 32, "FqEntry is the hot-path currency");

// The hot half of a direction's frontier queue: an inline depth-1 slot plus
// the total entry count. The Runner embeds one FqSlot per direction in its
// cache-line-sized hot record; the overflow heap (a vector per direction)
// lives in a separate cold array that the steady-state push/pop cycle -
// queue depth ~1 on the BFS sweeps - never reads.
struct FqSlot {
  FqEntry one;               // inline fast slot (valid iff has_one)
  std::uint32_t count = 0;   // slot + heap entries
  bool has_one = false;
};

inline bool fq_before(const FqEntry& a, const FqEntry& b) {
  if (a.priority != b.priority) return a.priority < b.priority;
  return a.seq < b.seq;
}

inline bool fq_empty(const FqSlot& s) { return s.count == 0; }

inline void fq_push(FqSlot& s, std::vector<FqEntry>& heap, const FqEntry& e) {
  ++s.count;
  // Fast path: an idle direction takes its first (and usually only) entry
  // into the inline slot - no heap, no vector buffer touched.
  if (!s.has_one && s.count == 1) {
    s.one = e;
    s.has_one = true;
    return;
  }
  heap.push_back(e);
  std::size_t i = heap.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!fq_before(e, heap[parent])) break;
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = e;
}

// Removes and returns the (priority, seq)-minimal entry. The slot does not
// jump the line: it is popped only while it precedes the heap's minimum, so
// the pop sequence is the same strict total order whether an entry ever sat
// in the slot or not. The depth-1 case (count == 1 with the slot filled -
// the steady state) decides without reading the heap vector at all.
inline FqEntry fq_take_top(FqSlot& s, std::vector<FqEntry>& heap) {
  --s.count;
  if (s.has_one && (s.count == 0 || fq_before(s.one, heap.front()))) {
    s.has_one = false;
    return s.one;
  }
  const FqEntry top = heap.front();
  const FqEntry last = heap.back();
  heap.pop_back();
  const std::size_t n = heap.size();
  if (n > 0) {
    std::size_t i = 0;
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      const std::size_t right = child + 1;
      if (right < n && fq_before(heap[right], heap[child])) child = right;
      if (!fq_before(heap[child], last)) break;
      heap[i] = heap[child];
      i = child;
    }
    heap[i] = last;
  }
  return top;
}

// Visits every queued entry, in storage (not pop) order - for bulk
// accounting such as tallying the words a crash-stop destroys.
template <typename Fn>
void fq_for_each(const FqSlot& s, const std::vector<FqEntry>& heap, Fn&& fn) {
  if (s.has_one) fn(s.one);
  for (const FqEntry& e : heap) fn(e);
}

inline void fq_clear(FqSlot& s, std::vector<FqEntry>& heap) {
  s.count = 0;
  s.has_one = false;
  heap.clear();
}

// Side-channel occupancy/direction statistics of the frontier settle path,
// accumulated by the Runner and parked on the Network per metrics phase.
// Deliberately NOT part of RunStats, metrics snapshots, or traces: both
// settle paths must produce byte-identical observables, and most of these
// counters exist only on one of them (bench_engine A5c reads them; an
// attached CongestionLedger surfaces the two high-water marks inside the
// opt-in `congestion` metrics section with path-stable key names).
struct FrontierStats {
  std::uint64_t scheduled_rounds = 0;  // main-loop rounds that built a frontier
  std::uint64_t dense_rounds = 0;      // bitmap scan (bottom-up analogue)
  std::uint64_t sparse_rounds = 0;     // sorted queue (top-down analogue)
  std::uint64_t direction_switches = 0;
  std::uint64_t frontier_nodes = 0;    // sum of per-round invocation counts
  std::uint64_t active_dirs = 0;       // sum of per-round active directions
  std::uint64_t fast_words = 0;        // words settled as in-entry single words
  std::uint64_t multi_words = 0;       // words settled through spilled Messages
  // High-water marks (max-folded, not summed). spill_peak_slots is kept by
  // both settle paths (each spills multi-word Messages to the shared pool,
  // though at different times, so the values are path-dependent);
  // overflow_peak_entries counts the deepest per-direction FqEntry heap and
  // is 0 under kLegacy.
  std::uint64_t spill_peak_slots = 0;
  std::uint64_t overflow_peak_entries = 0;

  void accumulate(const FrontierStats& o) {
    scheduled_rounds += o.scheduled_rounds;
    dense_rounds += o.dense_rounds;
    sparse_rounds += o.sparse_rounds;
    direction_switches += o.direction_switches;
    frontier_nodes += o.frontier_nodes;
    active_dirs += o.active_dirs;
    fast_words += o.fast_words;
    multi_words += o.multi_words;
    spill_peak_slots = spill_peak_slots > o.spill_peak_slots
                           ? spill_peak_slots
                           : o.spill_peak_slots;
    overflow_peak_entries = overflow_peak_entries > o.overflow_peak_entries
                                ? overflow_peak_entries
                                : o.overflow_peak_entries;
  }
};

}  // namespace mwc::congest
