#include "congest/governor.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>

namespace mwc::congest {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kRoundBudget: return "round_budget";
    case StopReason::kWordBudget: return "word_budget";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kMemoryBudget: return "memory_budget";
    case StopReason::kNoProgress: return "no_progress";
    case StopReason::kStalled: return "stalled";
    case StopReason::kCancelled: return "cancelled";
  }
  return "unknown";
}

// ---- CancelToken -----------------------------------------------------------

namespace {
// Mailbox for bind_process_signals: the handler does nothing but store the
// signal number. Tokens observe the mailbox, never the other way around, so
// any number of them can be bound at once and a destroyed token leaves
// nothing dangling. A lock-free atomic (guaranteed for int on the supported
// targets) is both async-signal-safe and safe to read from other threads —
// a signal raised on one thread is commonly observed by another.
std::atomic<int> g_cancel_signal{0};

extern "C" void cancel_signal_handler(int sig) {
  g_cancel_signal.store(sig, std::memory_order_relaxed);
}
}  // namespace

int CancelToken::pending_signal() {
  return g_cancel_signal.load(std::memory_order_relaxed);
}

int CancelToken::take_process_signal() {
  return g_cancel_signal.exchange(0, std::memory_order_relaxed);
}

void CancelToken::request(std::string reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (reason_.empty()) reason_ = std::move(reason);
  }
  flag_.store(true, std::memory_order_release);
}

bool CancelToken::cancelled() const {
  if (flag_.load(std::memory_order_acquire)) return true;
  if (signal_bound_.load(std::memory_order_acquire) && pending_signal() != 0) {
    return true;
  }
  const CancelToken* parent = parent_.load(std::memory_order_acquire);
  return parent != nullptr && parent->cancelled();
}

std::string CancelToken::reason() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!reason_.empty()) return reason_;
  }
  if (signal_bound_.load(std::memory_order_acquire) && pending_signal() != 0) {
    return "signal " + std::to_string(pending_signal()) + " received";
  }
  const CancelToken* parent = parent_.load(std::memory_order_acquire);
  if (parent != nullptr) return parent->reason();
  return "";
}

void CancelToken::bind_process_signals() {
  signal_bound_.store(true, std::memory_order_release);
  std::signal(SIGINT, cancel_signal_handler);
  std::signal(SIGTERM, cancel_signal_handler);
}

// ---- Governor --------------------------------------------------------------

namespace {
// Clock and RSS reads are orders of magnitude slower than a round of a tiny
// protocol; poll the non-deterministic budgets on a cadence instead of
// every boundary. Powers of two keep the modulo a mask.
constexpr std::uint64_t kWallPollMask = 63;    // every 64 boundaries
constexpr std::uint64_t kRssPollMask = 1023;   // every 1024 boundaries
}  // namespace

Governor::Governor(Budget budget, WatchdogConfig watchdog)
    : budget_(budget), watchdog_(watchdog) {
  arm();
}

Governor::~Governor() {
  if (watchdog_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_quit_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_thread_.join();
  }
}

void Governor::arm() { epoch_ = std::chrono::steady_clock::now(); }

void Governor::start_watchdog() {
  if (watchdog_.stall_seconds <= 0.0 || watchdog_thread_.joinable()) return;
  watchdog_thread_ = std::thread([this] { watchdog_loop(); });
}

void Governor::watchdog_loop() {
  std::uint64_t last_beat = heartbeat_.load(std::memory_order_acquire);
  auto last_move = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  const auto poll = std::chrono::duration<double>(
      watchdog_.poll_seconds > 0.0 ? watchdog_.poll_seconds : 0.25);
  while (!watchdog_cv_.wait_for(lock, poll, [this] { return watchdog_quit_; })) {
    const std::uint64_t beat = heartbeat_.load(std::memory_order_acquire);
    const auto now = std::chrono::steady_clock::now();
    if (beat != last_beat) {
      last_beat = beat;
      last_move = now;
      continue;
    }
    const double idle = std::chrono::duration<double>(now - last_move).count();
    if (idle < watchdog_.stall_seconds) continue;
    // The round loop stopped reaching boundaries. Flag it (picked up at the
    // next boundary, if one ever comes), trip the cancel token so layered
    // pollers also notice, and leave a diagnostic on stderr - if the engine
    // is truly wedged inside a callback, this line is the only evidence.
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "no round boundary for %.1fs (last heartbeat %llu)", idle,
                  static_cast<unsigned long long>(beat));
    stalled_detail_ = buf;
    stalled_.store(true, std::memory_order_release);
    if (token_ != nullptr) {
      token_->request(std::string("watchdog: ") + buf);
    }
    std::fprintf(stderr, "mwc governor watchdog: %s\n", buf);
    return;  // one diagnosis is enough; the latch does the rest
  }
}

StopReason Governor::trip(StopReason reason, std::string detail) {
  stop_.reason = reason;
  stop_.detail = std::move(detail);
  return reason;
}

StopReason Governor::on_round(std::uint64_t total_rounds,
                              std::uint64_t total_words) {
  if (stop_.reason != StopReason::kNone) return stop_.reason;
  if (die_at_round != 0 && total_rounds >= die_at_round) {
    // Deterministic process death for checkpoint/resume tests: a real
    // SIGKILL, so no destructor, flush, or handler softens it.
    std::raise(SIGKILL);
  }
  heartbeat_.fetch_add(1, std::memory_order_release);
  ++calls_;

  // Deterministic checks first: when a deterministic and a wall-clock
  // budget would both fire, the reproducible one wins the latch.
  if (budget_.max_rounds != 0 && total_rounds > budget_.max_rounds) {
    return trip(StopReason::kRoundBudget,
                "round budget " + std::to_string(budget_.max_rounds) +
                    " exhausted at engine round " +
                    std::to_string(total_rounds));
  }
  if (budget_.max_words != 0 && total_words > budget_.max_words) {
    return trip(StopReason::kWordBudget,
                "word budget " + std::to_string(budget_.max_words) +
                    " exhausted (" + std::to_string(total_words) +
                    " words settled)");
  }
  if (watchdog_.no_progress_rounds != 0) {
    if (!progress_seen_ || total_words != last_words_) {
      progress_seen_ = true;
      last_words_ = total_words;
      last_progress_round_ = total_rounds;
    } else if (total_rounds - last_progress_round_ >=
               watchdog_.no_progress_rounds) {
      return trip(StopReason::kNoProgress,
                  "no settled words for " +
                      std::to_string(total_rounds - last_progress_round_) +
                      " rounds (limit " +
                      std::to_string(watchdog_.no_progress_rounds) + ")");
    }
  }

  if (token_ != nullptr && token_->cancelled()) {
    return trip(StopReason::kCancelled, token_->reason());
  }
  if (stalled_.load(std::memory_order_acquire)) {
    return trip(StopReason::kStalled, stalled_detail_);
  }
  if (budget_.max_wall_seconds > 0.0 && (calls_ & kWallPollMask) == 0) {
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - epoch_)
                               .count();
    if (elapsed > budget_.max_wall_seconds) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "deadline of %.3fs passed (%.3fs elapsed)",
                    budget_.max_wall_seconds, elapsed);
      return trip(StopReason::kDeadline, buf);
    }
  }
  if (budget_.max_rss_bytes != 0 && (calls_ & kRssPollMask) == 0) {
    const std::uint64_t rss = current_rss_bytes();
    if (rss > budget_.max_rss_bytes) {
      return trip(StopReason::kMemoryBudget,
                  "resident memory " + std::to_string(rss) +
                      " bytes exceeds budget " +
                      std::to_string(budget_.max_rss_bytes));
    }
  }
  return StopReason::kNone;
}

std::uint64_t current_rss_bytes() {
#ifdef __linux__
  // /proc/self/statm: "size resident shared ..." in pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0, resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::uint64_t>(resident) * 4096;
#else
  return 0;
#endif
}

}  // namespace mwc::congest
