// Resource governance for the CONGEST engine: budgets, deadlines,
// cancellation, and watchdogs.
//
// A Governor attached to a Network (like Trace and Metrics: not owned,
// zero-cost when detached) is consulted by the Runner at every round
// boundary. When a budget is exhausted, a deadline passes, a CancelToken is
// tripped, or a watchdog detects a wedged phase, the current run stops
// cooperatively and reports RunOutcome::kBudgetExhausted or kCancelled -
// the same "outcome is data, never abort" contract as faults and the round
// limit (see runner.h). Once tripped, the Governor stays latched: every
// later run on the same network returns immediately with the same outcome,
// so a multi-phase solve winds down instead of starting fresh phases. The
// salvage machinery of cycle::solve() then turns whatever was computed into
// an anytime result with explicit bounds (see mwc/api.h).
//
// Determinism: the round and word budgets and the no-progress watchdog
// depend only on the engine's deterministic counters, so a budget-stopped
// execution is bit-identical across thread counts and reproducible from the
// seed. The wall-clock deadline, the memory budget, the stall watchdog
// thread, and cancellation are inherently non-deterministic; they exist for
// operational robustness, not reproducibility (docs/governance.md).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace mwc::congest {

// Cooperative resource budgets, all enforced at round boundaries. 0 (or 0.0)
// disables a dimension. Rounds and words count engine totals across every
// run of the governed solve (Network::stats()), not per run - the per-run
// safety valve remains NetworkConfig::max_rounds_per_run.
struct Budget {
  std::uint64_t max_rounds = 0;    // deterministic
  std::uint64_t max_words = 0;     // deterministic
  double max_wall_seconds = 0.0;   // non-deterministic (measured from arm())
  std::uint64_t max_rss_bytes = 0; // non-deterministic (/proc/self/statm)

  bool any() const {
    return max_rounds != 0 || max_words != 0 || max_wall_seconds > 0.0 ||
           max_rss_bytes != 0;
  }
};

// Watchdog tuning. The no-progress detector is cooperative and
// deterministic: it counts consecutive round boundaries at which the
// engine's total settled-word counter did not move (stall faults, dead
// protocols, and ARQ livelocks all look like this). The stall watchdog is a
// real thread that notices when the round loop itself stops reaching
// boundaries (a wedged callback) - it can only flag the condition and trip
// the cancel path, never unwind the stack mid-round.
struct WatchdogConfig {
  std::uint64_t no_progress_rounds = 0;  // 0 disables (deterministic)
  double stall_seconds = 0.0;            // 0 disables the watchdog thread
  double poll_seconds = 0.25;            // watchdog thread poll cadence

  bool any() const { return no_progress_rounds != 0 || stall_seconds > 0.0; }
};

// Why a governed execution stopped. kNone means "still running".
enum class StopReason : std::uint8_t {
  kNone = 0,
  kRoundBudget,    // Budget::max_rounds exhausted
  kWordBudget,     // Budget::max_words exhausted
  kDeadline,       // Budget::max_wall_seconds passed
  kMemoryBudget,   // Budget::max_rss_bytes exceeded
  kNoProgress,     // no settled words for WatchdogConfig::no_progress_rounds
  kStalled,        // watchdog thread: no round boundary for stall_seconds
  kCancelled,      // CancelToken tripped (signal or caller)
};

const char* to_string(StopReason reason);

struct StopInfo {
  StopReason reason = StopReason::kNone;
  std::string detail;  // one-line diagnostic, e.g. "round budget 100 ..."
};

// A set-once cancellation flag safe to trip from another thread or - after
// bind_process_signals() - from a SIGINT/SIGTERM handler. The governed
// engine polls it at round boundaries; nothing is interrupted mid-round.
//
// Fan-out: any number of tokens may be signal-bound at once (the handler
// only stores the signal number in a process-wide mailbox; every bound
// token observes it), and a token may additionally observe a parent via
// link_parent() - a service cancelling its own token thereby cancels every
// in-flight per-request token linked to it. Re-entrancy: a delivered
// signal latches the mailbox until take_process_signal() clears it, so a
// server that drains on the first SIGINT/SIGTERM can acknowledge it and
// keep serving with fresh tokens instead of every later solve being
// stillborn.
class CancelToken {
 public:
  // Trips the token. First caller's reason wins; later calls are no-ops.
  void request(std::string reason);
  bool cancelled() const;
  // The reason passed to request(), the parent's reason, or "signal N
  // received" for a bound process signal. Empty while not cancelled.
  std::string reason() const;

  // Routes SIGINT and SIGTERM into this token (the handler only sets a
  // process-wide flag; installing it is idempotent). Any number of tokens
  // may be bound concurrently - each observes the same mailbox, which is
  // the signal fan-out the solve service relies on.
  void bind_process_signals();
  // Stops observing the process-signal mailbox (individual trips via
  // request() are unaffected).
  void unbind_process_signals() { signal_bound_ = false; }

  // Fan-out link: cancelled()/reason() also report the parent's state.
  // Not owned - the parent must outlive this token (the service owns both).
  void link_parent(const CancelToken* parent) { parent_ = parent; }

  // Returns the latched process signal (0 when none) and clears the
  // mailbox, acknowledging it: bound tokens stop reporting cancelled
  // unless individually tripped. The drain-then-resume hook for servers.
  static int take_process_signal();
  // Reads the mailbox without clearing it.
  static int pending_signal();

 private:
  std::atomic<bool> flag_{false};
  std::atomic<bool> signal_bound_{false};
  std::atomic<const CancelToken*> parent_{nullptr};
  mutable std::mutex mu_;
  std::string reason_;
};

class Governor {
 public:
  explicit Governor(Budget budget = {}, WatchdogConfig watchdog = {});
  ~Governor();
  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  const Budget& budget() const { return budget_; }

  // Optional cancellation source (not owned; may be null).
  void set_cancel_token(CancelToken* token) { token_ = token; }

  // Restarts the wall-clock epoch for max_wall_seconds (the constructor
  // arms it too; call again when construction and solve start are far
  // apart).
  void arm();

  // Spawns the stall-watchdog thread when stall_seconds > 0 (no-op
  // otherwise). Joined by the destructor.
  void start_watchdog();

  // Round-boundary check, called by the Runner with the network's
  // accumulated totals (rounds including the in-flight run, settled words).
  // Returns kNone to continue or the reason to stop; once a stop is
  // returned the Governor is latched and every later call returns the same
  // reason immediately.
  StopReason on_round(std::uint64_t total_rounds, std::uint64_t total_words);

  bool stopped() const { return stop_.reason != StopReason::kNone; }
  StopReason latched() const { return stop_.reason; }
  const StopInfo& stop() const { return stop_; }

  // Test/CI hook: raise(SIGKILL) when the engine reaches this total round -
  // a deterministic stand-in for "the process died mid-solve". 0 disables.
  std::uint64_t die_at_round = 0;

 private:
  StopReason trip(StopReason reason, std::string detail);
  void watchdog_loop();

  Budget budget_;
  WatchdogConfig watchdog_;
  CancelToken* token_ = nullptr;
  StopInfo stop_;

  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t calls_ = 0;
  // No-progress tracking (deterministic counters only).
  bool progress_seen_ = false;
  std::uint64_t last_words_ = 0;
  std::uint64_t last_progress_round_ = 0;

  // Stall-watchdog thread machinery. heartbeat_ ticks on every on_round;
  // the thread trips stalled_ when it stops moving for stall_seconds.
  std::atomic<std::uint64_t> heartbeat_{0};
  std::atomic<bool> stalled_{false};
  std::string stalled_detail_;  // written by the thread before stalled_
  std::thread watchdog_thread_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_quit_ = false;
};

// Current resident set size of this process in bytes; 0 when the platform
// offers no cheap way to read it (the memory budget is then inert).
std::uint64_t current_rss_bytes();

}  // namespace mwc::congest
