// CONGEST messages.
//
// The model allows Theta(log n) bits per edge per round; we represent that
// quantum as one 64-bit Word (enough for an id plus a poly(n) distance, i.e.
// Theta(log n + log W) bits - the bandwidth the paper assumes for weighted
// graphs). A Message is a sequence of Words; transmitting a k-word message
// over a link occupies that link direction for ceil(k / B) rounds, which is
// exactly how the paper charges multi-word messages (e.g. the restricted-BFS
// message Q(v) of Algorithm 3 "can be sent in O(log n) rounds").
//
// Message keeps small payloads inline to avoid per-message heap traffic in
// simulations that move tens of millions of messages.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "support/check.h"

namespace mwc::congest {

using Word = std::uint64_t;

class Message {
 public:
  Message() = default;
  Message(std::initializer_list<Word> ws) {
    for (Word w : ws) push(w);
  }

  void push(Word w) {
    if (size_ < kInline) {
      inline_[size_] = w;
    } else {
      if (size_ == kInline) heap_.assign(inline_, inline_ + kInline);
      heap_.push_back(w);
    }
    ++size_;
  }

  std::uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Word operator[](std::uint32_t i) const {
    MWC_DCHECK(i < size_);
    return size_ <= kInline ? inline_[i] : heap_[i];
  }

 private:
  static constexpr std::uint32_t kInline = 6;
  Word inline_[kInline] = {};
  std::vector<Word> heap_;
  std::uint32_t size_ = 0;
};

// A message delivered to a node, tagged with the neighbor it came from.
struct Delivery {
  std::int32_t from = -1;  // neighbor NodeId
  Message msg;
};

// --- packing helpers --------------------------------------------------
//
// One Word models Theta(log n + log W) bits, so a small tag plus a value, or
// a node id plus a distance, are one message word - exactly how the paper
// counts "a message" (e.g. a BFS announcement <origin, distance>).

// 3-bit tag + 61-bit value (large enough for kInfWeight = 2^60).
inline Word pack_tag(Word tag, Word value) {
  MWC_DCHECK(tag < 8 && value < (Word{1} << 61));
  return (tag << 61) | value;
}
inline Word tag_of(Word w) { return w >> 61; }
inline Word value_of(Word w) { return w & ((Word{1} << 61) - 1); }

// 24-bit id + 40-bit value (ids up to 16M nodes, distances < 2^40).
inline Word pack_id_value(Word id, Word value) {
  MWC_DCHECK(id < (Word{1} << 24) && value < (Word{1} << 40));
  return (id << 40) | value;
}
inline Word id_of(Word w) { return w >> 40; }
inline Word id_value_of(Word w) { return w & ((Word{1} << 40) - 1); }

}  // namespace mwc::congest
