// CONGEST messages.
//
// The model allows Theta(log n) bits per edge per round; we represent that
// quantum as one 64-bit Word (enough for an id plus a poly(n) distance, i.e.
// Theta(log n + log W) bits - the bandwidth the paper assumes for weighted
// graphs). A Message is a sequence of Words; transmitting a k-word message
// over a link occupies that link direction for ceil(k / B) rounds, which is
// exactly how the paper charges multi-word messages (e.g. the restricted-BFS
// message Q(v) of Algorithm 3 "can be sent in O(log n) rounds").
//
// Message keeps small payloads inline (the overwhelmingly common case is a
// single packed word) and spills longer ones into a Word block recycled
// through the WordPool freelists of arena.h, so simulations that move tens
// of millions of messages do near-zero steady-state heap traffic.
#pragma once

#include <cstdint>
#include <cstring>
#include <initializer_list>

#include "congest/arena.h"
#include "support/check.h"

namespace mwc::congest {

class Message {
 public:
  Message() = default;
  Message(std::initializer_list<Word> ws) {
    for (Word w : ws) push(w);
  }

  Message(const Message& other) { copy_from(other); }
  Message(Message&& other) noexcept
      : spill_(other.spill_), cap_(other.cap_), size_(other.size_) {
    std::memcpy(inline_, other.inline_, sizeof(inline_));
    other.spill_ = nullptr;
    other.cap_ = 0;
    other.size_ = 0;
  }
  Message& operator=(const Message& other) {
    if (this != &other) {
      release();
      copy_from(other);
    }
    return *this;
  }
  Message& operator=(Message&& other) noexcept {
    if (this != &other) {
      release();
      std::memcpy(inline_, other.inline_, sizeof(inline_));
      spill_ = other.spill_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.spill_ = nullptr;
      other.cap_ = 0;
      other.size_ = 0;
    }
    return *this;
  }
  ~Message() { release(); }

  void push(Word w) {
    if (spill_ == nullptr) {
      if (size_ < kInline) {
        inline_[size_++] = w;
        return;
      }
      grow(WordPool::round_cap(kInline + 1));
    } else if (size_ == cap_) {
      grow(cap_ * 2);
    }
    spill_[size_++] = w;
  }

  // Pre-grows the spill buffer for a message of `total` words, so builders
  // that know their length (the restricted-BFS Q(v) frames) spill once
  // instead of doubling through intermediate pool blocks.
  void reserve(std::uint32_t total) {
    if (total <= kInline || (spill_ != nullptr && cap_ >= total)) return;
    grow(WordPool::round_cap(total));
  }

  std::uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Word operator[](std::uint32_t i) const {
    MWC_DCHECK(i < size_);
    const Word* base = spill_ == nullptr ? inline_ : spill_;
    return base[i];
  }

  // Overwrites word `i` in place. Used by the engine's corruption injector
  // (faults.h) and by transports that patch a checksum into a built frame.
  void set(std::uint32_t i, Word w) {
    MWC_DCHECK(i < size_);
    Word* base = spill_ == nullptr ? inline_ : spill_;
    base[i] = w;
  }

 private:
  static constexpr std::uint32_t kInline = 6;

  // Moves all words (inline included) into a pool block of capacity
  // `new_cap`; after this the spill buffer is the single source of truth.
  void grow(std::uint32_t new_cap) {
    Word* block = WordPool::local().alloc(new_cap);
    std::memcpy(block, spill_ == nullptr ? inline_ : spill_,
                std::size_t{size_} * sizeof(Word));
    release();
    spill_ = block;
    cap_ = new_cap;
  }

  void release() {
    if (spill_ != nullptr) {
      WordPool::local().free_block(spill_, cap_);
      spill_ = nullptr;
      cap_ = 0;
    }
  }

  void copy_from(const Message& other) {
    size_ = other.size_;
    if (other.spill_ == nullptr) {
      std::memcpy(inline_, other.inline_, sizeof(inline_));
      spill_ = nullptr;
      cap_ = 0;
    } else {
      cap_ = WordPool::round_cap(other.size_);
      spill_ = WordPool::local().alloc(cap_);
      std::memcpy(spill_, other.spill_, std::size_t{size_} * sizeof(Word));
    }
  }

  Word inline_[kInline] = {};
  Word* spill_ = nullptr;
  std::uint32_t cap_ = 0;
  std::uint32_t size_ = 0;
};

// A message delivered to a node, tagged with the neighbor it came from.
struct Delivery {
  std::int32_t from = -1;  // neighbor NodeId
  Message msg;
};

// --- packing helpers --------------------------------------------------
//
// One Word models Theta(log n + log W) bits, so a small tag plus a value, or
// a node id plus a distance, are one message word - exactly how the paper
// counts "a message" (e.g. a BFS announcement <origin, distance>).

// 3-bit tag + 61-bit value (large enough for kInfWeight = 2^60).
inline Word pack_tag(Word tag, Word value) {
  MWC_DCHECK(tag < 8 && value < (Word{1} << 61));
  return (tag << 61) | value;
}
inline Word tag_of(Word w) { return w >> 61; }
inline Word value_of(Word w) { return w & ((Word{1} << 61) - 1); }

// 24-bit id + 40-bit value (ids up to 16M nodes, distances < 2^40).
inline Word pack_id_value(Word id, Word value) {
  MWC_DCHECK(id < (Word{1} << 24) && value < (Word{1} << 40));
  return (id << 40) | value;
}
inline Word id_of(Word w) { return w >> 40; }
inline Word id_value_of(Word w) { return w & ((Word{1} << 40) - 1); }

}  // namespace mwc::congest
