#include "congest/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace mwc::congest {

namespace {

// Merge one phase record into another of the same scope: sums add, peaks
// keep the worst run (ties resolved toward the earlier record, so merge
// order - which is deterministic - decides deterministically).
void merge(PhaseMetrics& dst, const PhaseMetrics& src) {
  dst.runs += src.runs;
  dst.aborted_runs += src.aborted_runs;
  dst.rounds += src.rounds;
  dst.messages += src.messages;
  dst.words += src.words;
  dst.max_queue_words = std::max(dst.max_queue_words, src.max_queue_words);
  if (src.max_link_words > dst.max_link_words) {
    dst.max_link_words = src.max_link_words;
    dst.busiest_from = src.busiest_from;
    dst.busiest_to = src.busiest_to;
  }
  dst.cut_words += src.cut_words;
  dst.dropped_messages += src.dropped_messages;
  dst.dropped_words += src.dropped_words;
  dst.retransmitted_words += src.retransmitted_words;
  dst.stalled_rounds += src.stalled_rounds;
  dst.crashes += src.crashes;
  dst.recoveries += src.recoveries;
  dst.corrupted_words += src.corrupted_words;
  dst.checksum_rejects += src.checksum_rejects;
  dst.dead_links += src.dead_links;
}

PhaseMetrics from_profile(const RunProfile& p) {
  PhaseMetrics m;
  m.runs = 1;
  m.aborted_runs = p.outcome == RunOutcome::kCompleted ? 0 : 1;
  m.rounds = p.stats.rounds;
  m.messages = p.stats.messages;
  m.words = p.stats.words;
  m.max_queue_words = p.stats.max_queue_words;
  m.max_link_words = p.max_link_words;
  m.busiest_from = p.busiest_from;
  m.busiest_to = p.busiest_to;
  m.cut_words = p.cut_words;
  m.dropped_messages = p.stats.dropped_messages;
  m.dropped_words = p.stats.dropped_words;
  m.retransmitted_words = p.stats.retransmitted_words;
  m.stalled_rounds = p.stats.stalled_rounds;
  m.crashes = p.crashes;
  m.recoveries = p.stats.recoveries;
  m.corrupted_words = p.stats.corrupted_words;
  m.checksum_rejects = p.stats.checksum_rejects;
  m.dead_links = p.stats.dead_links;
  return m;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_u64(std::string& out, const char* key, std::uint64_t v,
                bool trailing_comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64 "%s", key, v,
                trailing_comma ? ", " : "");
  out += buf;
}

void append_phase(std::string& out, const PhaseMetrics& m) {
  out += "{\"phase\": ";
  append_quoted(out, m.path);
  out += ", ";
  append_u64(out, "runs", m.runs);
  append_u64(out, "aborted_runs", m.aborted_runs);
  append_u64(out, "rounds", m.rounds);
  append_u64(out, "messages", m.messages);
  append_u64(out, "words", m.words);
  append_u64(out, "max_queue_words", m.max_queue_words);
  append_u64(out, "max_link_words", m.max_link_words);
  char link[96];
  std::snprintf(link, sizeof(link), "\"busiest_link\": [%d, %d], ",
                m.busiest_from, m.busiest_to);
  out += link;
  append_u64(out, "cut_words", m.cut_words);
  append_u64(out, "dropped_messages", m.dropped_messages);
  append_u64(out, "dropped_words", m.dropped_words);
  append_u64(out, "retransmitted_words", m.retransmitted_words);
  append_u64(out, "stalled_rounds", m.stalled_rounds);
  append_u64(out, "crashes", m.crashes);
  append_u64(out, "recoveries", m.recoveries);
  append_u64(out, "corrupted_words", m.corrupted_words);
  append_u64(out, "checksum_rejects", m.checksum_rejects);
  append_u64(out, "dead_links", m.dead_links, /*trailing_comma=*/false);
  out += "}";
}

}  // namespace

// ---- MetricsSnapshot -------------------------------------------------------

const PhaseMetrics* MetricsSnapshot::find(std::string_view path) const {
  for (const PhaseMetrics& p : phases) {
    if (p.path == path) return &p;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"total\": ";
  append_phase(out, total);
  out += ",\n  \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_phase(out, phases[i]);
  }
  out += "\n  ],\n  \"open_phases\": [";
  for (std::size_t i = 0; i < open_phases.size(); ++i) {
    if (i != 0) out += ", ";
    append_quoted(out, open_phases[i]);
  }
  out += "],\n  \"error\": ";
  append_quoted(out, error);
  if (congestion.observed) {
    out += ",\n  \"congestion\": ";
    congestion.append_json(out, "  ");
  }
  if (adherence.evaluated) {
    out += ",\n  \"adherence\": ";
    adherence.append_json(out, "  ");
  }
  out += "\n}\n";
  return out;
}

// ---- Metrics ---------------------------------------------------------------

std::uint64_t Metrics::open_phase(std::string_view name) {
  Frame frame;
  frame.name.assign(name);
  frame.token = next_token_++;
  stack_.push_back(std::move(frame));
  return stack_.back().token;
}

void Metrics::close_phase(std::uint64_t token) {
  if (!stack_.empty() && stack_.back().token == token) {
    stack_.pop_back();
    return;
  }
  // Misuse. Either the span was already closed (token not on the stack) or
  // an inner span is still open. Recover to a sane stack and surface it.
  for (std::size_t i = stack_.size(); i > 0; --i) {
    if (stack_[i - 1].token == token) {
      note_error("phase span '" + stack_[i - 1].name +
                 "' closed while inner span '" + stack_.back().name +
                 "' was still open");
      stack_.resize(i - 1);  // the abandoned inner spans are gone with it
      return;
    }
  }
  note_error("phase span closed twice (or never opened)");
}

std::string Metrics::current_path() const {
  std::string path;
  for (const Frame& f : stack_) {
    if (!path.empty()) path += '/';
    path += f.name;
  }
  return path;
}

void Metrics::note_error(const std::string& message) {
  if (error_.empty()) error_ = message;  // keep the first, it names the cause
}

PhaseMetrics& Metrics::phase_slot(const std::string& path) {
  auto it = index_.find(path);
  if (it != index_.end()) return phases_[it->second];
  index_.emplace(path, phases_.size());
  phases_.emplace_back();
  phases_.back().path = path;
  return phases_.back();
}

void Metrics::record_run(const RunProfile& profile) {
  const PhaseMetrics one = from_profile(profile);
  merge(total_, one);
  std::string path = current_path();
  if (path.empty()) path = "(unattributed)";
  merge(phase_slot(path), one);
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot snap;
  snap.total = total_;
  snap.total.path = "total";
  snap.phases = phases_;
  snap.error = error_;
  for (const Frame& f : stack_) snap.open_phases.push_back(f.name);
  return snap;
}

void Metrics::reset() {
  stack_.clear();
  phases_.clear();
  index_.clear();
  total_ = PhaseMetrics{};
  error_.clear();
}

void Metrics::absorb(const MetricsSnapshot& snap) {
  const std::string prefix = current_path();
  for (const PhaseMetrics& p : snap.phases) {
    const std::string path = prefix.empty() ? p.path : prefix + "/" + p.path;
    merge(phase_slot(path), p);
  }
  PhaseMetrics grand = snap.total;
  grand.path.clear();
  merge(total_, grand);
  if (!snap.error.empty()) note_error(snap.error);
}

}  // namespace mwc::congest
