// Per-phase metrics & profiling for the CONGEST engine.
//
// The paper's empirical claims are round- and bandwidth-shaped: Table 1 rows
// are round complexities, and the lower-bound constructions argue about words
// crossing a cut. A Metrics sink attached to a Network (like Trace: not
// owned, zero-cost when detached) records, for every protocol run, where
// those rounds and words went:
//
//   * rounds / messages / words of the run;
//   * congestion: the peak backlog of any single link direction
//     (max_queue_words) and the most words carried by any single direction
//     (max_link_words, with the endpoints of that busiest direction);
//   * cut_words crossing the Network's metered cut (lower-bound gadgets);
//   * fault accounting: drops, stalls, crash-stops, and the words the
//     reliable transport retransmitted.
//
// Runs are attributed to *phases*: host code brackets sections of an
// algorithm in RAII PhaseSpan annotations ("sample skeleton", "restricted
// BFS", ...). Spans nest; a run started while the stack is
// ["girth", "sample BFS"] and the multi-BFS primitive's own span is open
// lands in the phase path "girth/sample BFS/multi_bfs". Every algorithm
// family in this library annotates its sections, so an attached Metrics
// yields a per-phase round breakdown with no further caller effort.
//
// Determinism: all recording happens on the host thread - span open/close
// between runs, and one record_run call at the end of Runner::run(), after
// the engine's per-round effects were merged at the round barrier (see
// docs/simulator.md, "Execution model"). Snapshots are therefore
// bit-identical between threads=1 and threads=N, and MetricsSnapshot's
// to_json() is byte-identical.
//
// Misuse is surfaced, never UB: closing spans out of LIFO order records an
// error retrievable from Metrics::error() and the snapshot; spans still open
// when a snapshot is taken are listed in MetricsSnapshot::open_phases.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "congest/congestion.h"
#include "congest/network.h"
#include "congest/protocol.h"
#include "graph/graph.h"

namespace mwc::congest {

// Accumulated counters of one phase path (or of the whole execution, for
// MetricsSnapshot::total). Sums accumulate across the phase's runs; the
// max_* fields keep the worst single run.
struct PhaseMetrics {
  std::string path;  // "outer/inner/primitive"; "total" for the grand total

  std::uint64_t runs = 0;          // protocol runs attributed here
  std::uint64_t aborted_runs = 0;  // of those: outcome != kCompleted
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;

  // Congestion: peak backlog of any one link direction, and the most words
  // any one direction carried during a single run (its endpoints identify
  // the busiest link; kNoNode when no words moved).
  std::uint64_t max_queue_words = 0;
  std::uint64_t max_link_words = 0;
  graph::NodeId busiest_from = graph::kNoNode;
  graph::NodeId busiest_to = graph::kNoNode;

  // Words that crossed the Network's metered cut (see Network::set_cut).
  std::uint64_t cut_words = 0;

  // Fault/transport accounting (zero on fault-free runs).
  std::uint64_t dropped_messages = 0;
  std::uint64_t dropped_words = 0;
  std::uint64_t retransmitted_words = 0;
  std::uint64_t stalled_rounds = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t corrupted_words = 0;
  std::uint64_t checksum_rejects = 0;
  std::uint64_t dead_links = 0;

  // Field-wise equality - the determinism suite compares whole snapshots.
  friend bool operator==(const PhaseMetrics&, const PhaseMetrics&) = default;
};

// What the engine hands the sink at the end of every protocol run.
struct RunProfile {
  RunStats stats;
  RunOutcome outcome = RunOutcome::kCompleted;
  std::uint64_t cut_words = 0;
  std::uint64_t max_link_words = 0;
  graph::NodeId busiest_from = graph::kNoNode;
  graph::NodeId busiest_to = graph::kNoNode;
  std::uint64_t crashes = 0;
};

// A point-in-time copy of everything a Metrics sink has recorded.
struct MetricsSnapshot {
  PhaseMetrics total;                 // every run, regardless of phase
  std::vector<PhaseMetrics> phases;   // per path, in first-open order
  std::vector<std::string> open_phases;  // spans still open at snapshot time
  std::string error;                  // first recorded misuse, "" when clean

  // Observatory sections, filled by cycle::solve (see mwc/api.h). Both are
  // default-constructed - and absent from to_json() - unless their producer
  // ran: `congestion` when SolveOptions::congestion.enabled attached a
  // ledger (congestion.observed), `adherence` when the bound registry in
  // mwc/bounds.h evaluated the solve (adherence.evaluated). Keeping the
  // empty states invisible preserves the seed JSON shape byte-for-byte for
  // every existing consumer (checkpoint resume byte-compares, ci.sh
  // validators, frontier A/B suites).
  CongestionSnapshot congestion;
  AdherenceReport adherence;

  bool clean() const { return error.empty() && open_phases.empty(); }
  const PhaseMetrics* find(std::string_view path) const;

  // Stable, byte-deterministic JSON (fixed key order, integer counters):
  // {"total": {...}, "phases": [{"phase": "...", "rounds": ...}, ...],
  //  "open_phases": [...], "error": "" [, "congestion": {...}]
  //  [, "adherence": {...}]}.
  std::string to_json() const;

  friend bool operator==(const MetricsSnapshot&, const MetricsSnapshot&) = default;
};

// The sink. Attach with Network::attach_metrics; not owned, must outlive the
// runs it observes. All methods are host-thread only.
class Metrics {
 public:
  // --- phase annotation (use PhaseSpan, not these, in algorithm code) ----
  // Returns a token identifying the opened frame.
  std::uint64_t open_phase(std::string_view name);
  void close_phase(std::uint64_t token);
  // Current phase path ("a/b/c"), or "" when no span is open.
  std::string current_path() const;

  // --- engine hook (called by Runner at the end of every run) -----------
  void record_run(const RunProfile& profile);

  // --- consumption -------------------------------------------------------
  MetricsSnapshot snapshot() const;
  void reset();

  // First recorded misuse (out-of-order or double close), "" when clean.
  const std::string& error() const { return error_; }
  bool has_error() const { return !error_.empty(); }

  // Folds a snapshot produced elsewhere into this sink, prefixing its phase
  // paths with the current path. Lets a callee profile with a private sink
  // (see ScopedMetrics) without hiding the runs from an outer observer.
  void absorb(const MetricsSnapshot& snap);

 private:
  struct Frame {
    std::string name;
    std::uint64_t token = 0;
  };

  PhaseMetrics& phase_slot(const std::string& path);
  void note_error(const std::string& message);

  std::vector<Frame> stack_;
  std::uint64_t next_token_ = 1;
  std::vector<PhaseMetrics> phases_;
  std::unordered_map<std::string, std::size_t> index_;  // path -> phases_ idx
  PhaseMetrics total_;
  std::string error_;
};

// RAII phase annotation. Constructing on a Network without an attached
// Metrics (the common case) costs one pointer compare and records nothing.
// The destructor closes the span; close() is idempotent for early closing.
//
// Trace bridge: when the Network also has a Trace that opted into phase
// markers (TraceOptions::phase_markers), the span's open and close are
// mirrored as kPhaseBegin/kPhaseEnd events carrying the phase name, so
// exported timelines show the algorithm's phase structure as nested spans.
// Both happen on the host thread between runs - deterministic by
// construction.
class PhaseSpan {
 public:
  PhaseSpan(Network& net, std::string_view name)
      : PhaseSpan(net.metrics(), name) {
    Trace* trace = net.trace();
    if (trace != nullptr && trace->wants(TraceEventKind::kPhaseBegin)) {
      trace_ = trace;
      label_ = name;
      run_ = net.stats().runs;  // next run to be issued under this phase
      trace_->record(TraceEvent{run_, 0, graph::kNoNode, graph::kNoNode, 0,
                                TraceEventKind::kPhaseBegin, label_});
    }
  }
  PhaseSpan(Metrics* metrics, std::string_view name) : metrics_(metrics) {
    if (metrics_ != nullptr) token_ = metrics_->open_phase(name);
  }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;
  ~PhaseSpan() { close(); }

  void close() {
    if (metrics_ != nullptr) metrics_->close_phase(token_);
    metrics_ = nullptr;
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{run_, 0, graph::kNoNode, graph::kNoNode, 0,
                                TraceEventKind::kPhaseEnd, label_});
      trace_ = nullptr;
    }
  }

 private:
  Metrics* metrics_ = nullptr;
  std::uint64_t token_ = 0;
  Trace* trace_ = nullptr;
  std::uint64_t run_ = 0;
  std::string label_;
};

// Profiles a sequence of runs with a private sink, restoring whatever sink
// was attached before: callers that must *return* a MetricsSnapshot (e.g.
// ksssp::k_source_bfs_auto, cycle::solve) use this so they observe their own
// runs even when the caller attached no Metrics - and so an outer observer,
// when present, still sees everything via absorb() on release.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(Network& net) : net_(&net), prev_(net.metrics()) {
    net.attach_metrics(&local_);
  }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;
  ~ScopedMetrics() { release(); }

  Metrics& metrics() { return local_; }
  MetricsSnapshot snapshot() const { return local_.snapshot(); }

  // Restores the previous sink and folds the local recordings into it
  // (under its current phase path). Idempotent.
  void release() {
    if (net_ == nullptr) return;
    net_->attach_metrics(prev_);
    if (prev_ != nullptr) prev_->absorb(local_.snapshot());
    net_ = nullptr;
    prev_ = nullptr;
  }

 private:
  Network* net_;
  Metrics* prev_;
  Metrics local_;
};

}  // namespace mwc::congest
