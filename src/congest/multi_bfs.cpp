#include "congest/multi_bfs.h"

#include <algorithm>

#include "congest/metrics.h"
#include "congest/runner.h"
#include "support/check.h"

namespace mwc::congest {

MultiBfs::MultiBfs(const Network& net, MultiBfsParams params)
    : net_(net),
      params_(std::move(params)),
      n_(net.n()),
      k_(static_cast<int>(params_.sources.size())) {
  MWC_CHECK(k_ >= 1);
  MWC_CHECK(params_.tick_limit >= 0);
  MWC_CHECK(params_.start_offset.empty() ||
            params_.start_offset.size() == params_.sources.size());
  MWC_CHECK_MSG(params_.mode != DelayMode::kImmediate || params_.sigma == 0,
                "sigma cap is not supported with kImmediate (estimates may "
                "improve after eviction)");
  for (graph::NodeId s : params_.sources) MWC_CHECK(s >= 0 && s < n_);
  if (sigma_mode()) {
    detected_.resize(static_cast<std::size_t>(n_));
  } else {
    dist_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(k_),
                 kInfWeight);
    parent_.assign(dist_.size(), kNoNode);
  }
  if (params_.mode == DelayMode::kWeightDelay) {
    outbox_.resize(static_cast<std::size_t>(n_));
  }
}

Weight MultiBfs::dist(graph::NodeId v, int source_idx) const {
  MWC_DCHECK(v >= 0 && v < n_ && source_idx >= 0 && source_idx < k_);
  if (!sigma_mode()) {
    return dist_[static_cast<std::size_t>(v) * static_cast<std::size_t>(k_) +
                 static_cast<std::size_t>(source_idx)];
  }
  for (const Detected& e : detected_[static_cast<std::size_t>(v)]) {
    if (e.source_idx == source_idx) return e.d;
  }
  return kInfWeight;
}

graph::NodeId MultiBfs::parent(graph::NodeId v, int source_idx) const {
  MWC_DCHECK(v >= 0 && v < n_ && source_idx >= 0 && source_idx < k_);
  if (!sigma_mode()) {
    return parent_[static_cast<std::size_t>(v) * static_cast<std::size_t>(k_) +
                   static_cast<std::size_t>(source_idx)];
  }
  for (const Detected& e : detected_[static_cast<std::size_t>(v)]) {
    if (e.source_idx == source_idx) return e.parent;
  }
  return kNoNode;
}

const std::vector<MultiBfs::Detected>& MultiBfs::detected(graph::NodeId v) const {
  MWC_CHECK(sigma_mode());
  return detected_[static_cast<std::size_t>(v)];
}

bool MultiBfs::consider(graph::NodeId v, std::int32_t source_idx, Weight d,
                        graph::NodeId from) {
  if (!sigma_mode()) {
    std::size_t idx = static_cast<std::size_t>(v) * static_cast<std::size_t>(k_) +
                      static_cast<std::size_t>(source_idx);
    if (d >= dist_[idx]) return false;
    dist_[idx] = d;
    parent_[idx] = from;
    return true;
  }
  // Sigma mode: keep the sigma nearest sources by (d, source node id).
  auto& list = detected_[static_cast<std::size_t>(v)];
  const graph::NodeId sid = params_.sources[static_cast<std::size_t>(source_idx)];
  auto rank = [this](const Detected& e) {
    return std::pair(e.d, params_.sources[static_cast<std::size_t>(e.source_idx)]);
  };
  const auto my_rank = std::pair(d, sid);
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].source_idx == source_idx) {
      if (list[i].d <= d) return false;
      list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (static_cast<int>(list.size()) == params_.sigma) {
    if (rank(list.back()) <= my_rank) return false;  // not among the top sigma
    list.pop_back();
  }
  auto pos = std::lower_bound(list.begin(), list.end(), my_rank,
                              [&](const Detected& e, const std::pair<Weight, graph::NodeId>& r) {
                                return rank(e) < r;
                              });
  list.insert(pos, Detected{d, source_idx, from});
  return true;
}

void MultiBfs::propagate(NodeCtx& node, std::int32_t source_idx, Weight d) {
  const graph::Graph& g =
      params_.graph_override != nullptr ? *params_.graph_override : net_.problem_graph();
  const bool use_in = params_.reverse && g.is_directed();
  auto arcs = use_in ? g.in(node.id()) : g.out(node.id());
  // The engine's CSR arc->direction map is aligned with the problem graph's
  // own arc order, so every announcement resolves its link with one indexed
  // load and rides the single-word fast path (send_on). Graph overrides
  // (the scaled graphs G^i) fall back to the by-neighbor send.
  std::span<const std::int32_t> dirs;
  if (params_.graph_override == nullptr) {
    dirs = use_in ? node.in_arc_dirs() : node.out_arc_dirs();
  }
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    const graph::Arc& a = arcs[i];
    const Weight tick = (params_.mode == DelayMode::kUnitDelay) ? 1 : a.w;
    const Weight nd = d + tick;
    if (nd > params_.tick_limit) continue;
    if (params_.mode == DelayMode::kWeightDelay && a.w > 1) {
      const std::uint64_t when = node.round() + static_cast<std::uint64_t>(a.w - 1);
      outbox_[static_cast<std::size_t>(node.id())].push(
          PendingSend{when, a.to, source_idx, nd});
      node.wake_at(when);
    } else {
      const Word w =
          pack_id_value(static_cast<Word>(source_idx), static_cast<Word>(nd));
      if (!dirs.empty()) {
        node.send_on(dirs[i], w, /*priority=*/nd);
      } else {
        node.send_word(a.to, w, /*priority=*/nd);
      }
    }
  }
}

void MultiBfs::flush_outbox(NodeCtx& node) {
  if (outbox_.empty()) return;
  auto& box = outbox_[static_cast<std::size_t>(node.id())];
  while (!box.empty() && box.top().send_round <= node.round()) {
    const PendingSend& p = box.top();
    node.send_word(p.neighbor,
                   pack_id_value(static_cast<Word>(p.source_idx), static_cast<Word>(p.dist)),
                   /*priority=*/p.dist);
    box.pop();
  }
}

void MultiBfs::begin(NodeCtx& node) {
  for (int i = 0; i < k_; ++i) {
    if (params_.sources[static_cast<std::size_t>(i)] != node.id()) continue;
    consider(node.id(), i, 0, kNoNode);
    const std::uint64_t offset =
        params_.start_offset.empty() ? 0 : params_.start_offset[static_cast<std::size_t>(i)];
    if (offset == 0) {
      propagate(node, i, 0);
    } else {
      node.wake_at(offset);
    }
  }
}

void MultiBfs::round(NodeCtx& node) {
  flush_outbox(node);
  // Delayed source starts (random offsets).
  if (!params_.start_offset.empty()) {
    for (int i = 0; i < k_; ++i) {
      if (params_.sources[static_cast<std::size_t>(i)] != node.id()) continue;
      if (params_.start_offset[static_cast<std::size_t>(i)] == node.round()) {
        propagate(node, i, 0);
      }
    }
  }
  for (const Delivery& m : node.inbox()) {
    MWC_DCHECK(m.msg.size() == 1);
    const auto source_idx = static_cast<std::int32_t>(id_of(m.msg[0]));
    const auto d = static_cast<Weight>(id_value_of(m.msg[0]));
    if (consider(node.id(), source_idx, d, m.from)) {
      propagate(node, source_idx, d);
    }
  }
}

MultiBfs run_multi_bfs(Network& net, MultiBfsParams params, RunStats* stats) {
  PhaseSpan span(net, "multi_bfs");
  MultiBfs bfs(net, std::move(params));
  RunStats s = run_protocol(net, bfs);
  if (stats != nullptr) *stats = s;
  return bfs;
}

}  // namespace mwc::congest
