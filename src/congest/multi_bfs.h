// Multi-source shortest paths - the workhorse primitive.
//
// One protocol covers the paper's whole distance toolbox:
//
//  * kUnitDelay  - pipelined multi-source BFS: every arc costs 1 tick and
//    1 round. With k sources and hop limit h this is the O(h + k) k-source
//    BFS of [37] (priority pipelining: smaller distances first).
//  * kWeightDelay - "stretched graph" BFS (Corollary 4.1): an arc of weight
//    w costs w ticks and w rounds (the sender simulates the first w-1 unit
//    edges of the stretched path internally, then transmits). Running this
//    on a scaled graph is the h-hop (1+eps)-approximate SSSP of [41].
//  * kImmediate  - asynchronous Bellman-Ford with min-combining: arcs cost
//    w ticks but messages are sent immediately. Exact SSSP; rounds are
//    whatever the execution takes (used by the exact weighted APSP baseline,
//    see DESIGN.md substitution 2).
//
// An optional cap sigma turns the primitive into (sigma, h) source detection
// [37]: each node learns (and forwards) only its sigma nearest sources by
// (distance, source id), in O(sigma + h) rounds.
//
// Results are node-local: row v of the output is what node v knows after the
// run (its distance to each source, and the neighbor that delivered it -
// the BFS-tree parent).
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <span>
#include <vector>

#include "congest/protocol.h"
#include "graph/graph.h"

namespace mwc::congest {

using graph::kInfWeight;
using graph::kNoNode;
using graph::Weight;

enum class DelayMode {
  kUnitDelay,    // hop BFS (weights ignored; tick = hop)
  kWeightDelay,  // stretched-graph BFS (tick = weight; w rounds per arc)
  kImmediate,    // async Bellman-Ford (tick = weight; 1 round per arc)
};

struct MultiBfsParams {
  std::vector<graph::NodeId> sources;
  DelayMode mode = DelayMode::kUnitDelay;
  // Maximum total ticks of a path; announcements beyond this are dropped.
  Weight tick_limit = kInfWeight;
  // 0 = every node learns every source; >0 = source detection cap.
  int sigma = 0;
  // Traverse in-arcs instead of out-arcs (computes distances *to* sources in
  // directed graphs; no effect on undirected graphs).
  bool reverse = false;
  // Optional per-source start round (random delays of Algorithm 3 & [24]).
  std::vector<std::uint64_t> start_offset;
  // Run over these arcs/weights instead of the network's problem graph.
  // Must have the same node set and (sub)topology - used for the scaled
  // graphs G^i of Section 5 (each node can compute its scaled incident
  // weights locally, so this is pure bookkeeping, not extra knowledge).
  const graph::Graph* graph_override = nullptr;
};

class MultiBfs : public Protocol {
 public:
  MultiBfs(const Network& net, MultiBfsParams params);

  void begin(NodeCtx& node) override;
  void round(NodeCtx& node) override;

  int source_count() const { return static_cast<int>(params_.sources.size()); }

  // --- results (valid after the run) ----------------------------------
  // Distance in ticks from source index i to node v (or v to source in
  // reverse mode); kInfWeight if not reached within tick_limit / sigma cap.
  Weight dist(graph::NodeId v, int source_idx) const;
  // Neighbor that delivered the final estimate (kNoNode for the source
  // itself / unreached).
  graph::NodeId parent(graph::NodeId v, int source_idx) const;

  // Matrix mode (sigma == 0) bulk access: the full row-major [n x k]
  // results, row v at offset v*k. Callers that copy whole distance vectors
  // (mwc/exact.cpp) read these instead of n*k accessor calls.
  std::span<const Weight> dist_matrix() const {
    MWC_DCHECK(!sigma_mode());
    return dist_;
  }
  std::span<const graph::NodeId> parent_matrix() const {
    MWC_DCHECK(!sigma_mode());
    return parent_;
  }

  // Sigma mode: node v's detected sources, sorted by (dist, source id).
  struct Detected {
    Weight d;
    std::int32_t source_idx;
    graph::NodeId parent;
  };
  const std::vector<Detected>& detected(graph::NodeId v) const;

 private:
  struct PendingSend {
    std::uint64_t send_round;
    graph::NodeId neighbor;
    std::int32_t source_idx;
    Weight dist;
  };
  struct PendingOrder {
    bool operator()(const PendingSend& a, const PendingSend& b) const {
      return a.send_round > b.send_round;
    }
  };

  bool sigma_mode() const { return params_.sigma > 0; }
  // Handles a (possibly improved) estimate at node v; returns true if it was
  // an improvement that should be propagated.
  bool consider(graph::NodeId v, std::int32_t source_idx, Weight d,
                graph::NodeId from);
  void propagate(NodeCtx& node, std::int32_t source_idx, Weight d);
  void flush_outbox(NodeCtx& node);

  const Network& net_;
  MultiBfsParams params_;
  int n_;
  int k_;

  // Matrix mode storage (sigma == 0): [v * k + i].
  std::vector<Weight> dist_;
  std::vector<graph::NodeId> parent_;
  // Sigma mode storage: per node, sorted by (d, source id), size <= sigma.
  std::vector<std::vector<Detected>> detected_;

  // Delayed sends for kWeightDelay (per node, min-heap by send_round).
  std::vector<std::priority_queue<PendingSend, std::vector<PendingSend>,
                                  PendingOrder>>
      outbox_;
};

// Convenience wrapper: runs MultiBfs and returns it (with stats in *stats).
MultiBfs run_multi_bfs(Network& net, MultiBfsParams params,
                       RunStats* stats = nullptr);

}  // namespace mwc::congest
