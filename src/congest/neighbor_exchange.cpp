#include "congest/neighbor_exchange.h"

#include <algorithm>

#include "congest/metrics.h"
#include "congest/runner.h"
#include "support/check.h"

namespace mwc::congest {

const std::vector<Word>& NeighborExchangeResult::received(graph::NodeId v,
                                                          graph::NodeId u) const {
  for (const auto& [from, words] : data_[static_cast<std::size_t>(v)]) {
    if (from == u) return words;
  }
  return empty_;
}

class NeighborExchangeProtocol : public Protocol {
 public:
  NeighborExchangeProtocol(int n, const ExchangePayloadFn& payload)
      : payload_(payload) {
    result_.data_.resize(static_cast<std::size_t>(n));
  }

  void begin(NodeCtx& node) override {
    for (graph::NodeId u : node.comm_neighbors()) {
      std::vector<Word> words = payload_(node.id(), u);
      // One word per message; the engine drains one per round per link, so
      // all links progress in parallel and the run costs max-list-length
      // rounds.
      for (Word w : words) node.send(u, Message{w});
    }
  }

  void round(NodeCtx& node) override {
    auto& mine = result_.data_[static_cast<std::size_t>(node.id())];
    for (const Delivery& m : node.inbox()) {
      auto it = std::find_if(mine.begin(), mine.end(),
                             [&](const auto& p) { return p.first == m.from; });
      if (it == mine.end()) {
        mine.emplace_back(m.from, std::vector<Word>{});
        it = std::prev(mine.end());
      }
      it->second.push_back(m.msg[0]);
    }
  }

  NeighborExchangeResult take_result() { return std::move(result_); }

 private:
  const ExchangePayloadFn& payload_;
  NeighborExchangeResult result_;
};

NeighborExchangeResult neighbor_exchange(Network& net,
                                         const ExchangePayloadFn& payload,
                                         RunStats* stats) {
  PhaseSpan span(net, "neighbor_exchange");
  NeighborExchangeProtocol proto(net.n(), payload);
  RunStats s = run_protocol(net, proto);
  if (stats != nullptr) *stats = s;
  return proto.take_result();
}

}  // namespace mwc::congest
