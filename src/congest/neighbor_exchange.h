// Neighbor exchange: every node hands each communication neighbor a list of
// words; after the run each node holds what each neighbor sent it.
//
// This is the "send {d(v,s) | s in S} to each neighbor in O(|S|) rounds"
// step the paper uses repeatedly (line 11 of Algorithm 3, the non-tree-edge
// candidate evaluation of Section 4, the exact MWC baselines). Lists may
// differ per neighbor (e.g. per-neighbor BFS-parent flags). Rounds = max
// list length (links run in parallel; the engine paces each link).
#pragma once

#include <functional>
#include <vector>

#include "congest/protocol.h"

namespace mwc::congest {

// payload(v, u) = words v sends to neighbor u. Called once per ordered
// neighbor pair during setup.
using ExchangePayloadFn =
    std::function<std::vector<Word>(graph::NodeId v, graph::NodeId u)>;

class NeighborExchangeResult {
 public:
  // Words node v received from neighbor u (empty if none).
  const std::vector<Word>& received(graph::NodeId v, graph::NodeId u) const;

 private:
  friend class NeighborExchangeProtocol;
  // per node: (neighbor, words) in arrival order.
  std::vector<std::vector<std::pair<graph::NodeId, std::vector<Word>>>> data_;
  std::vector<Word> empty_;
};

NeighborExchangeResult neighbor_exchange(Network& net,
                                         const ExchangePayloadFn& payload,
                                         RunStats* stats = nullptr);

}  // namespace mwc::congest
