#include "congest/network.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>

#include "congest/congestion.h"
#include "congest/thread_pool.h"
#include "support/check.h"

namespace mwc::congest {

Network::Network(const graph::Graph& g, std::uint64_t seed, NetworkConfig cfg)
    : graph_(&g), cfg_(cfg), master_rng_(seed) {
  MWC_CHECK(cfg_.bandwidth_words >= 1);
  if (cfg_.clamp_threads && cfg_.threads > 1) {
    // hardware_concurrency() == 0 means "unknown" - leave the request alone.
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw >= 1 && cfg_.threads > hw) {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        std::fprintf(stderr,
                     "mwc: clamping threads=%d to hardware concurrency %d "
                     "(oversubscription only adds scheduling overhead; set "
                     "NetworkConfig::clamp_threads=false to override)\n",
                     cfg_.threads, hw);
      }
      cfg_.threads = hw;
    }
  }
  const int n = g.node_count();

  // Build the undirected communication topology and its directions.
  graph::Graph topo = g.communication_topology();
  links_.reserve(static_cast<std::size_t>(topo.edge_count()));
  dirs_.reserve(2 * static_cast<std::size_t>(topo.edge_count()));
  std::vector<std::int32_t> deg(static_cast<std::size_t>(n), 0);
  for (const graph::Edge& e : topo.edges()) {
    links_.push_back(Link{e.from, e.to});
    ++deg[static_cast<std::size_t>(e.from)];
    ++deg[static_cast<std::size_t>(e.to)];
  }
  nbr_offset_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    nbr_offset_[static_cast<std::size_t>(v) + 1] =
        nbr_offset_[static_cast<std::size_t>(v)] + deg[static_cast<std::size_t>(v)];
  }
  nbrs_.resize(static_cast<std::size_t>(nbr_offset_[static_cast<std::size_t>(n)]));
  nbr_dir_.resize(nbrs_.size());
  std::vector<std::int32_t> pos(nbr_offset_.begin(), nbr_offset_.end() - 1);
  for (const Link& l : links_) {
    // Two directions per link.
    int d_ab = static_cast<int>(dirs_.size());
    dirs_.push_back(Direction{l.a, l.b});
    int d_ba = static_cast<int>(dirs_.size());
    dirs_.push_back(Direction{l.b, l.a});
    nbrs_[static_cast<std::size_t>(pos[static_cast<std::size_t>(l.a)])] = l.b;
    nbr_dir_[static_cast<std::size_t>(pos[static_cast<std::size_t>(l.a)]++)] = d_ab;
    nbrs_[static_cast<std::size_t>(pos[static_cast<std::size_t>(l.b)])] = l.a;
    nbr_dir_[static_cast<std::size_t>(pos[static_cast<std::size_t>(l.b)]++)] = d_ba;
  }
  // Sort each node's (neighbor, dir) pairs by neighbor id for binary
  // search. One flat key array - (neighbor << 32 | dir) packed so a plain
  // integer sort of each node's slice orders by neighbor - instead of a
  // temporary pair-vector per node: O(1) allocations for the whole build.
  std::vector<std::uint64_t> keys(nbrs_.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = (static_cast<std::uint64_t>(nbrs_[i]) << 32) |
              static_cast<std::uint32_t>(nbr_dir_[i]);
  }
  for (int v = 0; v < n; ++v) {
    const auto b = static_cast<std::ptrdiff_t>(nbr_offset_[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::ptrdiff_t>(nbr_offset_[static_cast<std::size_t>(v) + 1]);
    std::sort(keys.begin() + b, keys.begin() + e);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    nbrs_[i] = static_cast<NodeId>(keys[i] >> 32);
    nbr_dir_[i] = static_cast<std::int32_t>(keys[i] & 0xffffffffu);
  }

  // Flat CSR arc -> direction maps, aligned with the problem graph's own
  // out(v)/in(v) order, so protocol hot loops (multi_bfs.cpp) resolve the
  // link of every send with one indexed load. Built once here; the per-arc
  // binary search this replaces used to run once per send.
  out_arc_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    out_arc_off_[static_cast<std::size_t>(v) + 1] =
        out_arc_off_[static_cast<std::size_t>(v)] +
        static_cast<std::int32_t>(g.out(v).size());
  }
  out_arc_dir_.resize(static_cast<std::size_t>(out_arc_off_[static_cast<std::size_t>(n)]));
  for (int v = 0; v < n; ++v) {
    std::int32_t* slot = out_arc_dir_.data() + out_arc_off_[static_cast<std::size_t>(v)];
    for (const graph::Arc& a : g.out(v)) *slot++ = direction_index(v, a.to);
  }
  if (g.is_directed()) {
    in_arc_off_.assign(static_cast<std::size_t>(n) + 1, 0);
    for (int v = 0; v < n; ++v) {
      in_arc_off_[static_cast<std::size_t>(v) + 1] =
          in_arc_off_[static_cast<std::size_t>(v)] +
          static_cast<std::int32_t>(g.in(v).size());
    }
    in_arc_dir_.resize(static_cast<std::size_t>(in_arc_off_[static_cast<std::size_t>(n)]));
    for (int v = 0; v < n; ++v) {
      std::int32_t* slot = in_arc_dir_.data() + in_arc_off_[static_cast<std::size_t>(v)];
      for (const graph::Arc& a : g.in(v)) *slot++ = direction_index(v, a.to);
    }
  }
}

Network::~Network() = default;

ThreadPool* Network::thread_pool() {
  if (cfg_.threads <= 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(cfg_.threads);
  return pool_.get();
}

std::span<const NodeId> Network::comm_neighbors(NodeId v) const {
  MWC_DCHECK(v >= 0 && v < n());
  int b = nbr_offset_[static_cast<std::size_t>(v)];
  int e = nbr_offset_[static_cast<std::size_t>(v) + 1];
  return {nbrs_.data() + b, static_cast<std::size_t>(e - b)};
}

int Network::direction_index(NodeId v, NodeId to) const {
  int b = nbr_offset_[static_cast<std::size_t>(v)];
  int e = nbr_offset_[static_cast<std::size_t>(v) + 1];
  auto first = nbrs_.begin() + b;
  auto last = nbrs_.begin() + e;
  auto it = std::lower_bound(first, last, to);
  MWC_CHECK_MSG(it != last && *it == to,
                "send target is not a communication neighbor");
  return nbr_dir_[static_cast<std::size_t>(b + (it - first))];
}

void Network::set_cut(std::vector<bool> side) {
  cut_side_ = std::move(side);
  cut_words_ = 0;
  if (cut_side_.empty()) {
    for (Direction& d : dirs_) d.crosses_cut = false;
    return;
  }
  MWC_CHECK(static_cast<int>(cut_side_.size()) == n());
  for (Direction& d : dirs_) {
    d.crosses_cut = cut_side_[static_cast<std::size_t>(d.from)] !=
                    cut_side_[static_cast<std::size_t>(d.to)];
  }
}

int Network::cut_link_count() const {
  if (cut_side_.empty()) return 0;
  int c = 0;
  for (const Link& l : links_) {
    if (cut_side_[static_cast<std::size_t>(l.a)] != cut_side_[static_cast<std::size_t>(l.b)]) ++c;
  }
  return c;
}

std::span<const std::int32_t> Network::out_arc_dirs(NodeId v) const {
  MWC_DCHECK(v >= 0 && v < n());
  const std::int32_t b = out_arc_off_[static_cast<std::size_t>(v)];
  const std::int32_t e = out_arc_off_[static_cast<std::size_t>(v) + 1];
  return {out_arc_dir_.data() + b, static_cast<std::size_t>(e - b)};
}

std::span<const std::int32_t> Network::in_arc_dirs(NodeId v) const {
  // Undirected graphs: in(v) aliases out(v), so the out map is the in map.
  if (!graph_->is_directed()) return out_arc_dirs(v);
  MWC_DCHECK(v >= 0 && v < n());
  const std::int32_t b = in_arc_off_[static_cast<std::size_t>(v)];
  const std::int32_t e = in_arc_off_[static_cast<std::size_t>(v) + 1];
  return {in_arc_dir_.data() + b, static_cast<std::size_t>(e - b)};
}

std::span<const std::int32_t> Network::comm_link_dirs(NodeId v) const {
  MWC_DCHECK(v >= 0 && v < n());
  const std::int32_t b = nbr_offset_[static_cast<std::size_t>(v)];
  const std::int32_t e = nbr_offset_[static_cast<std::size_t>(v) + 1];
  return {nbr_dir_.data() + b, static_cast<std::size_t>(e - b)};
}

void Network::attach_congestion(CongestionLedger* ledger) {
  congestion_ = ledger;
  if (ledger == nullptr) return;
  std::vector<std::pair<NodeId, NodeId>> endpoints;
  endpoints.reserve(dirs_.size());
  for (const Direction& d : dirs_) endpoints.emplace_back(d.from, d.to);
  ledger->bind(std::move(endpoints));
}

void Network::note_frontier(const std::string& phase, const FrontierStats& s) {
  frontier_total_.accumulate(s);
  for (auto& [path, acc] : frontier_phases_) {
    if (path == phase) {
      acc.accumulate(s);
      return;
    }
  }
  frontier_phases_.emplace_back(phase, s);
}

support::Rng Network::next_run_rng() {
  if (trace_ != nullptr && trace_->wants(TraceEventKind::kRunBegin)) {
    trace_->record(TraceEvent{run_counter_, 0, graph::kNoNode, graph::kNoNode,
                              0, TraceEventKind::kRunBegin, {}});
  }
  return master_rng_.fork(run_counter_++);
}

}  // namespace mwc::congest
