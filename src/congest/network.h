// The CONGEST network: topology, bandwidth, counters.
//
// A Network is constructed from the problem graph G. Following the paper's
// convention (Section 1.1), communication links are the *undirected*
// underlying edges of G and are unweighted, even when G is directed or
// weighted. Each link direction carries at most `bandwidth_words` Words per
// round; congestion is resolved by store-and-forward queues inside the
// engine (see runner.h), so every round an algorithm consumes is actually
// simulated - rounds are never self-reported.
//
// The Network persists across protocol runs and accumulates round/message
// counters, mirroring how the paper composes subroutines sequentially.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "congest/faults.h"
#include "congest/frontier.h"
#include "congest/message.h"
#include "congest/trace.h"
#include "graph/graph.h"
#include "support/check.h"
#include "support/rng.h"

namespace mwc::congest {

using graph::NodeId;

// How the engine represents per-direction outbound queues and builds each
// round's invocation list. Both paths are bit-identical in every simulated
// observable - messages, rounds, words, stats, RNG and fault streams,
// metrics snapshots, traces - so the choice only moves wall clock. kLegacy
// is the pre-frontier implementation, retained as the A/B reference
// (tests/frontier_engine_test.cpp, bench_engine A5a); kFrontier is the
// direction-optimizing word-queue engine described in docs/simulator.md.
enum class SettlePath { kFrontier, kLegacy };

struct NetworkConfig {
  // Words per link direction per round (the model's Theta(log n) bits).
  int bandwidth_words = 1;
  // Worker threads for round execution. 1 (default) runs the engine on the
  // calling thread exactly as before; N > 1 shards node invocations and
  // link transmissions across a persistent pool while staying bit-identical
  // to threads=1 - same traces, stats, RNG streams, and fault schedules
  // (see docs/simulator.md, "Execution model"). Values above the hardware
  // concurrency only add scheduling overhead; see clamp_threads.
  int threads = 1;
  // Clamp `threads` to the machine's hardware concurrency at construction
  // (with a one-line stderr warning, once per process): oversubscribing a
  // round-barrier engine is a pure regression. Determinism tests that
  // assert cross-thread-count byte-identity on small CI machines opt out,
  // as does the CLI when the user passes an explicit --threads.
  bool clamp_threads = true;
  // Outbound-queue representation (see SettlePath above). Both settings
  // produce bit-identical simulated observables.
  SettlePath settle_path = SettlePath::kFrontier;
  // Safety valve: a run that passes this many rounds stops and reports
  // RunOutcome::kRoundLimitExceeded (no abort; see runner.h).
  std::uint64_t max_rounds_per_run = 20'000'000;
  // Adversarial-schedule fuzzing: randomize the within-round delivery order
  // of each inbox and the per-round node invocation order. Correct CONGEST
  // protocols may not depend on either (the model fixes only *which round*
  // a message arrives, not its position in the inbox), so results must be
  // unchanged; tests exercise algorithms under both schedules.
  bool shuffle_deliveries = false;
  // Injected faults (drops, stalls, crash-stops); each run materializes a
  // deterministic schedule from (seed, run counter). See congest/faults.h.
  FaultPlan faults;
  // Run every protocol over the ack/retransmit transport of
  // congest/reliable_link.h. Required for correct results whenever
  // faults.has_drops(); harmless (pure overhead) on reliable links.
  bool reliable_transport = false;
  ReliableConfig reliable;
};

class ThreadPool;
class Metrics;
class Governor;
class CongestionLedger;

// Accumulated counters of a Network over all protocol runs, as one value
// struct (see Network::stats()). External callers migrate off the loose
// per-counter accessors by taking one of these instead.
struct NetworkStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  // Words that crossed the metered cut (0 unless set_cut installed one).
  std::uint64_t cut_words = 0;
  // Protocol runs started on this network (the run counter that seeds each
  // run's RNG stream).
  std::uint64_t runs = 0;

  friend bool operator==(const NetworkStats&, const NetworkStats&) = default;
};

class Network {
 public:
  Network(const graph::Graph& g, std::uint64_t seed,
          NetworkConfig cfg = NetworkConfig{});
  ~Network();

  int n() const { return graph_->node_count(); }
  const graph::Graph& problem_graph() const { return *graph_; }
  const NetworkConfig& config() const { return cfg_; }
  // The master seed every run's RNG stream forks from (checkpoint identity).
  std::uint64_t seed() const { return master_rng_.seed(); }

  // Communication neighbors of v (underlying undirected topology).
  std::span<const NodeId> comm_neighbors(NodeId v) const;
  int link_count() const { return static_cast<int>(links_.size()); }

  // --- flat CSR arc -> link-direction maps (built once per Network) ----
  // out_arc_dirs(v)[i] is the direction index that carries a message from v
  // to problem_graph().out(v)[i].to; in_arc_dirs aligns with
  // problem_graph().in(v). comm_link_dirs aligns with comm_neighbors(v).
  // Protocol hot loops pair these with NodeCtx::send_on so a send is one
  // indexed lookup instead of a per-send neighbor binary search.
  std::span<const std::int32_t> out_arc_dirs(NodeId v) const;
  std::span<const std::int32_t> in_arc_dirs(NodeId v) const;
  std::span<const std::int32_t> comm_link_dirs(NodeId v) const;
  // The receiving endpoint of a direction index (bounds-checked in debug).
  NodeId direction_target(int dir_idx) const {
    MWC_DCHECK(dir_idx >= 0 && dir_idx < static_cast<int>(dirs_.size()));
    return dirs_[static_cast<std::size_t>(dir_idx)].to;
  }

  // --- frontier settle-path statistics (side channel) ------------------
  // Occupancy/direction counters accumulated per metrics phase path (""
  // when no PhaseSpan is open) while settle_path == kFrontier. Not part of
  // any determinism-checked observable; see frontier.h.
  const FrontierStats& frontier_total() const { return frontier_total_; }
  std::span<const std::pair<std::string, FrontierStats>> frontier_phases()
      const {
    return frontier_phases_;
  }
  void reset_frontier_stats() {
    frontier_total_ = FrontierStats{};
    frontier_phases_.clear();
  }

  // --- accumulated counters over all protocol runs --------------------
  NetworkStats stats() const {
    return NetworkStats{total_rounds_, total_messages_, total_words_,
                        cut_words_, run_counter_};
  }

  // Checkpoint resume: overwrite the accumulated counters with a recorded
  // snapshot. Restoring `runs` realigns the run counter that seeds every
  // run's RNG stream, so execution after the restore replays the recorded
  // run's randomness exactly (see congest/checkpoint.h).
  void restore_stats(const NetworkStats& s) {
    total_rounds_ = s.rounds;
    total_messages_ = s.messages;
    total_words_ = s.words;
    cut_words_ = s.cut_words;
    run_counter_ = s.runs;
  }

  // --- cut instrumentation (lower-bound benches) -----------------------
  // side[v] in {false, true}; words transmitted between sides accumulate in
  // stats().cut_words. Passing an empty vector disables the meter.
  void set_cut(std::vector<bool> side);
  int cut_link_count() const;

  // Fresh deterministic randomness for the next protocol run: every run
  // forks a new stream from the master seed (the model's shared randomness).
  support::Rng next_run_rng();

  // Attach an event trace (nullptr detaches). Not owned; must outlive the
  // runs it observes. See trace.h.
  void attach_trace(Trace* trace) { trace_ = trace; }
  Trace* trace() const { return trace_; }

  // Attach a per-phase metrics sink (nullptr detaches). Not owned; must
  // outlive the runs it observes. Zero-cost when detached. See metrics.h.
  void attach_metrics(Metrics* metrics) { metrics_ = metrics; }
  Metrics* metrics() const { return metrics_; }

  // Attach a resource governor (nullptr detaches). Not owned; must outlive
  // the runs it governs. Zero-cost when detached. See governor.h.
  void attach_governor(Governor* governor) { governor_ = governor; }
  Governor* governor() const { return governor_; }

  // Attach a congestion ledger (nullptr detaches). Not owned; must outlive
  // the runs it observes. Zero-cost when detached; binds the ledger to this
  // network's link-direction table on attach. See congestion.h.
  void attach_congestion(CongestionLedger* ledger);
  CongestionLedger* congestion() const { return congestion_; }

 private:
  friend class Runner;
  friend class NodeCtx;

  struct Link {
    NodeId a, b;  // a < b
  };
  // One direction of a link.
  struct Direction {
    NodeId from, to;
    bool crosses_cut = false;
  };

  // Direction index for sending from `v` to neighbor `to` (checked).
  // Read-only after construction; safe to call from worker threads.
  int direction_index(NodeId v, NodeId to) const;

  // Folds one run's frontier counters into the per-phase side channel
  // (Runner, host thread, at run end).
  void note_frontier(const std::string& phase, const FrontierStats& s);

  // The worker pool shared by every run on this network; nullptr when
  // config().threads <= 1. Created lazily on first use, reused afterwards
  // (spawning threads per protocol run would dominate small runs).
  ThreadPool* thread_pool();

  const graph::Graph* graph_;  // not owned; must outlive the Network
  NetworkConfig cfg_;
  support::Rng master_rng_;
  std::uint64_t run_counter_ = 0;

  std::vector<Link> links_;
  std::vector<Direction> dirs_;
  // Per node: sorted parallel arrays of (neighbor, outgoing direction idx).
  std::vector<std::int32_t> nbr_offset_;
  std::vector<NodeId> nbrs_;
  std::vector<std::int32_t> nbr_dir_;
  // Problem-graph arc -> direction maps, aligned with the graph's own CSR
  // order (see out_arc_dirs above). in_* alias out_* on undirected graphs.
  std::vector<std::int32_t> out_arc_off_, out_arc_dir_;
  std::vector<std::int32_t> in_arc_off_, in_arc_dir_;

  FrontierStats frontier_total_;
  std::vector<std::pair<std::string, FrontierStats>> frontier_phases_;

  std::vector<bool> cut_side_;
  Trace* trace_ = nullptr;
  Metrics* metrics_ = nullptr;
  Governor* governor_ = nullptr;
  CongestionLedger* congestion_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;  // lazily built by thread_pool()

  std::uint64_t total_rounds_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_words_ = 0;
  std::uint64_t cut_words_ = 0;
};

}  // namespace mwc::congest
