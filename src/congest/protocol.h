// Per-node protocol interface.
//
// A Protocol is a distributed algorithm written from the point of view of a
// single node, exactly as the CONGEST model prescribes: in each synchronous
// round a node reads the messages delivered to it, updates local state, and
// hands messages to its links. The NodeCtx API deliberately exposes *only*
// local knowledge - a node's id, n, its incident arcs of the problem graph
// (with weights), its communication neighbors, its inbox, and randomness -
// so protocols cannot accidentally cheat by inspecting remote state. Global
// verification happens outside the run, in tests.
//
// Scheduling: the engine invokes `round()` only for nodes that received a
// message this round or requested a wake-up (wake_at). A node that wants to
// act spontaneously at a future round (e.g. the random start offsets delta_v
// of Algorithm 3) registers a wake. Spurious wakes are allowed; protocols
// must tolerate a round() call with an empty inbox.
//
// Local computation is free (CONGEST nodes have unbounded compute); only
// message transmission costs rounds, and that cost is enforced by the engine
// through per-link bandwidth, never self-reported.
#pragma once

#include <cstdint>
#include <span>

#include "congest/message.h"
#include "congest/network.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace mwc::congest {

class Runner;
class NodeCtx;

// Interposition hook for layered transports (see reliable_link.h): a wrapper
// Protocol hands the protocol above it a NodeCtx whose sends are routed here
// instead of straight onto the links, so headers can be added transparently.
class SendInterceptor {
 public:
  virtual ~SendInterceptor() = default;
  virtual void on_send(NodeId from, NodeId neighbor, Message msg,
                       std::int64_t priority) = 0;
};

class NodeCtx {
 public:
  NodeId id() const { return id_; }
  int n() const;
  // Round number within the current protocol run (begin() runs at round 0).
  std::uint64_t round() const;
  // Link bandwidth B in words per round - public knowledge in CONGEST(B).
  int bandwidth_words() const;

  // Messages delivered to this node this round.
  std::span<const Delivery> inbox() const;

  // Hands `msg` to the link towards `neighbor` (must be a communication
  // neighbor). Transmission occupies ceil(size/B) rounds of that direction;
  // queued messages transmit in (priority, enqueue-order) order - the sender
  // choosing what to put on its link first is legal in CONGEST. Lower
  // priority value = transmitted earlier.
  void send(NodeId neighbor, Message msg, std::int64_t priority = 0);

  // Single-word sends - the engine's fast path. Semantically identical to
  // send(neighbor, Message{w}, priority); the frontier settle path keeps
  // the word inside its 32-byte queue entry and never builds a Message
  // until delivery (see congest/frontier.h).
  void send_word(NodeId neighbor, Word w, std::int64_t priority = 0);
  // Like send_word over an already-resolved link direction (one of this
  // node's entries from out_arc_dirs/in_arc_dirs/comm_link_dirs below),
  // skipping the per-send neighbor binary search. The hot loop of
  // multi_bfs.cpp pairs this with the Network's CSR arc->direction maps.
  void send_on(std::int32_t dir, Word w, std::int64_t priority = 0);

  // Requests a round() invocation at run-round r (>= current round + 1).
  void wake_at(std::uint64_t r);
  void wake_next();

  // This node's private stream of the run's shared randomness.
  support::Rng& rng();

  // --- local knowledge of the problem graph ---------------------------
  std::span<const graph::Arc> out_arcs() const;
  std::span<const graph::Arc> in_arcs() const;
  std::span<const NodeId> comm_neighbors() const;
  bool graph_is_directed() const;
  // Link-direction indices for send_on, aligned element-for-element with
  // out_arcs() / in_arcs() / comm_neighbors(). Pure local knowledge (which
  // wire leads to which neighbor), precomputed once per Network.
  std::span<const std::int32_t> out_arc_dirs() const;
  std::span<const std::int32_t> in_arc_dirs() const;
  std::span<const std::int32_t> comm_link_dirs() const;

  // A context identical to this one except that the protocol above sees
  // `inbox` and its sends are routed through `hook`. Wake-ups, randomness,
  // and graph knowledge pass straight through - the layered protocol cannot
  // tell it is not talking to the engine (reliable_link.h relies on this).
  NodeCtx layered(const std::vector<Delivery>* inbox, SendInterceptor* hook) const {
    NodeCtx ctx = *this;
    ctx.inbox_override_ = inbox;
    ctx.send_hook_ = hook;
    return ctx;
  }

 private:
  friend class Runner;
  NodeCtx(Runner& runner, NodeId id) : runner_(&runner), id_(id) {}
  Runner* runner_;
  NodeId id_;
  const std::vector<Delivery>* inbox_override_ = nullptr;
  SendInterceptor* send_hook_ = nullptr;
  // Parallel execution seam (the wake-side twin of send_hook_): when set,
  // wake_at records the clamped round here instead of touching the shared
  // wake heap; the Runner merges buffers in deterministic order at the
  // round barrier. layered() copies it, so wake-ups of stacked transports
  // are buffered exactly like the protocol's own.
  std::vector<std::uint64_t>* wake_sink_ = nullptr;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  // Round 0: local setup and initial sends. Inbox is empty.
  virtual void begin(NodeCtx& node) { (void)node; }

  // Invoked for rounds >= 1 whenever the node has deliveries or a wake.
  virtual void round(NodeCtx& node) = 0;

  // Invoked when a crash-stopped node rejoins under a RecoverFault
  // (faults.h): the node's volatile state is gone, the inbox is empty, and
  // the current round is mid-run. The default re-runs begin(), which is the
  // right re-initialization for announce/relax-style protocols; transports
  // override it to resynchronize their peers (reliable_link.h).
  virtual void on_restart(NodeCtx& node) { begin(node); }
};

struct RunStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  // Peak backlog of any single link direction (words queued but not yet
  // transmitted) - the congestion the random-delay scheduling of [24, 36]
  // exists to keep flat.
  std::uint64_t max_queue_words = 0;

  // --- fault/transport accounting (zero on fault-free runs) -----------
  // Messages/words lost to injected drops or to crash-stopped nodes
  // (transmitted, then discarded instead of delivered). See faults.h.
  std::uint64_t dropped_messages = 0;
  std::uint64_t dropped_words = 0;
  // Words re-sent by the reliable transport (reliable_link.h).
  std::uint64_t retransmitted_words = 0;
  // Direction-rounds during which a stall fault held back pending traffic.
  std::uint64_t stalled_rounds = 0;
  // Words XOR-flipped in delivered messages by corruption faults.
  std::uint64_t corrupted_words = 0;
  // Frames the reliable transport rejected on a checksum mismatch (each is
  // eventually repaired by a retransmission).
  std::uint64_t checksum_rejects = 0;
  // Extra deliveries minted by duplication faults (each duplicated message
  // reaches its receiver twice; the copy is billed here and in `messages`).
  std::uint64_t dup_messages = 0;
  std::uint64_t dup_words = 0;
  // Crash-stop faults that fired during the run, and how many of those
  // nodes were revived by a RecoverFault.
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  // Link directions the reliable transport gave up on (max_retries
  // exhausted; outstanding traffic abandoned). A nonzero value means
  // in-order delivery was NOT maintained everywhere.
  std::uint64_t dead_links = 0;

  // Field-wise equality - the determinism suite asserts parallel runs
  // reproduce sequential stats bit for bit.
  friend bool operator==(const RunStats&, const RunStats&) = default;
};

// How a protocol run ended. Faults and the round-limit safety valve are
// engine-level events, reported instead of aborting the process; whether the
// *protocol's* answer is usable after a crash or limit is the caller's call.
enum class RunOutcome {
  kCompleted,           // ran to quiescence with every node alive
  kRoundLimitExceeded,  // stopped at NetworkConfig::max_rounds_per_run
  kCrashed,             // quiescent, but node(s) crash-stopped and stayed down
  kRecovered,           // quiescent; every crashed node was revived mid-run
  kBudgetExhausted,     // stopped by an attached Governor (see governor.h)
  kCancelled,           // stopped by a tripped CancelToken (see governor.h)
};

inline const char* to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kCompleted: return "completed";
    case RunOutcome::kRoundLimitExceeded: return "round_limit_exceeded";
    case RunOutcome::kCrashed: return "crashed";
    case RunOutcome::kRecovered: return "recovered";
    case RunOutcome::kBudgetExhausted: return "budget_exhausted";
    case RunOutcome::kCancelled: return "cancelled";
  }
  return "unknown";
}

struct RunResult {
  RunOutcome outcome = RunOutcome::kCompleted;
  RunStats stats;
  // kRecovered counts as ok: the protocol ran to quiescence with every node
  // participating again, so its answer exists - but stats.crashes reveals
  // the interruption, and self-certifying callers (cycle::solve) downgrade
  // such answers to `degraded` rather than certify them.
  bool ok() const {
    return outcome == RunOutcome::kCompleted ||
           outcome == RunOutcome::kRecovered;
  }
};

}  // namespace mwc::congest
