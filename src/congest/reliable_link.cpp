#include "congest/reliable_link.h"

#include <algorithm>
#include <limits>

#include "support/check.h"

namespace mwc::congest {

namespace {

// Header word: bit 63 distinguishes ack from data, low 63 bits carry the
// sequence number (data) or the cumulative highest-in-order seq (ack).
constexpr Word kAckBit = Word{1} << 63;

constexpr Word data_header(std::uint64_t seq) { return seq; }
constexpr Word ack_header(std::uint64_t cum_seq) { return kAckBit | cum_seq; }
constexpr bool is_ack(Word header) { return (header & kAckBit) != 0; }
constexpr std::uint64_t seq_of(Word header) { return header & ~kAckBit; }

// Acks jump every queue: a 1-word ack delayed behind bulk data would push
// every retransmission timer toward spurious firing.
constexpr std::int64_t kAckPriority = std::numeric_limits<std::int64_t>::min();

Message deframe(const Message& framed) {
  Message payload;
  for (std::uint32_t i = 1; i < framed.size(); ++i) payload.push(framed[i]);
  return payload;
}

}  // namespace

ReliableProtocol::ReliableProtocol(Protocol& inner, ReliableConfig cfg)
    : inner_(inner), cfg_(cfg) {
  MWC_CHECK(cfg_.base_timeout_rounds >= 1);
  MWC_CHECK(cfg_.max_timeout_rounds >= cfg_.base_timeout_rounds);
  MWC_CHECK(cfg_.max_retries >= 1);
}

ReliableProtocol::NodeState& ReliableProtocol::state_of(NodeCtx& node) {
  // Distinct nodes may be stepped concurrently: size the vector exactly once,
  // then each node initializes and mutates only its own element.
  std::call_once(state_once_,
                 [&] { state_.resize(static_cast<std::size_t>(node.n())); });
  NodeState& st = state_[static_cast<std::size_t>(node.id())];
  if (st.nbrs.empty()) {
    auto nbrs = node.comm_neighbors();
    st.nbrs.assign(nbrs.begin(), nbrs.end());
    st.tx.resize(st.nbrs.size());
    st.rx.resize(st.nbrs.size());
    for (LinkTx& tx : st.tx) tx.rto = cfg_.base_timeout_rounds;
  }
  return st;
}

int ReliableProtocol::nbr_index(const NodeState& st, NodeId u) const {
  auto it = std::lower_bound(st.nbrs.begin(), st.nbrs.end(), u);
  MWC_CHECK_MSG(it != st.nbrs.end() && *it == u,
                "reliable frame from a non-neighbor");
  return static_cast<int>(it - st.nbrs.begin());
}

void ReliableProtocol::begin(NodeCtx& node) {
  NodeState& st = state_of(node);
  st.inner_inbox.clear();
  st.raw = &node;
  NodeCtx layered = node.layered(&st.inner_inbox, this);
  inner_.begin(layered);
  st.raw = nullptr;
}

void ReliableProtocol::on_send(NodeId from, NodeId neighbor, Message msg,
                               std::int64_t priority) {
  NodeState& st = state_[static_cast<std::size_t>(from)];
  MWC_CHECK_MSG(st.raw != nullptr, "on_send outside a protocol step");
  LinkTx& tx = st.tx[static_cast<std::size_t>(nbr_index(st, neighbor))];
  if (tx.dead) return;  // peer declared dead; traffic abandoned
  Message framed;
  framed.push(data_header(tx.next_seq));
  for (std::uint32_t i = 0; i < msg.size(); ++i) framed.push(msg[i]);
  tx.unacked.push_back(Outstanding{tx.next_seq, st.raw->round(), priority, framed});
  tx.unacked_words += framed.size();
  ++tx.next_seq;
  st.raw->send(neighbor, std::move(framed), priority);
  arm_timer(*st.raw, tx);
}

void ReliableProtocol::handle_ack(LinkTx& tx, std::uint64_t acked) {
  bool progress = false;
  while (!tx.unacked.empty() && tx.unacked.front().seq <= acked) {
    tx.unacked_words -= tx.unacked.front().framed.size();
    tx.unacked.pop_front();
    progress = true;
  }
  if (progress) {
    tx.retries = 0;
    tx.rto = cfg_.base_timeout_rounds;
    // A stale timer may still be armed; it fires spuriously and disarms.
  }
}

void ReliableProtocol::accept_data(NodeCtx& node, NodeState& st, int j,
                                   const Delivery& d) {
  LinkRx& rx = st.rx[static_cast<std::size_t>(j)];
  const std::uint64_t seq = seq_of(d.msg[0]);
  rx.ack_due = true;  // every data frame (duplicates included) re-acks
  if (seq < rx.next_expected) return;  // duplicate of a delivered frame
  if (seq > rx.next_expected) {        // gap: a predecessor was dropped
    rx.out_of_order.emplace(seq, deframe(d.msg));
    return;
  }
  st.inner_inbox.push_back(Delivery{d.from, deframe(d.msg)});
  ++rx.next_expected;
  auto it = rx.out_of_order.begin();
  while (it != rx.out_of_order.end() && it->first == rx.next_expected) {
    st.inner_inbox.push_back(Delivery{d.from, std::move(it->second)});
    ++rx.next_expected;
    it = rx.out_of_order.erase(it);
  }
  (void)node;
}

// Rounds the link needs just to push every outstanding word out, assuming
// it transmits nothing else. Frames queue behind the bandwidth cap, so a
// timeout that ignores this serialization delay fires spuriously on any
// backlog, and go-back-N then *adds* traffic to an already congested link.
std::uint64_t ReliableProtocol::drain_rounds(const NodeCtx& node,
                                             const LinkTx& tx) {
  const auto bw = static_cast<std::uint64_t>(node.bandwidth_words());
  return (tx.unacked_words + bw - 1) / bw;
}

void ReliableProtocol::arm_timer(NodeCtx& node, LinkTx& tx) {
  if (tx.timer_armed) return;
  tx.timer_armed = true;
  tx.fire_round = node.round() + tx.rto + drain_rounds(node, tx);
  node.wake_at(tx.fire_round);
}

void ReliableProtocol::service_timers(NodeCtx& node, NodeState& st) {
  for (std::size_t j = 0; j < st.tx.size(); ++j) {
    LinkTx& tx = st.tx[j];
    if (!tx.timer_armed || node.round() < tx.fire_round) continue;
    tx.timer_armed = false;
    if (tx.unacked.empty()) continue;  // everything acked; timer was stale
    // If the oldest frame was (re)sent after the timer was armed, or the
    // link is still draining backlog, the timer is early, not the link
    // silent: re-arm for the frame's own deadline.
    const std::uint64_t due =
        tx.unacked.front().sent_round + tx.rto + drain_rounds(node, tx);
    if (node.round() < due) {
      tx.timer_armed = true;
      tx.fire_round = due;
      node.wake_at(due);
      continue;
    }
    if (++tx.retries > cfg_.max_retries) {
      tx.dead = true;
      tx.unacked.clear();
      tx.unacked_words = 0;
      ++st.dead_links;
      continue;
    }
    // Timeout: retransmit only the frame the cumulative ack is stuck on.
    // The receiver buffers out-of-order frames (engine links are priority
    // queues, so later low-priority-value sends legally overtake the head),
    // which makes single-frame repair sufficient - go-back-N would resend
    // frames the peer already holds every time the head is merely overtaken.
    Outstanding& o = tx.unacked.front();
    o.sent_round = node.round();
    st.retransmitted_words += o.framed.size();
    ++st.retransmitted_messages;
    if (trace_capture_) {
      st.trace_buf.push_back(TraceEvent{0, node.round(), node.id(),
                                        st.nbrs[j], o.framed.size(),
                                        TraceEventKind::kRetransmit, {}});
    }
    node.send(st.nbrs[j], o.framed, o.priority);
    tx.rto = std::min(tx.rto * 2, cfg_.max_timeout_rounds);
    arm_timer(node, tx);
  }
}

void ReliableProtocol::round(NodeCtx& node) {
  NodeState& st = state_of(node);
  st.inner_inbox.clear();
  for (const Delivery& d : node.inbox()) {
    const int j = nbr_index(st, d.from);
    if (is_ack(d.msg[0])) {
      handle_ack(st.tx[static_cast<std::size_t>(j)], seq_of(d.msg[0]));
    } else {
      accept_data(node, st, j, d);
    }
  }
  // Step the protocol above. It may see an empty inbox when only transport
  // traffic (acks, duplicates) or a retransmission timer woke this node -
  // a spurious invocation the Protocol contract already requires tolerating.
  st.raw = &node;
  NodeCtx layered = node.layered(&st.inner_inbox, this);
  inner_.round(layered);
  st.raw = nullptr;
  // Cumulative acks for every link that saw data this round.
  for (std::size_t j = 0; j < st.rx.size(); ++j) {
    LinkRx& rx = st.rx[j];
    if (!rx.ack_due) continue;
    rx.ack_due = false;
    ++st.acks_sent;
    if (trace_capture_) {
      st.trace_buf.push_back(TraceEvent{0, node.round(), node.id(),
                                        st.nbrs[j], 1, TraceEventKind::kAck,
                                        {}});
    }
    node.send(st.nbrs[j], Message{ack_header(rx.next_expected - 1)}, kAckPriority);
  }
  service_timers(node, st);
}

void ReliableProtocol::drain_trace_events(std::span<const NodeId> order,
                                          std::uint64_t run, Trace& trace) {
  if (!trace_capture_ || state_.empty()) return;
  for (NodeId v : order) {
    NodeState& st = state_[static_cast<std::size_t>(v)];
    for (TraceEvent& e : st.trace_buf) {
      e.run = run;
      trace.record(e);
    }
    st.trace_buf.clear();
  }
}

std::uint64_t ReliableProtocol::retransmitted_words() const {
  std::uint64_t sum = 0;
  for (const NodeState& st : state_) sum += st.retransmitted_words;
  return sum;
}

std::uint64_t ReliableProtocol::retransmitted_messages() const {
  std::uint64_t sum = 0;
  for (const NodeState& st : state_) sum += st.retransmitted_messages;
  return sum;
}

std::uint64_t ReliableProtocol::acks_sent() const {
  std::uint64_t sum = 0;
  for (const NodeState& st : state_) sum += st.acks_sent;
  return sum;
}

std::uint64_t ReliableProtocol::dead_links() const {
  std::uint64_t sum = 0;
  for (const NodeState& st : state_) sum += st.dead_links;
  return sum;
}

}  // namespace mwc::congest
