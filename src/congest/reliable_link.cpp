#include "congest/reliable_link.h"

#include <algorithm>
#include <limits>

#include "support/check.h"

namespace mwc::congest {

namespace {

// Header word layout (see reliable_link.h): bit 63 = ack flag, bits 62..55
// sender incarnation, bits 54..47 receiver-view incarnation, bits 46..0
// sequence number (data) or cumulative highest-in-order seq (ack).
constexpr Word kAckBit = Word{1} << 63;
constexpr int kSeqBits = 47;
constexpr Word kSeqMask = (Word{1} << kSeqBits) - 1;
constexpr std::uint32_t kIncMask = 0xFF;

constexpr Word make_header(bool ack, std::uint32_t sender_inc,
                           std::uint32_t receiver_view, std::uint64_t seq) {
  return (ack ? kAckBit : Word{0}) |
         (static_cast<Word>(sender_inc & kIncMask) << 55) |
         (static_cast<Word>(receiver_view & kIncMask) << 47) |
         (seq & kSeqMask);
}
constexpr bool is_ack(Word header) { return (header & kAckBit) != 0; }
constexpr std::uint32_t sender_inc_of(Word header) {
  return static_cast<std::uint32_t>(header >> 55) & kIncMask;
}
constexpr std::uint32_t receiver_view_of(Word header) {
  return static_cast<std::uint32_t>(header >> 47) & kIncMask;
}
constexpr std::uint64_t seq_of(Word header) { return header & kSeqMask; }

// Frame checksum: an FNV-style mix over every word except the checksum
// slot (index 1), seeded with the frame length. Verified before a single
// header bit is trusted, so corruption can never masquerade as an ack or
// confuse the session logic. 64 bits of mixing against a seeded random
// fault injector - not a cryptographic MAC.
Word frame_checksum(const Message& framed) {
  Word h = 0x9E3779B97F4A7C15ull ^ framed.size();
  for (std::uint32_t i = 0; i < framed.size(); ++i) {
    if (i == 1) continue;
    h ^= framed[i];
    h *= 0x00000100000001B3ull;
    h ^= h >> 29;
  }
  return h;
}

// Acks jump every queue: a short ack delayed behind bulk data would push
// every retransmission timer toward spurious firing.
constexpr std::int64_t kAckPriority = std::numeric_limits<std::int64_t>::min();

// Frame words before the payload: [header][checksum].
constexpr std::uint32_t kFrameOverhead = 2;

Message deframe(const Message& framed) {
  Message payload;
  for (std::uint32_t i = kFrameOverhead; i < framed.size(); ++i) {
    payload.push(framed[i]);
  }
  return payload;
}

}  // namespace

ReliableProtocol::ReliableProtocol(Protocol& inner, ReliableConfig cfg)
    : inner_(inner), cfg_(cfg) {
  MWC_CHECK(cfg_.base_timeout_rounds >= 1);
  MWC_CHECK(cfg_.max_timeout_rounds >= cfg_.base_timeout_rounds);
  MWC_CHECK(cfg_.max_retries >= 1);
}

ReliableProtocol::NodeState& ReliableProtocol::state_of(NodeCtx& node) {
  // Distinct nodes may be stepped concurrently: size the vector exactly once,
  // then each node initializes and mutates only its own element.
  std::call_once(state_once_,
                 [&] { state_.resize(static_cast<std::size_t>(node.n())); });
  NodeState& st = state_[static_cast<std::size_t>(node.id())];
  if (st.nbrs.empty()) {
    auto nbrs = node.comm_neighbors();
    st.nbrs.assign(nbrs.begin(), nbrs.end());
    st.tx.resize(st.nbrs.size());
    st.rx.resize(st.nbrs.size());
    for (LinkTx& tx : st.tx) tx.rto = cfg_.base_timeout_rounds;
  }
  return st;
}

int ReliableProtocol::nbr_index(const NodeState& st, NodeId u) const {
  auto it = std::lower_bound(st.nbrs.begin(), st.nbrs.end(), u);
  MWC_CHECK_MSG(it != st.nbrs.end() && *it == u,
                "reliable frame from a non-neighbor");
  return static_cast<int>(it - st.nbrs.begin());
}

void ReliableProtocol::begin(NodeCtx& node) {
  NodeState& st = state_of(node);
  st.inner_inbox.clear();
  st.raw = &node;
  NodeCtx layered = node.layered(&st.inner_inbox, this);
  inner_.begin(layered);
  st.raw = nullptr;
}

void ReliableProtocol::on_restart(NodeCtx& node) {
  NodeState& st = state_of(node);
  // The incarnation bump is the only thing that survives the wipe.
  ++st.incarnation;
  MWC_CHECK_MSG(st.incarnation <= kIncMask,
                "too many restarts of one node (8-bit epoch)");
  for (LinkTx& tx : st.tx) {
    tx = LinkTx{};
    tx.rto = cfg_.base_timeout_rounds;
  }
  for (LinkRx& rx : st.rx) rx = LinkRx{};
  st.inner_inbox.clear();
  st.raw = &node;
  NodeCtx layered = node.layered(&st.inner_inbox, this);
  inner_.on_restart(layered);
  st.raw = nullptr;
}

void ReliableProtocol::on_send(NodeId from, NodeId neighbor, Message msg,
                               std::int64_t priority) {
  NodeState& st = state_[static_cast<std::size_t>(from)];
  MWC_CHECK_MSG(st.raw != nullptr, "on_send outside a protocol step");
  LinkTx& tx = st.tx[static_cast<std::size_t>(nbr_index(st, neighbor))];
  if (tx.dead) return;  // peer declared dead; traffic abandoned
  Message framed;
  framed.push(
      make_header(false, st.incarnation, tx.peer_view, tx.next_seq));
  framed.push(0);  // checksum slot, patched once the frame is complete
  for (std::uint32_t i = 0; i < msg.size(); ++i) framed.push(msg[i]);
  framed.set(1, frame_checksum(framed));
  tx.unacked.push_back(Outstanding{tx.next_seq, st.raw->round(), priority, framed});
  tx.unacked_words += framed.size();
  ++tx.next_seq;
  st.raw->send(neighbor, std::move(framed), priority);
  arm_timer(*st.raw, tx);
}

void ReliableProtocol::note_peer_incarnation(NodeState& st, int j,
                                             std::uint32_t inc) {
  LinkTx& tx = st.tx[static_cast<std::size_t>(j)];
  if (inc > (tx.peer_view & kIncMask)) {
    // The peer restarted: its pre-crash receive state is gone, so every
    // outstanding frame of the old session is undeliverable. Abandon them
    // and open a fresh session at seq 1 - and revive the link if the
    // silence of the crashed peer had it declared dead.
    tx.peer_view = inc;
    tx.unacked.clear();
    tx.unacked_words = 0;
    tx.next_seq = 1;
    tx.retries = 0;
    tx.rto = cfg_.base_timeout_rounds;
    tx.dead = false;
  }
  LinkRx& rx = st.rx[static_cast<std::size_t>(j)];
  if (inc > (rx.peer_inc & kIncMask)) {
    // The peer's send stream restarted at seq 1 with its new incarnation.
    rx.peer_inc = inc;
    rx.next_expected = 1;
    rx.out_of_order.clear();
  }
}

void ReliableProtocol::handle_ack(NodeState& st, int j, Word header) {
  // An ack names the incarnation of the stream it acknowledges; acks for a
  // previous life of this node must not acknowledge the new session.
  if (receiver_view_of(header) != (st.incarnation & kIncMask)) return;
  LinkTx& tx = st.tx[static_cast<std::size_t>(j)];
  const std::uint64_t acked = seq_of(header);
  bool progress = false;
  while (!tx.unacked.empty() && tx.unacked.front().seq <= acked) {
    tx.unacked_words -= tx.unacked.front().framed.size();
    tx.unacked.pop_front();
    progress = true;
  }
  if (progress) {
    tx.retries = 0;
    tx.rto = cfg_.base_timeout_rounds;
    // A stale timer may still be armed; it fires spuriously and disarms.
  }
}

void ReliableProtocol::accept_data(NodeState& st, int j, const Delivery& d) {
  LinkRx& rx = st.rx[static_cast<std::size_t>(j)];
  const Word header = d.msg[0];
  rx.ack_due = true;  // every data frame (duplicates included) re-acks
  if (receiver_view_of(header) != (st.incarnation & kIncMask)) {
    // Addressed to a previous incarnation of this node - the sender has not
    // heard of the restart yet. Drop the stale-session payload, but let the
    // due ack (carrying our new incarnation) teach the sender to resync.
    return;
  }
  if (sender_inc_of(header) != (rx.peer_inc & kIncMask)) {
    // A leftover frame of the peer's pre-restart session still in flight
    // after note_peer_incarnation moved this link forward; stale, ignore.
    return;
  }
  const std::uint64_t seq = seq_of(header);
  if (seq < rx.next_expected) return;  // duplicate of a delivered frame
  if (seq > rx.next_expected) {        // gap: a predecessor was dropped
    rx.out_of_order.emplace(seq, deframe(d.msg));
    return;
  }
  st.inner_inbox.push_back(Delivery{d.from, deframe(d.msg)});
  ++rx.next_expected;
  auto it = rx.out_of_order.begin();
  while (it != rx.out_of_order.end() && it->first == rx.next_expected) {
    st.inner_inbox.push_back(Delivery{d.from, std::move(it->second)});
    ++rx.next_expected;
    it = rx.out_of_order.erase(it);
  }
}

// Rounds the link needs just to push every outstanding word out, assuming
// it transmits nothing else. Frames queue behind the bandwidth cap, so a
// timeout that ignores this serialization delay fires spuriously on any
// backlog, and go-back-N then *adds* traffic to an already congested link.
std::uint64_t ReliableProtocol::drain_rounds(const NodeCtx& node,
                                             const LinkTx& tx) {
  const auto bw = static_cast<std::uint64_t>(node.bandwidth_words());
  return (tx.unacked_words + bw - 1) / bw;
}

void ReliableProtocol::arm_timer(NodeCtx& node, LinkTx& tx) {
  if (tx.timer_armed) return;
  tx.timer_armed = true;
  tx.fire_round = node.round() + tx.rto + drain_rounds(node, tx);
  node.wake_at(tx.fire_round);
}

void ReliableProtocol::service_timers(NodeCtx& node, NodeState& st) {
  for (std::size_t j = 0; j < st.tx.size(); ++j) {
    LinkTx& tx = st.tx[j];
    if (!tx.timer_armed || node.round() < tx.fire_round) continue;
    tx.timer_armed = false;
    if (tx.unacked.empty()) continue;  // everything acked; timer was stale
    // If the oldest frame was (re)sent after the timer was armed, or the
    // link is still draining backlog, the timer is early, not the link
    // silent: re-arm for the frame's own deadline.
    const std::uint64_t due =
        tx.unacked.front().sent_round + tx.rto + drain_rounds(node, tx);
    if (node.round() < due) {
      tx.timer_armed = true;
      tx.fire_round = due;
      node.wake_at(due);
      continue;
    }
    if (++tx.retries > cfg_.max_retries) {
      tx.dead = true;
      tx.unacked.clear();
      tx.unacked_words = 0;
      ++st.dead_links;
      continue;
    }
    // Timeout: retransmit only the frame the cumulative ack is stuck on.
    // The receiver buffers out-of-order frames (engine links are priority
    // queues, so later low-priority-value sends legally overtake the head),
    // which makes single-frame repair sufficient - go-back-N would resend
    // frames the peer already holds every time the head is merely overtaken.
    Outstanding& o = tx.unacked.front();
    o.sent_round = node.round();
    st.retransmitted_words += o.framed.size();
    ++st.retransmitted_messages;
    if (trace_capture_) {
      st.trace_buf.push_back(TraceEvent{0, node.round(), node.id(),
                                        st.nbrs[j], o.framed.size(),
                                        TraceEventKind::kRetransmit, {}});
    }
    node.send(st.nbrs[j], o.framed, o.priority);
    tx.rto = std::min(tx.rto * 2, cfg_.max_timeout_rounds);
    arm_timer(node, tx);
  }
}

void ReliableProtocol::round(NodeCtx& node) {
  NodeState& st = state_of(node);
  st.inner_inbox.clear();
  for (const Delivery& d : node.inbox()) {
    const int j = nbr_index(st, d.from);
    // Checksum first: until the frame verifies, not a single header bit is
    // trusted (a flipped ack bit or seq field must not reach the session
    // logic). Rejected frames are repaired by the sender's timeout.
    if (d.msg.size() < kFrameOverhead || frame_checksum(d.msg) != d.msg[1]) {
      ++st.checksum_rejects;
      if (trace_capture_) {
        st.trace_buf.push_back(TraceEvent{0, node.round(), d.from, node.id(),
                                          d.msg.size(),
                                          TraceEventKind::kChecksumReject,
                                          {}});
      }
      continue;
    }
    const Word header = d.msg[0];
    note_peer_incarnation(st, j, sender_inc_of(header));
    if (is_ack(header)) {
      handle_ack(st, j, header);
    } else {
      accept_data(st, j, d);
    }
  }
  // Step the protocol above. It may see an empty inbox when only transport
  // traffic (acks, duplicates) or a retransmission timer woke this node -
  // a spurious invocation the Protocol contract already requires tolerating.
  st.raw = &node;
  NodeCtx layered = node.layered(&st.inner_inbox, this);
  inner_.round(layered);
  st.raw = nullptr;
  // Cumulative acks for every link that saw traffic this round.
  for (std::size_t j = 0; j < st.rx.size(); ++j) {
    LinkRx& rx = st.rx[j];
    if (!rx.ack_due) continue;
    rx.ack_due = false;
    ++st.acks_sent;
    Message ack;
    ack.push(make_header(true, st.incarnation, rx.peer_inc,
                         rx.next_expected - 1));
    ack.push(0);
    ack.set(1, frame_checksum(ack));
    if (trace_capture_) {
      st.trace_buf.push_back(TraceEvent{0, node.round(), node.id(),
                                        st.nbrs[j], ack.size(),
                                        TraceEventKind::kAck, {}});
    }
    node.send(st.nbrs[j], std::move(ack), kAckPriority);
  }
  service_timers(node, st);
}

void ReliableProtocol::drain_trace_events(std::span<const NodeId> order,
                                          std::uint64_t run, Trace& trace) {
  if (!trace_capture_ || state_.empty()) return;
  for (NodeId v : order) {
    NodeState& st = state_[static_cast<std::size_t>(v)];
    for (TraceEvent& e : st.trace_buf) {
      e.run = run;
      trace.record(e);
    }
    st.trace_buf.clear();
  }
}

std::uint64_t ReliableProtocol::retransmitted_words() const {
  std::uint64_t sum = 0;
  for (const NodeState& st : state_) sum += st.retransmitted_words;
  return sum;
}

std::uint64_t ReliableProtocol::retransmitted_messages() const {
  std::uint64_t sum = 0;
  for (const NodeState& st : state_) sum += st.retransmitted_messages;
  return sum;
}

std::uint64_t ReliableProtocol::acks_sent() const {
  std::uint64_t sum = 0;
  for (const NodeState& st : state_) sum += st.acks_sent;
  return sum;
}

std::uint64_t ReliableProtocol::checksum_rejects() const {
  std::uint64_t sum = 0;
  for (const NodeState& st : state_) sum += st.checksum_rejects;
  return sum;
}

std::uint64_t ReliableProtocol::dead_links() const {
  std::uint64_t sum = 0;
  for (const NodeState& st : state_) sum += st.dead_links;
  return sum;
}

}  // namespace mwc::congest
