// Reliable transport over lossy CONGEST links.
//
// ReliableProtocol slots between the engine and any Protocol, adding an
// ARQ layer per link direction: every data message is framed with a header
// word (sequence number + sender/receiver incarnations) and a checksum
// word, receivers reply with cumulative acks and reassemble per-sender FIFO
// order from the sequence numbers, and senders retransmit unacked frames on
// a timeout with exponential backoff. The protocol above sees exactly the
// NodeCtx API it always saw - deframed messages in per-link order, its own
// sends silently framed - so every algorithm in src/mwc/ and src/ksssp/
// runs unmodified over links that drop or corrupt messages (correct
// answers, measurable round overhead).
//
// Frame format (see reliable_link.cpp for the bit layout):
//
//   data frame:  [header][checksum][payload words...]
//   ack frame:   [header][checksum]
//   header:      bit 63 = ack flag
//                bits 62..55 = sender incarnation (epoch, 8 bits)
//                bits 54..47 = receiver incarnation as the sender believes
//                              it (data) / incarnation of the peer whose
//                              stream is being acked (ack)
//                bits 46..0  = sequence number / cumulative acked seq
//   checksum:    mixes every frame word except the checksum slot itself;
//                verified before any header bit is trusted, so a corrupted
//                ack can never falsely acknowledge data.
//
// Corruption masking: a frame whose checksum does not verify is counted
// (RunStats::checksum_rejects) and dropped; the sender's retransmission
// timer repairs it like a plain loss. Detection is probabilistic in
// principle (a 64-bit mix), cryptographically nothing - the adversary here
// is the seeded fault injector, not a malicious forger.
//
// Crash-recovery resync: each node keeps an 8-bit incarnation number -
// modeled as the node's one word of stable storage - bumped by on_restart.
// Frames carry both the sender's incarnation and its view of the
// receiver's. A restarted receiver drops frames addressed to its previous
// incarnation but still acks them with its new incarnation; the sender
// learns the new epoch from that ack (or from any frame the restarted node
// sends), abandons the outstanding pre-crash traffic, and restarts the
// link session at sequence 1. In-flight data of the pre-crash session is
// therefore NOT masked - it is abandoned, and the crash shows up in the
// run's fault ledger - but all post-resync traffic is exactly-once in
// order again.
//
// What survives, what does not: drops, corruption, and stalls are fully
// masked (eventual exactly-once in-order delivery per link). Crash-stopped
// peers are not masked - after max_retries consecutive timeouts a link is
// declared dead and its outstanding traffic abandoned, keeping runs finite
// (a later recovery of the peer revives the link: the resync handshake
// clears the dead flag).
//
// Cost model honesty: frames, acks, and retransmissions are real messages
// through the engine's bandwidth-enforced links, so the transport's
// overhead shows up in RunStats.rounds/words exactly like any protocol
// traffic; retransmitted words are additionally tallied in
// RunStats.retransmitted_words.
//
// The engine wraps protocols automatically when
// NetworkConfig::reliable_transport is set; this header is only needed to
// wrap by hand or to tune ReliableConfig (faults.h).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "congest/faults.h"
#include "congest/protocol.h"
#include "congest/trace.h"

namespace mwc::congest {

class ReliableProtocol final : public Protocol, public SendInterceptor {
 public:
  explicit ReliableProtocol(Protocol& inner, ReliableConfig cfg = ReliableConfig{});

  void begin(NodeCtx& node) override;
  void round(NodeCtx& node) override;
  // Crash-recovery: wipes the node's volatile transport state, bumps its
  // incarnation (the one stable-storage word), and re-initializes the inner
  // protocol through its own on_restart.
  void on_restart(NodeCtx& node) override;

  // SendInterceptor: frames and tracks a send of the inner protocol.
  void on_send(NodeId from, NodeId neighbor, Message msg,
               std::int64_t priority) override;

  // Transport counters, summed over nodes (kept per node so concurrent
  // invocations of distinct nodes never contend; see runner.h).
  std::uint64_t retransmitted_words() const;
  std::uint64_t retransmitted_messages() const;
  std::uint64_t acks_sent() const;
  // Frames rejected because their checksum did not verify (corruption).
  std::uint64_t checksum_rejects() const;
  // Links abandoned after max_retries consecutive timeouts (dead peer).
  // A resync with a recovered peer revives the link but the abandonment
  // still counts - in-order delivery was interrupted.
  std::uint64_t dead_links() const;

  // Trace capture of transport events (kRetransmit / kAck /
  // kChecksumReject). Events are buffered in the acting node's own
  // NodeState - node steps may run on worker threads - and drained by the
  // Runner at the round barrier in invocation order, so the resulting
  // stream is deterministic.
  void set_trace_capture(bool on) { trace_capture_ = on; }
  // Records each buffered event (with `run` filled in) into `trace`, in
  // `order` node order, and clears the buffers.
  void drain_trace_events(std::span<const NodeId> order, std::uint64_t run,
                          Trace& trace);

 private:
  struct Outstanding {
    std::uint64_t seq = 0;
    std::uint64_t sent_round = 0;  // round of the last (re)transmission
    std::int64_t priority = 0;
    Message framed;
  };
  // Sender half of one link direction (this node -> neighbor).
  struct LinkTx {
    std::uint64_t next_seq = 1;
    // Highest incarnation of the peer this sender has seen; stamped into
    // every data frame so the peer can reject frames addressed to a
    // previous life of itself.
    std::uint32_t peer_view = 0;
    std::deque<Outstanding> unacked;
    std::uint64_t unacked_words = 0;  // sum of framed sizes in `unacked`
    std::uint64_t rto = 0;         // current retransmission timeout
    std::uint64_t fire_round = 0;  // when the armed timer is due
    bool timer_armed = false;
    int retries = 0;               // consecutive timeouts without progress
    bool dead = false;
  };
  // Receiver half of one link direction (neighbor -> this node).
  struct LinkRx {
    std::uint64_t next_expected = 1;
    // Incarnation of the peer whose stream next_expected refers to; a
    // higher incarnation in a frame restarts the session at seq 1.
    std::uint32_t peer_inc = 0;
    std::map<std::uint64_t, Message> out_of_order;  // seq -> deframed payload
    bool ack_due = false;
  };
  // Everything one node's transport half needs, including its scratch and
  // counters: the engine may step distinct nodes concurrently, so nothing a
  // step mutates lives outside this struct.
  struct NodeState {
    std::vector<NodeId> nbrs;  // sorted copy of comm_neighbors
    std::vector<LinkTx> tx;
    std::vector<LinkRx> rx;
    // This node's epoch. Survives on_restart (the one word of stable
    // storage the recovery model grants a node); everything else here is
    // volatile and wiped.
    std::uint32_t incarnation = 0;
    // The inner protocol's synthetic (deframed) inbox for the current step.
    std::vector<Delivery> inner_inbox;
    // Raw (un-hooked) context while this node is being stepped; on_send uses
    // it to reach the real links.
    NodeCtx* raw = nullptr;
    std::uint64_t retransmitted_words = 0;
    std::uint64_t retransmitted_messages = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t checksum_rejects = 0;
    std::uint64_t dead_links = 0;
    // Buffered transport trace events of this node (trace capture only;
    // `run` is filled at drain time by the Runner).
    std::vector<TraceEvent> trace_buf;
  };

  NodeState& state_of(NodeCtx& node);
  int nbr_index(const NodeState& st, NodeId u) const;
  // Reacts to the sender incarnation seen in any checksum-valid frame from
  // neighbor j: a bump restarts both the tx session toward that peer (the
  // pre-restart traffic is undeliverable - abandon it, revive the link if
  // it was declared dead) and the rx session from it.
  void note_peer_incarnation(NodeState& st, int j, std::uint32_t inc);
  void handle_ack(NodeState& st, int j, Word header);
  void accept_data(NodeState& st, int j, const Delivery& d);
  void service_timers(NodeCtx& node, NodeState& st);
  void arm_timer(NodeCtx& node, LinkTx& tx);
  static std::uint64_t drain_rounds(const NodeCtx& node, const LinkTx& tx);

  Protocol& inner_;
  ReliableConfig cfg_;
  bool trace_capture_ = false;
  std::vector<NodeState> state_;
  // Sizes state_ exactly once even when begin() runs on several workers.
  std::once_flag state_once_;
};

}  // namespace mwc::congest
