#include "congest/runner.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <utility>

#include "congest/congestion.h"
#include "congest/metrics.h"
#include "congest/reliable_link.h"
#include "congest/thread_pool.h"
#include "support/check.h"

namespace mwc::congest {

namespace {
// Below these batch sizes the fork-join barrier costs more than it buys.
// Purely a performance knob: the parallel and sequential paths are
// bit-identical, so the threshold never changes results.
constexpr std::size_t kMinParallelNodes = 4;
constexpr std::size_t kMinParallelDirs = 8;
// Direction switch of the frontier path: when at least n/kDenseDivisor
// nodes are scheduled, dedup-and-order them with a bitmap scan over the
// node ids (bottom-up style) instead of sorting the sparse list (top-down
// style). Purely a wall-clock knob - both produce the identical list.
constexpr std::size_t kDenseDivisor = 8;
}  // namespace

// ---- NodeCtx ---------------------------------------------------------------

int NodeCtx::n() const { return runner_->net_.n(); }

std::uint64_t NodeCtx::round() const { return runner_->round_; }

int NodeCtx::bandwidth_words() const {
  return runner_->net_.config().bandwidth_words;
}

std::span<const Delivery> NodeCtx::inbox() const {
  if (inbox_override_ != nullptr) return *inbox_override_;
  return runner_->inbox_current_;
}

void NodeCtx::send(NodeId neighbor, Message msg, std::int64_t priority) {
  if (send_hook_ != nullptr) {
    send_hook_->on_send(id_, neighbor, std::move(msg), priority);
    return;
  }
  runner_->send(id_, neighbor, std::move(msg), priority);
}

void NodeCtx::send_word(NodeId neighbor, Word w, std::int64_t priority) {
  if (send_hook_ != nullptr) {
    send_hook_->on_send(id_, neighbor, Message{w}, priority);
    return;
  }
  runner_->enqueue_dir_word(runner_->net_.direction_index(id_, neighbor), w,
                            priority);
}

void NodeCtx::send_on(std::int32_t dir, Word w, std::int64_t priority) {
  MWC_DCHECK(runner_->net_.dirs_[static_cast<std::size_t>(dir)].from == id_);
  if (send_hook_ != nullptr) {
    // Hooked sends (layered transports, parallel emission buffers) keep the
    // Message-based interface; the neighbor comes from the direction table.
    send_hook_->on_send(id_, runner_->net_.direction_target(dir), Message{w},
                        priority);
    return;
  }
  runner_->enqueue_dir_word(dir, w, priority);
}

std::span<const std::int32_t> NodeCtx::out_arc_dirs() const {
  return runner_->net_.out_arc_dirs(id_);
}

std::span<const std::int32_t> NodeCtx::in_arc_dirs() const {
  return runner_->net_.in_arc_dirs(id_);
}

std::span<const std::int32_t> NodeCtx::comm_link_dirs() const {
  return runner_->net_.comm_link_dirs(id_);
}

void NodeCtx::wake_at(std::uint64_t r) {
  const std::uint64_t rr = std::max(r, runner_->round_ + 1);
  if (wake_sink_ != nullptr) {
    wake_sink_->push_back(rr);
    return;
  }
  runner_->wake_at(id_, rr);
}

void NodeCtx::wake_next() { wake_at(runner_->round_ + 1); }

support::Rng& NodeCtx::rng() {
  return runner_->node_rng_[static_cast<std::size_t>(id_)];
}

std::span<const graph::Arc> NodeCtx::out_arcs() const {
  return runner_->net_.problem_graph().out(id_);
}

std::span<const graph::Arc> NodeCtx::in_arcs() const {
  return runner_->net_.problem_graph().in(id_);
}

std::span<const NodeId> NodeCtx::comm_neighbors() const {
  return runner_->net_.comm_neighbors(id_);
}

bool NodeCtx::graph_is_directed() const {
  return runner_->net_.problem_graph().is_directed();
}

// ---- Runner ----------------------------------------------------------------

Runner::Runner(Network& net, Protocol& proto)
    : net_(net), proto_(proto),
      frontier_(net.config().settle_path == SettlePath::kFrontier),
      run_id_(net.run_counter_),
      dir_hot_(net.dirs_.size()),
      dir_cold_(net.dirs_.size()),
      inbox_next_(static_cast<std::size_t>(net.n())),
      schedule_rng_(0),
      crashed_(static_cast<std::size_t>(net.n()), false) {
  support::Rng run_rng = net.next_run_rng();
  node_rng_.reserve(static_cast<std::size_t>(net.n()));
  for (NodeId v = 0; v < net.n(); ++v) {
    node_rng_.push_back(run_rng.fork(static_cast<std::uint64_t>(v)));
    // Reserve-once inboxes: a node's per-round deliveries are bounded by its
    // comm degree in the common one-message-per-neighbor regime, so this
    // keeps steady-state rounds allocation-free (growth beyond is kept).
    inbox_next_[static_cast<std::size_t>(v)].reserve(
        net.comm_neighbors(v).size());
  }
  schedule_rng_ = run_rng.fork(~std::uint64_t{0});
  if (net.config().faults.any()) {
    std::vector<std::pair<NodeId, NodeId>> endpoints;
    endpoints.reserve(net.dirs_.size());
    for (const Network::Direction& d : net.dirs_) {
      endpoints.emplace_back(d.from, d.to);
    }
    // A fault stream of its own, forked like the node streams: the schedule
    // is a pure function of (master seed, run counter).
    injector_ = std::make_unique<FaultInjector>(
        net.config().faults, run_rng.fork(~std::uint64_t{0} - 1), net.n(),
        endpoints);
  }
  if (net.config().reliable_transport) {
    reliable_ = std::make_unique<ReliableProtocol>(proto_, net.config().reliable);
  }
  trace_ = net.trace_;
  if (reliable_ != nullptr && trace_ != nullptr &&
      (trace_->wants(TraceEventKind::kRetransmit) ||
       trace_->wants(TraceEventKind::kAck) ||
       trace_->wants(TraceEventKind::kChecksumReject))) {
    reliable_->set_trace_capture(true);
  }
  pool_ = net.thread_pool();
  metrics_ = net.metrics();
  if (metrics_ != nullptr) dir_words_.assign(net.dirs_.size(), 0);
  congestion_ = net.congestion();
}

Runner::~Runner() = default;

Protocol& Runner::active_proto() {
  return reliable_ != nullptr ? *reliable_ : proto_;
}

void Runner::send(NodeId from, NodeId to, Message msg, std::int64_t priority) {
  MWC_CHECK_MSG(msg.size() >= 1, "messages must carry at least one word");
  enqueue_dir(net_.direction_index(from, to), std::move(msg), priority);
}

void Runner::note_backlog(int dir_idx, DirHot& h, std::uint32_t words) {
  h.queued_words += words;
  if (h.queued_words > stats_.max_queue_words) {
    stats_.max_queue_words = h.queued_words;
    // A new run-wide backlog high-water mark. Recorded here because enqueues
    // always execute on the host thread (directly in sequential mode, at the
    // merge barrier in parallel mode), in the same order.
    if (trace_ != nullptr && trace_->wants(TraceEventKind::kQueuePeak)) {
      const Network::Direction& dir =
          net_.dirs_[static_cast<std::size_t>(dir_idx)];
      trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                static_cast<std::uint32_t>(h.queued_words),
                                TraceEventKind::kQueuePeak, {}});
    }
  }
}

void Runner::enqueue_dir(int dir_idx, Message msg, std::int64_t priority) {
  DirHot& h = dir_hot_[static_cast<std::size_t>(dir_idx)];
  note_backlog(dir_idx, h, msg.size());
  if (frontier_) {
    FqEntry e;
    e.priority = priority;
    e.seq = seq_++;
    e.size = msg.size();
    if (e.size == 1) {
      e.head = msg[0];
    } else {
      e.spill = alloc_spill(std::move(msg));
    }
    std::vector<FqEntry>& heap =
        dir_cold_[static_cast<std::size_t>(dir_idx)].fq_heap;
    fq_push(h.fq, heap, e);
    // Overflow high-water mark: the steady state (count <= 1) never enters.
    if (h.fq.count > 1 && heap.size() > fstats_.overflow_peak_entries) {
      fstats_.overflow_peak_entries = heap.size();
    }
  } else {
    dir_cold_[static_cast<std::size_t>(dir_idx)].queue.push(priority, seq_++,
                                                            std::move(msg));
  }
  activate_dir(dir_idx);
}

void Runner::enqueue_dir_word(int dir_idx, Word w, std::int64_t priority) {
  if (!frontier_) {
    enqueue_dir(dir_idx, Message{w}, priority);
    return;
  }
  DirHot& h = dir_hot_[static_cast<std::size_t>(dir_idx)];
  note_backlog(dir_idx, h, 1);
  FqEntry e;
  e.priority = priority;
  e.seq = seq_++;
  e.head = w;
  e.size = 1;
  // Steady state (queue depth <= 1) stays inside fq_push's inline-slot fast
  // path, which never dereferences the cold overflow heap.
  std::vector<FqEntry>& heap =
      dir_cold_[static_cast<std::size_t>(dir_idx)].fq_heap;
  fq_push(h.fq, heap, e);
  if (h.fq.count > 1 && heap.size() > fstats_.overflow_peak_entries) {
    fstats_.overflow_peak_entries = heap.size();
  }
  activate_dir(dir_idx);
}

std::uint32_t Runner::alloc_spill(Message msg) {
  std::uint32_t slot;
  if (spill_free_.empty()) {
    spill_.push_back(std::move(msg));
    slot = static_cast<std::uint32_t>(spill_.size() - 1);
  } else {
    slot = spill_free_.back();
    spill_free_.pop_back();
    spill_[slot] = std::move(msg);
  }
  // High-water mark of slots in use (both settle paths allocate through
  // here). A plain compare in the common case; the counter is a side channel
  // surfaced only through the opt-in congestion section (see frontier.h).
  const std::uint64_t in_use = spill_.size() - spill_free_.size();
  if (in_use > fstats_.spill_peak_slots) fstats_.spill_peak_slots = in_use;
  return slot;
}

Message Runner::take_spill(std::uint32_t slot) {
  spill_free_.push_back(slot);
  return std::move(spill_[slot]);
}

void Runner::free_spill(std::uint32_t slot) {
  spill_[slot] = Message{};
  spill_free_.push_back(slot);
}

void Runner::materialize_inbox(std::vector<PendingDelivery>& box,
                               std::vector<Delivery>& out,
                               std::vector<std::uint32_t>& freed) {
  out.clear();
  for (const PendingDelivery& pd : box) {
    Delivery& d = out.emplace_back();
    d.from = pd.from;
    if (pd.size == 1) {
      d.msg.push(pd.head);
    } else {
      // Moving distinct slots out of spill_ is shard-safe (each slot is
      // named by exactly one pending entry, and the vector itself does not
      // grow during the invocation phase); only the freelist push needs the
      // host thread, hence the `freed` indirection.
      const auto slot = static_cast<std::uint32_t>(pd.head);
      d.msg = std::move(spill_[slot]);
      freed.push_back(slot);
    }
  }
  box.clear();
}

void Runner::discard_pending(std::vector<PendingDelivery>& box) {
  for (const PendingDelivery& pd : box) {
    if (pd.size > 1) free_spill(static_cast<std::uint32_t>(pd.head));
  }
  box.clear();
}

void Runner::wake_at(NodeId node, std::uint64_t r) { wakes_.emplace(r, node); }

void Runner::activate_dir(int dir_idx) {
  DirHot& h = dir_hot_[static_cast<std::size_t>(dir_idx)];
  if (!h.active) {
    h.active = true;
    active_dirs_.push_back(dir_idx);
  }
}

void Runner::apply_due_crashes() {
  if (injector_ == nullptr) return;
  auto crashes = injector_->crashes();
  while (next_crash_ < crashes.size() && crashes[next_crash_].round <= round_) {
    const NodeId v = crashes[next_crash_++].node;
    if (!crashed_[static_cast<std::size_t>(v)]) crash_node(v);
  }
}

void Runner::apply_due_recoveries() {
  restarted_.clear();
  if (injector_ == nullptr) return;
  auto recoveries = injector_->recoveries();
  while (next_recover_ < recoveries.size() &&
         recoveries[next_recover_].round <= round_) {
    const NodeId v = recoveries[next_recover_++].node;
    if (!crashed_[static_cast<std::size_t>(v)]) continue;
    crashed_[static_cast<std::size_t>(v)] = false;
    ++stats_.recoveries;
    restarted_.push_back(v);
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{run_id_, round_, v, graph::kNoNode, 0,
                                TraceEventKind::kRecover, {}});
    }
  }
}

std::uint64_t Runner::next_recovery_round() const {
  if (injector_ == nullptr) return ~std::uint64_t{0};
  auto recoveries = injector_->recoveries();
  if (next_recover_ >= recoveries.size()) return ~std::uint64_t{0};
  return recoveries[next_recover_].round;
}

void Runner::crash_node(NodeId v) {
  crashed_[static_cast<std::size_t>(v)] = true;
  any_crash_ = true;
  ++run_crashes_;
  ++stats_.crashes;
  // The node falls silent: queued and in-flight outbound traffic vanishes,
  // and anything still addressed to it will be discarded on arrival.
  const std::int32_t b = net_.nbr_offset_[static_cast<std::size_t>(v)];
  const std::int32_t e = net_.nbr_offset_[static_cast<std::size_t>(v) + 1];
  for (std::int32_t i = b; i < e; ++i) {
    const auto dir = static_cast<std::size_t>(
        net_.nbr_dir_[static_cast<std::size_t>(i)]);
    DirHot& h = dir_hot_[dir];
    DirCold& c = dir_cold_[dir];
    if (h.transmitting) {
      ++stats_.dropped_messages;
      stats_.dropped_words +=
          (frontier_ ? c.fcur.size : c.current.size()) - h.words_done;
      if (frontier_ && c.fcur.spill != kNoSpill) free_spill(c.fcur.spill);
      h.transmitting = false;
    }
    if (frontier_) {
      fq_for_each(h.fq, c.fq_heap, [&](const FqEntry& fe) {
        ++stats_.dropped_messages;
        stats_.dropped_words += fe.size;
        if (fe.spill != kNoSpill) free_spill(fe.spill);
      });
      fq_clear(h.fq, c.fq_heap);
    } else {
      for (const QueuedMsg& qm : c.queue.entries()) {
        ++stats_.dropped_messages;
        stats_.dropped_words += qm.msg.size();
      }
      c.queue.clear();
    }
    h.queued_words = 0;
  }
  discard_pending(inbox_next_[static_cast<std::size_t>(v)]);
  if (trace_ != nullptr) {
    trace_->record(TraceEvent{run_id_, round_, v, graph::kNoNode, 0,
                              TraceEventKind::kCrash, {}});
  }
}

// ---- trace hooks -----------------------------------------------------------

void Runner::trace_round_begin() {
  if (trace_ == nullptr || !trace_->wants(TraceEventKind::kRoundBegin)) return;
  trace_->record(TraceEvent{run_id_, round_, graph::kNoNode, graph::kNoNode,
                            static_cast<std::uint32_t>(invocations_.size()),
                            TraceEventKind::kRoundBegin, {}});
}

void Runner::trace_round_end(std::uint64_t words_before) {
  if (trace_ == nullptr || !trace_->wants(TraceEventKind::kRoundEnd)) return;
  trace_->record(TraceEvent{run_id_, round_, graph::kNoNode, graph::kNoNode,
                            static_cast<std::uint32_t>(stats_.words -
                                                       words_before),
                            TraceEventKind::kRoundEnd, {}});
}

void Runner::congestion_round_end(std::uint64_t words_before) {
  if (congestion_ == nullptr) return;
  // Post-transmit backlog: what is still queued across the directions that
  // survived the settle step (active_dirs_ was swapped to still-active).
  std::uint64_t backlog = 0;
  for (int d : active_dirs_) {
    backlog += dir_hot_[static_cast<std::size_t>(d)].queued_words;
  }
  congestion_->on_round(run_id_, round_,
                        static_cast<std::uint64_t>(invocations_.size()),
                        stats_.words - words_before, backlog);
}

void Runner::drain_transport_trace() {
  if (reliable_ == nullptr || trace_ == nullptr) return;
  reliable_->drain_trace_events(invocations_, run_id_, *trace_);
}

void Runner::record_wall_spans(const char* region) {
  for (std::size_t lane = 0; lane < worker_timings_.size(); ++lane) {
    const ThreadPool::WorkerTiming& t = worker_timings_[lane];
    if (!t.active) continue;
    WallSpan span;
    span.name = region;
    span.run = run_id_;
    span.round = round_;
    span.worker = static_cast<int>(lane);
    span.shards = t.shards;
    span.start_us = trace_->to_us(t.start);
    span.dur_us =
        std::chrono::duration<double, std::micro>(t.end - t.start).count();
    trace_->record_wall(std::move(span));
  }
}

// ---- node invocation phase -------------------------------------------------

void Runner::NodeEmission::on_send(NodeId from, NodeId neighbor, Message msg,
                                   std::int64_t priority) {
  MWC_CHECK_MSG(msg.size() >= 1, "messages must carry at least one word");
  // direction_index is read-only lookup - safe from worker threads; resolving
  // it here keeps the sequential merge a pure replay.
  sends.push_back(BufferedSend{runner->net_.direction_index(from, neighbor),
                               priority, std::move(msg)});
}

void Runner::invoke_nodes(Protocol& proto, bool first_round) {
  if (frontier_) fstats_.frontier_nodes += invocations_.size();
  if (pool_ == nullptr || invocations_.size() < kMinParallelNodes) {
    // Sequential: invoke in order, effects land on engine state directly.
    // The compact pending entries become real Delivery objects only here,
    // in one reused scratch that stays cache-hot across invocations.
    for (NodeId v : invocations_) {
      materialize_inbox(inbox_next_[static_cast<std::size_t>(v)],
                        inbox_scratch_, spill_free_);
      NodeCtx ctx(*this, v);
      ctx.inbox_override_ = &inbox_scratch_;
      if (first_round) {
        proto.begin(ctx);
      } else {
        proto.round(ctx);
      }
    }
    return;
  }

  // Parallel: every invocation writes its sends and wake-ups into its own
  // NodeEmission slot; shared engine state is untouched until the merge.
  if (emissions_.size() < invocations_.size()) {
    emissions_.resize(invocations_.size());
  }
  const bool wall = wall_clock_tracing();
  pool_->run(static_cast<int>(invocations_.size()), [&](int i) {
    const NodeId v = invocations_[static_cast<std::size_t>(i)];
    NodeEmission& em = emissions_[static_cast<std::size_t>(i)];
    em.runner = this;
    em.node = v;
    em.sends.clear();
    em.wakes.clear();
    em.freed_spills.clear();
    // Each node's inbox slot is exclusively this shard's (invocations_ is
    // deduplicated), so materializing it here is race-free; the vacated
    // spill slots ride em.freed_spills to the merge barrier. Clearing the
    // scratch after the invocation recycles the delivered messages into
    // this worker's word pool.
    static thread_local std::vector<Delivery> inbox;
    materialize_inbox(inbox_next_[static_cast<std::size_t>(v)], inbox,
                      em.freed_spills);
    NodeCtx ctx(*this, v);
    ctx.inbox_override_ = &inbox;
    ctx.send_hook_ = &em;
    ctx.wake_sink_ = &em.wakes;
    if (first_round) {
      proto.begin(ctx);
    } else {
      proto.round(ctx);
    }
    inbox.clear();
  }, wall ? &worker_timings_ : nullptr);
  if (wall) record_wall_spans("invoke");

  // Merge in invocation order: replaying buffered sends through enqueue_dir
  // assigns the exact seq_ numbers sequential execution would, and wake-ups
  // land as the same (round, node) multiset - pop order of the wake heap is
  // a total order on values, so insertion order is immaterial.
  for (std::size_t i = 0; i < invocations_.size(); ++i) {
    NodeEmission& em = emissions_[i];
    for (std::uint32_t slot : em.freed_spills) spill_free_.push_back(slot);
    em.freed_spills.clear();
    for (NodeEmission::BufferedSend& bs : em.sends) {
      enqueue_dir(bs.dir_idx, std::move(bs.msg), bs.priority);
    }
    em.sends.clear();
    for (std::uint64_t r : em.wakes) wake_at(em.node, r);
    em.wakes.clear();
  }
}

// ---- transmit phase --------------------------------------------------------

void Runner::transmit_dir(int dir_idx, DirTransmit& r) {
  DirHot& h = dir_hot_[static_cast<std::size_t>(dir_idx)];
  r.stalled = false;
  r.used_budget = false;
  r.words_moved = 0;
  // Only the active path's completion list is ever filled; clearing the
  // other would drag its (cold) vector header into cache for nothing.
  if (frontier_) {
    r.fq_completed.clear();
  } else {
    r.completed.clear();
  }
  if (injector_ != nullptr && injector_->stalled(dir_idx, round_)) {
    // Frozen: time passes, the queue holds. Still active by definition.
    r.stalled = true;
    r.still_active = true;
    return;
  }
  const int bandwidth = net_.config().bandwidth_words;
  int budget = bandwidth;
  if (frontier_) {
    // Same state machine over 32-byte POD entries: nothing but this
    // direction's own state is touched (shard-safe), and the pop order is
    // the same (priority, seq) total order as the legacy queue's. The
    // steady-state iteration (pop one budget-fitting entry from the inline
    // slot) touches only h - a single cache line per direction.
    while (budget > 0) {
      if (!h.transmitting) {
        if (fq_empty(h.fq)) break;
        const FqEntry e = fq_take_top(
            h.fq, dir_cold_[static_cast<std::size_t>(dir_idx)].fq_heap);
        if (e.size <= static_cast<std::uint32_t>(budget)) {
          // Fits this round's remaining budget (under default bandwidth,
          // every single-word message): complete it straight off the queue
          // without staging through fcur/words_done.
          budget -= static_cast<int>(e.size);
          h.queued_words -= e.size;
          r.words_moved += e.size;
          r.fq_completed.push_back(DirTransmit::FqDone{e.head, e.size, e.spill});
          continue;
        }
        dir_cold_[static_cast<std::size_t>(dir_idx)].fcur = e;
        h.words_done = 0;
        h.transmitting = true;
      }
      FqEntry& cur = dir_cold_[static_cast<std::size_t>(dir_idx)].fcur;
      const std::uint32_t take = std::min<std::uint32_t>(
          static_cast<std::uint32_t>(budget), cur.size - h.words_done);
      h.words_done += take;
      budget -= static_cast<int>(take);
      h.queued_words -= take;
      r.words_moved += take;
      if (h.words_done == cur.size) {
        r.fq_completed.push_back(
            DirTransmit::FqDone{cur.head, cur.size, cur.spill});
        h.transmitting = false;
      }
    }
    r.still_active = h.transmitting || !fq_empty(h.fq);
  } else {
    DirCold& c = dir_cold_[static_cast<std::size_t>(dir_idx)];
    while (budget > 0) {
      if (!h.transmitting) {
        if (c.queue.empty()) break;
        c.current = c.queue.take_top();
        h.words_done = 0;
        h.transmitting = true;
      }
      std::uint32_t take = std::min<std::uint32_t>(
          static_cast<std::uint32_t>(budget), c.current.size() - h.words_done);
      h.words_done += take;
      budget -= static_cast<int>(take);
      h.queued_words -= take;
      r.words_moved += take;
      if (h.words_done == c.current.size()) {
        r.completed.push_back(std::move(c.current));
        h.transmitting = false;
      }
    }
    r.still_active = h.transmitting || !c.queue.empty();
  }
  if (!r.still_active) h.active = false;
  r.used_budget = budget < bandwidth;
}

void Runner::settle_dir(int dir_idx, DirTransmit& r,
                        std::vector<int>& still_active) {
  const Network::Direction& dir = net_.dirs_[static_cast<std::size_t>(dir_idx)];
  if (r.stalled) {
    ++stats_.stalled_rounds;
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{
          run_id_, round_, dir.from, dir.to,
          static_cast<std::uint32_t>(
              dir_hot_[static_cast<std::size_t>(dir_idx)].queued_words),
          TraceEventKind::kStall,
          {}});
    }
    still_active.push_back(dir_idx);
    return;
  }
  stats_.words += r.words_moved;
  net_.total_words_ += r.words_moved;
  if (dir.crosses_cut) {
    net_.cut_words_ += r.words_moved;
    run_cut_words_ += r.words_moved;
  }
  if (metrics_ != nullptr) {
    dir_words_[static_cast<std::size_t>(dir_idx)] += r.words_moved;
  }
  if (congestion_ != nullptr) {
    congestion_->add_dir_words(dir_idx, r.words_moved);
  }
  if (frontier_) {
    for (const DirTransmit::FqDone& done : r.fq_completed) {
      // Mirrors the legacy loop below decision for decision: the crashed
      // check short-circuits before drop_message and corruption runs after
      // the drop decision, so the fault RNG stream, trace order, and stats
      // are byte-identical between the two settle paths.
      const bool lost =
          crashed_[static_cast<std::size_t>(dir.to)] ||
          (injector_ != nullptr && injector_->drop_message(dir_idx));
      if (lost) {
        ++stats_.dropped_messages;
        stats_.dropped_words += done.size;
        if (done.spill != kNoSpill) free_spill(done.spill);
        if (trace_ != nullptr) {
          trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                    done.size, TraceEventKind::kDrop, {}});
        }
        continue;
      }
      // Duplication is decided between drop and corruption on both settle
      // paths, so the fault RNG stream stays byte-identical. The copy shares
      // the (possibly corrupted) payload: the adversary clones the frame as
      // delivered.
      const bool duplicated =
          injector_ != nullptr && injector_->duplicate_message(dir_idx);
      // No Message is built at all: the word (or the spill slot, for longer
      // payloads) parks in the receiver's compact inbox until invocation.
      // Corruption mutates the payload where it lives - through a probe
      // Message in the single-word case, so the injector sees the same
      // Message view (and consumes the same RNG) as on the legacy path.
      auto& box = inbox_next_[static_cast<std::size_t>(dir.to)];
      if (box.empty()) receivers_next_.push_back(dir.to);
      PendingDelivery pd;
      pd.from = dir.from;
      pd.size = done.size;
      if (done.spill == kNoSpill) {
        ++fstats_.fast_words;
        pd.head = done.head;
      } else {
        fstats_.multi_words += done.size;
        pd.head = Word{done.spill};
      }
      if (injector_ != nullptr) {
        std::uint32_t flips;
        if (done.spill == kNoSpill) {
          Message probe{done.head};
          flips = injector_->corrupt_message(dir_idx, round_, probe);
          pd.head = probe[0];
        } else {
          flips =
              injector_->corrupt_message(dir_idx, round_, spill_[done.spill]);
        }
        if (flips > 0) {
          stats_.corrupted_words += flips;
          if (trace_ != nullptr) {
            trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                      flips, TraceEventKind::kCorrupt, {}});
          }
        }
      }
      box.push_back(pd);
      if (trace_ != nullptr) {
        trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                  done.size, TraceEventKind::kDeliver, {}});
      }
      ++stats_.messages;
      ++net_.total_messages_;
      if (duplicated) {
        PendingDelivery copy = pd;
        if (done.spill != kNoSpill) {
          // The copy needs its own spill slot: materialization moves each
          // slot out exactly once. Copy first - alloc_spill may grow the
          // pool and invalidate references into it.
          Message dup_payload = spill_[done.spill];
          copy.head = Word{alloc_spill(std::move(dup_payload))};
        }
        box.push_back(copy);
        if (trace_ != nullptr) {
          trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                    done.size, TraceEventKind::kDeliver, {}});
        }
        ++stats_.messages;
        ++net_.total_messages_;
        ++stats_.dup_messages;
        stats_.dup_words += done.size;
      }
    }
    r.fq_completed.clear();
    if (r.still_active) still_active.push_back(dir_idx);
    if (r.used_budget) {
      last_activity_round_ = round_;
      had_transmission_ = true;
    }
    return;
  }
  for (Message& msg : r.completed) {
    // Message fully transmitted: deliver for next round - unless a drop
    // fault eats it or the receiver is gone. The crashed check short-circuits
    // before drop_message, so the fault RNG stream advances exactly as in
    // sequential execution.
    const bool lost = crashed_[static_cast<std::size_t>(dir.to)] ||
                      (injector_ != nullptr && injector_->drop_message(dir_idx));
    if (lost) {
      ++stats_.dropped_messages;
      stats_.dropped_words += msg.size();
      if (trace_ != nullptr) {
        trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                  msg.size(), TraceEventKind::kDrop, {}});
      }
    } else {
      // Duplication first (mirroring the frontier path: drop, then dup,
      // then corruption, all on the host thread), so the injector's RNG
      // stream advances in the exact order sequential execution produces -
      // thread counts and settle paths cannot change it.
      const bool duplicated =
          injector_ != nullptr && injector_->duplicate_message(dir_idx);
      if (injector_ != nullptr) {
        const std::uint32_t flips =
            injector_->corrupt_message(dir_idx, round_, msg);
        if (flips > 0) {
          stats_.corrupted_words += flips;
          if (trace_ != nullptr) {
            trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                      flips, TraceEventKind::kCorrupt, {}});
          }
        }
      }
      if (trace_ != nullptr) {
        trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                  msg.size(), TraceEventKind::kDeliver, {}});
      }
      // Compact form for the inter-round gap: a single-word Message (the
      // common case) dies here and only its word travels; longer ones park
      // in the spill pool. Either way the 64-byte Message move into the
      // inbox is gone from the delivery stream.
      auto& box = inbox_next_[static_cast<std::size_t>(dir.to)];
      if (box.empty()) receivers_next_.push_back(dir.to);
      const std::uint32_t msg_size = msg.size();
      Message dup_payload;
      if (duplicated && msg_size > 1) dup_payload = msg;  // copy pre-move
      PendingDelivery pd;
      pd.from = dir.from;
      pd.size = msg_size;
      pd.head = msg_size == 1 ? msg[0] : Word{alloc_spill(std::move(msg))};
      box.push_back(pd);
      ++stats_.messages;
      ++net_.total_messages_;
      if (duplicated) {
        PendingDelivery copy = pd;
        if (msg_size > 1) {
          copy.head = Word{alloc_spill(std::move(dup_payload))};
        }
        box.push_back(copy);
        if (trace_ != nullptr) {
          trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                    msg_size, TraceEventKind::kDeliver, {}});
        }
        ++stats_.messages;
        ++net_.total_messages_;
        ++stats_.dup_messages;
        stats_.dup_words += msg_size;
      }
    }
  }
  r.completed.clear();
  if (r.still_active) still_active.push_back(dir_idx);
  if (r.used_budget) {
    last_activity_round_ = round_;
    had_transmission_ = true;
  }
}

// Orders (and, on the dense path, deduplicates) the round's scheduled
// nodes. Deterministic order by default; the adversarial-schedule mode
// randomizes both the invocation order and each inbox.
void Runner::build_frontier(std::vector<NodeId>& active_nodes) {
  // The shuffle consumes schedule_rng_ as a function of the pre-dedup list
  // length, so the dense path - which also deduplicates - is pinned off
  // whenever the adversarial schedule is on.
  const bool shuffled = net_.config().shuffle_deliveries;
  const bool dense =
      frontier_ && !shuffled &&
      active_nodes.size() * kDenseDivisor >= static_cast<std::size_t>(net_.n());
  if (dense) {
    // Bottom-up style: mark a node bitmap and rescan it in id order. This
    // produces exactly the sorted order std::sort yields; duplicates (a
    // node that is both receiver and wake target) collapse here, which the
    // caller's last_invoked stamps would have filtered anyway.
    const std::size_t words = (static_cast<std::size_t>(net_.n()) + 63) / 64;
    frontier_bits_.assign(words, 0);
    for (NodeId v : active_nodes) {
      frontier_bits_[static_cast<std::size_t>(v) >> 6] |=
          std::uint64_t{1} << (static_cast<std::size_t>(v) & 63);
    }
    active_nodes.clear();
    for (std::size_t wi = 0; wi < words; ++wi) {
      std::uint64_t bits = frontier_bits_[wi];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        active_nodes.push_back(
            static_cast<NodeId>(wi * 64 + static_cast<std::size_t>(b)));
      }
    }
  } else {
    // Top-down style: sort the sparse list (the legacy path, verbatim).
    std::sort(active_nodes.begin(), active_nodes.end());
    if (shuffled) schedule_rng_.shuffle(active_nodes);
  }
  if (frontier_) {
    ++fstats_.scheduled_rounds;
    if (dense) {
      ++fstats_.dense_rounds;
    } else {
      ++fstats_.sparse_rounds;
    }
    if (any_frontier_round_ && dense != last_dense_) {
      ++fstats_.direction_switches;
    }
    last_dense_ = dense;
    any_frontier_round_ = true;
  }
}

void Runner::transmit_step() {
  if (frontier_) fstats_.active_dirs += active_dirs_.size();
  std::vector<int>& still_active = still_active_scratch_;
  still_active.clear();
  still_active.reserve(active_dirs_.size());
  if (pool_ != nullptr && active_dirs_.size() >= kMinParallelDirs) {
    // Phase A in parallel: each shard advances one direction's private state
    // machine. Phase B sequentially, in active_dirs_ order: fault RNG, trace
    // events, deliveries, and stats replay exactly as sequential execution
    // interleaves them.
    if (dir_results_.size() < active_dirs_.size()) {
      dir_results_.resize(active_dirs_.size());
    }
    const bool wall = wall_clock_tracing();
    pool_->run(static_cast<int>(active_dirs_.size()), [&](int pos) {
      transmit_dir(active_dirs_[static_cast<std::size_t>(pos)],
                   dir_results_[static_cast<std::size_t>(pos)]);
    }, wall ? &worker_timings_ : nullptr);
    if (wall) record_wall_spans("transmit");
    for (std::size_t pos = 0; pos < active_dirs_.size(); ++pos) {
      settle_dir(active_dirs_[pos], dir_results_[pos], still_active);
    }
  } else {
    // Sequentially, transmit's record is consumed by settle immediately, so
    // one reused slot (seq_result_) serves every direction and stays hot in
    // L1 - no per-direction stream through dir_results_.
    for (std::size_t pos = 0; pos < active_dirs_.size(); ++pos) {
      transmit_dir(active_dirs_[pos], seq_result_);
      settle_dir(active_dirs_[pos], seq_result_, still_active);
    }
  }
  active_dirs_.swap(still_active);
}

// ---- main loop -------------------------------------------------------------

RunResult Runner::run() {
  governor_ = net_.governor();
  if (governor_ != nullptr && governor_->stopped()) {
    // The solve's budget already ran out (or it was cancelled) in an earlier
    // run on this network: don't start fresh phases, report the latched
    // verdict with zero progress. Deterministic - the latch point itself is
    // deterministic for round/word budgets.
    governor_stop_ = governor_->latched();
  } else {
    run_rounds();
  }

  // Rounds consumed = index of the last round with a transmission, 1-based
  // (engine round r is CONGEST round r+1; trailing local computation after
  // the final delivery is free, idle waiting in the middle is not).
  stats_.rounds = had_transmission_ ? last_activity_round_ + 1 : 0;
  net_.total_rounds_ += stats_.rounds;
  if (reliable_ != nullptr) {
    stats_.retransmitted_words += reliable_->retransmitted_words();
    stats_.checksum_rejects += reliable_->checksum_rejects();
    stats_.dead_links += reliable_->dead_links();
  }
  RunOutcome outcome = RunOutcome::kCompleted;
  if (governor_stop_ != StopReason::kNone) {
    // A governed stop is the solve-wide verdict; it outranks the per-run
    // endings below (note_outcome in mwc/result.h ranks accordingly).
    outcome = governor_stop_ == StopReason::kCancelled
                  ? RunOutcome::kCancelled
                  : RunOutcome::kBudgetExhausted;
  } else if (round_limit_hit_) {
    outcome = RunOutcome::kRoundLimitExceeded;
  } else if (any_crash_) {
    const bool all_recovered = std::none_of(
        crashed_.begin(), crashed_.end(), [](bool down) { return down; });
    outcome = all_recovered ? RunOutcome::kRecovered : RunOutcome::kCrashed;
  }
  if (metrics_ != nullptr) {
    // One profile per run, recorded on the host thread after every per-round
    // effect was merged - the reason snapshots are bit-identical across
    // thread counts (see metrics.h).
    RunProfile profile;
    profile.stats = stats_;
    profile.outcome = outcome;
    profile.cut_words = run_cut_words_;
    profile.crashes = run_crashes_;
    for (std::size_t i = 0; i < dir_words_.size(); ++i) {
      if (dir_words_[i] > profile.max_link_words) {
        profile.max_link_words = dir_words_[i];
        profile.busiest_from = net_.dirs_[i].from;
        profile.busiest_to = net_.dirs_[i].to;
      }
    }
    metrics_->record_run(profile);
  }
  if (frontier_) {
    // Side channel only (bench_engine A5c): never feeds stats, metrics, or
    // traces, so both settle paths stay byte-identical in observables.
    net_.note_frontier(
        metrics_ != nullptr ? metrics_->current_path() : std::string{},
        fstats_);
  }
  if (congestion_ != nullptr) {
    // The run's engine-internal high-water marks (max-folded across runs).
    // Both settle paths maintain spill_peak_slots; the overflow heap exists
    // only on the frontier path (see frontier.h).
    congestion_->note_engine_marks(fstats_.spill_peak_slots,
                                   fstats_.overflow_peak_entries);
  }
  return RunResult{outcome, stats_};
}

void Runner::run_rounds() {
  Protocol& proto = active_proto();
  // Round 0: local setup + initial sends, every live node in id order.
  round_ = 0;
  apply_due_crashes();
  invocations_.clear();
  for (NodeId v = 0; v < net_.n(); ++v) {
    if (!crashed_[static_cast<std::size_t>(v)]) invocations_.push_back(v);
  }
  trace_round_begin();
  invoke_nodes(proto, /*first_round=*/true);
  drain_transport_trace();
  std::uint64_t words_before = stats_.words;
  transmit_step();
  trace_round_end(words_before);
  congestion_round_end(words_before);

  std::vector<NodeId> active_nodes;
  std::vector<std::uint64_t> last_invoked(static_cast<std::size_t>(net_.n()),
                                          ~std::uint64_t{0});
  while (true) {
    const bool in_flight = !active_dirs_.empty();
    const bool deliveries = !receivers_next_.empty();
    std::uint64_t next_round = round_ + 1;
    if (!in_flight && !deliveries) {
      // A pending recovery keeps an otherwise quiescent network alive: the
      // revived node's on_restart may start new traffic, exactly like a
      // scheduled wake would.
      const std::uint64_t recovery_round = next_recovery_round();
      if (wakes_.empty() && recovery_round == ~std::uint64_t{0}) {
        break;  // quiescent
      }
      std::uint64_t jump = recovery_round;
      if (!wakes_.empty()) jump = std::min(jump, wakes_.top().first);
      next_round = std::max(next_round, jump);
    }
    const std::uint64_t prev_round = round_;
    round_ = next_round;
    if (round_ > net_.config().max_rounds_per_run) {
      round_limit_hit_ = true;
      break;
    }
    if (governor_ != nullptr) {
      // Governed budgets see the network's accumulated totals: completed
      // runs plus the in-flight round of this one. Both inputs are
      // deterministic, so round/word-budget stops land on the same round at
      // every thread count.
      const StopReason stop =
          governor_->on_round(net_.total_rounds_ + round_, net_.total_words_);
      if (stop != StopReason::kNone) {
        governor_stop_ = stop;
        break;
      }
    }
    if (round_ > prev_round + 1 && trace_ != nullptr &&
        trace_->wants(TraceEventKind::kRoundJump)) {
      // Quiescent fast-forward (pending wake or recovery): mark the jump so
      // trace consumers see the numbering gap was intentional.
      trace_->record(TraceEvent{
          run_id_, round_, graph::kNoNode, graph::kNoNode,
          static_cast<std::uint32_t>(round_ - prev_round - 1),
          TraceEventKind::kRoundJump, {}});
    }
    apply_due_crashes();
    apply_due_recoveries();

    // Nodes to invoke this round: message receivers + due wake-ups.
    active_nodes.clear();
    active_nodes.swap(receivers_next_);
    while (!wakes_.empty() && wakes_.top().first <= round_) {
      active_nodes.push_back(wakes_.top().second);
      wakes_.pop();
    }
    build_frontier(active_nodes);

    // Pre-pass, in invocation order: crash and duplicate filtering, plus the
    // adversarial inbox shuffles - everything that consumes schedule_rng_ -
    // happens here sequentially, so the parallel invocation phase that
    // follows touches no shared randomness.
    // A node revived this round is re-initialized through on_restart below;
    // stamping it here keeps stale wakes from before its crash from also
    // invoking round() on it in the same round.
    for (NodeId v : restarted_) {
      last_invoked[static_cast<std::size_t>(v)] = round_;
    }
    invocations_.clear();
    for (NodeId v : active_nodes) {
      if (crashed_[static_cast<std::size_t>(v)]) {
        discard_pending(inbox_next_[static_cast<std::size_t>(v)]);
        continue;
      }
      auto& stamp = last_invoked[static_cast<std::size_t>(v)];
      if (stamp == round_) continue;
      stamp = round_;
      if (net_.config().shuffle_deliveries) {
        schedule_rng_.shuffle(inbox_next_[static_cast<std::size_t>(v)]);
      }
      invocations_.push_back(v);
    }
    trace_round_begin();
    // Restarts run first, sequentially on the host thread and in schedule
    // order: their sends and wake-ups claim the same seq_ numbers at every
    // thread count, preserving bit-identical execution.
    for (NodeId v : restarted_) {
      materialize_inbox(inbox_next_[static_cast<std::size_t>(v)],
                        inbox_scratch_, spill_free_);
      NodeCtx ctx(*this, v);
      ctx.inbox_override_ = &inbox_scratch_;
      proto.on_restart(ctx);
    }
    restarted_.clear();
    invoke_nodes(proto, /*first_round=*/false);
    drain_transport_trace();

    words_before = stats_.words;
    transmit_step();
    trace_round_end(words_before);
    congestion_round_end(words_before);
  }
}

RunResult run_protocol_result(Network& net, Protocol& proto) {
  Runner runner(net, proto);
  return runner.run();
}

RunStats run_protocol(Network& net, Protocol& proto) {
  RunResult result = run_protocol_result(net, proto);
  if (!result.ok()) throw RunAbortedError(result.outcome, result.stats);
  return result.stats;
}

}  // namespace mwc::congest
