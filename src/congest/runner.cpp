#include "congest/runner.h"

#include <algorithm>

#include "support/check.h"

namespace mwc::congest {

// ---- NodeCtx ---------------------------------------------------------------

int NodeCtx::n() const { return runner_->net_.n(); }

std::uint64_t NodeCtx::round() const { return runner_->round_; }

std::span<const Delivery> NodeCtx::inbox() const {
  return runner_->inbox_current_;
}

void NodeCtx::send(NodeId neighbor, Message msg, std::int64_t priority) {
  runner_->send(id_, neighbor, std::move(msg), priority);
}

void NodeCtx::wake_at(std::uint64_t r) {
  runner_->wake_at(id_, std::max(r, runner_->round_ + 1));
}

void NodeCtx::wake_next() { wake_at(runner_->round_ + 1); }

support::Rng& NodeCtx::rng() {
  return runner_->node_rng_[static_cast<std::size_t>(id_)];
}

std::span<const graph::Arc> NodeCtx::out_arcs() const {
  return runner_->net_.problem_graph().out(id_);
}

std::span<const graph::Arc> NodeCtx::in_arcs() const {
  return runner_->net_.problem_graph().in(id_);
}

std::span<const NodeId> NodeCtx::comm_neighbors() const {
  return runner_->net_.comm_neighbors(id_);
}

bool NodeCtx::graph_is_directed() const {
  return runner_->net_.problem_graph().is_directed();
}

// ---- Runner ----------------------------------------------------------------

Runner::Runner(Network& net, Protocol& proto)
    : net_(net), proto_(proto), run_id_(net.run_counter()),
      dir_state_(net.dirs_.size()),
      inbox_next_(static_cast<std::size_t>(net.n())),
      schedule_rng_(0) {
  support::Rng run_rng = net.next_run_rng();
  node_rng_.reserve(static_cast<std::size_t>(net.n()));
  for (NodeId v = 0; v < net.n(); ++v) {
    node_rng_.push_back(run_rng.fork(static_cast<std::uint64_t>(v)));
  }
  schedule_rng_ = run_rng.fork(~std::uint64_t{0});
}

void Runner::send(NodeId from, NodeId to, Message msg, std::int64_t priority) {
  MWC_CHECK_MSG(msg.size() >= 1, "messages must carry at least one word");
  int dir_idx = net_.direction_index(from, to);
  DirectionState& ds = dir_state_[static_cast<std::size_t>(dir_idx)];
  ds.queued_words += msg.size();
  stats_.max_queue_words = std::max(stats_.max_queue_words, ds.queued_words);
  ds.queue.push(QueuedMsg{priority, seq_++, std::move(msg)});
  activate_dir(dir_idx);
}

void Runner::wake_at(NodeId node, std::uint64_t r) { wakes_.emplace(r, node); }

void Runner::activate_dir(int dir_idx) {
  DirectionState& ds = dir_state_[static_cast<std::size_t>(dir_idx)];
  if (!ds.active) {
    ds.active = true;
    active_dirs_.push_back(dir_idx);
  }
}

void Runner::transmit_step() {
  const int bandwidth = net_.config().bandwidth_words;
  std::vector<int> still_active;
  still_active.reserve(active_dirs_.size());
  for (int dir_idx : active_dirs_) {
    DirectionState& ds = dir_state_[static_cast<std::size_t>(dir_idx)];
    const Network::Direction& dir = net_.dirs_[static_cast<std::size_t>(dir_idx)];
    int budget = bandwidth;
    while (budget > 0) {
      if (!ds.transmitting) {
        if (ds.queue.empty()) break;
        ds.current = std::move(const_cast<QueuedMsg&>(ds.queue.top()).msg);
        ds.queue.pop();
        ds.words_done = 0;
        ds.transmitting = true;
      }
      std::uint32_t take = std::min<std::uint32_t>(
          static_cast<std::uint32_t>(budget), ds.current.size() - ds.words_done);
      ds.words_done += take;
      budget -= static_cast<int>(take);
      ds.queued_words -= take;
      stats_.words += take;
      net_.total_words_ += take;
      if (dir.crosses_cut) net_.cut_words_ += take;
      if (ds.words_done == ds.current.size()) {
        // Message fully transmitted: deliver for next round.
        if (net_.trace_ != nullptr) {
          net_.trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                         ds.current.size()});
        }
        auto& box = inbox_next_[static_cast<std::size_t>(dir.to)];
        if (box.empty()) receivers_next_.push_back(dir.to);
        box.push_back(Delivery{dir.from, std::move(ds.current)});
        ds.transmitting = false;
        ++stats_.messages;
        ++net_.total_messages_;
      }
    }
    if (ds.transmitting || !ds.queue.empty()) {
      still_active.push_back(dir_idx);
    } else {
      ds.active = false;
    }
    if (budget < bandwidth) {
      last_activity_round_ = round_;
      had_transmission_ = true;
    }
  }
  active_dirs_.swap(still_active);
}

RunStats Runner::run() {
  // Round 0: local setup + initial sends.
  round_ = 0;
  for (NodeId v = 0; v < net_.n(); ++v) {
    NodeCtx ctx(*this, v);
    proto_.begin(ctx);
  }
  transmit_step();

  std::vector<NodeId> active_nodes;
  std::vector<std::uint64_t> last_invoked(static_cast<std::size_t>(net_.n()),
                                          ~std::uint64_t{0});
  while (true) {
    const bool in_flight = !active_dirs_.empty();
    const bool deliveries = !receivers_next_.empty();
    std::uint64_t next_round = round_ + 1;
    if (!in_flight && !deliveries) {
      if (wakes_.empty()) break;  // quiescent
      next_round = std::max(next_round, wakes_.top().first);
    }
    round_ = next_round;
    MWC_CHECK_MSG(round_ <= net_.config().max_rounds_per_run,
                  "protocol exceeded max_rounds_per_run (deadlock?)");

    // Nodes to invoke this round: message receivers + due wake-ups.
    active_nodes.clear();
    active_nodes.swap(receivers_next_);
    while (!wakes_.empty() && wakes_.top().first <= round_) {
      active_nodes.push_back(wakes_.top().second);
      wakes_.pop();
    }
    // Deterministic order by default; the adversarial-schedule mode
    // randomizes both the invocation order and each inbox.
    std::sort(active_nodes.begin(), active_nodes.end());
    if (net_.config().shuffle_deliveries) schedule_rng_.shuffle(active_nodes);
    for (NodeId v : active_nodes) {
      auto& stamp = last_invoked[static_cast<std::size_t>(v)];
      if (stamp == round_) continue;
      stamp = round_;
      inbox_current_.clear();
      inbox_current_.swap(inbox_next_[static_cast<std::size_t>(v)]);
      if (net_.config().shuffle_deliveries) schedule_rng_.shuffle(inbox_current_);
      NodeCtx ctx(*this, v);
      proto_.round(ctx);
    }
    inbox_current_.clear();

    transmit_step();
  }

  // Rounds consumed = index of the last round with a transmission, 1-based
  // (engine round r is CONGEST round r+1; trailing local computation after
  // the final delivery is free, idle waiting in the middle is not).
  stats_.rounds = had_transmission_ ? last_activity_round_ + 1 : 0;
  net_.total_rounds_ += stats_.rounds;
  return stats_;
}

RunStats run_protocol(Network& net, Protocol& proto) {
  Runner runner(net, proto);
  return runner.run();
}

}  // namespace mwc::congest
