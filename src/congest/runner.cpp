#include "congest/runner.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "congest/metrics.h"
#include "congest/reliable_link.h"
#include "congest/thread_pool.h"
#include "support/check.h"

namespace mwc::congest {

namespace {
// Below these batch sizes the fork-join barrier costs more than it buys.
// Purely a performance knob: the parallel and sequential paths are
// bit-identical, so the threshold never changes results.
constexpr std::size_t kMinParallelNodes = 4;
constexpr std::size_t kMinParallelDirs = 8;
}  // namespace

// ---- NodeCtx ---------------------------------------------------------------

int NodeCtx::n() const { return runner_->net_.n(); }

std::uint64_t NodeCtx::round() const { return runner_->round_; }

int NodeCtx::bandwidth_words() const {
  return runner_->net_.config().bandwidth_words;
}

std::span<const Delivery> NodeCtx::inbox() const {
  if (inbox_override_ != nullptr) return *inbox_override_;
  return runner_->inbox_current_;
}

void NodeCtx::send(NodeId neighbor, Message msg, std::int64_t priority) {
  if (send_hook_ != nullptr) {
    send_hook_->on_send(id_, neighbor, std::move(msg), priority);
    return;
  }
  runner_->send(id_, neighbor, std::move(msg), priority);
}

void NodeCtx::wake_at(std::uint64_t r) {
  const std::uint64_t rr = std::max(r, runner_->round_ + 1);
  if (wake_sink_ != nullptr) {
    wake_sink_->push_back(rr);
    return;
  }
  runner_->wake_at(id_, rr);
}

void NodeCtx::wake_next() { wake_at(runner_->round_ + 1); }

support::Rng& NodeCtx::rng() {
  return runner_->node_rng_[static_cast<std::size_t>(id_)];
}

std::span<const graph::Arc> NodeCtx::out_arcs() const {
  return runner_->net_.problem_graph().out(id_);
}

std::span<const graph::Arc> NodeCtx::in_arcs() const {
  return runner_->net_.problem_graph().in(id_);
}

std::span<const NodeId> NodeCtx::comm_neighbors() const {
  return runner_->net_.comm_neighbors(id_);
}

bool NodeCtx::graph_is_directed() const {
  return runner_->net_.problem_graph().is_directed();
}

// ---- Runner ----------------------------------------------------------------

Runner::Runner(Network& net, Protocol& proto)
    : net_(net), proto_(proto), run_id_(net.run_counter_),
      dir_state_(net.dirs_.size()),
      inbox_next_(static_cast<std::size_t>(net.n())),
      schedule_rng_(0),
      crashed_(static_cast<std::size_t>(net.n()), false) {
  support::Rng run_rng = net.next_run_rng();
  node_rng_.reserve(static_cast<std::size_t>(net.n()));
  for (NodeId v = 0; v < net.n(); ++v) {
    node_rng_.push_back(run_rng.fork(static_cast<std::uint64_t>(v)));
    // Reserve-once inboxes: a node's per-round deliveries are bounded by its
    // comm degree in the common one-message-per-neighbor regime, so this
    // keeps steady-state rounds allocation-free (growth beyond is kept).
    inbox_next_[static_cast<std::size_t>(v)].reserve(
        net.comm_neighbors(v).size());
  }
  schedule_rng_ = run_rng.fork(~std::uint64_t{0});
  if (net.config().faults.any()) {
    std::vector<std::pair<NodeId, NodeId>> endpoints;
    endpoints.reserve(net.dirs_.size());
    for (const Network::Direction& d : net.dirs_) {
      endpoints.emplace_back(d.from, d.to);
    }
    // A fault stream of its own, forked like the node streams: the schedule
    // is a pure function of (master seed, run counter).
    injector_ = std::make_unique<FaultInjector>(
        net.config().faults, run_rng.fork(~std::uint64_t{0} - 1), net.n(),
        endpoints);
  }
  if (net.config().reliable_transport) {
    reliable_ = std::make_unique<ReliableProtocol>(proto_, net.config().reliable);
  }
  trace_ = net.trace_;
  if (reliable_ != nullptr && trace_ != nullptr &&
      (trace_->wants(TraceEventKind::kRetransmit) ||
       trace_->wants(TraceEventKind::kAck) ||
       trace_->wants(TraceEventKind::kChecksumReject))) {
    reliable_->set_trace_capture(true);
  }
  pool_ = net.thread_pool();
  metrics_ = net.metrics();
  if (metrics_ != nullptr) dir_words_.assign(net.dirs_.size(), 0);
}

Runner::~Runner() = default;

Protocol& Runner::active_proto() {
  return reliable_ != nullptr ? *reliable_ : proto_;
}

void Runner::send(NodeId from, NodeId to, Message msg, std::int64_t priority) {
  MWC_CHECK_MSG(msg.size() >= 1, "messages must carry at least one word");
  enqueue_dir(net_.direction_index(from, to), std::move(msg), priority);
}

void Runner::enqueue_dir(int dir_idx, Message msg, std::int64_t priority) {
  DirectionState& ds = dir_state_[static_cast<std::size_t>(dir_idx)];
  ds.queued_words += msg.size();
  if (ds.queued_words > stats_.max_queue_words) {
    stats_.max_queue_words = ds.queued_words;
    // A new run-wide backlog high-water mark. Recorded here because
    // enqueue_dir always executes on the host thread (directly in sequential
    // mode, at the merge barrier in parallel mode), in the same order.
    if (trace_ != nullptr && trace_->wants(TraceEventKind::kQueuePeak)) {
      const Network::Direction& dir =
          net_.dirs_[static_cast<std::size_t>(dir_idx)];
      trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                static_cast<std::uint32_t>(ds.queued_words),
                                TraceEventKind::kQueuePeak, {}});
    }
  }
  ds.queue.push(priority, seq_++, std::move(msg));
  activate_dir(dir_idx);
}

void Runner::wake_at(NodeId node, std::uint64_t r) { wakes_.emplace(r, node); }

void Runner::activate_dir(int dir_idx) {
  DirectionState& ds = dir_state_[static_cast<std::size_t>(dir_idx)];
  if (!ds.active) {
    ds.active = true;
    active_dirs_.push_back(dir_idx);
  }
}

void Runner::apply_due_crashes() {
  if (injector_ == nullptr) return;
  auto crashes = injector_->crashes();
  while (next_crash_ < crashes.size() && crashes[next_crash_].round <= round_) {
    const NodeId v = crashes[next_crash_++].node;
    if (!crashed_[static_cast<std::size_t>(v)]) crash_node(v);
  }
}

void Runner::apply_due_recoveries() {
  restarted_.clear();
  if (injector_ == nullptr) return;
  auto recoveries = injector_->recoveries();
  while (next_recover_ < recoveries.size() &&
         recoveries[next_recover_].round <= round_) {
    const NodeId v = recoveries[next_recover_++].node;
    if (!crashed_[static_cast<std::size_t>(v)]) continue;
    crashed_[static_cast<std::size_t>(v)] = false;
    ++stats_.recoveries;
    restarted_.push_back(v);
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{run_id_, round_, v, graph::kNoNode, 0,
                                TraceEventKind::kRecover, {}});
    }
  }
}

std::uint64_t Runner::next_recovery_round() const {
  if (injector_ == nullptr) return ~std::uint64_t{0};
  auto recoveries = injector_->recoveries();
  if (next_recover_ >= recoveries.size()) return ~std::uint64_t{0};
  return recoveries[next_recover_].round;
}

void Runner::crash_node(NodeId v) {
  crashed_[static_cast<std::size_t>(v)] = true;
  any_crash_ = true;
  ++run_crashes_;
  ++stats_.crashes;
  // The node falls silent: queued and in-flight outbound traffic vanishes,
  // and anything still addressed to it will be discarded on arrival.
  const std::int32_t b = net_.nbr_offset_[static_cast<std::size_t>(v)];
  const std::int32_t e = net_.nbr_offset_[static_cast<std::size_t>(v) + 1];
  for (std::int32_t i = b; i < e; ++i) {
    DirectionState& ds =
        dir_state_[static_cast<std::size_t>(net_.nbr_dir_[static_cast<std::size_t>(i)])];
    if (ds.transmitting) {
      ++stats_.dropped_messages;
      stats_.dropped_words += ds.current.size() - ds.words_done;
      ds.transmitting = false;
    }
    for (const QueuedMsg& qm : ds.queue.entries()) {
      ++stats_.dropped_messages;
      stats_.dropped_words += qm.msg.size();
    }
    ds.queue.clear();
    ds.queued_words = 0;
  }
  inbox_next_[static_cast<std::size_t>(v)].clear();
  if (trace_ != nullptr) {
    trace_->record(TraceEvent{run_id_, round_, v, graph::kNoNode, 0,
                              TraceEventKind::kCrash, {}});
  }
}

// ---- trace hooks -----------------------------------------------------------

void Runner::trace_round_begin() {
  if (trace_ == nullptr || !trace_->wants(TraceEventKind::kRoundBegin)) return;
  trace_->record(TraceEvent{run_id_, round_, graph::kNoNode, graph::kNoNode,
                            static_cast<std::uint32_t>(invocations_.size()),
                            TraceEventKind::kRoundBegin, {}});
}

void Runner::trace_round_end(std::uint64_t words_before) {
  if (trace_ == nullptr || !trace_->wants(TraceEventKind::kRoundEnd)) return;
  trace_->record(TraceEvent{run_id_, round_, graph::kNoNode, graph::kNoNode,
                            static_cast<std::uint32_t>(stats_.words -
                                                       words_before),
                            TraceEventKind::kRoundEnd, {}});
}

void Runner::drain_transport_trace() {
  if (reliable_ == nullptr || trace_ == nullptr) return;
  reliable_->drain_trace_events(invocations_, run_id_, *trace_);
}

void Runner::record_wall_spans(const char* region) {
  for (std::size_t lane = 0; lane < worker_timings_.size(); ++lane) {
    const ThreadPool::WorkerTiming& t = worker_timings_[lane];
    if (!t.active) continue;
    WallSpan span;
    span.name = region;
    span.run = run_id_;
    span.round = round_;
    span.worker = static_cast<int>(lane);
    span.shards = t.shards;
    span.start_us = trace_->to_us(t.start);
    span.dur_us =
        std::chrono::duration<double, std::micro>(t.end - t.start).count();
    trace_->record_wall(std::move(span));
  }
}

// ---- node invocation phase -------------------------------------------------

void Runner::NodeEmission::on_send(NodeId from, NodeId neighbor, Message msg,
                                   std::int64_t priority) {
  MWC_CHECK_MSG(msg.size() >= 1, "messages must carry at least one word");
  // direction_index is read-only lookup - safe from worker threads; resolving
  // it here keeps the sequential merge a pure replay.
  sends.push_back(BufferedSend{runner->net_.direction_index(from, neighbor),
                               priority, std::move(msg)});
}

void Runner::invoke_nodes(Protocol& proto, bool first_round) {
  if (pool_ == nullptr || invocations_.size() < kMinParallelNodes) {
    // Sequential: invoke in order, effects land on engine state directly.
    for (NodeId v : invocations_) {
      NodeCtx ctx(*this, v);
      ctx.inbox_override_ = &inbox_next_[static_cast<std::size_t>(v)];
      if (first_round) {
        proto.begin(ctx);
      } else {
        proto.round(ctx);
      }
      inbox_next_[static_cast<std::size_t>(v)].clear();
    }
    return;
  }

  // Parallel: every invocation writes its sends and wake-ups into its own
  // NodeEmission slot; shared engine state is untouched until the merge.
  if (emissions_.size() < invocations_.size()) {
    emissions_.resize(invocations_.size());
  }
  const bool wall = wall_clock_tracing();
  pool_->run(static_cast<int>(invocations_.size()), [&](int i) {
    const NodeId v = invocations_[static_cast<std::size_t>(i)];
    NodeEmission& em = emissions_[static_cast<std::size_t>(i)];
    em.runner = this;
    em.node = v;
    em.sends.clear();
    em.wakes.clear();
    NodeCtx ctx(*this, v);
    ctx.inbox_override_ = &inbox_next_[static_cast<std::size_t>(v)];
    ctx.send_hook_ = &em;
    ctx.wake_sink_ = &em.wakes;
    if (first_round) {
      proto.begin(ctx);
    } else {
      proto.round(ctx);
    }
    // Each node's slot is exclusively this shard's (invocations_ is
    // deduplicated), so clearing its inbox here is race-free and recycles
    // the delivered messages into this worker's word pool.
    inbox_next_[static_cast<std::size_t>(v)].clear();
  }, wall ? &worker_timings_ : nullptr);
  if (wall) record_wall_spans("invoke");

  // Merge in invocation order: replaying buffered sends through enqueue_dir
  // assigns the exact seq_ numbers sequential execution would, and wake-ups
  // land as the same (round, node) multiset - pop order of the wake heap is
  // a total order on values, so insertion order is immaterial.
  for (std::size_t i = 0; i < invocations_.size(); ++i) {
    NodeEmission& em = emissions_[i];
    for (NodeEmission::BufferedSend& bs : em.sends) {
      enqueue_dir(bs.dir_idx, std::move(bs.msg), bs.priority);
    }
    em.sends.clear();
    for (std::uint64_t r : em.wakes) wake_at(em.node, r);
    em.wakes.clear();
  }
}

// ---- transmit phase --------------------------------------------------------

void Runner::transmit_dir(int dir_idx, DirTransmit& r) {
  DirectionState& ds = dir_state_[static_cast<std::size_t>(dir_idx)];
  r.stalled = false;
  r.used_budget = false;
  r.words_moved = 0;
  r.completed.clear();
  if (injector_ != nullptr && injector_->stalled(dir_idx, round_)) {
    // Frozen: time passes, the queue holds. Still active by definition.
    r.stalled = true;
    r.still_active = true;
    return;
  }
  const int bandwidth = net_.config().bandwidth_words;
  int budget = bandwidth;
  while (budget > 0) {
    if (!ds.transmitting) {
      if (ds.queue.empty()) break;
      ds.current = ds.queue.take_top();
      ds.words_done = 0;
      ds.transmitting = true;
    }
    std::uint32_t take = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(budget), ds.current.size() - ds.words_done);
    ds.words_done += take;
    budget -= static_cast<int>(take);
    ds.queued_words -= take;
    r.words_moved += take;
    if (ds.words_done == ds.current.size()) {
      r.completed.push_back(std::move(ds.current));
      ds.transmitting = false;
    }
  }
  r.still_active = ds.transmitting || !ds.queue.empty();
  if (!r.still_active) ds.active = false;
  r.used_budget = budget < bandwidth;
}

void Runner::settle_dir(std::size_t pos, std::vector<int>& still_active) {
  const int dir_idx = active_dirs_[pos];
  DirTransmit& r = dir_results_[pos];
  DirectionState& ds = dir_state_[static_cast<std::size_t>(dir_idx)];
  const Network::Direction& dir = net_.dirs_[static_cast<std::size_t>(dir_idx)];
  if (r.stalled) {
    ++stats_.stalled_rounds;
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{
          run_id_, round_, dir.from, dir.to,
          static_cast<std::uint32_t>(ds.queued_words), TraceEventKind::kStall,
          {}});
    }
    still_active.push_back(dir_idx);
    return;
  }
  stats_.words += r.words_moved;
  net_.total_words_ += r.words_moved;
  if (dir.crosses_cut) {
    net_.cut_words_ += r.words_moved;
    run_cut_words_ += r.words_moved;
  }
  if (metrics_ != nullptr) {
    dir_words_[static_cast<std::size_t>(dir_idx)] += r.words_moved;
  }
  for (Message& msg : r.completed) {
    // Message fully transmitted: deliver for next round - unless a drop
    // fault eats it or the receiver is gone. The crashed check short-circuits
    // before drop_message, so the fault RNG stream advances exactly as in
    // sequential execution.
    const bool lost = crashed_[static_cast<std::size_t>(dir.to)] ||
                      (injector_ != nullptr && injector_->drop_message(dir_idx));
    if (lost) {
      ++stats_.dropped_messages;
      stats_.dropped_words += msg.size();
      if (trace_ != nullptr) {
        trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                  msg.size(), TraceEventKind::kDrop, {}});
      }
    } else {
      // Corruption is decided here on the host thread, after the drop
      // decision, so the injector's RNG stream advances in the exact order
      // sequential execution produces - thread counts cannot change it.
      if (injector_ != nullptr) {
        const std::uint32_t flips =
            injector_->corrupt_message(dir_idx, round_, msg);
        if (flips > 0) {
          stats_.corrupted_words += flips;
          if (trace_ != nullptr) {
            trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                      flips, TraceEventKind::kCorrupt, {}});
          }
        }
      }
      if (trace_ != nullptr) {
        trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                  msg.size(), TraceEventKind::kDeliver, {}});
      }
      auto& box = inbox_next_[static_cast<std::size_t>(dir.to)];
      if (box.empty()) receivers_next_.push_back(dir.to);
      box.push_back(Delivery{dir.from, std::move(msg)});
      ++stats_.messages;
      ++net_.total_messages_;
    }
  }
  r.completed.clear();
  if (r.still_active) still_active.push_back(dir_idx);
  if (r.used_budget) {
    last_activity_round_ = round_;
    had_transmission_ = true;
  }
}

void Runner::transmit_step() {
  std::vector<int>& still_active = still_active_scratch_;
  still_active.clear();
  still_active.reserve(active_dirs_.size());
  if (dir_results_.size() < active_dirs_.size()) {
    dir_results_.resize(active_dirs_.size());
  }
  if (pool_ != nullptr && active_dirs_.size() >= kMinParallelDirs) {
    // Phase A in parallel: each shard advances one direction's private state
    // machine. Phase B sequentially, in active_dirs_ order: fault RNG, trace
    // events, deliveries, and stats replay exactly as sequential execution
    // interleaves them.
    const bool wall = wall_clock_tracing();
    pool_->run(static_cast<int>(active_dirs_.size()), [&](int pos) {
      transmit_dir(active_dirs_[static_cast<std::size_t>(pos)],
                   dir_results_[static_cast<std::size_t>(pos)]);
    }, wall ? &worker_timings_ : nullptr);
    if (wall) record_wall_spans("transmit");
    for (std::size_t pos = 0; pos < active_dirs_.size(); ++pos) {
      settle_dir(pos, still_active);
    }
  } else {
    for (std::size_t pos = 0; pos < active_dirs_.size(); ++pos) {
      transmit_dir(active_dirs_[pos], dir_results_[pos]);
      settle_dir(pos, still_active);
    }
  }
  active_dirs_.swap(still_active);
}

// ---- main loop -------------------------------------------------------------

RunResult Runner::run() {
  governor_ = net_.governor();
  if (governor_ != nullptr && governor_->stopped()) {
    // The solve's budget already ran out (or it was cancelled) in an earlier
    // run on this network: don't start fresh phases, report the latched
    // verdict with zero progress. Deterministic - the latch point itself is
    // deterministic for round/word budgets.
    governor_stop_ = governor_->latched();
  } else {
    run_rounds();
  }

  // Rounds consumed = index of the last round with a transmission, 1-based
  // (engine round r is CONGEST round r+1; trailing local computation after
  // the final delivery is free, idle waiting in the middle is not).
  stats_.rounds = had_transmission_ ? last_activity_round_ + 1 : 0;
  net_.total_rounds_ += stats_.rounds;
  if (reliable_ != nullptr) {
    stats_.retransmitted_words += reliable_->retransmitted_words();
    stats_.checksum_rejects += reliable_->checksum_rejects();
    stats_.dead_links += reliable_->dead_links();
  }
  RunOutcome outcome = RunOutcome::kCompleted;
  if (governor_stop_ != StopReason::kNone) {
    // A governed stop is the solve-wide verdict; it outranks the per-run
    // endings below (note_outcome in mwc/result.h ranks accordingly).
    outcome = governor_stop_ == StopReason::kCancelled
                  ? RunOutcome::kCancelled
                  : RunOutcome::kBudgetExhausted;
  } else if (round_limit_hit_) {
    outcome = RunOutcome::kRoundLimitExceeded;
  } else if (any_crash_) {
    const bool all_recovered = std::none_of(
        crashed_.begin(), crashed_.end(), [](bool down) { return down; });
    outcome = all_recovered ? RunOutcome::kRecovered : RunOutcome::kCrashed;
  }
  if (metrics_ != nullptr) {
    // One profile per run, recorded on the host thread after every per-round
    // effect was merged - the reason snapshots are bit-identical across
    // thread counts (see metrics.h).
    RunProfile profile;
    profile.stats = stats_;
    profile.outcome = outcome;
    profile.cut_words = run_cut_words_;
    profile.crashes = run_crashes_;
    for (std::size_t i = 0; i < dir_words_.size(); ++i) {
      if (dir_words_[i] > profile.max_link_words) {
        profile.max_link_words = dir_words_[i];
        profile.busiest_from = net_.dirs_[i].from;
        profile.busiest_to = net_.dirs_[i].to;
      }
    }
    metrics_->record_run(profile);
  }
  return RunResult{outcome, stats_};
}

void Runner::run_rounds() {
  Protocol& proto = active_proto();
  // Round 0: local setup + initial sends, every live node in id order.
  round_ = 0;
  apply_due_crashes();
  invocations_.clear();
  for (NodeId v = 0; v < net_.n(); ++v) {
    if (!crashed_[static_cast<std::size_t>(v)]) invocations_.push_back(v);
  }
  trace_round_begin();
  invoke_nodes(proto, /*first_round=*/true);
  drain_transport_trace();
  std::uint64_t words_before = stats_.words;
  transmit_step();
  trace_round_end(words_before);

  std::vector<NodeId> active_nodes;
  std::vector<std::uint64_t> last_invoked(static_cast<std::size_t>(net_.n()),
                                          ~std::uint64_t{0});
  while (true) {
    const bool in_flight = !active_dirs_.empty();
    const bool deliveries = !receivers_next_.empty();
    std::uint64_t next_round = round_ + 1;
    if (!in_flight && !deliveries) {
      // A pending recovery keeps an otherwise quiescent network alive: the
      // revived node's on_restart may start new traffic, exactly like a
      // scheduled wake would.
      const std::uint64_t recovery_round = next_recovery_round();
      if (wakes_.empty() && recovery_round == ~std::uint64_t{0}) {
        break;  // quiescent
      }
      std::uint64_t jump = recovery_round;
      if (!wakes_.empty()) jump = std::min(jump, wakes_.top().first);
      next_round = std::max(next_round, jump);
    }
    const std::uint64_t prev_round = round_;
    round_ = next_round;
    if (round_ > net_.config().max_rounds_per_run) {
      round_limit_hit_ = true;
      break;
    }
    if (governor_ != nullptr) {
      // Governed budgets see the network's accumulated totals: completed
      // runs plus the in-flight round of this one. Both inputs are
      // deterministic, so round/word-budget stops land on the same round at
      // every thread count.
      const StopReason stop =
          governor_->on_round(net_.total_rounds_ + round_, net_.total_words_);
      if (stop != StopReason::kNone) {
        governor_stop_ = stop;
        break;
      }
    }
    if (round_ > prev_round + 1 && trace_ != nullptr &&
        trace_->wants(TraceEventKind::kRoundJump)) {
      // Quiescent fast-forward (pending wake or recovery): mark the jump so
      // trace consumers see the numbering gap was intentional.
      trace_->record(TraceEvent{
          run_id_, round_, graph::kNoNode, graph::kNoNode,
          static_cast<std::uint32_t>(round_ - prev_round - 1),
          TraceEventKind::kRoundJump, {}});
    }
    apply_due_crashes();
    apply_due_recoveries();

    // Nodes to invoke this round: message receivers + due wake-ups.
    active_nodes.clear();
    active_nodes.swap(receivers_next_);
    while (!wakes_.empty() && wakes_.top().first <= round_) {
      active_nodes.push_back(wakes_.top().second);
      wakes_.pop();
    }
    // Deterministic order by default; the adversarial-schedule mode
    // randomizes both the invocation order and each inbox.
    std::sort(active_nodes.begin(), active_nodes.end());
    if (net_.config().shuffle_deliveries) schedule_rng_.shuffle(active_nodes);

    // Pre-pass, in invocation order: crash and duplicate filtering, plus the
    // adversarial inbox shuffles - everything that consumes schedule_rng_ -
    // happens here sequentially, so the parallel invocation phase that
    // follows touches no shared randomness.
    // A node revived this round is re-initialized through on_restart below;
    // stamping it here keeps stale wakes from before its crash from also
    // invoking round() on it in the same round.
    for (NodeId v : restarted_) {
      last_invoked[static_cast<std::size_t>(v)] = round_;
    }
    invocations_.clear();
    for (NodeId v : active_nodes) {
      if (crashed_[static_cast<std::size_t>(v)]) {
        inbox_next_[static_cast<std::size_t>(v)].clear();
        continue;
      }
      auto& stamp = last_invoked[static_cast<std::size_t>(v)];
      if (stamp == round_) continue;
      stamp = round_;
      if (net_.config().shuffle_deliveries) {
        schedule_rng_.shuffle(inbox_next_[static_cast<std::size_t>(v)]);
      }
      invocations_.push_back(v);
    }
    trace_round_begin();
    // Restarts run first, sequentially on the host thread and in schedule
    // order: their sends and wake-ups claim the same seq_ numbers at every
    // thread count, preserving bit-identical execution.
    for (NodeId v : restarted_) {
      NodeCtx ctx(*this, v);
      ctx.inbox_override_ = &inbox_next_[static_cast<std::size_t>(v)];
      proto.on_restart(ctx);
      inbox_next_[static_cast<std::size_t>(v)].clear();
    }
    restarted_.clear();
    invoke_nodes(proto, /*first_round=*/false);
    drain_transport_trace();

    words_before = stats_.words;
    transmit_step();
    trace_round_end(words_before);
  }
}

RunResult run_protocol_result(Network& net, Protocol& proto) {
  Runner runner(net, proto);
  return runner.run();
}

RunStats run_protocol(Network& net, Protocol& proto) {
  RunResult result = run_protocol_result(net, proto);
  if (!result.ok()) throw RunAbortedError(result.outcome, result.stats);
  return result.stats;
}

}  // namespace mwc::congest
