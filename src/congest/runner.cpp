#include "congest/runner.h"

#include <algorithm>

#include "congest/reliable_link.h"
#include "support/check.h"

namespace mwc::congest {

// ---- NodeCtx ---------------------------------------------------------------

int NodeCtx::n() const { return runner_->net_.n(); }

std::uint64_t NodeCtx::round() const { return runner_->round_; }

int NodeCtx::bandwidth_words() const {
  return runner_->net_.config().bandwidth_words;
}

std::span<const Delivery> NodeCtx::inbox() const {
  if (inbox_override_ != nullptr) return *inbox_override_;
  return runner_->inbox_current_;
}

void NodeCtx::send(NodeId neighbor, Message msg, std::int64_t priority) {
  if (send_hook_ != nullptr) {
    send_hook_->on_send(id_, neighbor, std::move(msg), priority);
    return;
  }
  runner_->send(id_, neighbor, std::move(msg), priority);
}

void NodeCtx::wake_at(std::uint64_t r) {
  runner_->wake_at(id_, std::max(r, runner_->round_ + 1));
}

void NodeCtx::wake_next() { wake_at(runner_->round_ + 1); }

support::Rng& NodeCtx::rng() {
  return runner_->node_rng_[static_cast<std::size_t>(id_)];
}

std::span<const graph::Arc> NodeCtx::out_arcs() const {
  return runner_->net_.problem_graph().out(id_);
}

std::span<const graph::Arc> NodeCtx::in_arcs() const {
  return runner_->net_.problem_graph().in(id_);
}

std::span<const NodeId> NodeCtx::comm_neighbors() const {
  return runner_->net_.comm_neighbors(id_);
}

bool NodeCtx::graph_is_directed() const {
  return runner_->net_.problem_graph().is_directed();
}

// ---- Runner ----------------------------------------------------------------

Runner::Runner(Network& net, Protocol& proto)
    : net_(net), proto_(proto), run_id_(net.run_counter()),
      dir_state_(net.dirs_.size()),
      inbox_next_(static_cast<std::size_t>(net.n())),
      schedule_rng_(0),
      crashed_(static_cast<std::size_t>(net.n()), false) {
  support::Rng run_rng = net.next_run_rng();
  node_rng_.reserve(static_cast<std::size_t>(net.n()));
  for (NodeId v = 0; v < net.n(); ++v) {
    node_rng_.push_back(run_rng.fork(static_cast<std::uint64_t>(v)));
  }
  schedule_rng_ = run_rng.fork(~std::uint64_t{0});
  if (net.config().faults.any()) {
    std::vector<std::pair<NodeId, NodeId>> endpoints;
    endpoints.reserve(net.dirs_.size());
    for (const Network::Direction& d : net.dirs_) {
      endpoints.emplace_back(d.from, d.to);
    }
    // A fault stream of its own, forked like the node streams: the schedule
    // is a pure function of (master seed, run counter).
    injector_ = std::make_unique<FaultInjector>(
        net.config().faults, run_rng.fork(~std::uint64_t{0} - 1), net.n(),
        endpoints);
  }
  if (net.config().reliable_transport) {
    reliable_ = std::make_unique<ReliableProtocol>(proto_, net.config().reliable);
  }
}

Runner::~Runner() = default;

Protocol& Runner::active_proto() {
  return reliable_ != nullptr ? *reliable_ : proto_;
}

void Runner::send(NodeId from, NodeId to, Message msg, std::int64_t priority) {
  MWC_CHECK_MSG(msg.size() >= 1, "messages must carry at least one word");
  int dir_idx = net_.direction_index(from, to);
  DirectionState& ds = dir_state_[static_cast<std::size_t>(dir_idx)];
  ds.queued_words += msg.size();
  stats_.max_queue_words = std::max(stats_.max_queue_words, ds.queued_words);
  ds.queue.push(QueuedMsg{priority, seq_++, std::move(msg)});
  activate_dir(dir_idx);
}

void Runner::wake_at(NodeId node, std::uint64_t r) { wakes_.emplace(r, node); }

void Runner::activate_dir(int dir_idx) {
  DirectionState& ds = dir_state_[static_cast<std::size_t>(dir_idx)];
  if (!ds.active) {
    ds.active = true;
    active_dirs_.push_back(dir_idx);
  }
}

void Runner::apply_due_crashes() {
  if (injector_ == nullptr) return;
  auto crashes = injector_->crashes();
  while (next_crash_ < crashes.size() && crashes[next_crash_].round <= round_) {
    const NodeId v = crashes[next_crash_++].node;
    if (!crashed_[static_cast<std::size_t>(v)]) crash_node(v);
  }
}

void Runner::crash_node(NodeId v) {
  crashed_[static_cast<std::size_t>(v)] = true;
  any_crash_ = true;
  // The node falls silent: queued and in-flight outbound traffic vanishes,
  // and anything still addressed to it will be discarded on arrival.
  const std::int32_t b = net_.nbr_offset_[static_cast<std::size_t>(v)];
  const std::int32_t e = net_.nbr_offset_[static_cast<std::size_t>(v) + 1];
  for (std::int32_t i = b; i < e; ++i) {
    DirectionState& ds =
        dir_state_[static_cast<std::size_t>(net_.nbr_dir_[static_cast<std::size_t>(i)])];
    if (ds.transmitting) {
      ++stats_.dropped_messages;
      stats_.dropped_words += ds.current.size() - ds.words_done;
      ds.transmitting = false;
    }
    while (!ds.queue.empty()) {
      ++stats_.dropped_messages;
      stats_.dropped_words += ds.queue.top().msg.size();
      ds.queue.pop();
    }
    ds.queued_words = 0;
  }
  inbox_next_[static_cast<std::size_t>(v)].clear();
  if (net_.trace_ != nullptr) {
    net_.trace_->record(TraceEvent{run_id_, round_, v, graph::kNoNode, 0,
                                   TraceEventKind::kCrash});
  }
}

void Runner::transmit_step() {
  const int bandwidth = net_.config().bandwidth_words;
  std::vector<int> still_active;
  still_active.reserve(active_dirs_.size());
  for (int dir_idx : active_dirs_) {
    DirectionState& ds = dir_state_[static_cast<std::size_t>(dir_idx)];
    const Network::Direction& dir = net_.dirs_[static_cast<std::size_t>(dir_idx)];
    if (injector_ != nullptr && injector_->stalled(dir_idx, round_)) {
      // Frozen: time passes, the queue holds. Still active by definition.
      ++stats_.stalled_rounds;
      if (net_.trace_ != nullptr) {
        net_.trace_->record(TraceEvent{
            run_id_, round_, dir.from, dir.to,
            static_cast<std::uint32_t>(ds.queued_words), TraceEventKind::kStall});
      }
      still_active.push_back(dir_idx);
      continue;
    }
    int budget = bandwidth;
    while (budget > 0) {
      if (!ds.transmitting) {
        if (ds.queue.empty()) break;
        ds.current = std::move(const_cast<QueuedMsg&>(ds.queue.top()).msg);
        ds.queue.pop();
        ds.words_done = 0;
        ds.transmitting = true;
      }
      std::uint32_t take = std::min<std::uint32_t>(
          static_cast<std::uint32_t>(budget), ds.current.size() - ds.words_done);
      ds.words_done += take;
      budget -= static_cast<int>(take);
      ds.queued_words -= take;
      stats_.words += take;
      net_.total_words_ += take;
      if (dir.crosses_cut) net_.cut_words_ += take;
      if (ds.words_done == ds.current.size()) {
        // Message fully transmitted: deliver for next round - unless a drop
        // fault eats it or the receiver is gone.
        const bool lost = crashed_[static_cast<std::size_t>(dir.to)] ||
                          (injector_ != nullptr && injector_->drop_message(dir_idx));
        if (lost) {
          ++stats_.dropped_messages;
          stats_.dropped_words += ds.current.size();
          if (net_.trace_ != nullptr) {
            net_.trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                           ds.current.size(),
                                           TraceEventKind::kDrop});
          }
        } else {
          if (net_.trace_ != nullptr) {
            net_.trace_->record(TraceEvent{run_id_, round_, dir.from, dir.to,
                                           ds.current.size()});
          }
          auto& box = inbox_next_[static_cast<std::size_t>(dir.to)];
          if (box.empty()) receivers_next_.push_back(dir.to);
          box.push_back(Delivery{dir.from, std::move(ds.current)});
          ++stats_.messages;
          ++net_.total_messages_;
        }
        ds.transmitting = false;
      }
    }
    if (ds.transmitting || !ds.queue.empty()) {
      still_active.push_back(dir_idx);
    } else {
      ds.active = false;
    }
    if (budget < bandwidth) {
      last_activity_round_ = round_;
      had_transmission_ = true;
    }
  }
  active_dirs_.swap(still_active);
}

RunResult Runner::run() {
  Protocol& proto = active_proto();
  // Round 0: local setup + initial sends.
  round_ = 0;
  apply_due_crashes();
  for (NodeId v = 0; v < net_.n(); ++v) {
    if (crashed_[static_cast<std::size_t>(v)]) continue;
    NodeCtx ctx(*this, v);
    proto.begin(ctx);
  }
  transmit_step();

  std::vector<NodeId> active_nodes;
  std::vector<std::uint64_t> last_invoked(static_cast<std::size_t>(net_.n()),
                                          ~std::uint64_t{0});
  while (true) {
    const bool in_flight = !active_dirs_.empty();
    const bool deliveries = !receivers_next_.empty();
    std::uint64_t next_round = round_ + 1;
    if (!in_flight && !deliveries) {
      if (wakes_.empty()) break;  // quiescent
      next_round = std::max(next_round, wakes_.top().first);
    }
    round_ = next_round;
    if (round_ > net_.config().max_rounds_per_run) {
      round_limit_hit_ = true;
      break;
    }
    apply_due_crashes();

    // Nodes to invoke this round: message receivers + due wake-ups.
    active_nodes.clear();
    active_nodes.swap(receivers_next_);
    while (!wakes_.empty() && wakes_.top().first <= round_) {
      active_nodes.push_back(wakes_.top().second);
      wakes_.pop();
    }
    // Deterministic order by default; the adversarial-schedule mode
    // randomizes both the invocation order and each inbox.
    std::sort(active_nodes.begin(), active_nodes.end());
    if (net_.config().shuffle_deliveries) schedule_rng_.shuffle(active_nodes);
    for (NodeId v : active_nodes) {
      if (crashed_[static_cast<std::size_t>(v)]) {
        inbox_next_[static_cast<std::size_t>(v)].clear();
        continue;
      }
      auto& stamp = last_invoked[static_cast<std::size_t>(v)];
      if (stamp == round_) continue;
      stamp = round_;
      inbox_current_.clear();
      inbox_current_.swap(inbox_next_[static_cast<std::size_t>(v)]);
      if (net_.config().shuffle_deliveries) schedule_rng_.shuffle(inbox_current_);
      NodeCtx ctx(*this, v);
      proto.round(ctx);
    }
    inbox_current_.clear();

    transmit_step();
  }

  // Rounds consumed = index of the last round with a transmission, 1-based
  // (engine round r is CONGEST round r+1; trailing local computation after
  // the final delivery is free, idle waiting in the middle is not).
  stats_.rounds = had_transmission_ ? last_activity_round_ + 1 : 0;
  net_.total_rounds_ += stats_.rounds;
  if (reliable_ != nullptr) {
    stats_.retransmitted_words += reliable_->retransmitted_words();
  }
  RunOutcome outcome = RunOutcome::kCompleted;
  if (round_limit_hit_) {
    outcome = RunOutcome::kRoundLimitExceeded;
  } else if (any_crash_) {
    outcome = RunOutcome::kCrashed;
  }
  return RunResult{outcome, stats_};
}

RunResult run_protocol_result(Network& net, Protocol& proto) {
  Runner runner(net, proto);
  return runner.run();
}

RunStats run_protocol(Network& net, Protocol& proto) {
  RunResult result = run_protocol_result(net, proto);
  if (!result.ok()) throw RunAbortedError(result.outcome, result.stats);
  return result.stats;
}

}  // namespace mwc::congest
