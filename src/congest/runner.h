// The synchronous store-and-forward engine.
//
// Executes one Protocol on a Network until quiescence: no messages in
// flight, none queued, and no wake-ups pending. The run's round count is a
// property of the execution (how many rounds until the network went quiet),
// accumulated into the Network so sequentially composed subroutines add up
// exactly as the paper composes them.
//
// Runs never abort the process for engine-level anomalies: exceeding
// max_rounds_per_run or losing nodes to injected crash-stop faults surfaces
// as a RunOutcome in the returned RunResult. When the Network's config
// enables reliable_transport, the Runner transparently wraps the protocol
// in the ReliableProtocol ARQ layer (reliable_link.h), so protocols run
// unmodified over links that drop messages (faults.h).
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "congest/faults.h"
#include "congest/network.h"
#include "congest/protocol.h"

namespace mwc::congest {

class ReliableProtocol;

class Runner {
 public:
  Runner(Network& net, Protocol& proto);
  ~Runner();

  // Runs to quiescence (or to the round limit) and reports how it ended.
  RunResult run();

 private:
  friend class NodeCtx;

  struct QueuedMsg {
    std::int64_t priority;
    std::uint64_t seq;
    Message msg;
  };
  struct QueuedMsgOrder {
    // priority_queue is max-first; invert for (priority, seq) min-first.
    bool operator()(const QueuedMsg& a, const QueuedMsg& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };
  struct DirectionState {
    std::priority_queue<QueuedMsg, std::vector<QueuedMsg>, QueuedMsgOrder> queue;
    Message current;             // message being transmitted, if any
    std::uint32_t words_done = 0;
    bool transmitting = false;
    bool active = false;         // member of active_dirs_
    std::uint64_t queued_words = 0;
  };

  // NodeCtx backend.
  void send(NodeId from, NodeId to, Message msg, std::int64_t priority);
  void wake_at(NodeId node, std::uint64_t r);

  // The protocol the engine actually steps (the reliable wrapper when
  // transport is enabled, the caller's protocol otherwise).
  Protocol& active_proto();

  void transmit_step();
  void activate_dir(int dir_idx);
  void apply_due_crashes();
  void crash_node(NodeId v);

  Network& net_;
  Protocol& proto_;
  std::uint64_t round_ = 0;
  std::uint64_t run_id_ = 0;  // Network run counter at construction
  std::uint64_t seq_ = 0;
  std::uint64_t last_activity_round_ = 0;
  bool had_transmission_ = false;

  std::vector<DirectionState> dir_state_;
  std::vector<int> active_dirs_;

  // Deliveries accumulated during transmit of round r, consumed at r+1.
  std::vector<std::vector<Delivery>> inbox_next_;
  std::vector<NodeId> receivers_next_;  // nodes with non-empty inbox_next_
  std::vector<Delivery> inbox_current_;  // the inbox seen by the node in round()

  // Wake requests: min-heap of (round, node); duplicates tolerated.
  using Wake = std::pair<std::uint64_t, NodeId>;
  std::priority_queue<Wake, std::vector<Wake>, std::greater<>> wakes_;

  std::vector<support::Rng> node_rng_;
  support::Rng schedule_rng_;  // adversarial-schedule fuzzing

  // Fault machinery (null / empty on fault-free configs).
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<ReliableProtocol> reliable_;
  std::vector<bool> crashed_;
  std::size_t next_crash_ = 0;
  bool any_crash_ = false;
  bool round_limit_hit_ = false;

  RunStats stats_;
};

// Thrown by run_protocol when a run does not complete (round limit, crash
// faults). Carries the full RunResult for callers that catch and inspect.
class RunAbortedError : public std::runtime_error {
 public:
  RunAbortedError(RunOutcome outcome, const RunStats& stats)
      : std::runtime_error(std::string("protocol run aborted: ") +
                           to_string(outcome) + " after " +
                           std::to_string(stats.rounds) + " rounds"),
        result_{outcome, stats} {}
  RunOutcome outcome() const { return result_.outcome; }
  const RunResult& result() const { return result_; }

 private:
  RunResult result_;
};

// Convenience: build a Runner, run it, and require a completed outcome
// (throws RunAbortedError otherwise). The one-liner for algorithms that
// treat any non-completion as unrecoverable.
RunStats run_protocol(Network& net, Protocol& proto);

// Convenience that surfaces the outcome instead of throwing - for harnesses
// that deliberately inject crashes or probe the round limit.
RunResult run_protocol_result(Network& net, Protocol& proto);

}  // namespace mwc::congest
