// The synchronous store-and-forward engine.
//
// Executes one Protocol on a Network until quiescence: no messages in
// flight, none queued, and no wake-ups pending. The run's round count is a
// property of the execution (how many rounds until the network went quiet),
// accumulated into the Network so sequentially composed subroutines add up
// exactly as the paper composes them.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "congest/network.h"
#include "congest/protocol.h"

namespace mwc::congest {

class Runner {
 public:
  Runner(Network& net, Protocol& proto);

  // Runs to quiescence (or aborts at cfg.max_rounds_per_run).
  RunStats run();

 private:
  friend class NodeCtx;

  struct QueuedMsg {
    std::int64_t priority;
    std::uint64_t seq;
    Message msg;
  };
  struct QueuedMsgOrder {
    // priority_queue is max-first; invert for (priority, seq) min-first.
    bool operator()(const QueuedMsg& a, const QueuedMsg& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };
  struct DirectionState {
    std::priority_queue<QueuedMsg, std::vector<QueuedMsg>, QueuedMsgOrder> queue;
    Message current;             // message being transmitted, if any
    std::uint32_t words_done = 0;
    bool transmitting = false;
    bool active = false;         // member of active_dirs_
    std::uint64_t queued_words = 0;
  };

  // NodeCtx backend.
  void send(NodeId from, NodeId to, Message msg, std::int64_t priority);
  void wake_at(NodeId node, std::uint64_t r);

  void transmit_step();
  void activate_dir(int dir_idx);

  Network& net_;
  Protocol& proto_;
  std::uint64_t round_ = 0;
  std::uint64_t run_id_ = 0;  // Network run counter at construction
  std::uint64_t seq_ = 0;
  std::uint64_t last_activity_round_ = 0;
  bool had_transmission_ = false;

  std::vector<DirectionState> dir_state_;
  std::vector<int> active_dirs_;

  // Deliveries accumulated during transmit of round r, consumed at r+1.
  std::vector<std::vector<Delivery>> inbox_next_;
  std::vector<NodeId> receivers_next_;  // nodes with non-empty inbox_next_
  std::vector<Delivery> inbox_current_;  // the inbox seen by the node in round()

  // Wake requests: min-heap of (round, node); duplicates tolerated.
  using Wake = std::pair<std::uint64_t, NodeId>;
  std::priority_queue<Wake, std::vector<Wake>, std::greater<>> wakes_;

  std::vector<support::Rng> node_rng_;
  support::Rng schedule_rng_;  // adversarial-schedule fuzzing
  RunStats stats_;
};

// Convenience: build a Runner and run it.
RunStats run_protocol(Network& net, Protocol& proto);

}  // namespace mwc::congest
