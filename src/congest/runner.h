// The synchronous store-and-forward engine.
//
// Executes one Protocol on a Network until quiescence: no messages in
// flight, none queued, and no wake-ups pending. The run's round count is a
// property of the execution (how many rounds until the network went quiet),
// accumulated into the Network so sequentially composed subroutines add up
// exactly as the paper composes them.
//
// Runs never abort the process for engine-level anomalies: exceeding
// max_rounds_per_run or losing nodes to injected crash-stop faults surfaces
// as a RunOutcome in the returned RunResult. When the Network's config
// enables reliable_transport, the Runner transparently wraps the protocol
// in the ReliableProtocol ARQ layer (reliable_link.h), so protocols run
// unmodified over links that drop messages (faults.h).
//
// Parallel execution (NetworkConfig::threads > 1): each round's node
// invocations and the transmit step run sharded across a worker pool, with
// all effects on shared engine state (message enqueue order, wake-ups,
// fault randomness, trace events, stats) buffered per shard and merged at
// the round barrier in the exact order sequential execution produces them.
// Results are bit-identical to threads=1 - see docs/simulator.md,
// "Execution model", for the determinism argument.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "congest/dir_queue.h"
#include "congest/faults.h"
#include "congest/frontier.h"
#include "congest/governor.h"
#include "congest/network.h"
#include "congest/protocol.h"
#include "congest/thread_pool.h"

namespace mwc::congest {

class Metrics;
class ReliableProtocol;

class Runner {
 public:
  Runner(Network& net, Protocol& proto);
  ~Runner();

  // Runs to quiescence (or to the round limit, or to a governed stop) and
  // reports how it ended. When the Network's attached Governor is already
  // latched, the run is skipped entirely and reports the latched outcome -
  // that is how a multi-phase solve winds down after budget exhaustion.
  RunResult run();

 private:
  friend class NodeCtx;

  // Per-direction state, split structure-of-arrays style. Exactly one of
  // the two queue representations is populated per run, selected by
  // NetworkConfig::settle_path: DirCold::queue holds whole Messages
  // (legacy), DirHot::fq + DirCold::fq_heap hold 32-byte word entries whose
  // multi-word payloads live in the Runner's spill pool (frontier; see
  // frontier.h). Both pop in the same strict (priority, seq) total order.
  //
  // DirHot is exactly one cache line and covers the entire frontier fast
  // path (enqueue a word into the inline slot, pop it, adjust the backlog):
  // with ~3k directions live per round on the multi-BFS sweeps the combined
  // state is far bigger than L2, so the per-direction line count - one hot
  // line here vs. the 3+ lines of the old fused struct - is the dominant
  // settle cost at n >= 512.
  struct alignas(64) DirHot {
    FqSlot fq;                   // inline depth-1 queue slot + entry count
    std::uint64_t queued_words = 0;
    std::uint32_t words_done = 0;
    bool transmitting = false;
    bool active = false;         // member of active_dirs_
  };
  static_assert(sizeof(DirHot) == 64, "DirHot is sized to one cache line");
  // Touched only off the fast path: multi-round transmissions (fcur), queue
  // depth > 1 (fq_heap), and the legacy settle path (queue/current).
  struct DirCold {
    FqEntry fcur;                // frontier: entry being transmitted, if any
    std::vector<FqEntry> fq_heap;  // frontier: overflow beyond the slot
    DirQueue queue;              // legacy
    Message current;             // legacy: message being transmitted, if any
  };

  // One node invocation's buffered effects (parallel path). The buffer is
  // the SendInterceptor installed on the engine-level NodeCtx, so sends of
  // the protocol *and* of any stacked transport land here; wake-ups arrive
  // through NodeCtx::wake_sink_. Slots live in emissions_, indexed by
  // invocation order, and are replayed in that order at the barrier -
  // reproducing the sequential seq_ numbering exactly.
  struct NodeEmission final : SendInterceptor {
    Runner* runner = nullptr;
    NodeId node = graph::kNoNode;
    struct BufferedSend {
      int dir_idx;
      std::int64_t priority;
      Message msg;
    };
    std::vector<BufferedSend> sends;
    std::vector<std::uint64_t> wakes;
    // Spill slots this invocation's inbox materialization vacated; pushed
    // onto spill_free_ at the merge barrier (workers must not touch the
    // freelist - the host passes spill_free_ directly in sequential mode).
    std::vector<std::uint32_t> freed_spills;
    void on_send(NodeId from, NodeId neighbor, Message msg,
                 std::int64_t priority) override;
  };

  // A delivered-but-not-yet-consumed message in its 16-byte compact form:
  // single-word payloads (the overwhelmingly common case) ride in `head`,
  // longer ones park their Message in the spill pool and `head` carries the
  // slot. Real Delivery objects exist only in the per-invocation scratch
  // they are materialized into - the inter-round delivery stream never
  // writes or re-reads a 72-byte Delivery (nor pays its Message move).
  struct PendingDelivery {
    NodeId from;
    std::uint32_t size;  // message length in words
    Word head;           // the payload when size == 1, else the spill slot
  };
  static_assert(sizeof(PendingDelivery) == 16,
                "PendingDelivery is the inter-round delivery currency");

  // One direction's transmit outcome (parallel path): the state-machine
  // advance runs sharded (it only touches the direction's own state), and
  // everything with engine-global effects - drop-fault randomness, trace
  // events, inbox delivery, stats - replays from this record at the
  // barrier, in active_dirs_ order, exactly as sequential execution
  // interleaves it.
  struct DirTransmit {
    bool stalled = false;
    bool used_budget = false;
    bool still_active = false;
    std::uint32_t words_moved = 0;
    std::vector<Message> completed;  // legacy: transmitted, completion order
    // Frontier path: compact completion records; the delivered Message is
    // only materialized at settle time, on the host thread.
    struct FqDone {
      Word head;
      std::uint32_t size;
      std::uint32_t spill;
    };
    std::vector<FqDone> fq_completed;
  };

  // NodeCtx backend.
  void send(NodeId from, NodeId to, Message msg, std::int64_t priority);
  void wake_at(NodeId node, std::uint64_t r);

  // The protocol the engine actually steps (the reliable wrapper when
  // transport is enabled, the caller's protocol otherwise).
  Protocol& active_proto();

  // The round loop proper (round 0 + the main loop), extracted so run()
  // can skip it when the Governor is latched and still share the epilogue
  // (stats, outcome, metrics) with every other ending.
  void run_rounds();

  // Invokes the protocol for every node in invocations_ (in order),
  // sharding across the pool when it pays. `first_round` selects begin()
  // over round().
  void invoke_nodes(Protocol& proto, bool first_round);
  void transmit_step();
  // Phase A: advance one direction's transmit state machine (touches only
  // that direction's state - shard-safe). Phase B: replay its engine-global
  // effects (fault RNG, traces, deliveries, stats) in active_dirs_ order.
  void transmit_dir(int dir_idx, DirTransmit& result);
  void settle_dir(int dir_idx, DirTransmit& r, std::vector<int>& still_active);
  void enqueue_dir(int dir_idx, Message msg, std::int64_t priority);
  // Single-word fast path: no Message is constructed on the frontier settle
  // path (the word rides in the queue entry until delivery).
  void enqueue_dir_word(int dir_idx, Word w, std::int64_t priority);
  // Shared enqueue prologue: backlog accounting + the kQueuePeak trace.
  void note_backlog(int dir_idx, DirHot& h, std::uint32_t words);
  // Spill pool for multi-word payloads: frontier queue entries and pending
  // deliveries of either settle path park Messages here and carry the slot
  // index. Recycling order is unobservable (entries name their own slot).
  std::uint32_t alloc_spill(Message msg);
  Message take_spill(std::uint32_t slot);
  void free_spill(std::uint32_t slot);
  // Builds the protocol-facing Delivery list for one node out of its compact
  // pending entries, consuming them: multi-word Messages move out of their
  // spill slots and the vacated slot indices land on `freed` - spill_free_
  // itself on the host thread, a worker-private list (merged at the barrier)
  // during parallel invocations, which keeps the freelist race-free.
  void materialize_inbox(std::vector<PendingDelivery>& box,
                         std::vector<Delivery>& out,
                         std::vector<std::uint32_t>& freed);
  // Drops a crashed node's pending deliveries, returning their spill slots.
  void discard_pending(std::vector<PendingDelivery>& box);
  // Builds the round's sorted, crash/duplicate-filtered invocation list
  // from receivers + due wakes. The frontier path switches between a sparse
  // sort and a dense bitmap scan; both produce the identical list (see
  // docs/simulator.md, "direction switch").
  void build_frontier(std::vector<NodeId>& active_nodes);
  void activate_dir(int dir_idx);
  void apply_due_crashes();
  void crash_node(NodeId v);
  // Revives crash-stopped nodes whose RecoverFault is due, collecting them
  // into restarted_; run() then re-initializes each through
  // Protocol::on_restart on the host thread, before the round's regular
  // invocations, so recovery effects interleave deterministically.
  void apply_due_recoveries();
  // Earliest round of a not-yet-applied recovery (keeps an otherwise
  // quiescent network alive, like a pending wake); ~0 when none.
  std::uint64_t next_recovery_round() const;
  // Trace hooks (no-ops unless the attached Trace opts in). The round
  // markers and the ARQ drain run on the host thread at fixed points of the
  // round loop, so the emitted stream is bit-identical across thread counts.
  void trace_round_begin();
  void trace_round_end(std::uint64_t words_before);
  void drain_transport_trace();
  // Congestion-ledger round sample (no-op when no ledger is attached). Runs
  // on the host thread right after trace_round_end, so the timeline is
  // bit-identical across thread counts like every other observable.
  void congestion_round_end(std::uint64_t words_before);
  // Converts the pool's per-lane busy windows from the last parallel region
  // into WallSpan records (side channel; wall-clock, non-deterministic).
  void record_wall_spans(const char* region);
  bool wall_clock_tracing() const {
    return trace_ != nullptr && trace_->wall_clock_enabled();
  }

  Network& net_;
  Protocol& proto_;
  const bool frontier_;  // config().settle_path == SettlePath::kFrontier
  std::uint64_t round_ = 0;
  std::uint64_t run_id_ = 0;  // Network run counter at construction
  std::uint64_t seq_ = 0;
  std::uint64_t last_activity_round_ = 0;
  bool had_transmission_ = false;

  std::vector<DirHot> dir_hot_;    // one cache line per direction
  std::vector<DirCold> dir_cold_;  // parallel array, off the fast path
  std::vector<int> active_dirs_;

  // Deliveries accumulated during transmit of round r, consumed at r+1 -
  // compact 16-byte entries (see PendingDelivery above). Per-node vectors
  // are reserved once and cleared (never shrunk) after consumption, so
  // steady-state rounds allocate nothing.
  std::vector<std::vector<PendingDelivery>> inbox_next_;
  std::vector<NodeId> receivers_next_;  // nodes with non-empty inbox_next_
  // Always empty: the inbox a NodeCtx without an override sees (round 0).
  std::vector<Delivery> inbox_current_;
  // Host-thread materialization scratch, reused across invocations so the
  // built Delivery objects live in cache-hot memory; parallel invocations
  // use one thread-local scratch per worker instead.
  std::vector<Delivery> inbox_scratch_;

  // Wake requests: min-heap of (round, node); duplicates tolerated.
  using Wake = std::pair<std::uint64_t, NodeId>;
  std::priority_queue<Wake, std::vector<Wake>, std::greater<>> wakes_;

  std::vector<support::Rng> node_rng_;
  support::Rng schedule_rng_;  // adversarial-schedule fuzzing

  // Parallel machinery. pool_ is the Network's shared pool (nullptr at
  // threads=1); the scratch vectors below are reused every round.
  ThreadPool* pool_ = nullptr;
  std::vector<NodeId> invocations_;      // nodes to step this round, in order
  std::vector<NodeEmission> emissions_;  // slot per invocation
  std::vector<DirTransmit> dir_results_; // slot per active direction (parallel)
  // Sequential transmit scratch: one slot reused for every direction, so the
  // record stays in L1 instead of streaming a cache line per active
  // direction through dir_results_ (~2.5k directions/round on the multi-BFS
  // sweeps - the stream was a measurable share of settle time).
  DirTransmit seq_result_;
  std::vector<int> still_active_scratch_;
  // Per-lane timing scratch for wall-clock tracing (reused every region).
  std::vector<ThreadPool::WorkerTiming> worker_timings_;

  // The Network's attached trace at construction (nullptr when detached);
  // cached so per-event hooks don't chase the Network pointer.
  Trace* trace_ = nullptr;

  // Metrics machinery (null / empty when no sink is attached). Per-direction
  // word totals feed the busiest-link congestion figures; everything is
  // updated on the host-thread merge path (settle_dir and run end), so the
  // recorded profile is bit-identical across thread counts for free.
  Metrics* metrics_ = nullptr;
  std::vector<std::uint64_t> dir_words_;  // per direction, this run
  std::uint64_t run_cut_words_ = 0;
  std::uint64_t run_crashes_ = 0;

  // Congestion observatory (nullptr when no ledger is attached). Fed on the
  // same host-thread merge paths as metrics_, so ledger snapshots inherit
  // the cross-thread-count byte-identity for free. See congestion.h.
  CongestionLedger* congestion_ = nullptr;

  // Fault machinery (null / empty on fault-free configs).
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<ReliableProtocol> reliable_;
  std::vector<bool> crashed_;
  std::size_t next_crash_ = 0;
  std::size_t next_recover_ = 0;
  std::vector<NodeId> restarted_;  // revived this round, in schedule order
  bool any_crash_ = false;
  bool round_limit_hit_ = false;

  // Governance (null / kNone when no Governor is attached). The stop reason
  // that ended this run, if any; maps to kBudgetExhausted / kCancelled.
  Governor* governor_ = nullptr;
  StopReason governor_stop_ = StopReason::kNone;

  // Multi-word payload pool: frontier queue entries and pending deliveries
  // of both settle paths park Messages here (see alloc_spill above).
  std::vector<Message> spill_;             // payload slots
  std::vector<std::uint32_t> spill_free_;  // recycled slot indices
  // Frontier settle-path machinery (unused under SettlePath::kLegacy).
  std::vector<std::uint64_t> frontier_bits_;  // dense-scan node bitmap
  FrontierStats fstats_;  // this run's counters; folded into the Network
  bool last_dense_ = false;
  bool any_frontier_round_ = false;

  RunStats stats_;
};

// Thrown by run_protocol when a run does not complete (round limit, crash
// faults). Carries the full RunResult for callers that catch and inspect.
class RunAbortedError : public std::runtime_error {
 public:
  RunAbortedError(RunOutcome outcome, const RunStats& stats)
      : std::runtime_error(std::string("protocol run aborted: ") +
                           to_string(outcome) + " after " +
                           std::to_string(stats.rounds) + " rounds"),
        result_{outcome, stats} {}
  RunOutcome outcome() const { return result_.outcome; }
  const RunResult& result() const { return result_; }

 private:
  RunResult result_;
};

// Convenience: build a Runner, run it, and require a completed outcome
// (throws RunAbortedError otherwise). The one-liner for algorithms that
// treat any non-completion as unrecoverable.
RunStats run_protocol(Network& net, Protocol& proto);

// Convenience that surfaces the outcome instead of throwing - for harnesses
// that deliberately inject crashes or probe the round limit.
RunResult run_protocol_result(Network& net, Protocol& proto);

}  // namespace mwc::congest
