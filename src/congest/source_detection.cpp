#include "congest/source_detection.h"

#include "congest/metrics.h"
#include "support/check.h"

namespace mwc::congest {

SourceDetectionResult source_detection(Network& net,
                                       const std::vector<graph::NodeId>& sources,
                                       int sigma, int hop_limit, RunStats* stats) {
  MWC_CHECK(sigma >= 1 && hop_limit >= 0);
  PhaseSpan span(net, "source_detection");
  MultiBfsParams params;
  params.sources = sources;
  params.mode = DelayMode::kUnitDelay;
  params.tick_limit = hop_limit;
  params.sigma = sigma;
  MultiBfs bfs = run_multi_bfs(net, std::move(params), stats);

  SourceDetectionResult result;
  result.detected.resize(static_cast<std::size_t>(net.n()));
  for (graph::NodeId v = 0; v < net.n(); ++v) {
    auto& out = result.detected[static_cast<std::size_t>(v)];
    for (const MultiBfs::Detected& e : bfs.detected(v)) {
      out.push_back(SourceDetectionResult::Entry{
          e.d, sources[static_cast<std::size_t>(e.source_idx)], e.parent});
    }
  }
  return result;
}

}  // namespace mwc::congest
