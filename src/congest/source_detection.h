// (sigma, h) source detection [Lenzen-Patt-Shamir-Peleg, 37].
//
// Given sources U, every node learns its sigma nearest sources within h
// hops, in O(sigma + h) rounds. Thin wrapper over MultiBfs's sigma-capped
// mode; kept as a named module because the paper invokes "a source detection
// algorithm [37]" as a black box in the girth algorithm (Section 4).
#pragma once

#include <vector>

#include "congest/multi_bfs.h"

namespace mwc::congest {

struct SourceDetectionResult {
  // detected[v]: up to sigma (distance, source node, parent) triples sorted
  // by (distance, source id) - node v's local knowledge.
  struct Entry {
    Weight d;
    graph::NodeId source;
    graph::NodeId parent;
  };
  std::vector<std::vector<Entry>> detected;
};

SourceDetectionResult source_detection(Network& net,
                                       const std::vector<graph::NodeId>& sources,
                                       int sigma, int hop_limit,
                                       RunStats* stats = nullptr);

}  // namespace mwc::congest
