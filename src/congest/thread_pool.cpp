#include "congest/thread_pool.h"

#include "support/check.h"

namespace mwc::congest {

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this, lane = i + 1] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::drain(Batch& batch, int lane) {
  WorkerTiming* timing =
      batch.timings != nullptr
          ? &(*batch.timings)[static_cast<std::size_t>(lane)]
          : nullptr;
  while (true) {
    const int shard = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (shard >= batch.total) return;
    if (timing != nullptr) {
      if (!timing->active) {
        timing->active = true;
        timing->start = std::chrono::steady_clock::now();
      }
      ++timing->shards;
    }
    try {
      (*batch.fn)(shard);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!batch.error) batch.error = std::current_exception();
    }
    if (timing != nullptr) timing->end = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    if (++batch.done == batch.total) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(int lane) {
  std::uint64_t seen = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      batch = batch_;
    }
    // A stale wake-up (batch already finished and retired) holds a batch
    // whose claim counter is exhausted; drain() then returns immediately.
    if (batch != nullptr) drain(*batch, lane);
  }
}

void ThreadPool::run(int shards, const std::function<void(int)>& fn,
                     std::vector<WorkerTiming>* timings) {
  if (timings != nullptr) {
    timings->assign(static_cast<std::size_t>(threads_), WorkerTiming{});
  }
  if (shards <= 0) return;
  if (threads_ == 1) {
    WorkerTiming* timing = timings != nullptr ? timings->data() : nullptr;
    if (timing != nullptr) {
      timing->active = true;
      timing->shards = shards;
      timing->start = std::chrono::steady_clock::now();
    }
    for (int i = 0; i < shards; ++i) fn(i);
    if (timing != nullptr) timing->end = std::chrono::steady_clock::now();
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->total = shards;
  batch->timings = timings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    MWC_CHECK_MSG(batch_ == nullptr, "ThreadPool::run is not re-entrant");
    batch_ = batch;
    ++generation_;
  }
  work_cv_.notify_all();
  drain(*batch, 0);  // the calling thread is lane 0 of the `threads_` lanes
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch->done == batch->total; });
    batch_ = nullptr;
    error = batch->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace mwc::congest
