// A persistent fork-join worker pool for the parallel engine.
//
// The CONGEST engine is bulk-synchronous: within one round, node
// invocations are independent and link-direction transmissions are
// independent, so each phase is an embarrassingly parallel batch between
// two barriers. This pool provides exactly that shape - run(shards, fn)
// executes fn(0..shards-1) across the workers *and the calling thread*,
// returning only when every shard finished - and nothing more. No futures,
// no task graph: determinism is the Runner's job (it assigns work to
// numbered shards and merges results in shard order), the pool only
// supplies cores.
//
// Shards are claimed dynamically (an atomic counter), so uneven shard
// costs self-balance; callers may pass more shards than threads.
//
// Exceptions thrown by fn are captured; the first one is rethrown from
// run() on the calling thread after the batch completes, so MWC_CHECK in
// throwing mode behaves the same as in sequential execution.
//
// The pool is created once (lazily, by the Network) and reused by every
// run; construction spawns threads-1 OS threads, destruction joins them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mwc::congest {

class ThreadPool {
 public:
  // `threads` >= 1: total parallelism including the calling thread.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Runs fn(shard) for every shard in [0, shards), blocking until all
  // complete. Must not be called re-entrantly from inside fn.
  void run(int shards, const std::function<void(int)>& fn);

 private:
  // One fork-join batch. Workers hold a shared_ptr, so a thread woken late
  // - after the batch completed and a new one (or none) replaced it - still
  // sees a valid object whose claim counter is exhausted, and touches
  // nothing of the next batch.
  struct Batch {
    const std::function<void(int)>* fn = nullptr;
    int total = 0;
    std::atomic<int> next{0};       // next shard to claim
    int done = 0;                   // guarded by mu_
    std::exception_ptr error;       // guarded by mu_
  };

  void worker_loop();
  // Claims and executes shards of `batch` until none remain.
  void drain(Batch& batch);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> batch_;  // guarded by mu_
  std::uint64_t generation_ = 0;  // guarded by mu_
  bool stop_ = false;             // guarded by mu_
};

}  // namespace mwc::congest
