// A persistent fork-join worker pool for the parallel engine.
//
// The CONGEST engine is bulk-synchronous: within one round, node
// invocations are independent and link-direction transmissions are
// independent, so each phase is an embarrassingly parallel batch between
// two barriers. This pool provides exactly that shape - run(shards, fn)
// executes fn(0..shards-1) across the workers *and the calling thread*,
// returning only when every shard finished - and nothing more. No futures,
// no task graph: determinism is the Runner's job (it assigns work to
// numbered shards and merges results in shard order), the pool only
// supplies cores.
//
// Shards are claimed dynamically (an atomic counter), so uneven shard
// costs self-balance; callers may pass more shards than threads.
//
// Exceptions thrown by fn are captured; the first one is rethrown from
// run() on the calling thread after the batch completes, so MWC_CHECK in
// throwing mode behaves the same as in sequential execution.
//
// The pool is created once (lazily, by the Network) and reused by every
// run; construction spawns threads-1 OS threads, destruction joins them.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mwc::congest {

class ThreadPool {
 public:
  // Wall-clock busy window of one pool lane during one run() batch: from
  // just before its first claimed shard to just after its last. Purely
  // observational (trace timelines); `active` stays false for lanes that
  // claimed no shard. Lane 0 is always the calling thread.
  struct WorkerTiming {
    std::chrono::steady_clock::time_point start{};
    std::chrono::steady_clock::time_point end{};
    int shards = 0;
    bool active = false;
  };

  // `threads` >= 1: total parallelism including the calling thread.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Runs fn(shard) for every shard in [0, shards), blocking until all
  // complete. Must not be called re-entrantly from inside fn. When
  // `timings` is non-null it is resized to threads() and slot i receives
  // lane i's busy window for this batch (each lane writes only its own
  // slot; the join barrier orders those writes before run() returns).
  void run(int shards, const std::function<void(int)>& fn,
           std::vector<WorkerTiming>* timings = nullptr);

 private:
  // One fork-join batch. Workers hold a shared_ptr, so a thread woken late
  // - after the batch completed and a new one (or none) replaced it - still
  // sees a valid object whose claim counter is exhausted, and touches
  // nothing of the next batch.
  struct Batch {
    const std::function<void(int)>* fn = nullptr;
    int total = 0;
    std::atomic<int> next{0};       // next shard to claim
    int done = 0;                   // guarded by mu_
    std::exception_ptr error;       // guarded by mu_
    // Per-lane timing slots (nullptr = caller doesn't want timings).
    std::vector<WorkerTiming>* timings = nullptr;
  };

  void worker_loop(int lane);
  // Claims and executes shards of `batch` until none remain; `lane` indexes
  // this thread's timing slot.
  void drain(Batch& batch, int lane);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> batch_;  // guarded by mu_
  std::uint64_t generation_ = 0;  // guarded by mu_
  bool stop_ = false;             // guarded by mu_
};

}  // namespace mwc::congest
