#include "congest/trace.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"

namespace mwc::congest {

Trace::Trace(std::size_t capacity) : capacity_(capacity) {
  MWC_CHECK(capacity >= 1);
  ring_.reserve(std::min<std::size_t>(capacity, 4096));
}

void Trace::record(const TraceEvent& event) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
}

std::size_t Trace::retained_count() const { return ring_.size(); }

std::vector<TraceEvent> Trace::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> Trace::in_round(std::uint64_t run,
                                        std::uint64_t round) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events()) {
    if (e.run == run && e.round == round) out.push_back(e);
  }
  return out;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Trace::round_profile(
    std::uint64_t run) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> profile;
  for (const TraceEvent& e : events()) {
    if (e.run != run || e.kind != TraceEventKind::kDeliver) continue;
    if (!profile.empty() && profile.back().first == e.round) {
      profile.back().second += e.words;
    } else {
      profile.emplace_back(e.round, e.words);
    }
  }
  return profile;
}

std::vector<TraceEvent> Trace::fault_events(std::uint64_t run) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events()) {
    if (e.run == run && e.kind != TraceEventKind::kDeliver) out.push_back(e);
  }
  return out;
}

std::string Trace::to_string(std::size_t max_lines) const {
  std::ostringstream out;
  std::size_t line = 0;
  for (const TraceEvent& e : events()) {
    if (line++ >= max_lines) {
      out << "... (" << (retained_count() - max_lines) << " more)\n";
      break;
    }
    out << "run " << e.run << " round " << e.round << ": ";
    if (e.kind == TraceEventKind::kCrash) {
      out << "node " << e.from << " CRASHED\n";
      continue;
    }
    out << e.from << " -> " << e.to << " (" << e.words << "w)";
    if (e.kind == TraceEventKind::kDrop) out << " DROPPED";
    if (e.kind == TraceEventKind::kStall) out << " STALLED";
    out << "\n";
  }
  if (dropped() > 0) out << "[" << dropped() << " older events dropped]\n";
  return out.str();
}

}  // namespace mwc::congest
