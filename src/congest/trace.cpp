#include "congest/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "support/check.h"

namespace mwc::congest {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kDeliver: return "deliver";
    case TraceEventKind::kDrop: return "drop";
    case TraceEventKind::kStall: return "stall";
    case TraceEventKind::kCrash: return "crash";
    case TraceEventKind::kRunBegin: return "run_begin";
    case TraceEventKind::kRoundBegin: return "round_begin";
    case TraceEventKind::kRoundEnd: return "round_end";
    case TraceEventKind::kPhaseBegin: return "phase_begin";
    case TraceEventKind::kPhaseEnd: return "phase_end";
    case TraceEventKind::kRetransmit: return "retransmit";
    case TraceEventKind::kAck: return "ack";
    case TraceEventKind::kQueuePeak: return "queue_peak";
    case TraceEventKind::kCorrupt: return "corrupt";
    case TraceEventKind::kRecover: return "recover";
    case TraceEventKind::kChecksumReject: return "checksum_reject";
    case TraceEventKind::kRoundJump: return "round_jump";
  }
  return "unknown";
}

bool kind_from_string(std::string_view name, TraceEventKind& out) {
  static constexpr TraceEventKind kAll[] = {
      TraceEventKind::kDeliver,    TraceEventKind::kDrop,
      TraceEventKind::kStall,      TraceEventKind::kCrash,
      TraceEventKind::kRunBegin,   TraceEventKind::kRoundBegin,
      TraceEventKind::kRoundEnd,   TraceEventKind::kPhaseBegin,
      TraceEventKind::kPhaseEnd,   TraceEventKind::kRetransmit,
      TraceEventKind::kAck,        TraceEventKind::kQueuePeak,
      TraceEventKind::kCorrupt,    TraceEventKind::kRecover,
      TraceEventKind::kChecksumReject, TraceEventKind::kRoundJump,
  };
  for (TraceEventKind k : kAll) {
    if (name == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

std::string to_string(const TraceEvent& e) {
  char head[64];
  std::snprintf(head, sizeof(head), "run %" PRIu64 " round %" PRIu64 ": ",
                e.run, e.round);
  std::string out = head;
  char buf[96];
  switch (e.kind) {
    case TraceEventKind::kCrash:
      std::snprintf(buf, sizeof(buf), "node %d CRASHED", e.from);
      return out + buf;
    case TraceEventKind::kRecover:
      std::snprintf(buf, sizeof(buf), "node %d RECOVERED", e.from);
      return out + buf;
    case TraceEventKind::kCorrupt:
      std::snprintf(buf, sizeof(buf), "%d -> %d CORRUPTED %uw", e.from, e.to,
                    e.words);
      return out + buf;
    case TraceEventKind::kChecksumReject:
      std::snprintf(buf, sizeof(buf), "%d -> %d CHECKSUM REJECT (%uw)",
                    e.from, e.to, e.words);
      return out + buf;
    case TraceEventKind::kRunBegin:
      return out + "RUN BEGIN";
    case TraceEventKind::kRoundJump:
      std::snprintf(buf, sizeof(buf), "ROUND JUMP skipped=%u", e.words);
      return out + buf;
    case TraceEventKind::kRoundBegin:
      std::snprintf(buf, sizeof(buf), "ROUND BEGIN invoked=%u", e.words);
      return out + buf;
    case TraceEventKind::kRoundEnd:
      std::snprintf(buf, sizeof(buf), "ROUND END words=%u", e.words);
      return out + buf;
    case TraceEventKind::kPhaseBegin:
      return out + "PHASE BEGIN '" + e.label + "'";
    case TraceEventKind::kPhaseEnd:
      return out + "PHASE END '" + e.label + "'";
    case TraceEventKind::kQueuePeak:
      std::snprintf(buf, sizeof(buf), "%d -> %d queue peak %uw", e.from, e.to,
                    e.words);
      return out + buf;
    case TraceEventKind::kAck:
      std::snprintf(buf, sizeof(buf), "%d -> %d ACK", e.from, e.to);
      return out + buf;
    default:
      break;
  }
  std::snprintf(buf, sizeof(buf), "%d -> %d (%uw)", e.from, e.to, e.words);
  out += buf;
  if (e.kind == TraceEventKind::kDrop) out += " DROPPED";
  if (e.kind == TraceEventKind::kStall) out += " STALLED";
  if (e.kind == TraceEventKind::kRetransmit) out += " RETRANSMIT";
  return out;
}

void append_json_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string to_jsonl(const TraceEvent& e) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"run\":%" PRIu64 ",\"round\":%" PRIu64
                ",\"kind\":\"%s\",\"from\":%d,\"to\":%d,\"words\":%u,"
                "\"label\":",
                e.run, e.round, to_string(e.kind), e.from, e.to, e.words);
  std::string out = buf;
  append_json_quoted(out, e.label);
  out += '}';
  return out;
}

// ---- RingSink --------------------------------------------------------------

RingSink::RingSink(std::size_t capacity) : capacity_(capacity) {
  MWC_CHECK(capacity >= 1);
  ring_.reserve(std::min<std::size_t>(capacity, 4096));
}

void RingSink::on_event(const TraceEvent& event) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> RingSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) out.push_back(at(i));
  return out;
}

// ---- JsonlSink -------------------------------------------------------------

void JsonlSink::on_event(const TraceEvent& event) {
  ++lines_;
  std::string line = to_jsonl(event);
  line += '\n';
  if (str_out_ != nullptr) {
    *str_out_ += line;
  } else if (file_out_ != nullptr) {
    std::fwrite(line.data(), 1, line.size(), file_out_);
  }
}

void JsonlSink::flush() {
  if (file_out_ != nullptr) std::fflush(file_out_);
}

// ---- Trace -----------------------------------------------------------------

Trace::Trace(std::size_t capacity, TraceOptions options)
    : options_(options), ring_(capacity),
      epoch_(std::chrono::steady_clock::now()) {}

bool Trace::wants(TraceEventKind kind) const {
  switch (kind) {
    case TraceEventKind::kRunBegin: return options_.run_markers;
    case TraceEventKind::kRoundBegin:
    case TraceEventKind::kRoundEnd:
    case TraceEventKind::kRoundJump: return options_.round_markers;
    case TraceEventKind::kPhaseBegin:
    case TraceEventKind::kPhaseEnd: return options_.phase_markers;
    case TraceEventKind::kRetransmit:
    case TraceEventKind::kAck:
    case TraceEventKind::kChecksumReject: return options_.transport_events;
    case TraceEventKind::kQueuePeak: return options_.queue_peaks;
    default: return true;
  }
}

void Trace::record(const TraceEvent& event) {
  ring_.on_event(event);
  for (TraceSink* sink : sinks_) sink->on_event(event);
}

void Trace::add_sink(TraceSink* sink) {
  MWC_CHECK(sink != nullptr);
  sinks_.push_back(sink);
}

std::vector<TraceEvent> Trace::in_round(std::uint64_t run,
                                        std::uint64_t round) const {
  std::vector<TraceEvent> out;
  for (std::size_t i = 0; i < ring_.retained(); ++i) {
    const TraceEvent& e = ring_.at(i);
    if (e.run == run && e.round == round) out.push_back(e);
  }
  return out;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Trace::round_profile(
    std::uint64_t run) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> profile;
  for (std::size_t i = 0; i < ring_.retained(); ++i) {
    const TraceEvent& e = ring_.at(i);
    if (e.run != run || e.kind != TraceEventKind::kDeliver) continue;
    if (!profile.empty() && profile.back().first == e.round) {
      profile.back().second += e.words;
    } else {
      profile.emplace_back(e.round, e.words);
    }
  }
  return profile;
}

std::vector<TraceEvent> Trace::fault_events(std::uint64_t run) const {
  std::vector<TraceEvent> out;
  for (std::size_t i = 0; i < ring_.retained(); ++i) {
    const TraceEvent& e = ring_.at(i);
    if (e.run != run) continue;
    if (e.kind == TraceEventKind::kDrop || e.kind == TraceEventKind::kStall ||
        e.kind == TraceEventKind::kCrash ||
        e.kind == TraceEventKind::kCorrupt ||
        e.kind == TraceEventKind::kRecover) {
      out.push_back(e);
    }
  }
  return out;
}

std::string Trace::to_string(std::size_t max_lines) const {
  std::ostringstream out;
  for (std::size_t i = 0; i < ring_.retained(); ++i) {
    if (i >= max_lines) {
      out << "... (" << (ring_.retained() - max_lines) << " more)\n";
      break;
    }
    out << congest::to_string(ring_.at(i)) << "\n";
  }
  if (dropped() > 0) out << "[" << dropped() << " older events dropped]\n";
  return out.str();
}

void Trace::record_wall(WallSpan span) {
  if (wall_.size() >= kMaxWallSpans) {
    ++wall_dropped_;
    return;
  }
  wall_.push_back(std::move(span));
}

}  // namespace mwc::congest
