// Optional round-by-round event tracing.
//
// Attach a Trace to a Network and every subsequent protocol run records
// message deliveries (round, from, to, words) into a bounded ring buffer.
// Intended for debugging protocols and for teaching material (the
// quickstart of a new algorithm is usually "trace 20 rounds and look");
// the engine's behaviour is unchanged and tracing costs nothing when
// detached.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace mwc::congest {

enum class TraceEventKind : std::uint8_t {
  kDeliver = 0,  // message fully transmitted and delivered
  kDrop,         // message fully transmitted, then lost to a fault
  kStall,        // a stall fault held back this direction's pending traffic
  kCrash,        // `from` crash-stopped this round (`to` unused)
};

struct TraceEvent {
  std::uint64_t run = 0;    // Network run counter at the time
  std::uint64_t round = 0;  // engine round the message finished transmitting
  graph::NodeId from = graph::kNoNode;
  graph::NodeId to = graph::kNoNode;
  std::uint32_t words = 0;
  TraceEventKind kind = TraceEventKind::kDeliver;

  // Event-wise equality: the determinism suite compares whole traces of
  // parallel vs. sequential executions.
  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class Trace {
 public:
  // Keeps at most `capacity` most-recent events.
  explicit Trace(std::size_t capacity = 1 << 16);

  void record(const TraceEvent& event);

  // Events in arrival order (oldest first among those retained).
  std::vector<TraceEvent> events() const;
  std::size_t total_recorded() const { return total_; }
  std::size_t dropped() const { return total_ - retained_count(); }

  // Events delivered in a given engine round of a given run.
  std::vector<TraceEvent> in_round(std::uint64_t run, std::uint64_t round) const;

  // Per-round delivered-word counts for a run: (round, words) pairs in
  // increasing round order - the "activity profile" of an execution.
  // Counts kDeliver events only; fault events never inflate the profile.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> round_profile(
      std::uint64_t run) const;

  // Retained fault events (kind != kDeliver) of a run, in arrival order.
  std::vector<TraceEvent> fault_events(std::uint64_t run) const;

  // Human-readable dump (bounded by max_lines).
  std::string to_string(std::size_t max_lines = 100) const;

 private:
  std::size_t retained_count() const;

  std::size_t capacity_;
  std::size_t total_ = 0;
  std::size_t head_ = 0;  // next slot to overwrite once saturated
  std::vector<TraceEvent> ring_;
};

}  // namespace mwc::congest
