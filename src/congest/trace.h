// Round-by-round event tracing behind pluggable sinks.
//
// Attach a Trace to a Network and every subsequent protocol run records its
// events. Storage is delegated to TraceSink implementations: the built-in
// ring sink keeps the historical bounded-buffer behavior (debugging,
// teaching material), while add_sink() fans every event out to additional
// sinks - notably JsonlSink, which streams the *whole* event sequence
// losslessly to a file in a stable one-object-per-line schema. The engine's
// behaviour is unchanged and tracing costs nothing when detached.
//
// The deterministic event stream: every event below except the wall-clock
// side channel is recorded on the engine's sequential (host-thread) paths,
// in an order that is bit-identical between NetworkConfig::threads = 1 and
// any N (see docs/simulator.md, "Execution model"). A JSONL trace of the
// same seeded run is therefore byte-identical across thread counts - the
// determinism suite and tools/trace_diff rely on exactly this.
//
// Beyond the original delivery/fault vocabulary, TraceOptions can enable
// run markers, per-round begin/end markers, metrics phase spans, ARQ
// transport events (retransmits/acks), and link-queue high-water samples.
// All optional kinds default to off, so a plain Trace records exactly what
// it always did.
//
// Wall-clock side channel: with TraceOptions::wall_clock the parallel
// runner additionally records worker-thread busy spans (WallSpan). These
// are real time, NOT deterministic, and never enter the event stream or
// its JSONL serialization - they exist solely so the Perfetto exporter
// (trace_export.h) can show a clearly-marked non-deterministic timeline of
// where the simulator itself spent wall time.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace mwc::congest {

enum class TraceEventKind : std::uint8_t {
  kDeliver = 0,  // message fully transmitted and delivered
  kDrop,         // message fully transmitted, then lost to a fault
  kStall,        // a stall fault held back this direction's pending traffic
  kCrash,        // `from` crash-stopped this round (`to` unused)
  // --- optional vocabulary (TraceOptions, default off) -----------------
  kRunBegin,     // a protocol run id was issued (from/to/words unused)
  kRoundBegin,   // an engine round started (words = nodes invoked)
  kRoundEnd,     // an engine round finished (words = words moved in it)
  kPhaseBegin,   // a metrics phase span opened (label = phase name)
  kPhaseEnd,     // a metrics phase span closed (label = phase name)
  kRetransmit,   // ARQ layer retransmitted a frame (words = frame size)
  kAck,          // ARQ layer sent a cumulative ack (words = frame size)
  kQueuePeak,    // direction backlog hit a new run maximum (words = depth)
  // --- fault vocabulary added with the corruption/recovery tier ---------
  kCorrupt,         // delivered message had words flipped (words = flips)
  kRecover,         // `from` rejoined after a crash-stop (`to` unused)
  kChecksumReject,  // ARQ layer rejected a corrupted frame (optional;
                    // gated with the other transport events)
  kRoundJump,       // quiescent fast-forward to a pending wake or recovery
                    // (round = landed-on round, words = rounds skipped;
                    // gated with the round markers). Without this marker a
                    // recovered run's round numbering jumps silently and
                    // trace_diff reports a spurious first divergence.
};

// Stable lowercase names ("deliver", "round_begin", ...) used by the JSONL
// schema; kind_from_string is the inverse (false on unknown names).
const char* to_string(TraceEventKind kind);
bool kind_from_string(std::string_view name, TraceEventKind& out);

struct TraceEvent {
  std::uint64_t run = 0;    // Network run counter at the time
  std::uint64_t round = 0;  // engine round the event belongs to
  graph::NodeId from = graph::kNoNode;
  graph::NodeId to = graph::kNoNode;
  std::uint32_t words = 0;
  TraceEventKind kind = TraceEventKind::kDeliver;
  // Phase name for kPhaseBegin/kPhaseEnd; empty otherwise.
  std::string label;

  // Event-wise equality: the determinism suite compares whole traces of
  // parallel vs. sequential executions.
  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

// One-line human rendering ("run 0 round 3: 1 -> 2 (1w)"); no newline.
std::string to_string(const TraceEvent& event);

// One stable JSONL object (fixed key order, all keys always present, label
// JSON-escaped; no newline):
//   {"run":0,"round":3,"kind":"deliver","from":1,"to":2,"words":1,"label":""}
std::string to_jsonl(const TraceEvent& event);

// Appends `s` to `out` as a JSON string literal (quotes included), escaping
// `"`, `\`, and every control character < 0x20.
void append_json_quoted(std::string& out, std::string_view s);

// Where recorded events go. Implementations must be cheap per event; the
// engine calls on_event on its host thread only.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  virtual void flush() {}
};

// The historical bounded ring: keeps the `capacity` most recent events.
class RingSink final : public TraceSink {
 public:
  explicit RingSink(std::size_t capacity);

  void on_event(const TraceEvent& event) override;

  std::size_t total_recorded() const { return total_; }
  std::size_t retained() const { return ring_.size(); }
  std::size_t dropped() const { return total_ - ring_.size(); }
  // i-th oldest retained event, i in [0, retained()).
  const TraceEvent& at(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }
  std::vector<TraceEvent> events() const;

 private:
  std::size_t capacity_;
  std::size_t total_ = 0;
  std::size_t head_ = 0;  // next slot to overwrite once saturated
  std::vector<TraceEvent> ring_;
};

// Streams every event as one JSONL line to `out`. Lossless: nothing is
// dropped, nothing buffered beyond the stream's own buffering. Because the
// event order is deterministic, the emitted bytes are identical across
// thread counts for the same seeded execution.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::string& out) : str_out_(&out) {}
  explicit JsonlSink(std::FILE* out) : file_out_(out) {}

  void on_event(const TraceEvent& event) override;
  void flush() override;
  std::size_t lines_written() const { return lines_; }

 private:
  std::string* str_out_ = nullptr;
  std::FILE* file_out_ = nullptr;
  std::size_t lines_ = 0;
};

// Which optional event kinds the engine should emit. The fault vocabulary
// (deliver/drop/stall/crash/corrupt/recover) is always recorded.
struct TraceOptions {
  bool run_markers = false;       // kRunBegin
  bool round_markers = false;     // kRoundBegin / kRoundEnd
  bool phase_markers = false;     // kPhaseBegin / kPhaseEnd
  bool transport_events = false;  // kRetransmit / kAck / kChecksumReject
  bool queue_peaks = false;       // kQueuePeak
  // Wall-clock worker spans (side channel, non-deterministic; see above).
  bool wall_clock = false;

  // Everything on - what `mwc_cli run --trace` uses.
  static TraceOptions full() {
    return TraceOptions{true, true, true, true, true, true};
  }
};

// One wall-clock busy span of a parallel-runner worker. Real time, never
// part of the deterministic event stream.
struct WallSpan {
  std::string name;          // parallel region: "invoke" or "transmit"
  std::uint64_t run = 0;
  std::uint64_t round = 0;
  int worker = 0;            // pool lane (0 = the calling thread)
  int shards = 0;            // shards this worker processed in the region
  double start_us = 0.0;     // µs since the Trace was constructed
  double dur_us = 0.0;

  friend bool operator==(const WallSpan&, const WallSpan&) = default;
};

class Trace {
 public:
  // The internal ring sink keeps at most `capacity` most-recent events.
  explicit Trace(std::size_t capacity = 1 << 16,
                 TraceOptions options = TraceOptions{});

  // True when the engine should emit events of this kind (always true for
  // the legacy deliver/drop/stall/crash vocabulary). Instrumentation sites
  // check this before building an event.
  bool wants(TraceEventKind kind) const;
  const TraceOptions& options() const { return options_; }

  // Fans the event out to the ring and every added sink.
  void record(const TraceEvent& event);

  // Additional sinks (not owned; must outlive the runs they observe).
  void add_sink(TraceSink* sink);

  // --- ring-backed queries (behavior unchanged from the pre-sink Trace) --
  std::vector<TraceEvent> events() const { return ring_.events(); }
  std::size_t total_recorded() const { return ring_.total_recorded(); }
  std::size_t dropped() const { return ring_.dropped(); }

  // Events delivered in a given engine round of a given run.
  std::vector<TraceEvent> in_round(std::uint64_t run, std::uint64_t round) const;

  // Per-round delivered-word counts for a run: (round, words) pairs in
  // increasing round order - the "activity profile" of an execution.
  // Counts kDeliver events only; no other kind inflates the profile.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> round_profile(
      std::uint64_t run) const;

  // Retained fault events (kDrop/kStall/kCrash/kCorrupt/kRecover) of a run,
  // in arrival order.
  std::vector<TraceEvent> fault_events(std::uint64_t run) const;

  // Human-readable dump (bounded by max_lines).
  std::string to_string(std::size_t max_lines = 100) const;

  // --- wall-clock side channel ------------------------------------------
  bool wall_clock_enabled() const { return options_.wall_clock; }
  void record_wall(WallSpan span);
  const std::vector<WallSpan>& wall_spans() const { return wall_; }
  std::size_t wall_dropped() const { return wall_dropped_; }
  // µs elapsed since this Trace was constructed (steady clock).
  double now_us() const { return to_us(std::chrono::steady_clock::now()); }
  double to_us(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double, std::micro>(tp - epoch_).count();
  }

 private:
  // Wall spans beyond this cap are counted but not kept (a multi-hour run
  // would otherwise accumulate one span per worker per round forever).
  static constexpr std::size_t kMaxWallSpans = std::size_t{1} << 20;

  TraceOptions options_;
  RingSink ring_;
  std::vector<TraceSink*> sinks_;
  std::vector<WallSpan> wall_;
  std::size_t wall_dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace mwc::congest
