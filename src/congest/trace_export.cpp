#include "congest/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <istream>
#include <limits>
#include <sstream>
#include <unordered_map>

namespace mwc::congest {
namespace {

// ---- strict JSONL cursor parser -------------------------------------------
//
// The writers (to_jsonl) emit a fixed key order with no whitespace, so the
// decoders can be simple exact-prefix cursors instead of a JSON library.
// Anything that deviates from the written schema is rejected with a message.

struct Cursor {
  std::string_view rest;
  std::string* error;

  bool fail(const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  }

  bool lit(std::string_view expected) {
    if (rest.substr(0, expected.size()) != expected) {
      return fail("expected '" + std::string(expected) + "' at '" +
                  std::string(rest.substr(0, 24)) + "'");
    }
    rest.remove_prefix(expected.size());
    return true;
  }

  bool u64(std::uint64_t& out) {
    std::size_t i = 0;
    out = 0;
    while (i < rest.size() && rest[i] >= '0' && rest[i] <= '9') {
      std::uint64_t digit = static_cast<std::uint64_t>(rest[i] - '0');
      if (out > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
        return fail("integer overflow");
      }
      out = out * 10 + digit;
      ++i;
    }
    if (i == 0) return fail("expected digits at '" +
                            std::string(rest.substr(0, 24)) + "'");
    rest.remove_prefix(i);
    return true;
  }

  bool i32(std::int32_t& out) {
    bool neg = !rest.empty() && rest.front() == '-';
    if (neg) rest.remove_prefix(1);
    std::uint64_t mag = 0;
    if (!u64(mag)) return false;
    std::uint64_t limit =
        neg ? std::uint64_t{1} << 31
            : static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max());
    if (mag > limit) return fail("int32 out of range");
    out = neg ? static_cast<std::int32_t>(-static_cast<std::int64_t>(mag))
              : static_cast<std::int32_t>(mag);
    return true;
  }

  bool u32(std::uint32_t& out) {
    std::uint64_t wide = 0;
    if (!u64(wide)) return false;
    if (wide > std::numeric_limits<std::uint32_t>::max()) {
      return fail("uint32 out of range");
    }
    out = static_cast<std::uint32_t>(wide);
    return true;
  }

  // Non-negative decimal with optional fraction ("12.125").
  bool f64(double& out) {
    std::size_t i = 0;
    while (i < rest.size() &&
           ((rest[i] >= '0' && rest[i] <= '9') || rest[i] == '.' ||
            rest[i] == '-')) {
      ++i;
    }
    if (i == 0) return fail("expected number");
    char* end = nullptr;
    std::string buf(rest.substr(0, i));
    out = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) return fail("bad number '" + buf + "'");
    rest.remove_prefix(i);
    return true;
  }

  // JSON string literal (leading quote already consumed by a lit("\"")?
  // No - this consumes both quotes). Handles the escapes the writer emits.
  bool str(std::string& out) {
    if (rest.empty() || rest.front() != '"') return fail("expected string");
    rest.remove_prefix(1);
    out.clear();
    while (!rest.empty()) {
      char c = rest.front();
      rest.remove_prefix(1);
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (rest.empty()) return fail("dangling escape");
      char esc = rest.front();
      rest.remove_prefix(1);
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (rest.size() < 4) return fail("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = rest[static_cast<std::size_t>(i)];
            unsigned digit = 0;
            if (h >= '0' && h <= '9') digit = static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') digit = 10u + static_cast<unsigned>(h - 'a');
            else if (h >= 'A' && h <= 'F') digit = 10u + static_cast<unsigned>(h - 'A');
            else return fail("bad \\u escape");
            value = value * 16 + digit;
          }
          rest.remove_prefix(4);
          if (value > 0x7f) {
            // The writer only \u-escapes control characters; anything above
            // ASCII passes through raw, so this is foreign input.
            return fail("non-ASCII \\u escape not supported");
          }
          out += static_cast<char>(value);
          break;
        }
        default: return fail(std::string("unknown escape \\") + esc);
      }
    }
    return fail("unterminated string");
  }

  bool done() {
    if (!rest.empty()) {
      return fail("trailing data '" + std::string(rest.substr(0, 24)) + "'");
    }
    return true;
  }
};

std::string_view strip_line(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  return line;
}

void append_f64(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

// ---- Perfetto emission helpers --------------------------------------------

// The deterministic process and its fixed threads (tracks).
constexpr int kEnginePid = 0;
constexpr int kTidRuns = 0;
constexpr int kTidRounds = 1;
constexpr int kTidPhases = 2;
constexpr int kTidEvents = 3;
// Wall-clock spans live in their own process so viewers can't mistake real
// time for simulated rounds.
constexpr int kWallPid = 1;

class PerfettoWriter {
 public:
  explicit PerfettoWriter(std::string& out) : out_(out) {}

  void begin_event() {
    out_ += first_ ? "\n  {" : ",\n  {";
    first_ = false;
    first_field_ = true;
  }
  void end_event() { out_ += '}'; }

  void field_str(std::string_view key, std::string_view value) {
    key_prefix(key);
    append_json_quoted(out_, value);
  }
  void field_u64(std::string_view key, std::uint64_t value) {
    key_prefix(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out_ += buf;
  }
  void field_i64(std::string_view key, std::int64_t value) {
    key_prefix(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out_ += buf;
  }
  void field_f64(std::string_view key, double value) {
    key_prefix(key);
    append_f64(out_, value);
  }
  // Opens an "args" object; fields added until end_args are nested in it.
  void begin_args() {
    key_prefix("args");
    out_ += '{';
    first_field_ = true;
  }
  void end_args() {
    out_ += '}';
    first_field_ = false;
  }

  // Convenience: thread/process metadata record.
  void metadata(int pid, int tid, std::string_view what, std::string_view name) {
    begin_event();
    field_str("ph", "M");
    field_i64("pid", pid);
    field_i64("tid", tid);
    field_str("name", what);
    begin_args();
    field_str("name", name);
    end_args();
    end_event();
  }

 private:
  void key_prefix(std::string_view key) {
    if (!first_field_) out_ += ',';
    first_field_ = false;
    out_ += '"';
    out_ += key;
    out_ += "\":";
  }

  std::string& out_;
  bool first_ = true;
  bool first_field_ = true;
};

}  // namespace

// ---- JSONL decoding --------------------------------------------------------

bool parse_trace_jsonl(std::string_view line, TraceEvent& out,
                       std::string* error) {
  Cursor c{strip_line(line), error};
  std::string kind_name;
  TraceEvent e;
  if (!c.lit("{\"run\":") || !c.u64(e.run)) return false;
  if (!c.lit(",\"round\":") || !c.u64(e.round)) return false;
  if (!c.lit(",\"kind\":") || !c.str(kind_name)) return false;
  if (!kind_from_string(kind_name, e.kind)) {
    return c.fail("unknown event kind '" + kind_name + "'");
  }
  if (!c.lit(",\"from\":") || !c.i32(e.from)) return false;
  if (!c.lit(",\"to\":") || !c.i32(e.to)) return false;
  if (!c.lit(",\"words\":") || !c.u32(e.words)) return false;
  if (!c.lit(",\"label\":") || !c.str(e.label)) return false;
  if (!c.lit("}") || !c.done()) return false;
  out = std::move(e);
  return true;
}

std::string to_jsonl(const WallSpan& span) {
  std::string out = "{\"name\":";
  append_json_quoted(out, span.name);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                ",\"run\":%" PRIu64 ",\"round\":%" PRIu64
                ",\"worker\":%d,\"shards\":%d,\"start_us\":",
                span.run, span.round, span.worker, span.shards);
  out += buf;
  append_f64(out, span.start_us);
  out += ",\"dur_us\":";
  append_f64(out, span.dur_us);
  out += '}';
  return out;
}

bool parse_wall_jsonl(std::string_view line, WallSpan& out,
                      std::string* error) {
  Cursor c{strip_line(line), error};
  WallSpan s;
  if (!c.lit("{\"name\":") || !c.str(s.name)) return false;
  if (!c.lit(",\"run\":") || !c.u64(s.run)) return false;
  if (!c.lit(",\"round\":") || !c.u64(s.round)) return false;
  if (!c.lit(",\"worker\":") || !c.i32(s.worker)) return false;
  if (!c.lit(",\"shards\":") || !c.i32(s.shards)) return false;
  if (!c.lit(",\"start_us\":") || !c.f64(s.start_us)) return false;
  if (!c.lit(",\"dur_us\":") || !c.f64(s.dur_us)) return false;
  if (!c.lit("}") || !c.done()) return false;
  out = std::move(s);
  return true;
}

// ---- Perfetto export -------------------------------------------------------

std::string perfetto_trace_json(std::span<const TraceEvent> events,
                                std::span<const WallSpan> wall_spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  PerfettoWriter w(out);

  w.metadata(kEnginePid, kTidRuns, "process_name",
             "CONGEST engine (deterministic rounds, 1 round = 1us)");
  w.metadata(kEnginePid, kTidRuns, "thread_name", "runs");
  w.metadata(kEnginePid, kTidRounds, "thread_name", "rounds");
  w.metadata(kEnginePid, kTidPhases, "thread_name", "phases");
  w.metadata(kEnginePid, kTidEvents, "thread_name", "events");

  // Global timeline: rounds are per-run clocks, so runs are laid out back to
  // back. `base[run]` is assigned from the running cursor at the first event
  // of that run; every engine event then lands at base[run] + round and
  // pushes the cursor. Phase markers (which live *between* runs and carry no
  // meaningful round) are pinned to the cursor itself.
  std::uint64_t cursor = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> base, max_ts;
  std::vector<std::uint64_t> run_order;

  auto ts_of = [&](const TraceEvent& e) -> std::uint64_t {
    if (e.kind == TraceEventKind::kPhaseBegin ||
        e.kind == TraceEventKind::kPhaseEnd) {
      return cursor;
    }
    auto [it, inserted] = base.try_emplace(e.run, cursor);
    if (inserted) run_order.push_back(e.run);
    std::uint64_t ts = it->second + e.round;
    auto [mit, first] = max_ts.try_emplace(e.run, ts);
    if (!first && ts > mit->second) mit->second = ts;
    cursor = std::max(cursor, ts + 1);
    return ts;
  };

  auto endpoint_args = [&](const TraceEvent& e) {
    w.begin_args();
    w.field_i64("from", e.from);
    w.field_i64("to", e.to);
    w.field_u64("words", e.words);
    w.end_args();
  };

  for (const TraceEvent& e : events) {
    std::uint64_t ts = ts_of(e);
    char name[64];
    switch (e.kind) {
      case TraceEventKind::kRunBegin:
        // Establishes the run's base; the run slice itself is emitted below.
        break;
      case TraceEventKind::kRoundBegin:
        std::snprintf(name, sizeof(name), "round %" PRIu64, e.round);
        w.begin_event();
        w.field_str("ph", "X");
        w.field_i64("pid", kEnginePid);
        w.field_i64("tid", kTidRounds);
        w.field_str("name", name);
        w.field_str("cat", "round");
        w.field_u64("ts", ts);
        w.field_u64("dur", 1);
        w.begin_args();
        w.field_u64("invoked", e.words);
        w.field_u64("run", e.run);
        w.end_args();
        w.end_event();
        break;
      case TraceEventKind::kRoundEnd:
        // Words moved this round, as a counter track.
        w.begin_event();
        w.field_str("ph", "C");
        w.field_i64("pid", kEnginePid);
        w.field_i64("tid", kTidRounds);
        w.field_str("name", "words moved");
        w.field_u64("ts", ts);
        w.begin_args();
        w.field_u64("words", e.words);
        w.end_args();
        w.end_event();
        break;
      case TraceEventKind::kPhaseBegin:
      case TraceEventKind::kPhaseEnd:
        w.begin_event();
        w.field_str("ph", e.kind == TraceEventKind::kPhaseBegin ? "B" : "E");
        w.field_i64("pid", kEnginePid);
        w.field_i64("tid", kTidPhases);
        w.field_str("name", e.label);
        w.field_str("cat", "phase");
        w.field_u64("ts", ts);
        w.end_event();
        break;
      default:
        // deliver / drop / stall / crash / retransmit / ack / queue_peak:
        // instant events on the events track, named by kind.
        w.begin_event();
        w.field_str("ph", "i");
        w.field_i64("pid", kEnginePid);
        w.field_i64("tid", kTidEvents);
        w.field_str("name", congest::to_string(e.kind));
        w.field_str("cat", "event");
        w.field_str("s", "t");
        w.field_u64("ts", ts);
        endpoint_args(e);
        w.end_event();
        break;
    }
  }

  for (std::uint64_t run : run_order) {
    char name[48];
    std::snprintf(name, sizeof(name), "run %" PRIu64, run);
    w.begin_event();
    w.field_str("ph", "X");
    w.field_i64("pid", kEnginePid);
    w.field_i64("tid", kTidRuns);
    w.field_str("name", name);
    w.field_str("cat", "run");
    w.field_u64("ts", base[run]);
    w.field_u64("dur", max_ts[run] - base[run] + 1);
    w.end_event();
  }

  if (!wall_spans.empty()) {
    w.metadata(kWallPid, 0, "process_name",
               "parallel runner wall clock [NON-DETERMINISTIC]");
    std::unordered_map<int, bool> named;
    for (const WallSpan& s : wall_spans) {
      if (!named[s.worker]) {
        named[s.worker] = true;
        char tname[48];
        std::snprintf(tname, sizeof(tname), "%s %d",
                      s.worker == 0 ? "host lane" : "worker", s.worker);
        w.metadata(kWallPid, s.worker, "thread_name", tname);
      }
      w.begin_event();
      w.field_str("ph", "X");
      w.field_i64("pid", kWallPid);
      w.field_i64("tid", s.worker);
      w.field_str("name", s.name);
      w.field_str("cat", "wall");
      w.field_f64("ts", s.start_us);
      w.field_f64("dur", s.dur_us);
      w.begin_args();
      w.field_u64("run", s.run);
      w.field_u64("round", s.round);
      w.field_i64("shards", s.shards);
      w.end_args();
      w.end_event();
    }
  }

  out += "\n]}\n";
  return out;
}

// ---- first-divergence diff -------------------------------------------------

TraceDiff diff_traces(std::istream& a, std::istream& b, int context_lines) {
  if (context_lines < 0) context_lines = 0;
  TraceDiff diff;
  std::deque<std::string> context;
  std::string la, lb;
  std::size_t line_no = 0;
  for (;;) {
    bool have_a = static_cast<bool>(std::getline(a, la));
    bool have_b = static_cast<bool>(std::getline(b, lb));
    ++line_no;
    if (!have_a && !have_b) {
      diff.common_lines = line_no - 1;
      diff.context.assign(context.begin(), context.end());
      return diff;  // identical
    }
    if (have_a && have_b && la == lb) {
      context.push_back(la);
      if (context.size() > static_cast<std::size_t>(context_lines)) {
        context.pop_front();
      }
      continue;
    }
    diff.diverged = true;
    diff.first_diverging_line = line_no;
    diff.common_lines = line_no - 1;
    diff.a_line = have_a ? la : std::string();
    diff.b_line = have_b ? lb : std::string();
    diff.context.assign(context.begin(), context.end());
    for (int i = 0; i < context_lines && std::getline(a, la); ++i) {
      diff.a_after.push_back(la);
    }
    for (int i = 0; i < context_lines && std::getline(b, lb); ++i) {
      diff.b_after.push_back(lb);
    }
    return diff;
  }
}

namespace {

// "  A| <raw line>" plus a decoded rendering when the line parses.
void describe_line(std::ostringstream& out, std::string_view tag,
                   const std::string& line) {
  out << "  " << tag << "| ";
  if (line.empty()) {
    out << "<end of trace>\n";
    return;
  }
  out << line << "\n";
  TraceEvent e;
  if (parse_trace_jsonl(line, e)) {
    out << "  " << tag << "= " << congest::to_string(e) << "\n";
  }
}

}  // namespace

std::string to_string(const TraceDiff& diff) {
  std::ostringstream out;
  if (!diff.diverged) {
    out << "traces identical (" << diff.common_lines << " events)\n";
    return out.str();
  }
  out << "traces diverge at event " << diff.first_diverging_line << " ("
      << diff.common_lines << " identical events before)\n";
  if (!diff.context.empty()) {
    out << "common context:\n";
    for (const std::string& line : diff.context) {
      TraceEvent e;
      if (parse_trace_jsonl(line, e)) {
        out << "   | " << congest::to_string(e) << "\n";
      } else {
        out << "   | " << line << "\n";
      }
    }
  }
  out << "first divergence:\n";
  describe_line(out, "A", diff.a_line);
  describe_line(out, "B", diff.b_line);
  if (!diff.a_after.empty() || !diff.b_after.empty()) {
    out << "following events:\n";
    for (const std::string& line : diff.a_after) describe_line(out, "A", line);
    for (const std::string& line : diff.b_after) describe_line(out, "B", line);
  }
  return out.str();
}

}  // namespace mwc::congest
