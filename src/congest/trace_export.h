// Offline trace tooling: JSONL parsing, Chrome/Perfetto timeline export,
// and first-divergence diffing of recorded traces.
//
// The JSONL format written by JsonlSink (trace.h) is this library's
// interchange format for whole executions: deterministic, byte-identical
// across thread counts, one event per line. This header provides the three
// consumers that make it useful after the run is gone:
//
//   * parse_trace_jsonl / parse_wall_jsonl - strict decoders of the event
//     and wall-span line schemas (the exact inverse of to_jsonl);
//   * perfetto_trace_json - renders a recorded execution as a Chrome
//     trace-event JSON that opens directly in ui.perfetto.dev: per-round
//     slices, runs, nested metrics phase spans, delivery/fault/transport
//     instants, a delivered-words counter track, and (when wall spans are
//     supplied) a separate, clearly-marked NON-DETERMINISTIC process with
//     the parallel runner's worker-thread busy slices;
//   * diff_traces - streams two JSONL traces and reports the first
//     diverging event with surrounding context, turning the determinism
//     suites' pass/fail bit into a debugging story (tools/trace_diff is a
//     thin CLI over this).
//
// Timeline semantics: the deterministic process uses *rounds* as its clock
// (1 round = 1 µs tick); runs on the same Network are laid out back to
// back in recorded order. The wall-clock process uses real microseconds
// since Trace construction. The two processes therefore share a file, not
// a time base - which is the honest rendering, since simulated rounds have
// no wall duration.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "congest/trace.h"

namespace mwc::congest {

// Decodes one JSONL line produced by to_jsonl(TraceEvent). Strict: the
// fixed key order of the writer is required. Returns false (and sets
// *error when non-null) on any mismatch.
bool parse_trace_jsonl(std::string_view line, TraceEvent& out,
                       std::string* error = nullptr);

// Wall-span sidecar codec (one span per line, fixed key order):
//   {"name":"invoke","run":0,"round":3,"worker":1,"shards":40,
//    "start_us":12.125,"dur_us":40.500}
std::string to_jsonl(const WallSpan& span);
bool parse_wall_jsonl(std::string_view line, WallSpan& out,
                      std::string* error = nullptr);

// Renders events (and optionally wall spans) as Chrome trace-event JSON
// ({"displayTimeUnit":...,"traceEvents":[...]}) for ui.perfetto.dev /
// chrome://tracing. Events must be in recorded order.
std::string perfetto_trace_json(std::span<const TraceEvent> events,
                                std::span<const WallSpan> wall_spans = {});

// First divergence between two JSONL traces, compared line by line.
struct TraceDiff {
  bool diverged = false;
  // 1-based line (= event index + 1) of the first difference; 0 when the
  // streams are identical.
  std::size_t first_diverging_line = 0;
  std::size_t common_lines = 0;      // length of the identical prefix
  std::string a_line, b_line;        // the diverging lines; "" = stream ended
  std::vector<std::string> context;  // last common lines before divergence
  std::vector<std::string> a_after, b_after;  // lines following the divergence

  bool identical() const { return !diverged; }
};

// Streams both inputs once; keeps at most `context_lines` lines of common
// prefix and of each post-divergence tail.
TraceDiff diff_traces(std::istream& a, std::istream& b, int context_lines = 3);

// Human-readable report of a diff ("traces identical (N events)" or the
// first divergence with context, decoded back into event form when the
// lines parse).
std::string to_string(const TraceDiff& diff);

}  // namespace mwc::congest
