#include "graph/generators.h"

#include <algorithm>
#include <set>
#include <utility>

#include "support/check.h"

namespace mwc::graph {

namespace {

Weight draw_weight(const WeightRange& w, support::Rng& rng) {
  MWC_CHECK(w.lo >= 1 && w.lo <= w.hi);
  return rng.next_in(w.lo, w.hi);
}

// Tracks which unordered/ordered pairs are already used so generators stay
// simple graphs.
class PairSet {
 public:
  explicit PairSet(bool ordered) : ordered_(ordered) {}

  bool insert(NodeId u, NodeId v) {
    auto key = ordered_ ? std::pair(u, v) : std::pair(std::min(u, v), std::max(u, v));
    return used_.insert(key).second;
  }

 private:
  bool ordered_;
  std::set<std::pair<NodeId, NodeId>> used_;
};

// A uniformly random spanning tree would need Wilson's algorithm; a random
// attachment tree is enough for workload diversity and keeps diameter low.
void add_random_tree(int n, WeightRange w, support::Rng& rng,
                     std::vector<Edge>& edges, PairSet& used) {
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);
  for (int i = 1; i < n; ++i) {
    NodeId child = order[static_cast<std::size_t>(i)];
    NodeId parent = order[static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(i)))];
    used.insert(child, parent);
    edges.push_back(Edge{child, parent, draw_weight(w, rng)});
  }
}

void add_random_edges(int n, int count, WeightRange w, support::Rng& rng,
                      std::vector<Edge>& edges, PairSet& used, bool ordered) {
  const std::int64_t max_pairs =
      static_cast<std::int64_t>(n) * (n - 1) / (ordered ? 1 : 2);
  MWC_CHECK_MSG(static_cast<std::int64_t>(edges.size()) + count <= max_pairs,
                "requested more edges than a simple graph admits");
  int added = 0;
  while (added < count) {
    NodeId u = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    NodeId v = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (!used.insert(u, v)) continue;
    edges.push_back(Edge{u, v, draw_weight(w, rng)});
    ++added;
  }
}

}  // namespace

Graph random_connected(int n, int m, WeightRange w, support::Rng& rng) {
  MWC_CHECK(n >= 2 && m >= n - 1);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  PairSet used(/*ordered=*/false);
  add_random_tree(n, w, rng, edges, used);
  add_random_edges(n, m - (n - 1), w, rng, edges, used, /*ordered=*/false);
  return Graph::undirected(n, edges);
}

Graph cycle_with_chords(int n, int chords, WeightRange w, support::Rng& rng) {
  MWC_CHECK(n >= 3);
  std::vector<Edge> edges;
  PairSet used(/*ordered=*/false);
  for (int i = 0; i < n; ++i) {
    NodeId u = i;
    NodeId v = (i + 1) % n;
    used.insert(u, v);
    edges.push_back(Edge{u, v, draw_weight(w, rng)});
  }
  add_random_edges(n, chords, w, rng, edges, used, /*ordered=*/false);
  return Graph::undirected(n, edges);
}

Graph grid(int rows, int cols, bool torus, WeightRange w, support::Rng& rng) {
  MWC_CHECK(rows >= 2 && cols >= 2);
  auto id = [cols](int r, int c) { return static_cast<NodeId>(r * cols + c); };
  std::vector<Edge> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back(Edge{id(r, c), id(r, c + 1), draw_weight(w, rng)});
      else if (torus && cols > 2) edges.push_back(Edge{id(r, c), id(r, 0), draw_weight(w, rng)});
      if (r + 1 < rows) edges.push_back(Edge{id(r, c), id(r + 1, c), draw_weight(w, rng)});
      else if (torus && rows > 2) edges.push_back(Edge{id(r, c), id(0, c), draw_weight(w, rng)});
    }
  }
  return Graph::undirected(rows * cols, edges);
}

Graph random_regular(int n, int d, WeightRange w, support::Rng& rng) {
  MWC_CHECK(n >= d + 1 && d >= 2);
  // Approximate d-regularity: union of d/2-ish random Hamiltonian cycles.
  std::vector<Edge> edges;
  PairSet used(/*ordered=*/false);
  int rings = std::max(1, d / 2);
  for (int ring = 0; ring < rings; ++ring) {
    std::vector<NodeId> order(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
    rng.shuffle(order);
    for (int i = 0; i < n; ++i) {
      NodeId u = order[static_cast<std::size_t>(i)];
      NodeId v = order[static_cast<std::size_t>((i + 1) % n)];
      if (used.insert(u, v)) edges.push_back(Edge{u, v, draw_weight(w, rng)});
    }
  }
  return Graph::undirected(n, edges);
}

Graph barbell(int clique, int bridge, WeightRange w, support::Rng& rng) {
  MWC_CHECK(clique >= 3 && bridge >= 1);
  const int n = 2 * clique + bridge;
  std::vector<Edge> edges;
  auto add_clique = [&](int base) {
    for (int i = 0; i < clique; ++i) {
      for (int j = i + 1; j < clique; ++j) {
        edges.push_back(Edge{base + i, base + j, draw_weight(w, rng)});
      }
    }
  };
  add_clique(0);
  add_clique(clique + bridge);
  // Path through the bridge vertices.
  NodeId prev = clique - 1;  // a vertex of the left clique
  for (int b = 0; b < bridge; ++b) {
    edges.push_back(Edge{prev, clique + b, draw_weight(w, rng)});
    prev = clique + b;
  }
  edges.push_back(Edge{prev, clique + bridge, draw_weight(w, rng)});
  return Graph::undirected(n, edges);
}

Graph expander_with_planted_cycle(int n, int cycle_len, Weight* planted_weight,
                                  support::Rng& rng) {
  MWC_CHECK(n >= cycle_len + 1 && cycle_len >= 3 && cycle_len <= 100);
  WeightRange heavy{100, 200};
  std::vector<Edge> edges;
  PairSet used(/*ordered=*/false);
  for (int i = 0; i < cycle_len; ++i) {
    NodeId u = i;
    NodeId v = (i + 1) % cycle_len;
    used.insert(u, v);
    edges.push_back(Edge{u, v, 1});
  }
  // Two random heavy Hamiltonian rings give a low-diameter 4-regular-ish
  // background (any non-planted cycle weighs >= 102).
  for (int ring = 0; ring < 2; ++ring) {
    std::vector<NodeId> order(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
    rng.shuffle(order);
    for (int i = 0; i < n; ++i) {
      NodeId u = order[static_cast<std::size_t>(i)];
      NodeId v = order[static_cast<std::size_t>((i + 1) % n)];
      if (u != v && used.insert(u, v)) {
        edges.push_back(Edge{u, v, draw_weight(heavy, rng)});
      }
    }
  }
  if (planted_weight != nullptr) *planted_weight = cycle_len;
  return Graph::undirected(n, edges);
}

Graph planted_mwc_undirected(int n, int m, int cycle_len, Weight* planted_weight,
                             support::Rng& rng) {
  // Any cycle not equal to the planted one uses >= 1 heavy edge (>= 100) and
  // >= 2 further edges, so it weighs >= 102 > cycle_len.
  MWC_CHECK(n >= cycle_len && cycle_len >= 3 && cycle_len <= 100);
  WeightRange heavy{100, 200};
  std::vector<Edge> edges;
  PairSet used(/*ordered=*/false);
  for (int i = 0; i < cycle_len; ++i) {
    NodeId u = i;
    NodeId v = (i + 1) % cycle_len;
    used.insert(u, v);
    edges.push_back(Edge{u, v, 1});
  }
  // Attach the rest of the graph.
  for (int v = cycle_len; v < n; ++v) {
    NodeId parent = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(v)));
    used.insert(v, parent);
    edges.push_back(Edge{v, parent, draw_weight(heavy, rng)});
  }
  int extra = m - static_cast<int>(edges.size());
  if (extra > 0) add_random_edges(n, extra, heavy, rng, edges, used, /*ordered=*/false);
  if (planted_weight != nullptr) *planted_weight = cycle_len;
  return Graph::undirected(n, edges);
}

Graph random_strongly_connected(int n, int m, WeightRange w, support::Rng& rng) {
  MWC_CHECK(n >= 2 && m >= n);
  std::vector<Edge> edges;
  PairSet used(/*ordered=*/true);
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);
  for (int i = 0; i < n; ++i) {
    NodeId u = order[static_cast<std::size_t>(i)];
    NodeId v = order[static_cast<std::size_t>((i + 1) % n)];
    used.insert(u, v);
    edges.push_back(Edge{u, v, draw_weight(w, rng)});
  }
  add_random_edges(n, m - n, w, rng, edges, used, /*ordered=*/true);
  return Graph::directed(n, edges);
}

Graph directed_cycle_with_shortcuts(int n, int shortcuts, WeightRange w,
                                    support::Rng& rng) {
  MWC_CHECK(n >= 2);
  std::vector<Edge> edges;
  PairSet used(/*ordered=*/true);
  for (int i = 0; i < n; ++i) {
    NodeId u = i;
    NodeId v = (i + 1) % n;
    used.insert(u, v);
    edges.push_back(Edge{u, v, draw_weight(w, rng)});
  }
  add_random_edges(n, shortcuts, w, rng, edges, used, /*ordered=*/true);
  return Graph::directed(n, edges);
}

Graph planted_mwc_directed(int n, int m, int cycle_len, Weight* planted_weight,
                           support::Rng& rng) {
  MWC_CHECK(n >= cycle_len && cycle_len >= 2 && cycle_len <= 100);
  WeightRange heavy{100, 200};
  std::vector<Edge> edges;
  PairSet used(/*ordered=*/true);
  // Planted light directed cycle on 0..cycle_len-1.
  for (int i = 0; i < cycle_len; ++i) {
    NodeId u = i;
    NodeId v = (i + 1) % cycle_len;
    used.insert(u, v);
    edges.push_back(Edge{u, v, 1});
  }
  // Heavy Hamiltonian ring over all n vertices keeps the digraph strongly
  // connected (skipping arcs the planted cycle already provides).
  for (int i = 0; i < n; ++i) {
    NodeId u = i;
    NodeId v = (i + 1) % n;
    if (used.insert(u, v)) edges.push_back(Edge{u, v, draw_weight(heavy, rng)});
  }
  int extra = m - static_cast<int>(edges.size());
  if (extra > 0) add_random_edges(n, extra, heavy, rng, edges, used, /*ordered=*/true);
  if (planted_weight != nullptr) *planted_weight = cycle_len;
  return Graph::directed(n, edges);
}

Graph bottleneck_digraph(int n, int hubs, support::Rng& rng) {
  MWC_CHECK(n >= 4 && hubs >= 1 && hubs < n / 2);
  // Hubs 0..hubs-1 sit on a directed ring; every other ("leaf") vertex v has
  // arcs v -> hub and hub' -> v for random hubs, so nearly every short cycle
  // through a leaf passes through hubs - all leaves' neighborhoods share the
  // hub set, concentrating BFS traffic there.
  std::vector<Edge> edges;
  PairSet used(/*ordered=*/true);
  auto add = [&](NodeId u, NodeId v, Weight w) {
    if (u != v && used.insert(u, v)) edges.push_back(Edge{u, v, w});
  };
  for (int i = 0; i < hubs; ++i) add(i, (i + 1) % hubs, 1);
  for (int v = hubs; v < n; ++v) {
    NodeId h1 = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(hubs)));
    NodeId h2 = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(hubs)));
    add(v, h1, 1);
    add(h2, v, 1);
  }
  // Ring over leaves keeps strong connectivity independent of hub choices.
  for (int v = hubs; v < n; ++v) {
    NodeId next = (v + 1 < n) ? v + 1 : hubs;
    add(v, next, 1);
  }
  return Graph::directed(n, edges);
}

}  // namespace mwc::graph
