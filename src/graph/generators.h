// Graph families used by tests, examples and benches.
//
// All generators are deterministic in (parameters, seed) and always return
// connected communication topologies (the CONGEST model requires a connected
// network; generators add a Hamiltonian backbone or spanning structure where
// the random family alone would not guarantee connectivity).
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "support/rng.h"

namespace mwc::graph {

struct WeightRange {
  Weight lo = 1;
  Weight hi = 1;
  bool unit() const { return lo == 1 && hi == 1; }
};

// --- Undirected families -------------------------------------------------

// Connected Erdos-Renyi-style G(n, m): a random spanning tree plus m - (n-1)
// extra distinct random edges.
Graph random_connected(int n, int m, WeightRange w, support::Rng& rng);

// Cycle 0-1-...-(n-1)-0 plus `chords` random chords. The base cycle gives a
// known Hamiltonian cycle; chords create shorter cycles.
Graph cycle_with_chords(int n, int chords, WeightRange w, support::Rng& rng);

// rows x cols grid; if torus, wraps around (girth 4, or min(rows,cols) for
// torus with large dimensions... girth of a grid is 4).
Graph grid(int rows, int cols, bool torus, WeightRange w, support::Rng& rng);

// Random d-regular-ish multigraph via perfect matchings, simplified: repeat
// pairing until simple; falls back to adding random edges. Degree ~ d.
Graph random_regular(int n, int d, WeightRange w, support::Rng& rng);

// Two cliques of `clique` vertices joined by a path of `bridge` vertices -
// the classic bottleneck-cut / large-diameter stress shape.
Graph barbell(int clique, int bridge, WeightRange w, support::Rng& rng);

// Random ~4-regular expander-ish graph with heavy edges plus one planted
// light cycle of `cycle_len` vertices; *planted_weight = cycle_len. Unlike
// planted_mwc_undirected the background has low diameter.
Graph expander_with_planted_cycle(int n, int cycle_len, Weight* planted_weight,
                                  support::Rng& rng);

// A graph with a planted (known) minimum weight cycle: a sparse random
// connected graph whose edges are heavy, plus one light cycle of `cycle_len`
// vertices with total weight strictly below twice... below any other cycle.
// Returns the graph; *planted_weight receives the planted cycle weight.
Graph planted_mwc_undirected(int n, int m, int cycle_len, Weight* planted_weight,
                             support::Rng& rng);

// --- Directed families ----------------------------------------------------

// Strongly-connected random digraph: directed Hamiltonian cycle backbone plus
// m - n extra random arcs.
Graph random_strongly_connected(int n, int m, WeightRange w, support::Rng& rng);

// Directed cycle 0->1->...->n-1->0 with `shortcuts` random forward shortcut
// arcs (creates short directed cycles with the backward part of the ring).
Graph directed_cycle_with_shortcuts(int n, int shortcuts, WeightRange w,
                                    support::Rng& rng);

// Digraph with a planted minimum weight directed cycle (see undirected
// variant).
Graph planted_mwc_directed(int n, int m, int cycle_len, Weight* planted_weight,
                           support::Rng& rng);

// A digraph engineered so that many vertices' short-cycle neighborhoods P(v)
// share a small set of "hub" vertices - stresses Algorithm 3's
// phase-overflow (bottleneck) handling. hubs << n.
Graph bottleneck_digraph(int n, int hubs, support::Rng& rng);

}  // namespace mwc::graph
