#include "graph/graph.h"

#include <algorithm>
#include <utility>

#include "support/check.h"

namespace mwc::graph {

Graph Graph::directed(int n, std::span<const Edge> edges) {
  return build(n, edges, /*directed=*/true);
}

Graph Graph::undirected(int n, std::span<const Edge> edges) {
  return build(n, edges, /*directed=*/false);
}

Graph Graph::build(int n, std::span<const Edge> edges, bool directed) {
  MWC_CHECK(n >= 0);
  Graph g;
  g.directed_ = directed;
  g.n_ = n;
  g.edges_.assign(edges.begin(), edges.end());
  g.max_weight_ = 1;
  g.min_weight_ = 1;

  std::vector<std::int32_t> out_deg(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> in_deg(static_cast<std::size_t>(n), 0);
  for (const Edge& e : g.edges_) {
    MWC_CHECK_MSG(e.from >= 0 && e.from < n && e.to >= 0 && e.to < n,
                  "edge endpoint out of range");
    MWC_CHECK_MSG(e.from != e.to, "self loops are not allowed");
    MWC_CHECK_MSG(e.w >= 1, "edge weights must be >= 1 (see DESIGN.md)");
    g.max_weight_ = std::max(g.max_weight_, e.w);
    g.min_weight_ = std::min(g.min_weight_, e.w);
    ++out_deg[static_cast<std::size_t>(e.from)];
    ++in_deg[static_cast<std::size_t>(e.to)];
    if (!directed) {
      ++out_deg[static_cast<std::size_t>(e.to)];
      ++in_deg[static_cast<std::size_t>(e.from)];
    }
  }

  auto prefix = [](const std::vector<std::int32_t>& deg) {
    std::vector<std::int32_t> off(deg.size() + 1, 0);
    for (std::size_t i = 0; i < deg.size(); ++i) off[i + 1] = off[i] + deg[i];
    return off;
  };
  g.out_offset_ = prefix(out_deg);
  g.in_offset_ = prefix(in_deg);
  g.out_arcs_.resize(static_cast<std::size_t>(g.out_offset_[static_cast<std::size_t>(n)]));
  g.in_arcs_.resize(static_cast<std::size_t>(g.in_offset_[static_cast<std::size_t>(n)]));

  std::vector<std::int32_t> out_pos(g.out_offset_.begin(), g.out_offset_.end() - 1);
  std::vector<std::int32_t> in_pos(g.in_offset_.begin(), g.in_offset_.end() - 1);
  for (std::size_t i = 0; i < g.edges_.size(); ++i) {
    const Edge& e = g.edges_[i];
    const EdgeId id = static_cast<EdgeId>(i);
    g.out_arcs_[static_cast<std::size_t>(out_pos[static_cast<std::size_t>(e.from)]++)] =
        Arc{e.to, e.w, id};
    g.in_arcs_[static_cast<std::size_t>(in_pos[static_cast<std::size_t>(e.to)]++)] =
        Arc{e.from, e.w, id};
    if (!directed) {
      g.out_arcs_[static_cast<std::size_t>(out_pos[static_cast<std::size_t>(e.to)]++)] =
          Arc{e.from, e.w, id};
      g.in_arcs_[static_cast<std::size_t>(in_pos[static_cast<std::size_t>(e.from)]++)] =
          Arc{e.to, e.w, id};
    }
  }

  auto by_endpoint = [](const Arc& a, const Arc& b) { return a.to < b.to; };
  for (int v = 0; v < n; ++v) {
    auto ob = g.out_arcs_.begin() + g.out_offset_[static_cast<std::size_t>(v)];
    auto oe = g.out_arcs_.begin() + g.out_offset_[static_cast<std::size_t>(v) + 1];
    std::sort(ob, oe, by_endpoint);
    MWC_CHECK_MSG(std::adjacent_find(ob, oe,
                                     [](const Arc& a, const Arc& b) { return a.to == b.to; }) == oe,
                  "parallel arcs are not allowed");
    auto ib = g.in_arcs_.begin() + g.in_offset_[static_cast<std::size_t>(v)];
    auto ie = g.in_arcs_.begin() + g.in_offset_[static_cast<std::size_t>(v) + 1];
    std::sort(ib, ie, by_endpoint);
  }
  return g;
}

std::span<const Arc> Graph::out(NodeId v) const {
  MWC_DCHECK(v >= 0 && v < n_);
  auto b = out_offset_[static_cast<std::size_t>(v)];
  auto e = out_offset_[static_cast<std::size_t>(v) + 1];
  return {out_arcs_.data() + b, static_cast<std::size_t>(e - b)};
}

std::span<const Arc> Graph::in(NodeId v) const {
  MWC_DCHECK(v >= 0 && v < n_);
  auto b = in_offset_[static_cast<std::size_t>(v)];
  auto e = in_offset_[static_cast<std::size_t>(v) + 1];
  return {in_arcs_.data() + b, static_cast<std::size_t>(e - b)};
}

bool Graph::has_arc(NodeId u, NodeId v) const {
  auto arcs = out(u);
  auto it = std::lower_bound(arcs.begin(), arcs.end(), v,
                             [](const Arc& a, NodeId t) { return a.to < t; });
  return it != arcs.end() && it->to == v;
}

Graph Graph::reversed() const {
  if (!directed_) return *this;
  std::vector<Edge> rev;
  rev.reserve(edges_.size());
  for (const Edge& e : edges_) rev.push_back(Edge{e.to, e.from, e.w});
  return directed(n_, rev);
}

Graph Graph::communication_topology() const {
  std::vector<Edge> links;
  links.reserve(edges_.size());
  for (const Edge& e : edges_) {
    NodeId a = std::min(e.from, e.to);
    NodeId b = std::max(e.from, e.to);
    links.push_back(Edge{a, b, 1});
  }
  std::sort(links.begin(), links.end(), [](const Edge& x, const Edge& y) {
    return std::pair(x.from, x.to) < std::pair(y.from, y.to);
  });
  links.erase(std::unique(links.begin(), links.end(),
                          [](const Edge& x, const Edge& y) {
                            return x.from == y.from && x.to == y.to;
                          }),
              links.end());
  return undirected(n_, links);
}

}  // namespace mwc::graph
