// The graph type shared by the whole library.
//
// A Graph is either directed or undirected, always weighted (unweighted
// graphs use weight 1 on every edge; generators enforce this). Weights are
// integers in {1..W}, W = poly(n), matching the paper's model (we require
// w >= 1; see DESIGN.md section 5).
//
// Storage is CSR-style: out-arcs and in-arcs sorted by endpoint. For an
// undirected graph each edge {u,v} appears as two arcs u->v and v->u sharing
// an edge id. Simple graphs only: no self loops, no parallel arcs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mwc::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using Weight = std::int64_t;

// "Infinite" distance; large enough that kInfWeight + any path weight never
// overflows int64 in intermediate arithmetic.
inline constexpr Weight kInfWeight = (1LL << 60);

inline constexpr NodeId kNoNode = -1;

struct Edge {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Weight w = 1;
};

// One endpoint of an arc as seen from a vertex's adjacency list.
struct Arc {
  NodeId to = kNoNode;
  Weight w = 1;
  EdgeId edge = -1;  // id of the underlying edge (shared by both arcs when undirected)
};

class Graph {
 public:
  Graph() = default;

  // Builders. Edges must be simple (no loops, no duplicate arcs); for
  // undirected graphs, {u,v} and {v,u} count as duplicates. Weights >= 1.
  static Graph directed(int n, std::span<const Edge> edges);
  static Graph undirected(int n, std::span<const Edge> edges);

  bool is_directed() const { return directed_; }
  int node_count() const { return n_; }
  // Number of underlying edges (directed: arcs; undirected: {u,v} pairs).
  int edge_count() const { return static_cast<int>(edges_.size()); }

  std::span<const Arc> out(NodeId v) const;
  std::span<const Arc> in(NodeId v) const;

  int out_degree(NodeId v) const { return static_cast<int>(out(v).size()); }
  int in_degree(NodeId v) const { return static_cast<int>(in(v).size()); }

  const Edge& edge(EdgeId e) const { return edges_[static_cast<std::size_t>(e)]; }
  std::span<const Edge> edges() const { return edges_; }

  Weight max_weight() const { return max_weight_; }
  bool is_unit_weight() const { return max_weight_ == 1 && min_weight_ == 1; }

  // True if arc u->v exists (binary search over sorted adjacency).
  bool has_arc(NodeId u, NodeId v) const;

  // The same graph with every arc reversed (undirected graphs are returned
  // unchanged). Edge ids are preserved.
  Graph reversed() const;

  // The underlying undirected communication topology: one undirected edge
  // per unordered pair {u,v} connected by at least one arc. Weights are 1
  // (communication links are unweighted). Returns *this for undirected
  // unit-weight graphs' shape; always a fresh undirected graph.
  Graph communication_topology() const;

 private:
  static Graph build(int n, std::span<const Edge> edges, bool directed);

  bool directed_ = false;
  int n_ = 0;
  std::vector<Edge> edges_;
  Weight max_weight_ = 1;
  Weight min_weight_ = 1;
  // CSR adjacency.
  std::vector<std::int32_t> out_offset_, in_offset_;
  std::vector<Arc> out_arcs_, in_arcs_;
};

}  // namespace mwc::graph
