#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace mwc::graph {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("graph parse error at line " + std::to_string(line) +
                           ": " + what);
}

// Next non-comment, non-blank line; returns false at EOF.
bool next_content_line(std::istream& in, std::string* line, int* line_no) {
  while (std::getline(in, *line)) {
    ++*line_no;
    const auto first = line->find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if ((*line)[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void save_graph(const Graph& g, std::ostream& out) {
  out << "mwc-graph " << (g.is_directed() ? "directed" : "undirected") << ' '
      << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) {
    out << e.from << ' ' << e.to << ' ' << e.w << '\n';
  }
}

void save_graph_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save_graph(g, out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Graph load_graph(std::istream& in) {
  std::string line;
  int line_no = 0;
  if (!next_content_line(in, &line, &line_no)) fail(line_no, "empty input");

  std::istringstream header(line);
  std::string magic, kind;
  long long n = 0, m = 0;
  if (!(header >> magic >> kind >> n >> m) || magic != "mwc-graph") {
    fail(line_no, "expected 'mwc-graph <directed|undirected> <n> <m>'");
  }
  bool directed = false;
  if (kind == "directed") {
    directed = true;
  } else if (kind != "undirected") {
    fail(line_no, "kind must be 'directed' or 'undirected', got '" + kind + "'");
  }
  if (n < 0 || m < 0 || n > (1 << 24)) fail(line_no, "implausible n/m");

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (long long i = 0; i < m; ++i) {
    if (!next_content_line(in, &line, &line_no)) {
      fail(line_no, "expected " + std::to_string(m) + " edges, got " +
                        std::to_string(i));
    }
    std::istringstream es(line);
    long long from = 0, to = 0, w = 0;
    if (!(es >> from >> to >> w)) fail(line_no, "expected '<from> <to> <weight>'");
    if (from < 0 || from >= n || to < 0 || to >= n) {
      fail(line_no, "endpoint out of range");
    }
    if (w < 1) fail(line_no, "weights must be >= 1");
    edges.push_back(Edge{static_cast<NodeId>(from), static_cast<NodeId>(to),
                         static_cast<Weight>(w)});
  }
  // Pre-validate the structural rules Graph::build enforces with aborts, so
  // bad files surface as exceptions instead.
  std::set<std::pair<NodeId, NodeId>> used;
  for (const Edge& e : edges) {
    if (e.from == e.to) fail(line_no, "self loop");
    auto key = directed ? std::pair(e.from, e.to)
                        : std::pair(std::min(e.from, e.to), std::max(e.from, e.to));
    if (!used.insert(key).second) fail(line_no, "duplicate edge");
  }
  return directed ? Graph::directed(static_cast<int>(n), edges)
                  : Graph::undirected(static_cast<int>(n), edges);
}

Graph load_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return load_graph(in);
}

}  // namespace mwc::graph
