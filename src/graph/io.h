// Plain-text graph serialization.
//
// Format (whitespace separated, '#' comments):
//
//   mwc-graph <directed|undirected> <n> <m>
//   <from> <to> <weight>     # m edge lines
//
// Weights are integers >= 1 (the library's convention); vertex ids are
// 0..n-1. Loaders throw std::runtime_error with a line-numbered message on
// malformed input - I/O is the one place this library prefers exceptions
// over aborting, since bad files are expected in normal operation.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace mwc::graph {

void save_graph(const Graph& g, std::ostream& out);
void save_graph_file(const Graph& g, const std::string& path);

Graph load_graph(std::istream& in);
Graph load_graph_file(const std::string& path);

}  // namespace mwc::graph
