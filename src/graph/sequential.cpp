#include "graph/sequential.h"

#include <algorithm>
#include <queue>

#include "graph/transforms.h"
#include "support/check.h"

namespace mwc::graph::seq {

namespace {

// Dijkstra that can skip one edge id (for the edge-removal MWC reference)
// and stop early once `target` is settled (target == kNoNode disables).
std::vector<Weight> dijkstra_impl(const Graph& g, NodeId s, EdgeId skip_edge,
                                  NodeId target) {
  std::vector<Weight> dist(static_cast<std::size_t>(g.node_count()), kInfWeight);
  using Item = std::pair<Weight, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(s)] = 0;
  pq.emplace(0, s);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[static_cast<std::size_t>(u)]) continue;
    if (u == target) break;
    for (const Arc& a : g.out(u)) {
      if (a.edge == skip_edge) continue;
      Weight nd = d + a.w;
      if (nd < dist[static_cast<std::size_t>(a.to)]) {
        dist[static_cast<std::size_t>(a.to)] = nd;
        pq.emplace(nd, a.to);
      }
    }
  }
  return dist;
}

std::vector<Weight> hop_limited_impl(const Graph& g, NodeId s, int h,
                                     EdgeId skip_edge) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<Weight> dist(n, kInfWeight);
  dist[static_cast<std::size_t>(s)] = 0;
  std::vector<Weight> next(n);
  for (int round = 0; round < h; ++round) {
    next = dist;
    bool changed = false;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      Weight du = dist[static_cast<std::size_t>(u)];
      if (du == kInfWeight) continue;
      for (const Arc& a : g.out(u)) {
        if (a.edge == skip_edge) continue;
        if (du + a.w < next[static_cast<std::size_t>(a.to)]) {
          next[static_cast<std::size_t>(a.to)] = du + a.w;
          changed = true;
        }
      }
    }
    dist.swap(next);
    if (!changed) break;
  }
  return dist;
}

}  // namespace

std::vector<Weight> bfs_hops(const Graph& g, NodeId s) {
  std::vector<Weight> dist(static_cast<std::size_t>(g.node_count()), kInfWeight);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(s)] = 0;
  q.push(s);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (const Arc& a : g.out(u)) {
      if (dist[static_cast<std::size_t>(a.to)] == kInfWeight) {
        dist[static_cast<std::size_t>(a.to)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push(a.to);
      }
    }
  }
  return dist;
}

std::vector<Weight> dijkstra(const Graph& g, NodeId s) {
  return dijkstra_impl(g, s, /*skip_edge=*/-1, /*target=*/kNoNode);
}

std::vector<Weight> hop_limited_dist(const Graph& g, NodeId s, int h) {
  MWC_CHECK(h >= 0);
  return hop_limited_impl(g, s, h, /*skip_edge=*/-1);
}

std::vector<std::vector<Weight>> apsp(const Graph& g) {
  std::vector<std::vector<Weight>> d;
  d.reserve(static_cast<std::size_t>(g.node_count()));
  for (NodeId s = 0; s < g.node_count(); ++s) d.push_back(dijkstra(g, s));
  return d;
}

int communication_diameter(const Graph& g) {
  Graph topo = g.communication_topology();
  Weight diam = 0;
  for (NodeId s = 0; s < topo.node_count(); ++s) {
    for (Weight dv : bfs_hops(topo, s)) {
      MWC_CHECK_MSG(dv != kInfWeight, "communication topology must be connected");
      diam = std::max(diam, dv);
    }
  }
  return static_cast<int>(diam);
}

bool is_connected_topology(const Graph& g) {
  if (g.node_count() == 0) return true;
  Graph topo = g.communication_topology();
  auto d = bfs_hops(topo, 0);
  return std::none_of(d.begin(), d.end(),
                      [](Weight w) { return w == kInfWeight; });
}

bool is_strongly_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  auto forward = bfs_hops(g, 0);
  auto backward = bfs_hops(g.reversed(), 0);
  for (std::size_t i = 0; i < forward.size(); ++i) {
    if (forward[i] == kInfWeight || backward[i] == kInfWeight) return false;
  }
  return true;
}

Weight mwc(const Graph& g) {
  Weight best = kInfWeight;
  if (g.is_directed()) {
    // min over arcs (u,v) of d(v,u) + w(u,v); exact because shortest paths
    // are simple and a v->u path cannot traverse (u,v).
    for (const Edge& e : g.edges()) {
      auto dist = dijkstra_impl(g, e.to, /*skip_edge=*/-1, /*target=*/e.from);
      Weight d = dist[static_cast<std::size_t>(e.from)];
      if (d != kInfWeight) best = std::min(best, d + e.w);
    }
  } else {
    // min over edges e={u,v} of dist_{G-e}(u,v) + w(e); removing e forces
    // the closing path to be a genuine second route, so every candidate is
    // the weight of a simple cycle through e.
    for (EdgeId i = 0; i < g.edge_count(); ++i) {
      const Edge& e = g.edge(i);
      auto dist = dijkstra_impl(g, e.from, i, e.to);
      Weight d = dist[static_cast<std::size_t>(e.to)];
      if (d != kInfWeight) best = std::min(best, d + e.w);
    }
  }
  return best;
}

Weight hop_limited_mwc(const Graph& g, int h) {
  MWC_CHECK(h >= 2);
  Weight best = kInfWeight;
  if (g.is_directed()) {
    for (const Edge& e : g.edges()) {
      auto dist = hop_limited_impl(g, e.to, h - 1, /*skip_edge=*/-1);
      Weight d = dist[static_cast<std::size_t>(e.from)];
      if (d != kInfWeight) best = std::min(best, d + e.w);
    }
  } else {
    for (EdgeId i = 0; i < g.edge_count(); ++i) {
      const Edge& e = g.edge(i);
      auto dist = hop_limited_impl(g, e.from, h - 1, i);
      Weight d = dist[static_cast<std::size_t>(e.to)];
      if (d != kInfWeight) best = std::min(best, d + e.w);
    }
  }
  return best;
}

Weight girth(const Graph& g) {
  MWC_CHECK(!g.is_directed());
  return mwc(unweighted_shape(g));
}

}  // namespace mwc::graph::seq
