// Sequential reference algorithms.
//
// These are the ground truth the distributed algorithms are tested against.
// They favour obviousness over speed: in particular the exact MWC references
// use the edge-removal characterization (MWC = min over edges e=(u,v) of
// dist_{G-e}(v,u) + w(e)), which sidesteps the classic pitfalls of
// BFS-tree-based girth formulas (degenerate closed walks, tie-broken SSSP
// trees). O(m * SSSP) is plenty fast at test sizes.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace mwc::graph::seq {

// Hop counts from s (weights ignored); kInfWeight if unreachable.
// Respects arc directions in directed graphs.
std::vector<Weight> bfs_hops(const Graph& g, NodeId s);

// Weighted shortest path distances from s.
std::vector<Weight> dijkstra(const Graph& g, NodeId s);

// Exact minimum weight over paths from s using at most h arcs
// (h-hop-limited distances; Bellman-Ford with h relaxation rounds).
std::vector<Weight> hop_limited_dist(const Graph& g, NodeId s, int h);

// All-pairs dist[u][v]; Dijkstra from every source. Intended for n <= ~1024.
std::vector<std::vector<Weight>> apsp(const Graph& g);

// Hop diameter of the (undirected, unweighted) communication topology;
// the parameter D of the CONGEST model. Graph must be connected.
int communication_diameter(const Graph& g);

bool is_connected_topology(const Graph& g);
bool is_strongly_connected(const Graph& g);

// --- Exact minimum weight cycle references -------------------------------

// Weight of a minimum weight simple cycle; kInfWeight if acyclic.
// Works for all four graph classes (directed/undirected x unit/weighted);
// undirected cycles must have >= 3 edges, directed cycles >= 2 arcs.
Weight mwc(const Graph& g);

// Min weight among simple cycles with at most h edges (kInfWeight if none).
Weight hop_limited_mwc(const Graph& g, int h);

// Girth of an undirected graph ignoring weights (unit-weight view).
Weight girth(const Graph& g);

}  // namespace mwc::graph::seq
