#include "graph/transforms.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/check.h"

namespace mwc::graph {

namespace {
Graph rebuild(const Graph& g, std::vector<Edge> edges) {
  return g.is_directed() ? Graph::directed(g.node_count(), edges)
                         : Graph::undirected(g.node_count(), edges);
}
}  // namespace

Graph reweighted(const Graph& g, const std::function<Weight(Weight)>& f) {
  std::vector<Edge> edges(g.edges().begin(), g.edges().end());
  for (Edge& e : edges) {
    e.w = f(e.w);
    MWC_CHECK_MSG(e.w >= 1, "reweighted edge weight must stay >= 1");
  }
  return rebuild(g, std::move(edges));
}

Graph unweighted_shape(const Graph& g) {
  return reweighted(g, [](Weight) { return Weight{1}; });
}

Weight scaled_weight(Weight w, int h, double eps, int level) {
  MWC_CHECK(w >= 1 && h >= 1 && eps > 0 && level >= 0);
  const double denom = eps * std::ldexp(1.0, level);
  const double v = (2.0 * static_cast<double>(h) * static_cast<double>(w)) / denom;
  const auto scaled = static_cast<Weight>(std::ceil(v - 1e-12));
  return std::max<Weight>(1, scaled);
}

Graph induced_subgraph(const Graph& g, const std::vector<NodeId>& keep) {
  std::vector<NodeId> index(static_cast<std::size_t>(g.node_count()), kNoNode);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    MWC_CHECK(keep[i] >= 0 && keep[i] < g.node_count());
    MWC_CHECK_MSG(index[static_cast<std::size_t>(keep[i])] == kNoNode,
                  "duplicate node in induced_subgraph");
    index[static_cast<std::size_t>(keep[i])] = static_cast<NodeId>(i);
  }
  std::vector<Edge> edges;
  for (const Edge& e : g.edges()) {
    NodeId a = index[static_cast<std::size_t>(e.from)];
    NodeId b = index[static_cast<std::size_t>(e.to)];
    if (a != kNoNode && b != kNoNode) edges.push_back(Edge{a, b, e.w});
  }
  int n = static_cast<int>(keep.size());
  return g.is_directed() ? Graph::directed(n, edges) : Graph::undirected(n, edges);
}

}  // namespace mwc::graph
