// Graph transforms used by the weighted MWC algorithms (Section 5 of the
// paper) and by tests.
#pragma once

#include <functional>

#include "graph/graph.h"

namespace mwc::graph {

// Same topology, each weight w replaced by f(w) (must stay >= 1).
Graph reweighted(const Graph& g, const std::function<Weight(Weight)>& f);

// Same topology, all weights set to 1.
Graph unweighted_shape(const Graph& g);

// The scaling ladder of [Nanongkai 2014] as used in Section 5.1: level i
// maps weight w to ceil(2*h*w / (eps * 2^i)). Guaranteed >= 1 for w >= 1
// whenever 2*h >= eps * 2^i; callers pass i <= log2(2*h*W/eps) anyway.
Weight scaled_weight(Weight w, int h, double eps, int level);

// Induced subgraph on `keep` (nodes relabelled to 0..keep.size()-1 in the
// given order). Directedness and weights preserved.
Graph induced_subgraph(const Graph& g, const std::vector<NodeId>& keep);

}  // namespace mwc::graph
