#include "ksssp/auto_select.h"

#include <algorithm>
#include <cmath>

#include "congest/bfs_tree.h"
#include "congest/metrics.h"
#include "congest/multi_bfs.h"
#include "ksssp/naive.h"
#include "ksssp/skeleton_common.h"
#include "support/check.h"
#include "support/math_util.h"

namespace mwc::ksssp {

using graph::NodeId;

namespace {

KSsspResult sequential_k_source_bfs(congest::Network& net,
                                    const std::vector<NodeId>& sources) {
  const int n = net.n();
  const int k = static_cast<int>(sources.size());
  KSsspResult result;
  congest::PhaseSpan span(net, "sequential BFS");
  result.dist.k = k;
  result.dist.dist.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    congest::MultiBfsParams params;
    params.sources = {sources[static_cast<std::size_t>(i)]};
    congest::RunStats s;
    congest::MultiBfs bfs = run_multi_bfs(net, std::move(params), &s);
    detail::add_stats(result.stats, s);
    for (NodeId v = 0; v < n; ++v) {
      result.dist.dist[static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
                       static_cast<std::size_t>(i)] = bfs.dist(v, 0);
    }
  }
  return result;
}

}  // namespace

AutoKBfsResult k_source_bfs_auto(congest::Network& net,
                                 const std::vector<NodeId>& sources) {
  MWC_CHECK(!sources.empty());
  const double n = net.n();
  const double k = static_cast<double>(sources.size());
  congest::ScopedMetrics scoped(net);
  // D is learnable in O(D) rounds (the BFS-tree height bounds it within a
  // factor 2); charge that probe.
  congest::RunStats probe;
  congest::PhaseSpan probe_span(net, "probe diameter");
  congest::BfsTreeResult tree = congest::build_bfs_tree(net, 0, &probe);
  probe_span.close();
  const double diam = std::max(1, tree.height);
  const double log_n = support::log_n(net.n());

  // Round estimates mirroring the Theorem 1.6.A terms (constants from the
  // implementations: the skeleton's |S|^2 + k|S| broadcast dominates it).
  const double s_size = 2.0 * log_n * std::sqrt(n / k) + 1;
  const double est_skeleton =
      s_size * s_size + k * s_size + 2 * std::sqrt(n * k) + diam;
  const double est_sequential = k * (2 * diam + 2);
  // Directed BFS depth can exceed the undirected diameter (up to n on a
  // directed ring); 8D is a workable middle-ground predictor.
  const double est_flood = std::min(n, 8.0 * diam) + k;

  AutoKBfsResult out;
  if (est_skeleton <= est_sequential && est_skeleton <= est_flood) {
    out.chosen = KBfsStrategy::kSkeleton;
    SkeletonBfsParams params;
    params.sources = sources;
    out.result = skeleton_k_source_bfs(net, params);
  } else if (est_sequential <= est_flood) {
    out.chosen = KBfsStrategy::kSequential;
    out.result = sequential_k_source_bfs(net, sources);
  } else {
    out.chosen = KBfsStrategy::kFlood;
    out.result = naive_k_source_bfs(net, sources);
  }
  detail::add_stats(out.result.stats, probe);
  out.algorithm = to_string(out.chosen);
  out.metrics = scoped.snapshot();
  return out;
}

}  // namespace mwc::ksssp
