// The complete Theorem 1.6.A statement: exact k-source BFS with the
// strategy chosen by predicted round cost.
//
//   k >= n^(1/3):  the skeleton algorithm, O~(sqrt(nk) + D);
//   k <  n^(1/3):  min( skeleton with h = sqrt(nk)  -> O~(n/k + D),
//                       k x single-source BFS       -> k * O(D_bfs) ,
//                       one pipelined flood          -> O(n + k) ).
//
// The paper states the min over the first two (its SSSP term is the
// state-of-the-art single-source algorithm; ours is a BFS flood since the
// graph is unweighted); the pipelined flood is this library's natural third
// contender. Every strategy is exact, so the choice only affects rounds;
// the estimate uses n, k and D (all of which the nodes can learn in O(D)).
#pragma once

#include <string>

#include "congest/metrics.h"
#include "ksssp/skeleton_bfs.h"

namespace mwc::ksssp {

enum class KBfsStrategy { kSkeleton, kSequential, kFlood };

inline const char* to_string(KBfsStrategy strategy) {
  switch (strategy) {
    case KBfsStrategy::kSkeleton: return "skeleton";
    case KBfsStrategy::kSequential: return "sequential";
    case KBfsStrategy::kFlood: return "flood";
  }
  return "unknown";
}

struct AutoKBfsResult {
  KSsspResult result;
  KBfsStrategy chosen = KBfsStrategy::kSkeleton;
  // to_string(chosen), ready for logs and JSON.
  std::string algorithm;
  // Per-phase profile of this call (diameter probe + the chosen strategy's
  // runs), recorded on a private sink; an outer attached Metrics still
  // observes everything (congest::ScopedMetrics).
  congest::MetricsSnapshot metrics;
};

AutoKBfsResult k_source_bfs_auto(congest::Network& net,
                                 const std::vector<graph::NodeId>& sources);

}  // namespace mwc::ksssp
