#include "ksssp/naive.h"

#include "congest/bellman_ford.h"
#include "congest/metrics.h"
#include "congest/multi_bfs.h"
#include "ksssp/skeleton_common.h"
#include "support/check.h"

namespace mwc::ksssp {

using congest::MultiBfs;
using congest::MultiBfsParams;
using congest::RunStats;
using graph::NodeId;

KSsspResult naive_k_source_bfs(congest::Network& net,
                               const std::vector<NodeId>& sources) {
  MWC_CHECK(!sources.empty());
  const int n = net.n();
  const int k = static_cast<int>(sources.size());
  KSsspResult result;
  result.h = n;
  congest::PhaseSpan span(net, "flood");
  MultiBfsParams params;
  params.sources = sources;
  RunStats s;
  MultiBfs bfs = run_multi_bfs(net, std::move(params), &s);
  detail::add_stats(result.stats, s);
  result.dist.k = k;
  result.dist.dist.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  for (NodeId v = 0; v < n; ++v) {
    for (int i = 0; i < k; ++i) {
      result.dist.dist[static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
                       static_cast<std::size_t>(i)] = bfs.dist(v, i);
    }
  }
  return result;
}

KSsspResult sequential_k_source_sssp(congest::Network& net,
                                     const std::vector<NodeId>& sources) {
  MWC_CHECK(!sources.empty());
  const int n = net.n();
  const int k = static_cast<int>(sources.size());
  KSsspResult result;
  congest::PhaseSpan span(net, "sequential SSSP");
  result.dist.k = k;
  result.dist.dist.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    RunStats s;
    congest::SsspResult one = congest::exact_sssp(net, {sources[static_cast<std::size_t>(i)]},
                                                  /*reverse=*/false, &s);
    detail::add_stats(result.stats, s);
    for (NodeId v = 0; v < n; ++v) {
      result.dist.dist[static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
                       static_cast<std::size_t>(i)] = one.at(v, 0);
    }
  }
  return result;
}

}  // namespace mwc::ksssp
