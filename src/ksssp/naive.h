// Baselines for Theorem 1.6's comparisons.
//
//  * naive pipelined k-source BFS: one MultiBfs with no hop limit - the
//    O(n + k) "just flood everything" approach.
//  * sequential k x SSSP: run single-source shortest paths k times in
//    sequence, the paper's "repeating SSSP computation in sequence from
//    each source taking k * SSSP rounds" alternative for small k.
#pragma once

#include "ksssp/skeleton_bfs.h"

namespace mwc::ksssp {

// Unweighted hop distances from every source via one unrestricted pipelined
// multi-source BFS.
KSsspResult naive_k_source_bfs(congest::Network& net,
                               const std::vector<graph::NodeId>& sources);

// Exact weighted distances, one SSSP run per source, rounds summed.
KSsspResult sequential_k_source_sssp(congest::Network& net,
                                     const std::vector<graph::NodeId>& sources);

}  // namespace mwc::ksssp
