#include "ksssp/skeleton_bfs.h"

#include <algorithm>
#include <cmath>

#include "congest/metrics.h"
#include "congest/multi_bfs.h"
#include "ksssp/skeleton_common.h"
#include "support/check.h"

namespace mwc::ksssp {

using congest::MultiBfs;
using congest::MultiBfsParams;
using congest::RunStats;
using graph::NodeId;

namespace {

congest::SsspResult to_matrix(const MultiBfs& bfs, int n, int k) {
  congest::SsspResult m;
  m.k = k;
  m.dist.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  for (NodeId v = 0; v < n; ++v) {
    for (int i = 0; i < k; ++i) {
      m.dist[static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
             static_cast<std::size_t>(i)] = bfs.dist(v, i);
    }
  }
  return m;
}

}  // namespace

KSsspResult skeleton_k_source_bfs(congest::Network& net,
                                  const SkeletonBfsParams& params) {
  const int n = net.n();
  const int k = static_cast<int>(params.sources.size());
  MWC_CHECK(k >= 1);

  KSsspResult result;
  result.h = params.h_override > 0
                 ? params.h_override
                 : std::clamp(static_cast<int>(std::lround(std::sqrt(
                                  static_cast<double>(n) * static_cast<double>(k)))),
                              1, n);
  const int h = result.h;

  // Line 1: sample S.
  std::vector<NodeId> samples =
      detail::sample_vertices(net, params.sample_constant, h);
  result.skeleton_size = static_cast<int>(samples.size());

  RunStats s;
  if (samples.empty()) {
    // Tiny-n fallback: full-depth BFS from the sources (the h-hop truncation
    // would otherwise lose long paths with no skeleton to bridge them).
    congest::PhaseSpan fallback_span(net, "source BFS");
    MultiBfsParams src_params;
    src_params.sources = params.sources;
    src_params.reverse = params.reverse;
    MultiBfs src_bfs = run_multi_bfs(net, std::move(src_params), &s);
    detail::add_stats(result.stats, s);
    result.dist = to_matrix(src_bfs, n, k);
    return result;
  }

  // Line 2: h-hop BFS from S, forward and reversed.
  // With params.reverse the whole pipeline runs on the reversed graph:
  // every BFS flips direction and the skeleton transposes with it.
  congest::PhaseSpan skeleton_span(net, "skeleton BFS");
  MultiBfsParams fwd_params;
  fwd_params.sources = samples;
  fwd_params.tick_limit = h;
  fwd_params.reverse = params.reverse;
  MultiBfs fwd = run_multi_bfs(net, std::move(fwd_params), &s);
  detail::add_stats(result.stats, s);

  MultiBfsParams rev_params;
  rev_params.sources = samples;
  rev_params.tick_limit = h;
  rev_params.reverse = !params.reverse;
  MultiBfs rev = run_multi_bfs(net, std::move(rev_params), &s);
  skeleton_span.close();
  detail::add_stats(result.stats, s);

  // Line 7: h-hop BFS from the k sources.
  congest::PhaseSpan source_span(net, "source BFS");
  MultiBfsParams src_params;
  src_params.sources = params.sources;
  src_params.tick_limit = h;
  src_params.reverse = params.reverse;
  MultiBfs src_bfs = run_multi_bfs(net, std::move(src_params), &s);
  source_span.close();
  detail::add_stats(result.stats, s);

  // Lines 4-10: skeleton broadcast + local APSP + stitch (see
  // skeleton_common.h for the correspondence to the paper's lines).
  const int s_count = static_cast<int>(samples.size());
  congest::SsspResult fwd_m = to_matrix(fwd, n, s_count);
  congest::SsspResult rev_m = to_matrix(rev, n, s_count);
  congest::SsspResult src_m = to_matrix(src_bfs, n, k);
  detail::SkeletonInputs inputs;
  inputs.samples = std::move(samples);
  inputs.fwd = &fwd_m;
  inputs.rev = &rev_m;
  inputs.src = &src_m;
  inputs.k = k;
  congest::PhaseSpan combine_span(net, "skeleton combine");
  result.dist = detail::skeleton_combine(net, inputs, &result.stats);
  combine_span.close();
  return result;
}

}  // namespace mwc::ksssp
