// Algorithm 1: exact k-source directed BFS via a skeleton graph
// (Theorem 1.6.A, Section 2 of the paper).
//
// Pipeline, with h = sqrt(n k):
//   1. sample S with probability Theta(log n / h)            (w.h.p. every
//      h consecutive vertices of a shortest path contain a sample)
//   2. h-hop BFS from S, forward and reversed                O(|S| + h)
//   3. skeleton graph on S: edge (t,s) with weight = h-hop d(t,s)
//   4. broadcast the <= |S|^2 skeleton edges                 O(|S|^2 + D)
//   5. local APSP on the skeleton (free local computation)
//   6. h-hop BFS from the k sources                          O(k + h)
//   7. broadcast the k|S| source->sample h-hop distances     O(k|S| + D)
//   8. combine locally: d(u,v) = min(d_h(u,v),
//                                    min_{s in S} d(u,s) + d_h(s,v))
//      where d(u,s) = min(d_h(u,s), min_t d_h(u,t) + skel(t,s)).
//
// Note on the paper's lines 9-10 (propagating d(u,s) down the h-hop BFS
// trees of S): in the paper's accounting, too, the skeleton edges and the
// source->sample distances are broadcast *globally*, which already puts
// every term of the line-8 combination at every node; the tree propagation
// is subsumed by the local combine here and is omitted. Skipping it can only
// reduce rounds, and the O~(sqrt(nk) + D) bound is unchanged.
#pragma once

#include <vector>

#include "congest/bellman_ford.h"
#include "congest/network.h"

namespace mwc::ksssp {

struct SkeletonBfsParams {
  std::vector<graph::NodeId> sources;
  // Sampling probability is sample_constant * ln(n) / h.
  double sample_constant = 2.0;
  // 0 = the paper's h = sqrt(n k); tests can override.
  int h_override = 0;
  // Compute distances *to* the sources instead (runs the whole pipeline on
  // the reversed graph): dist.at(v, i) = d(v, sources[i]).
  bool reverse = false;
};

struct KSsspResult {
  congest::SsspResult dist;  // dist.at(v, i) = d(sources[i], v)
  congest::RunStats stats;   // rounds/messages consumed by this algorithm
  int h = 0;
  int skeleton_size = 0;  // |S|
};

// Exact BFS (hop distances) from each source; G may be directed.
KSsspResult skeleton_k_source_bfs(congest::Network& net,
                                  const SkeletonBfsParams& params);

}  // namespace mwc::ksssp
