#include "ksssp/skeleton_common.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "congest/bfs_tree.h"
#include "congest/broadcast.h"
#include "support/check.h"
#include "support/math_util.h"

namespace mwc::ksssp::detail {

using congest::BroadcastItem;
using congest::RunStats;
using congest::Word;
using graph::kInfWeight;
using graph::NodeId;
using graph::Weight;

void add_stats(RunStats& acc, const RunStats& s) {
  acc.rounds += s.rounds;
  acc.messages += s.messages;
  acc.words += s.words;
  acc.max_queue_words = std::max(acc.max_queue_words, s.max_queue_words);
  acc.dropped_messages += s.dropped_messages;
  acc.dropped_words += s.dropped_words;
  acc.retransmitted_words += s.retransmitted_words;
  acc.stalled_rounds += s.stalled_rounds;
}

std::vector<NodeId> sample_vertices(congest::Network& net, double c, int h) {
  support::Rng rng = net.next_run_rng();
  const double p =
      std::min(1.0, c * support::log_n(net.n()) / static_cast<double>(h));
  std::vector<NodeId> samples;
  for (NodeId v = 0; v < net.n(); ++v) {
    if (rng.next_bool(p)) samples.push_back(v);
  }
  return samples;
}

namespace {

// One broadcast item = one Theta(log n + log W)-bit word: two skeleton/
// source indices (14 bits each) and a distance (36 bits).
Word pack_item(int a, int b, Weight d) {
  MWC_CHECK(a >= 0 && b >= 0 && a < (1 << 14) && b < (1 << 14));
  MWC_CHECK(d >= 0 && d < (Weight{1} << 36));
  return (static_cast<Word>(a) << 50) | (static_cast<Word>(b) << 36) |
         static_cast<Word>(d);
}
void unpack_item(Word w, int* a, int* b, Weight* d) {
  *a = static_cast<int>(w >> 50);
  *b = static_cast<int>((w >> 36) & ((1u << 14) - 1));
  *d = static_cast<Weight>(w & ((Word{1} << 36) - 1));
}

// Local APSP on the broadcast skeleton (identical deterministic computation
// at every node; done once - DESIGN.md simulation-scale note).
std::vector<std::vector<Weight>> skeleton_apsp(
    int s_count, const std::vector<std::vector<std::pair<int, Weight>>>& adj) {
  std::vector<std::vector<Weight>> dist(
      static_cast<std::size_t>(s_count),
      std::vector<Weight>(static_cast<std::size_t>(s_count), kInfWeight));
  using Item = std::pair<Weight, int>;
  for (int src = 0; src < s_count; ++src) {
    auto& d = dist[static_cast<std::size_t>(src)];
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    d[static_cast<std::size_t>(src)] = 0;
    pq.emplace(0, src);
    while (!pq.empty()) {
      auto [dd, u] = pq.top();
      pq.pop();
      if (dd != d[static_cast<std::size_t>(u)]) continue;
      for (auto [to, w] : adj[static_cast<std::size_t>(u)]) {
        if (dd + w < d[static_cast<std::size_t>(to)]) {
          d[static_cast<std::size_t>(to)] = dd + w;
          pq.emplace(dd + w, to);
        }
      }
    }
  }
  return dist;
}

}  // namespace

congest::SsspResult skeleton_combine(congest::Network& net,
                                     const SkeletonInputs& in, RunStats* stats) {
  const int n = net.n();
  const int s_count = static_cast<int>(in.samples.size());
  const int k = in.k;
  RunStats s;

  congest::BfsTreeResult tree = congest::build_bfs_tree(net, 0, &s);
  add_stats(*stats, s);

  // Skeleton edges: t in S knows d_h(t, s) for all s from the reversed run.
  std::vector<std::vector<BroadcastItem>> skel_items(static_cast<std::size_t>(n));
  for (int i = 0; i < s_count; ++i) {
    const NodeId t = in.samples[static_cast<std::size_t>(i)];
    for (int j = 0; j < s_count; ++j) {
      if (i == j) continue;
      const Weight d = in.rev->at(t, j);
      if (d == kInfWeight) continue;
      skel_items[static_cast<std::size_t>(t)].push_back({pack_item(i, j, d)});
    }
  }
  congest::BroadcastResult skel_bcast = congest::broadcast(net, tree, skel_items, &s);
  add_stats(*stats, s);

  std::vector<std::vector<std::pair<int, Weight>>> skel_adj(
      static_cast<std::size_t>(s_count));
  for (const BroadcastItem& item : skel_bcast.items()) {
    int from = 0, to = 0;
    Weight d = 0;
    unpack_item(item[0], &from, &to, &d);
    skel_adj[static_cast<std::size_t>(from)].emplace_back(to, d);
  }
  const std::vector<std::vector<Weight>> skel_dist = skeleton_apsp(s_count, skel_adj);

  // Source -> sampled-vertex h-hop distances, broadcast by the samples.
  std::vector<std::vector<BroadcastItem>> visit_items(static_cast<std::size_t>(n));
  for (int j = 0; j < s_count; ++j) {
    const NodeId t = in.samples[static_cast<std::size_t>(j)];
    for (int u = 0; u < k; ++u) {
      const Weight d = in.src->at(t, u);
      if (d == kInfWeight) continue;
      visit_items[static_cast<std::size_t>(t)].push_back({pack_item(u, j, d)});
    }
  }
  congest::BroadcastResult visit_bcast = congest::broadcast(net, tree, visit_items, &s);
  add_stats(*stats, s);

  // d(u, s_j) = min(d_h(u, s_j), min_t d_h(u, s_t) + skel(s_t, s_j)).
  std::vector<Weight> du_s(static_cast<std::size_t>(k) * static_cast<std::size_t>(s_count),
                           kInfWeight);
  auto du_at = [&](int u, int j) -> Weight& {
    return du_s[static_cast<std::size_t>(u) * static_cast<std::size_t>(s_count) +
                static_cast<std::size_t>(j)];
  };
  std::vector<std::pair<std::pair<int, int>, Weight>> visits;
  visits.reserve(visit_bcast.items().size());
  for (const BroadcastItem& item : visit_bcast.items()) {
    int u = 0, t = 0;
    Weight d = 0;
    unpack_item(item[0], &u, &t, &d);
    du_at(u, t) = std::min(du_at(u, t), d);
    visits.push_back({{u, t}, d});
  }
  for (const auto& [ut, d] : visits) {
    const auto [u, t] = ut;
    const auto& from_t = skel_dist[static_cast<std::size_t>(t)];
    for (int j = 0; j < s_count; ++j) {
      const Weight via = from_t[static_cast<std::size_t>(j)];
      if (via == kInfWeight) continue;
      du_at(u, j) = std::min(du_at(u, j), d + via);
    }
  }

  // Stitch at every node: d(u,v) = min(d_h(u,v), min_j d(u,s_j) + d_h(s_j,v)).
  congest::SsspResult out;
  out.k = k;
  out.dist.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  for (NodeId v = 0; v < n; ++v) {
    for (int u = 0; u < k; ++u) {
      Weight best = in.src->at(v, u);
      for (int j = 0; j < s_count; ++j) {
        const Weight tail = in.fwd->at(v, j);
        if (tail == kInfWeight) continue;
        const Weight head = du_at(u, j);
        if (head == kInfWeight) continue;
        best = std::min(best, head + tail);
      }
      out.dist[static_cast<std::size_t>(v) * static_cast<std::size_t>(k) +
               static_cast<std::size_t>(u)] = best;
    }
  }
  return out;
}

}  // namespace mwc::ksssp::detail
