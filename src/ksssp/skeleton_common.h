// Shared tail of Algorithm 1 (Section 2): given h-hop distance matrices
// computed from the sampled set S (forward and reversed) and from the k
// sources, broadcast the skeleton edges and the source->sample distances,
// locally solve skeleton APSP, and stitch full distances.
//
// Used with exact h-hop BFS matrices by skeleton_k_source_bfs (Thm 1.6.A)
// and with (1+eps)-approximate matrices by skeleton_k_source_sssp
// (Thm 1.6.B); the combine itself only adds segment estimates, so it
// preserves exactness (resp. the (1+eps) factor).
#pragma once

#include <vector>

#include "congest/bellman_ford.h"
#include "congest/network.h"

namespace mwc::ksssp::detail {

struct SkeletonInputs {
  std::vector<graph::NodeId> samples;
  // fwd.at(v, j) = d_h(samples[j] -> v); rev.at(v, j) = d_h(v -> samples[j]);
  // src.at(v, u) = d_h(sources[u] -> v).
  const congest::SsspResult* fwd = nullptr;
  const congest::SsspResult* rev = nullptr;
  const congest::SsspResult* src = nullptr;
  int k = 0;
};

// Returns the stitched distances; accumulates broadcast rounds into *stats.
congest::SsspResult skeleton_combine(congest::Network& net,
                                     const SkeletonInputs& in,
                                     congest::RunStats* stats);

void add_stats(congest::RunStats& acc, const congest::RunStats& s);

// Samples each vertex with probability min(1, c * ln(n) / h) using the
// network's shared randomness.
std::vector<graph::NodeId> sample_vertices(congest::Network& net, double c, int h);

}  // namespace mwc::ksssp::detail
