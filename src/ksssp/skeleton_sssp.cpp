#include "ksssp/skeleton_sssp.h"

#include <algorithm>
#include <cmath>

#include "congest/bellman_ford.h"
#include "congest/metrics.h"
#include "ksssp/skeleton_common.h"
#include "support/check.h"

namespace mwc::ksssp {

using congest::ApproxHopSsspParams;
using congest::RunStats;
using graph::NodeId;

KSsspResult skeleton_k_source_sssp(congest::Network& net,
                                   const SkeletonSsspParams& params) {
  const int n = net.n();
  const int k = static_cast<int>(params.sources.size());
  MWC_CHECK(k >= 1);
  MWC_CHECK(params.epsilon > 0);

  KSsspResult result;
  result.h = params.h_override > 0
                 ? params.h_override
                 : std::clamp(static_cast<int>(std::lround(std::sqrt(
                                  static_cast<double>(n) * static_cast<double>(k)))),
                              1, n);
  const int h = result.h;

  std::vector<NodeId> samples =
      detail::sample_vertices(net, params.sample_constant, h);
  result.skeleton_size = static_cast<int>(samples.size());

  RunStats s;
  if (samples.empty()) {
    // Tiny-n fallback: exact SSSP straight from the sources.
    congest::PhaseSpan fallback_span(net, "source SSSP");
    result.dist = congest::exact_sssp(net, params.sources, /*reverse=*/false, &s);
    detail::add_stats(result.stats, s);
    return result;
  }

  congest::PhaseSpan skeleton_span(net, "skeleton SSSP");
  ApproxHopSsspParams fwd_params;
  fwd_params.sources = samples;
  fwd_params.hop_limit = h;
  fwd_params.epsilon = params.epsilon;
  congest::SsspResult fwd = approx_hop_sssp(net, fwd_params, &s);
  detail::add_stats(result.stats, s);

  ApproxHopSsspParams rev_params = fwd_params;
  rev_params.reverse = true;
  congest::SsspResult rev = approx_hop_sssp(net, rev_params, &s);
  skeleton_span.close();
  detail::add_stats(result.stats, s);

  congest::PhaseSpan source_span(net, "source SSSP");
  ApproxHopSsspParams src_params;
  src_params.sources = params.sources;
  src_params.hop_limit = h;
  src_params.epsilon = params.epsilon;
  congest::SsspResult src = approx_hop_sssp(net, src_params, &s);
  source_span.close();
  detail::add_stats(result.stats, s);

  detail::SkeletonInputs inputs;
  inputs.samples = std::move(samples);
  inputs.fwd = &fwd;
  inputs.rev = &rev;
  inputs.src = &src;
  inputs.k = k;
  congest::PhaseSpan combine_span(net, "skeleton combine");
  result.dist = detail::skeleton_combine(net, inputs, &result.stats);
  combine_span.close();
  return result;
}

}  // namespace mwc::ksssp
