// (1+eps)-approximate k-source SSSP in weighted graphs (Theorem 1.6.B).
//
// Algorithm 1 with every h-hop BFS replaced by the h-hop (1+eps)-approximate
// SSSP of [41] (the scaling-ladder primitive congest::approx_hop_sssp), as
// Section 2's "Weighted Graphs" paragraph prescribes. The skeleton stitch
// adds per-segment estimates, and every segment of a true shortest path is
// independently (1+eps)-approximated, so the end-to-end estimate is within
// (1+eps) of the true distance - and is always the weight of a real path.
#pragma once

#include "ksssp/skeleton_bfs.h"

namespace mwc::ksssp {

struct SkeletonSsspParams {
  std::vector<graph::NodeId> sources;
  double epsilon = 0.25;
  double sample_constant = 2.0;
  int h_override = 0;  // 0 = sqrt(n k)
};

KSsspResult skeleton_k_source_sssp(congest::Network& net,
                                   const SkeletonSsspParams& params);

}  // namespace mwc::ksssp
