#include "lowerbounds/alpha_gadget.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "support/check.h"

namespace mwc::lb {

using graph::Edge;
using graph::Graph;
using graph::NodeId;
using graph::Weight;

PathInstance random_path_instance(int paths, double density, int force_intersect,
                                  support::Rng& rng) {
  MWC_CHECK(paths >= 2);
  PathInstance inst;
  inst.paths = paths;
  inst.alice.resize(static_cast<std::size_t>(paths));
  inst.bob.resize(static_cast<std::size_t>(paths));
  for (int i = 0; i < paths; ++i) {
    inst.alice[static_cast<std::size_t>(i)] = rng.next_bool(density);
    inst.bob[static_cast<std::size_t>(i)] = rng.next_bool(density);
  }
  if (force_intersect == 1) {
    auto at = static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(paths)));
    inst.alice[at] = inst.bob[at] = true;
  } else if (force_intersect == 0) {
    for (int i = 0; i < paths; ++i) {
      auto idx = static_cast<std::size_t>(i);
      if (inst.alice[idx] && inst.bob[idx]) inst.bob[idx] = false;
    }
  }
  inst.intersects = false;
  for (int i = 0; i < paths; ++i) {
    auto idx = static_cast<std::size_t>(i);
    if (inst.alice[idx] && inst.bob[idx]) inst.intersects = true;
  }
  return inst;
}

namespace {

struct PathLayout {
  int p, ell;
  NodeId s() const { return 0; }
  NodeId s_prime() const { return 1; }
  NodeId v(int i, int c) const { return 2 + i * ell + c; }
  int path_nodes_end() const { return 2 + p * ell; }
};

// Balanced shortcut tree over the ell columns. Nodes are appended starting
// at next_id; emits (parent, child) pairs and per-column leaf ids. Side
// assignment: a node whose column range lies right of the cut goes to Bob.
struct ShortcutTree {
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<NodeId> leaf;          // per column
  std::vector<NodeId> nodes;         // all tree nodes
  std::vector<bool> node_on_bob;     // parallel to nodes
  NodeId root = graph::kNoNode;
};

ShortcutTree build_shortcut_tree(int ell, int cut_column, NodeId next_id) {
  ShortcutTree tree;
  tree.leaf.assign(static_cast<std::size_t>(ell), graph::kNoNode);
  std::function<NodeId(int, int)> build = [&](int lo, int hi) -> NodeId {
    NodeId me = next_id++;
    tree.nodes.push_back(me);
    tree.node_on_bob.push_back(lo >= cut_column);
    if (hi - lo == 1) {
      tree.leaf[static_cast<std::size_t>(lo)] = me;
      return me;
    }
    int mid = (lo + hi) / 2;
    NodeId left = build(lo, mid);
    NodeId right = build(mid, hi);
    tree.edges.emplace_back(me, left);
    tree.edges.emplace_back(me, right);
    return me;
  };
  tree.root = build(0, ell);
  // Every recursive call allocated one node before recursing, so root was
  // the first id.
  return tree;
}

std::vector<bool> sides_of(const PathLayout& lo, int cut_column,
                           const ShortcutTree* tree, int n) {
  std::vector<bool> bob(static_cast<std::size_t>(n), false);
  bob[static_cast<std::size_t>(lo.s_prime())] = true;
  for (int i = 0; i < lo.p; ++i) {
    for (int c = cut_column; c < lo.ell; ++c) {
      bob[static_cast<std::size_t>(lo.v(i, c))] = true;
    }
  }
  if (tree != nullptr) {
    for (std::size_t t = 0; t < tree->nodes.size(); ++t) {
      bob[static_cast<std::size_t>(tree->nodes[t])] = tree->node_on_bob[t];
    }
  }
  return bob;
}

}  // namespace

GadgetGraph directed_alpha_gadget(const PathInstance& inst,
                                  const AlphaGadgetParams& params) {
  MWC_CHECK(params.path_length >= 2 && params.alpha >= 1.0);
  PathLayout lo{inst.paths, params.path_length};
  const int cut_column = lo.ell / 2;
  ShortcutTree tree =
      build_shortcut_tree(lo.ell, cut_column, static_cast<NodeId>(lo.path_nodes_end()));
  const int n = lo.path_nodes_end() + static_cast<int>(tree.nodes.size());

  std::vector<Edge> edges;
  for (int i = 0; i < lo.p; ++i) {
    for (int c = 0; c + 1 < lo.ell; ++c) edges.push_back({lo.v(i, c), lo.v(i, c + 1), 1});
    if (inst.alice[static_cast<std::size_t>(i)]) edges.push_back({lo.s(), lo.v(i, 0), 1});
    if (inst.bob[static_cast<std::size_t>(i)]) {
      edges.push_back({lo.v(i, lo.ell - 1), lo.s_prime(), 1});
    }
  }
  edges.push_back({lo.s_prime(), lo.s(), 1});
  // Shortcut tree: all arcs point away from the root, so no directed cycle
  // can enter it; the undirected communication diameter drops to O(log n).
  for (auto [parent, child] : tree.edges) edges.push_back({parent, child, 1});
  for (int c = 0; c < lo.ell; ++c) {
    for (int i = 0; i < lo.p; ++i) {
      edges.push_back({tree.leaf[static_cast<std::size_t>(c)], lo.v(i, c), 1});
    }
  }
  edges.push_back({tree.root, lo.s(), 1});
  edges.push_back({tree.root, lo.s_prime(), 1});

  const auto yes = static_cast<Weight>(lo.ell) + 2;
  GadgetGraph out{Graph::directed(n, edges), sides_of(lo, cut_column, &tree, n),
                  static_cast<Weight>(std::ceil(params.alpha * static_cast<double>(yes))),
                  yes, graph::kInfWeight};
  return out;
}

GadgetGraph undirected_alpha_gadget(const PathInstance& inst,
                                    const AlphaGadgetParams& params) {
  MWC_CHECK(params.path_length >= 2 && params.alpha >= 1.0);
  PathLayout lo{inst.paths, params.path_length};
  const int cut_column = lo.ell / 2;
  ShortcutTree tree =
      build_shortcut_tree(lo.ell, cut_column, static_cast<NodeId>(lo.path_nodes_end()));
  const int n = lo.path_nodes_end() + static_cast<int>(tree.nodes.size());

  const auto yes = static_cast<Weight>(lo.ell) + 2;
  const auto blocked =
      static_cast<Weight>(std::ceil(params.alpha * static_cast<double>(yes))) + 1;
  const Weight heavy = 4 * blocked;

  std::vector<Edge> edges;
  for (int i = 0; i < lo.p; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    for (int c = 0; c + 1 < lo.ell; ++c) edges.push_back({lo.v(i, c), lo.v(i, c + 1), 1});
    edges.push_back({lo.s(), lo.v(i, 0), inst.alice[idx] ? Weight{1} : blocked});
    edges.push_back({lo.v(i, lo.ell - 1), lo.s_prime(), inst.bob[idx] ? Weight{1} : blocked});
  }
  edges.push_back({lo.s_prime(), lo.s(), 1});
  for (auto [parent, child] : tree.edges) edges.push_back({parent, child, heavy});
  for (int c = 0; c < lo.ell; ++c) {
    for (int i = 0; i < lo.p; ++i) {
      edges.push_back({tree.leaf[static_cast<std::size_t>(c)], lo.v(i, c), heavy});
    }
  }
  edges.push_back({tree.root, lo.s(), heavy});
  edges.push_back({tree.root, lo.s_prime(), heavy});

  GadgetGraph out{Graph::undirected(n, edges), sides_of(lo, cut_column, &tree, n),
                  blocked - 1, yes, blocked + static_cast<Weight>(lo.ell) + 1};
  return out;
}

GadgetGraph girth_alpha_gadget(const PathInstance& inst,
                               const AlphaGadgetParams& params) {
  MWC_CHECK(params.path_length >= 2 && params.alpha >= 1.0);
  PathLayout lo{inst.paths, params.path_length};
  const int cut_column = lo.ell / 2;
  const auto yes = static_cast<Weight>(lo.ell) + 2;
  // Pad-path length standing in for an edge of weight alpha*(ell+2)+1.
  const int pad = static_cast<int>(std::ceil(params.alpha * static_cast<double>(yes))) + 1;

  std::vector<Edge> edges;
  NodeId next = static_cast<NodeId>(lo.path_nodes_end());
  // Connect `from` - `to` with a path of `len` unit edges (len >= 1).
  auto connect = [&](NodeId from, NodeId to, int len) {
    NodeId prev = from;
    for (int step = 1; step < len; ++step) {
      NodeId mid = next++;
      edges.push_back({prev, mid, 1});
      prev = mid;
    }
    edges.push_back({prev, to, 1});
  };
  for (int i = 0; i < lo.p; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    for (int c = 0; c + 1 < lo.ell; ++c) edges.push_back({lo.v(i, c), lo.v(i, c + 1), 1});
    connect(lo.s(), lo.v(i, 0), inst.alice[idx] ? 1 : pad);
    connect(lo.v(i, lo.ell - 1), lo.s_prime(), inst.bob[idx] ? 1 : pad);
  }
  edges.push_back({lo.s_prime(), lo.s(), 1});

  const int n = next;
  std::vector<bool> bob = sides_of(lo, cut_column, nullptr, n);
  // Pad vertices: assign by the side of the terminal they hang off; Alice
  // pads precede Bob pads per path but interleave, so recompute by id is
  // impossible - mark via a second pass: pads attached to s stay false
  // (default), pads attached to s' must be true. Simplest: everything from
  // the right half is already true; pad chains were appended after path
  // nodes, alternating Alice (s-side) then Bob (s'-side) per path. Rebuild:
  {
    NodeId cursor = static_cast<NodeId>(lo.path_nodes_end());
    for (int i = 0; i < lo.p; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (!inst.alice[idx]) cursor += pad - 1;  // s-side pads: Alice (false)
      if (!inst.bob[idx]) {
        for (int step = 1; step < pad; ++step) {
          bob[static_cast<std::size_t>(cursor++)] = true;  // s'-side pads
        }
      }
    }
    MWC_CHECK(cursor == n);
  }

  GadgetGraph out{Graph::undirected(n, edges), std::move(bob),
                  static_cast<Weight>(yes + pad - 2), yes,
                  static_cast<Weight>(lo.ell + 1 + pad)};
  return out;
}

}  // namespace mwc::lb
