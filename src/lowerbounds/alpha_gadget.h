// Gadgets for the Omega~(sqrt(n)) alpha-approximation lower bounds
// (Theorems 1.2.B and 1.4.B) and the Omega~(n^(1/4)) girth bound
// (Theorem 1.3.A).
//
// The shape follows the Das-Sarma-et-al framework [49] the paper adapts:
// p parallel paths of length ell between Alice's terminal s and Bob's
// terminal s'; Alice attaches the left end of path i iff Sa[i] = 1, Bob the
// right end iff Sb[i] = 1, and a return link closes s' back to s. A cycle
// certifying the intersection has weight ~ ell; when the strings are
// disjoint every cycle is >= alpha times heavier (or absent entirely), so
// any alpha-approximation of MWC decides disjointness on p = Theta(sqrt n)
// bits.
//
//  * Directed variant (Thm 1.2.B): disjoint -> the digraph is acyclic, so
//    the gap is infinite; a downward-directed binary "shortcut" tree over
//    the columns keeps the communication diameter Theta(log n) without
//    creating any directed cycle.
//  * Undirected weighted variant (Thm 1.4.B): absent attachments become
//    weight-alpha*(ell+2) edges and the shortcut tree is heavy, preserving
//    the alpha gap.
//  * Girth variant (Thm 1.3.A, undirected unweighted): weights are emulated
//    by pad *paths* of length ~ alpha * ell, so the gap is purely
//    combinatorial; no shortcut tree is possible without creating short
//    cycles, hence D = Theta(alpha * ell) here (the paper's construction
//    achieves D = Theta(log n); see DESIGN.md section 5).
#pragma once

#include <vector>

#include "graph/graph.h"
#include "lowerbounds/disjointness_gadget.h"
#include "support/rng.h"

namespace mwc::lb {

struct PathInstance {
  int paths = 0;  // p bits
  std::vector<bool> alice, bob;
  bool intersects = false;
};

PathInstance random_path_instance(int paths, double density, int force_intersect,
                                  support::Rng& rng);

struct AlphaGadgetParams {
  int path_length = 8;  // ell
  double alpha = 2.0;   // approximation factor the gadget defeats
};

// Directed unweighted (Theorem 1.2.B).
GadgetGraph directed_alpha_gadget(const PathInstance& inst,
                                  const AlphaGadgetParams& params);

// Undirected weighted (Theorem 1.4.B).
GadgetGraph undirected_alpha_gadget(const PathInstance& inst,
                                    const AlphaGadgetParams& params);

// Undirected unweighted girth gadget (Theorem 1.3.A).
GadgetGraph girth_alpha_gadget(const PathInstance& inst,
                               const AlphaGadgetParams& params);

}  // namespace mwc::lb
