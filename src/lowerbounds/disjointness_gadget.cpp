#include "lowerbounds/disjointness_gadget.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace mwc::lb {

using graph::Edge;
using graph::Graph;
using graph::NodeId;
using graph::Weight;

DisjointnessInstance random_disjointness(int pairs, double density,
                                         int force_intersect, support::Rng& rng) {
  MWC_CHECK(pairs >= 2);
  DisjointnessInstance inst;
  inst.pairs = pairs;
  const std::size_t k = static_cast<std::size_t>(pairs) * static_cast<std::size_t>(pairs);
  inst.alice.resize(k);
  inst.bob.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    inst.alice[i] = rng.next_bool(density);
    inst.bob[i] = rng.next_bool(density);
  }
  if (force_intersect == 1) {
    std::size_t at = rng.next_below(k);
    inst.alice[at] = inst.bob[at] = true;
  } else if (force_intersect == 0) {
    for (std::size_t i = 0; i < k; ++i) {
      if (inst.alice[i] && inst.bob[i]) inst.bob[i] = false;
    }
  }
  inst.intersects = false;
  for (std::size_t i = 0; i < k; ++i) {
    if (inst.alice[i] && inst.bob[i]) inst.intersects = true;
  }
  return inst;
}

namespace {

struct Layout {
  int p;
  NodeId a(int i) const { return i; }
  NodeId a_prime(int j) const { return p + j; }
  NodeId b(int j) const { return 2 * p + j; }
  NodeId b_prime(int i) const { return 3 * p + i; }
  NodeId hub() const { return 4 * p; }
  int n() const { return 4 * p + 1; }
};

std::vector<bool> bob_side_of(const Layout& lo) {
  // Alice holds {a, a', hub}; Bob holds {b, b'}. The only crossing links are
  // the fixed a'_j - b_j / b'_i - a_i arcs plus hub spokes into Bob's half.
  std::vector<bool> side(static_cast<std::size_t>(lo.n()), false);
  for (int i = 0; i < lo.p; ++i) {
    side[static_cast<std::size_t>(lo.b(i))] = true;
    side[static_cast<std::size_t>(lo.b_prime(i))] = true;
  }
  return side;
}

}  // namespace

GadgetGraph directed_disjointness_gadget(const DisjointnessInstance& inst) {
  Layout lo{inst.pairs};
  std::vector<Edge> edges;
  const int p = inst.pairs;
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < p; ++j) {
      const std::size_t bit = static_cast<std::size_t>(i) * static_cast<std::size_t>(p) +
                              static_cast<std::size_t>(j);
      if (inst.alice[bit]) edges.push_back({lo.a(i), lo.a_prime(j), 1});
      if (inst.bob[bit]) edges.push_back({lo.b(j), lo.b_prime(i), 1});
    }
  }
  for (int j = 0; j < p; ++j) edges.push_back({lo.a_prime(j), lo.b(j), 1});
  for (int i = 0; i < p; ++i) edges.push_back({lo.b_prime(i), lo.a(i), 1});
  // Hub: outgoing arcs only - connects the communication topology (D = 2)
  // without creating a single directed cycle.
  for (NodeId v = 0; v < lo.hub(); ++v) edges.push_back({lo.hub(), v, 1});

  GadgetGraph out{Graph::directed(lo.n(), edges), bob_side_of(lo), 7, 4, 8};
  return out;
}

GadgetGraph undirected_disjointness_gadget(const DisjointnessInstance& inst,
                                           double epsilon) {
  MWC_CHECK(epsilon > 0 && epsilon < 1);
  Layout lo{inst.pairs};
  const auto w = static_cast<Weight>(std::ceil(2.0 / epsilon)) + 1;
  const int p = inst.pairs;
  // Hub edges heavier than any relevant cycle.
  const Weight hub_w = 4 * w * p + 10;

  std::vector<Edge> edges;
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < p; ++j) {
      const std::size_t bit = static_cast<std::size_t>(i) * static_cast<std::size_t>(p) +
                              static_cast<std::size_t>(j);
      if (inst.alice[bit]) edges.push_back({lo.a(i), lo.a_prime(j), w});
      if (inst.bob[bit]) edges.push_back({lo.b(j), lo.b_prime(i), w});
    }
  }
  for (int j = 0; j < p; ++j) edges.push_back({lo.a_prime(j), lo.b(j), 1});
  for (int i = 0; i < p; ++i) edges.push_back({lo.b_prime(i), lo.a(i), 1});
  for (NodeId v = 0; v < lo.hub(); ++v) edges.push_back({lo.hub(), v, hub_w});

  GadgetGraph out{Graph::undirected(lo.n(), edges), bob_side_of(lo),
                  /*yes_threshold=*/4 * w - 1,
                  /*mwc_if_intersecting=*/2 * w + 2,
                  /*min_mwc_if_disjoint=*/4 * w};
  return out;
}

}  // namespace mwc::lb
