// Set-disjointness reduction graphs for the near-linear lower bounds
// (Theorems 1.2.A and 1.4.A).
//
// Two players hold k = (n/4)^2-bit strings indexed by pairs (i,j). The
// directed unweighted gadget has four vertex groups a, a', b, b' of p = n/4
// vertices each:
//   Alice's bit (i,j) = 1  ->  arc  a_i  -> a'_j      (inside Alice's half)
//   Bob's   bit (i,j) = 1  ->  arc  b_j  -> b'_i      (inside Bob's half)
//   fixed arcs                a'_j -> b_j,   b'_i -> a_i
// plus a hub with arcs hub -> everything (keeps the communication topology
// connected with diameter 2 without creating any directed cycle).
//
// Every directed cycle alternates a -> a' -> b -> b' -> ... and has length
// 4r. A 4-cycle exists iff some bit (i,j) is set in *both* strings; with no
// intersection the minimum possible cycle has length >= 8. Hence any
// (2-eps)-approximation of MWC decides set disjointness: answer < 8 iff the
// strings intersect. Since the players' halves exchange Omega(k) = Omega(n^2)
// bits (communication complexity of disjointness) across the Theta(n) cut of
// fixed crossing arcs, any such algorithm needs Omega(n / log n) rounds -
// and the same instance also witnesses the paper's Omega~(n) bound for
// detecting directed q-cycles, q >= 4.
//
// The weighted undirected variant (Theorem 1.4.A) uses the same shape with
// undirected bit edges of weight w ~ 2/eps and unit crossing edges:
// intersection  -> MWC = 2w + 2; no intersection -> MWC >= 4w >
// (2 - eps)(2w + 2). Hub edges are heavy so hub cycles never interfere.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace mwc::lb {

struct DisjointnessInstance {
  int pairs = 0;  // p: bits are indexed by (i,j) in [p] x [p]
  // bit (i,j) lives at index i*p + j.
  std::vector<bool> alice, bob;
  bool intersects = false;
};

// Random instance; if force_intersect >= 0 the instance is made intersecting
// (1) or disjoint (0) by construction.
DisjointnessInstance random_disjointness(int pairs, double density,
                                         int force_intersect, support::Rng& rng);

struct GadgetGraph {
  graph::Graph graph;
  // Cut between Alice's half and Bob's half (true = Bob side) for the
  // Network cut meter.
  std::vector<bool> bob_side;
  // Decide "intersects" from the (approximate) MWC value: value <=
  // yes_threshold means the strings intersect.
  graph::Weight yes_threshold = 0;
  // MWC when the strings intersect (the planted short cycle).
  graph::Weight mwc_if_intersecting = 0;
  // Smallest possible cycle weight when the strings are disjoint (actual
  // MWC may be larger or infinite).
  graph::Weight min_mwc_if_disjoint = 0;
};

// Directed unweighted gadget (Theorem 1.2.A). n = 4 * pairs + 1.
GadgetGraph directed_disjointness_gadget(const DisjointnessInstance& inst);

// Undirected weighted gadget (Theorem 1.4.A). epsilon sets the bit-edge
// weight w = ceil(2/eps) + 1.
GadgetGraph undirected_disjointness_gadget(const DisjointnessInstance& inst,
                                           double epsilon);

}  // namespace mwc::lb
