#include "mwc/api.h"

#include "mwc/directed_mwc.h"
#include "mwc/girth_approx.h"
#include "mwc/weighted_mwc.h"
#include "support/check.h"

namespace mwc::cycle {

double approximate_mwc_guarantee(const congest::Network& net,
                                 const ApproxMwcOptions& options) {
  const graph::Graph& g = net.problem_graph();
  if (g.is_unit_weight()) return 2.0;  // 2 - 1/g (undirected) or 2 (directed)
  return 2.0 + options.epsilon;
}

MwcResult approximate_mwc(congest::Network& net, const ApproxMwcOptions& options) {
  MWC_CHECK(options.epsilon > 0);
  const graph::Graph& g = net.problem_graph();
  if (g.is_directed()) {
    if (g.is_unit_weight()) return directed_mwc_2approx(net);
    WeightedMwcParams params;
    params.epsilon = options.epsilon;
    return directed_weighted_mwc(net, params);
  }
  if (g.is_unit_weight()) return girth_approx(net);
  WeightedMwcParams params;
  params.epsilon = options.epsilon;
  return undirected_weighted_mwc(net, params);
}

}  // namespace mwc::cycle
