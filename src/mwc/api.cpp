#include "mwc/api.h"

#include <cmath>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "congest/checkpoint.h"
#include "congest/congestion.h"
#include "congest/runner.h"
#include "graph/sequential.h"
#include "mwc/bounds.h"
#include "mwc/directed_mwc.h"
#include "mwc/exact.h"
#include "mwc/girth_approx.h"
#include "mwc/weighted_mwc.h"
#include "mwc/witness.h"
#include "support/check.h"

namespace mwc::cycle {

namespace {

const char* approx_algorithm_name(const congest::Network& net) {
  const graph::Graph& g = net.problem_graph();
  if (g.is_directed()) {
    return g.is_unit_weight() ? "directed-2approx" : "weighted-directed";
  }
  return g.is_unit_weight() ? "girth-approx" : "weighted-undirected";
}

MwcResult dispatch_approx(congest::Network& net, double epsilon) {
  const graph::Graph& g = net.problem_graph();
  if (g.is_directed()) {
    if (g.is_unit_weight()) return directed_mwc_2approx(net);
    WeightedMwcParams params;
    params.epsilon = epsilon;
    return directed_weighted_mwc(net, params);
  }
  if (g.is_unit_weight()) return girth_approx(net);
  WeightedMwcParams params;
  params.epsilon = epsilon;
  return undirected_weighted_mwc(net, params);
}

// Fills report.run / status / status_reason from the algorithm's result
// and the network's configuration. Also drops any witness that does not
// validate against the input graph - an invalid witness is never shipped.
void certify(const congest::Network& net, bool exact_mode, MwcReport& report) {
  MwcResult& r = report.result;
  // Engine-level view: worst outcome + accumulated fault ledger. The
  // approximation algorithms never record kRecovered themselves (a
  // recovered run is a successful run_protocol call), so reconstruct it
  // from the ledger's crash counter.
  congest::RunOutcome outcome = r.worst_outcome;
  if (outcome == congest::RunOutcome::kCompleted && r.stats.crashes > 0) {
    outcome = congest::RunOutcome::kRecovered;
  }
  report.run = congest::RunResult{outcome, r.stats};

  const bool completed = outcome == congest::RunOutcome::kCompleted ||
                         outcome == congest::RunOutcome::kRecovered;
  const bool interference =
      stats_interference(r.stats, net.config().reliable_transport);

  bool witness_ok = false;
  if (!r.witness.empty()) {
    graph::Weight total = 0;
    witness_ok =
        detail::validate_cycle(net.problem_graph(), r.witness, &total) &&
        (exact_mode ? total == r.value : total <= r.value);
    if (!witness_ok) r.witness.clear();
  }

  if (r.value == graph::kInfWeight) {
    if (completed && !interference) {
      // A clean completed run finding nothing proves there is no cycle
      // (within the algorithm's guarantee) - certifiable without a witness.
      report.status = exact_mode ? SolveStatus::kCertified
                                 : SolveStatus::kApproxCertified;
      report.status_reason = "clean completed run found no cycle";
    } else {
      // The faults (or the abort) may have hidden a cycle: nothing usable.
      report.status = SolveStatus::kFailed;
      report.status_reason =
          completed
              ? "faults interfered and no cycle candidate survived"
              : std::string("run aborted (") + congest::to_string(outcome) +
                    ") with no salvageable candidate";
    }
    return;
  }

  if (completed && !interference) {
    if (witness_ok) {
      report.status = exact_mode ? SolveStatus::kCertified
                                 : SolveStatus::kApproxCertified;
      report.status_reason =
          exact_mode
              ? "witness cycle validates at exactly the reported value"
              : "witness cycle validates at or below the reported value";
    } else {
      report.status = SolveStatus::kDegraded;
      report.status_reason =
          "clean run, but no validated witness cycle certifies the value";
    }
    return;
  }
  report.status = SolveStatus::kDegraded;
  report.status_reason =
      completed
          ? "faults interfered with the run (see fault ledger); value is an "
            "upper bound, not certified minimal"
          : std::string("run aborted (") + congest::to_string(outcome) +
                "); value is the best-so-far candidate";
}

// The cheapest weight any simple cycle of g could have: at least 3 edges
// undirected / 2 directed, each of at least the minimum edge weight.
// kInfWeight when g has no edges (then no cycle exists at all).
graph::Weight structural_cycle_floor(const graph::Graph& g) {
  if (g.edge_count() == 0) return graph::kInfWeight;
  graph::Weight min_w = g.edges().front().w;
  for (const graph::Edge& e : g.edges()) min_w = std::min(min_w, e.w);
  return (g.is_directed() ? 2 : 3) * min_w;
}

// Fills MwcReport::lower_bound / upper_bound from the certification
// verdict - the anytime-result contract (see api.h).
void fill_bounds(const congest::Network& net, MwcReport& report) {
  const graph::Weight value = report.result.value;
  const graph::Weight floor = structural_cycle_floor(net.problem_graph());
  if (value == graph::kInfWeight) {
    if (report.certified()) {
      // Proven acyclic (within the guarantee): both bounds infinite.
      report.lower_bound = graph::kInfWeight;
      report.upper_bound = graph::kInfWeight;
    } else {
      // Nothing salvaged: only the structural floor is known.
      report.lower_bound = floor;
      report.upper_bound = graph::kInfWeight;
    }
    return;
  }
  report.upper_bound = value;  // always the weight of a real cycle
  switch (report.status) {
    case SolveStatus::kCertified:
      report.lower_bound = value;
      break;
    case SolveStatus::kApproxCertified: {
      const auto implied = static_cast<graph::Weight>(
          std::ceil(static_cast<double>(value) / report.guarantee - 1e-9));
      report.lower_bound = std::max(floor, implied);
      break;
    }
    case SolveStatus::kDegraded:
    case SolveStatus::kFailed:
      report.lower_bound = floor;
      break;
  }
}

}  // namespace

// The solve options a checkpoint is only valid for: anything that changes
// what the algorithm executes or records. Budgets and deadlines are
// deliberately excluded - resuming a budget-killed solve with a larger
// budget is a feature, and thread count is excluded for the same reason it
// is absent from the network fingerprint (results are thread-invariant).
std::uint64_t solve_options_digest(const SolveOptions& options) {
  congest::CheckpointWriter w;
  w.u8(static_cast<std::uint8_t>(options.mode));
  std::uint64_t eps_bits = 0;
  static_assert(sizeof(eps_bits) == sizeof(options.epsilon));
  std::memcpy(&eps_bits, &options.epsilon, sizeof(eps_bits));
  w.u64(eps_bits);
  w.u8(options.collect_metrics ? 1 : 0);
  // The congestion observatory is excluded like budgets: it changes what is
  // *recorded*, never what executes, and ledger state is not checkpointed
  // anyway - resuming a plain solve with the observatory on is legitimate.
  return congest::fnv1a(w.bytes());
}

double approximate_mwc_guarantee(const congest::Network& net,
                                 const ApproxMwcOptions& options) {
  const graph::Graph& g = net.problem_graph();
  if (g.is_unit_weight()) return 2.0;  // 2 - 1/g (undirected) or 2 (directed)
  return 2.0 + options.epsilon;
}

MwcReport solve(congest::Network& net, const SolveOptions& options) {
  MWC_CHECK(options.epsilon > 0);
  const bool exact =
      options.mode == SolveMode::kExact ||
      (options.mode == SolveMode::kAuto && net.n() <= kAutoExactThreshold);

  MwcReport report;
  report.algorithm = exact ? "exact" : approx_algorithm_name(net);
  report.guarantee =
      exact ? 1.0
            : approximate_mwc_guarantee(net, ApproxMwcOptions{options.epsilon});

  congest::Governor* governor = options.governor;
  if (governor != nullptr) {
    net.attach_governor(governor);
    governor->arm();  // the wall-clock deadline measures *this* solve
    governor->start_watchdog();
  }

  congest::CheckpointSession* ckpt = options.checkpoint;
  if (ckpt != nullptr) {
    const std::uint64_t digest = solve_options_digest(options);
    ckpt->bind(net, digest);
    if (ckpt->resuming()) {
      std::string error;
      if (!ckpt->validate(net, digest, &error)) {
        if (governor != nullptr) net.attach_governor(nullptr);
        throw std::runtime_error("checkpoint resume refused: " + error);
      }
      ckpt->restore(net);
    } else {
      // Armed snapshot before any phase runs: even a kill during the first
      // phase resumes against a validated identity with zero progress.
      ckpt->cut(congest::CheckpointSession::kStageArmed, "",
                congest::RunStats{}, congest::RunOutcome::kCompleted);
    }
  }

  std::optional<congest::ScopedMetrics> scoped;
  if (options.collect_metrics) scoped.emplace(net);
  // Congestion observatory: a private ledger for the duration of this solve;
  // whatever ledger the caller attached is restored (with its data intact -
  // bind() is idempotent) afterwards.
  std::optional<congest::CongestionLedger> ledger;
  congest::CongestionLedger* prev_ledger = net.congestion();
  if (options.congestion.enabled) {
    ledger.emplace(options.congestion);
    net.attach_congestion(&*ledger);
  }
  if (ckpt != nullptr && ckpt->resuming() && ckpt->has_metrics()) {
    // Replay the cut-time metrics into whichever sink now observes the
    // solve; phases recorded after this append in the same order as an
    // uninterrupted run, so the final snapshot is byte-identical.
    congest::Metrics* sink = net.metrics();
    if (sink != nullptr) sink->absorb(ckpt->metrics());
  }
  try {
    report.result = exact ? detail::exact_mwc_impl(net, ckpt)
                          : dispatch_approx(net, options.epsilon);
    certify(net, exact, report);
  } catch (const congest::RunAbortedError& e) {
    report.run = e.result();
    report.status = SolveStatus::kFailed;
    report.status_reason = std::string("run aborted (") +
                           congest::to_string(e.result().outcome) +
                           ") before producing a result";
  }
  if (ledger.has_value()) {
    report.metrics.congestion = ledger->snapshot();
    net.attach_congestion(prev_ledger);
  }
  if (scoped.has_value()) {
    // The snapshot overwrites report.metrics wholesale, so graft the
    // already-taken congestion section back on afterwards.
    congest::CongestionSnapshot congestion =
        std::move(report.metrics.congestion);
    report.metrics = scoped->snapshot();
    report.metrics.congestion = std::move(congestion);
    scoped->release();
    // Bound adherence: a pure function of the snapshot and the instance, so
    // it is safe under checkpoint resume (the restored snapshot reproduces
    // the uninterrupted one byte-for-byte, hence so does the fit).
    const graph::Graph& g = net.problem_graph();
    report.metrics.adherence = fit_bounds(
        report.metrics, report.algorithm,
        static_cast<std::uint64_t>(g.node_count()),
        static_cast<std::uint64_t>(g.edge_count()),
        graph::seq::communication_diameter(g));
  }
  if (governor != nullptr) {
    report.stop = governor->stop();
    net.attach_governor(nullptr);
  }
  fill_bounds(net, report);
  return report;
}

MwcResult approximate_mwc(congest::Network& net, const ApproxMwcOptions& options) {
  SolveOptions opts;
  opts.mode = SolveMode::kApprox;
  opts.epsilon = options.epsilon;
  MwcReport report = solve(net, opts);
  if (!report.ok()) {
    throw congest::RunAbortedError(report.run.outcome, report.run.stats);
  }
  return std::move(report.result);
}

}  // namespace mwc::cycle
