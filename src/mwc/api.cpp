#include "mwc/api.h"

#include <optional>
#include <utility>

#include "congest/runner.h"
#include "mwc/directed_mwc.h"
#include "mwc/exact.h"
#include "mwc/girth_approx.h"
#include "mwc/weighted_mwc.h"
#include "support/check.h"

namespace mwc::cycle {

namespace {

const char* approx_algorithm_name(const congest::Network& net) {
  const graph::Graph& g = net.problem_graph();
  if (g.is_directed()) {
    return g.is_unit_weight() ? "directed-2approx" : "weighted-directed";
  }
  return g.is_unit_weight() ? "girth-approx" : "weighted-undirected";
}

MwcResult dispatch_approx(congest::Network& net, double epsilon) {
  const graph::Graph& g = net.problem_graph();
  if (g.is_directed()) {
    if (g.is_unit_weight()) return directed_mwc_2approx(net);
    WeightedMwcParams params;
    params.epsilon = epsilon;
    return directed_weighted_mwc(net, params);
  }
  if (g.is_unit_weight()) return girth_approx(net);
  WeightedMwcParams params;
  params.epsilon = epsilon;
  return undirected_weighted_mwc(net, params);
}

}  // namespace

double approximate_mwc_guarantee(const congest::Network& net,
                                 const ApproxMwcOptions& options) {
  const graph::Graph& g = net.problem_graph();
  if (g.is_unit_weight()) return 2.0;  // 2 - 1/g (undirected) or 2 (directed)
  return 2.0 + options.epsilon;
}

MwcReport solve(congest::Network& net, const SolveOptions& options) {
  MWC_CHECK(options.epsilon > 0);
  const bool exact =
      options.mode == SolveMode::kExact ||
      (options.mode == SolveMode::kAuto && net.n() <= kAutoExactThreshold);

  MwcReport report;
  report.algorithm = exact ? "exact" : approx_algorithm_name(net);
  report.guarantee =
      exact ? 1.0
            : approximate_mwc_guarantee(net, ApproxMwcOptions{options.epsilon});

  std::optional<congest::ScopedMetrics> scoped;
  if (options.collect_metrics) scoped.emplace(net);
  try {
    report.result = exact ? detail::exact_mwc_impl(net)
                          : dispatch_approx(net, options.epsilon);
    report.run = congest::RunResult{congest::RunOutcome::kCompleted,
                                    report.result.stats};
  } catch (const congest::RunAbortedError& e) {
    report.run = e.result();
  }
  if (scoped.has_value()) {
    report.metrics = scoped->snapshot();
    scoped->release();
  }
  return report;
}

MwcResult approximate_mwc(congest::Network& net, const ApproxMwcOptions& options) {
  SolveOptions opts;
  opts.mode = SolveMode::kApprox;
  opts.epsilon = options.epsilon;
  MwcReport report = solve(net, opts);
  if (!report.ok()) {
    throw congest::RunAbortedError(report.run.outcome, report.run.stats);
  }
  return std::move(report.result);
}

}  // namespace mwc::cycle
