// Top-level convenience API: pick the paper's algorithm by graph class.
//
//   approximate_mwc(net)  ->  Table 1's best sublinear approximation for
//                             whatever graph the network carries:
//     undirected unweighted : (2 - 1/g)   O~(sqrt n + D)   [Thm 1.3.B]
//     undirected weighted   : (2 + eps)   O~(n^(2/3) + D)  [Thm 1.4.C]
//     directed unweighted   : 2           O~(n^(4/5) + D)  [Thm 1.2.C]
//     directed weighted     : (2 + eps)   O~(n^(4/5) + D)  [Thm 1.2.D]
//
//   exact_mwc(net)        ->  the O~(n) exact baseline (exact.h).
//
// `guarantee()` reports the ratio the dispatched algorithm promises, so
// callers can build decision procedures ("alarm if value <= guarantee * T").
#pragma once

#include "congest/network.h"
#include "mwc/result.h"

namespace mwc::cycle {

struct ApproxMwcOptions {
  double epsilon = 0.5;  // weighted classes only
};

// The approximation ratio approximate_mwc() promises for this network's
// graph class under `options`.
double approximate_mwc_guarantee(const congest::Network& net,
                                 const ApproxMwcOptions& options = {});

MwcResult approximate_mwc(congest::Network& net,
                          const ApproxMwcOptions& options = {});

}  // namespace mwc::cycle
