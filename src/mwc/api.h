// Top-level API: one entry point, `solve()`, that picks the paper's
// algorithm by graph class and requested mode and reports everything a
// caller can want to know about the run.
//
//   mode = kApprox  ->  Table 1's best sublinear approximation for
//                       whatever graph the network carries:
//     undirected unweighted : (2 - 1/g)   O~(sqrt n + D)   [Thm 1.3.B]
//     undirected weighted   : (2 + eps)   O~(n^(2/3) + D)  [Thm 1.4.C]
//     directed unweighted   : 2           O~(n^(4/5) + D)  [Thm 1.2.C]
//     directed weighted     : (2 + eps)   O~(n^(4/5) + D)  [Thm 1.2.D]
//
//   mode = kExact   ->  the O~(n) exact baseline (exact.h).
//
//   mode = kAuto    ->  exact on small networks (where O~(n) rounds are
//                       cheaper than the approximations' overheads and the
//                       answer is better), the approximation above that.
//
// The MwcReport bundles the cycle result with the engine-level RunResult
// (solve() never throws on an aborted run - the outcome is data), the
// approximation ratio the dispatched algorithm promises ("alarm if
// value <= guarantee * T" decision procedures), and - when
// SolveOptions::collect_metrics is set - a per-phase MetricsSnapshot
// (congest/metrics.h) of everything the solve executed.
//
// Self-certification: every report carries a SolveStatus. solve() checks
// the returned witness cycle against the input graph (validate_cycle) and
// inspects the accumulated fault ledger (RunStats crash/drop/corruption
// counters); only a run that completed, suffered no interference the
// transport could not mask, and produced a value backed by a validated
// witness (or a provably clean "no cycle") is reported as certified. A
// finite best-effort value from an interrupted or interfered run is
// returned - the paper's algorithms only ever build candidates from real
// paths, so it is a genuine cycle-weight upper bound - but marked
// kDegraded, never silently. An invalid witness is dropped, never shipped.
//
// approximate_mwc() / exact_mwc() (exact.h) remain as thin wrappers with
// their historical throw-on-abort semantics.
#pragma once

#include <string>

#include "congest/governor.h"
#include "congest/metrics.h"
#include "congest/network.h"
#include "congest/protocol.h"
#include "mwc/result.h"

namespace mwc::congest {
class CheckpointSession;
}

namespace mwc::cycle {

enum class SolveMode {
  kAuto,    // exact below kAutoExactThreshold nodes, approx above
  kApprox,  // Table 1's sublinear approximation for the graph class
  kExact,   // the O~(n) exact baseline
};

inline const char* to_string(SolveMode mode) {
  switch (mode) {
    case SolveMode::kAuto: return "auto";
    case SolveMode::kApprox: return "approx";
    case SolveMode::kExact: return "exact";
  }
  return "unknown";
}

// kAuto picks exact at or below this node count: the approximations'
// sampling machinery only pays off once n dominates their polylog factors.
inline constexpr int kAutoExactThreshold = 128;

// How much of the answer solve() can vouch for. Ordered from best to
// worst; see MwcReport::status_reason for the one-line justification.
enum class SolveStatus {
  // Exact value, validated witness cycle of exactly that weight (or a
  // clean completed run proving there is no cycle), no un-masked faults.
  kCertified,
  // Same evidence bar, but the dispatched algorithm promises a ratio
  // (MwcReport::guarantee) rather than the exact minimum: the witness
  // validates with weight <= value.
  kApproxCertified,
  // A usable value without the full evidence: the run lost node state or
  // raw messages, hit the round budget (best-so-far candidates), or the
  // algorithm could not attach a validated witness. The value is still the
  // weight of a real cycle - an upper bound - just not certified minimal.
  kDegraded,
  // No usable value (aborted with nothing salvaged).
  kFailed,
};

inline const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kCertified: return "certified";
    case SolveStatus::kApproxCertified: return "approx_certified";
    case SolveStatus::kDegraded: return "degraded";
    case SolveStatus::kFailed: return "failed";
  }
  return "unknown";
}

struct SolveOptions {
  SolveMode mode = SolveMode::kAuto;
  // Approximation slack for the weighted classes ((2 + eps) ratios).
  double epsilon = 0.5;
  // Record a per-phase MetricsSnapshot of the solve into MwcReport::metrics
  // (a private sink is attached for the duration; an already-attached
  // outer Metrics still observes every run via absorb()). Also evaluates
  // the bound-adherence registry (mwc/bounds.h) over the snapshot, filling
  // MwcReport::metrics.adherence - a pure function of the snapshot and the
  // graph, so it adds nothing to the simulated execution.
  bool collect_metrics = false;

  // Congestion observatory (congest/congestion.h). When enabled (requires
  // collect_metrics to be useful - the snapshot is its only output), solve()
  // attaches a private CongestionLedger for its duration and fills
  // MwcReport::metrics.congestion with per-link top-K loads, the per-round
  // timeline, and the engine's spill/overflow high-water marks. Separate
  // from collect_metrics because ledger state is not checkpointed: a
  // resumed solve's metrics stay byte-identical to an uninterrupted run's
  // only while this is off (see congestion.h, "Checkpoint caveat"). An
  // already-attached outer ledger is restored afterwards and keeps
  // observing its own runs.
  congest::CongestionOptions congestion;

  // Resource governance (congest/governor.h; not owned, may be null).
  // solve() attaches the governor to the network for its duration, re-arms
  // the wall-clock epoch, and starts the stall watchdog if configured. A
  // stop surfaces as RunOutcome::kBudgetExhausted / kCancelled in
  // MwcReport::run plus MwcReport::stop, and the result degrades to an
  // anytime answer (bounds below) instead of a wrong certified one.
  congest::Governor* governor = nullptr;

  // Checkpoint/resume session (congest/checkpoint.h; not owned, may be
  // null). Fresh session: solve() binds it and the exact algorithm cuts a
  // snapshot at each stage boundary. Loaded session (resuming() true):
  // solve() validates it against this network + these options (throwing
  // std::runtime_error on mismatch), restores the engine counters and
  // metrics, and skips the completed stages - deterministic replay makes
  // the final report/metrics/trace byte-identical to an uninterrupted run.
  // Only the exact path cuts stages; approximation solves record only the
  // armed snapshot.
  congest::CheckpointSession* checkpoint = nullptr;
};

struct MwcReport {
  MwcResult result;

  // How the underlying protocol runs ended: the worst outcome across the
  // solve's runs (kRecovered when crashes happened but every node was
  // revived) with the accumulated stats - the fault ledger. On a salvaged
  // abort result.value is the best-so-far candidate (see SolveStatus).
  congest::RunResult run;

  // Self-certification verdict and its one-line justification.
  SolveStatus status = SolveStatus::kFailed;
  std::string status_reason;

  // Approximation ratio the dispatched algorithm promises (1.0 = exact).
  double guarantee = 1.0;
  // Which algorithm the dispatcher ran: "exact", "girth-approx",
  // "directed-2approx", "weighted-undirected", "weighted-directed".
  std::string algorithm;

  // Per-phase profile; empty unless SolveOptions::collect_metrics.
  congest::MetricsSnapshot metrics;

  // Anytime bounds on the true MWC weight, valid whatever the status:
  // lower_bound <= w(MWC) <= upper_bound. upper_bound is result.value when
  // finite (always the weight of a real cycle); lower_bound is value itself
  // when certified, ceil(value / guarantee) when approx-certified, and a
  // structural floor (shortest possible cycle from the minimum edge weight)
  // on degraded/failed reports. A certified "no cycle" sets both to
  // graph::kInfWeight. Budget-exhausted and cancelled solves report their
  // partial knowledge here instead of pretending to none (or to all).
  graph::Weight lower_bound = 0;
  graph::Weight upper_bound = graph::kInfWeight;

  // Why a governed solve stopped; reason kNone when no governor was
  // attached or the budget sufficed. `detail` holds the diagnostic line.
  congest::StopInfo stop;

  // Accumulated fault/transport counters of every run behind the report
  // (identical to run.stats; named for readability at call sites).
  const congest::RunStats& fault_ledger() const { return run.stats; }

  bool certified() const {
    return status == SolveStatus::kCertified ||
           status == SolveStatus::kApproxCertified;
  }
  bool ok() const { return run.ok(); }
};

MwcReport solve(congest::Network& net, const SolveOptions& options = {});

// Fingerprint of the options that change what a solve executes or records
// (mode, epsilon, collect_metrics) - the identity checkpoints validate
// against on resume, and one ingredient of the solve service's artifact
// cache key (mwc/service.h). Budgets, deadlines, threads, and the
// congestion observatory are deliberately excluded: they never change the
// deterministic execution.
std::uint64_t solve_options_digest(const SolveOptions& options);

struct ApproxMwcOptions {
  double epsilon = 0.5;  // weighted classes only
};

// The approximation ratio approximate_mwc() / solve(kApprox) promises for
// this network's graph class under `options`.
double approximate_mwc_guarantee(const congest::Network& net,
                                 const ApproxMwcOptions& options = {});

// Thin wrapper over solve(kApprox): returns the MwcResult alone and throws
// congest::RunAbortedError when the run did not complete.
MwcResult approximate_mwc(congest::Network& net,
                          const ApproxMwcOptions& options = {});

}  // namespace mwc::cycle
