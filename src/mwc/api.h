// Top-level API: one entry point, `solve()`, that picks the paper's
// algorithm by graph class and requested mode and reports everything a
// caller can want to know about the run.
//
//   mode = kApprox  ->  Table 1's best sublinear approximation for
//                       whatever graph the network carries:
//     undirected unweighted : (2 - 1/g)   O~(sqrt n + D)   [Thm 1.3.B]
//     undirected weighted   : (2 + eps)   O~(n^(2/3) + D)  [Thm 1.4.C]
//     directed unweighted   : 2           O~(n^(4/5) + D)  [Thm 1.2.C]
//     directed weighted     : (2 + eps)   O~(n^(4/5) + D)  [Thm 1.2.D]
//
//   mode = kExact   ->  the O~(n) exact baseline (exact.h).
//
//   mode = kAuto    ->  exact on small networks (where O~(n) rounds are
//                       cheaper than the approximations' overheads and the
//                       answer is better), the approximation above that.
//
// The MwcReport bundles the cycle result with the engine-level RunResult
// (solve() never throws on an aborted run - the outcome is data), the
// approximation ratio the dispatched algorithm promises ("alarm if
// value <= guarantee * T" decision procedures), and - when
// SolveOptions::collect_metrics is set - a per-phase MetricsSnapshot
// (congest/metrics.h) of everything the solve executed.
//
// approximate_mwc() / exact_mwc() (exact.h) remain as thin wrappers with
// their historical throw-on-abort semantics.
#pragma once

#include <string>

#include "congest/metrics.h"
#include "congest/network.h"
#include "congest/protocol.h"
#include "mwc/result.h"

namespace mwc::cycle {

enum class SolveMode {
  kAuto,    // exact below kAutoExactThreshold nodes, approx above
  kApprox,  // Table 1's sublinear approximation for the graph class
  kExact,   // the O~(n) exact baseline
};

inline const char* to_string(SolveMode mode) {
  switch (mode) {
    case SolveMode::kAuto: return "auto";
    case SolveMode::kApprox: return "approx";
    case SolveMode::kExact: return "exact";
  }
  return "unknown";
}

// kAuto picks exact at or below this node count: the approximations'
// sampling machinery only pays off once n dominates their polylog factors.
inline constexpr int kAutoExactThreshold = 128;

struct SolveOptions {
  SolveMode mode = SolveMode::kAuto;
  // Approximation slack for the weighted classes ((2 + eps) ratios).
  double epsilon = 0.5;
  // Record a per-phase MetricsSnapshot of the solve into MwcReport::metrics
  // (a private sink is attached for the duration; an already-attached
  // outer Metrics still observes every run via absorb()).
  bool collect_metrics = false;
};

struct MwcReport {
  MwcResult result;

  // How the underlying protocol runs ended. kCompleted when every run ran
  // to quiescence; otherwise the outcome and stats of the aborted run
  // (result.value is then meaningless).
  congest::RunResult run;

  // Approximation ratio the dispatched algorithm promises (1.0 = exact).
  double guarantee = 1.0;
  // Which algorithm the dispatcher ran: "exact", "girth-approx",
  // "directed-2approx", "weighted-undirected", "weighted-directed".
  std::string algorithm;

  // Per-phase profile; empty unless SolveOptions::collect_metrics.
  congest::MetricsSnapshot metrics;

  bool ok() const { return run.ok(); }
};

MwcReport solve(congest::Network& net, const SolveOptions& options = {});

struct ApproxMwcOptions {
  double epsilon = 0.5;  // weighted classes only
};

// The approximation ratio approximate_mwc() / solve(kApprox) promises for
// this network's graph class under `options`.
double approximate_mwc_guarantee(const congest::Network& net,
                                 const ApproxMwcOptions& options = {});

// Thin wrapper over solve(kApprox): returns the MwcResult alone and throws
// congest::RunAbortedError when the run did not complete.
MwcResult approximate_mwc(congest::Network& net,
                          const ApproxMwcOptions& options = {});

}  // namespace mwc::cycle
