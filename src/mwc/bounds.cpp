#include "mwc/bounds.h"

#include <cmath>
#include <cstring>
#include <string_view>

namespace mwc::cycle {

namespace {

using congest::AdherenceEntry;
using congest::AdherenceReport;
using congest::MetricsSnapshot;
using congest::PhaseMetrics;

// Closed-form evaluator over the instance parameters. D enters as D + 1 so
// forms stay finite on diameter-0 (single-node) topologies.
using Form = double (*)(double n, double m, double d);

struct TotalBound {
  const char* counter;  // "rounds" | "words"
  const char* form;
  Form eval;
  double threshold;
};

struct AlgoBounds {
  const char* algorithm;
  TotalBound rounds;
  TotalBound words;
};

struct PhaseBound {
  // Matched against the last '/'-separated component of the phase path; the
  // registered form bounds ONE protocol run of that primitive.
  const char* suffix;
  const char* form;
  Form eval;
  double threshold;
};

double lg(double x) { return std::log2(x < 2 ? 2 : x); }

// ---- per-algorithm totals (Table 1 rows, with the implementation's
// polylog factors spelled out) ----------------------------------------------

constexpr const char* kExactRounds = "(n + D) * log2(n)";
constexpr const char* kExactWords = "n * m";
constexpr const char* kGirthRounds = "(sqrt(n) + D) * log2(n)^2";
constexpr const char* kDir2Rounds = "(n^(4/5) + D) * log2(n)^2";
constexpr const char* kWUndirRounds = "(n^(2/3) + D) * log2(n)^2";
constexpr const char* kWDirRounds = "(n^(4/5) + D) * log2(n)^2";
constexpr const char* kApproxWords = "m * log2(n)^2";

const AlgoBounds kAlgoBounds[] = {
    {"exact",
     {"rounds", kExactRounds,
      [](double n, double, double d) { return (n + d) * lg(n); }, 16.0},
     {"words", kExactWords, [](double n, double m, double) { return n * m; },
      8.0}},
    {"girth-approx",
     {"rounds", kGirthRounds,
      [](double n, double, double d) {
        return (std::sqrt(n) + d) * lg(n) * lg(n);
      },
      32.0},
     {"words", kApproxWords,
      [](double n, double m, double) { return m * lg(n) * lg(n); }, 32.0}},
    {"directed-2approx",
     {"rounds", kDir2Rounds,
      [](double n, double, double d) {
        return (std::pow(n, 0.8) + d) * lg(n) * lg(n);
      },
      32.0},
     {"words", kApproxWords,
      [](double n, double m, double) { return m * lg(n) * lg(n); }, 64.0}},
    {"weighted-undirected",
     {"rounds", kWUndirRounds,
      [](double n, double, double d) {
        return (std::cbrt(n * n) + d) * lg(n) * lg(n);
      },
      64.0},
     {"words", kApproxWords,
      [](double n, double m, double) { return m * lg(n) * lg(n); }, 64.0}},
    {"weighted-directed",
     {"rounds", kWDirRounds,
      [](double n, double, double d) {
        return (std::pow(n, 0.8) + d) * lg(n) * lg(n);
      },
      64.0},
     {"words", kApproxWords,
      [](double n, double m, double) { return m * lg(n) * lg(n); }, 64.0}},
};

// ---- per-primitive phase bounds (one protocol run each) --------------------

const PhaseBound kPhaseBounds[] = {
    // A full multi-source BFS sweep settles in O(n + D) rounds (Lemma 2.1:
    // the pipeline drains one wavefront per round).
    {"multi_bfs", "n + D",
     [](double n, double, double d) { return n + d; }, 8.0},
    // Restricted BFS explores at most h hops with h <= n^(4/5) polylog.
    {"restricted BFS", "n^(4/5) * log2(n)",
     [](double n, double, double) { return std::pow(n, 0.8) * lg(n); }, 32.0},
    // A single BFS tree build is D + 1 rounds of flooding.
    {"bfs_tree", "D + 1",
     [](double, double, double d) { return d; }, 8.0},
    // Sampled-source BFS batches O~(sqrt(n)) sources.
    {"sample BFS", "(sqrt(n) + D) * log2(n)",
     [](double n, double, double d) { return (std::sqrt(n) + d) * lg(n); },
     32.0},
};

bool last_component_is(std::string_view path, std::string_view suffix) {
  const std::size_t slash = path.rfind('/');
  const std::string_view last =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  return last == suffix;
}

AdherenceEntry make_entry(std::string scope, const char* counter,
                          const char* form, double predicted,
                          std::uint64_t observed, double threshold) {
  AdherenceEntry e;
  e.scope = std::move(scope);
  e.counter = counter;
  e.form = form;
  e.predicted = predicted;
  e.observed = observed;
  e.constant = predicted > 0 ? static_cast<double>(observed) / predicted : 0;
  e.threshold = threshold;
  e.verdict = e.constant <= threshold ? "pass" : "warn";
  return e;
}

}  // namespace

AdherenceReport fit_bounds(const MetricsSnapshot& snapshot,
                           const std::string& algorithm, std::uint64_t n,
                           std::uint64_t m, int diameter) {
  AdherenceReport report;
  report.algorithm = algorithm;
  report.n = n;
  report.m = m;
  report.diameter = diameter;
  if (snapshot.total.runs == 0) return report;  // nothing to fit

  const double fn = static_cast<double>(n);
  const double fm = static_cast<double>(m);
  const double fd = static_cast<double>(diameter) + 1;

  const AlgoBounds* algo = nullptr;
  for (const AlgoBounds& a : kAlgoBounds) {
    if (algorithm == a.algorithm) {
      algo = &a;
      break;
    }
  }
  if (algo != nullptr) {
    report.entries.push_back(make_entry(
        "total", algo->rounds.counter, algo->rounds.form,
        algo->rounds.eval(fn, fm, fd), snapshot.total.rounds,
        algo->rounds.threshold));
    report.entries.push_back(make_entry(
        "total", algo->words.counter, algo->words.form,
        algo->words.eval(fn, fm, fd), snapshot.total.words,
        algo->words.threshold));
  }

  // Phase entries, in the snapshot's own (first-open, deterministic) phase
  // order: the per-run form scales by the phase's run count.
  for (const PhaseMetrics& p : snapshot.phases) {
    if (p.runs == 0) continue;
    for (const PhaseBound& b : kPhaseBounds) {
      if (!last_component_is(p.path, b.suffix)) continue;
      const double predicted =
          static_cast<double>(p.runs) * b.eval(fn, fm, fd);
      report.entries.push_back(make_entry(p.path, "rounds", b.form, predicted,
                                          p.rounds, b.threshold));
      break;
    }
  }

  if (report.entries.empty()) return report;  // unknown algorithm, no phases
  report.evaluated = true;
  report.verdict = "pass";
  for (const AdherenceEntry& e : report.entries) {
    if (e.verdict != "pass") {
      report.verdict = "warn";
      break;
    }
  }
  return report;
}

}  // namespace mwc::cycle
