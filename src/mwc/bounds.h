// The bound-adherence registry: each algorithm the solve() front door can
// dispatch declares its predicted round/word complexity as a closed form in
// (n, m, D, sqrt(n)), and fit_bounds checks an observed MetricsSnapshot
// against the declaration after every solve.
//
// The registry encodes Table 1 of the paper (Manoharan & Ramachandran,
// PODC 2024) with the polylog factors the implementation actually pays:
//
//   exact MWC             O~(n) rounds       (Theorem 1.1)
//   girth-approx          O~(sqrt(n) + D)    (2 - 1/g approximation)
//   directed-2approx      O~(n^(4/5) + D)
//   weighted-undirected   O~(n^(2/3) + D)    ((2 + eps) approximation)
//   weighted-directed     O~(n^(4/5) + D)
//
// plus per-phase forms for the primitives every family shares (multi-BFS,
// restricted BFS, BFS trees, sample BFS). The fit divides the observed
// counter by the evaluated form: the quotient is the hidden constant the
// asymptotic notation absorbs. A constant at or below the registered
// threshold earns "pass"; above it, "warn" - never an error, because a
// blown constant on an adversarial instance is a finding, not a failure.
// Thresholds are calibrated against the repo's own test/bench instances
// (roughly 4-8x the worst constant observed there), so a regression that
// doubles a primitive's round count trips the verdict.
//
// Determinism: the fit is a pure function of (snapshot, algorithm, n, m, D)
// - no clocks, no RNG - so the emitted `adherence` JSON is byte-identical
// across thread counts and settle paths whenever the snapshot is.
#pragma once

#include <cstdint>
#include <string>

#include "congest/congestion.h"
#include "congest/metrics.h"

namespace mwc::cycle {

// Fits `snapshot` against the bounds registered for `algorithm` (an
// MwcReport::algorithm name: "exact", "girth-approx", "directed-2approx",
// "weighted-undirected", "weighted-directed"). Phase entries are emitted
// only for phases present in the snapshot, and their predictions scale with
// the phase's run count (the registered form bounds one protocol run).
// Returns an evaluated report whenever the snapshot recorded at least one
// run; `n`/`m`/`diameter` describe the problem graph and its communication
// topology (see graph::communication_diameter).
congest::AdherenceReport fit_bounds(const congest::MetricsSnapshot& snapshot,
                                    const std::string& algorithm,
                                    std::uint64_t n, std::uint64_t m,
                                    int diameter);

}  // namespace mwc::cycle
