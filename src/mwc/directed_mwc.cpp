#include "mwc/directed_mwc.h"

#include <algorithm>
#include <unordered_map>

#include "congest/bfs_tree.h"
#include "congest/broadcast.h"
#include "congest/convergecast.h"
#include "congest/metrics.h"
#include "congest/multi_bfs.h"
#include "ksssp/skeleton_bfs.h"
#include "mwc/restricted_bfs.h"
#include "mwc/witness.h"
#include "support/check.h"
#include "support/math_util.h"

namespace mwc::cycle {

using congest::BroadcastItem;
using congest::RunStats;
using congest::Word;
using graph::kInfWeight;
using graph::NodeId;
using graph::Weight;

namespace {

Word pack_pair(int i, int j, Weight d) {
  MWC_CHECK(i >= 0 && j >= 0 && i < (1 << 14) && j < (1 << 14));
  MWC_CHECK(d >= 0 && d < (Weight{1} << 36));
  return (static_cast<Word>(i) << 50) | (static_cast<Word>(j) << 36) |
         static_cast<Word>(d);
}
void unpack_pair(Word w, int* i, int* j, Weight* d) {
  *i = static_cast<int>(w >> 50);
  *j = static_cast<int>((w >> 36) & ((1u << 14) - 1));
  *d = static_cast<Weight>(w & ((Word{1} << 36) - 1));
}

congest::SsspResult matrix_of(const congest::MultiBfs& bfs, int n, int k) {
  congest::SsspResult m;
  m.k = k;
  // MultiBfs's matrix is already row-major [v*k + i]: one bulk copy.
  (void)n;
  const std::span<const Weight> dm = bfs.dist_matrix();
  m.dist.assign(dm.begin(), dm.end());
  return m;
}

}  // namespace

MwcResult directed_mwc_2approx(congest::Network& net,
                               const DirectedMwcParams& params) {
  const graph::Graph& g = params.graph_override != nullptr
                              ? *params.graph_override
                              : net.problem_graph();
  MWC_CHECK_MSG(g.is_directed(), "directed_mwc_2approx needs a digraph");
  const int n = net.n();
  const bool tick_mode = params.tick_limit > 0;
  MWC_CHECK_MSG(!tick_mode || params.graph_override != nullptr,
                "tick mode is meant for scaled graphs (Section 5.2)");
  MWC_CHECK_MSG(params.graph_override == nullptr || tick_mode,
                "graph_override requires the hop-limited tick mode");

  MwcResult result;
  // Hop parameters (Section 3): h = n^(3/5), rho = n^(4/5).
  const int h_hop = support::int_pow(n, params.h_exponent);
  const Weight rho = std::max(1, support::int_pow(n, params.rho_exponent));
  // Tick budget of the short-cycle machinery; in tick mode distances from S
  // are computed up to 4 h* so that every membership test on a <= h*-tick
  // cycle is decided by exact values (see the pass-threshold note in
  // restricted_bfs.h / DESIGN.md).
  const Weight h_ticks = tick_mode ? params.tick_limit : h_hop;
  const Weight s_budget = tick_mode ? 4 * params.tick_limit : kInfWeight;

  // --- 1. sample S -------------------------------------------------------
  support::Rng rng = net.next_run_rng();
  const double p = std::min(
      1.0, params.sample_constant * support::log_n(n) / static_cast<double>(h_hop));
  std::vector<NodeId> samples;
  for (NodeId v = 0; v < n; ++v) {
    if (rng.next_bool(p)) samples.push_back(v);
  }
  if (samples.empty()) {
    samples.push_back(static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(n))));
  }
  const int s_count = static_cast<int>(samples.size());
  MWC_CHECK(s_count < (1 << 14));
  result.sample_count = s_count;

  // --- 2. distances from and to S ---------------------------------------
  RunStats s;
  congest::PhaseSpan skeleton_span(net, "sample skeleton");
  congest::SsspResult from_s;  // at(v, i) = d(S[i], v)
  congest::SsspResult to_s;    // at(v, i) = d(v, S[i])
  if (!tick_mode) {
    ksssp::SkeletonBfsParams kb;
    kb.sources = samples;
    ksssp::KSsspResult fwd = ksssp::skeleton_k_source_bfs(net, kb);
    add_stats(result.stats, fwd.stats);
    kb.reverse = true;
    ksssp::KSsspResult rev = ksssp::skeleton_k_source_bfs(net, kb);
    add_stats(result.stats, rev.stats);
    from_s = std::move(fwd.dist);
    to_s = std::move(rev.dist);
  } else {
    congest::MultiBfsParams mb;
    mb.sources = samples;
    mb.mode = congest::DelayMode::kWeightDelay;
    mb.tick_limit = s_budget;
    mb.graph_override = params.graph_override;
    congest::MultiBfs fwd = run_multi_bfs(net, mb, &s);
    add_stats(result.stats, s);
    mb.reverse = true;
    congest::MultiBfs rev = run_multi_bfs(net, std::move(mb), &s);
    add_stats(result.stats, s);
    from_s = matrix_of(fwd, n, s_count);
    to_s = matrix_of(rev, n, s_count);
  }
  skeleton_span.close();

  // --- 3. cycles through sampled vertices (line 4) -----------------------
  std::vector<Weight> mu(static_cast<std::size_t>(n), kInfWeight);
  {
    std::unordered_map<NodeId, int> sample_index;
    for (int i = 0; i < s_count; ++i) {
      sample_index.emplace(samples[static_cast<std::size_t>(i)], i);
    }
    for (NodeId v = 0; v < n; ++v) {
      for (const graph::Arc& a : g.out(v)) {
        auto it = sample_index.find(a.to);
        if (it == sample_index.end()) continue;
        const Weight d = from_s.at(v, it->second);  // d(s, v)
        if (d == kInfWeight) continue;
        mu[static_cast<std::size_t>(v)] =
            std::min(mu[static_cast<std::size_t>(v)], a.w + d);
      }
    }
  }

  // --- 4. broadcast pairwise d(s, t) (line 5) ----------------------------
  congest::PhaseSpan bcast_span(net, "pairwise broadcast");
  congest::BfsTreeResult tree = congest::build_bfs_tree(net, 0, &s);
  add_stats(result.stats, s);
  std::vector<Weight> s_pair(
      static_cast<std::size_t>(s_count) * static_cast<std::size_t>(s_count),
      kInfWeight);
  {
    std::vector<std::vector<BroadcastItem>> items(static_cast<std::size_t>(n));
    for (int j = 0; j < s_count; ++j) {
      const NodeId t = samples[static_cast<std::size_t>(j)];
      for (int i = 0; i < s_count; ++i) {
        const Weight d = from_s.at(t, i);  // d(S[i], S[j])
        if (d == kInfWeight) continue;
        items[static_cast<std::size_t>(t)].push_back({pack_pair(i, j, d)});
      }
    }
    congest::BroadcastResult bcast = congest::broadcast(net, tree, items, &s);
    bcast_span.close();
    add_stats(result.stats, s);
    for (const BroadcastItem& item : bcast.items()) {
      int i = 0, j = 0;
      Weight d = 0;
      unpack_pair(item[0], &i, &j, &d);
      s_pair[static_cast<std::size_t>(i) * static_cast<std::size_t>(s_count) +
             static_cast<std::size_t>(j)] = d;
    }
  }

  // --- 5. Algorithm 3: short cycles avoiding S ----------------------------
  RestrictedBfsParams rb;
  rb.samples = samples;
  rb.dist_to_s = std::move(to_s.dist);
  rb.dist_from_s = std::move(from_s.dist);
  rb.s_pair = std::move(s_pair);
  rb.h = h_ticks;
  rb.rho = rho;
  rb.overflow_window = params.overflow_window;
  rb.overflow_threshold_factor = params.overflow_threshold_factor;
  rb.enable_overflow_handling = params.enable_overflow_handling;
  rb.weighted_ticks = tick_mode;
  rb.graph_override = params.graph_override;
  if (tick_mode) rb.pass_threshold = 3 * params.tick_limit;
  congest::PhaseSpan short_span(net, "short cycles");
  RestrictedBfsResult short_cycles = restricted_bfs_short_cycles(net, rb);
  short_span.close();
  add_stats(result.stats, short_cycles.stats);
  result.overflow_count = short_cycles.overflow_count;
  result.restricted_peak_queue = short_cycles.restricted_peak_queue;

  Weight short_best = kInfWeight;
  Weight long_best = kInfWeight;
  for (NodeId v = 0; v < n; ++v) {
    long_best = std::min(long_best, mu[static_cast<std::size_t>(v)]);
    short_best = std::min(short_best, short_cycles.mu[static_cast<std::size_t>(v)]);
    mu[static_cast<std::size_t>(v)] =
        std::min(mu[static_cast<std::size_t>(v)],
                 short_cycles.mu[static_cast<std::size_t>(v)]);
  }
  result.long_cycle_value = long_best;
  result.short_cycle_value = short_best;

  // --- 6. convergecast (line 7) -------------------------------------------
  congest::PhaseSpan aggregate_span(net, "aggregate min");
  result.value = congest::convergecast(net, tree, mu, congest::AggregateOp::kMin, &s);
  aggregate_span.close();
  add_stats(result.stats, s);

  // Witness when the short-cycle branch produced the winner (the long
  // branch's skeleton distances carry no usable parent pointers). Validated
  // against the effective graph; weights are ticks of g, which for the full
  // (unweighted) mode equal cycle length.
  if (!short_cycles.witness.empty() && result.value != kInfWeight) {
    Weight total = 0;
    if (detail::validate_cycle(g, short_cycles.witness, &total) &&
        total <= result.value) {
      result.witness = std::move(short_cycles.witness);
    }
  }
  return result;
}

}  // namespace mwc::cycle
