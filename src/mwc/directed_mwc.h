// Algorithm 2: 2-approximation of directed unweighted MWC in
// O~(n^(4/5) + D) rounds (Theorem 1.2.C, Section 3), plus the hop/tick-
// limited variant used as the short-cycle subroutine of the directed
// weighted algorithm (Section 5.2).
//
// Structure (h = n^(3/5), rho = n^(4/5), |S| = Theta~(n^(2/5))):
//   1. sample S with prob ~ log(n)/h; any cycle of >= h hops contains a
//      sampled vertex w.h.p.
//   2. exact k-source BFS from S, forward and reversed (Algorithm 1) -
//      every node learns d(s,v) and d(v,s) for all s in S;
//   3. cycles through S, computed exactly: mu_v <- w(v,s) + d(s,v) over
//      out-arcs (v,s) [covers all long cycles and Fact-1 surrogates];
//   4. broadcast the |S|^2 pairwise d(s,t);
//   5. Algorithm 3 (restricted_bfs.h) for short cycles avoiding S;
//   6. convergecast min.
//
// In the hop-limited mode (tick_limit h*, weighted ticks on a scaled graph)
// step 2 becomes a plain h*-tick-limited multi-source BFS - everything the
// subroutine must find lives within h* ticks, so the skeleton detour is
// unnecessary (Corollary 4.1 applied to Algorithm 2).
#pragma once

#include "congest/network.h"
#include "mwc/result.h"

namespace mwc::cycle {

struct DirectedMwcParams {
  double sample_constant = 1.0;  // p = c log n / h
  double h_exponent = 0.6;       // h = n^(3/5)
  double rho_exponent = 0.8;     // rho = n^(4/5)
  int overflow_window = 0;
  double overflow_threshold_factor = 4.0;
  bool enable_overflow_handling = true;

  // Hop-limited / stretched mode (Section 5.2): nonzero tick budget plus an
  // alternative (scaled) weighting. Returns the 2-approx of the minimum
  // weight among cycles of <= tick_limit ticks, in ticks of `scaled`.
  graph::Weight tick_limit = 0;  // 0 = full algorithm
  const graph::Graph* graph_override = nullptr;
};

MwcResult directed_mwc_2approx(congest::Network& net,
                               const DirectedMwcParams& params = {});

}  // namespace mwc::cycle
