#include "mwc/exact.h"

#include <algorithm>
#include <iterator>

#include "congest/bellman_ford.h"
#include "congest/bfs_tree.h"
#include "congest/convergecast.h"
#include "congest/metrics.h"
#include "congest/multi_bfs.h"
#include "congest/neighbor_exchange.h"
#include "congest/runner.h"
#include "mwc/api.h"
#include "support/check.h"

namespace mwc::cycle {

using congest::RunStats;
using congest::Word;
using graph::kInfWeight;
using graph::kNoNode;
using graph::NodeId;
using graph::Weight;

namespace {

// Entry exchanged with neighbors: source id (24b), distance (36b), and a
// "you are my parent for this source" flag (1b) - one CONGEST word.
Word pack_entry(NodeId source, Weight d, bool parent_flag) {
  MWC_CHECK(source >= 0 && source < (1 << 24));
  MWC_CHECK(d >= 0 && d < (Weight{1} << 36));
  return (static_cast<Word>(parent_flag) << 60) |
         (static_cast<Word>(source) << 36) | static_cast<Word>(d);
}
void unpack_entry(Word w, NodeId* source, Weight* d, bool* parent_flag) {
  *parent_flag = ((w >> 60) & 1) != 0;
  *source = static_cast<NodeId>((w >> 36) & ((1u << 24) - 1));
  *d = static_cast<Weight>(w & ((Word{1} << 36) - 1));
}

// All-source distances: pipelined BFS for unit weights (the O(n) APSP of
// [28]); asynchronous Bellman-Ford otherwise.
struct AllPairs {
  // at(v, w) = d(w, v).
  std::vector<Weight> d;
  std::vector<NodeId> parent;  // parent of v in the SPT rooted at w
  int n = 0;
  Weight at(NodeId v, NodeId w) const {
    return d[static_cast<std::size_t>(v) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(w)];
  }
  NodeId parent_at(NodeId v, NodeId w) const {
    return parent[static_cast<std::size_t>(v) * static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(w)];
  }
};

// Runs the APSP phase without throwing: an aborted run (round budget,
// unrecovered crash) still yields the distance estimates accumulated so
// far. Every finite MultiBfs estimate is the weight of a real path - the
// protocol only ever relaxes along actual edges - so candidates built from
// a partial matrix are genuine cycle-weight upper bounds, merely not
// proven minimal. The caller downgrades accordingly via `outcome`.
AllPairs all_pairs(congest::Network& net, RunStats* stats,
                   congest::RunOutcome* outcome) {
  const int n = net.n();
  std::vector<NodeId> sources(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
  congest::MultiBfsParams params;
  params.sources = std::move(sources);
  params.mode = net.problem_graph().is_unit_weight()
                    ? congest::DelayMode::kUnitDelay
                    : congest::DelayMode::kImmediate;
  congest::PhaseSpan span(net, "multi_bfs");
  congest::MultiBfs bfs(net, std::move(params));
  const congest::RunResult rr = congest::run_protocol_result(net, bfs);
  span.close();
  *stats = rr.stats;
  *outcome = rr.outcome;
  AllPairs ap;
  ap.n = n;
  // Sources are the identity permutation, so MultiBfs's row-major [v*n + i]
  // matrices already have AllPairs' layout: two bulk copies instead of
  // 2*n^2 accessor calls (0.6M for the n=768 bench row).
  const std::span<const Weight> dm = bfs.dist_matrix();
  ap.d.assign(dm.begin(), dm.end());
  const std::span<const NodeId> pm = bfs.parent_matrix();
  ap.parent.assign(pm.begin(), pm.end());
  return ap;
}

// Checkpoint payload codecs (congest/checkpoint.h). Stage kStageApsp
// carries the distance/parent matrices + the APSP outcome; kStageExchange
// appends the per-node minima and the best-candidate details. Versioning
// rides on the checkpoint header - these blocks change only with it.
void encode_apsp(congest::CheckpointWriter& w, const AllPairs& ap,
                 congest::RunOutcome apsp_outcome) {
  w.u32(static_cast<std::uint32_t>(ap.n));
  w.u8(static_cast<std::uint8_t>(apsp_outcome));
  for (Weight d : ap.d) w.i64(d);
  for (NodeId p : ap.parent) w.i32(p);
}

bool decode_apsp(congest::CheckpointReader& r, int n, AllPairs* ap,
                 congest::RunOutcome* apsp_outcome) {
  std::uint32_t saved_n = 0;
  std::uint8_t outcome = 0;
  if (!r.u32(saved_n) || static_cast<int>(saved_n) != n || !r.u8(outcome)) {
    return false;
  }
  *apsp_outcome = static_cast<congest::RunOutcome>(outcome);
  ap->n = n;
  const std::size_t cells =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  ap->d.resize(cells);
  ap->parent.resize(cells);
  for (Weight& d : ap->d) {
    if (!r.i64(d)) return false;
  }
  for (NodeId& p : ap->parent) {
    if (!r.i32(p)) return false;
  }
  return true;
}

}  // namespace

namespace detail {

MwcResult exact_mwc_impl(congest::Network& net,
                         congest::CheckpointSession* ckpt) {
  using congest::CheckpointSession;
  const graph::Graph& g = net.problem_graph();
  const int n = net.n();
  MwcResult result;
  result.sample_count = n;

  // Resume bookkeeping: the saved stage tells us which phases to skip, the
  // payload reader walks the saved blocks, and the accumulated stats /
  // worst outcome pick up exactly where the cut left them.
  std::uint8_t resume_stage = CheckpointSession::kStageArmed;
  congest::CheckpointReader saved(
      ckpt != nullptr && ckpt->resuming() ? ckpt->payload() : std::string_view{});
  if (ckpt != nullptr && ckpt->resuming()) {
    resume_stage = ckpt->stage();
    result.stats = ckpt->stats();
    result.worst_outcome = ckpt->worst_outcome();
  }

  RunStats s;
  congest::RunOutcome apsp_outcome = congest::RunOutcome::kCompleted;
  AllPairs ap;
  if (resume_stage >= CheckpointSession::kStageApsp) {
    MWC_CHECK_MSG(decode_apsp(saved, n, &ap, &apsp_outcome),
                  "checkpoint: corrupt APSP payload");
  } else {
    congest::PhaseSpan apsp_span(net, "apsp");
    ap = all_pairs(net, &s, &apsp_outcome);
    apsp_span.close();
    add_stats(result.stats, s);
    note_outcome(result.worst_outcome, apsp_outcome);
    if (ckpt != nullptr) {
      congest::CheckpointWriter w;
      encode_apsp(w, ap, apsp_outcome);
      ckpt->cut(CheckpointSession::kStageApsp, w.take(), result.stats,
                result.worst_outcome);
    }
  }
  const bool apsp_usable =
      apsp_outcome == congest::RunOutcome::kCompleted ||
      apsp_outcome == congest::RunOutcome::kRecovered;

  std::vector<Weight> mu(static_cast<std::size_t>(n), kInfWeight);
  // Best candidate details for witness reconstruction.
  Weight best = kInfWeight;
  NodeId best_u = kNoNode, best_x = kNoNode, best_w = kNoNode;
  if (resume_stage >= CheckpointSession::kStageExchange) {
    bool ok = true;
    for (Weight& m : mu) ok = ok && saved.i64(m);
    std::int32_t u = kNoNode, x = kNoNode, w = kNoNode;
    ok = ok && saved.i64(best) && saved.i32(u) && saved.i32(x) &&
         saved.i32(w) && saved.done();
    MWC_CHECK_MSG(ok, "checkpoint: corrupt exchange payload");
    best_u = u;
    best_x = x;
    best_w = w;
  } else if (g.is_directed()) {
    // Node u closes cycles over its out-arcs: d(v, u) + w(u, v).
    for (NodeId u = 0; u < n; ++u) {
      for (const graph::Arc& a : g.out(u)) {
        const Weight d = ap.at(u, a.to);
        if (d == kInfWeight) continue;
        mu[static_cast<std::size_t>(u)] =
            std::min(mu[static_cast<std::size_t>(u)], d + a.w);
        if (d + a.w < best) {
          best = d + a.w;
          best_u = u;       // cycle = SP(a.to -> u) + arc (u, a.to)
          best_w = a.to;
        }
      }
    }
  } else {
    // Non-tree-edge candidates d(w,x) + d(w,y) + w(x,y). The distributed
    // realization exchanges distance vectors (+ parent flags) with
    // neighbors; when a run aborts (or the APSP already did), the same
    // candidates are rebuilt from the partial matrix directly - the
    // exchanged words are a pure function of it - and solve() marks the
    // result degraded via worst_outcome.
    auto consider = [&](NodeId y, const graph::Arc& a, NodeId w, Weight dx,
                        bool x_parented_by_y) {
      if (x_parented_by_y) return;               // (x,y) tree edge
      if (ap.parent_at(y, w) == a.to) return;    // (x,y) tree edge
      const Weight dy = ap.at(y, w);
      if (dy == kInfWeight) return;
      mu[static_cast<std::size_t>(y)] =
          std::min(mu[static_cast<std::size_t>(y)], dx + dy + a.w);
      if (dx + dy + a.w < best) {
        best = dx + dy + a.w;
        best_u = y;  // cycle = SP(w -> x) + edge (x, y) + SP(y -> w)
        best_x = a.to;
        best_w = w;
      }
    };
    bool exchanged = false;
    if (apsp_usable) {
      try {
        congest::PhaseSpan exchange_span(net, "distance exchange");
        congest::NeighborExchangeResult ex = congest::neighbor_exchange(
            net,
            [&](NodeId v, NodeId u) {
              std::vector<Word> words;
              words.reserve(static_cast<std::size_t>(n));
              for (NodeId w = 0; w < n; ++w) {
                const Weight d = ap.at(v, w);
                if (d == kInfWeight) continue;
                words.push_back(pack_entry(w, d, ap.parent_at(v, w) == u));
              }
              return words;
            },
            &s);
        exchange_span.close();
        add_stats(result.stats, s);

        for (NodeId y = 0; y < n; ++y) {
          for (const graph::Arc& a : g.out(y)) {
            for (Word word : ex.received(y, a.to)) {
              NodeId w = graph::kNoNode;
              Weight dx = 0;
              bool x_parented_by_y = false;
              unpack_entry(word, &w, &dx, &x_parented_by_y);
              consider(y, a, w, dx, x_parented_by_y);
            }
          }
        }
        exchanged = true;
      } catch (const congest::RunAbortedError& e) {
        add_stats(result.stats, e.result().stats);
        note_outcome(result.worst_outcome, e.result().outcome);
      }
    }
    if (!exchanged) {
      for (NodeId y = 0; y < n; ++y) {
        for (const graph::Arc& a : g.out(y)) {
          for (NodeId w = 0; w < n; ++w) {
            const Weight dx = ap.at(a.to, w);
            if (dx == kInfWeight) continue;
            consider(y, a, w, dx, ap.parent_at(a.to, w) == y);
          }
        }
      }
    }
  }

  if (ckpt != nullptr && resume_stage < CheckpointSession::kStageExchange) {
    congest::CheckpointWriter w;
    encode_apsp(w, ap, apsp_outcome);
    for (Weight m : mu) w.i64(m);
    w.i64(best);
    w.i32(best_u);
    w.i32(best_x);
    w.i32(best_w);
    ckpt->cut(CheckpointSession::kStageExchange, w.take(), result.stats,
              result.worst_outcome);
  }

  // Redundant network-level aggregation of the per-node minima. Skipped
  // after an abort (another full run would just re-hit the same fault);
  // when it runs on an interference-free ledger it must reproduce the
  // host-side candidate. The fault schedule re-applies to every protocol
  // run, so the aggregate is also skipped whenever the plan can surface
  // un-masked interference (a crash can disconnect the tree build itself;
  // raw loss or corruption without the ARQ layer can strand a subtree) -
  // the cross-check would be vacuous on such ledgers anyway.
  const auto& plan = net.config().faults;
  const bool plan_can_interfere =
      !plan.crashes.empty() ||
      (!net.config().reliable_transport &&
       (plan.has_drops() || plan.has_corruption()));
  if (!plan_can_interfere &&
      (result.worst_outcome == congest::RunOutcome::kCompleted ||
       result.worst_outcome == congest::RunOutcome::kRecovered)) {
    try {
      congest::PhaseSpan aggregate_span(net, "aggregate min");
      congest::BfsTreeResult tree = congest::build_bfs_tree(net, 0, &s);
      add_stats(result.stats, s);
      const Weight agg =
          congest::convergecast(net, tree, mu, congest::AggregateOp::kMin, &s);
      aggregate_span.close();
      add_stats(result.stats, s);
      if (!stats_interference(result.stats, net.config().reliable_transport)) {
        MWC_CHECK(agg == best);
      }
    } catch (const congest::RunAbortedError& e) {
      add_stats(result.stats, e.result().stats);
      note_outcome(result.worst_outcome, e.result().outcome);
    }
  }
  result.value = best;

  // Witness reconstruction from the SPT parent pointers ("store the next
  // vertex on the cycle at each vertex" - Section 1.1). On a salvaged
  // partial matrix a parent chain may be truncated (kNoNode) or, in
  // principle, inconsistent; the climb bails out and the witness is simply
  // omitted (solve() validates whatever is attached anyway).
  if (best != kInfWeight) {
    auto climb = [&ap, n](NodeId from, NodeId source) {
      std::vector<NodeId> path{from};  // from back to source
      while (path.back() != source) {
        const NodeId p = ap.parent_at(path.back(), source);
        if (p == kNoNode || static_cast<int>(path.size()) > n) {
          path.clear();
          return path;
        }
        path.push_back(p);
      }
      return path;  // [from, ..., source]
    };
    if (g.is_directed()) {
      std::vector<NodeId> path = climb(best_u, best_w);  // u ... v
      result.witness.assign(path.rbegin(), path.rend());  // v ... u (+ arc u->v)
    } else {
      // Paths w->x and w->y share only w at the optimum (otherwise a
      // lighter cycle than the minimum would exist); splice them around the
      // closing edge (x, y).
      std::vector<NodeId> px = climb(best_x, best_w);  // x ... w
      std::vector<NodeId> py = climb(best_u, best_w);  // y ... w
      if (!px.empty() && !py.empty()) {
        result.witness.assign(px.begin(), px.end());   // x ... w
        result.witness.insert(result.witness.end(), std::next(py.rbegin()),
                              py.rend());              // ... back toward y
        std::reverse(result.witness.begin(), result.witness.end());
      }
    }
  }
  return result;
}

}  // namespace detail

MwcResult exact_mwc(congest::Network& net) {
  SolveOptions opts;
  opts.mode = SolveMode::kExact;
  MwcReport report = solve(net, opts);
  if (!report.ok()) {
    throw congest::RunAbortedError(report.run.outcome, report.run.stats);
  }
  return std::move(report.result);
}

}  // namespace mwc::cycle
