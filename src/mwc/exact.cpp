#include "mwc/exact.h"

#include <algorithm>
#include <iterator>

#include "congest/bellman_ford.h"
#include "congest/bfs_tree.h"
#include "congest/convergecast.h"
#include "congest/metrics.h"
#include "congest/multi_bfs.h"
#include "congest/neighbor_exchange.h"
#include "congest/runner.h"
#include "mwc/api.h"
#include "support/check.h"

namespace mwc::cycle {

using congest::RunStats;
using congest::Word;
using graph::kInfWeight;
using graph::kNoNode;
using graph::NodeId;
using graph::Weight;

namespace {

// Entry exchanged with neighbors: source id (24b), distance (36b), and a
// "you are my parent for this source" flag (1b) - one CONGEST word.
Word pack_entry(NodeId source, Weight d, bool parent_flag) {
  MWC_CHECK(source >= 0 && source < (1 << 24));
  MWC_CHECK(d >= 0 && d < (Weight{1} << 36));
  return (static_cast<Word>(parent_flag) << 60) |
         (static_cast<Word>(source) << 36) | static_cast<Word>(d);
}
void unpack_entry(Word w, NodeId* source, Weight* d, bool* parent_flag) {
  *parent_flag = ((w >> 60) & 1) != 0;
  *source = static_cast<NodeId>((w >> 36) & ((1u << 24) - 1));
  *d = static_cast<Weight>(w & ((Word{1} << 36) - 1));
}

// All-source distances: pipelined BFS for unit weights (the O(n) APSP of
// [28]); asynchronous Bellman-Ford otherwise.
struct AllPairs {
  // at(v, w) = d(w, v).
  std::vector<Weight> d;
  std::vector<NodeId> parent;  // parent of v in the SPT rooted at w
  int n = 0;
  Weight at(NodeId v, NodeId w) const {
    return d[static_cast<std::size_t>(v) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(w)];
  }
  NodeId parent_at(NodeId v, NodeId w) const {
    return parent[static_cast<std::size_t>(v) * static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(w)];
  }
};

AllPairs all_pairs(congest::Network& net, RunStats* stats) {
  const int n = net.n();
  std::vector<NodeId> sources(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
  congest::MultiBfsParams params;
  params.sources = std::move(sources);
  params.mode = net.problem_graph().is_unit_weight()
                    ? congest::DelayMode::kUnitDelay
                    : congest::DelayMode::kImmediate;
  congest::MultiBfs bfs = run_multi_bfs(net, std::move(params), stats);
  AllPairs ap;
  ap.n = n;
  ap.d.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  ap.parent.resize(ap.d.size());
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w = 0; w < n; ++w) {
      ap.d[static_cast<std::size_t>(v) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(w)] = bfs.dist(v, w);
      ap.parent[static_cast<std::size_t>(v) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(w)] = bfs.parent(v, w);
    }
  }
  return ap;
}

}  // namespace

namespace detail {

MwcResult exact_mwc_impl(congest::Network& net) {
  const graph::Graph& g = net.problem_graph();
  const int n = net.n();
  MwcResult result;
  result.sample_count = n;

  RunStats s;
  congest::PhaseSpan apsp_span(net, "apsp");
  AllPairs ap = all_pairs(net, &s);
  apsp_span.close();
  add_stats(result.stats, s);

  std::vector<Weight> mu(static_cast<std::size_t>(n), kInfWeight);
  // Best candidate details for witness reconstruction.
  Weight best = kInfWeight;
  NodeId best_u = kNoNode, best_x = kNoNode, best_w = kNoNode;
  if (g.is_directed()) {
    // Node u closes cycles over its out-arcs: d(v, u) + w(u, v).
    for (NodeId u = 0; u < n; ++u) {
      for (const graph::Arc& a : g.out(u)) {
        const Weight d = ap.at(u, a.to);
        if (d == kInfWeight) continue;
        mu[static_cast<std::size_t>(u)] =
            std::min(mu[static_cast<std::size_t>(u)], d + a.w);
        if (d + a.w < best) {
          best = d + a.w;
          best_u = u;       // cycle = SP(a.to -> u) + arc (u, a.to)
          best_w = a.to;
        }
      }
    }
  } else {
    // Exchange distance vectors (+ parent flags) with neighbors, then take
    // non-tree-edge candidates d(w,x) + d(w,y) + w(x,y).
    congest::PhaseSpan exchange_span(net, "distance exchange");
    congest::NeighborExchangeResult ex = congest::neighbor_exchange(
        net,
        [&](NodeId v, NodeId u) {
          std::vector<Word> words;
          words.reserve(static_cast<std::size_t>(n));
          for (NodeId w = 0; w < n; ++w) {
            const Weight d = ap.at(v, w);
            if (d == kInfWeight) continue;
            words.push_back(pack_entry(w, d, ap.parent_at(v, w) == u));
          }
          return words;
        },
        &s);
    exchange_span.close();
    add_stats(result.stats, s);

    for (NodeId y = 0; y < n; ++y) {
      for (const graph::Arc& a : g.out(y)) {
        const NodeId x = a.to;
        for (Word word : ex.received(y, x)) {
          NodeId w = graph::kNoNode;
          Weight dx = 0;
          bool x_parented_by_y = false;
          unpack_entry(word, &w, &dx, &x_parented_by_y);
          if (x_parented_by_y) continue;                    // (x,y) tree edge
          if (ap.parent_at(y, w) == x) continue;            // (x,y) tree edge
          const Weight dy = ap.at(y, w);
          if (dy == kInfWeight) continue;
          mu[static_cast<std::size_t>(y)] =
              std::min(mu[static_cast<std::size_t>(y)], dx + dy + a.w);
          if (dx + dy + a.w < best) {
            best = dx + dy + a.w;
            best_u = y;  // cycle = SP(w -> x) + edge (x, y) + SP(y -> w)
            best_x = x;
            best_w = w;
          }
        }
      }
    }
  }

  congest::PhaseSpan aggregate_span(net, "aggregate min");
  congest::BfsTreeResult tree = congest::build_bfs_tree(net, 0, &s);
  add_stats(result.stats, s);
  result.value = congest::convergecast(net, tree, mu, congest::AggregateOp::kMin, &s);
  aggregate_span.close();
  add_stats(result.stats, s);
  MWC_CHECK(result.value == best);

  // Witness reconstruction from the SPT parent pointers ("store the next
  // vertex on the cycle at each vertex" - Section 1.1).
  if (best != kInfWeight) {
    auto climb = [&ap](NodeId from, NodeId source) {
      std::vector<NodeId> path{from};  // from back to source
      while (path.back() != source) {
        path.push_back(ap.parent_at(path.back(), source));
      }
      return path;  // [from, ..., source]
    };
    if (g.is_directed()) {
      std::vector<NodeId> path = climb(best_u, best_w);  // u ... v
      result.witness.assign(path.rbegin(), path.rend());  // v ... u (+ arc u->v)
    } else {
      // Paths w->x and w->y share only w at the optimum (otherwise a
      // lighter cycle than the minimum would exist); splice them around the
      // closing edge (x, y).
      std::vector<NodeId> px = climb(best_x, best_w);  // x ... w
      std::vector<NodeId> py = climb(best_u, best_w);  // y ... w
      result.witness.assign(px.begin(), px.end());     // x ... w
      result.witness.insert(result.witness.end(), std::next(py.rbegin()),
                            py.rend());                // ... back toward y
      std::reverse(result.witness.begin(), result.witness.end());
    }
  }
  return result;
}

}  // namespace detail

MwcResult exact_mwc(congest::Network& net) {
  SolveOptions opts;
  opts.mode = SolveMode::kExact;
  MwcReport report = solve(net, opts);
  if (!report.ok()) {
    throw congest::RunAbortedError(report.run.outcome, report.run.stats);
  }
  return std::move(report.result);
}

}  // namespace mwc::cycle
