// Exact MWC baselines (the "1, O~(n)" rows of Table 1).
//
//  * Directed (weighted or not): all-source shortest paths, then every node
//    u closes cycles over its out-arcs (u,v) with d(v,u) + w(u,v); exact
//    because shortest paths are simple. For unweighted graphs this is the
//    pipelined n-source BFS APSP of Holzer-Wattenhofer [28], O(n + D)
//    rounds; for weighted graphs the APSP substrate is the asynchronous
//    Bellman-Ford of congest::exact_sssp (DESIGN.md substitution 2).
//
//  * Undirected: all-source shortest paths + a one-hop exchange of distance
//    vectors with per-source BFS-parent flags; candidates are
//    d(w,x) + d(w,y) + w(x,y) over *non-tree* edges (x,y). Sound: the
//    fundamental cycle of a non-tree edge weighs at most the candidate.
//    Complete: on a minimum weight cycle all pairwise distances are realized
//    along the cycle, and one of the edges straddling the antipodal point of
//    any root w is non-tree with candidate exactly w(C) (weights >= 1 rule
//    out the degenerate tie cases; see the straddling-edge argument in
//    EXPERIMENTS.md).
#pragma once

#include "congest/checkpoint.h"
#include "congest/network.h"
#include "mwc/result.h"

namespace mwc::cycle {

// Thin wrapper over solve(kExact) (api.h): returns the MwcResult alone and
// throws congest::RunAbortedError when the run did not complete.
MwcResult exact_mwc(congest::Network& net);

namespace detail {
// The algorithm itself, as dispatched by cycle::solve(). With a bound
// CheckpointSession the algorithm cuts a snapshot at each stage boundary
// (after APSP, after the candidate/exchange phase) and, when the session is
// resuming, decodes the saved stage payload instead of re-running those
// phases - deterministic replay of the rest reproduces an uninterrupted
// run's outputs byte for byte (see congest/checkpoint.h).
MwcResult exact_mwc_impl(congest::Network& net,
                         congest::CheckpointSession* ckpt = nullptr);
}  // namespace detail

}  // namespace mwc::cycle
