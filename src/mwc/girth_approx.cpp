#include "mwc/girth_approx.h"

#include "graph/transforms.h"
#include "support/check.h"

namespace mwc::cycle {

MwcResult girth_approx(congest::Network& net, const GirthApproxParams& params) {
  MWC_CHECK(!net.problem_graph().is_directed());
  GirthCoreParams core;
  core.sigma = params.sigma_override;
  core.sample_constant = params.sample_constant;
  if (net.problem_graph().is_unit_weight()) {
    return girth_core(net, core);
  }
  // Girth ignores weights: run on the unit-weight shape.
  graph::Graph unit = graph::unweighted_shape(net.problem_graph());
  core.graph_override = &unit;
  return girth_core(net, core);
}

MwcResult hop_limited_girth_approx(congest::Network& net,
                                   const graph::Graph& scaled,
                                   graph::Weight tick_limit,
                                   const GirthApproxParams& params) {
  MWC_CHECK(!scaled.is_directed());
  MWC_CHECK(tick_limit >= 1);
  GirthCoreParams core;
  core.sigma = params.sigma_override;
  core.sample_constant = params.sample_constant;
  core.tick_limit = tick_limit;
  core.weighted_ticks = true;
  core.graph_override = &scaled;
  return girth_core(net, core);
}

}  // namespace mwc::cycle
