// (2 - 1/g)-approximate girth in O~(sqrt(n) + D) rounds (Theorem 1.3.B),
// plus the h-limited variant of Corollary 4.1 used by the weighted
// algorithms of Section 5.
#pragma once

#include "congest/network.h"
#include "mwc/girth_core.h"
#include "mwc/result.h"

namespace mwc::cycle {

struct GirthApproxParams {
  double sample_constant = 2.0;
  int sigma_override = 0;  // 0 = ceil(sqrt(n))
};

// Undirected unweighted MWC (weights of the problem graph are ignored; the
// graph is treated as unit-weight). The returned value is the length of a
// real cycle, at most (2 - 1/g) * g.
MwcResult girth_approx(congest::Network& net, const GirthApproxParams& params = {});

// Corollary 4.1: (2 - 1/g)-approximation of the h-tick-limited MWC of the
// *stretched* graph of `scaled` (an alternative weighting of the problem
// graph), in O~(sqrt(n) + h + D) rounds. Returns ticks of `scaled`.
MwcResult hop_limited_girth_approx(congest::Network& net,
                                   const graph::Graph& scaled,
                                   graph::Weight tick_limit,
                                   const GirthApproxParams& params = {});

}  // namespace mwc::cycle
