#include "mwc/girth_core.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "congest/bfs_tree.h"
#include "congest/convergecast.h"
#include "congest/metrics.h"
#include "congest/multi_bfs.h"
#include "congest/neighbor_exchange.h"
#include "mwc/packing.h"
#include "mwc/witness.h"
#include "support/check.h"
#include "support/math_util.h"

namespace mwc::cycle {

using congest::MultiBfs;
using congest::MultiBfsParams;
using congest::RunStats;
using congest::Word;
using graph::kInfWeight;
using graph::kNoNode;
using graph::NodeId;
using graph::Weight;

MwcResult girth_core(congest::Network& net, const GirthCoreParams& params) {
  const graph::Graph& g =
      params.graph_override != nullptr ? *params.graph_override : net.problem_graph();
  MWC_CHECK_MSG(!g.is_directed(), "girth_core requires an undirected graph");
  const int n = net.n();
  MwcResult result;

  const int sigma = params.sigma > 0
                        ? params.sigma
                        : static_cast<int>(std::lround(std::ceil(std::sqrt(
                              static_cast<double>(n)))));
  const congest::DelayMode mode = params.weighted_ticks
                                      ? congest::DelayMode::kWeightDelay
                                      : congest::DelayMode::kUnitDelay;

  RunStats s;
  // --- 1. (sigma, h) source detection from all vertices -----------------
  MultiBfsParams det_params;
  det_params.sources.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) det_params.sources[static_cast<std::size_t>(v)] = v;
  det_params.sigma = sigma;
  det_params.tick_limit = params.tick_limit;
  det_params.mode = mode;
  det_params.graph_override = params.graph_override;
  congest::PhaseSpan detect_span(net, "source detection");
  MultiBfs detection = run_multi_bfs(net, std::move(det_params), &s);
  detect_span.close();
  add_stats(result.stats, s);

  // --- 2. exchange detected lists (source, dist, parent flag) ----------
  congest::PhaseSpan det_ex_span(net, "detection exchange");
  congest::NeighborExchangeResult det_ex = congest::neighbor_exchange(
      net,
      [&](NodeId v, NodeId u) {
        std::vector<Word> words;
        for (const MultiBfs::Detected& e : detection.detected(v)) {
          words.push_back(pack_entry(e.source_idx, e.d, e.parent == u));
        }
        return words;
      },
      &s);
  det_ex_span.close();
  add_stats(result.stats, s);

  std::vector<Weight> mu(static_cast<std::size_t>(n), kInfWeight);
  // Global argmin, for witness reconstruction: family 1/2 use detection
  // parent chains, family 3 the sampled BFS tree.
  struct BestCandidate {
    Weight value = kInfWeight;
    int family = 0;
    NodeId w = kNoNode;  // BFS root
    NodeId x = kNoNode;  // first endpoint
    NodeId u = kNoNode;  // second endpoint (family 2: the outside vertex)
  } best;
  NodeId best_y2 = kNoNode;  // family 2: the second inside neighbor

  // --- 3+4. local candidates from neighborhood knowledge ----------------
  for (NodeId u = 0; u < n; ++u) {
    // Own detected distances indexed by source.
    std::unordered_map<NodeId, std::pair<Weight, NodeId>> own;  // w -> (d, parent)
    for (const MultiBfs::Detected& e : detection.detected(u)) {
      own.emplace(e.source_idx, std::pair(e.d, e.parent));
    }
    // Family (ii) bookkeeping: per source, the two best (d(w,x) + wt(x,u))
    // over distinct neighbors x that u does not parent.
    struct Best2 {
      Weight d1 = kInfWeight, d2 = kInfWeight;
      NodeId x1 = kNoNode, x2 = kNoNode;
    };
    std::unordered_map<NodeId, Best2> two_hop;

    for (const graph::Arc& a : g.out(u)) {
      const NodeId x = a.to;
      const Weight wxu = a.w;
      for (Word word : det_ex.received(u, x)) {
        NodeId w = kNoNode;
        Weight dx = 0;
        bool u_is_parent_of_x = false;
        unpack_entry(word, &w, &dx, &u_is_parent_of_x);

        // Family (i): non-tree edge candidate.
        auto it = own.find(w);
        if (it != own.end()) {
          const auto [du, parent_u] = it->second;
          const bool tree_edge = u_is_parent_of_x || parent_u == x;
          if (!tree_edge) {
            mu[static_cast<std::size_t>(u)] =
                std::min(mu[static_cast<std::size_t>(u)], dx + du + wxu);
            if (dx + du + wxu < best.value) {
              best = BestCandidate{dx + du + wxu, 1, w, x, u};
            }
          }
        }

        // Family (ii): u outside the neighborhood, reached via x and y.
        if (!u_is_parent_of_x) {
          Best2& b = two_hop[w];
          const Weight val = dx + wxu;
          if (val < b.d1) {
            if (b.x1 != x) {
              b.d2 = b.d1;
              b.x2 = b.x1;
            }
            b.d1 = val;
            b.x1 = x;
          } else if (x != b.x1 && val < b.d2) {
            b.d2 = val;
            b.x2 = x;
          }
        }
      }
    }
    for (const auto& [w, b] : two_hop) {
      if (b.d2 == kInfWeight) continue;
      mu[static_cast<std::size_t>(u)] =
          std::min(mu[static_cast<std::size_t>(u)], b.d1 + b.d2);
      if (b.d1 + b.d2 < best.value) {
        best = BestCandidate{b.d1 + b.d2, 2, w, b.x1, u};
        best_y2 = b.x2;
      }
    }
  }

  // --- 5. sampled full BFS for cycles escaping their neighborhoods ------
  std::vector<NodeId> samples;
  if (params.sample_count_override >= 0) {
    support::Rng rng = net.next_run_rng();
    std::vector<NodeId> order(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
    rng.shuffle(order);
    order.resize(static_cast<std::size_t>(
        std::min(params.sample_count_override, n)));
    samples = std::move(order);
  } else {
    support::Rng rng = net.next_run_rng();
    const double p = std::min(
        1.0, params.sample_constant * support::log_n(n) / static_cast<double>(sigma));
    for (NodeId v = 0; v < n; ++v) {
      if (rng.next_bool(p)) samples.push_back(v);
    }
  }
  result.sample_count = static_cast<int>(samples.size());

  std::optional<MultiBfs> sampled_bfs;
  std::unordered_map<NodeId, int> sample_index;
  if (!samples.empty()) {
    for (std::size_t i = 0; i < samples.size(); ++i) {
      sample_index.emplace(samples[i], static_cast<int>(i));
    }
    MultiBfsParams bfs_params;
    bfs_params.sources = samples;
    // A case-B candidate reaches up to w(C) + d(w,v) <= 1.5 * tick_limit
    // from the sample, so the sampled BFS needs headroom beyond the budget.
    bfs_params.tick_limit =
        params.tick_limit >= kInfWeight / 2 ? kInfWeight : 2 * params.tick_limit;
    bfs_params.mode = mode;
    bfs_params.graph_override = params.graph_override;
    congest::PhaseSpan sample_span(net, "sample BFS");
    sampled_bfs.emplace(run_multi_bfs(net, std::move(bfs_params), &s));
    sample_span.close();
    MultiBfs& sampled = *sampled_bfs;
    add_stats(result.stats, s);

    congest::PhaseSpan smp_ex_span(net, "sample exchange");
    congest::NeighborExchangeResult smp_ex = congest::neighbor_exchange(
        net,
        [&](NodeId v, NodeId u) {
          std::vector<Word> words;
          for (std::size_t i = 0; i < samples.size(); ++i) {
            const Weight d = sampled.dist(v, static_cast<int>(i));
            if (d == kInfWeight) continue;
            words.push_back(
                pack_entry(samples[i], d, sampled.parent(v, static_cast<int>(i)) == u));
          }
          return words;
        },
        &s);
    smp_ex_span.close();
    add_stats(result.stats, s);

    // Family (iii): family (i) with w in S and full (tick-limited) BFS data.
    for (NodeId u = 0; u < n; ++u) {
      for (const graph::Arc& a : g.out(u)) {
        const NodeId x = a.to;
        for (Word word : smp_ex.received(u, x)) {
          NodeId w = kNoNode;
          Weight dx = 0;
          bool u_is_parent_of_x = false;
          unpack_entry(word, &w, &dx, &u_is_parent_of_x);
          const int idx = sample_index.at(w);
          const Weight du = sampled.dist(u, idx);
          if (du == kInfWeight) continue;
          const bool tree_edge = u_is_parent_of_x || sampled.parent(u, idx) == x;
          if (tree_edge) continue;
          mu[static_cast<std::size_t>(u)] =
              std::min(mu[static_cast<std::size_t>(u)], dx + du + a.w);
          if (dx + du + a.w < best.value) {
            best = BestCandidate{dx + du + a.w, 3, w, x, u};
          }
        }
      }
    }
  }

  // --- 6. convergecast the minimum --------------------------------------
  congest::PhaseSpan aggregate_span(net, "aggregate min");
  congest::BfsTreeResult tree = congest::build_bfs_tree(net, 0, &s);
  add_stats(result.stats, s);
  result.value = congest::convergecast(net, tree, mu, congest::AggregateOp::kMin, &s);
  aggregate_span.close();
  add_stats(result.stats, s);

  // --- witness reconstruction --------------------------------------------
  // Parent chains: family 3 from the sampled BFS tree (always complete),
  // families 1/2 from the detection lists (entries can have been evicted by
  // closer sources, so reconstruction may fail - then witness stays empty).
  // The spliced cycle is a real simple cycle of weight <= value; it may be
  // *lighter* than the candidate when the two root paths share a prefix
  // (the fundamental-cycle effect), which is fine for the contract.
  if (best.value != kInfWeight) {
    MWC_CHECK(best.value == result.value);
    auto climb_detected = [&](NodeId from, NodeId root,
                              std::vector<NodeId>* path) -> bool {
      path->clear();
      path->push_back(from);
      while (path->back() != root) {
        NodeId cur = path->back();
        NodeId parent = kNoNode;
        for (const MultiBfs::Detected& e : detection.detected(cur)) {
          if (e.source_idx == root) {  // sources are all of V: idx == id
            parent = e.parent;
            break;
          }
        }
        if (parent == kNoNode) return false;  // evicted: chain broken
        path->push_back(parent);
      }
      return true;
    };
    auto climb_sampled = [&](NodeId from, int root_idx,
                             std::vector<NodeId>* path) -> bool {
      path->clear();
      path->push_back(from);
      while (sampled_bfs->dist(path->back(), root_idx) != 0) {
        NodeId parent = sampled_bfs->parent(path->back(), root_idx);
        if (parent == kNoNode) return false;
        path->push_back(parent);
      }
      return true;
    };
    std::vector<NodeId> px, pu;
    bool ok = false;
    std::vector<NodeId> cyc;
    if (best.family == 3) {
      ok = climb_sampled(best.x, sample_index.at(best.w), &px) &&
           climb_sampled(best.u, sample_index.at(best.w), &pu);
      if (ok) cyc = detail::splice_root_paths(px, pu);  // closed by (u, x)
    } else if (best.family == 1) {
      ok = climb_detected(best.x, best.w, &px) &&
           climb_detected(best.u, best.w, &pu);
      if (ok) cyc = detail::splice_root_paths(px, pu);
    } else {  // family 2: x .. lca .. y, then the outside vertex u
      ok = climb_detected(best.x, best.w, &px) &&
           climb_detected(best_y2, best.w, &pu);
      if (ok) {
        cyc = detail::splice_root_paths(px, pu);
        cyc.push_back(best.u);  // closed by edges (y, u) and (u, x)
      }
    }
    Weight total = 0;
    if (ok && detail::validate_cycle(g, cyc, &total) && total <= result.value) {
      result.witness = std::move(cyc);
    }
  }
  return result;
}

}  // namespace mwc::cycle
