// The undirected MWC approximation core (Section 4 of the paper).
//
// Parametrized machinery shared by:
//   * girth_approx (Theorem 1.3.B): sigma = sqrt(n), unit ticks;
//   * the hop/tick-limited variant of Corollary 4.1, run on stretched
//     scaled graphs by the weighted algorithm of Section 5.1;
//   * the Peleg-Roditty-Tal baseline girth_prt (doubling sigma = sqrt(n*g)).
//
// Structure:
//   1. (sigma, h) source detection from all vertices: each node learns its
//      sigma nearest vertices with exact (tick) distances and parents.
//   2. One-hop exchange of detected lists (with per-neighbor parent flags).
//   3. Candidate family (i): for an edge (x,y) and a vertex w detected at
//      both endpoints, if (x,y) is not a tree edge of w's detection forest:
//      d(w,x) + d(w,y) + wt(x,y).  [cycles inside neighborhoods, exact]
//   4. Candidate family (ii): for a vertex u with neighbors x != y and a
//      vertex w detected at both (u not the detection parent of either):
//      d(w,x) + wt(x,u) + wt(u,y) + d(w,y).  [exactly-one-vertex-outside
//      refinement that sharpens 2 to (2 - 1/g)]
//   5. Sample S with prob ~ log(n)/sigma (hits any full sigma-ball w.h.p.),
//      BFS from S, exchange rows, candidate family (iii) = family (i) with
//      w in S.  [cycles extending outside a neighborhood, 2-approx]
//   6. Convergecast the minimum.
//
// Soundness: every candidate is witnessed by a real cycle of at most that
// weight (fundamental-cycle / parent-chain arguments; parent flags exclude
// the degenerate closures). Completeness: if C lies strictly inside every
// cycle vertex's detected ball, family (i) from a root on C yields <= w(C);
// otherwise some v in C has its sigma-ball radius r(v) <= w(C)/2, a sample
// w lands in that ball w.h.p., and family (iii) yields <= w(C) + 2 d(w,v)
// <= 2 w(C).
#pragma once

#include "congest/network.h"
#include "mwc/result.h"

namespace mwc::cycle {

struct GirthCoreParams {
  int sigma = 0;                    // 0 = ceil(sqrt(n))
  double sample_constant = 2.0;     // sample prob = c * ln(n) / sigma
  int sample_count_override = -1;   // >= 0: sample exactly this many vertices
  graph::Weight tick_limit = graph::kInfWeight;  // h (Corollary 4.1)
  bool weighted_ticks = false;      // stretched-graph mode (arc = w ticks)
  const graph::Graph* graph_override = nullptr;  // scaled weights (same shape)
};

// Requires an undirected problem graph. Returns the min candidate in ticks
// of the (possibly overridden) graph; callers unscale.
MwcResult girth_core(congest::Network& net, const GirthCoreParams& params);

}  // namespace mwc::cycle
