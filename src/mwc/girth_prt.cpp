#include "mwc/girth_prt.h"

#include <algorithm>
#include <cmath>

#include "congest/metrics.h"
#include "graph/transforms.h"
#include "mwc/girth_core.h"
#include "support/check.h"

namespace mwc::cycle {

MwcResult girth_prt(congest::Network& net, const GirthPrtParams& params) {
  const graph::Graph& g = net.problem_graph();
  MWC_CHECK(!g.is_directed());
  const int n = net.n();

  graph::Graph unit = graph::unweighted_shape(g);

  MwcResult result;
  for (graph::Weight gamma = 4;; gamma *= 2) {
    GirthCoreParams core;
    core.sigma = static_cast<int>(std::lround(std::ceil(
        std::sqrt(static_cast<double>(n) * static_cast<double>(std::min<graph::Weight>(
                                               gamma, n))))));
    core.sigma = std::min(core.sigma, n);
    core.sample_constant = params.sample_constant;
    core.tick_limit = gamma;
    core.graph_override = g.is_unit_weight() ? nullptr : &unit;
    congest::PhaseSpan phase_span(net, "doubling phase");
    MwcResult phase = girth_core(net, core);
    phase_span.close();
    add_stats(result.stats, phase.stats);
    result.sample_count = phase.sample_count;
    if (phase.value < result.value) {
      result.value = phase.value;
      result.witness = std::move(phase.witness);
    }
    // Stop once the found value certifies the ratio: either gamma >= g (the
    // phase guarantee applies) or value <= 2 gamma < 2g.
    if (result.value <= 2 * gamma) break;
    if (gamma >= 2 * n) break;  // acyclic / no cycle within any budget
  }
  return result;
}

}  // namespace mwc::cycle
