// The prior-best girth approximation baseline [Peleg-Roditty-Tal, 44]:
// (2 - 1/g)-approximation in O~(sqrt(n g) + D) rounds.
//
// Reconstruction (the PODC paper cites [44] as a black box): doubling guess
// gamma for the girth; per phase run the Section-4 core with detection cap
// sigma = ceil(sqrt(n * gamma)), hop budget gamma, and ~ (n log n / sigma)
// samples; stop once the best cycle found is <= 2 * gamma (then either
// gamma >= g and the phase guarantee gives <= 2g - 1, or the found value
// is < 2g outright). Per-phase cost O~(sqrt(n gamma) + D); the last phase
// dominates with gamma < 2g, total O~(sqrt(n g) + D) - the complexity the
// paper quotes for [44], which its Theorem 1.3.B then improves to
// O~(sqrt(n) + D) by making the radius g-independent.
#pragma once

#include "congest/network.h"
#include "mwc/result.h"

namespace mwc::cycle {

struct GirthPrtParams {
  double sample_constant = 2.0;
};

MwcResult girth_prt(congest::Network& net, const GirthPrtParams& params = {});

}  // namespace mwc::cycle
