// Word layouts shared by the MWC modules.
#pragma once

#include "congest/message.h"
#include "graph/graph.h"
#include "support/check.h"

namespace mwc::cycle {

// (source id 24b | distance 36b | parent-flag 1b) in one CONGEST word:
// the entry a node shares with a neighbor when exchanging distance vectors.
inline congest::Word pack_entry(graph::NodeId source, graph::Weight d,
                                bool parent_flag) {
  MWC_CHECK(source >= 0 && source < (1 << 24));
  MWC_CHECK(d >= 0 && d < (graph::Weight{1} << 36));
  return (static_cast<congest::Word>(parent_flag) << 60) |
         (static_cast<congest::Word>(source) << 36) |
         static_cast<congest::Word>(d);
}

inline void unpack_entry(congest::Word w, graph::NodeId* source,
                         graph::Weight* d, bool* parent_flag) {
  *parent_flag = ((w >> 60) & 1) != 0;
  *source = static_cast<graph::NodeId>((w >> 36) & ((1u << 24) - 1));
  *d = static_cast<graph::Weight>(w & ((congest::Word{1} << 36) - 1));
}

}  // namespace mwc::cycle
