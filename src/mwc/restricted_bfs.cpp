#include "mwc/restricted_bfs.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "congest/metrics.h"
#include "congest/multi_bfs.h"
#include "congest/neighbor_exchange.h"
#include "congest/runner.h"
#include "support/check.h"
#include "support/math_util.h"

namespace mwc::cycle {

using congest::Delivery;
using congest::Message;
using congest::NodeCtx;
using congest::RunStats;
using congest::Word;
using graph::kInfWeight;
using graph::kNoNode;
using graph::NodeId;
using graph::Weight;

namespace {

// Distances ride in 40-bit fields; anything at or beyond kFarDist stands
// for "unreachable / beyond every budget" and auto-passes membership tests
// (matching the true test, whose right-hand side is infinite).
constexpr Weight kFarDist = (Weight{1} << 40) - 1;

// A restricted-BFS message: header (source 24b | dist 40b) followed by
// |R(source)| words (t 24b | d(source,t) 40b) - the Q(v) of line 16.
Word pack_hdr(NodeId id, Weight d) {
  MWC_DCHECK(id >= 0 && id < (1 << 24) && d >= 0 && d < (Weight{1} << 40));
  return (static_cast<Word>(id) << 40) | static_cast<Word>(d);
}
void unpack_hdr(Word w, NodeId* id, Weight* d) {
  *id = static_cast<NodeId>(w >> 40);
  *d = static_cast<Weight>(w & ((Word{1} << 40) - 1));
}

class RestrictedBfsProtocol : public congest::Protocol {
 public:
  RestrictedBfsProtocol(congest::Network& net, const RestrictedBfsParams& params)
      : net_(net),
        params_(params),
        g_(params.graph_override != nullptr ? *params.graph_override
                                            : net.problem_graph()),
        n_(net.n()),
        s_count_(static_cast<int>(params.samples.size())) {
    const int n = n_;
    beta_ = std::max(1, support::ceil_log2(static_cast<std::uint64_t>(std::max(2, n))));
    window_ = params_.overflow_window > 0
                  ? params_.overflow_window
                  : 2 * (2 + beta_);
    threshold_ = std::max<int>(
        4, static_cast<int>(params_.overflow_threshold_factor *
                            static_cast<double>(beta_)));

    sample_index_.reserve(static_cast<std::size_t>(s_count_));
    for (int i = 0; i < s_count_; ++i) {
      sample_index_.emplace(params_.samples[static_cast<std::size_t>(i)], i);
    }
    // Random partition of S into beta groups (shared randomness): shuffle,
    // then deal round-robin.
    support::Rng shared = net.next_run_rng();
    std::vector<int> order(static_cast<std::size_t>(s_count_));
    for (int i = 0; i < s_count_; ++i) order[static_cast<std::size_t>(i)] = i;
    shared.shuffle(order);
    groups_.resize(static_cast<std::size_t>(beta_));
    for (int i = 0; i < s_count_; ++i) {
      groups_[static_cast<std::size_t>(i % beta_)].push_back(
          order[static_cast<std::size_t>(i)]);
    }

    state_.resize(static_cast<std::size_t>(n));
    if (params_.weighted_ticks) outbox_.resize(static_cast<std::size_t>(n));
    result_.mu.assign(static_cast<std::size_t>(n), kInfWeight);
  }

  // --- distance-vector accessors (node-local knowledge: the row of v, and
  // rows of direct neighbors per the line-11 exchange run by the caller) --
  Weight d_to(NodeId v, int i) const {  // d(v, S[i])
    return params_.dist_to_s[static_cast<std::size_t>(v) * static_cast<std::size_t>(s_count_) +
                             static_cast<std::size_t>(i)];
  }
  Weight d_from(NodeId v, int i) const {  // d(S[i], v)
    return params_.dist_from_s[static_cast<std::size_t>(v) *
                                   static_cast<std::size_t>(s_count_) +
                               static_cast<std::size_t>(i)];
  }
  Weight d_pair(int i, int j) const {  // d(S[i], S[j])
    return params_.s_pair[static_cast<std::size_t>(i) * static_cast<std::size_t>(s_count_) +
                          static_cast<std::size_t>(j)];
  }

  void begin(NodeCtx& node) override {
    const NodeId v = node.id();
    auto& st = state_[static_cast<std::size_t>(v)];

    // Lines 3-8: greedy construction of R(v), local computation.
    // T(v) = { s in S_i | for all t in R(v):
    //          d(s,t) + 2 d(v,s) <= d(t,s) + 2 d(v,t) }.
    std::vector<int> r;  // sample indices
    for (int gi = 0; gi < beta_; ++gi) {
      std::vector<int> t_set;
      for (int s : groups_[static_cast<std::size_t>(gi)]) {
        if (d_to(v, s) == kInfWeight) continue;  // unreachable anchor: useless
        bool ok = true;
        for (int t : r) {
          if (d_pair(s, t) + 2 * d_to(v, s) > d_pair(t, s) + 2 * d_to(v, t)) {
            ok = false;
            break;
          }
        }
        if (ok) t_set.push_back(s);
      }
      if (!t_set.empty()) {
        r.push_back(t_set[node.rng().next_below(t_set.size())]);
      }
    }
    st.r_entries.reserve(r.size());
    for (int t : r) {
      st.r_entries.push_back({params_.samples[static_cast<std::size_t>(t)],
                              std::min(d_to(v, t), kFarDist)});
    }

    // Line 9: random start offset.
    st.delta = 1 + static_cast<std::uint64_t>(
                       node.rng().next_below(static_cast<std::uint64_t>(
                           std::max<Weight>(1, params_.rho))));
    node.wake_at(st.delta);
    st.sources.emplace(v, NodeState::Estimate{0, kNoNode});
    st.r_cache.emplace(v, st.r_entries);
  }

  void round(NodeCtx& node) override {
    const NodeId u = node.id();
    auto& st = state_[static_cast<std::size_t>(u)];
    flush_outbox(node);

    if (!st.started && node.round() >= st.delta) {
      st.started = true;
      if (!st.z) forward(node, u, 0, st.r_entries);
    }

    for (const Delivery& m : node.inbox()) {
      if (m.msg.size() < 1) continue;
      NodeId src = kNoNode;
      Weight d = 0;
      unpack_hdr(m.msg[0], &src, &d);
      if (st.z) continue;  // terminated (line 19/21)

      bump_window(node, st);
      ++st.window_count;
      ++st.restricted_messages;
      if (params_.enable_overflow_handling && st.window_count > threshold_) {
        st.z = true;  // phase-overflow vertex
        continue;
      }

      auto [it, inserted] = st.sources.emplace(src, NodeState::Estimate{d, m.from});
      if (!inserted) {
        if (it->second.d <= d) continue;  // stale estimate
        it->second = NodeState::Estimate{d, m.from};
      }
      auto cache_it = st.r_cache.find(src);
      if (cache_it == st.r_cache.end()) {
        std::vector<REntry> entries;
        entries.reserve(m.msg.size() - 1);
        for (std::uint32_t i = 1; i < m.msg.size(); ++i) {
          NodeId t = kNoNode;
          Weight dt = 0;
          unpack_hdr(m.msg[i], &t, &dt);
          entries.push_back({t, dt});
        }
        cache_it = st.r_cache.emplace(src, std::move(entries)).first;
      }
      forward(node, src, d, cache_it->second);
    }
  }

  RestrictedBfsResult finish(congest::Network& net, RunStats bfs_stats) {
    result_.stats = bfs_stats;
    for (const NodeState& st : state_) {
      result_.restricted_messages += st.restricted_messages;
    }
    // Line 24: unrestricted h-tick BFS from the overflow set Z.
    std::vector<NodeId> z_set;
    for (NodeId v = 0; v < n_; ++v) {
      if (state_[static_cast<std::size_t>(v)].z) z_set.push_back(v);
    }
    result_.overflow_count = static_cast<int>(z_set.size());
    if (!z_set.empty()) {
      congest::MultiBfsParams zp;
      zp.sources = z_set;
      zp.tick_limit = params_.h;
      zp.mode = params_.weighted_ticks ? congest::DelayMode::kWeightDelay
                                       : congest::DelayMode::kUnitDelay;
      zp.graph_override = params_.graph_override;
      congest::PhaseSpan overflow_span(net, "broadcast overflow");
      RunStats zs;
      congest::MultiBfs zbfs = run_multi_bfs(net, std::move(zp), &zs);
      overflow_span.close();
      add_stats(result_.stats, zs);
      Weight best_z = kInfWeight;
      int best_z_idx = -1;
      NodeId best_z_x = kNoNode;
      for (NodeId x = 0; x < n_; ++x) {
        for (const graph::Arc& a : g_.out(x)) {
          auto zi = std::lower_bound(z_set.begin(), z_set.end(), a.to);
          if (zi == z_set.end() || *zi != a.to) continue;
          const Weight d = zbfs.dist(x, static_cast<int>(zi - z_set.begin()));
          if (d == kInfWeight) continue;
          result_.mu[static_cast<std::size_t>(x)] =
              std::min(result_.mu[static_cast<std::size_t>(x)], d + a.w);
          if (d + a.w < best_z) {
            best_z = d + a.w;
            best_z_idx = static_cast<int>(zi - z_set.begin());
            best_z_x = x;
          }
        }
      }
      if (best_z != kInfWeight) {
        // Cycle = zbfs tree path z -> x plus the closing arc (x, z).
        std::vector<NodeId> chain{best_z_x};
        while (zbfs.dist(chain.back(), best_z_idx) != 0) {
          chain.push_back(zbfs.parent(chain.back(), best_z_idx));
        }
        result_.witness.assign(chain.rbegin(), chain.rend());
        result_.witness_value = best_z;
      }
    }
    // Line 26: close cycles with the final arc (y, v) at y.
    Weight best_short = kInfWeight;
    NodeId best_src = kNoNode, best_y = kNoNode;
    for (NodeId y = 0; y < n_; ++y) {
      const auto& st = state_[static_cast<std::size_t>(y)];
      for (const auto& [src, est] : st.sources) {
        if (src == y) continue;
        auto arcs = g_.out(y);
        auto it = std::lower_bound(arcs.begin(), arcs.end(), src,
                                   [](const graph::Arc& a, NodeId t) { return a.to < t; });
        if (it == arcs.end() || it->to != src) continue;
        result_.mu[static_cast<std::size_t>(y)] =
            std::min(result_.mu[static_cast<std::size_t>(y)], est.d + it->w);
        if (est.d + it->w < best_short) {
          best_short = est.d + it->w;
          best_src = src;
          best_y = y;
        }
      }
    }
    // Witness for the restricted-BFS branch: follow the stored predecessor
    // chain from y back to the source (estimates strictly decrease along
    // it, so the walk terminates and is simple at the optimum; validated by
    // the caller before use).
    if (best_short != kInfWeight && best_short <= result_.witness_value) {
      std::vector<NodeId> chain{best_y};
      bool ok = true;
      while (chain.back() != best_src) {
        const auto& st = state_[static_cast<std::size_t>(chain.back())];
        auto it = st.sources.find(best_src);
        if (it == st.sources.end() || it->second.prev == kNoNode ||
            chain.size() > static_cast<std::size_t>(n_)) {
          ok = false;
          break;
        }
        chain.push_back(it->second.prev);
      }
      if (ok) {
        result_.witness.assign(chain.rbegin(), chain.rend());
        result_.witness_value = best_short;
      }
    }
    return std::move(result_);
  }

 private:
  struct REntry {
    NodeId t;
    Weight d;  // d(source, t)
  };
  struct PendingSend {
    std::uint64_t send_round;
    NodeId neighbor;
    NodeId src;
    Weight dist;
    std::int64_t priority;
  };
  struct PendingOrder {
    bool operator()(const PendingSend& a, const PendingSend& b) const {
      return a.send_round > b.send_round;
    }
  };
  struct NodeState {
    std::vector<REntry> r_entries;  // R(v) with d(v,t)
    std::uint64_t delta = 0;
    bool started = false;
    bool z = false;
    std::uint64_t window_id = ~std::uint64_t{0};
    int window_count = 0;
    // Per node (not on result_ directly): nodes may be stepped concurrently.
    std::uint64_t restricted_messages = 0;
    struct Estimate {
      Weight d;
      NodeId prev;  // neighbor that delivered it (kNoNode at the source)
    };
    std::unordered_map<NodeId, Estimate> sources;  // src -> best estimate
    std::unordered_map<NodeId, std::vector<REntry>> r_cache;
  };

  void bump_window(const NodeCtx& node, NodeState& st) const {
    const std::uint64_t wid = node.round() / static_cast<std::uint64_t>(window_);
    if (wid != st.window_id) {
      st.window_id = wid;
      st.window_count = 0;
    }
  }

  // Line 22: membership test for target x in P(src) with estimate d*.
  bool in_neighborhood(NodeId x, Weight d_star,
                       const std::vector<REntry>& r_entries) const {
    const Weight pass_at = std::min(params_.pass_threshold, kFarDist);
    for (const REntry& e : r_entries) {
      if (e.d >= pass_at) continue;  // far anchor: auto-pass
      const auto idx = sample_index_.find(e.t);
      MWC_CHECK(idx != sample_index_.end());
      const int t = idx->second;
      if (d_to(x, t) + 2 * d_star > d_from(x, t) + 2 * e.d) return false;
    }
    return true;
  }

  void forward(NodeCtx& node, NodeId src, Weight d,
               const std::vector<REntry>& r_entries) {
    auto& st = state_[static_cast<std::size_t>(node.id())];
    // Priority = current round: under the random-delay schedule this is
    // ~ delta_src + d, so waves stay roughly aligned (and it is knowledge
    // the node actually has).
    const auto priority = static_cast<std::int64_t>(node.round());
    for (const graph::Arc& a : g_.out(node.id())) {
      const Weight tick = params_.weighted_ticks ? a.w : 1;
      const Weight nd = d + tick;
      if (nd > params_.h) continue;
      if (!in_neighborhood(a.to, nd, r_entries)) continue;
      bump_window(node, st);
      if (params_.enable_overflow_handling && st.window_count > threshold_) {
        st.z = true;
        return;
      }
      ++st.window_count;
      if (params_.weighted_ticks && tick > 1) {
        const std::uint64_t when =
            node.round() + static_cast<std::uint64_t>(tick - 1);
        outbox_[static_cast<std::size_t>(node.id())].push(
            PendingSend{when, a.to, src, nd, priority});
        node.wake_at(when);
      } else {
        node.send(a.to, make_message(src, nd, r_entries), priority);
      }
    }
  }

  Message make_message(NodeId src, Weight d,
                       const std::vector<REntry>& r_entries) const {
    Message msg{pack_hdr(src, d)};
    msg.reserve(1 + static_cast<std::uint32_t>(r_entries.size()));
    for (const REntry& e : r_entries) msg.push(pack_hdr(e.t, e.d));
    return msg;
  }

  void flush_outbox(NodeCtx& node) {
    if (outbox_.empty()) return;
    auto& box = outbox_[static_cast<std::size_t>(node.id())];
    while (!box.empty() && box.top().send_round <= node.round()) {
      const PendingSend& p = box.top();
      const auto cache =
          state_[static_cast<std::size_t>(node.id())].r_cache.find(p.src);
      if (cache != state_[static_cast<std::size_t>(node.id())].r_cache.end()) {
        node.send(p.neighbor, make_message(p.src, p.dist, cache->second),
                  p.priority);
      }
      box.pop();
    }
  }

  congest::Network& net_;
  const RestrictedBfsParams& params_;
  const graph::Graph& g_;
  int n_;
  int s_count_;
  int beta_ = 1;
  int window_ = 1;
  int threshold_ = 1;
  std::unordered_map<NodeId, int> sample_index_;
  std::vector<std::vector<int>> groups_;
  std::vector<NodeState> state_;
  std::vector<std::priority_queue<PendingSend, std::vector<PendingSend>, PendingOrder>>
      outbox_;
  RestrictedBfsResult result_;
};

}  // namespace

RestrictedBfsResult restricted_bfs_short_cycles(congest::Network& net,
                                                const RestrictedBfsParams& params) {
  MWC_CHECK(params.h >= 1 && params.rho >= 1);
  const int n = net.n();
  const int s_count = static_cast<int>(params.samples.size());
  MWC_CHECK(static_cast<int>(params.dist_to_s.size()) == n * s_count);
  MWC_CHECK(static_cast<int>(params.dist_from_s.size()) == n * s_count);
  MWC_CHECK(static_cast<int>(params.s_pair.size()) == s_count * s_count);

  RunStats total{};
  // Line 11: one-hop exchange of the (d(v,s), d(s,v)) vectors, 2|S| words
  // per link direction. Contents equal the rows of dist_to_s/dist_from_s,
  // which the membership tests then read (DESIGN.md simulation-scale note).
  {
    congest::PhaseSpan span(net, "S-distance exchange");
    RunStats s;
    congest::neighbor_exchange(
        net,
        [&](NodeId v, NodeId) {
          std::vector<Word> words;
          words.reserve(2 * static_cast<std::size_t>(s_count));
          for (int i = 0; i < s_count; ++i) {
            const Weight to = params.dist_to_s[static_cast<std::size_t>(v) *
                                                   static_cast<std::size_t>(s_count) +
                                               static_cast<std::size_t>(i)];
            const Weight from = params.dist_from_s[static_cast<std::size_t>(v) *
                                                       static_cast<std::size_t>(s_count) +
                                                   static_cast<std::size_t>(i)];
            words.push_back(pack_hdr(static_cast<NodeId>(2 * i),
                                     std::min(to, (Weight{1} << 40) - 1)));
            words.push_back(pack_hdr(static_cast<NodeId>(2 * i + 1),
                                     std::min(from, (Weight{1} << 40) - 1)));
          }
          return words;
        },
        &s);
    total.rounds += s.rounds;
    total.messages += s.messages;
    total.words += s.words;
    total.max_queue_words = std::max(total.max_queue_words, s.max_queue_words);
  }

  RestrictedBfsProtocol proto(net, params);
  congest::PhaseSpan bfs_span(net, "restricted BFS");
  RunStats bfs_stats = run_protocol(net, proto);
  bfs_span.close();
  add_stats(total, bfs_stats);
  RestrictedBfsResult result = proto.finish(net, total);
  result.restricted_peak_queue = bfs_stats.max_queue_words;
  return result;
}

}  // namespace mwc::cycle
