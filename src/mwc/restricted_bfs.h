// Algorithm 3: approximate short-cycle subroutine via BFS from every vertex
// restricted to the implicitly-computed neighborhood P(v) (Section 3.1).
//
// Inputs (computed by Algorithm 2): the sampled set S, exact distances
// d(v,s) / d(s,v) for every v and s in S, and all pairwise d(s,t). Each
// vertex v locally builds R(v) (<= log n sampled vertices chosen greedily
// from a random partition S_1..S_beta, lines 3-8) which defines
//
//   P(v) = { y | for all t in R(v): d(y,t) + 2 d(v,y) <= d(t,y) + 2 d(v,t) }
//
// (Definition 3.1; by Fact 1 - Lemma 5.1 of [13] - cycles through vertices
// outside P(v) are 2-covered by cycles through R(v) which Algorithm 2
// already computed). The BFS from v is restricted to P(v): a node forwards
// the wave for source v to neighbor x only if x passes the membership test,
// evaluated from x's distance vectors (exchanged one hop in line 11) and
// Q(v) = (R(v), {d(v,t)}) carried in the BFS message (1 + |R(v)| words).
//
// Scheduling: every source is delayed by a uniform offset delta_v in
// [1, rho] (random scheduling [24, 36]); message priority delta_v + d keeps
// waves roughly aligned. A node that has to handle more than
// Theta(log n) BFS messages within a window of rounds is a phase-overflow
// vertex: it sets Z(v) = 1 and stops participating (lines 19, 21). After the
// restricted BFS, an unrestricted h-hop BFS from the overflow set Z fills in
// the cycles through Z exactly (line 24, O(|Z| + h) rounds; |Z| <=
// O~(n^(4/5)) by Lemma 3.3).
//
// Output: per-vertex mu (2-approximation of the minimum weight of short
// cycles through that vertex that avoid S), ready for Algorithm 2's final
// convergecast.
#pragma once

#include <vector>

#include "congest/network.h"
#include "mwc/result.h"

namespace mwc::cycle {

struct RestrictedBfsParams {
  std::vector<graph::NodeId> samples;  // S
  // Exact distances (row v is node v's local knowledge):
  //   dist_to_s[v * |S| + i]   = d(v, S[i])
  //   dist_from_s[v * |S| + i] = d(S[i], v)
  // s_pair[i * |S| + j] = d(S[i], S[j]) - broadcast to all nodes by Alg 2.
  std::vector<graph::Weight> dist_to_s;
  std::vector<graph::Weight> dist_from_s;
  std::vector<graph::Weight> s_pair;

  graph::Weight h = 0;    // tick budget for short cycles (n^(3/5))
  graph::Weight rho = 0;  // random-delay range (n^(4/5))

  // Overflow detection: a node handling more than
  // ceil(overflow_threshold_factor * log2 n) messages within a window of
  // `overflow_window` rounds trips Z. window 0 = auto.
  int overflow_window = 0;
  double overflow_threshold_factor = 4.0;
  bool enable_overflow_handling = true;  // off = ablation A1

  // Section 5.2 stretched/scaled mode.
  bool weighted_ticks = false;
  const graph::Graph* graph_override = nullptr;
  // Membership tests auto-pass anchors t with d(v,t) > pass_threshold: when
  // the S-distances are tick-capped (Section 5.2), a far anchor's test is
  // dominated by 2 d(v,t) on the right-hand side, so including y is always
  // correct for cycle vertices (over-inclusion costs congestion, never
  // correctness). Leave at kInfWeight for exact distance inputs, where only
  // genuinely unreachable anchors auto-pass.
  graph::Weight pass_threshold = graph::kInfWeight;
};

struct RestrictedBfsResult {
  std::vector<graph::Weight> mu;  // per-vertex candidate (ticks)
  // Witness for the globally best candidate found by this subroutine (empty
  // if reconstruction failed): the cycle vertices in traversal order.
  std::vector<graph::NodeId> witness;
  graph::Weight witness_value = graph::kInfWeight;
  congest::RunStats stats;
  int overflow_count = 0;  // |Z|
  std::uint64_t restricted_messages = 0;
  // Peak link backlog during the restricted-BFS phase alone (the line-11
  // exchange and line-24 BFS excluded) - the quantity the random-delay
  // scheduling controls.
  std::uint64_t restricted_peak_queue = 0;
};

RestrictedBfsResult restricted_bfs_short_cycles(congest::Network& net,
                                                const RestrictedBfsParams& params);

}  // namespace mwc::cycle
