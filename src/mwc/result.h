// Common result type for the MWC algorithms.
#pragma once

#include <algorithm>
#include <vector>

#include "congest/protocol.h"
#include "graph/graph.h"

namespace mwc::cycle {

struct MwcResult {
  // Weight of the (approximate) minimum weight cycle; kInfWeight if the
  // algorithm found no cycle. Every node knows this value after the final
  // convergecast; soundness invariant: `value` is always the weight of an
  // actual simple cycle of the input graph (never an underestimate).
  graph::Weight value = graph::kInfWeight;
  congest::RunStats stats;

  // The cycle itself, in traversal order (closed implicitly: the last
  // vertex connects back to the first). Populated by algorithms that track
  // enough parent pointers to reconstruct it - the paper's "construct the
  // cycle by storing the next vertex on the cycle at each vertex". Exact
  // algorithms produce a witness of weight exactly `value`; approximation
  // algorithms may produce one of weight <= value (the splice around a
  // shared tree prefix can only shorten the cycle), or none at all when the
  // needed parent chains were evicted or only the skeleton-based long-cycle
  // branch (which has no usable parents) found the winner. Coverage:
  // exact_mwc always; girth_approx/girth_prt usually; directed_mwc_2approx
  // when the restricted-BFS branch wins; undirected_weighted_mwc for both
  // branches; directed_weighted_mwc never (documented limitation).
  std::vector<graph::NodeId> witness;

  // Worst engine outcome among the protocol runs behind this result.
  // kCompleted normally; kRecovered when every crash-stopped node was
  // revived mid-run; exact_mwc's best-so-far salvage records
  // kRoundLimitExceeded / kCrashed here when a run aborted but a candidate
  // value was still extracted (the value is then an upper bound built from
  // genuine partial shortest paths, not the proven minimum).
  congest::RunOutcome worst_outcome = congest::RunOutcome::kCompleted;

  // Diagnostics (not part of the distributed output).
  graph::Weight long_cycle_value = graph::kInfWeight;
  graph::Weight short_cycle_value = graph::kInfWeight;
  int sample_count = 0;     // |S|
  int overflow_count = 0;   // |Z| (Algorithm 3)
  // Peak link backlog of the restricted-BFS phase (directed algorithms).
  std::uint64_t restricted_peak_queue = 0;
};

inline void add_stats(congest::RunStats& acc, const congest::RunStats& s) {
  acc.rounds += s.rounds;
  acc.messages += s.messages;
  acc.words += s.words;
  acc.max_queue_words = std::max(acc.max_queue_words, s.max_queue_words);
  acc.dropped_messages += s.dropped_messages;
  acc.dropped_words += s.dropped_words;
  acc.retransmitted_words += s.retransmitted_words;
  acc.stalled_rounds += s.stalled_rounds;
  acc.corrupted_words += s.corrupted_words;
  acc.checksum_rejects += s.checksum_rejects;
  acc.dup_messages += s.dup_messages;
  acc.dup_words += s.dup_words;
  acc.crashes += s.crashes;
  acc.recoveries += s.recoveries;
  acc.dead_links += s.dead_links;
}

// True when the accumulated fault ledger shows interference the transport
// could not mask: lost node state (crash-stops, even if later recovered -
// the node's volatile algorithm state is gone), links abandoned by the ARQ
// layer, or raw loss/corruption on a network without reliable_transport.
// Masked faults (drops, corruption, duplicates, and stalls under the ARQ
// layer - the receiver's per-link sequence numbers discard replayed frames)
// do not
// count: they cost rounds, never correctness.
inline bool stats_interference(const congest::RunStats& s,
                               bool reliable_transport) {
  if (s.crashes > 0 || s.dead_links > 0) return true;
  if (!reliable_transport &&
      (s.dropped_messages > 0 || s.corrupted_words > 0 ||
       s.dup_messages > 0)) {
    return true;
  }
  return false;
}

// Keeps the more severe of two run outcomes (completed < recovered <
// round-limit < budget-exhausted < cancelled < crashed). Budget stops and
// cancellation outrank the round limit (they are solve-wide verdicts, not
// per-run safety valves) but rank below crashed: a crash means node state
// was lost, a governed stop only that the solve ended early.
inline void note_outcome(congest::RunOutcome& worst, congest::RunOutcome o) {
  auto rank = [](congest::RunOutcome x) {
    switch (x) {
      case congest::RunOutcome::kCompleted: return 0;
      case congest::RunOutcome::kRecovered: return 1;
      case congest::RunOutcome::kRoundLimitExceeded: return 2;
      case congest::RunOutcome::kBudgetExhausted: return 3;
      case congest::RunOutcome::kCancelled: return 4;
      case congest::RunOutcome::kCrashed: return 5;
    }
    return 0;
  };
  if (rank(o) > rank(worst)) worst = o;
}

}  // namespace mwc::cycle
