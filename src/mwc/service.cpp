#include "mwc/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <exception>
#include <set>
#include <thread>

#include "congest/checkpoint.h"
#include "support/check.h"
#include "support/json.h"

namespace mwc::service {

const char* to_string(Admission a) {
  switch (a) {
    case Admission::kAdmitted: return "ok";
    case Admission::kRejectedOverload: return "rejected_overload";
    case Admission::kRejectedInvalid: return "rejected_invalid";
  }
  return "unknown";
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_weight(std::string& out, graph::Weight w) {
  if (w == graph::kInfWeight) {
    out += "null";
  } else {
    out += std::to_string(w);
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  out += buf;
}

// --- request-line parsing helpers -------------------------------------

using support::JsonValue;

// Exact unsigned integer from the parser's raw text (the double lane loses
// precision past 2^53 and accepts fractions).
bool json_u64(const JsonValue& v, std::uint64_t& out) {
  if (!v.is_number() || v.raw.empty()) return false;
  for (const char c : v.raw) {
    if (c < '0' || c > '9') return false;  // no sign, fraction, exponent
  }
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(v.raw.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

bool json_i64(const JsonValue& v, std::int64_t& out) {
  if (!v.is_number() || v.raw.empty()) return false;
  std::size_t i = v.raw[0] == '-' ? 1 : 0;
  if (i >= v.raw.size()) return false;
  for (; i < v.raw.size(); ++i) {
    if (v.raw[i] < '0' || v.raw[i] > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  out = std::strtoll(v.raw.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

bool set_error(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

bool known_keys(const JsonValue& obj, std::initializer_list<const char*> keys,
                const char* where, std::string* error) {
  for (const auto& [k, unused] : obj.members) {
    bool ok = false;
    for (const char* allowed : keys) {
      if (k == allowed) { ok = true; break; }
    }
    if (!ok) {
      return set_error(error, std::string("unknown ") + where + " member \"" +
                                  k + "\"");
    }
  }
  return true;
}

bool parse_prob(const JsonValue& obj, const char* key, double& out,
                std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_number() || v->number < 0.0 || v->number >= 1.0) {
    return set_error(error, std::string(key) + " must be in [0, 1)");
  }
  out = v->number;
  return true;
}

bool parse_node_round_list(const JsonValue& obj, const char* key, int n,
                           std::vector<std::pair<graph::NodeId, std::uint64_t>>& out,
                           std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_array()) return set_error(error, std::string(key) + " must be an array");
  for (const JsonValue& item : v->items) {
    std::int64_t node = -1;
    std::uint64_t round = 0;
    if (!item.is_array() || item.items.size() != 2 ||
        !json_i64(item.items[0], node) || !json_u64(item.items[1], round)) {
      return set_error(error, std::string(key) + " entries must be [node, round]");
    }
    if (node < 0 || node >= n) {
      return set_error(error, std::string(key) + " names node " +
                                  std::to_string(node) + " outside [0, " +
                                  std::to_string(n) + ")");
    }
    out.emplace_back(static_cast<graph::NodeId>(node), round);
  }
  return true;
}

bool parse_graph(const JsonValue& v, int max_nodes, graph::Graph& out,
                 std::string* error) {
  if (!v.is_object()) return set_error(error, "graph must be an object");
  if (!known_keys(v, {"directed", "n", "edges"}, "graph", error)) return false;
  bool directed = false;
  if (const JsonValue* d = v.find("directed"); d != nullptr) {
    if (d->kind != JsonValue::Kind::kBool) {
      return set_error(error, "graph.directed must be a boolean");
    }
    directed = d->boolean;
  }
  const JsonValue* nv = v.find("n");
  std::int64_t n = 0;
  if (nv == nullptr || !json_i64(*nv, n) || n < 1) {
    return set_error(error, "graph.n must be a positive integer");
  }
  if (n > max_nodes) {
    return set_error(error, "graph.n " + std::to_string(n) +
                                " exceeds the service limit of " +
                                std::to_string(max_nodes) + " nodes");
  }
  const JsonValue* ev = v.find("edges");
  if (ev == nullptr || !ev->is_array()) {
    return set_error(error, "graph.edges must be an array");
  }
  std::vector<graph::Edge> edges;
  edges.reserve(ev->items.size());
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (const JsonValue& item : ev->items) {
    std::int64_t u = -1;
    std::int64_t w_node = -1;
    std::int64_t w = 1;
    const bool shape_ok =
        item.is_array() &&
        (item.items.size() == 2 || item.items.size() == 3) &&
        json_i64(item.items[0], u) && json_i64(item.items[1], w_node) &&
        (item.items.size() == 2 || json_i64(item.items[2], w));
    if (!shape_ok) {
      return set_error(error, "graph.edges entries must be [u, v] or [u, v, w]");
    }
    if (u < 0 || u >= n || w_node < 0 || w_node >= n) {
      return set_error(error, "edge endpoint outside [0, n)");
    }
    if (u == w_node) return set_error(error, "self-loop edges are not allowed");
    if (w < 1) return set_error(error, "edge weights must be >= 1");
    // The Graph builders treat duplicate arcs (and, undirected, {v,u}
    // repeats of {u,v}) as caller bugs; a request line is not a caller.
    const auto key = directed ? std::pair{u, w_node}
                              : std::pair{std::min(u, w_node), std::max(u, w_node)};
    if (!seen.insert(key).second) {
      return set_error(error, "duplicate edge in graph.edges");
    }
    edges.push_back(graph::Edge{static_cast<graph::NodeId>(u),
                                static_cast<graph::NodeId>(w_node),
                                static_cast<graph::Weight>(w)});
  }
  out = directed
            ? graph::Graph::directed(static_cast<int>(n), edges)
            : graph::Graph::undirected(static_cast<int>(n), edges);
  return true;
}

bool is_link(const graph::Graph& g, graph::NodeId from, graph::NodeId to) {
  for (const graph::Edge& e : g.edges()) {
    if ((e.from == from && e.to == to) || (e.from == to && e.to == from)) {
      return true;
    }
  }
  return false;
}

bool parse_faults(const JsonValue& v, const graph::Graph& g,
                  congest::FaultPlan& out, std::string* error) {
  if (!v.is_object()) return set_error(error, "faults must be an object");
  if (!known_keys(v, {"drop_prob", "corrupt_prob", "dup_prob", "crashes",
                      "recovers", "stalls"},
                  "faults", error)) {
    return false;
  }
  if (!parse_prob(v, "drop_prob", out.drop_prob, error) ||
      !parse_prob(v, "corrupt_prob", out.corrupt_prob, error) ||
      !parse_prob(v, "dup_prob", out.dup_prob, error)) {
    return false;
  }
  const int n = g.node_count();
  std::vector<std::pair<graph::NodeId, std::uint64_t>> crashes;
  std::vector<std::pair<graph::NodeId, std::uint64_t>> recovers;
  if (!parse_node_round_list(v, "crashes", n, crashes, error) ||
      !parse_node_round_list(v, "recovers", n, recovers, error)) {
    return false;
  }
  for (const auto& [node, round] : crashes) {
    out.crashes.push_back(congest::CrashFault{node, round});
  }
  for (const auto& [node, round] : recovers) {
    bool paired = false;
    for (const auto& [cn, cr] : crashes) {
      if (cn == node && cr < round) { paired = true; break; }
    }
    if (!paired) {
      return set_error(error, "recovers entry for node " +
                                  std::to_string(node) +
                                  " has no earlier crash");
    }
    out.recovers.push_back(congest::RecoverFault{node, round});
  }
  if (const JsonValue* sv = v.find("stalls"); sv != nullptr) {
    if (!sv->is_array()) return set_error(error, "faults.stalls must be an array");
    for (const JsonValue& item : sv->items) {
      std::int64_t from = -1;
      std::int64_t to = -1;
      std::uint64_t first = 0;
      std::uint64_t last = 0;
      if (!item.is_array() || item.items.size() != 4 ||
          !json_i64(item.items[0], from) || !json_i64(item.items[1], to) ||
          !json_u64(item.items[2], first) || !json_u64(item.items[3], last)) {
        return set_error(error,
                         "stalls entries must be [from, to, first, last]");
      }
      if (from < 0 || from >= n || to < 0 || to >= n || first > last ||
          !is_link(g, static_cast<graph::NodeId>(from),
                   static_cast<graph::NodeId>(to))) {
        return set_error(error, "stalls entry names no link of the graph");
      }
      out.stalls.push_back(congest::StallFault{
          static_cast<graph::NodeId>(from), static_cast<graph::NodeId>(to),
          first, last});
    }
  }
  return true;
}

bool parse_budget(const JsonValue& v, congest::Budget& out, std::string* error) {
  if (!v.is_object()) return set_error(error, "budget must be an object");
  if (!known_keys(v, {"max_rounds", "max_words", "max_wall_seconds",
                      "max_rss_bytes"},
                  "budget", error)) {
    return false;
  }
  if (const JsonValue* f = v.find("max_rounds");
      f != nullptr && !json_u64(*f, out.max_rounds)) {
    return set_error(error, "budget.max_rounds must be a non-negative integer");
  }
  if (const JsonValue* f = v.find("max_words");
      f != nullptr && !json_u64(*f, out.max_words)) {
    return set_error(error, "budget.max_words must be a non-negative integer");
  }
  if (const JsonValue* f = v.find("max_rss_bytes");
      f != nullptr && !json_u64(*f, out.max_rss_bytes)) {
    return set_error(error, "budget.max_rss_bytes must be a non-negative integer");
  }
  if (const JsonValue* f = v.find("max_wall_seconds"); f != nullptr) {
    if (!f->is_number() || f->number < 0.0) {
      return set_error(error, "budget.max_wall_seconds must be >= 0");
    }
    out.max_wall_seconds = f->number;
  }
  return true;
}

// --- solve identity ----------------------------------------------------

void digest_plan(congest::CheckpointWriter& w, const congest::FaultPlan& plan) {
  const auto prob_bits = [](double p) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &p, sizeof(bits));
    return bits;
  };
  w.u64(prob_bits(plan.drop_prob));
  w.u64(static_cast<std::uint64_t>(plan.drop_overrides.size()));
  for (const auto& o : plan.drop_overrides) {
    w.i32(o.a);
    w.i32(o.b);
    w.u64(prob_bits(o.prob));
  }
  w.u64(prob_bits(plan.corrupt_prob));
  w.u64(static_cast<std::uint64_t>(plan.corrupt_overrides.size()));
  for (const auto& o : plan.corrupt_overrides) {
    w.i32(o.a);
    w.i32(o.b);
    w.u64(prob_bits(o.prob));
  }
  w.u64(static_cast<std::uint64_t>(plan.corrupt_windows.size()));
  for (const auto& o : plan.corrupt_windows) {
    w.i32(o.from);
    w.i32(o.to);
    w.u64(o.first_round);
    w.u64(o.last_round);
  }
  w.u64(prob_bits(plan.dup_prob));
  w.u64(static_cast<std::uint64_t>(plan.dup_overrides.size()));
  for (const auto& o : plan.dup_overrides) {
    w.i32(o.a);
    w.i32(o.b);
    w.u64(prob_bits(o.prob));
  }
  w.u64(static_cast<std::uint64_t>(plan.stalls.size()));
  for (const auto& o : plan.stalls) {
    w.i32(o.from);
    w.i32(o.to);
    w.u64(o.first_round);
    w.u64(o.last_round);
  }
  w.u64(static_cast<std::uint64_t>(plan.crashes.size()));
  for (const auto& o : plan.crashes) {
    w.i32(o.node);
    w.u64(o.round);
  }
  w.u64(static_cast<std::uint64_t>(plan.recovers.size()));
  for (const auto& o : plan.recovers) {
    w.i32(o.node);
    w.u64(o.round);
  }
}

// Everything besides the graph that determines a deterministic solve's
// outcome. Threads are excluded (bit-identical execution across thread
// counts is an engine invariant); wall/RSS budgets make a request
// uncacheable before this is ever computed.
std::uint64_t solve_identity_digest(const ServiceRequest& rq) {
  cycle::SolveOptions opts;
  opts.mode = rq.mode;
  opts.epsilon = rq.epsilon;
  congest::CheckpointWriter w;
  w.u64(cycle::solve_options_digest(opts));
  w.u64(rq.seed);
  w.u64(rq.max_rounds);
  w.u64(rq.budget.max_rounds);
  w.u64(rq.budget.max_words);
  digest_plan(w, rq.faults);
  return congest::fnv1a(w.bytes());
}

int status_rank(cycle::SolveStatus s) {
  switch (s) {
    case cycle::SolveStatus::kCertified: return 4;
    case cycle::SolveStatus::kApproxCertified: return 3;
    case cycle::SolveStatus::kDegraded: return 2;
    case cycle::SolveStatus::kFailed: return 1;
  }
  return 0;
}

// Is `a` strictly more useful to the requester than `b`? Primary: the
// certification ladder; tie-break: the tighter anytime bracket.
bool better_response(const ServiceResponse& a, const ServiceResponse& b) {
  const int ra = status_rank(a.status);
  const int rb = status_rank(b.status);
  if (ra != rb) return ra > rb;
  if (a.upper_bound != b.upper_bound) return a.upper_bound < b.upper_bound;
  return a.lower_bound > b.lower_bound;
}

void fill_from_report(const cycle::MwcReport& report, ServiceResponse& out) {
  out.status = report.status;
  out.status_reason = report.status_reason;
  out.algorithm = report.algorithm;
  out.guarantee = report.guarantee;
  out.value = report.result.value;
  out.lower_bound = report.lower_bound;
  out.upper_bound = report.upper_bound;
  out.stop = report.stop.reason;
  out.witness = report.result.witness;
  out.rounds = report.run.stats.rounds;
  out.words = report.run.stats.words;
  out.ledger = report.run.stats;
}

}  // namespace

bool parse_request(const std::string& line, ServiceRequest& out,
                   std::string* error, int max_nodes) {
  if (max_nodes <= 0) max_nodes = ServiceConfig{}.max_nodes;
  support::JsonParseOptions strict;
  strict.reject_duplicate_keys = true;
  strict.validate_utf8 = true;
  JsonValue root;
  std::string json_error;
  if (!support::parse_json(line, strict, root, &json_error)) {
    return set_error(error, "bad JSON: " + json_error);
  }
  if (!root.is_object()) return set_error(error, "request must be an object");
  if (!known_keys(root,
                  {"id", "graph", "mode", "epsilon", "seed", "threads",
                   "max_rounds", "budget", "faults"},
                  "request", error)) {
    return false;
  }
  out = ServiceRequest{};

  const JsonValue* idv = root.find("id");
  if (idv == nullptr || !idv->is_string() || idv->str.empty() ||
      idv->str.size() > 128) {
    return set_error(error, "id must be a non-empty string of <= 128 bytes");
  }
  out.id = idv->str;

  const JsonValue* gv = root.find("graph");
  if (gv == nullptr) return set_error(error, "graph is required");
  if (!parse_graph(*gv, max_nodes, out.graph, error)) return false;

  if (const JsonValue* mv = root.find("mode"); mv != nullptr) {
    if (!mv->is_string()) return set_error(error, "mode must be a string");
    if (mv->str == "auto") {
      out.mode = cycle::SolveMode::kAuto;
    } else if (mv->str == "approx") {
      out.mode = cycle::SolveMode::kApprox;
    } else if (mv->str == "exact") {
      out.mode = cycle::SolveMode::kExact;
    } else {
      return set_error(error, "mode must be auto, approx, or exact");
    }
  }
  if (const JsonValue* ev = root.find("epsilon"); ev != nullptr) {
    if (!ev->is_number() || ev->number <= 0.0 || ev->number > 8.0) {
      return set_error(error, "epsilon must be in (0, 8]");
    }
    out.epsilon = ev->number;
  }
  if (const JsonValue* sv = root.find("seed"); sv != nullptr) {
    if (!json_u64(*sv, out.seed)) {
      return set_error(error, "seed must be a non-negative integer");
    }
  }
  if (const JsonValue* tv = root.find("threads"); tv != nullptr) {
    std::int64_t threads = 0;
    if (!json_i64(*tv, threads) || threads < 1 || threads > 256) {
      return set_error(error, "threads must be in [1, 256]");
    }
    out.threads = static_cast<int>(threads);
  }
  if (const JsonValue* rv = root.find("max_rounds"); rv != nullptr) {
    if (!json_u64(*rv, out.max_rounds)) {
      return set_error(error, "max_rounds must be a non-negative integer");
    }
  }
  if (const JsonValue* bv = root.find("budget"); bv != nullptr) {
    if (!parse_budget(*bv, out.budget, error)) return false;
  }
  if (const JsonValue* fv = root.find("faults"); fv != nullptr) {
    if (!parse_faults(*fv, out.graph, out.faults, error)) return false;
  }
  return true;
}

std::string ServiceResponse::to_jsonl(bool annotate_cache) const {
  std::string out;
  out.reserve(256);
  out += "{\"id\":\"";
  append_escaped(out, id);
  out += "\",\"outcome\":\"";
  out += to_string(admission);
  out += '"';
  if (admission != Admission::kAdmitted) {
    out += ",\"error\":\"";
    append_escaped(out, error);
    out += "\"}";
    return out;
  }
  out += ",\"status\":\"";
  out += cycle::to_string(status);
  out += "\",\"reason\":\"";
  append_escaped(out, status_reason);
  out += "\",\"algorithm\":\"";
  append_escaped(out, algorithm);
  out += "\",\"guarantee\":";
  append_double(out, guarantee);
  out += ",\"value\":";
  append_weight(out, value);
  out += ",\"lower_bound\":";
  append_weight(out, lower_bound);
  out += ",\"upper_bound\":";
  append_weight(out, upper_bound);
  out += ",\"stop\":\"";
  out += congest::to_string(stop);
  out += "\",\"rounds\":";
  out += std::to_string(rounds);
  out += ",\"words\":";
  out += std::to_string(words);
  if (!witness.empty()) {
    out += ",\"witness\":[";
    for (std::size_t i = 0; i < witness.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(witness[i]);
    }
    out += ']';
  }
  if (emit_ledger) {
    out += ",\"faults\":{\"dropped_messages\":";
    out += std::to_string(ledger.dropped_messages);
    out += ",\"corrupted_words\":";
    out += std::to_string(ledger.corrupted_words);
    out += ",\"dup_messages\":";
    out += std::to_string(ledger.dup_messages);
    out += ",\"retransmitted_words\":";
    out += std::to_string(ledger.retransmitted_words);
    out += ",\"checksum_rejects\":";
    out += std::to_string(ledger.checksum_rejects);
    out += ",\"crashes\":";
    out += std::to_string(ledger.crashes);
    out += ",\"recoveries\":";
    out += std::to_string(ledger.recoveries);
    out += ",\"dead_links\":";
    out += std::to_string(ledger.dead_links);
    out += '}';
  }
  out += ",\"attempts\":[";
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const AttemptRecord& a = attempts[i];
    if (i != 0) out += ',';
    out += "{\"seed\":";
    out += std::to_string(a.seed);
    out += ",\"mode\":\"";
    out += cycle::to_string(a.mode);
    out += "\",\"status\":\"";
    out += cycle::to_string(a.status);
    out += "\",\"stop\":\"";
    out += congest::to_string(a.stop);
    out += "\"}";
  }
  out += ']';
  if (annotate_cache) {
    out += ",\"cache\":\"";
    out += cache_hit ? "hit" : "miss";
    out += '"';
  }
  out += '}';
  return out;
}

// --- ArtifactCache -----------------------------------------------------

bool ArtifactCache::lookup(std::uint64_t graph_fp, std::uint64_t solve_digest,
                           ServiceResponse& out) {
  if (!cfg_.enabled || cfg_.max_entries == 0) return false;
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = map_.find(Key{graph_fp, solve_digest});
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.second);
  out = it->second.first;
  return true;
}

void ArtifactCache::insert(std::uint64_t graph_fp, std::uint64_t solve_digest,
                           const ServiceResponse& payload) {
  if (!cfg_.enabled || cfg_.max_entries == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  const Key key{graph_fp, solve_digest};
  if (map_.count(key) != 0) return;  // concurrent cold solves of one identity
  lru_.push_front(key);
  map_.emplace(key, std::make_pair(payload, lru_.begin()));
  while (map_.size() > cfg_.max_entries) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

std::uint64_t ArtifactCache::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}

std::uint64_t ArtifactCache::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}

// --- SolveService ------------------------------------------------------

namespace {

// Holds process-wide throwing-check mode while any service solve is in
// flight, so a request whose fault plan breaks a solver invariant (e.g. a
// crash-stop that disconnects the communication topology) surfaces as
// CheckError -> a typed failed attempt, never a process abort. Refcounted
// rather than per-solve ScopedChecksThrow because overlapping worker
// scopes would race the restore and drop another worker's in-flight solve
// back into abort mode.
class ChecksThrowLease {
 public:
  ChecksThrowLease() {
    std::lock_guard<std::mutex> lk(mu());
    if (count()++ == 0) {
      saved() = support::checks_throw_flag().load();
      support::set_checks_throw(true);
    }
  }
  ~ChecksThrowLease() {
    std::lock_guard<std::mutex> lk(mu());
    if (--count() == 0) support::set_checks_throw(saved());
  }
  ChecksThrowLease(const ChecksThrowLease&) = delete;
  ChecksThrowLease& operator=(const ChecksThrowLease&) = delete;

 private:
  static std::mutex& mu() {
    static std::mutex m;
    return m;
  }
  static int& count() {
    static int c = 0;
    return c;
  }
  static bool& saved() {
    static bool s = false;
    return s;
  }
};

}  // namespace

SolveService::SolveService(ServiceConfig cfg)
    : cfg_(std::move(cfg)), cache_(cfg_.cache) {
  if (cfg_.workers < 1) cfg_.workers = 1;
}

ServiceResponse SolveService::execute(const ServiceRequest& rq) {
  ServiceResponse resp;
  resp.id = rq.id;
  resp.emit_ledger = rq.faults.any();

  // Wall-clock and RSS budgets make the outcome non-deterministic: such
  // requests are solved cold every time (the cache only ever returns
  // byte-identical answers).
  const bool cacheable = cfg_.cache.enabled &&
                         rq.budget.max_wall_seconds <= 0.0 &&
                         rq.budget.max_rss_bytes == 0;
  const std::uint64_t graph_fp = congest::graph_fingerprint(rq.graph);
  const std::uint64_t digest = cacheable ? solve_identity_digest(rq) : 0;
  if (cacheable && cache_.lookup(graph_fp, digest, resp)) {
    resp.id = rq.id;  // the payload is id-agnostic; relabel for this caller
    resp.cache_hit = true;
    std::lock_guard<std::mutex> lk(stats_mu_);
    if (resp.stop == congest::StopReason::kCancelled) {
      ++stats_.cancelled;
    } else if (resp.certified()) {
      ++stats_.certified;
    } else if (resp.status == cycle::SolveStatus::kDegraded) {
      ++stats_.degraded;
    } else {
      ++stats_.failed;
    }
    return resp;
  }

  const LadderConfig& ladder = cfg_.ladder;
  const int max_attempts = 1 + std::max(0, ladder.max_retries);
  ServiceResponse best;
  bool have_best = false;
  std::uint64_t retries = 0;
  std::uint64_t fallbacks = 0;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0 && ladder.backoff_base_ms > 0.0) {
      double ms = ladder.backoff_base_ms;
      for (int i = 1; i < attempt; ++i) ms *= ladder.backoff_multiplier;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    }
    const std::uint64_t seed =
        rq.seed + static_cast<std::uint64_t>(attempt) * ladder.seed_rotation;
    cycle::SolveMode mode = rq.mode;
    const bool last_rung = attempt == max_attempts - 1;
    if (last_rung && attempt > 0 && ladder.fallback_to_approx &&
        rq.mode != cycle::SolveMode::kApprox) {
      mode = cycle::SolveMode::kApprox;
      ++fallbacks;
    }
    if (attempt > 0) ++retries;

    ServiceResponse candidate;
    candidate.id = rq.id;
    candidate.emit_ledger = resp.emit_ledger;
    try {
      ChecksThrowLease checks_as_errors;
      congest::NetworkConfig ncfg;
      ncfg.threads = std::max(1, rq.threads);
      ncfg.clamp_threads = false;
      if (rq.max_rounds != 0) ncfg.max_rounds_per_run = rq.max_rounds;
      ncfg.faults = rq.faults;
      // Any fault plan runs over the ARQ transport: probabilistic link
      // faults need it to stay exact, and crash/recover schedules need it
      // to resync survivors (raw loss can break solver invariants, which
      // the engine would refuse with a CHECK rather than mis-certify).
      ncfg.reliable_transport = rq.faults.any();
      congest::Network net(rq.graph, seed, ncfg);

      congest::Governor governor(rq.budget);
      congest::CancelToken token;
      token.link_parent(&cancel_);
      governor.set_cancel_token(&token);

      cycle::SolveOptions opts;
      opts.mode = mode;
      opts.epsilon = rq.epsilon;
      opts.governor = &governor;
      const cycle::MwcReport report = cycle::solve(net, opts);
      fill_from_report(report, candidate);
    } catch (const std::exception& e) {
      candidate.status = cycle::SolveStatus::kFailed;
      candidate.status_reason = std::string("solve threw: ") + e.what();
    }
    resp.attempts.push_back(AttemptRecord{seed, mode, candidate.status,
                                          candidate.stop});
    if (!have_best || better_response(candidate, best)) {
      best = candidate;
      have_best = true;
    }
    if (candidate.certified()) break;
    if (candidate.stop == congest::StopReason::kCancelled) break;
    const bool deterministic_stop =
        candidate.stop == congest::StopReason::kRoundBudget ||
        candidate.stop == congest::StopReason::kWordBudget ||
        candidate.stop == congest::StopReason::kNoProgress;
    if (deterministic_stop && !ladder.retry_on_budget_stop) break;
  }

  const std::vector<AttemptRecord> attempts = std::move(resp.attempts);
  const std::string id = std::move(resp.id);
  const bool emit_ledger = resp.emit_ledger;
  resp = best;
  resp.id = id;
  resp.emit_ledger = emit_ledger;
  resp.attempts = attempts;

  // A cancellation outcome reflects the signal's arrival time, not the
  // request: never cache it.
  if (cacheable && resp.stop != congest::StopReason::kCancelled) {
    ServiceResponse payload = resp;
    payload.id.clear();
    cache_.insert(graph_fp, digest, payload);
  }

  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_.retries += retries;
  stats_.fallbacks += fallbacks;
  if (resp.stop == congest::StopReason::kCancelled) {
    ++stats_.cancelled;
  } else if (resp.certified()) {
    ++stats_.certified;
  } else if (resp.status == cycle::SolveStatus::kDegraded) {
    ++stats_.degraded;
  } else {
    ++stats_.failed;
  }
  return resp;
}

std::vector<ServiceResponse> SolveService::run_batch(
    const std::vector<ServiceRequest>& requests) {
  std::vector<ServiceResponse> out(requests.size());
  // Admission control runs over the burst in submission order - a pure
  // function of the request sequence, whatever the worker count does later.
  std::vector<std::size_t> admitted;
  admitted.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (cfg_.shed_on_overload && admitted.size() >= cfg_.queue_capacity) {
      out[i].id = requests[i].id;
      out[i].admission = Admission::kRejectedOverload;
      out[i].error = "admission queue full (capacity " +
                     std::to_string(cfg_.queue_capacity) + ")";
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.shed;
      continue;
    }
    admitted.push_back(i);
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.admitted;
  }

  const int workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, cfg_.workers)), admitted.size()));
  std::atomic<std::size_t> next{0};
  const auto drain = [&] {
    while (true) {
      const std::size_t k = next.fetch_add(1);
      if (k >= admitted.size()) break;
      const std::size_t i = admitted[k];
      out[i] = execute(requests[i]);
    }
  };
  if (workers <= 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(drain);
    for (std::thread& t : pool) t.join();
  }
  return out;
}

SolveService::Stats SolveService::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s = stats_;
  }
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  return s;
}

}  // namespace mwc::service
