// MWC-as-a-service: the long-running solve-service core (ROADMAP item 2).
//
// A SolveService accepts a stream of requests - graph + solve options +
// per-request budget/deadline - and turns each into exactly one typed
// response. The pieces it composes already exist ([PR 5] self-certifying
// reports, [PR 6] Governor budgets/cancellation and anytime bounds); this
// layer adds what a component that survives many concurrent, partially
// failing requests needs:
//
//   * Admission control. A batch is a burst against a bounded queue:
//     requests past the capacity are shed with an explicit
//     `rejected_overload` response - never an abort, never a silent drop.
//     With shedding off (the default), the bound acts as backpressure
//     instead: everything is admitted and workers drain in order.
//
//   * A degradation ladder. On a degraded/failed outcome the request is
//     retried under exponential backoff with a rotated seed (a fresh fault
//     schedule - transient adversaries are dodged, deterministic ones are
//     not), optionally falling back exact->approx on the last rung; when
//     the ladder is exhausted the response still carries the anytime
//     `lower_bound <= mwc <= upper_bound` bracket of the best attempt. The
//     full retry ledger ships with the response.
//
//   * An artifact cache keyed by graph fingerprint. Each cached entry is
//     the complete deterministic solve outcome for one (graph, options,
//     seed, budget, fault-plan) identity - the BFS trees, skeleton
//     distances, and sampled source sets an identical re-request would
//     recompute are amortized at that granularity. Because every solve is
//     a pure function of that identity, a cache hit re-serializes to the
//     byte-identical response a cold solve produces (asserted in
//     tests/service_chaos_test.cpp); entries whose outcome depends on wall
//     clock or RSS (deadline / memory budgets) are never cached.
//
//   * Cancellation fan-out. The service owns one CancelToken; every
//     in-flight request's Governor watches a child token linked to it
//     (congest/governor.h). bind_signals() routes SIGINT/SIGTERM into the
//     service token, so one signal drains every in-flight and queued
//     request into typed `cancelled` responses; take_signal() acknowledges
//     it afterwards, making the service re-entrant for the next batch.
//
// Determinism: for a deterministic request set (no wall/RSS budgets, no
// overload shedding in flight - the burst-shed decision is itself
// deterministic) the response vector is a pure function of the requests:
// byte-identical across ServiceConfig::workers and across engine thread
// counts. Workers only move wall clock, exactly like engine threads.
//
// Front ends: `mwc_cli batch` (JSONL file in, one JSONL response per line
// out, worker pool) and `mwc_cli serve` (stdin/stdout streaming). Schema
// and exit codes: docs/service.md.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "congest/governor.h"
#include "congest/network.h"
#include "graph/graph.h"
#include "mwc/api.h"

namespace mwc::service {

// Retry/backoff/fallback policy - the degradation ladder.
struct LadderConfig {
  // Re-solve attempts after the first (0 disables retries).
  int max_retries = 2;
  // Added to the request seed once per attempt: retry i runs under
  // seed + i * seed_rotation (mod 2^64), i.e. a fresh fault schedule.
  std::uint64_t seed_rotation = 0x9e3779b97f4a7c15ull;
  // Last-rung fallback: when the request asked for exact (or auto) and
  // every earlier attempt degraded/failed, the final attempt runs approx.
  bool fallback_to_approx = true;
  // Retry after a deterministic budget stop (rounds/words)? Off by
  // default: the same budget yields the same stop, so the ladder goes
  // straight to the anytime bracket. Wall-clock stops always retry (a
  // slow machine moment is transient); cancellation never does.
  bool retry_on_budget_stop = false;
  // Exponential backoff between attempts: base * multiplier^(attempt-1)
  // milliseconds of wall-clock sleep. 0 disables sleeping (tests, and any
  // caller that cares about latency over politeness). Backoff never
  // affects response bytes - it only spends time.
  double backoff_base_ms = 0.0;
  double backoff_multiplier = 2.0;
};

struct CacheConfig {
  bool enabled = true;
  // Cached solve outcomes across all graphs (LRU eviction).
  std::size_t max_entries = 256;
};

struct ServiceConfig {
  // Concurrent solve workers for run_batch (responses stay in request
  // order; workers are wall-clock only).
  int workers = 1;
  // Admission-queue bound. With shed_on_overload, batch requests past this
  // capacity are rejected_overload (the batch arrives as one burst against
  // a bounded queue - a deterministic decision); without it the bound is
  // backpressure only and every request is admitted.
  std::size_t queue_capacity = 1024;
  bool shed_on_overload = false;
  // Reject inline graphs above this node count at parse time.
  int max_nodes = 65536;
  LadderConfig ladder;
  CacheConfig cache;
  // Debug: serialize a "cache" member ("hit"/"miss") into responses. Off
  // by default - with concurrent workers the hit/miss split depends on
  // completion order, and response bytes must not.
  bool annotate_cache = false;
};

// One solve request. Built programmatically or parsed from a JSONL line
// (parse_request below; schema in docs/service.md).
struct ServiceRequest {
  std::string id;
  graph::Graph graph;
  cycle::SolveMode mode = cycle::SolveMode::kAuto;
  double epsilon = 0.5;
  std::uint64_t seed = 1;
  int threads = 1;                  // engine threads for this request
  std::uint64_t max_rounds = 0;     // per-run round cap (0 = engine default)
  congest::Budget budget;           // per-attempt budget/deadline
  congest::FaultPlan faults;        // injected adversary (chaos testing)
};

enum class Admission : std::uint8_t {
  kAdmitted,
  kRejectedOverload,  // shed by admission control - never solved
  kRejectedInvalid,   // malformed request - never solved
};

const char* to_string(Admission a);

// One rung of the retry ledger.
struct AttemptRecord {
  std::uint64_t seed = 0;
  cycle::SolveMode mode = cycle::SolveMode::kAuto;
  cycle::SolveStatus status = cycle::SolveStatus::kFailed;
  congest::StopReason stop = congest::StopReason::kNone;
};

// The typed, certified-or-bounded response every admitted request
// terminates with. to_jsonl() is the deterministic wire form.
struct ServiceResponse {
  std::string id;
  Admission admission = Admission::kAdmitted;
  std::string error;  // non-empty iff admission != kAdmitted

  cycle::SolveStatus status = cycle::SolveStatus::kFailed;
  std::string status_reason;
  std::string algorithm;
  double guarantee = 1.0;
  graph::Weight value = graph::kInfWeight;
  graph::Weight lower_bound = 0;
  graph::Weight upper_bound = graph::kInfWeight;
  congest::StopReason stop = congest::StopReason::kNone;
  std::vector<graph::NodeId> witness;
  std::uint64_t rounds = 0;  // winning attempt's engine totals
  std::uint64_t words = 0;
  congest::RunStats ledger;     // winning attempt's fault ledger
  bool emit_ledger = false;     // serialized only for faulted requests
  std::vector<AttemptRecord> attempts;

  bool cache_hit = false;  // never serialized unless annotate_cache

  bool certified() const {
    return status == cycle::SolveStatus::kCertified ||
           status == cycle::SolveStatus::kApproxCertified;
  }
  std::string to_jsonl(bool annotate_cache = false) const;
};

// Parses one JSONL request line (strict JSON: duplicate keys, bad UTF-8,
// truncation, and depth bombs are rejected, not crashed on - see
// support/json.h). Unknown members are errors; so are out-of-range nodes,
// non-positive weights, self-loops, and fault plans naming absent nodes.
// `max_nodes` bounds inline graphs (<= 0 means ServiceConfig's default).
bool parse_request(const std::string& line, ServiceRequest& out,
                   std::string* error, int max_nodes = 0);

// Cached deterministic solve outcomes, keyed by graph fingerprint and the
// request's solve identity. Thread-safe; LRU within the global entry cap.
class ArtifactCache {
 public:
  explicit ArtifactCache(CacheConfig cfg) : cfg_(cfg) {}

  // The payload of a finished request - everything to_jsonl() serializes
  // except the id (a hit re-labels it with the requesting id).
  bool lookup(std::uint64_t graph_fp, std::uint64_t solve_digest,
              ServiceResponse& out);
  void insert(std::uint64_t graph_fp, std::uint64_t solve_digest,
              const ServiceResponse& payload);

  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;
  CacheConfig cfg_;
  mutable std::mutex mu_;
  std::map<Key, std::pair<ServiceResponse, std::list<Key>::iterator>> map_;
  std::list<Key> lru_;  // front = most recent
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class SolveService {
 public:
  // Aggregate counters across the service lifetime (wall-clock order;
  // deterministic for single-worker runs, totals deterministic always).
  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t retries = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t certified = 0;
    std::uint64_t degraded = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
  };

  explicit SolveService(ServiceConfig cfg = {});

  const ServiceConfig& config() const { return cfg_; }

  // Routes SIGINT/SIGTERM into the service token: one signal cancels every
  // in-flight and queued request (typed `cancelled` responses, cooperative
  // drain). Call take_signal() afterwards to serve again.
  void bind_signals() { cancel_.bind_process_signals(); }
  // Trips every in-flight and future request of this service instance.
  void cancel_all(std::string reason) { cancel_.request(std::move(reason)); }
  // Acknowledges a delivered process signal (returns it, 0 if none) so the
  // next batch starts clean. Purely about the process-wide mailbox; a
  // cancel_all() trip is permanent for this instance.
  static int take_signal() { return congest::CancelToken::take_process_signal(); }

  // Executes a whole batch: deterministic admission in submission order,
  // `workers` concurrent solvers, responses returned in request order.
  // Every request yields exactly one response, whatever happens to it.
  std::vector<ServiceResponse> run_batch(
      const std::vector<ServiceRequest>& requests);

  // Executes one admitted request through the full ladder (no admission
  // control; the streaming `serve` front end calls this directly).
  ServiceResponse execute(const ServiceRequest& request);

  Stats stats() const;
  const ArtifactCache& cache() const { return cache_; }

 private:
  ServiceConfig cfg_;
  ArtifactCache cache_;
  congest::CancelToken cancel_;
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace mwc::service
