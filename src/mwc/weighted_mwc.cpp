#include "mwc/weighted_mwc.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "congest/bfs_tree.h"
#include "congest/convergecast.h"
#include "congest/metrics.h"
#include "congest/multi_bfs.h"
#include "congest/neighbor_exchange.h"
#include "graph/transforms.h"
#include "ksssp/skeleton_sssp.h"
#include "mwc/directed_mwc.h"
#include "mwc/girth_approx.h"
#include "mwc/packing.h"
#include "mwc/witness.h"
#include "support/check.h"
#include "support/math_util.h"

namespace mwc::cycle {

using congest::MultiBfs;
using congest::MultiBfsParams;
using congest::RunStats;
using congest::Word;
using graph::kInfWeight;
using graph::kNoNode;
using graph::NodeId;
using graph::Weight;

namespace {

std::vector<NodeId> sample_long_cycle_hitters(congest::Network& net, double c,
                                              int h) {
  support::Rng rng = net.next_run_rng();
  const double p =
      std::min(1.0, c * support::log_n(net.n()) / static_cast<double>(h));
  std::vector<NodeId> samples;
  for (NodeId v = 0; v < net.n(); ++v) {
    if (rng.next_bool(p)) samples.push_back(v);
  }
  if (samples.empty()) {
    samples.push_back(
        static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(net.n()))));
  }
  return samples;
}

// Unscale a tick value from ladder level `level`: a scaled cycle of weight
// `ticks` certifies a real cycle of weight <= floor(ticks * eps * 2^level /
// (2h)) (weights are integral, scaled(e) >= 2 h w(e) / (eps 2^level)).
Weight unscale_ticks(Weight ticks, int h, double eps, int level) {
  const double unscale = eps * std::ldexp(1.0, level) / (2.0 * static_cast<double>(h));
  return static_cast<Weight>(
      std::floor(static_cast<double>(ticks) * unscale + 1e-9));
}

int ladder_levels(const graph::Graph& g, int h, int max_levels) {
  const auto max_cycle_weight = static_cast<std::uint64_t>(h) *
                                static_cast<std::uint64_t>(g.max_weight());
  int levels =
      support::ceil_log2(std::max<std::uint64_t>(2, max_cycle_weight)) + 1;
  if (max_levels > 0) levels = std::min(levels, max_levels);
  return levels;
}

// Short-cycle part shared by both orientations: run the h*-tick-limited
// unweighted approximation over the scaling ladder, unscale, min-combine.
// For the undirected (girth-core) path, the argmin level's witness is kept:
// it is a cycle of the shared topology, so it is a cycle of g, and the
// unscale bound caps its true weight by the unscaled candidate.
Weight short_cycles_via_ladder(congest::Network& net, const graph::Graph& g,
                               int h, double eps, int max_levels, bool directed,
                               RunStats* stats, int* overflow_count,
                               std::vector<NodeId>* witness) {
  const auto h_star = static_cast<Weight>(
      std::ceil((1.0 + 2.0 / eps) * static_cast<double>(h)));
  congest::PhaseSpan ladder_span(net, "scaling ladder");
  Weight best = kInfWeight;
  const int levels = ladder_levels(g, h, max_levels);
  for (int level = 0; level < levels; ++level) {
    graph::Graph scaled = graph::reweighted(g, [&](Weight w) {
      return graph::scaled_weight(w, h, eps, level);
    });
    MwcResult level_result;
    if (directed) {
      DirectedMwcParams dp;
      dp.tick_limit = h_star;
      dp.graph_override = &scaled;
      level_result = directed_mwc_2approx(net, dp);
      if (overflow_count != nullptr) {
        *overflow_count = std::max(*overflow_count, level_result.overflow_count);
      }
    } else {
      level_result = hop_limited_girth_approx(net, scaled, h_star);
    }
    add_stats(*stats, level_result.stats);
    if (level_result.value != kInfWeight) {
      const Weight unscaled = unscale_ticks(level_result.value, h, eps, level);
      if (unscaled < best) {
        best = unscaled;
        if (witness != nullptr) {
          Weight total = 0;
          if (!level_result.witness.empty() &&
              detail::validate_cycle(g, level_result.witness, &total) &&
              total <= unscaled) {
            *witness = std::move(level_result.witness);
          } else {
            witness->clear();
          }
        }
      }
    }
  }
  return best;
}

}  // namespace

MwcResult undirected_weighted_mwc(congest::Network& net,
                                  const WeightedMwcParams& params) {
  const graph::Graph& g = net.problem_graph();
  MWC_CHECK(!g.is_directed());
  MWC_CHECK(params.epsilon > 0);
  const int n = net.n();
  const int h = params.h_override > 0 ? params.h_override
                                      : support::int_pow(n, 2.0 / 3.0);
  const double eps_half = params.epsilon / 2.0;

  MwcResult result;
  RunStats s;

  // --- long cycles: exact multi-source Bellman-Ford from samples ---------
  std::vector<NodeId> samples =
      sample_long_cycle_hitters(net, params.sample_constant, h);
  result.sample_count = static_cast<int>(samples.size());
  congest::PhaseSpan long_span(net, "long cycles");
  MultiBfsParams mb;
  mb.sources = samples;
  mb.mode = congest::DelayMode::kImmediate;
  MultiBfs bf = run_multi_bfs(net, std::move(mb), &s);
  add_stats(result.stats, s);

  // Exchange rows (+ parent flags) and close non-tree edges.
  congest::NeighborExchangeResult ex = congest::neighbor_exchange(
      net,
      [&](NodeId v, NodeId u) {
        std::vector<Word> words;
        for (std::size_t i = 0; i < samples.size(); ++i) {
          const Weight d = bf.dist(v, static_cast<int>(i));
          if (d == kInfWeight) continue;
          words.push_back(
              pack_entry(samples[i], d, bf.parent(v, static_cast<int>(i)) == u));
        }
        return words;
      },
      &s);
  add_stats(result.stats, s);

  std::unordered_map<NodeId, int> sample_index;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    sample_index.emplace(samples[i], static_cast<int>(i));
  }
  std::vector<Weight> mu(static_cast<std::size_t>(n), kInfWeight);
  Weight long_best = kInfWeight;
  int long_w_idx = -1;
  NodeId long_x = kNoNode, long_y = kNoNode;
  for (NodeId y = 0; y < n; ++y) {
    for (const graph::Arc& a : g.out(y)) {
      for (Word word : ex.received(y, a.to)) {
        NodeId w = kNoNode;
        Weight dx = 0;
        bool y_is_parent_of_x = false;
        unpack_entry(word, &w, &dx, &y_is_parent_of_x);
        if (y_is_parent_of_x) continue;
        const int idx = sample_index.at(w);
        if (bf.parent(y, idx) == a.to) continue;
        const Weight dy = bf.dist(y, idx);
        if (dy == kInfWeight) continue;
        mu[static_cast<std::size_t>(y)] =
            std::min(mu[static_cast<std::size_t>(y)], dx + dy + a.w);
        if (dx + dy + a.w < long_best) {
          long_best = dx + dy + a.w;
          long_w_idx = idx;
          long_x = a.to;
          long_y = y;
        }
      }
    }
  }
  congest::BfsTreeResult tree = congest::build_bfs_tree(net, 0, &s);
  add_stats(result.stats, s);
  result.long_cycle_value =
      congest::convergecast(net, tree, mu, congest::AggregateOp::kMin, &s);
  long_span.close();
  add_stats(result.stats, s);

  // --- short cycles: scaling ladder + Corollary 4.1 -----------------------
  std::vector<NodeId> short_witness;
  result.short_cycle_value =
      short_cycles_via_ladder(net, g, h, eps_half, params.max_levels,
                              /*directed=*/false, &result.stats, nullptr,
                              &short_witness);

  result.value = std::min(result.long_cycle_value, result.short_cycle_value);

  // Witness: short branch's cycle when it wins; otherwise splice the long
  // branch's Bellman-Ford root paths (exact SPT parents are available).
  if (result.value != kInfWeight) {
    if (result.short_cycle_value <= result.long_cycle_value &&
        !short_witness.empty()) {
      result.witness = std::move(short_witness);
    } else if (result.long_cycle_value <= result.short_cycle_value &&
               long_w_idx >= 0) {
      auto climb = [&](NodeId from) {
        std::vector<NodeId> path{from};
        while (bf.dist(path.back(), long_w_idx) != 0) {
          path.push_back(bf.parent(path.back(), long_w_idx));
        }
        return path;
      };
      std::vector<NodeId> cyc =
          detail::splice_root_paths(climb(long_x), climb(long_y));
      Weight total = 0;
      if (detail::validate_cycle(g, cyc, &total) && total <= result.value) {
        result.witness = std::move(cyc);
      }
    }
  }
  return result;
}

MwcResult directed_weighted_mwc(congest::Network& net,
                                const WeightedMwcParams& params) {
  const graph::Graph& g = net.problem_graph();
  MWC_CHECK(g.is_directed());
  MWC_CHECK(params.epsilon > 0);
  const int n = net.n();
  const int h = params.h_override > 0 ? params.h_override
                                      : support::int_pow(n, 0.6);
  const double eps_half = params.epsilon / 2.0;

  MwcResult result;
  RunStats s;

  // --- long cycles: (1+eps) k-source SSSP from samples (Thm 1.6.B) -------
  std::vector<NodeId> samples =
      sample_long_cycle_hitters(net, params.sample_constant, h);
  result.sample_count = static_cast<int>(samples.size());
  congest::PhaseSpan long_span(net, "long cycles");
  ksssp::SkeletonSsspParams sp;
  sp.sources = samples;
  sp.epsilon = eps_half;
  ksssp::KSsspResult ks = ksssp::skeleton_k_source_sssp(net, sp);
  add_stats(result.stats, ks.stats);

  std::unordered_map<NodeId, int> sample_index;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    sample_index.emplace(samples[i], static_cast<int>(i));
  }
  std::vector<Weight> mu(static_cast<std::size_t>(n), kInfWeight);
  for (NodeId v = 0; v < n; ++v) {
    for (const graph::Arc& a : g.out(v)) {
      auto it = sample_index.find(a.to);
      if (it == sample_index.end()) continue;
      const Weight d = ks.dist.at(v, it->second);  // ~d(s, v)
      if (d == kInfWeight) continue;
      mu[static_cast<std::size_t>(v)] =
          std::min(mu[static_cast<std::size_t>(v)], a.w + d);
    }
  }
  congest::BfsTreeResult tree = congest::build_bfs_tree(net, 0, &s);
  add_stats(result.stats, s);
  result.long_cycle_value =
      congest::convergecast(net, tree, mu, congest::AggregateOp::kMin, &s);
  long_span.close();
  add_stats(result.stats, s);

  // --- short cycles: ladder + hop-limited Algorithm 2 (Section 5.2) -------
  result.short_cycle_value =
      short_cycles_via_ladder(net, g, h, eps_half, params.max_levels,
                              /*directed=*/true, &result.stats,
                              &result.overflow_count, nullptr);

  result.value = std::min(result.long_cycle_value, result.short_cycle_value);
  return result;
}

}  // namespace mwc::cycle
