// (2+eps)-approximate weighted MWC (Section 5).
//
//  * undirected_weighted_mwc - Theorem 1.4.C, O~(n^(2/3) + D) rounds.
//  * directed_weighted_mwc   - Theorem 1.2.D, O~(n^(4/5) + D) rounds.
//
// Both follow the paper's split with h = n^(2/3) (resp. n^(3/5)) hops:
//
//  Long cycles (>= h hops): sample ~ n log(n)/h vertices so a long MWC
//  contains a sample w.h.p., compute shortest paths from the samples, and
//  close cycles through samples.
//    - directed: (1+eps) k-source SSSP (Theorem 1.6.B, skeleton ladder);
//      closing an arc (v,s) onto an estimate d(s,v) is sound because any
//      closed directed walk contains a directed cycle of at most its weight.
//    - undirected: closing requires non-tree-edge filtering against an SPT
//      (otherwise tree paths forge phantom cycles), and the skeleton-stitched
//      estimates carry no SPT. We therefore use the exact multi-source
//      Bellman-Ford (with parents) here - a documented substitution for the
//      full version's glossed detail (DESIGN.md section 5); it is sound,
//      exact on long cycles, and its measured rounds are reported by the
//      benches alongside the theory bound.
//
//  Short cycles (< h hops): the scaling ladder of [41] - levels i with
//  weights ceil(2 h w / (eps 2^i)) - each run through the h*-tick-limited
//  unweighted approximation (Corollary 4.1: girth core for undirected,
//  Algorithm 2 for directed) on the stretched scaled graph, then unscaled
//  and min-combined. Level i = ceil(log2 w(C)) certifies
//  <= 2 (1+eps') w(C); with eps' = eps/2 the total is a (2+eps)-approx.
#pragma once

#include "congest/network.h"
#include "mwc/result.h"

namespace mwc::cycle {

struct WeightedMwcParams {
  double epsilon = 0.5;          // overall slack: result <= (2+eps) * MWC
  double sample_constant = 1.5;  // long-cycle sampling: p = c log n / h
  int h_override = 0;            // 0 = n^(2/3) undirected / n^(3/5) directed
  // Ablation A3 hooks: cap on ladder depth (0 = full ladder).
  int max_levels = 0;
};

MwcResult undirected_weighted_mwc(congest::Network& net,
                                  const WeightedMwcParams& params = {});

MwcResult directed_weighted_mwc(congest::Network& net,
                                const WeightedMwcParams& params = {});

}  // namespace mwc::cycle
