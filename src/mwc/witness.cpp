#include "mwc/witness.h"

#include <algorithm>
#include <unordered_set>

#include "support/check.h"

namespace mwc::cycle::detail {

using graph::NodeId;
using graph::Weight;

std::vector<NodeId> splice_root_paths(const std::vector<NodeId>& pa,
                                      const std::vector<NodeId>& pb) {
  MWC_CHECK(!pa.empty() && !pb.empty() && pa.back() == pb.back());
  std::size_t common = 0;
  while (common < pa.size() && common < pb.size() &&
         pa[pa.size() - 1 - common] == pb[pb.size() - 1 - common]) {
    ++common;
  }
  MWC_CHECK(common >= 1);
  std::vector<NodeId> cyc(pa.begin(),
                          pa.end() - static_cast<std::ptrdiff_t>(common - 1));
  for (std::size_t i = pb.size() - common; i-- > 0;) cyc.push_back(pb[i]);
  return cyc;
}

bool validate_cycle(const graph::Graph& g, const std::vector<NodeId>& cyc,
                    Weight* total) {
  const std::size_t min_len = g.is_directed() ? 2 : 3;
  if (cyc.size() < min_len) return false;
  std::unordered_set<NodeId> seen;
  Weight sum = 0;
  for (std::size_t i = 0; i < cyc.size(); ++i) {
    if (!seen.insert(cyc[i]).second) return false;
    const NodeId from = cyc[i];
    const NodeId to = cyc[(i + 1) % cyc.size()];
    auto arcs = g.out(from);
    auto it = std::lower_bound(arcs.begin(), arcs.end(), to,
                               [](const graph::Arc& a, NodeId t) { return a.to < t; });
    if (it == arcs.end() || it->to != to) return false;
    sum += it->w;
  }
  *total = sum;
  return true;
}

}  // namespace mwc::cycle::detail
