// Shared cycle-witness reconstruction helpers.
//
// The algorithms find candidates of the form "root path to x + root path to
// y + closing edge(s)"; a witness cycle is obtained by splicing the two
// root paths around their lowest common ancestor (in a parent forest, two
// root paths share exactly a suffix) and validating the result against the
// graph. Validation is belt-and-braces: a witness is only attached when it
// is a simple cycle of real edges no heavier than the reported value.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace mwc::cycle::detail {

// Splices root paths pa = [a, ..., root] and pb = [b, ..., root] into the
// cycle [a, ..., lca, ..., b] (closed externally by the candidate's edge(s)
// from b back to a). Requires both paths to end at the same root.
std::vector<graph::NodeId> splice_root_paths(const std::vector<graph::NodeId>& pa,
                                             const std::vector<graph::NodeId>& pb);

// True iff cyc is a simple cycle of g (including the closing arc
// back() -> front()); *total receives its weight.
bool validate_cycle(const graph::Graph& g, const std::vector<graph::NodeId>& cyc,
                    graph::Weight* total);

}  // namespace mwc::cycle::detail
