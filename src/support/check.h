// Lightweight invariant checking used across the library.
//
// MWC_CHECK is always on (simulation correctness depends on it and the cost
// is negligible next to message processing); MWC_DCHECK compiles out in
// release builds for hot inner loops.
//
// By default a failed check aborts. Tests that exercise failure paths can
// opt into throwing mode (ScopedChecksThrow / set_checks_throw), in which
// a failed check raises CheckError instead - no death tests required.
// Compiling with -DMWC_CHECKS_THROW flips the default to throwing.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mwc::support {

// Raised by failed checks in throwing mode.
class CheckError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline std::atomic<bool>& checks_throw_flag() {
  static std::atomic<bool> enabled{
#ifdef MWC_CHECKS_THROW
      true
#else
      false
#endif
  };
  return enabled;
}

inline void set_checks_throw(bool enabled) {
  checks_throw_flag().store(enabled, std::memory_order_relaxed);
}

// RAII guard: checks throw CheckError while the guard is alive.
class ScopedChecksThrow {
 public:
  ScopedChecksThrow() : prev_(checks_throw_flag().exchange(true)) {}
  ~ScopedChecksThrow() { checks_throw_flag().store(prev_); }
  ScopedChecksThrow(const ScopedChecksThrow&) = delete;
  ScopedChecksThrow& operator=(const ScopedChecksThrow&) = delete;

 private:
  bool prev_;
};

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "CHECK failed: %s at %s:%d%s%s", cond, file,
                line, msg[0] ? " - " : "", msg);
  if (checks_throw_flag().load(std::memory_order_relaxed)) throw CheckError(buf);
  std::fprintf(stderr, "%s\n", buf);
  std::abort();
}

}  // namespace mwc::support

#define MWC_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) ::mwc::support::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define MWC_CHECK_MSG(cond, msg)                                              \
  do {                                                                        \
    if (!(cond)) ::mwc::support::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define MWC_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define MWC_DCHECK(cond) MWC_CHECK(cond)
#endif
