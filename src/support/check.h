// Lightweight invariant checking used across the library.
//
// MWC_CHECK is always on (simulation correctness depends on it and the cost
// is negligible next to message processing); MWC_DCHECK compiles out in
// release builds for hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mwc::support {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " - " : "", msg);
  std::abort();
}

}  // namespace mwc::support

#define MWC_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) ::mwc::support::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define MWC_CHECK_MSG(cond, msg)                                              \
  do {                                                                        \
    if (!(cond)) ::mwc::support::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define MWC_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define MWC_DCHECK(cond) MWC_CHECK(cond)
#endif
