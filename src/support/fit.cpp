#include "support/fit.h"

#include <cmath>

#include "support/check.h"

namespace mwc::support {

PowerFit fit_power_law(std::span<const double> xs, std::span<const double> ys) {
  MWC_CHECK(xs.size() == ys.size());
  MWC_CHECK(xs.size() >= 2);
  const std::size_t n = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    MWC_CHECK(xs[i] > 0 && ys[i] > 0);
    double lx = std::log(xs[i]);
    double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double dn = static_cast<double>(n);
  const double vxx = sxx - sx * sx / dn;
  const double vyy = syy - sy * sy / dn;
  const double vxy = sxy - sx * sy / dn;
  PowerFit fit;
  MWC_CHECK_MSG(vxx > 0, "x samples must not all be equal");
  fit.exponent = vxy / vxx;
  fit.log_const = (sy - fit.exponent * sx) / dn;
  fit.r_squared = (vyy > 0) ? (vxy * vxy) / (vxx * vyy) : 1.0;
  return fit;
}

}  // namespace mwc::support
