// Log-log regression used by benches to estimate growth exponents.
//
// Table 1's upper bounds are statements of the form "rounds = O~(n^e + D)";
// the benches measure rounds(n) over a sweep and report the least-squares
// slope of log(rounds) vs log(n) so measured growth can be compared with the
// theoretical exponent.
#pragma once

#include <span>

namespace mwc::support {

struct PowerFit {
  double exponent = 0.0;   // slope of log(y) against log(x)
  double log_const = 0.0;  // intercept: y ~ exp(log_const) * x^exponent
  double r_squared = 0.0;  // goodness of fit
};

// Least-squares fit of log(y) = c + e*log(x). Requires xs.size() == ys.size()
// >= 2 and strictly positive samples.
PowerFit fit_power_law(std::span<const double> xs, std::span<const double> ys);

}  // namespace mwc::support
