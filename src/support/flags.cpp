#include "support/flags.h"

#include <algorithm>
#include <cstdlib>

namespace mwc::support {

Flags::Flags(int argc, const char* const* argv,
             const std::vector<std::string>& known) {
  auto is_known = [&](const std::string& name) {
    return known.empty() || std::find(known.begin(), known.end(), name) != known.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value = "true";
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    if (!is_known(name)) unknown_.push_back(name);
    values_[name] = std::move(value);
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atoll(it->second.c_str());
}

double Flags::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

}  // namespace mwc::support
