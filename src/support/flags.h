// Minimal command-line flag parsing for the benches and examples.
//
// Supports --name=value and bare boolean --name (value "true"); everything
// else is positional. The space form "--name value" is deliberately not
// supported - it would make booleans ambiguous before positionals. Unknown-flag detection is the caller's job via
// `unknown_flags` (benches warn, the CLI rejects).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mwc::support {

class Flags {
 public:
  Flags(int argc, const char* const* argv,
        const std::vector<std::string>& known = {});

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  // Flags seen on the command line that were not in `known` (empty `known`
  // disables the check).
  const std::vector<std::string>& unknown_flags() const { return unknown_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::vector<std::string> unknown_;
};

}  // namespace mwc::support
