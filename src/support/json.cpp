#include "support/json.h"

#include <cctype>
#include <cstdlib>

namespace mwc::support {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string_view JsonValue::string_or(std::string_view key,
                                      std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? std::string_view(v->str) : fallback;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage after value");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (error_ != nullptr) {
      *error_ = std::string(msg) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxJsonDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.str);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true") || fail("bad literal");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false") || fail("bad literal");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null") || fail("bad literal");
      default: return number(out);
    }
  }

  bool object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.items.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs in this repo's
          // artifacts don't occur; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (eat('-')) {}
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return fail("expected a value");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (eat('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("bad number: digits must follow '.'");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("bad number: digits must follow exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.raw.assign(text_.substr(start, pos_ - start));
    out.number = std::strtod(out.raw.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue{};
  return Parser(text, error).parse(out);
}

}  // namespace mwc::support
