#include "support/json.h"

#include <cctype>
#include <cstdlib>

namespace mwc::support {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string_view JsonValue::string_or(std::string_view key,
                                      std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? std::string_view(v->str) : fallback;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, const JsonParseOptions& options,
         std::string* error)
      : text_(text), options_(options), error_(error) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage after value");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (error_ != nullptr) {
      *error_ = std::string(msg) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxJsonDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.str);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true") || fail("bad literal");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false") || fail("bad literal");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null") || fail("bad literal");
      default: return number(out);
    }
  }

  bool object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!string(key)) return false;
      if (options_.reject_duplicate_keys) {
        for (const auto& [k, unused] : out.members) {
          if (k == key) return fail("duplicate object key");
        }
      }
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.items.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        if (options_.validate_utf8 && static_cast<unsigned char>(c) >= 0x80) {
          if (!utf8_tail(static_cast<unsigned char>(c), out)) return false;
          continue;
        }
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          if (!hex4(code)) return false;
          if (options_.validate_utf8) {
            if (code >= 0xDC00 && code <= 0xDFFF) {
              return fail("lone low surrogate escape");
            }
            if (code >= 0xD800 && code <= 0xDBFF) {
              // A high surrogate must pair with an immediately following
              // \uDC00-\uDFFF escape; the pair decodes to one supplementary
              // code point.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return fail("unpaired high surrogate escape");
              }
              pos_ += 2;
              unsigned low = 0;
              if (!hex4(low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return fail("unpaired high surrogate escape");
              }
              const unsigned cp =
                  0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
              out += static_cast<char>(0xF0 | (cp >> 18));
              out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
              break;
            }
          }
          // UTF-8 encode the BMP code point (lenient mode: surrogate pairs
          // in this repo's artifacts don't occur; a lone surrogate encodes
          // as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  // Reads 4 hex digits of a \u escape into `code`.
  bool hex4(unsigned& code) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else return fail("bad \\u escape");
    }
    return true;
  }

  // Strict-mode raw-byte validation: `lead` (>= 0x80) must open a
  // well-formed UTF-8 sequence - correct continuation count, no overlong
  // encodings, no surrogates, nothing past U+10FFFF. Appends the validated
  // bytes to `out`.
  bool utf8_tail(unsigned char lead, std::string& out) {
    int len;
    unsigned cp;
    if ((lead & 0xE0) == 0xC0) {
      len = 1;
      cp = lead & 0x1Fu;
    } else if ((lead & 0xF0) == 0xE0) {
      len = 2;
      cp = lead & 0x0Fu;
    } else if ((lead & 0xF8) == 0xF0) {
      len = 3;
      cp = lead & 0x07u;
    } else {
      return fail("invalid UTF-8 lead byte in string");
    }
    if (pos_ + static_cast<std::size_t>(len) > text_.size()) {
      return fail("truncated UTF-8 sequence in string");
    }
    for (int i = 0; i < len; ++i) {
      const auto cont = static_cast<unsigned char>(text_[pos_ + static_cast<std::size_t>(i)]);
      if ((cont & 0xC0) != 0x80) {
        return fail("invalid UTF-8 continuation byte in string");
      }
      cp = (cp << 6) | (cont & 0x3Fu);
    }
    const unsigned kMinByLen[4] = {0, 0x80, 0x800, 0x10000};
    if (cp < kMinByLen[len]) return fail("overlong UTF-8 encoding in string");
    if (cp >= 0xD800 && cp <= 0xDFFF) {
      return fail("UTF-8 encoded surrogate in string");
    }
    if (cp > 0x10FFFF) return fail("UTF-8 code point past U+10FFFF");
    out += static_cast<char>(lead);
    for (int i = 0; i < len; ++i) out += text_[pos_++];
    return true;
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (eat('-')) {}
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return fail("expected a value");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (eat('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("bad number: digits must follow '.'");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("bad number: digits must follow exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.raw.assign(text_.substr(start, pos_ - start));
    out.number = std::strtod(out.raw.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  JsonParseOptions options_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue{};
  return Parser(text, JsonParseOptions{}, error).parse(out);
}

bool parse_json(std::string_view text, const JsonParseOptions& options,
                JsonValue& out, std::string* error) {
  out = JsonValue{};
  return Parser(text, options, error).parse(out);
}

}  // namespace mwc::support
