// A small recursive-descent JSON reader for the repo's own artifacts:
// metrics snapshots, BENCH_*.json logs, trace exports. Deliberately minimal
// - no writer (every producer in this codebase serializes by hand so the
// bytes stay deterministic), no streaming, no number lossiness games: the
// parser keeps each number's raw text alongside its double value, so a
// consumer that needs the exact integer can reparse the text.
//
// Accepts strict RFC 8259 JSON (the only kind this repo emits). Rejects,
// with a one-line error naming the byte offset: trailing commas, comments,
// unquoted keys, and nesting deeper than kMaxDepth (stack safety).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mwc::support {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string raw;  // number: the exact source text
  std::string str;  // string: the decoded value
  std::vector<JsonValue> items;                           // array
  std::vector<std::pair<std::string, JsonValue>> members; // object, in order

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // First member with this key, nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  // find() + number coercion: `fallback` when absent or not a number.
  double number_or(std::string_view key, double fallback) const;
  // find() + string coercion: `fallback` when absent or not a string.
  std::string_view string_or(std::string_view key,
                             std::string_view fallback) const;
};

inline constexpr int kMaxJsonDepth = 64;

// Hardening knobs for input that crosses a trust boundary (the solve
// service's JSONL request stream). The default-lenient behaviour stays for
// the repo's own artifacts, whose producers are deterministic serializers.
struct JsonParseOptions {
  // Reject objects that bind the same key twice (lenient parsing keeps
  // both; find() returns the first - a classic smuggling vector when a
  // validator and a consumer disagree on which one wins).
  bool reject_duplicate_keys = false;
  // Validate raw string bytes as well-formed UTF-8 (no truncated or
  // overlong sequences, no surrogate code points, nothing past U+10FFFF)
  // and require \uD800-\uDBFF escapes to be followed by a low surrogate
  // (decoded as one supplementary code point). Lenient parsing passes raw
  // bytes >= 0x20 through untouched and encodes lone surrogates as-is.
  bool validate_utf8 = false;
};

// Parses `text` into `out`. Returns false (with a message in `*error` when
// non-null) on malformed input; `out` is unspecified then. The whole input
// must be one JSON value plus optional trailing whitespace.
bool parse_json(std::string_view text, JsonValue& out,
                std::string* error = nullptr);
bool parse_json(std::string_view text, const JsonParseOptions& options,
                JsonValue& out, std::string* error = nullptr);

}  // namespace mwc::support
