// A small recursive-descent JSON reader for the repo's own artifacts:
// metrics snapshots, BENCH_*.json logs, trace exports. Deliberately minimal
// - no writer (every producer in this codebase serializes by hand so the
// bytes stay deterministic), no streaming, no number lossiness games: the
// parser keeps each number's raw text alongside its double value, so a
// consumer that needs the exact integer can reparse the text.
//
// Accepts strict RFC 8259 JSON (the only kind this repo emits). Rejects,
// with a one-line error naming the byte offset: trailing commas, comments,
// unquoted keys, and nesting deeper than kMaxDepth (stack safety).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mwc::support {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string raw;  // number: the exact source text
  std::string str;  // string: the decoded value
  std::vector<JsonValue> items;                           // array
  std::vector<std::pair<std::string, JsonValue>> members; // object, in order

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // First member with this key, nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  // find() + number coercion: `fallback` when absent or not a number.
  double number_or(std::string_view key, double fallback) const;
  // find() + string coercion: `fallback` when absent or not a string.
  std::string_view string_or(std::string_view key,
                             std::string_view fallback) const;
};

inline constexpr int kMaxJsonDepth = 64;

// Parses `text` into `out`. Returns false (with a message in `*error` when
// non-null) on malformed input; `out` is unspecified then. The whole input
// must be one JSON value plus optional trailing whitespace.
bool parse_json(std::string_view text, JsonValue& out,
                std::string* error = nullptr);

}  // namespace mwc::support
