#include "support/math_util.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/check.h"

namespace mwc::support {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  MWC_CHECK(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

int floor_log2(std::uint64_t x) {
  MWC_CHECK(x >= 1);
  return 63 - std::countl_zero(x);
}

int ceil_log2(std::uint64_t x) {
  MWC_CHECK(x >= 1);
  if (x == 1) return 0;
  return floor_log2(x - 1) + 1;
}

double log_n(int n) {
  MWC_CHECK(n >= 1);
  return std::max(1.0, std::log(static_cast<double>(n)));
}

int int_pow(int n, double e) {
  MWC_CHECK(n >= 1);
  double v = std::pow(static_cast<double>(n), e);
  long r = std::lround(v);
  return static_cast<int>(std::clamp<long>(r, 1, n));
}

}  // namespace mwc::support
