// Small integer/real helpers shared by algorithms and benches.
#pragma once

#include <cstdint>

namespace mwc::support {

// ceil(a / b) for non-negative a, positive b.
std::int64_t ceil_div(std::int64_t a, std::int64_t b);

// floor(log2(x)) for x >= 1.
int floor_log2(std::uint64_t x);

// ceil(log2(x)) for x >= 1.
int ceil_log2(std::uint64_t x);

// Natural log of n, clamped below at 1.0 (avoids degenerate sampling
// probabilities for tiny n). Used wherever the paper writes "log n".
double log_n(int n);

// round(n^e) clamped to [1, n]; the paper's n^(3/5), n^(4/5), ... parameters.
int int_pow(int n, double e);

}  // namespace mwc::support
