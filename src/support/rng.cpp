#include "support/rng.h"

#include "support/check.h"

namespace mwc::support {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  // Expand the seed into four non-zero state words with splitmix64.
  std::uint64_t z = seed;
  for (auto& word : s_) {
    z = mix64(z);
    word = z | 1;  // avoid the all-zero state
  }
}

Rng Rng::fork(std::uint64_t tag) const {
  return Rng(mix64(seed_ ^ mix64(tag ^ 0xa5a5a5a5a5a5a5a5ULL)));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MWC_CHECK(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  MWC_CHECK(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

}  // namespace mwc::support
