// Seeded pseudo-randomness for the CONGEST simulation.
//
// The CONGEST model grants nodes shared randomness: all nodes may read a
// common public random string. We model this with a single master seed from
// which every component derives an independent deterministic stream, so an
// entire simulation is reproducible from one integer.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace mwc::support {

// splitmix64 - used to derive stream seeds from (master, tag) pairs.
std::uint64_t mix64(std::uint64_t x);

// A small, fast PRNG (xoshiro256**) with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Derives an independent child stream, e.g. one per node or per phase.
  // Deterministic in (this stream's seed, tag).
  Rng fork(std::uint64_t tag) const;

  std::uint64_t next_u64();

  // Uniform in [0, bound), bound > 0. Debiased via rejection.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  // Bernoulli with probability p (clamped to [0,1]).
  bool next_bool(double p);

  // Uniform real in [0,1).
  double next_double();

  // Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t s_[4] = {};
};

}  // namespace mwc::support
