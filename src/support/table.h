// Plain-text table printer for bench output.
//
// Benches print the same "rows" the paper's Table 1 reports (measured rounds,
// fitted exponents, approximation ratios), aligned for terminal reading.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mwc::support {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Renders with column alignment and a separator under the header.
  std::string to_string() const;

  // Convenience: render to stdout.
  void print() const;

  static std::string fmt(double v, int precision = 2);
  static std::string fmt(std::int64_t v);

  // Structured access for machine-readable exports (bench JSON logs).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mwc::support
