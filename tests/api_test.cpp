// The approximate_mwc dispatcher, plus a cross-class consistency sweep: on
// every random instance of every graph class, the dispatched approximation
// must be sound and within its own advertised guarantee of the exact value.
#include <gtest/gtest.h>

#include "congest/metrics.h"
#include "congest/network.h"
#include "congest/runner.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/api.h"
#include "mwc/exact.h"
#include "support/rng.h"

namespace mwc::cycle {
namespace {

using congest::Network;
using graph::Graph;
using graph::Weight;
using graph::WeightRange;

Graph make_instance(int cls, int n, support::Rng& rng) {
  switch (cls) {
    case 0:  // undirected unweighted
      return graph::random_connected(n, 2 * n, WeightRange{1, 1}, rng);
    case 1:  // undirected weighted
      return graph::random_connected(n, 2 * n, WeightRange{1, 10}, rng);
    case 2:  // directed unweighted
      return graph::random_strongly_connected(n, 3 * n, WeightRange{1, 1}, rng);
    default:  // directed weighted
      return graph::random_strongly_connected(n, 3 * n, WeightRange{1, 10}, rng);
  }
}

TEST(ApproximateMwc, GuaranteeByClass) {
  support::Rng rng(1);
  ApproxMwcOptions opt;
  opt.epsilon = 0.25;
  for (int cls = 0; cls < 4; ++cls) {
    Graph g = make_instance(cls, 40, rng);
    Network net(g, 2);
    const double expect = g.is_unit_weight() ? 2.0 : 2.25;
    EXPECT_DOUBLE_EQ(approximate_mwc_guarantee(net, opt), expect) << cls;
  }
}

struct SweepCase {
  int cls;
  int n;
  std::uint64_t seed;
};

class DispatcherSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DispatcherSweep, SoundAndWithinAdvertisedGuarantee) {
  const SweepCase& c = GetParam();
  support::Rng rng(c.seed);
  Graph g = make_instance(c.cls, c.n, rng);
  Weight exact = graph::seq::mwc(g);
  ASSERT_NE(exact, graph::kInfWeight);
  Network net(g, c.seed * 3 + 1);
  ApproxMwcOptions opt;
  MwcResult result = approximate_mwc(net, opt);
  const double guarantee = approximate_mwc_guarantee(net, opt);
  ASSERT_NE(result.value, graph::kInfWeight);
  EXPECT_GE(result.value, exact);
  EXPECT_LE(static_cast<double>(result.value),
            guarantee * static_cast<double>(exact) + 1e-9)
      << "class=" << c.cls << " n=" << c.n << " seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, DispatcherSweep,
    ::testing::Values(SweepCase{0, 60, 1}, SweepCase{0, 110, 2},
                      SweepCase{1, 60, 3}, SweepCase{1, 110, 4},
                      SweepCase{2, 60, 5}, SweepCase{2, 110, 6},
                      SweepCase{3, 60, 7}, SweepCase{3, 90, 8},
                      SweepCase{0, 80, 9}, SweepCase{1, 80, 10},
                      SweepCase{2, 80, 11}, SweepCase{3, 70, 12}));

TEST(ApproximateMwc, ManySeedConsistencyFuzz) {
  // A light fuzz: random class / size / seed, always sound, always within
  // the advertised guarantee; also exact_mwc always <= approximation.
  support::Rng meta(99);
  for (int trial = 0; trial < 16; ++trial) {
    const int cls = static_cast<int>(meta.next_below(4));
    const int n = 40 + static_cast<int>(meta.next_below(50));
    support::Rng rng(meta.next_u64());
    Graph g = make_instance(cls, n, rng);
    Weight exact_seq = graph::seq::mwc(g);
    if (exact_seq == graph::kInfWeight) continue;

    Network net_a(g, meta.next_u64());
    ApproxMwcOptions opt;
    MwcResult approx = approximate_mwc(net_a, opt);
    Network net_e(g, 7);
    MwcResult exact = exact_mwc(net_e);

    ASSERT_EQ(exact.value, exact_seq) << "trial " << trial;
    EXPECT_GE(approx.value, exact.value) << "trial " << trial;
    EXPECT_LE(static_cast<double>(approx.value),
              approximate_mwc_guarantee(net_a, opt) *
                      static_cast<double>(exact.value) +
                  1e-9)
        << "trial " << trial << " cls=" << cls << " n=" << n;
  }
}

TEST(Solve, AutoPicksExactOnSmallAndApproxOnLargeNetworks) {
  support::Rng rng(21);
  Graph small = graph::random_connected(40, 80, WeightRange{1, 1}, rng);
  Network net_small(small, 2);
  MwcReport small_report = solve(net_small);
  ASSERT_TRUE(small_report.ok());
  EXPECT_EQ(small_report.algorithm, "exact");
  EXPECT_DOUBLE_EQ(small_report.guarantee, 1.0);
  EXPECT_EQ(small_report.result.value, graph::seq::mwc(small));

  Graph large = graph::random_connected(200, 400, WeightRange{1, 1}, rng);
  Network net_large(large, 2);
  MwcReport large_report = solve(net_large);
  ASSERT_TRUE(large_report.ok());
  EXPECT_EQ(large_report.algorithm, "girth-approx");
  EXPECT_DOUBLE_EQ(large_report.guarantee, 2.0);
}

TEST(Solve, DispatchNamesAndGuaranteesByClass) {
  const char* expected[] = {"girth-approx", "weighted-undirected",
                            "directed-2approx", "weighted-directed"};
  support::Rng rng(31);
  for (int cls = 0; cls < 4; ++cls) {
    Graph g = make_instance(cls, 50, rng);
    Network net(g, 3);
    SolveOptions opts;
    opts.mode = SolveMode::kApprox;
    opts.epsilon = 0.25;
    MwcReport report = solve(net, opts);
    ASSERT_TRUE(report.ok()) << cls;
    EXPECT_EQ(report.algorithm, expected[cls]);
    EXPECT_DOUBLE_EQ(report.guarantee, g.is_unit_weight() ? 2.0 : 2.25);
    // The engine-level result mirrors the algorithm's accumulated stats.
    EXPECT_EQ(report.run.stats.rounds, report.result.stats.rounds);
  }
}

TEST(Solve, CollectMetricsProfilesThePhases) {
  support::Rng rng(41);
  Graph g = make_instance(0, 50, rng);
  Network net(g, 5);
  SolveOptions opts;
  opts.mode = SolveMode::kExact;
  opts.collect_metrics = true;
  MwcReport report = solve(net, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.metrics.clean());
  EXPECT_GT(report.metrics.total.runs, 0u);
  EXPECT_EQ(report.metrics.total.rounds, report.result.stats.rounds);
  EXPECT_NE(report.metrics.find("apsp/multi_bfs"), nullptr);

  // Off by default: no profile is collected.
  Network net2(g, 5);
  MwcReport quiet = solve(net2, SolveOptions{SolveMode::kExact});
  EXPECT_EQ(quiet.metrics.total.runs, 0u);
  EXPECT_TRUE(quiet.metrics.phases.empty());
}

TEST(Solve, CollectMetricsStillFeedsAnOuterSink) {
  support::Rng rng(43);
  Graph g = make_instance(0, 40, rng);
  Network net(g, 5);
  congest::Metrics outer;
  net.attach_metrics(&outer);
  SolveOptions opts;
  opts.mode = SolveMode::kExact;
  opts.collect_metrics = true;
  MwcReport report = solve(net, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(net.metrics(), &outer);  // restored
  EXPECT_EQ(outer.snapshot().total.runs, report.metrics.total.runs);
}

TEST(Solve, AbortedRunIsDataNotAnException) {
  support::Rng rng(51);
  Graph g = make_instance(0, 40, rng);
  congest::NetworkConfig cfg;
  cfg.max_rounds_per_run = 2;
  Network net(g, 3, cfg);
  SolveOptions opts;
  opts.mode = SolveMode::kExact;
  MwcReport report = solve(net, opts);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.run.outcome, congest::RunOutcome::kRoundLimitExceeded);

  // The thin wrappers keep the historical throwing contract.
  Network net2(g, 3, cfg);
  EXPECT_THROW(exact_mwc(net2), congest::RunAbortedError);
}

TEST(Solve, WrappersMatchSolveResults) {
  support::Rng rng(61);
  Graph g = make_instance(1, 60, rng);

  Network net_a(g, 9);
  SolveOptions opts;
  opts.mode = SolveMode::kApprox;
  opts.epsilon = 0.5;
  MwcReport report = solve(net_a, opts);
  Network net_b(g, 9);
  MwcResult wrapped = approximate_mwc(net_b, ApproxMwcOptions{0.5});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.result.value, wrapped.value);
  EXPECT_EQ(report.result.stats.rounds, wrapped.stats.rounds);

  Network net_c(g, 9);
  opts.mode = SolveMode::kExact;
  MwcReport exact_report = solve(net_c, opts);
  Network net_d(g, 9);
  MwcResult exact_wrapped = exact_mwc(net_d);
  EXPECT_EQ(exact_report.result.value, exact_wrapped.value);
  EXPECT_EQ(exact_report.result.value, graph::seq::mwc(g));
}

}  // namespace
}  // namespace mwc::cycle
