// The approximate_mwc dispatcher, plus a cross-class consistency sweep: on
// every random instance of every graph class, the dispatched approximation
// must be sound and within its own advertised guarantee of the exact value.
#include <gtest/gtest.h>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/api.h"
#include "mwc/exact.h"
#include "support/rng.h"

namespace mwc::cycle {
namespace {

using congest::Network;
using graph::Graph;
using graph::Weight;
using graph::WeightRange;

Graph make_instance(int cls, int n, support::Rng& rng) {
  switch (cls) {
    case 0:  // undirected unweighted
      return graph::random_connected(n, 2 * n, WeightRange{1, 1}, rng);
    case 1:  // undirected weighted
      return graph::random_connected(n, 2 * n, WeightRange{1, 10}, rng);
    case 2:  // directed unweighted
      return graph::random_strongly_connected(n, 3 * n, WeightRange{1, 1}, rng);
    default:  // directed weighted
      return graph::random_strongly_connected(n, 3 * n, WeightRange{1, 10}, rng);
  }
}

TEST(ApproximateMwc, GuaranteeByClass) {
  support::Rng rng(1);
  ApproxMwcOptions opt;
  opt.epsilon = 0.25;
  for (int cls = 0; cls < 4; ++cls) {
    Graph g = make_instance(cls, 40, rng);
    Network net(g, 2);
    const double expect = g.is_unit_weight() ? 2.0 : 2.25;
    EXPECT_DOUBLE_EQ(approximate_mwc_guarantee(net, opt), expect) << cls;
  }
}

struct SweepCase {
  int cls;
  int n;
  std::uint64_t seed;
};

class DispatcherSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DispatcherSweep, SoundAndWithinAdvertisedGuarantee) {
  const SweepCase& c = GetParam();
  support::Rng rng(c.seed);
  Graph g = make_instance(c.cls, c.n, rng);
  Weight exact = graph::seq::mwc(g);
  ASSERT_NE(exact, graph::kInfWeight);
  Network net(g, c.seed * 3 + 1);
  ApproxMwcOptions opt;
  MwcResult result = approximate_mwc(net, opt);
  const double guarantee = approximate_mwc_guarantee(net, opt);
  ASSERT_NE(result.value, graph::kInfWeight);
  EXPECT_GE(result.value, exact);
  EXPECT_LE(static_cast<double>(result.value),
            guarantee * static_cast<double>(exact) + 1e-9)
      << "class=" << c.cls << " n=" << c.n << " seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, DispatcherSweep,
    ::testing::Values(SweepCase{0, 60, 1}, SweepCase{0, 110, 2},
                      SweepCase{1, 60, 3}, SweepCase{1, 110, 4},
                      SweepCase{2, 60, 5}, SweepCase{2, 110, 6},
                      SweepCase{3, 60, 7}, SweepCase{3, 90, 8},
                      SweepCase{0, 80, 9}, SweepCase{1, 80, 10},
                      SweepCase{2, 80, 11}, SweepCase{3, 70, 12}));

TEST(ApproximateMwc, ManySeedConsistencyFuzz) {
  // A light fuzz: random class / size / seed, always sound, always within
  // the advertised guarantee; also exact_mwc always <= approximation.
  support::Rng meta(99);
  for (int trial = 0; trial < 16; ++trial) {
    const int cls = static_cast<int>(meta.next_below(4));
    const int n = 40 + static_cast<int>(meta.next_below(50));
    support::Rng rng(meta.next_u64());
    Graph g = make_instance(cls, n, rng);
    Weight exact_seq = graph::seq::mwc(g);
    if (exact_seq == graph::kInfWeight) continue;

    Network net_a(g, meta.next_u64());
    ApproxMwcOptions opt;
    MwcResult approx = approximate_mwc(net_a, opt);
    Network net_e(g, 7);
    MwcResult exact = exact_mwc(net_e);

    ASSERT_EQ(exact.value, exact_seq) << "trial " << trial;
    EXPECT_GE(approx.value, exact.value) << "trial " << trial;
    EXPECT_LE(static_cast<double>(approx.value),
              approximate_mwc_guarantee(net_a, opt) *
                      static_cast<double>(exact.value) +
                  1e-9)
        << "trial " << trial << " cls=" << cls << " n=" << n;
  }
}

}  // namespace
}  // namespace mwc::cycle
