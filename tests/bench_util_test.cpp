// bench_util.h helpers: JSON string quoting must be injection-proof for
// arbitrary note/title bytes, and JsonLog::render() must stay valid JSON
// when such strings land in it.
#include <gtest/gtest.h>

#include <string>

#include "../bench/bench_util.h"

namespace mwc::bench {
namespace {

TEST(JsonQuote, PlainStringsPassThroughQuoted) {
  EXPECT_EQ(json_quote(""), "\"\"");
  EXPECT_EQ(json_quote("girth approx"), "\"girth approx\"");
  EXPECT_EQ(json_quote("n=100 m=250"), "\"n=100 m=250\"");
}

TEST(JsonQuote, NamedEscapes) {
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(json_quote("a\tb"), "\"a\\tb\"");
  EXPECT_EQ(json_quote("a\rb"), "\"a\\rb\"");
}

TEST(JsonQuote, EveryControlByteEscaped) {
  for (int c = 0; c < 0x20; ++c) {
    std::string in(1, static_cast<char>(c));
    std::string out = json_quote(in);
    // No raw control byte survives into the literal.
    for (char ch : out) {
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20u)
          << "raw control byte for c=" << c;
    }
    // The escape is either a named one or the \u00XX form.
    if (c == '\n' || c == '\t' || c == '\r') {
      EXPECT_EQ(out.size(), 4u) << "c=" << c;  // "\X"
    } else {
      char expect[16];
      std::snprintf(expect, sizeof(expect), "\"\\u%04x\"", c);
      EXPECT_EQ(out, expect) << "c=" << c;
    }
  }
}

TEST(JsonQuote, EmbeddedEscapeSequenceStaysLiteral) {
  // A note already containing backslash-n must not be double-unescaped.
  EXPECT_EQ(json_quote("raw \\n text"), "\"raw \\\\n text\"");
}

TEST(JsonLog, RenderEscapesHostileNotes) {
  JsonLog log("quote_test");
  log.discard();  // render-only: no BENCH_*.json side effect
  log.begin_section("terminal \x1b[31mred\x1b[0m");
  log.add_note("line one\nline two\twith \"quotes\"");
  log.add_metric("ok", 1.0);
  std::string out = log.render();
  // Control bytes are escaped, not embedded.
  for (char c : out) {
    if (c == '\n') continue;  // the renderer's own pretty-printing newlines
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  EXPECT_NE(out.find("\\u001b[31mred"), std::string::npos);
  EXPECT_NE(out.find("line one\\nline two\\twith \\\"quotes\\\""),
            std::string::npos);
  EXPECT_NE(out.find("\"ok\": 1"), std::string::npos);
}

}  // namespace
}  // namespace mwc::bench
