# Drives mwc_cli through gen -> info -> run and checks the outputs.
file(MAKE_DIRECTORY ${WORK})
set(GRAPH ${WORK}/smoke.graph)

execute_process(COMMAND ${CLI} gen cycle-chords 48 5 9 ${GRAPH}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gen failed: ${out}")
endif()

execute_process(COMMAND ${CLI} info ${GRAPH}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "minimum weight cycle: [0-9]+")
  message(FATAL_ERROR "info failed: ${out}")
endif()

execute_process(COMMAND ${CLI} run exact ${GRAPH} 3
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "witness:" OR NOT out MATCHES "status: certified")
  message(FATAL_ERROR "run exact failed: ${out}")
endif()

execute_process(COMMAND ${CLI} run girth-approx ${GRAPH} 3
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "value: [0-9]+")
  message(FATAL_ERROR "run girth-approx failed: ${out}")
endif()

# Lossy-link run: answers survive 20% drops and the overhead is reported.
execute_process(COMMAND ${CLI} run exact ${GRAPH} 3 --fault-drop-prob=0.2
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "retransmitted: [0-9]+ words")
  message(FATAL_ERROR "run exact with drops failed: ${out}")
endif()

# A hopeless round budget must exit cleanly, never abort or return an
# unlabeled answer: either a best-so-far candidate labeled degraded (rc 3)
# or, with nothing salvageable, a failure diagnostic (rc 2).
execute_process(COMMAND ${CLI} run exact ${GRAPH} 3 --max-rounds=2
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 3)
  if(NOT out MATCHES "status: degraded" OR NOT out MATCHES "round_limit_exceeded")
    message(FATAL_ERROR "tiny --max-rounds degraded run: ${out}")
  endif()
elseif(rc EQUAL 2)
  if(NOT err MATCHES "round_limit_exceeded")
    message(FATAL_ERROR "tiny --max-rounds failed run: ${err}")
  endif()
else()
  message(FATAL_ERROR "run with tiny --max-rounds: rc=${rc}: ${out}${err}")
endif()

# Crash + recovery: the node rejoins mid-run, the run completes, and the
# answer is labeled degraded (volatile state was lost) with a fault ledger.
# --max-rounds bounds the run in case a schedule wedges a protocol.
execute_process(COMMAND ${CLI} run exact ${GRAPH} 3 --fault-crash=5:40
                --fault-recover=5:400 --max-rounds=200000
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 3 OR NOT out MATCHES "status: degraded"
   OR NOT out MATCHES "recoveries")
  message(FATAL_ERROR "run with crash+recover: rc=${rc}: ${out}")
endif()

# Corruption is fully masked by the checksumming transport: certified
# answer, and the metrics JSON is byte-identical across --threads values.
execute_process(COMMAND ${CLI} run exact ${GRAPH} 3 --fault-corrupt-prob=0.05
                --metrics=${WORK}/c1.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "status: certified"
   OR NOT out MATCHES "checksum rejects")
  message(FATAL_ERROR "run with corruption: rc=${rc}: ${out}")
endif()
execute_process(COMMAND ${CLI} run exact ${GRAPH} 3 --fault-corrupt-prob=0.05
                --threads=4 --metrics=${WORK}/c4.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run with corruption --threads=4 failed: ${out}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/c1.json ${WORK}/c4.json RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "corruption metrics JSON differs between --threads=1 and --threads=4")
endif()

# The solve() modes report the dispatched algorithm and its guarantee.
execute_process(COMMAND ${CLI} run auto ${GRAPH} 3
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "algorithm: " OR NOT out MATCHES "guarantee: ")
  message(FATAL_ERROR "run auto failed: ${out}")
endif()

# --metrics prints the per-phase JSON; --metrics=FILE writes it. The JSON
# must be byte-identical between --threads=1 and --threads=8 on one seed.
# Bare --metrics owns stdout: the document must be the only thing there
# (starting with '{'), with the human report rerouted to stderr.
execute_process(COMMAND ${CLI} run auto ${GRAPH} 3 --metrics
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"phases\": \\[" OR NOT out MATCHES "\"total\":")
  message(FATAL_ERROR "run auto --metrics failed: ${out}")
endif()
if(NOT out MATCHES "^\\{")
  message(FATAL_ERROR "bare --metrics stdout is not pure JSON: ${out}")
endif()
if(NOT err MATCHES "algorithm: " OR NOT err MATCHES "value: ")
  message(FATAL_ERROR "bare --metrics did not move the report to stderr: ${err}")
endif()

execute_process(COMMAND ${CLI} run approx ${GRAPH} 5 --metrics=${WORK}/m1.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORK}/m1.json)
  message(FATAL_ERROR "run approx --metrics=FILE failed: ${out}")
endif()
execute_process(COMMAND ${CLI} run approx ${GRAPH} 5 --threads=8
                --metrics=${WORK}/m8.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run approx --threads=8 --metrics failed: ${out}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/m1.json ${WORK}/m8.json RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "metrics JSON differs between --threads=1 and --threads=8")
endif()
file(READ ${WORK}/m1.json metrics_json)
if(NOT metrics_json MATCHES "\"error\": \"\"")
  message(FATAL_ERROR "metrics JSON reports an annotation error: ${metrics_json}")
endif()

# --congestion adds the observatory section to the metrics JSON (and
# adherence rides along with every solve-mode --metrics run).
execute_process(COMMAND ${CLI} run exact ${GRAPH} 3 --congestion
                --metrics=${WORK}/obs.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORK}/obs.json)
  message(FATAL_ERROR "run exact --congestion --metrics=FILE failed: ${out}")
endif()
file(READ ${WORK}/obs.json obs_json)
if(NOT obs_json MATCHES "\"congestion\":" OR NOT obs_json MATCHES "\"top_links\":"
   OR NOT obs_json MATCHES "\"adherence\":")
  message(FATAL_ERROR "metrics JSON lacks the observatory sections: ${obs_json}")
endif()

# --congestion without a metrics sink (or outside solve modes) is a usage
# error - the snapshot is the ledger's only output channel.
execute_process(COMMAND ${CLI} run exact ${GRAPH} 3 --congestion
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1 OR NOT err MATCHES "--congestion requires")
  message(FATAL_ERROR "--congestion without --metrics: rc=${rc}: ${err}")
endif()

# `report` renders the snapshot into one self-contained HTML file.
execute_process(COMMAND ${CLI} report ${WORK}/obs.json ${WORK}/obs.html
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORK}/obs.html)
  message(FATAL_ERROR "report failed: ${out}")
endif()
file(READ ${WORK}/obs.html report_html)
if(NOT report_html MATCHES "^<!DOCTYPE html" OR NOT report_html MATCHES "</html>")
  message(FATAL_ERROR "report output is not a complete HTML document")
endif()
if(report_html MATCHES "http://" OR report_html MATCHES "https://"
   OR report_html MATCHES "<script")
  message(FATAL_ERROR "report HTML is not self-contained")
endif()
