# Drives mwc_cli through gen -> info -> run and checks the outputs.
file(MAKE_DIRECTORY ${WORK})
set(GRAPH ${WORK}/smoke.graph)

execute_process(COMMAND ${CLI} gen cycle-chords 48 5 9 ${GRAPH}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gen failed: ${out}")
endif()

execute_process(COMMAND ${CLI} info ${GRAPH}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "minimum weight cycle: [0-9]+")
  message(FATAL_ERROR "info failed: ${out}")
endif()

execute_process(COMMAND ${CLI} run exact ${GRAPH} 3
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "witness:")
  message(FATAL_ERROR "run exact failed: ${out}")
endif()

execute_process(COMMAND ${CLI} run girth-approx ${GRAPH} 3
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "value: [0-9]+")
  message(FATAL_ERROR "run girth-approx failed: ${out}")
endif()

# Lossy-link run: answers survive 20% drops and the overhead is reported.
execute_process(COMMAND ${CLI} run exact ${GRAPH} 3 --fault-drop-prob=0.2
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "retransmitted: [0-9]+ words")
  message(FATAL_ERROR "run exact with drops failed: ${out}")
endif()

# A hopeless round budget must exit cleanly with a diagnostic, not abort.
execute_process(COMMAND ${CLI} run exact ${GRAPH} 3 --max-rounds=2
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "round_limit_exceeded")
  message(FATAL_ERROR "run with tiny --max-rounds: rc=${rc}: ${err}")
endif()
