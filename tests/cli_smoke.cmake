# Drives mwc_cli through gen -> info -> run and checks the outputs.
file(MAKE_DIRECTORY ${WORK})
set(GRAPH ${WORK}/smoke.graph)

execute_process(COMMAND ${CLI} gen cycle-chords 48 5 9 ${GRAPH}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gen failed: ${out}")
endif()

execute_process(COMMAND ${CLI} info ${GRAPH}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "minimum weight cycle: [0-9]+")
  message(FATAL_ERROR "info failed: ${out}")
endif()

execute_process(COMMAND ${CLI} run exact ${GRAPH} 3
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "witness:")
  message(FATAL_ERROR "run exact failed: ${out}")
endif()

execute_process(COMMAND ${CLI} run girth-approx ${GRAPH} 3
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "value: [0-9]+")
  message(FATAL_ERROR "run girth-approx failed: ${out}")
endif()

# Lossy-link run: answers survive 20% drops and the overhead is reported.
execute_process(COMMAND ${CLI} run exact ${GRAPH} 3 --fault-drop-prob=0.2
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "retransmitted: [0-9]+ words")
  message(FATAL_ERROR "run exact with drops failed: ${out}")
endif()

# A hopeless round budget must exit cleanly with a diagnostic, not abort.
execute_process(COMMAND ${CLI} run exact ${GRAPH} 3 --max-rounds=2
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 2 OR NOT err MATCHES "round_limit_exceeded")
  message(FATAL_ERROR "run with tiny --max-rounds: rc=${rc}: ${err}")
endif()

# The solve() modes report the dispatched algorithm and its guarantee.
execute_process(COMMAND ${CLI} run auto ${GRAPH} 3
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "algorithm: " OR NOT out MATCHES "guarantee: ")
  message(FATAL_ERROR "run auto failed: ${out}")
endif()

# --metrics prints the per-phase JSON; --metrics=FILE writes it. The JSON
# must be byte-identical between --threads=1 and --threads=8 on one seed.
execute_process(COMMAND ${CLI} run auto ${GRAPH} 3 --metrics
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "\"phases\": \\[" OR NOT out MATCHES "\"total\":")
  message(FATAL_ERROR "run auto --metrics failed: ${out}")
endif()

execute_process(COMMAND ${CLI} run approx ${GRAPH} 5 --metrics=${WORK}/m1.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORK}/m1.json)
  message(FATAL_ERROR "run approx --metrics=FILE failed: ${out}")
endif()
execute_process(COMMAND ${CLI} run approx ${GRAPH} 5 --threads=8
                --metrics=${WORK}/m8.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run approx --threads=8 --metrics failed: ${out}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/m1.json ${WORK}/m8.json RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "metrics JSON differs between --threads=1 and --threads=8")
endif()
file(READ ${WORK}/m1.json metrics_json)
if(NOT metrics_json MATCHES "\"error\": \"\"")
  message(FATAL_ERROR "metrics JSON reports an annotation error: ${metrics_json}")
endif()
