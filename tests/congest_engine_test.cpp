// Semantics of the CONGEST engine: bandwidth enforcement, round accounting,
// delivery order, wake-ups, cut metering. These are the properties every
// round-complexity measurement in the benches rests on.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "congest/arena.h"
#include "congest/dir_queue.h"
#include "congest/network.h"
#include "congest/protocol.h"
#include "congest/runner.h"
#include "congest/thread_pool.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "support/check.h"

namespace mwc::congest {
namespace {

using graph::Edge;
using graph::Graph;

Graph path_graph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(Edge{i, i + 1, 1});
  return Graph::undirected(n, edges);
}

// Node 0 sends `count` single-word messages to node 1 at round 0.
class Burst : public Protocol {
 public:
  explicit Burst(int count) : count_(count) {}
  void begin(NodeCtx& node) override {
    if (node.id() != 0) return;
    for (int i = 0; i < count_; ++i) node.send(1, Message{static_cast<Word>(i)});
  }
  void round(NodeCtx& node) override {
    for (const Delivery& m : node.inbox()) received_.push_back(m.msg[0]);
  }
  std::vector<Word> received_;

 private:
  int count_;
};

TEST(Engine, SingleMessageTakesOneRound) {
  Graph g = path_graph(2);
  Network net(g, /*seed=*/1);
  Burst proto(1);
  RunStats s = run_protocol(net, proto);
  EXPECT_EQ(s.rounds, 1u);
  EXPECT_EQ(s.messages, 1u);
  EXPECT_EQ(s.words, 1u);
  EXPECT_EQ(proto.received_, std::vector<Word>{0});
}

TEST(Engine, BandwidthSerializesBurst) {
  Graph g = path_graph(2);
  Network net(g, /*seed=*/1);
  Burst proto(10);
  RunStats s = run_protocol(net, proto);
  // One word per round per direction: 10 words take 10 rounds.
  EXPECT_EQ(s.rounds, 10u);
  EXPECT_EQ(s.words, 10u);
  EXPECT_EQ(proto.received_.size(), 10u);
}

TEST(Engine, WiderBandwidthShortensBurst) {
  Graph g = path_graph(2);
  NetworkConfig cfg;
  cfg.bandwidth_words = 5;
  Network net(g, /*seed=*/1, cfg);
  Burst proto(10);
  RunStats s = run_protocol(net, proto);
  EXPECT_EQ(s.rounds, 2u);
}

// Sends one multi-word message.
class BigMessage : public Protocol {
 public:
  explicit BigMessage(int words) : words_(words) {}
  void begin(NodeCtx& node) override {
    if (node.id() != 0) return;
    Message m;
    for (int i = 0; i < words_; ++i) m.push(static_cast<Word>(i));
    node.send(1, std::move(m));
  }
  void round(NodeCtx& node) override {
    if (!node.inbox().empty()) arrival_round_ = node.round();
  }
  std::uint64_t arrival_round_ = 0;

 private:
  int words_;
};

TEST(Engine, MultiWordMessageOccupiesLink) {
  Graph g = path_graph(2);
  Network net(g, /*seed=*/1);
  BigMessage proto(7);
  RunStats s = run_protocol(net, proto);
  // 7 words at 1 word/round: fully transmitted after round 6 (0-based),
  // delivered at engine round 7; run cost is 7 rounds.
  EXPECT_EQ(s.rounds, 7u);
  EXPECT_EQ(proto.arrival_round_, 7u);
}

TEST(Engine, OppositeDirectionsDoNotContend) {
  Graph g = path_graph(2);
  // Both nodes send 5 words to each other; directions are independent.
  class BothWays : public Protocol {
   public:
    void begin(NodeCtx& node) override {
      NodeId other = node.id() == 0 ? 1 : 0;
      for (int i = 0; i < 5; ++i) node.send(other, Message{static_cast<Word>(i)});
    }
    void round(NodeCtx&) override {}
  };
  Network net(g, /*seed=*/1);
  BothWays proto;
  RunStats s = run_protocol(net, proto);
  EXPECT_EQ(s.rounds, 5u);
  EXPECT_EQ(s.words, 10u);
}

TEST(Engine, PrioritySchedulesLowerFirst) {
  Graph g = path_graph(2);
  class Prioritized : public Protocol {
   public:
    void begin(NodeCtx& node) override {
      if (node.id() != 0) return;
      node.send(1, Message{100}, /*priority=*/100);
      node.send(1, Message{5}, /*priority=*/5);
      node.send(1, Message{50}, /*priority=*/50);
    }
    void round(NodeCtx& node) override {
      for (const Delivery& m : node.inbox()) order_.push_back(m.msg[0]);
    }
    std::vector<Word> order_;
  };
  Network net(g, /*seed=*/1);
  Prioritized proto;
  run_protocol(net, proto);
  EXPECT_EQ(proto.order_, (std::vector<Word>{5, 50, 100}));
}

TEST(Engine, FifoAmongEqualPriorities) {
  Graph g = path_graph(2);
  Burst proto(5);
  Network net(g, /*seed=*/1);
  run_protocol(net, proto);
  EXPECT_EQ(proto.received_, (std::vector<Word>{0, 1, 2, 3, 4}));
}

TEST(Engine, WakeAtFiresAndCostsIdleRounds) {
  Graph g = path_graph(2);
  class DelayedSender : public Protocol {
   public:
    void begin(NodeCtx& node) override {
      if (node.id() == 0) node.wake_at(50);
    }
    void round(NodeCtx& node) override {
      if (node.id() == 0 && node.round() == 50) {
        woke_at_ = node.round();
        node.send(1, Message{7});
      }
    }
    std::uint64_t woke_at_ = 0;
  };
  Network net(g, /*seed=*/1);
  DelayedSender proto;
  RunStats s = run_protocol(net, proto);
  EXPECT_EQ(proto.woke_at_, 50u);
  // Idle waiting is real time: the send at round 50 lands in round 51.
  EXPECT_EQ(s.rounds, 51u);
}

TEST(Engine, NoActivityCostsZeroRounds) {
  Graph g = path_graph(3);
  class Silent : public Protocol {
    void round(NodeCtx&) override {}
  };
  Network net(g, /*seed=*/1);
  Silent proto;
  RunStats s = run_protocol(net, proto);
  EXPECT_EQ(s.rounds, 0u);
  EXPECT_EQ(s.messages, 0u);
}

TEST(Engine, RoundsAccumulateAcrossRuns) {
  Graph g = path_graph(2);
  Network net(g, /*seed=*/1);
  Burst a(3), b(4);
  run_protocol(net, a);
  run_protocol(net, b);
  EXPECT_EQ(net.stats().rounds, 7u);
  EXPECT_EQ(net.stats().words, 7u);
}

TEST(Engine, SendToNonNeighborFailsCheck) {
  Graph g = path_graph(3);  // 0-1-2; 0 and 2 not adjacent
  class BadSend : public Protocol {
    void begin(NodeCtx& node) override {
      if (node.id() == 0) node.send(2, Message{1});
    }
    void round(NodeCtx&) override {}
  };
  Network net(g, /*seed=*/1);
  BadSend proto;
  support::ScopedChecksThrow guard;
  try {
    run_protocol(net, proto);
    FAIL() << "expected a check failure";
  } catch (const support::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("not a communication neighbor"),
              std::string::npos);
  }
}

TEST(Engine, DirectedArcsShareBidirectionalLink) {
  // Directed graph 0->1; node 1 can still send to node 0 (links are
  // bidirectional per the model).
  std::vector<Edge> edges{{0, 1, 1}};
  Graph g = Graph::directed(2, edges);
  class BackwardsSend : public Protocol {
   public:
    void begin(NodeCtx& node) override {
      if (node.id() == 1) node.send(0, Message{9});
    }
    void round(NodeCtx& node) override {
      if (node.id() == 0 && !node.inbox().empty()) got_ = true;
    }
    bool got_ = false;
  };
  Network net(g, /*seed=*/1);
  BackwardsSend proto;
  run_protocol(net, proto);
  EXPECT_TRUE(proto.got_);
}

TEST(Engine, CutMeterCountsCrossingWordsOnly) {
  Graph g = path_graph(4);  // 0-1 | 2-3 with cut between 1 and 2
  Network net(g, /*seed=*/1);
  net.set_cut({false, false, true, true});
  EXPECT_EQ(net.cut_link_count(), 1);
  class CrossTalk : public Protocol {
    void begin(NodeCtx& node) override {
      if (node.id() == 0) node.send(1, Message{1, 2, 3});  // same side: 3 words
      if (node.id() == 1) node.send(2, Message{1, 2});     // crossing: 2 words
      if (node.id() == 3) node.send(2, Message{1});        // same side: 1 word
    }
    void round(NodeCtx&) override {}
  };
  CrossTalk proto;
  run_protocol(net, proto);
  EXPECT_EQ(net.stats().cut_words, 2u);
  EXPECT_EQ(net.stats().words, 6u);
}

TEST(Engine, MaxQueueWordsTracksBacklog) {
  Graph g = path_graph(2);
  Network net(g, /*seed=*/1);
  Burst proto(10);
  RunStats s = run_protocol(net, proto);
  // All ten words are enqueued in round 0 before any transmission.
  EXPECT_EQ(s.max_queue_words, 10u);

  Network net2(g, /*seed=*/1);
  Burst one(1);
  RunStats s2 = run_protocol(net2, one);
  EXPECT_EQ(s2.max_queue_words, 1u);
}

TEST(Engine, PerNodeRngDeterministicAcrossIdenticalNetworks) {
  Graph g = path_graph(3);
  class RngProbe : public Protocol {
   public:
    void begin(NodeCtx& node) override { vals_.push_back(node.rng().next_u64()); }
    void round(NodeCtx&) override {}
    std::vector<std::uint64_t> vals_;
  };
  Network net1(g, /*seed=*/99), net2(g, /*seed=*/99), net3(g, /*seed=*/100);
  RngProbe p1, p2, p3;
  run_protocol(net1, p1);
  run_protocol(net2, p2);
  run_protocol(net3, p3);
  EXPECT_EQ(p1.vals_, p2.vals_);
  EXPECT_NE(p1.vals_, p3.vals_);
}

TEST(Packing, TagRoundtrip) {
  for (Word tag : {0ull, 3ull, 7ull}) {
    for (Word value : {0ull, 1ull, (1ull << 60), (1ull << 61) - 1}) {
      Word packed = pack_tag(tag, value);
      EXPECT_EQ(tag_of(packed), tag);
      EXPECT_EQ(value_of(packed), value);
    }
  }
}

TEST(Packing, IdValueRoundtrip) {
  for (Word id : {0ull, 17ull, (1ull << 24) - 1}) {
    for (Word value : {0ull, 42ull, (1ull << 40) - 1}) {
      Word packed = pack_id_value(id, value);
      EXPECT_EQ(id_of(packed), id);
      EXPECT_EQ(id_value_of(packed), value);
    }
  }
}

TEST(Packing, InfWeightFitsTagValue) {
  // kInfWeight = 2^60 must survive the 61-bit value field (convergecast of
  // all-infinite mu vectors).
  Word packed = pack_tag(1, static_cast<Word>(graph::kInfWeight));
  EXPECT_EQ(static_cast<graph::Weight>(value_of(packed)), graph::kInfWeight);
}

TEST(MessageType, InlineAndHeapStorage) {
  Message m;
  for (Word i = 0; i < 20; ++i) {
    m.push(i * 3);
    EXPECT_EQ(m.size(), i + 1);
    for (Word j = 0; j <= i; ++j) EXPECT_EQ(m[static_cast<std::uint32_t>(j)], j * 3);
  }
}

// An algorithm that never quiesces must not take the process down: the run
// stops at the limit and reports how it ended.
class PingPong : public Protocol {
  void begin(NodeCtx& node) override {
    if (node.id() == 0) node.send(1, Message{0});
  }
  void round(NodeCtx& node) override {
    for (const Delivery& m : node.inbox()) node.send(m.from, Message{m.msg[0] + 1});
  }
};

TEST(Engine, MaxRoundsGuardReportsOutcome) {
  Graph g = path_graph(2);
  NetworkConfig cfg;
  cfg.max_rounds_per_run = 10;
  Network net(g, /*seed=*/1, cfg);
  PingPong proto;
  RunResult result = run_protocol_result(net, proto);
  EXPECT_EQ(result.outcome, RunOutcome::kRoundLimitExceeded);
  EXPECT_FALSE(result.ok());
  EXPECT_LE(result.stats.rounds, 11u);
}

TEST(Engine, MaxRoundsGuardThrowsFromRunProtocol) {
  Graph g = path_graph(2);
  NetworkConfig cfg;
  cfg.max_rounds_per_run = 10;
  Network net(g, /*seed=*/1, cfg);
  PingPong proto;
  try {
    run_protocol(net, proto);
    FAIL() << "expected RunAbortedError";
  } catch (const RunAbortedError& e) {
    EXPECT_EQ(e.outcome(), RunOutcome::kRoundLimitExceeded);
    EXPECT_NE(std::string(e.what()).find("round_limit_exceeded"),
              std::string::npos);
  }
}

// ---------- DirQueue (flat per-direction heap) ------------------------------

TEST(DirQueueType, PopsInPrioritySeqOrder) {
  DirQueue q;
  // Mixed priorities, seqs deliberately out of push order within a priority.
  q.push(/*priority=*/5, /*seq=*/3, Message{30});
  q.push(1, 7, Message{70});
  q.push(5, 1, Message{10});
  q.push(1, 2, Message{20});
  q.push(-4, 9, Message{90});
  ASSERT_EQ(q.size(), 5u);
  const std::int64_t want_prio[] = {-4, 1, 1, 5, 5};
  const std::uint64_t want_seq[] = {9, 2, 7, 1, 3};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.top().priority, want_prio[i]) << i;
    EXPECT_EQ(q.top().seq, want_seq[i]) << i;
    Message m = q.take_top();
    EXPECT_EQ(m[0], want_seq[i] * 10);  // payload encodes seq in this test
  }
  EXPECT_TRUE(q.empty());
}

TEST(DirQueueType, EntriesExposeAllQueuedForAccounting) {
  DirQueue q;
  std::uint64_t pushed_words = 0;
  for (std::uint64_t s = 0; s < 9; ++s) {
    Message m;
    for (Word w = 0; w <= s; ++w) m.push(w);
    pushed_words += m.size();
    q.push(static_cast<std::int64_t>(s % 3), s, std::move(m));
  }
  std::uint64_t seen_words = 0;
  for (const QueuedMsg& e : q.entries()) seen_words += e.msg.size();
  EXPECT_EQ(seen_words, pushed_words);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.entries().size(), 0u);
}

// ---------- Message / WordPool arena ----------------------------------------

TEST(MessageType, CopyAndMoveAcrossSpillBoundary) {
  Message small{1, 2, 3};
  Message big;
  for (Word i = 0; i < 40; ++i) big.push(i);
  Message small_copy = small;
  Message big_copy = big;
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(small_copy[i], small[i]);
  for (std::uint32_t i = 0; i < 40; ++i) EXPECT_EQ(big_copy[i], i);
  Message moved = std::move(big);
  EXPECT_EQ(moved.size(), 40u);
  EXPECT_EQ(big.size(), 0u);  // NOLINT(bugprone-use-after-move): defined empty
  for (std::uint32_t i = 0; i < 40; ++i) EXPECT_EQ(moved[i], i);
  big = std::move(moved);  // move-assign back over the moved-from shell
  EXPECT_EQ(big.size(), 40u);
  small = big;  // copy-assign inline <- spilled
  EXPECT_EQ(small.size(), 40u);
  EXPECT_EQ(small[39], 39u);
}

TEST(WordPoolArena, BlocksAreRecycled) {
  WordPool::reset_global_stats();
  // Round 1: allocate spilled messages, then free them all.
  {
    std::vector<Message> msgs(16);
    for (Message& m : msgs) {
      for (Word i = 0; i < 64; ++i) m.push(i);
    }
  }
  const auto after_first = WordPool::global_stats();
  EXPECT_GT(after_first.fresh, 0u);
  // Round 2: the same shapes again - served from the freelists, not new[].
  {
    std::vector<Message> msgs(16);
    for (Message& m : msgs) {
      for (Word i = 0; i < 64; ++i) m.push(i);
    }
  }
  const auto after_second = WordPool::global_stats();
  EXPECT_EQ(after_second.fresh, after_first.fresh)
      << "second round should allocate nothing fresh";
  EXPECT_GT(after_second.reused, after_first.reused);
}

TEST(WordPoolArena, RoundCapIsPowerOfTwoAtLeastRequest) {
  for (std::uint32_t req = 1; req < 200; ++req) {
    const std::uint32_t cap = WordPool::round_cap(req);
    EXPECT_GE(cap, req);
    EXPECT_EQ(cap & (cap - 1), 0u) << "cap must be a power of two";
  }
}

// ---------- ThreadPool ------------------------------------------------------

TEST(ThreadPoolType, RunsEveryShardExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kShards = 100;
  std::vector<std::atomic<int>> hits(kShards);
  pool.run(kShards, [&](int s) { hits[static_cast<std::size_t>(s)]++; });
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(hits[static_cast<std::size_t>(s)].load(), 1) << s;
  }
  // Reusable: a second batch on the same pool.
  pool.run(kShards, [&](int s) { hits[static_cast<std::size_t>(s)]++; });
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(hits[static_cast<std::size_t>(s)].load(), 2) << s;
  }
}

TEST(ThreadPoolType, PropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.run(16, [&](int s) {
        if (s % 2 == 1) throw std::runtime_error("shard failed");
      }),
      std::runtime_error);
  // Pool still usable after an exceptional batch.
  std::atomic<int> ok{0};
  pool.run(8, [&](int) { ok++; });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPoolType, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.run(5, [&](int) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

// ---------- parallel engine smoke (semantics, not determinism) --------------

TEST(Engine, ParallelBurstDeliversSameOrder) {
  Graph g = path_graph(2);
  NetworkConfig cfg;
  cfg.threads = 4;
  cfg.clamp_threads = false;  // the burst must really run on 4 workers
  Network net(g, /*seed=*/1, cfg);
  Burst proto(7);
  run_protocol(net, proto);
  ASSERT_EQ(proto.received_.size(), 7u);
  for (Word i = 0; i < 7; ++i) EXPECT_EQ(proto.received_[i], i);
}

}  // namespace
}  // namespace mwc::congest
