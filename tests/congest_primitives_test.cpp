// Distributed primitives vs sequential references, plus round-bound checks
// (broadcast O(M+D), convergecast O(D), k-source BFS O(h+k), source
// detection O(sigma+h)).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "congest/bellman_ford.h"
#include "congest/bfs_tree.h"
#include "congest/broadcast.h"
#include "congest/convergecast.h"
#include "congest/multi_bfs.h"
#include "congest/neighbor_exchange.h"
#include "congest/network.h"
#include "congest/runner.h"
#include "congest/source_detection.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "graph/transforms.h"
#include "support/rng.h"

namespace mwc::congest {
namespace {

using graph::Edge;
using graph::Graph;
using graph::NodeId;
using graph::WeightRange;

// ---------- BFS tree -------------------------------------------------------

TEST(BfsTree, DepthsMatchBfsAndParentsConsistent) {
  support::Rng rng(1);
  Graph g = graph::random_connected(60, 140, WeightRange{1, 9}, rng);
  Network net(g, /*seed=*/5);
  RunStats stats;
  BfsTreeResult tree = build_bfs_tree(net, /*root=*/0, &stats);

  auto ref = graph::seq::bfs_hops(g.communication_topology(), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(tree.depth[static_cast<std::size_t>(v)], ref[static_cast<std::size_t>(v)]);
    if (v == 0) {
      EXPECT_EQ(tree.parent[static_cast<std::size_t>(v)], graph::kNoNode);
    } else {
      NodeId p = tree.parent[static_cast<std::size_t>(v)];
      EXPECT_EQ(tree.depth[static_cast<std::size_t>(v)],
                tree.depth[static_cast<std::size_t>(p)] + 1);
      // v appears in p's child list exactly once.
      const auto& ch = tree.children[static_cast<std::size_t>(p)];
      EXPECT_EQ(std::count(ch.begin(), ch.end(), v), 1);
    }
  }
  int diam = graph::seq::communication_diameter(g);
  EXPECT_LE(tree.height, diam);
  // Flooding finishes within a small constant of D.
  EXPECT_LE(stats.rounds, static_cast<std::uint64_t>(3 * diam + 3));
}

TEST(BfsTree, WorksOnDirectedProblemGraphs) {
  support::Rng rng(2);
  Graph g = graph::random_strongly_connected(40, 100, WeightRange{1, 3}, rng);
  Network net(g, /*seed=*/5);
  BfsTreeResult tree = build_bfs_tree(net);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    EXPECT_NE(tree.parent[static_cast<std::size_t>(v)], graph::kNoNode);
  }
}

// ---------- Convergecast ---------------------------------------------------

TEST(Convergecast, ComputesMinMaxSum) {
  support::Rng rng(3);
  Graph g = graph::random_connected(50, 100, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/7);
  BfsTreeResult tree = build_bfs_tree(net);
  std::vector<graph::Weight> values;
  for (int v = 0; v < 50; ++v) values.push_back((v * 37 + 11) % 101);
  graph::Weight expect_min = *std::min_element(values.begin(), values.end());
  graph::Weight expect_max = *std::max_element(values.begin(), values.end());
  graph::Weight expect_sum = 0;
  for (auto v : values) expect_sum += v;

  EXPECT_EQ(convergecast(net, tree, values, AggregateOp::kMin), expect_min);
  EXPECT_EQ(convergecast(net, tree, values, AggregateOp::kMax), expect_max);
  EXPECT_EQ(convergecast(net, tree, values, AggregateOp::kSum), expect_sum);
}

TEST(Convergecast, CostsLinearInDiameter) {
  support::Rng rng(4);
  Graph g = graph::cycle_with_chords(100, 0, WeightRange{1, 1}, rng);  // D = 50
  Network net(g, /*seed=*/7);
  BfsTreeResult tree = build_bfs_tree(net);
  std::vector<graph::Weight> values(100, 1);
  RunStats stats;
  convergecast(net, tree, values, AggregateOp::kSum, &stats);
  int diam = graph::seq::communication_diameter(g);
  EXPECT_LE(stats.rounds, static_cast<std::uint64_t>(2 * diam + 4));
}

// ---------- Broadcast ------------------------------------------------------

TEST(Broadcast, EveryNodeReceivesEveryItem) {
  support::Rng rng(5);
  Graph g = graph::random_connected(40, 80, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/9);
  BfsTreeResult tree = build_bfs_tree(net);
  std::vector<std::vector<BroadcastItem>> items(40);
  std::size_t total = 0;
  for (int v = 0; v < 40; v += 3) {
    items[static_cast<std::size_t>(v)].push_back({static_cast<Word>(v), 7});
    ++total;
  }
  BroadcastResult result = broadcast(net, tree, items);
  EXPECT_EQ(result.items().size(), total);
  // Each origin's payload present exactly once.
  for (int v = 0; v < 40; v += 3) {
    int found = 0;
    for (const auto& item : result.items()) {
      if (item[0] == static_cast<Word>(v)) ++found;
    }
    EXPECT_EQ(found, 1);
  }
}

TEST(Broadcast, RoundsLinearInItemsPlusDiameter) {
  support::Rng rng(6);
  Graph g = graph::cycle_with_chords(64, 10, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/11);
  BfsTreeResult tree = build_bfs_tree(net);
  const int M = 200;
  std::vector<std::vector<BroadcastItem>> items(64);
  support::Rng where(77);
  for (int i = 0; i < M; ++i) {
    items[where.next_below(64)].push_back({static_cast<Word>(i)});
  }
  RunStats stats;
  BroadcastResult result = broadcast(net, tree, items, &stats);
  EXPECT_EQ(result.items().size(), static_cast<std::size_t>(M));
  int diam = graph::seq::communication_diameter(g);
  // O(M + D) with a small constant (items are 1 word, frame adds 1).
  EXPECT_LE(stats.rounds, static_cast<std::uint64_t>(4 * M + 6 * diam + 10));
}

TEST(Broadcast, SingleNodeNetwork) {
  Graph g = Graph::undirected(1, std::vector<Edge>{});
  Network net(g, /*seed=*/1);
  BfsTreeResult tree = build_bfs_tree(net);
  std::vector<std::vector<BroadcastItem>> items(1);
  items[0].push_back({42});
  BroadcastResult result = broadcast(net, tree, items);
  ASSERT_EQ(result.items().size(), 1u);
  EXPECT_EQ(result.items()[0][0], 42u);
}

// ---------- MultiBfs (unit delay = k-source BFS) ---------------------------

struct BfsCase {
  bool directed;
  int n, m, k;
  std::uint64_t seed;
};

class MultiBfsExactness : public ::testing::TestWithParam<BfsCase> {};

TEST_P(MultiBfsExactness, MatchesSequentialBfs) {
  const BfsCase& c = GetParam();
  support::Rng rng(c.seed);
  Graph g = c.directed
                ? graph::random_strongly_connected(c.n, c.m, WeightRange{1, 1}, rng)
                : graph::random_connected(c.n, c.m, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/c.seed + 100);
  MultiBfsParams params;
  for (int i = 0; i < c.k; ++i) params.sources.push_back((i * 7) % c.n);
  std::sort(params.sources.begin(), params.sources.end());
  params.sources.erase(std::unique(params.sources.begin(), params.sources.end()),
                       params.sources.end());
  MultiBfs bfs = run_multi_bfs(net, params);
  for (std::size_t i = 0; i < params.sources.size(); ++i) {
    auto ref = graph::seq::bfs_hops(g, params.sources[i]);
    for (NodeId v = 0; v < c.n; ++v) {
      EXPECT_EQ(bfs.dist(v, static_cast<int>(i)), ref[static_cast<std::size_t>(v)])
          << "source " << params.sources[i] << " node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiBfsExactness,
    ::testing::Values(BfsCase{false, 40, 80, 1, 1}, BfsCase{false, 60, 150, 8, 2},
                      BfsCase{false, 100, 200, 25, 3}, BfsCase{true, 40, 100, 1, 4},
                      BfsCase{true, 60, 160, 8, 5}, BfsCase{true, 100, 260, 25, 6},
                      BfsCase{false, 80, 100, 80, 7}, BfsCase{true, 50, 120, 50, 8}));

TEST(MultiBfs, HopLimitMatchesReference) {
  support::Rng rng(9);
  Graph g = graph::random_strongly_connected(50, 120, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/13);
  const int h = 3;
  MultiBfsParams params;
  params.sources = {0, 5, 10};
  params.tick_limit = h;
  MultiBfs bfs = run_multi_bfs(net, params);
  for (int i = 0; i < 3; ++i) {
    auto ref = graph::seq::hop_limited_dist(graph::unweighted_shape(g),
                                            params.sources[static_cast<std::size_t>(i)], h);
    for (NodeId v = 0; v < 50; ++v) {
      EXPECT_EQ(bfs.dist(v, i), ref[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(MultiBfs, ReverseComputesDistanceToSource) {
  support::Rng rng(10);
  Graph g = graph::random_strongly_connected(40, 100, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/17);
  MultiBfsParams params;
  params.sources = {7};
  params.reverse = true;
  MultiBfs bfs = run_multi_bfs(net, params);
  auto ref = graph::seq::bfs_hops(g.reversed(), 7);
  for (NodeId v = 0; v < 40; ++v) {
    EXPECT_EQ(bfs.dist(v, 0), ref[static_cast<std::size_t>(v)]);
  }
}

TEST(MultiBfs, ParentsFormShortestPathTree) {
  support::Rng rng(11);
  Graph g = graph::random_connected(60, 150, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/19);
  MultiBfsParams params;
  params.sources = {0};
  MultiBfs bfs = run_multi_bfs(net, params);
  for (NodeId v = 1; v < 60; ++v) {
    NodeId p = bfs.parent(v, 0);
    ASSERT_NE(p, graph::kNoNode);
    EXPECT_EQ(bfs.dist(v, 0), bfs.dist(p, 0) + 1);
  }
}

TEST(MultiBfs, PipeliningRoundBound) {
  // k-source BFS should cost O(h + k), not O(h * k).
  support::Rng rng(12);
  Graph g = graph::cycle_with_chords(128, 16, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/23);
  MultiBfsParams params;
  for (NodeId v = 0; v < 32; ++v) params.sources.push_back(v * 4);
  RunStats stats;
  run_multi_bfs(net, params, &stats);
  int diam = graph::seq::communication_diameter(g);
  EXPECT_LE(stats.rounds,
            static_cast<std::uint64_t>(8 * (diam + 32)));  // far below 32 * diam
}

TEST(MultiBfs, StartOffsetsDelayButStayExact) {
  support::Rng rng(13);
  Graph g = graph::random_connected(50, 120, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/29);
  MultiBfsParams params;
  params.sources = {0, 10, 20};
  params.start_offset = {5, 0, 17};
  MultiBfs bfs = run_multi_bfs(net, params);
  for (int i = 0; i < 3; ++i) {
    auto ref = graph::seq::bfs_hops(g, params.sources[static_cast<std::size_t>(i)]);
    for (NodeId v = 0; v < 50; ++v) EXPECT_EQ(bfs.dist(v, i), ref[static_cast<std::size_t>(v)]);
  }
}

// ---------- MultiBfs (weight delay = stretched-graph BFS) ------------------

TEST(MultiBfsWeighted, WeightDelayComputesWeightedDistances) {
  support::Rng rng(14);
  Graph g = graph::random_connected(40, 90, WeightRange{1, 7}, rng);
  Network net(g, /*seed=*/31);
  MultiBfsParams params;
  params.sources = {0, 13};
  params.mode = DelayMode::kWeightDelay;
  MultiBfs bfs = run_multi_bfs(net, params);
  for (int i = 0; i < 2; ++i) {
    auto ref = graph::seq::dijkstra(g, params.sources[static_cast<std::size_t>(i)]);
    for (NodeId v = 0; v < 40; ++v) EXPECT_EQ(bfs.dist(v, i), ref[static_cast<std::size_t>(v)]);
  }
}

TEST(MultiBfsWeighted, WeightDelayRoundsTrackWeightedDepth) {
  // A path of heavy edges: distance 10*w ticks should cost ~that many rounds
  // (the stretched-graph semantics of Corollary 4.1).
  std::vector<Edge> edges;
  for (int i = 0; i < 10; ++i) edges.push_back(Edge{i, i + 1, 6});
  Graph g = Graph::undirected(11, edges);
  Network net(g, /*seed=*/33);
  MultiBfsParams params;
  params.sources = {0};
  params.mode = DelayMode::kWeightDelay;
  RunStats stats;
  MultiBfs bfs = run_multi_bfs(net, params, &stats);
  EXPECT_EQ(bfs.dist(10, 0), 60);
  EXPECT_GE(stats.rounds, 60u);
  EXPECT_LE(stats.rounds, 70u);
}

TEST(MultiBfsWeighted, TickLimitRestrictsWeightedDistance) {
  std::vector<Edge> edges{{0, 1, 4}, {1, 2, 4}, {0, 2, 10}};
  Graph g = Graph::directed(3, edges);
  Network net(g, /*seed=*/35);
  MultiBfsParams params;
  params.sources = {0};
  params.mode = DelayMode::kWeightDelay;
  params.tick_limit = 9;
  MultiBfs bfs = run_multi_bfs(net, params);
  EXPECT_EQ(bfs.dist(1, 0), 4);
  EXPECT_EQ(bfs.dist(2, 0), 8);  // 4+4 within budget; direct arc (10) is not
}

TEST(MultiBfsWeighted, GraphOverrideUsesScaledWeights) {
  support::Rng rng(15);
  Graph g = graph::random_connected(30, 60, WeightRange{1, 9}, rng);
  Graph doubled = graph::reweighted(g, [](graph::Weight w) { return 2 * w; });
  Network net(g, /*seed=*/37);
  MultiBfsParams params;
  params.sources = {0};
  params.mode = DelayMode::kWeightDelay;
  params.graph_override = &doubled;
  MultiBfs bfs = run_multi_bfs(net, params);
  auto ref = graph::seq::dijkstra(g, 0);
  for (NodeId v = 0; v < 30; ++v) {
    EXPECT_EQ(bfs.dist(v, 0), 2 * ref[static_cast<std::size_t>(v)]);
  }
}

// ---------- Exact SSSP (async Bellman-Ford) ---------------------------------

TEST(ExactSssp, MatchesDijkstraDirectedWeighted) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_strongly_connected(40, 110, WeightRange{1, 20}, rng);
    Network net(g, /*seed=*/seed + 41);
    std::vector<NodeId> sources{0, 9, 21};
    SsspResult result = exact_sssp(net, sources);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      auto ref = graph::seq::dijkstra(g, sources[i]);
      for (NodeId v = 0; v < 40; ++v) {
        EXPECT_EQ(result.at(v, static_cast<int>(i)), ref[static_cast<std::size_t>(v)]);
      }
    }
  }
}

TEST(ExactSssp, ReverseMatchesReversedDijkstra) {
  support::Rng rng(16);
  Graph g = graph::random_strongly_connected(35, 90, WeightRange{1, 15}, rng);
  Network net(g, /*seed=*/43);
  SsspResult result = exact_sssp(net, {4}, /*reverse=*/true);
  auto ref = graph::seq::dijkstra(g.reversed(), 4);
  for (NodeId v = 0; v < 35; ++v) {
    EXPECT_EQ(result.at(v, 0), ref[static_cast<std::size_t>(v)]);
  }
}

// ---------- Approximate hop-limited SSSP (scaling ladder) -------------------

struct ApproxCase {
  int n, m, k, h;
  double eps;
  std::uint64_t seed;
  bool directed;
};

class ApproxHopSssp : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(ApproxHopSssp, SoundAndWithinOnePlusEps) {
  const ApproxCase& c = GetParam();
  support::Rng rng(c.seed);
  Graph g = c.directed
                ? graph::random_strongly_connected(c.n, c.m, WeightRange{1, 12}, rng)
                : graph::random_connected(c.n, c.m, WeightRange{1, 12}, rng);
  Network net(g, /*seed=*/c.seed + 51);
  ApproxHopSsspParams params;
  for (int i = 0; i < c.k; ++i) params.sources.push_back((i * 11) % c.n);
  std::sort(params.sources.begin(), params.sources.end());
  params.sources.erase(std::unique(params.sources.begin(), params.sources.end()),
                       params.sources.end());
  params.hop_limit = c.h;
  params.epsilon = c.eps;
  SsspResult result = approx_hop_sssp(net, params);
  for (std::size_t i = 0; i < params.sources.size(); ++i) {
    auto exact = graph::seq::dijkstra(g, params.sources[i]);
    auto hop_ref = graph::seq::hop_limited_dist(g, params.sources[i], c.h);
    for (NodeId v = 0; v < c.n; ++v) {
      graph::Weight est = result.at(v, static_cast<int>(i));
      // Soundness: estimate is the weight of a real path, so >= true dist.
      if (est != graph::kInfWeight) {
        EXPECT_GE(est, exact[static_cast<std::size_t>(v)]);
      }
      // Completeness: within (1+eps) of the h-hop-limited distance.
      graph::Weight ref = hop_ref[static_cast<std::size_t>(v)];
      if (ref != graph::kInfWeight) {
        ASSERT_NE(est, graph::kInfWeight);
        EXPECT_LE(static_cast<double>(est),
                  (1.0 + c.eps) * static_cast<double>(ref) + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproxHopSssp,
    ::testing::Values(ApproxCase{40, 90, 3, 6, 0.5, 1, false},
                      ApproxCase{40, 90, 3, 6, 0.25, 2, false},
                      ApproxCase{60, 150, 6, 10, 0.5, 3, true},
                      ApproxCase{60, 150, 6, 4, 1.0, 4, true},
                      ApproxCase{30, 60, 30, 8, 0.5, 5, false}));

// ---------- Source detection ------------------------------------------------

TEST(SourceDetection, FindsSigmaNearestSources) {
  support::Rng rng(18);
  Graph g = graph::random_connected(60, 130, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/61);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < 60; v += 4) sources.push_back(v);
  const int sigma = 4, h = 5;
  SourceDetectionResult result = source_detection(net, sources, sigma, h);

  for (NodeId v = 0; v < 60; ++v) {
    // Reference: all sources within h hops sorted by (dist, id), top sigma.
    std::vector<std::pair<graph::Weight, NodeId>> ref;
    for (NodeId s : sources) {
      auto d = graph::seq::bfs_hops(g, s);
      if (d[static_cast<std::size_t>(v)] <= h) {
        ref.emplace_back(d[static_cast<std::size_t>(v)], s);
      }
    }
    std::sort(ref.begin(), ref.end());
    if (ref.size() > sigma) ref.resize(sigma);
    const auto& got = result.detected[static_cast<std::size_t>(v)];
    ASSERT_EQ(got.size(), ref.size()) << "node " << v;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].d, ref[i].first);
      EXPECT_EQ(got[i].source, ref[i].second);
    }
  }
}

TEST(SourceDetection, RoundsLinearInSigmaPlusH) {
  support::Rng rng(19);
  Graph g = graph::cycle_with_chords(200, 40, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/67);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < 200; ++v) sources.push_back(v);  // all nodes
  const int sigma = 8, h = 14;
  RunStats stats;
  source_detection(net, sources, sigma, h, &stats);
  // With 200 sources but sigma=8, rounds must stay near O(sigma + h),
  // far below O(#sources).
  EXPECT_LE(stats.rounds, static_cast<std::uint64_t>(12 * (sigma + h)));
}

// ---------- Neighbor exchange -----------------------------------------------

TEST(NeighborExchange, DeliversPerNeighborPayloads) {
  support::Rng rng(23);
  Graph g = graph::random_connected(30, 70, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/71);
  NeighborExchangeResult result = neighbor_exchange(net, [](NodeId v, NodeId u) {
    // Payload encodes both endpoints so mixups are detectable; length
    // varies per sender.
    std::vector<Word> words;
    for (int i = 0; i <= v % 3; ++i) {
      words.push_back(static_cast<Word>(v) * 1000 + static_cast<Word>(u));
    }
    return words;
  });
  for (NodeId v = 0; v < 30; ++v) {
    for (NodeId u : net.comm_neighbors(v)) {
      const auto& got = result.received(v, u);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(u % 3) + 1);
      for (Word w : got) {
        EXPECT_EQ(w, static_cast<Word>(u) * 1000 + static_cast<Word>(v));
      }
    }
  }
}

TEST(NeighborExchange, RoundsEqualMaxListLength) {
  support::Rng rng(29);
  Graph g = graph::random_connected(40, 90, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/73);
  const int list_len = 25;
  RunStats stats;
  neighbor_exchange(
      net,
      [&](NodeId, NodeId) { return std::vector<Word>(list_len, 7); }, &stats);
  // All links run in parallel: exactly list_len rounds.
  EXPECT_EQ(stats.rounds, static_cast<std::uint64_t>(list_len));
}

TEST(NeighborExchange, EmptyPayloadsCostNothing) {
  support::Rng rng(31);
  Graph g = graph::random_connected(20, 40, WeightRange{1, 1}, rng);
  Network net(g, /*seed=*/79);
  RunStats stats;
  NeighborExchangeResult result = neighbor_exchange(
      net, [](NodeId, NodeId) { return std::vector<Word>{}; }, &stats);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_TRUE(result.received(0, net.comm_neighbors(0)[0]).empty());
}

}  // namespace
}  // namespace mwc::congest
