// The congestion observatory's contracts, unit level: the ledger's top-K
// selection and tie-breaking, the timeline ring's eviction accounting,
// bind() idempotency, snapshot JSON shape (parsed back with support/json.h),
// the bound-adherence fit, and the solve() integration - sections appear
// exactly when requested, a user-attached ledger survives, and the default
// snapshot JSON keeps the pre-observatory shape. Cross-thread byte-identity
// lives in metrics_determinism_test; the HTML renderer and perf gate are
// covered by tools/ci.sh's perf stage.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "congest/congestion.h"
#include "congest/metrics.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/sequential.h"
#include "mwc/api.h"
#include "mwc/bounds.h"
#include "support/json.h"
#include "support/rng.h"

namespace mwc {
namespace {

using congest::AdherenceReport;
using congest::CongestionLedger;
using congest::CongestionOptions;
using congest::CongestionSnapshot;
using congest::Network;
using congest::NetworkConfig;
using graph::Graph;
using graph::WeightRange;

std::vector<std::pair<graph::NodeId, graph::NodeId>> four_dirs() {
  return {{0, 1}, {1, 0}, {1, 2}, {2, 1}};
}

TEST(CongestionLedger, TopKSelectionAndDeterministicTies) {
  CongestionOptions opt;
  opt.top_k = 2;
  CongestionLedger ledger(opt);
  ledger.bind(four_dirs());
  ledger.add_dir_words(0, 5);
  ledger.add_dir_words(1, 9);
  ledger.add_dir_words(2, 5);
  ledger.add_dir_words(3, 1);

  const CongestionSnapshot snap = ledger.snapshot();
  EXPECT_TRUE(snap.observed);
  EXPECT_EQ(snap.total_words, 20u);
  ASSERT_EQ(snap.top_links.size(), 2u);
  EXPECT_EQ(snap.top_links[0], (congest::LinkLoad{1, 0, 9}));
  // 5-word tie between (0,1) and (1,2): smaller (from, to) wins.
  EXPECT_EQ(snap.top_links[1], (congest::LinkLoad{0, 1, 5}));
}

TEST(CongestionLedger, IdleLinksNeverAppear) {
  CongestionLedger ledger;
  ledger.bind(four_dirs());
  ledger.add_dir_words(2, 3);
  const CongestionSnapshot snap = ledger.snapshot();
  ASSERT_EQ(snap.top_links.size(), 1u);
  EXPECT_EQ(snap.top_links[0], (congest::LinkLoad{1, 2, 3}));
}

TEST(CongestionLedger, TimelineRingEvictsOldestAndCounts) {
  CongestionOptions opt;
  opt.timeline_capacity = 3;
  CongestionLedger ledger(opt);
  ledger.bind(four_dirs());
  for (std::uint64_t r = 0; r < 5; ++r) {
    ledger.on_round(/*run=*/1, /*round=*/r, /*frontier_nodes=*/r + 1,
                    /*words=*/10 * r, /*backlog=*/r);
  }
  const CongestionSnapshot snap = ledger.snapshot();
  EXPECT_EQ(snap.rounds_observed, 5u);
  EXPECT_EQ(snap.timeline_dropped, 2u);
  ASSERT_EQ(snap.timeline.size(), 3u);
  // Oldest retained first: rounds 2, 3, 4.
  EXPECT_EQ(snap.timeline.front().round, 2u);
  EXPECT_EQ(snap.timeline.back().round, 4u);
  EXPECT_EQ(snap.timeline.back().frontier_nodes, 5u);
  EXPECT_EQ(snap.timeline.back().words, 40u);
}

TEST(CongestionLedger, RebindSameTableKeepsData) {
  CongestionLedger ledger;
  ledger.bind(four_dirs());
  ledger.add_dir_words(0, 7);
  ledger.bind(four_dirs());  // solve() re-attaches around a user's ledger
  EXPECT_EQ(ledger.snapshot().total_words, 7u);
  // A genuinely different table starts the accumulators over.
  ledger.bind({{0, 1}, {1, 0}});
  EXPECT_EQ(ledger.snapshot().total_words, 0u);
}

TEST(CongestionLedger, EngineMarksMaxFoldAcrossRuns) {
  CongestionLedger ledger;
  ledger.bind(four_dirs());
  ledger.note_engine_marks(4, 10);
  ledger.note_engine_marks(9, 2);
  const CongestionSnapshot snap = ledger.snapshot();
  EXPECT_EQ(snap.spill_peak_slots, 9u);
  EXPECT_EQ(snap.overflow_peak_entries, 10u);
}

TEST(CongestionSnapshot, JsonRoundTripsThroughParser) {
  CongestionOptions opt;
  opt.top_k = 4;
  opt.timeline_capacity = 8;
  CongestionLedger ledger(opt);
  ledger.bind(four_dirs());
  ledger.add_dir_words(1, 6);
  ledger.on_round(2, 3, 4, 6, 0);
  ledger.note_engine_marks(1, 2);

  support::JsonValue doc;
  std::string error;
  ASSERT_TRUE(support::parse_json(ledger.snapshot().to_json(), doc, &error))
      << error;
  EXPECT_EQ(doc.number_or("rounds_observed", -1), 1);
  EXPECT_EQ(doc.number_or("total_words", -1), 6);
  EXPECT_EQ(doc.number_or("spill_peak_slots", -1), 1);
  EXPECT_EQ(doc.number_or("overflow_peak_entries", -1), 2);
  const support::JsonValue* links = doc.find("top_links");
  ASSERT_NE(links, nullptr);
  ASSERT_EQ(links->items.size(), 1u);
  EXPECT_EQ(links->items[0].number_or("from", -1), 1);
  EXPECT_EQ(links->items[0].number_or("to", -1), 0);
  EXPECT_EQ(links->items[0].number_or("words", -1), 6);
  const support::JsonValue* timeline = doc.find("timeline");
  ASSERT_NE(timeline, nullptr);
  ASSERT_EQ(timeline->items.size(), 1u);
  EXPECT_EQ(timeline->items[0].number_or("round", -1), 3);
}

TEST(CongestionSnapshot, DefaultMetricsJsonKeepsPreObservatoryShape) {
  // The sections are strictly opt-in: a snapshot without them serializes to
  // the exact document older consumers (checkpoint byte-compares, ci.sh
  // validators, the frontier A/B suite) already parse.
  congest::MetricsSnapshot snap;
  const std::string json = snap.to_json();
  EXPECT_EQ(json.find("\"congestion\""), std::string::npos);
  EXPECT_EQ(json.find("\"adherence\""), std::string::npos);
}

Graph test_graph(int n, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::random_connected(n, 2 * n, WeightRange{1, 8}, rng);
}

TEST(SolveIntegration, CongestionSectionAppearsOnlyWhenEnabled) {
  const Graph g = test_graph(48, 3);
  Network net(g, 5, NetworkConfig{});
  cycle::SolveOptions opts;
  opts.collect_metrics = true;
  const cycle::MwcReport plain = cycle::solve(net, opts);
  EXPECT_FALSE(plain.metrics.congestion.observed);
  // Adherence is a pure function of the snapshot: always evaluated when
  // metrics are on, even without the congestion ledger.
  EXPECT_TRUE(plain.metrics.adherence.evaluated);

  Network net2(g, 5, NetworkConfig{});
  opts.congestion.enabled = true;
  const cycle::MwcReport observed = cycle::solve(net2, opts);
  ASSERT_TRUE(observed.metrics.congestion.observed);
  EXPECT_GT(observed.metrics.congestion.total_words, 0u);
  EXPECT_FALSE(observed.metrics.congestion.top_links.empty());
  EXPECT_GT(observed.metrics.congestion.rounds_observed, 0u);
  // The ledger observed exactly the traffic the profiler counted.
  EXPECT_EQ(observed.metrics.congestion.total_words,
            observed.metrics.total.words);
}

TEST(SolveIntegration, UserAttachedLedgerIsRestoredAndUntouched) {
  const Graph g = test_graph(48, 3);
  Network net(g, 5, NetworkConfig{});
  CongestionLedger mine;
  net.attach_congestion(&mine);
  const std::uint64_t direct_words = [&] {
    cycle::SolveOptions opts;
    opts.collect_metrics = true;
    (void)cycle::solve(net, opts);  // congestion NOT enabled in options
    return mine.snapshot().total_words;
  }();
  // A directly-attached ledger observes runs without the opt-in flag...
  EXPECT_GT(direct_words, 0u);
  // ...and stays attached after solve() (which only swaps its own in when
  // options.congestion.enabled is set).
  EXPECT_EQ(net.congestion(), &mine);

  cycle::SolveOptions opts;
  opts.collect_metrics = true;
  opts.congestion.enabled = true;
  (void)cycle::solve(net, opts);
  // solve()'s scoped ledger observed that solve; mine was restored intact.
  EXPECT_EQ(net.congestion(), &mine);
  EXPECT_EQ(mine.snapshot().total_words, direct_words);
}

TEST(Adherence, FitIsDeterministicAndDeclaresKnownAlgorithms) {
  const Graph g = test_graph(64, 9);
  Network net(g, 7, NetworkConfig{});
  cycle::SolveOptions opts;
  opts.collect_metrics = true;
  const cycle::MwcReport report = cycle::solve(net, opts);
  ASSERT_TRUE(report.metrics.adherence.evaluated);
  const AdherenceReport& a = report.metrics.adherence;
  EXPECT_EQ(a.algorithm, report.algorithm);
  EXPECT_EQ(a.n, static_cast<std::uint64_t>(g.node_count()));
  EXPECT_EQ(a.m, static_cast<std::uint64_t>(g.edge_count()));
  EXPECT_EQ(a.diameter, graph::seq::communication_diameter(g));
  ASSERT_FALSE(a.entries.empty());
  for (const congest::AdherenceEntry& e : a.entries) {
    EXPECT_GT(e.predicted, 0.0) << e.scope << "/" << e.counter;
    EXPECT_GT(e.threshold, 0.0);
    EXPECT_TRUE(e.verdict == "pass" || e.verdict == "warn") << e.verdict;
    EXPECT_EQ(e.verdict == "pass", e.constant <= e.threshold);
  }
  EXPECT_TRUE(a.verdict == "pass" || a.verdict == "warn");

  // Pure function of (snapshot, identity): re-fitting bit-matches.
  const AdherenceReport refit =
      cycle::fit_bounds(report.metrics, report.algorithm, a.n, a.m, a.diameter);
  EXPECT_EQ(refit, a);
  EXPECT_EQ(refit.to_json(), a.to_json());
}

TEST(Adherence, UnknownAlgorithmStillFitsTotals) {
  const Graph g = test_graph(40, 5);
  Network net(g, 3, NetworkConfig{});
  cycle::SolveOptions opts;
  opts.collect_metrics = true;
  const cycle::MwcReport report = cycle::solve(net, opts);
  const AdherenceReport a =
      cycle::fit_bounds(report.metrics, "no-such-algorithm",
                        static_cast<std::uint64_t>(g.node_count()),
                        static_cast<std::uint64_t>(g.edge_count()),
                        graph::seq::communication_diameter(g));
  // Phase bounds still match by phase name; only the per-algorithm total
  // bounds need the registry entry.
  EXPECT_TRUE(a.evaluated);
  for (const congest::AdherenceEntry& e : a.entries) {
    EXPECT_NE(e.scope, "total");
  }
}

TEST(Adherence, EmptySnapshotIsNotEvaluated) {
  congest::MetricsSnapshot empty;
  const AdherenceReport a = cycle::fit_bounds(empty, "exact", 10, 20, 3);
  EXPECT_FALSE(a.evaluated);
}

}  // namespace
}  // namespace mwc
