// Theorem 1.2.C: 2-approximate directed unweighted MWC (Algorithms 2 + 3),
// including the phase-overflow machinery, plus the hop/tick-limited mode of
// Section 5.2.
#include <gtest/gtest.h>

#include <cmath>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "graph/transforms.h"
#include "mwc/directed_mwc.h"
#include "support/rng.h"
#include "test_util.h"

namespace mwc::cycle {
namespace {

using congest::Network;
using graph::Graph;
using graph::Weight;
using graph::WeightRange;

struct Case {
  int family;  // 0 = random SC digraph, 1 = ring+shortcuts, 2 = bottleneck
  int n;
  std::uint64_t seed;
};

Graph make_graph(const Case& c) {
  support::Rng rng(c.seed);
  switch (c.family) {
    case 0:
      return graph::random_strongly_connected(c.n, 3 * c.n, WeightRange{1, 1}, rng);
    case 1:
      return graph::directed_cycle_with_shortcuts(c.n, c.n / 4, WeightRange{1, 1}, rng);
    default:
      return graph::bottleneck_digraph(c.n, std::max(2, c.n / 20), rng);
  }
}

class DirectedMwc2Approx : public ::testing::TestWithParam<Case> {};

TEST_P(DirectedMwc2Approx, SoundAndWithinFactorTwo) {
  const Case& c = GetParam();
  Graph g = make_graph(c);
  Weight exact = graph::seq::mwc(g);
  ASSERT_NE(exact, graph::kInfWeight);
  Network net(g, /*seed=*/c.seed * 11 + 1);
  MwcResult result = directed_mwc_2approx(net);
  ASSERT_NE(result.value, graph::kInfWeight)
      << "family=" << c.family << " n=" << c.n << " seed=" << c.seed;
  EXPECT_GE(result.value, exact);  // sound: weight of a real cycle
  EXPECT_LE(result.value, 2 * exact)
      << "family=" << c.family << " n=" << c.n << " seed=" << c.seed
      << " exact=" << exact;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DirectedMwc2Approx,
    ::testing::Values(Case{0, 60, 1}, Case{0, 100, 2}, Case{0, 160, 3},
                      Case{1, 64, 4}, Case{1, 128, 5}, Case{1, 200, 6},
                      Case{2, 80, 7}, Case{2, 140, 8}, Case{2, 200, 9},
                      Case{0, 120, 10}, Case{1, 96, 11}, Case{2, 100, 12}));

TEST(DirectedMwc, ManySeeds) {
  for (std::uint64_t seed = 30; seed < 50; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_strongly_connected(90, 270, WeightRange{1, 1}, rng);
    Weight exact = graph::seq::mwc(g);
    Network net(g, seed);
    MwcResult result = directed_mwc_2approx(net);
    EXPECT_GE(result.value, exact) << "seed " << seed;
    EXPECT_LE(result.value, 2 * exact) << "seed " << seed;
  }
}

TEST(DirectedMwc, PlantedShortCycleIsTwoCovered) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    support::Rng rng(seed);
    Weight planted = 0;
    Graph g = graph::planted_mwc_directed(100, 260, 4, &planted, rng);
    // Weighted planted graph: run on the unit-weight shape where the planted
    // 4-cycle is still a shortest cycle? No - use the weighted graph's
    // unweighted shape girth instead; simpler: check on unit-weight digraph.
    Graph unit = graph::unweighted_shape(g);
    Weight exact = graph::seq::mwc(unit);
    Network net(unit, seed + 40);
    MwcResult result = directed_mwc_2approx(net);
    EXPECT_GE(result.value, exact) << "seed " << seed;
    EXPECT_LE(result.value, 2 * exact) << "seed " << seed;
  }
}

TEST(DirectedMwc, PureDirectedRingFoundExactly) {
  // One long cycle: the sampled long-cycle machinery must find it exactly.
  support::Rng rng(61);
  Graph g = graph::directed_cycle_with_shortcuts(150, 0, WeightRange{1, 1}, rng);
  Network net(g, 63);
  MwcResult result = directed_mwc_2approx(net);
  EXPECT_EQ(result.value, 150);
}

TEST(DirectedMwc, BottleneckGraphTripsOverflowHandling) {
  // Hub-heavy digraph: hubs sit in nearly every P(v), so the restricted BFS
  // must detect phase-overflow vertices; cycles remain 2-covered.
  support::Rng rng(65);
  Graph g = graph::bottleneck_digraph(240, 5, rng);
  Weight exact = graph::seq::mwc(g);
  Network net(g, 67);
  DirectedMwcParams params;
  MwcResult result = directed_mwc_2approx(net, params);
  EXPECT_GE(result.value, exact);
  EXPECT_LE(result.value, 2 * exact);
  EXPECT_GT(result.overflow_count, 0) << "expected hubs to overflow";
}

TEST(DirectedMwc, OverflowAblationStaysCorrectButCongests) {
  // With overflow handling disabled the answer stays sound/2-approx (the
  // hubs just keep forwarding) but the restricted BFS pays more rounds.
  support::Rng rng(69);
  Graph g = graph::bottleneck_digraph(180, 4, rng);
  Weight exact = graph::seq::mwc(g);

  Network net_on(g, 71);
  DirectedMwcParams on;
  MwcResult with_handling = directed_mwc_2approx(net_on, on);

  Network net_off(g, 71);
  DirectedMwcParams off;
  off.enable_overflow_handling = false;
  MwcResult without_handling = directed_mwc_2approx(net_off, off);

  EXPECT_LE(with_handling.value, 2 * exact);
  EXPECT_GE(with_handling.value, exact);
  EXPECT_LE(without_handling.value, 2 * exact);
  EXPECT_GE(without_handling.value, exact);
  EXPECT_EQ(without_handling.overflow_count, 0);
}

TEST(DirectedMwc, TickModeApproximatesWeightLimitedMwc) {
  // Section 5.2 subroutine: 2-approx of the minimum weight among cycles of
  // bounded total weight, run in stretched/tick mode on the graph itself.
  for (std::uint64_t seed = 80; seed < 88; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_strongly_connected(70, 210, WeightRange{1, 5}, rng);
    const Weight budget = 30;
    // Reference: min weight among cycles of weight <= budget (weights >= 1
    // implies <= budget hops).
    Weight hop_exact = graph::seq::hop_limited_mwc(g, static_cast<int>(budget));
    if (hop_exact > budget) hop_exact = graph::kInfWeight;
    Network net(g, seed);
    DirectedMwcParams params;
    params.tick_limit = budget;
    params.graph_override = &g;
    MwcResult result = directed_mwc_2approx(net, params);
    if (hop_exact == graph::kInfWeight) continue;
    ASSERT_NE(result.value, graph::kInfWeight) << "seed " << seed;
    EXPECT_GE(result.value, graph::seq::mwc(g)) << "seed " << seed;
    EXPECT_LE(result.value, 2 * hop_exact) << "seed " << seed;
  }
}

TEST(DirectedMwc, WitnessIsARealCycleWhenProduced) {
  int produced = 0;
  for (std::uint64_t seed = 100; seed < 115; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_strongly_connected(80, 240, WeightRange{1, 1}, rng);
    Network net(g, seed);
    MwcResult result = directed_mwc_2approx(net);
    if (result.witness.empty()) continue;
    ++produced;
    testutil::expect_valid_cycle_at_most(g, result.witness, result.value);
  }
  // The short branch usually wins on these dense digraphs (mwc is 2-3), so
  // witnesses should mostly be produced.
  EXPECT_GE(produced, 8);
}

TEST(DirectedMwc, RoundBoundAtFixedSize) {
  // O~(n^(4/5) + D) with the polylog spelled out, at n = 256.
  support::Rng rng(90);
  const int n = 256;
  Graph g = graph::random_strongly_connected(n, 3 * n, WeightRange{1, 1}, rng);
  Network net(g, 91);
  MwcResult result = directed_mwc_2approx(net);
  const double n45 = std::pow(static_cast<double>(n), 0.8);
  const double log_n = std::log(static_cast<double>(n));
  const int diam = graph::seq::communication_diameter(g);
  EXPECT_LE(static_cast<double>(result.stats.rounds),
            20.0 * (n45 * log_n * log_n + diam));
}

}  // namespace
}  // namespace mwc::cycle
