// Exact MWC baselines vs the sequential edge-removal reference, across all
// four graph classes of Table 1.
#include <gtest/gtest.h>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/exact.h"
#include "support/rng.h"
#include "test_util.h"

namespace mwc::cycle {
namespace {

using congest::Network;
using graph::Graph;
using graph::WeightRange;

struct Case {
  bool directed;
  bool weighted;
  int n, m;
  std::uint64_t seed;
};

class ExactMwc : public ::testing::TestWithParam<Case> {};

TEST_P(ExactMwc, MatchesSequentialReference) {
  const Case& c = GetParam();
  support::Rng rng(c.seed);
  WeightRange w = c.weighted ? WeightRange{1, 12} : WeightRange{1, 1};
  Graph g = c.directed ? graph::random_strongly_connected(c.n, c.m, w, rng)
                       : graph::random_connected(c.n, c.m, w, rng);
  Network net(g, /*seed=*/c.seed * 31 + 5);
  MwcResult result = exact_mwc(net);
  EXPECT_EQ(result.value, graph::seq::mwc(g))
      << "directed=" << c.directed << " weighted=" << c.weighted
      << " n=" << c.n << " seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactMwc,
    ::testing::Values(
        Case{false, false, 40, 80, 1}, Case{false, false, 80, 120, 2},
        Case{false, false, 60, 200, 3}, Case{false, true, 40, 80, 4},
        Case{false, true, 80, 160, 5}, Case{false, true, 60, 90, 6},
        Case{true, false, 40, 100, 7}, Case{true, false, 80, 200, 8},
        Case{true, false, 60, 300, 9}, Case{true, true, 40, 100, 10},
        Case{true, true, 80, 240, 11}, Case{true, true, 60, 150, 12},
        Case{false, true, 100, 150, 13}, Case{true, true, 100, 250, 14},
        Case{false, false, 100, 150, 15}, Case{true, false, 100, 250, 16}));

TEST(ExactMwc, PlantedCyclesFoundExactly) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    support::Rng rng(seed);
    graph::Weight planted = 0;
    Graph gu = graph::planted_mwc_undirected(60, 120, 9, &planted, rng);
    Network nu(gu, seed + 1);
    EXPECT_EQ(exact_mwc(nu).value, planted);

    Graph gd = graph::planted_mwc_directed(60, 150, 6, &planted, rng);
    Network nd(gd, seed + 2);
    EXPECT_EQ(exact_mwc(nd).value, planted);
  }
}

TEST(ExactMwc, AcyclicUndirectedReportsInfinity) {
  // A tree has no cycle.
  support::Rng rng(3);
  Graph g = graph::random_connected(40, 39, WeightRange{1, 5}, rng);
  Network net(g, 7);
  EXPECT_EQ(exact_mwc(net).value, graph::kInfWeight);
}

TEST(ExactMwc, TriangleWithPendantTrap) {
  // The degenerate-walk trap: naive closing around the pendant must not
  // undercut the true MWC.
  std::vector<graph::Edge> edges{{3, 0, 1}, {0, 1, 10}, {1, 2, 10}, {2, 0, 10}};
  Graph g = Graph::undirected(4, edges);
  Network net(g, 9);
  EXPECT_EQ(exact_mwc(net).value, 30);
}

TEST(ExactMwc, DirectedTwoCycle) {
  std::vector<graph::Edge> edges{{0, 1, 3}, {1, 0, 4}, {1, 2, 1}, {2, 0, 1}};
  Graph g = Graph::directed(3, edges);
  Network net(g, 11);
  EXPECT_EQ(exact_mwc(net).value, 5);  // 0->1->2->0
}

TEST(ExactMwc, UnweightedRoundsLinearInN) {
  // Holzer-Wattenhofer: n-source pipelined BFS APSP is O(n + D).
  support::Rng rng(21);
  Graph g = graph::cycle_with_chords(200, 30, WeightRange{1, 1}, rng);
  Network net(g, 13);
  MwcResult result = exact_mwc(net);
  EXPECT_EQ(result.value, graph::seq::mwc(g));
  EXPECT_LE(result.stats.rounds, 12u * 200u);
}

TEST(ExactMwc, WitnessIsAValidMinimumCycle) {
  // The reconstructed cycle must be a real simple cycle whose weight equals
  // the reported value, for all four graph classes.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    support::Rng rng(seed + 300);
    Graph gu = graph::random_connected(40, 90, WeightRange{1, 9}, rng);
    Network nu(gu, seed + 1);
    MwcResult ru = exact_mwc(nu);
    ASSERT_NE(ru.value, graph::kInfWeight);
    testutil::expect_valid_cycle(gu, ru.witness, ru.value);

    Graph gd = graph::random_strongly_connected(40, 110, WeightRange{1, 9}, rng);
    Network nd(gd, seed + 2);
    MwcResult rd = exact_mwc(nd);
    ASSERT_NE(rd.value, graph::kInfWeight);
    testutil::expect_valid_cycle(gd, rd.witness, rd.value);

    Graph g1 = graph::random_connected(40, 90, WeightRange{1, 1}, rng);
    Network n1(g1, seed + 3);
    MwcResult r1 = exact_mwc(n1);
    testutil::expect_valid_cycle(g1, r1.witness, r1.value);

    Graph g2 = graph::random_strongly_connected(40, 110, WeightRange{1, 1}, rng);
    Network n2(g2, seed + 4);
    MwcResult r2 = exact_mwc(n2);
    testutil::expect_valid_cycle(g2, r2.witness, r2.value);
  }
}

TEST(ExactMwc, WitnessEmptyOnAcyclicGraph) {
  support::Rng rng(5);
  Graph g = graph::random_connected(30, 29, WeightRange{1, 5}, rng);  // tree
  Network net(g, 6);
  MwcResult result = exact_mwc(net);
  EXPECT_EQ(result.value, graph::kInfWeight);
  EXPECT_TRUE(result.witness.empty());
}

TEST(ExactMwc, TieHeavyWeightsStayExact) {
  // Many equal weights force antipodal ties; the straddling-edge argument
  // must hold regardless of how SPT parents broke them.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    support::Rng rng(seed + 100);
    Graph g = graph::random_connected(50, 100, WeightRange{2, 3}, rng);
    Network net(g, seed + 200);
    EXPECT_EQ(exact_mwc(net).value, graph::seq::mwc(g)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mwc::cycle
