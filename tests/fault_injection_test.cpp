// Fault injection + reliable transport: deterministic schedules, correct
// answers over lossy links, and non-aborting crash/limit reporting.
//
// The load-bearing claims: (1) the fault schedule is a pure function of
// (seed, run counter) - fuzz failures replay exactly; (2) with
// reliable_transport on, the tree/broadcast/convergecast primitives and a
// full MWC algorithm return answers identical to their fault-free runs even
// when every link drops 10-30% of its messages; (3) crash-stop faults and
// the round limit surface as RunOutcome, never as process death.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "congest/bfs_tree.h"
#include "congest/broadcast.h"
#include "congest/convergecast.h"
#include "congest/network.h"
#include "congest/reliable_link.h"
#include "congest/runner.h"
#include "congest/trace.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "mwc/api.h"
#include "mwc/exact.h"
#include "mwc/witness.h"
#include "support/check.h"
#include "support/rng.h"

namespace mwc::congest {
namespace {

using graph::Edge;
using graph::Graph;
using graph::NodeId;
using graph::WeightRange;

Graph test_graph(std::uint64_t seed, int n = 40, int m = 90) {
  support::Rng rng(seed);
  return graph::random_connected(n, m, WeightRange{1, 9}, rng);
}

NetworkConfig lossy_config(double drop_prob) {
  NetworkConfig cfg;
  cfg.faults.drop_prob = drop_prob;
  cfg.reliable_transport = true;
  return cfg;
}

// Minimal flood: node 0 announces, everyone re-announces once. Terminates on
// its own (each node sends at most once per link), so it runs fine even
// without the reliable transport - useful for raw fault-semantics tests.
class Flood : public Protocol {
 public:
  explicit Flood(int n) : reached_(static_cast<std::size_t>(n), false) {}

  void begin(NodeCtx& node) override {
    if (node.id() != 0) return;
    reached_[0] = true;
    for (NodeId u : node.comm_neighbors()) node.send(u, Message{1});
  }

  void round(NodeCtx& node) override {
    if (node.inbox().empty()) return;
    if (reached_[static_cast<std::size_t>(node.id())]) return;
    reached_[static_cast<std::size_t>(node.id())] = true;
    for (NodeId u : node.comm_neighbors()) node.send(u, Message{1});
  }

  const std::vector<bool>& reached() const { return reached_; }

 private:
  std::vector<bool> reached_;
};

// ---------- deterministic schedules ----------------------------------------

TEST(FaultSchedule, SameSeedReproducesScheduleAndRounds) {
  Graph g = test_graph(1);
  RunStats first;
  for (int rep = 0; rep < 2; ++rep) {
    Network net(g, /*seed=*/42, lossy_config(0.3));
    Flood proto(net.n());
    RunResult r = run_protocol_result(net, proto);
    ASSERT_TRUE(r.ok());
    if (rep == 0) {
      first = r.stats;
      EXPECT_GT(first.dropped_messages, 0u);
    } else {
      EXPECT_EQ(r.stats.rounds, first.rounds);
      EXPECT_EQ(r.stats.messages, first.messages);
      EXPECT_EQ(r.stats.words, first.words);
      EXPECT_EQ(r.stats.dropped_messages, first.dropped_messages);
      EXPECT_EQ(r.stats.dropped_words, first.dropped_words);
      EXPECT_EQ(r.stats.retransmitted_words, first.retransmitted_words);
    }
  }
}

TEST(FaultSchedule, TraceRecordsIdenticalDropEvents) {
  Graph g = test_graph(2);
  std::vector<std::vector<TraceEvent>> seen;
  for (int rep = 0; rep < 2; ++rep) {
    Network net(g, /*seed=*/7, lossy_config(0.2));
    Trace trace;
    net.attach_trace(&trace);
    Flood proto(net.n());
    ASSERT_TRUE(run_protocol_result(net, proto).ok());
    seen.push_back(trace.fault_events(/*run=*/0));
  }
  ASSERT_FALSE(seen[0].empty());
  ASSERT_EQ(seen[0].size(), seen[1].size());
  for (std::size_t i = 0; i < seen[0].size(); ++i) {
    EXPECT_EQ(seen[0][i].round, seen[1][i].round);
    EXPECT_EQ(seen[0][i].from, seen[1][i].from);
    EXPECT_EQ(seen[0][i].to, seen[1][i].to);
    EXPECT_EQ(static_cast<int>(seen[0][i].kind), static_cast<int>(seen[1][i].kind));
  }
}

TEST(FaultSchedule, InvalidDropProbabilityFailsCheck) {
  Graph g = test_graph(3, 10, 15);
  NetworkConfig cfg = lossy_config(1.5);
  Network net(g, /*seed=*/1, cfg);
  Flood proto(net.n());
  support::ScopedChecksThrow guard;
  EXPECT_THROW(run_protocol_result(net, proto), support::CheckError);
}

// ---------- reliable transport masks drops ----------------------------------

class ReliablePrimitives : public ::testing::TestWithParam<double> {};

TEST_P(ReliablePrimitives, BfsTreeMatchesFaultFree) {
  Graph g = test_graph(4);
  Network lossy(g, /*seed=*/5, lossy_config(GetParam()));
  RunStats stats;
  BfsTreeResult tree = build_bfs_tree(lossy, /*root=*/0, &stats);
  auto ref = graph::seq::bfs_hops(g.communication_topology(), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(tree.depth[static_cast<std::size_t>(v)],
              ref[static_cast<std::size_t>(v)]);
    if (v != 0) {
      NodeId p = tree.parent[static_cast<std::size_t>(v)];
      EXPECT_EQ(tree.depth[static_cast<std::size_t>(v)],
                tree.depth[static_cast<std::size_t>(p)] + 1);
      const auto& ch = tree.children[static_cast<std::size_t>(p)];
      EXPECT_EQ(std::count(ch.begin(), ch.end(), v), 1);
    }
  }
}

TEST_P(ReliablePrimitives, BroadcastMatchesFaultFree) {
  Graph g = test_graph(5);
  const int n = g.node_count();

  std::vector<std::vector<BroadcastItem>> items(static_cast<std::size_t>(n));
  for (int v = 0; v < n; v += 3) {
    items[static_cast<std::size_t>(v)].push_back({static_cast<Word>(v), 7});
  }

  Network clean(g, /*seed=*/5);
  BroadcastResult want =
      broadcast(clean, build_bfs_tree(clean), items);

  Network lossy(g, /*seed=*/5, lossy_config(GetParam()));
  BfsTreeResult tree = build_bfs_tree(lossy);
  BroadcastResult got = broadcast(lossy, tree, items);

  auto keys = [](const BroadcastResult& r) {
    std::vector<Word> ks;
    for (const BroadcastItem& item : r.items()) ks.push_back(item[0]);
    std::sort(ks.begin(), ks.end());
    return ks;
  };
  EXPECT_EQ(keys(got), keys(want));
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(got.received_count(v), got.items().size()) << "node " << v;
  }
}

TEST_P(ReliablePrimitives, ConvergecastMatchesFaultFree) {
  Graph g = test_graph(6);
  const int n = g.node_count();
  std::vector<graph::Weight> values;
  for (int v = 0; v < n; ++v) values.push_back((v * 37 + 11) % 101);

  Network lossy(g, /*seed=*/9, lossy_config(GetParam()));
  BfsTreeResult tree = build_bfs_tree(lossy);
  EXPECT_EQ(convergecast(lossy, tree, values, AggregateOp::kMin),
            *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(convergecast(lossy, tree, values, AggregateOp::kSum),
            std::accumulate(values.begin(), values.end(), graph::Weight{0}));
}

INSTANTIATE_TEST_SUITE_P(DropRates, ReliablePrimitives,
                         ::testing::Values(0.1, 0.3));

TEST(ReliableTransport, RetransmissionsShowUpInStats) {
  Graph g = test_graph(7);
  Network net(g, /*seed=*/11, lossy_config(0.3));
  RunStats stats;
  build_bfs_tree(net, /*root=*/0, &stats);
  EXPECT_GT(stats.dropped_messages, 0u);
  EXPECT_GT(stats.retransmitted_words, 0u);
}

TEST(ReliableTransport, HarmlessOnLossFreeLinks) {
  // Pure overhead, same answer: the transport must not perturb protocols
  // when nothing is dropped.
  Graph g = test_graph(8);
  NetworkConfig cfg;
  cfg.reliable_transport = true;
  Network net(g, /*seed=*/13, cfg);
  BfsTreeResult tree = build_bfs_tree(net);
  auto ref = graph::seq::bfs_hops(g.communication_topology(), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(tree.depth[static_cast<std::size_t>(v)],
              ref[static_cast<std::size_t>(v)]);
  }
}

TEST(ReliableTransport, ExactMwcMatchesFaultFreeAtThirtyPercentLoss) {
  // The acceptance bar: a full MWC algorithm, every link dropping 30% of its
  // messages, answer bit-identical to the reliable-network run.
  Graph g = test_graph(9, 24, 48);
  Network clean(g, /*seed=*/17);
  cycle::MwcResult want = cycle::exact_mwc(clean);

  Network lossy(g, /*seed=*/17, lossy_config(0.3));
  cycle::MwcResult got = cycle::exact_mwc(lossy);
  EXPECT_EQ(got.value, want.value);
  EXPECT_GT(got.stats.retransmitted_words, 0u);
  EXPECT_GT(got.stats.dropped_messages, 0u);
}

// ---------- stalls -----------------------------------------------------------

TEST(Stalls, DelayedLinkStillYieldsTrueBfsTree) {
  // Stall a few link directions for a long window, no drops and no transport:
  // messages arrive late but intact, and the relaxation-based tree builder
  // must still converge to exact BFS depths.
  Graph g = test_graph(10);
  NetworkConfig cfg;
  const NodeId nbr = g.out(0)[0].to;
  cfg.faults.stalls.push_back(StallFault{0, nbr, 1, 40});
  cfg.faults.stalls.push_back(StallFault{nbr, 0, 1, 40});
  Network net(g, /*seed=*/19, cfg);
  RunStats stats;
  BfsTreeResult tree = build_bfs_tree(net, /*root=*/0, &stats);
  EXPECT_GT(stats.stalled_rounds, 0u);
  auto ref = graph::seq::bfs_hops(g.communication_topology(), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(tree.depth[static_cast<std::size_t>(v)],
              ref[static_cast<std::size_t>(v)]);
  }
}

// ---------- crash-stop -------------------------------------------------------

TEST(CrashStop, ReportedAsOutcomeNotDeath) {
  Graph g = test_graph(11);
  NetworkConfig cfg;
  cfg.faults.crashes.push_back(CrashFault{5, 2});
  Network net(g, /*seed=*/23, cfg);
  Flood proto(net.n());
  RunResult r = run_protocol_result(net, proto);
  EXPECT_EQ(r.outcome, RunOutcome::kCrashed);
  EXPECT_FALSE(r.ok());
}

TEST(CrashStop, RunProtocolThrowsCarryingTheResult) {
  Graph g = test_graph(12);
  NetworkConfig cfg;
  cfg.faults.crashes.push_back(CrashFault{3, 1});
  Network net(g, /*seed=*/29, cfg);
  Flood proto(net.n());
  try {
    run_protocol(net, proto);
    FAIL() << "expected RunAbortedError";
  } catch (const RunAbortedError& e) {
    EXPECT_EQ(e.outcome(), RunOutcome::kCrashed);
    EXPECT_NE(std::string(e.what()).find("crashed"), std::string::npos);
  }
}

TEST(CrashStop, CrashAtRoundZeroSilencesNodeEntirely) {
  // Crash node 0 (the flood's origin) before it acts: nothing ever moves.
  Graph g = test_graph(13);
  NetworkConfig cfg;
  cfg.faults.crashes.push_back(CrashFault{0, 0});
  Network net(g, /*seed=*/31, cfg);
  Trace trace;
  net.attach_trace(&trace);
  Flood proto(net.n());
  RunResult r = run_protocol_result(net, proto);
  EXPECT_EQ(r.outcome, RunOutcome::kCrashed);
  EXPECT_EQ(r.stats.messages, 0u);
  for (NodeId v = 1; v < net.n(); ++v) {
    EXPECT_FALSE(proto.reached()[static_cast<std::size_t>(v)]);
  }
  auto faults = trace.fault_events(/*run=*/0);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, TraceEventKind::kCrash);
  EXPECT_EQ(faults[0].from, 0);
}

// ---------- overlapping stalls ----------------------------------------------

TEST(Stalls, OverlappingWindowsOnOneDirectionStillConverge) {
  // Two overlapping stall windows on the same direction behave like their
  // union: messages are held longer, never lost, and the relaxation-based
  // tree builder still converges to exact BFS depths.
  Graph g = test_graph(20);
  NetworkConfig cfg;
  const NodeId nbr = g.out(0)[0].to;
  cfg.faults.stalls.push_back(StallFault{0, nbr, 0, 30});
  cfg.faults.stalls.push_back(StallFault{0, nbr, 20, 60});
  Network net(g, /*seed=*/43, cfg);
  RunStats stats;
  BfsTreeResult tree = build_bfs_tree(net, /*root=*/0, &stats);
  EXPECT_GT(stats.stalled_rounds, 0u);
  auto ref = graph::seq::bfs_hops(g.communication_topology(), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(tree.depth[static_cast<std::size_t>(v)],
              ref[static_cast<std::size_t>(v)]);
  }
}

// ---------- corruption -------------------------------------------------------

TEST(Corruption, MaskedOnLinkThatAlsoDrops) {
  // One link both drops messages and flips words in the survivors, on top
  // of engine-wide rates; the checksumming ARQ masks all of it and the
  // tree builder still produces exact depths.
  Graph g = test_graph(21);
  NetworkConfig cfg;
  cfg.reliable_transport = true;
  cfg.faults.drop_prob = 0.15;
  cfg.faults.corrupt_prob = 0.03;
  const NodeId nbr = g.out(0)[0].to;
  cfg.faults.drop_overrides.push_back(LinkDropOverride{0, nbr, 0.5});
  cfg.faults.corrupt_overrides.push_back(LinkCorruptOverride{0, nbr, 0.2});
  Network net(g, /*seed=*/47, cfg);
  RunStats stats;
  BfsTreeResult tree = build_bfs_tree(net, /*root=*/0, &stats);
  EXPECT_GT(stats.dropped_messages, 0u);
  EXPECT_GT(stats.corrupted_words, 0u);
  EXPECT_GT(stats.checksum_rejects, 0u);
  auto ref = graph::seq::bfs_hops(g.communication_topology(), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(tree.depth[static_cast<std::size_t>(v)],
              ref[static_cast<std::size_t>(v)]);
  }
}

TEST(Corruption, ExactMwcMatchesFaultFreeAtFivePercentCorruption) {
  // Acceptance bar: 5% of all delivered words flipped, answer bit-identical
  // to the fault-free run under the reliable transport.
  Graph g = test_graph(22, 24, 48);
  Network clean(g, /*seed=*/53);
  cycle::MwcResult want = cycle::exact_mwc(clean);

  NetworkConfig cfg;
  cfg.reliable_transport = true;
  cfg.faults.corrupt_prob = 0.05;
  Network noisy(g, /*seed=*/53, cfg);
  cycle::MwcResult got = cycle::exact_mwc(noisy);
  EXPECT_EQ(got.value, want.value);
  EXPECT_EQ(got.witness, want.witness);
  EXPECT_GT(got.stats.corrupted_words, 0u);
  EXPECT_GT(got.stats.checksum_rejects, 0u);
}

TEST(Corruption, TargetedWindowFlipsEveryDelivery) {
  // A CorruptFault window mangles every message one direction delivers
  // during the window, independent of the probabilistic rate.
  Graph g = test_graph(23);
  NetworkConfig cfg;
  const NodeId nbr = g.out(0)[0].to;
  cfg.faults.corrupt_windows.push_back(CorruptFault{0, nbr, 0, 1000});
  Network net(g, /*seed=*/59, cfg);
  Trace trace;
  net.attach_trace(&trace);
  Flood proto(net.n());  // payload-agnostic: safe without the transport
  RunResult r = run_protocol_result(net, proto);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.stats.corrupted_words, 0u);
  bool saw_corrupt_event = false;
  for (const TraceEvent& e : trace.fault_events(/*run=*/0)) {
    if (e.kind == TraceEventKind::kCorrupt) {
      saw_corrupt_event = true;
      EXPECT_EQ(e.from, 0);
      EXPECT_EQ(e.to, nbr);
      EXPECT_GT(e.words, 0u);
    }
  }
  EXPECT_TRUE(saw_corrupt_event);
}

// ---------- replay-by-seed for the new schedules -----------------------------

TEST(FaultSchedule, CorruptionAndRecoveryReplayBySeed) {
  Graph g = test_graph(24);
  NetworkConfig cfg;
  cfg.reliable_transport = true;
  cfg.faults.corrupt_prob = 0.05;
  cfg.faults.drop_prob = 0.1;
  cfg.faults.crashes.push_back(CrashFault{7, 12});
  cfg.faults.recovers.push_back(RecoverFault{7, 60});
  RunStats first;
  std::vector<TraceEvent> first_faults;
  for (int rep = 0; rep < 2; ++rep) {
    Network net(g, /*seed=*/61, cfg);
    Trace trace;
    net.attach_trace(&trace);
    Flood proto(net.n());
    RunResult r = run_protocol_result(net, proto);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.outcome, RunOutcome::kRecovered);
    if (rep == 0) {
      first = r.stats;
      first_faults = trace.fault_events(/*run=*/0);
      EXPECT_GT(first.corrupted_words, 0u);
      EXPECT_EQ(first.crashes, 1u);
      EXPECT_EQ(first.recoveries, 1u);
    } else {
      EXPECT_EQ(r.stats.rounds, first.rounds);
      EXPECT_EQ(r.stats.words, first.words);
      EXPECT_EQ(r.stats.corrupted_words, first.corrupted_words);
      EXPECT_EQ(r.stats.checksum_rejects, first.checksum_rejects);
      EXPECT_EQ(r.stats.retransmitted_words, first.retransmitted_words);
      std::vector<TraceEvent> faults = trace.fault_events(/*run=*/0);
      ASSERT_EQ(faults.size(), first_faults.size());
      for (std::size_t i = 0; i < faults.size(); ++i) {
        EXPECT_EQ(faults[i].round, first_faults[i].round);
        EXPECT_EQ(faults[i].from, first_faults[i].from);
        EXPECT_EQ(faults[i].to, first_faults[i].to);
        EXPECT_EQ(static_cast<int>(faults[i].kind),
                  static_cast<int>(first_faults[i].kind));
        EXPECT_EQ(faults[i].words, first_faults[i].words);
      }
    }
  }
}

TEST(CrashStop, ReliableTransportDeclaresDeadLinkAndTerminates) {
  // A crashed peer never acks; the sender must give up after max_retries so
  // the run still quiesces (outcome kCrashed, not a round-limit spin).
  Graph g = test_graph(14, 12, 20);
  NetworkConfig cfg;
  cfg.reliable_transport = true;
  cfg.reliable.base_timeout_rounds = 4;
  cfg.reliable.max_timeout_rounds = 16;
  cfg.reliable.max_retries = 3;
  cfg.faults.crashes.push_back(CrashFault{1, 1});
  Network net(g, /*seed=*/37, cfg);
  Flood proto(net.n());
  RunResult r = run_protocol_result(net, proto);
  EXPECT_EQ(r.outcome, RunOutcome::kCrashed);
  EXPECT_GT(r.stats.retransmitted_words, 0u);
}

// ---------- crash-recovery ---------------------------------------------------

TEST(CrashRecovery, CrashAtRoundZeroThenRecoveryCompletesTheFlood) {
  // Crash the flood's origin before it ever acts, revive it later: the
  // engine keeps the otherwise-quiescent run alive until the recovery,
  // on_restart re-runs begin(), and the flood completes. Outcome is
  // kRecovered - an ok() run whose ledger shows the interruption.
  Graph g = test_graph(25);
  NetworkConfig cfg;
  cfg.faults.crashes.push_back(CrashFault{0, 0});
  cfg.faults.recovers.push_back(RecoverFault{0, 15});
  Network net(g, /*seed=*/67, cfg);
  Trace trace;
  net.attach_trace(&trace);
  Flood proto(net.n());
  RunResult r = run_protocol_result(net, proto);
  EXPECT_EQ(r.outcome, RunOutcome::kRecovered);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.stats.crashes, 1u);
  EXPECT_EQ(r.stats.recoveries, 1u);
  for (NodeId v = 0; v < net.n(); ++v) {
    EXPECT_TRUE(proto.reached()[static_cast<std::size_t>(v)]) << "node " << v;
  }
  auto faults = trace.fault_events(/*run=*/0);
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_EQ(faults[0].kind, TraceEventKind::kCrash);
  EXPECT_EQ(faults[1].kind, TraceEventKind::kRecover);
  EXPECT_EQ(faults[1].from, 0);
  EXPECT_EQ(faults[1].round, 15u);
}

// Sender (node 0) streams the payloads 1..k to node 1, one per round; the
// receiver logs every payload it is handed, in arrival order. Over the
// reliable transport this makes per-link delivery semantics observable.
class Counter : public Protocol {
 public:
  explicit Counter(int k) : k_(k) {}

  void begin(NodeCtx& node) override {
    if (node.id() == 0) node.wake_next();
  }

  void round(NodeCtx& node) override {
    if (node.id() == 0) {
      if (next_ <= k_) {
        node.send(1, Message{static_cast<Word>(next_)});
        ++next_;
        if (next_ <= k_) node.wake_next();
      }
      return;
    }
    for (const Delivery& d : node.inbox()) {
      received_.push_back(d.msg[0]);
    }
  }

  const std::vector<Word>& received() const { return received_; }

 private:
  int k_;
  int next_ = 1;
  std::vector<Word> received_;  // test instrument, not node state
};

TEST(CrashRecovery, EpochResyncRestoresExactlyOnceInOrderDelivery) {
  // Link-level acceptance bar: crash the receiver mid-stream, revive it,
  // and check the ARQ's incarnation resync. In-flight pre-crash frames are
  // abandoned (a visible gap - the crash is in the ledger, not masked), but
  // delivery is exactly-once and in-order on both sides of it: the log is
  // strictly increasing, and everything from the first post-gap payload to
  // the last sent payload arrives contiguously.
  constexpr int kCount = 40;
  const graph::Edge edges[] = {{0, 1, 1}};
  Graph g = Graph::undirected(2, edges);
  NetworkConfig cfg;
  cfg.reliable_transport = true;
  cfg.faults.crashes.push_back(CrashFault{1, 6});
  cfg.faults.recovers.push_back(RecoverFault{1, 20});
  Network net(g, /*seed=*/71, cfg);
  Counter proto(kCount);
  RunResult r = run_protocol_result(net, proto);
  EXPECT_EQ(r.outcome, RunOutcome::kRecovered);
  EXPECT_TRUE(r.ok());

  const std::vector<Word>& got = proto.received();
  ASSERT_FALSE(got.empty());
  for (std::size_t i = 1; i < got.size(); ++i) {
    ASSERT_LT(got[i - 1], got[i]) << "duplicate or reordered delivery";
  }
  EXPECT_EQ(got.front(), 1u);
  EXPECT_EQ(got.back(), static_cast<Word>(kCount));
  // Exactly one gap (the abandoned pre-crash session), then contiguous.
  std::size_t gaps = 0, gap_at = 0;
  for (std::size_t i = 1; i < got.size(); ++i) {
    if (got[i] != got[i - 1] + 1) {
      ++gaps;
      gap_at = i;
    }
  }
  ASSERT_LE(gaps, 1u);
  if (gaps == 1) {
    for (std::size_t i = gap_at + 1; i < got.size(); ++i) {
      ASSERT_EQ(got[i], got[i - 1] + 1) << "post-resync stream must be contiguous";
    }
  }
}

TEST(CrashRecovery, ExactMwcEndToEndIsDegradedButSound) {
  // End-to-end acceptance bar: a node crash-stops during exact_mwc and
  // rejoins; the solve completes over the resynced transport, reports the
  // interruption, and never labels the answer certified.
  Graph g = test_graph(26, 24, 48);
  NetworkConfig cfg;
  cfg.reliable_transport = true;
  cfg.faults.crashes.push_back(CrashFault{3, 8});
  cfg.faults.recovers.push_back(RecoverFault{3, 120});
  Network net(g, /*seed=*/73, cfg);
  cycle::SolveOptions opts;
  opts.mode = cycle::SolveMode::kExact;
  cycle::MwcReport report = cycle::solve(net, opts);

  ASSERT_NE(report.status, cycle::SolveStatus::kFailed);
  EXPECT_EQ(report.status, cycle::SolveStatus::kDegraded);
  EXPECT_GT(report.fault_ledger().crashes, 0u);
  EXPECT_GT(report.fault_ledger().recoveries, 0u);
  // Soundness: a salvaged value is an upper bound on the true minimum, and
  // any attached witness validated against the input graph in solve().
  const graph::Weight oracle = graph::seq::mwc(g);
  ASSERT_NE(report.result.value, graph::kInfWeight);
  EXPECT_GE(report.result.value, oracle);
  if (!report.result.witness.empty()) {
    graph::Weight total = 0;
    EXPECT_TRUE(cycle::detail::validate_cycle(g, report.result.witness, &total));
    EXPECT_EQ(total, report.result.value);
  }
}

// ---------- duplication ------------------------------------------------------

TEST(Duplication, RawDupsAreBilledAndReDelivered) {
  // Without the reliable transport, every duplicated message really reaches
  // its receiver twice; the Flood protocol is idempotent, so the run still
  // completes and the ledger shows exactly what was minted.
  Graph g = test_graph(31);
  NetworkConfig cfg;
  cfg.faults.dup_prob = 0.4;
  Network net(g, /*seed=*/3, cfg);
  Flood proto(net.n());
  RunResult result = run_protocol_result(net, proto);
  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.stats.dup_messages, 0u);
  EXPECT_EQ(result.stats.dup_words, result.stats.dup_messages);  // 1-word msgs
  for (bool reached : proto.reached()) EXPECT_TRUE(reached);
}

TEST(Duplication, ExactMwcMatchesFaultFreeAtTwentyPercentDup) {
  // The acceptance bar for exactly-once delivery: the ARQ transport's
  // per-link sequence numbers absorb duplicated frames (multi-word, so the
  // copies route through the spill pool too) and a full MWC algorithm
  // answers bit-identically to its fault-free run.
  Graph g = test_graph(32, 24, 48);
  Network clean(g, /*seed=*/23);
  cycle::MwcResult want = cycle::exact_mwc(clean);

  NetworkConfig cfg;
  cfg.faults.dup_prob = 0.2;
  cfg.reliable_transport = true;
  Network dupped(g, /*seed=*/23, cfg);
  cycle::MwcResult got = cycle::exact_mwc(dupped);
  EXPECT_EQ(got.value, want.value);
  EXPECT_EQ(got.witness, want.witness);
  EXPECT_GT(got.stats.dup_messages, 0u);
}

TEST(Duplication, SolveCertifiesUnderReliableTransportOnly) {
  // Self-certification: duplicates the transport masked are no
  // interference - the ARQ sequence numbers absorb them and the solve
  // certifies with the dups on the ledger. The raw duplicate stream is
  // outside the BFS solver's contract: a re-delivered adoption message
  // double-counts a child, and the engine's adopt/unadopt balance check
  // refuses to continue rather than mis-certify. Reliable transport is
  // the layer that makes duplication safe, and the service layer forces
  // it on whenever a plan carries dup_prob.
  Graph g = test_graph(33, 20, 40);
  NetworkConfig cfg;
  cfg.faults.dup_prob = 0.3;
  cfg.reliable_transport = true;
  Network masked(g, /*seed=*/29, cfg);
  cycle::MwcReport certified = cycle::solve(masked);
  EXPECT_TRUE(certified.certified());
  EXPECT_GT(certified.fault_ledger().dup_messages, 0u);

  cfg.reliable_transport = false;
  Network raw(g, /*seed=*/29, cfg);
  support::ScopedChecksThrow guard;
  EXPECT_THROW(cycle::solve(raw), support::CheckError);
}

TEST(Duplication, ScheduleIdenticalAcrossSettlePathsAndThreads) {
  // The dup decision consumes the injector's RNG stream in deterministic
  // host order on both settle paths: the whole RunStats block - dup
  // counters included - must be bit-identical across engine shapes.
  Graph g = test_graph(34);
  const auto run = [&](SettlePath path, int threads) {
    NetworkConfig cfg;
    cfg.faults.dup_prob = 0.25;
    cfg.faults.drop_prob = 0.1;  // dup draws interleave with drop draws
    cfg.reliable_transport = true;
    cfg.settle_path = path;
    cfg.threads = threads;
    cfg.clamp_threads = false;
    Network net(g, /*seed=*/41, cfg);
    Flood proto(net.n());
    return run_protocol(net, proto);
  };
  const RunStats want = run(SettlePath::kFrontier, 1);
  EXPECT_GT(want.dup_messages, 0u);
  EXPECT_EQ(run(SettlePath::kLegacy, 1), want);
  EXPECT_EQ(run(SettlePath::kFrontier, 4), want);
  EXPECT_EQ(run(SettlePath::kLegacy, 4), want);
}

TEST(Duplication, PerLinkOverrideTargetsOnlyThatLink) {
  Graph g = test_graph(35);
  const NodeId nbr = g.out(0)[0].to;
  NetworkConfig cfg;
  cfg.faults.dup_overrides.push_back(LinkDupOverride{0, nbr, 0.9});
  cfg.reliable_transport = true;
  Network net(g, /*seed=*/43, cfg);
  RunStats stats;
  BfsTreeResult tree = build_bfs_tree(net, /*root=*/0, &stats);
  EXPECT_GT(stats.dup_messages, 0u);
  auto ref = graph::seq::bfs_hops(g.communication_topology(), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(tree.depth[static_cast<std::size_t>(v)],
              ref[static_cast<std::size_t>(v)]);
  }

  // Same seed, no override: zero duplicates minted anywhere.
  NetworkConfig quiet;
  quiet.reliable_transport = true;
  Network control(g, /*seed=*/43, quiet);
  RunStats control_stats;
  build_bfs_tree(control, /*root=*/0, &control_stats);
  EXPECT_EQ(control_stats.dup_messages, 0u);
}

TEST(Duplication, InvalidDupProbabilityFailsCheck) {
  Graph g = test_graph(36, 10, 15);
  NetworkConfig cfg;
  cfg.faults.dup_prob = 1.0;  // valid range is [0, 1)
  Network net(g, /*seed=*/1, cfg);
  Flood proto(net.n());
  support::ScopedChecksThrow guard;
  EXPECT_THROW(run_protocol_result(net, proto), support::CheckError);
}

}  // namespace
}  // namespace mwc::congest
