// A/B identity of the two settle paths. NetworkConfig::settle_path selects
// between the legacy per-direction message queues (SettlePath::kLegacy) and
// the direction-optimizing frontier engine (kFrontier, the default): packed
// 32-byte word entries, a spill pool for multi-word payloads, and a
// dense-bitmap / sparse-sort switch for the per-round invocation list.
//
// The frontier path is a pure wall-clock optimization: every simulated
// observable - solve reports, RunStats, NetworkStats, metrics JSON bytes,
// streamed trace JSONL bytes - must be bit-identical to the legacy path at
// every thread count. These tests run the same workload under both paths at
// threads 1/2/4 and compare everything, then fuzz MultiBfs across random
// graphs, delay modes, and fault plans.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "congest/metrics.h"
#include "congest/multi_bfs.h"
#include "congest/network.h"
#include "congest/runner.h"
#include "congest/trace.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "mwc/api.h"
#include "mwc/directed_mwc.h"
#include "support/rng.h"

namespace mwc::congest {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::WeightRange;

constexpr int kThreadCounts[] = {1, 2, 4};

Graph test_graph(std::uint64_t seed, int n = 48, int m = 110) {
  support::Rng rng(seed);
  return graph::random_connected(n, m, WeightRange{1, 9}, rng);
}

// Everything observable about one solve: the report's answer and verdict,
// the per-phase metrics snapshot serialized to JSON, the full streamed
// trace, and the engine's accumulated counters.
struct Artifacts {
  graph::Weight value = 0;
  std::string status;
  std::string metrics_json;
  std::string jsonl;
  RunStats run_stats;
  NetworkStats net_totals;

  friend bool operator==(const Artifacts&, const Artifacts&) = default;
};

Artifacts run_solve(const Graph& g, std::uint64_t seed, NetworkConfig cfg,
                    int threads, SettlePath path) {
  cfg.threads = threads;
  cfg.clamp_threads = false;  // the sweep must really run at `threads`
  cfg.settle_path = path;
  TraceOptions options = TraceOptions::full();
  options.wall_clock = false;  // side channel; never part of the comparison
  Trace trace(std::size_t{1} << 22, options);
  Artifacts a;
  JsonlSink jsonl(a.jsonl);
  trace.add_sink(&jsonl);
  Network net(g, seed, cfg);
  net.attach_trace(&trace);
  cycle::SolveOptions opts;
  opts.collect_metrics = true;
  cycle::MwcReport report = cycle::solve(net, opts);
  net.attach_trace(nullptr);
  a.value = report.result.value;
  a.status = cycle::to_string(report.status);
  a.metrics_json = report.metrics.to_json();
  a.run_stats = report.run.stats;
  a.net_totals = net.stats();
  return a;
}

// Both settle paths at every thread count against the legacy sequential
// reference: one workload, ten executions, all byte-identical.
void expect_paths_identical(const Graph& g, std::uint64_t seed,
                            const NetworkConfig& cfg) {
  const Artifacts ref = run_solve(g, seed, cfg, 1, SettlePath::kLegacy);
  ASSERT_FALSE(ref.jsonl.empty());
  ASSERT_FALSE(ref.metrics_json.empty());
  for (int threads : kThreadCounts) {
    for (SettlePath path : {SettlePath::kLegacy, SettlePath::kFrontier}) {
      const Artifacts got = run_solve(g, seed, cfg, threads, path);
      const char* name = path == SettlePath::kLegacy ? "legacy" : "frontier";
      EXPECT_EQ(got.value, ref.value) << name << " t=" << threads;
      EXPECT_EQ(got.status, ref.status) << name << " t=" << threads;
      EXPECT_EQ(got.run_stats, ref.run_stats) << name << " t=" << threads;
      EXPECT_TRUE(got.net_totals == ref.net_totals) << name << " t=" << threads;
      EXPECT_EQ(got.metrics_json, ref.metrics_json)
          << "metrics JSON diverged: " << name << " t=" << threads;
      EXPECT_EQ(got.jsonl, ref.jsonl)
          << "trace JSONL diverged: " << name << " t=" << threads;
    }
  }
}

// ---------- solve-level A/B -------------------------------------------------

TEST(FrontierEngine, ExactSolveByteIdenticalAcrossPathsAndThreads) {
  expect_paths_identical(test_graph(3), 17, NetworkConfig{});
}

TEST(FrontierEngine, ShuffledSchedulePinsTheSparseBuilder) {
  // Adversarial shuffling consumes schedule_rng_ as a function of the
  // pre-dedup invocation list, so the frontier path pins its builder to the
  // sparse branch under shuffle_deliveries; randomness must still replay.
  NetworkConfig cfg;
  cfg.shuffle_deliveries = true;
  expect_paths_identical(test_graph(5), 23, cfg);
}

TEST(FrontierEngine, FaultsAndReliableTransportReplayIdentically) {
  // Drop/corrupt decisions consume the injector RNG once per settled
  // message in engine order, and the ARQ layer's retransmission frames are
  // multi-word - the frontier path must route them through its spill pool
  // without perturbing a single draw.
  NetworkConfig cfg;
  cfg.faults.drop_prob = 0.12;
  cfg.faults.corrupt_prob = 0.05;
  cfg.reliable_transport = true;
  expect_paths_identical(test_graph(8, 32, 70), 29, cfg);
}

TEST(FrontierEngine, CrashesVaporizeBothQueueShapesAlike) {
  // crash_node walks the pending queue of every incident direction; the
  // frontier path must drop the same messages and count the same words out
  // of its packed entries (spill slots freed, not leaked - ASan checks).
  NetworkConfig cfg;
  cfg.faults.crashes.push_back(CrashFault{4, 6});
  cfg.faults.crashes.push_back(CrashFault{11, 14});
  expect_paths_identical(test_graph(13, 36, 80), 31, cfg);
}

TEST(FrontierEngine, DirectedMultiWordMessagesThroughTheSpillPool) {
  // The directed 2-approx sends the restricted-BFS Q(v) lists of
  // Algorithm 3 - the long messages that overflow Message's inline buffer.
  // Legacy queues carry them as Message objects; the frontier path parks
  // them in its spill pool and must deliver identical bytes.
  support::Rng rng(41);
  Graph g = graph::random_strongly_connected(64, 192, WeightRange{1, 12}, rng);
  const Artifacts ref = run_solve(g, 37, NetworkConfig{}, 1, SettlePath::kLegacy);
  for (int threads : kThreadCounts) {
    const Artifacts got =
        run_solve(g, 37, NetworkConfig{}, threads, SettlePath::kFrontier);
    EXPECT_TRUE(got == ref) << "t=" << threads;
  }
}

// ---------- randomized fuzz ------------------------------------------------

// One MultiBfs execution's observables: the full distance/parent matrices
// plus the run and engine counters.
struct BfsArtifacts {
  std::vector<graph::Weight> dist;
  std::vector<NodeId> parent;
  RunStats stats;
  NetworkStats net_totals;

  friend bool operator==(const BfsArtifacts&, const BfsArtifacts&) = default;
};

BfsArtifacts run_bfs(const Graph& g, std::uint64_t seed,
                     const MultiBfsParams& params, int threads,
                     SettlePath path) {
  NetworkConfig cfg;
  cfg.threads = threads;
  cfg.clamp_threads = false;
  cfg.settle_path = path;
  Network net(g, seed, cfg);
  BfsArtifacts a;
  MultiBfsParams p = params;
  MultiBfs bfs = run_multi_bfs(net, std::move(p), &a.stats);
  const int k = bfs.source_count();
  for (NodeId v = 0; v < net.n(); ++v) {
    for (int i = 0; i < k; ++i) {
      a.dist.push_back(bfs.dist(v, i));
      a.parent.push_back(bfs.parent(v, i));
    }
  }
  a.net_totals = net.stats();
  return a;
}

TEST(FrontierEngine, RandomizedMultiBfsFuzz) {
  // Random graphs x delay modes x directions x sigma caps: the legacy and
  // frontier paths must agree on every matrix entry and every counter at
  // every thread count. 12 scenarios x 6 executions each.
  support::Rng meta(2024);
  for (int iter = 0; iter < 12; ++iter) {
    const int n = 24 + static_cast<int>(meta.next_below(40));
    const int m = n + static_cast<int>(meta.next_below(static_cast<std::uint64_t>(2 * n)));
    const bool directed = (iter % 3) == 2;
    support::Rng gen(meta.next_u64());
    Graph g = directed
                  ? graph::random_strongly_connected(n, 3 * n, WeightRange{1, 9}, gen)
                  : graph::random_connected(n, m, WeightRange{1, 9}, gen);
    MultiBfsParams params;
    const int k = 1 + static_cast<int>(meta.next_below(5));
    for (int i = 0; i < k; ++i) {
      params.sources.push_back(
          static_cast<NodeId>(meta.next_below(static_cast<std::uint64_t>(n))));
    }
    params.mode = (iter % 2) == 0 ? DelayMode::kUnitDelay : DelayMode::kWeightDelay;
    if (iter % 4 == 1) params.sigma = 2;
    if (directed && (iter % 2) == 0) params.reverse = true;
    if (iter % 5 == 0) params.tick_limit = static_cast<graph::Weight>(n / 2);
    const std::uint64_t seed = meta.next_u64();

    const BfsArtifacts ref = run_bfs(g, seed, params, 1, SettlePath::kLegacy);
    for (int threads : {1, 2}) {
      for (SettlePath path : {SettlePath::kLegacy, SettlePath::kFrontier}) {
        const BfsArtifacts got = run_bfs(g, seed, params, threads, path);
        EXPECT_TRUE(got == ref)
            << "iter=" << iter << " threads=" << threads << " path="
            << (path == SettlePath::kLegacy ? "legacy" : "frontier");
      }
    }
  }
}

}  // namespace
}  // namespace mwc::congest
