// Theorem 1.3.B: (2 - 1/g)-approximate girth, plus the hop-limited
// Corollary 4.1 variant and the PRT baseline.
//
// Soundness (value is a real cycle length, so >= g) and the approximation
// ratio are checked against the sequential reference across families and
// seeds.
#include <gtest/gtest.h>

#include "congest/network.h"
#include "graph/generators.h"
#include "graph/sequential.h"
#include "graph/transforms.h"
#include "mwc/girth_approx.h"
#include "mwc/girth_prt.h"
#include "support/rng.h"
#include "test_util.h"

namespace mwc::cycle {
namespace {

using congest::Network;
using graph::Graph;
using graph::Weight;
using graph::WeightRange;

struct Case {
  int family;  // 0 = random, 1 = cycle+chords, 2 = grid, 3 = regular
  int n;
  std::uint64_t seed;
};

Graph make_graph(const Case& c) {
  support::Rng rng(c.seed);
  switch (c.family) {
    case 0:
      return graph::random_connected(c.n, 2 * c.n, WeightRange{1, 1}, rng);
    case 1:
      return graph::cycle_with_chords(c.n, c.n / 8, WeightRange{1, 1}, rng);
    case 2: {
      int side = 1;
      while (side * side < c.n) ++side;
      return graph::grid(side, side, false, WeightRange{1, 1}, rng);
    }
    default:
      return graph::random_regular(c.n, 4, WeightRange{1, 1}, rng);
  }
}

class GirthApprox : public ::testing::TestWithParam<Case> {};

TEST_P(GirthApprox, SoundAndWithinTwoMinusOneOverG) {
  const Case& c = GetParam();
  Graph g = make_graph(c);
  Weight girth = graph::seq::girth(g);
  if (girth == graph::kInfWeight) GTEST_SKIP() << "acyclic instance";
  Network net(g, /*seed=*/c.seed * 7 + 3);
  MwcResult result = girth_approx(net);
  ASSERT_NE(result.value, graph::kInfWeight);
  EXPECT_GE(result.value, girth);  // sound: a real cycle
  EXPECT_LE(result.value, 2 * girth - 1)
      << "family=" << c.family << " n=" << c.n << " seed=" << c.seed
      << " g=" << girth;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GirthApprox,
    ::testing::Values(Case{0, 60, 1}, Case{0, 120, 2}, Case{0, 200, 3},
                      Case{1, 64, 4}, Case{1, 128, 5}, Case{1, 200, 6},
                      Case{2, 49, 7}, Case{2, 100, 8}, Case{2, 196, 9},
                      Case{3, 60, 10}, Case{3, 120, 11}, Case{3, 200, 12},
                      Case{0, 80, 13}, Case{1, 100, 14}, Case{3, 160, 15}));

TEST(GirthApprox, ManySeedsRandomFamily) {
  for (std::uint64_t seed = 20; seed < 45; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_connected(80, 170, WeightRange{1, 1}, rng);
    Weight girth = graph::seq::girth(g);
    Network net(g, seed);
    MwcResult result = girth_approx(net);
    EXPECT_GE(result.value, girth) << "seed " << seed;
    EXPECT_LE(result.value, 2 * girth - 1) << "seed " << seed;
  }
}

TEST(GirthApprox, LargeGirthCycleGraph) {
  // Pure cycle: girth = n, and the answer must be exact (the cycle is the
  // only cycle; soundness forces >= n, existence of the candidate <= 2n-1
  // means it found the real cycle of length exactly n).
  support::Rng rng(31);
  Graph g = graph::cycle_with_chords(100, 0, WeightRange{1, 1}, rng);
  Network net(g, 33);
  MwcResult result = girth_approx(net);
  EXPECT_EQ(result.value, 100);
}

TEST(GirthApprox, RoundsScaleLikeSqrtN) {
  // Theorem 1.3.B bound check with explicit polylog slack at fixed n.
  support::Rng rng(35);
  const int n = 400;
  Graph g = graph::random_connected(n, 3 * n, WeightRange{1, 1}, rng);
  Network net(g, 37);
  MwcResult result = girth_approx(net);
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double log_n = std::log(static_cast<double>(n));
  const int diam = graph::seq::communication_diameter(g);
  EXPECT_LE(static_cast<double>(result.stats.rounds),
            8.0 * (sqrt_n * log_n + diam));
}

TEST(GirthApprox, HopLimitedFindsOnlyShortCycles) {
  // Square of unit edges + large cycle: with a tick budget below the large
  // cycle, only the square is reported.
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 20; ++i) edges.push_back({i, (i + 1) % 20, 1});
  edges.push_back({0, 20, 1});
  edges.push_back({20, 21, 1});
  edges.push_back({21, 22, 1});
  edges.push_back({22, 0, 1});
  Graph g = Graph::undirected(23, edges);
  Network net(g, 41);
  MwcResult result = hop_limited_girth_approx(net, g, /*tick_limit=*/8);
  EXPECT_GE(result.value, 4);
  EXPECT_LE(result.value, 7);  // the square, within (2-1/g)
}

TEST(GirthApproxHopLimited, TickModeApproximatesWeightedShortMwc) {
  // Corollary 4.1 on a weighted graph used directly as its own "scaled"
  // version: candidates are tick-weighted cycles within the budget.
  for (std::uint64_t seed = 50; seed < 60; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_connected(60, 130, WeightRange{1, 6}, rng);
    Network net(g, seed);
    const Weight budget = 40;
    MwcResult result = hop_limited_girth_approx(net, g, budget);
    Weight exact = graph::seq::mwc(g);  // MWC weight <= sum of few weights
    Weight hop_exact = graph::kInfWeight;
    // Reference: minimum weight among cycles of total weight <= budget =
    // hop-limited MWC of the *stretched* graph = weight-limited MWC.
    // Compute by scanning hop_limited_mwc over the weight budget: a cycle of
    // weight W has <= W edges (weights >= 1), so hop budget = `budget` works.
    hop_exact = graph::seq::hop_limited_mwc(g, static_cast<int>(budget));
    if (hop_exact > budget) hop_exact = graph::kInfWeight;  // over tick budget
    if (hop_exact == graph::kInfWeight) continue;
    ASSERT_NE(result.value, graph::kInfWeight) << "seed " << seed;
    EXPECT_GE(result.value, exact) << "seed " << seed;
    EXPECT_LE(result.value, 2 * hop_exact) << "seed " << seed;
  }
}

TEST(GirthApprox, WitnessIsARealCycleWhenProduced) {
  int produced = 0;
  for (std::uint64_t seed = 120; seed < 140; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_connected(90, 200, WeightRange{1, 1}, rng);
    Network net(g, seed);
    MwcResult result = girth_approx(net);
    if (result.witness.empty()) continue;
    ++produced;
    testutil::expect_valid_cycle_at_most(g, result.witness, result.value);
  }
  // Reconstruction can fail (evicted detection entries) but should usually
  // succeed on these instances.
  EXPECT_GE(produced, 10);
}

TEST(GirthApprox, WitnessOnPureCycleIsTheWholeCycle) {
  support::Rng rng(141);
  Graph g = graph::cycle_with_chords(60, 0, WeightRange{1, 1}, rng);
  Network net(g, 143);
  MwcResult result = girth_approx(net);
  EXPECT_EQ(result.value, 60);
  ASSERT_FALSE(result.witness.empty());
  EXPECT_EQ(result.witness.size(), 60u);
  testutil::expect_valid_cycle_at_most(g, result.witness, 60);
}

// ---------- PRT baseline ----------------------------------------------------

TEST(GirthPrt, SoundAndWithinTwoMinusOneOverG) {
  for (std::uint64_t seed = 70; seed < 85; ++seed) {
    support::Rng rng(seed);
    Graph g = graph::random_connected(70, 150, WeightRange{1, 1}, rng);
    Weight girth = graph::seq::girth(g);
    Network net(g, seed);
    MwcResult result = girth_prt(net);
    EXPECT_GE(result.value, girth) << "seed " << seed;
    EXPECT_LE(result.value, 2 * girth - 1) << "seed " << seed;
  }
}

TEST(GirthPrt, SmallGirthStopsEarly) {
  // Girth 3 stops at the first doubling phase; rounds must stay near
  // sqrt(n * 4), well below the full-girth cost.
  support::Rng rng(91);
  Graph g = graph::random_connected(300, 1200, WeightRange{1, 1}, rng);
  ASSERT_LE(graph::seq::girth(g), 4);
  Network net(g, 93);
  MwcResult result = girth_prt(net);
  Network net2(g, 93);
  MwcResult ours = girth_approx(net2);
  EXPECT_GE(result.value, graph::seq::girth(g));
  // Both sublinear here; PRT must not blow past a generous budget.
  EXPECT_LE(result.stats.rounds, 40u * 35u /* ~8 sqrt(n*4) log n */);
  EXPECT_GT(ours.stats.rounds, 0u);
}

TEST(GirthPrt, LargeGirthCostsMoreThanOurs) {
  // On a large-girth instance PRT's doubling pays O~(sqrt(n g)) while the
  // Theorem 1.3.B algorithm stays at O~(sqrt n): the gap must be visible.
  support::Rng rng(95);
  Graph g = graph::cycle_with_chords(400, 0, WeightRange{1, 1}, rng);  // g = n
  Network net_prt(g, 97);
  MwcResult prt = girth_prt(net_prt);
  Network net_ours(g, 97);
  MwcResult ours = girth_approx(net_ours);
  EXPECT_EQ(prt.value, 400);
  EXPECT_EQ(ours.value, 400);
  EXPECT_GT(prt.stats.rounds, ours.stats.rounds);
}

}  // namespace
}  // namespace mwc::cycle
